// Package jsonstream is the JSON counterpart of xmlstream: it maps the
// objects of a JSON feed document onto DWARF fact tuples through a Spec
// with dotted field paths into nested objects, streaming one record at a
// time.
package jsonstream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/dwarf"
)

// Spec maps a JSON document onto fact tuples.
type Spec struct {
	// RecordsPath is the dotted path to the array of record objects
	// (e.g. "stations"). Empty means the document root is the array.
	RecordsPath string
	// Dimensions map dotted field paths to cube dimensions, in order.
	Dimensions []DimSpec
	// MeasureField is the dotted path to the numeric measure.
	MeasureField string
}

// DimSpec maps one dotted field path to one dimension.
type DimSpec struct {
	Name      string
	Field     string
	Transform Transform
}

// Transform rewrites a raw field value into a dimension key.
type Transform func(string) (string, error)

// Ingestion errors.
var (
	ErrBadSpec      = errors.New("jsonstream: invalid spec")
	ErrBadDocument  = errors.New("jsonstream: document does not match the spec")
	ErrMissingField = errors.New("jsonstream: record is missing a mapped field")
	ErrBadMeasure   = errors.New("jsonstream: measure is not numeric")
)

// DimNames returns the dimension names in order.
func (s Spec) DimNames() []string {
	out := make([]string, len(s.Dimensions))
	for i, d := range s.Dimensions {
		out[i] = d.Name
	}
	return out
}

func (s Spec) validate() error {
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("%w: no dimensions", ErrBadSpec)
	}
	if s.MeasureField == "" {
		return fmt.Errorf("%w: no measure field", ErrBadSpec)
	}
	return nil
}

// ParseFunc streams tuples out of the document, calling fn for each record.
// The decoder walks to the records array and decodes one object at a time.
func ParseFunc(r io.Reader, spec Spec, fn func(dwarf.Tuple) error) error {
	if err := spec.validate(); err != nil {
		return err
	}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := seekRecords(dec, spec.RecordsPath); err != nil {
		return err
	}
	// Consume '['.
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("%w: expected an array at %q", ErrBadDocument, spec.RecordsPath)
	}
	for dec.More() {
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			return fmt.Errorf("%w: %v", ErrBadDocument, err)
		}
		tuple, err := spec.tupleFrom(obj)
		if err != nil {
			return err
		}
		if err := fn(tuple); err != nil {
			return err
		}
	}
	return nil
}

// Parse collects every tuple of the document.
func Parse(r io.Reader, spec Spec) ([]dwarf.Tuple, error) {
	var out []dwarf.Tuple
	err := ParseFunc(r, spec, func(t dwarf.Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// seekRecords advances the decoder to the value at the dotted path.
func seekRecords(dec *json.Decoder, path string) error {
	if path == "" {
		return nil
	}
	parts := strings.Split(path, ".")
	for _, want := range parts {
		// Enter the object.
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadDocument, err)
		}
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			return fmt.Errorf("%w: expected object while walking to %q", ErrBadDocument, path)
		}
		found := false
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrBadDocument, err)
			}
			key, _ := keyTok.(string)
			if key == want {
				found = true
				break
			}
			// Skip the value.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return fmt.Errorf("%w: %v", ErrBadDocument, err)
			}
		}
		if !found {
			return fmt.Errorf("%w: path %q not found", ErrBadDocument, path)
		}
	}
	return nil
}

// lookup resolves a dotted path inside a decoded object.
func lookup(obj map[string]any, path string) (any, bool) {
	parts := strings.Split(path, ".")
	var cur any = obj
	for _, p := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

func stringify(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case json.Number:
		return x.String()
	case bool:
		return strconv.FormatBool(x)
	case nil:
		return ""
	default:
		return fmt.Sprint(x)
	}
}

func (s Spec) tupleFrom(obj map[string]any) (dwarf.Tuple, error) {
	dims := make([]string, len(s.Dimensions))
	for i, d := range s.Dimensions {
		raw, ok := lookup(obj, d.Field)
		if !ok {
			return dwarf.Tuple{}, fmt.Errorf("%w: %q (dimension %s)", ErrMissingField, d.Field, d.Name)
		}
		str := stringify(raw)
		if d.Transform != nil {
			v, err := d.Transform(str)
			if err != nil {
				return dwarf.Tuple{}, fmt.Errorf("jsonstream: dimension %s: %w", d.Name, err)
			}
			dims[i] = v
		} else {
			dims[i] = str
		}
	}
	raw, ok := lookup(obj, s.MeasureField)
	if !ok {
		return dwarf.Tuple{}, fmt.Errorf("%w: measure %q", ErrMissingField, s.MeasureField)
	}
	var m float64
	switch x := raw.(type) {
	case json.Number:
		v, err := x.Float64()
		if err != nil {
			return dwarf.Tuple{}, fmt.Errorf("%w: %v", ErrBadMeasure, x)
		}
		m = v
	case float64:
		m = x
	default:
		return dwarf.Tuple{}, fmt.Errorf("%w: %T", ErrBadMeasure, raw)
	}
	return dwarf.Tuple{Dims: dims, Measure: m}, nil
}

// TimePart returns a transform extracting one part of a timestamp (same
// parts as xmlstream.TimePart).
func TimePart(layout, part string) Transform {
	return func(raw string) (string, error) {
		ts, err := time.Parse(layout, raw)
		if err != nil {
			return "", fmt.Errorf("bad timestamp %q: %w", raw, err)
		}
		switch part {
		case "year":
			return fmt.Sprintf("%04d", ts.Year()), nil
		case "month":
			return fmt.Sprintf("%02d", int(ts.Month())), nil
		case "day":
			return fmt.Sprintf("%02d", ts.Day()), nil
		case "hour":
			return fmt.Sprintf("%02d", ts.Hour()), nil
		case "quarter":
			return fmt.Sprintf("q%d", ts.Minute()/15), nil
		default:
			return "", fmt.Errorf("unknown time part %q", part)
		}
	}
}

// BikeFeedSpec maps the smartcity JSON bike feed onto the 8-dimension
// layout (location.area exercises nested paths).
func BikeFeedSpec() Spec {
	return Spec{
		RecordsPath: "stations",
		Dimensions: []DimSpec{
			{Name: "Year", Field: "timestamp", Transform: TimePart(time.RFC3339, "year")},
			{Name: "Month", Field: "timestamp", Transform: TimePart(time.RFC3339, "month")},
			{Name: "Day", Field: "timestamp", Transform: TimePart(time.RFC3339, "day")},
			{Name: "Hour", Field: "timestamp", Transform: TimePart(time.RFC3339, "hour")},
			{Name: "Quarter", Field: "timestamp", Transform: TimePart(time.RFC3339, "quarter")},
			{Name: "Area", Field: "location.area"},
			{Name: "Station", Field: "id"},
			{Name: "Status", Field: "status"},
		},
		MeasureField: "bikes",
	}
}

// AirQualityFeedSpec maps the smartcity air-quality JSON feed.
func AirQualityFeedSpec() Spec {
	return Spec{
		RecordsPath: "readings",
		Dimensions: []DimSpec{
			{Name: "Year", Field: "timestamp", Transform: TimePart(time.RFC3339, "year")},
			{Name: "Month", Field: "timestamp", Transform: TimePart(time.RFC3339, "month")},
			{Name: "Day", Field: "timestamp", Transform: TimePart(time.RFC3339, "day")},
			{Name: "Hour", Field: "timestamp", Transform: TimePart(time.RFC3339, "hour")},
			{Name: "Zone", Field: "zone"},
			{Name: "Sensor", Field: "sensor"},
			{Name: "Pollutant", Field: "pollutant"},
		},
		MeasureField: "value",
	}
}
