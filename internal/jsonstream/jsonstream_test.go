package jsonstream

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

func TestBikeFeedRoundTrip(t *testing.T) {
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 21}).Take(150)
	var buf bytes.Buffer
	if err := smartcity.WriteBikesJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	tuples, err := Parse(&buf, BikeFeedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 150 {
		t.Fatalf("parsed %d tuples", len(tuples))
	}
	for i, r := range recs {
		want := r.Tuple()
		got := tuples[i]
		if got.Measure != want.Measure {
			t.Fatalf("tuple %d measure %g != %g", i, got.Measure, want.Measure)
		}
		for d := range want.Dims {
			if got.Dims[d] != want.Dims[d] {
				t.Fatalf("tuple %d dim %d: %q != %q", i, d, got.Dims[d], want.Dims[d])
			}
		}
	}
}

func TestAirQualityRoundTrip(t *testing.T) {
	recs := smartcity.NewAirQualityFeed(3, 5).Take(80)
	var buf bytes.Buffer
	if err := smartcity.WriteAirQualityJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	spec := AirQualityFeedSpec()
	tuples, err := Parse(&buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 80 {
		t.Fatalf("parsed %d", len(tuples))
	}
	if _, err := dwarf.New(spec.DimNames(), tuples); err != nil {
		t.Fatal(err)
	}
}

func TestXMLAndJSONAgree(t *testing.T) {
	// The paper's canonical-approach claim: the same feed through either
	// wire format yields the same cube.
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 31}).Take(100)
	var jbuf bytes.Buffer
	smartcity.WriteBikesJSON(&jbuf, recs)
	jt, err := Parse(&jbuf, BikeFeedSpec())
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]dwarf.Tuple, len(recs))
	for i, r := range recs {
		direct[i] = r.Tuple()
	}
	a, _ := dwarf.New(BikeFeedSpec().DimNames(), jt)
	b, _ := dwarf.New(smartcity.BikeDims, direct)
	allQ := make([]string, 8)
	for i := range allQ {
		allQ[i] = dwarf.All
	}
	ga, _ := a.Point(allQ...)
	gb, _ := b.Point(allQ...)
	if !ga.Equal(gb) {
		t.Errorf("JSON cube %v != direct cube %v", ga, gb)
	}
}

func TestTopLevelArray(t *testing.T) {
	doc := `[{"k":"a","v":1},{"k":"b","v":2.5}]`
	spec := Spec{
		Dimensions:   []DimSpec{{Name: "K", Field: "k"}},
		MeasureField: "v",
	}
	tuples, err := Parse(strings.NewReader(doc), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[1].Measure != 2.5 {
		t.Fatalf("tuples = %+v", tuples)
	}
}

func TestDottedPathsAndCoercion(t *testing.T) {
	doc := `{"data":{"items":[{"a":{"b":{"c":"deep"}},"n":7,"flag":true,"v":3}]}}`
	spec := Spec{
		RecordsPath: "data.items",
		Dimensions: []DimSpec{
			{Name: "C", Field: "a.b.c"},
			{Name: "N", Field: "n"},
			{Name: "F", Field: "flag"},
		},
		MeasureField: "v",
	}
	tuples, err := Parse(strings.NewReader(doc), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := tuples[0].Dims
	if got[0] != "deep" || got[1] != "7" || got[2] != "true" {
		t.Errorf("dims = %v", got)
	}
}

func TestMalformedInputs(t *testing.T) {
	spec := BikeFeedSpec()
	if _, err := Parse(strings.NewReader(`{"stations": [{"id": "x"`), spec); !errors.Is(err, ErrBadDocument) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := Parse(strings.NewReader(`{"wrong": []}`), spec); !errors.Is(err, ErrBadDocument) {
		t.Errorf("missing path: %v", err)
	}
	if _, err := Parse(strings.NewReader(`{"stations": {"not":"array"}}`), spec); !errors.Is(err, ErrBadDocument) {
		t.Errorf("non-array: %v", err)
	}
	doc := `{"stations":[{"id":"s","status":"open","timestamp":"2015-06-01T00:00:00Z",
		"location":{"area":"a"},"bikes":"many"}]}`
	if _, err := Parse(strings.NewReader(doc), spec); !errors.Is(err, ErrBadMeasure) {
		t.Errorf("bad measure: %v", err)
	}
	doc = `{"stations":[{"id":"s","status":"open","timestamp":"2015-06-01T00:00:00Z","bikes":3}]}`
	if _, err := Parse(strings.NewReader(doc), spec); !errors.Is(err, ErrMissingField) {
		t.Errorf("missing nested field: %v", err)
	}
	if _, err := Parse(strings.NewReader("[]"), Spec{}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty spec: %v", err)
	}
}
