package nosql

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// SSTable file layout:
//
//	magic "SSTBL1\n\x00" (8 bytes)
//	entry region: records of
//	    flags u8 (bit0 = tombstone)
//	    klen uvarint | key
//	    [vlen uvarint | value]   (absent for tombstones)
//	sparse index region: count uvarint, then per sampled entry
//	    klen uvarint | key | offset uvarint (absolute file offset)
//	bloom region: marshaled bloom filter
//	footer (fixed):
//	    indexOff u64 | bloomOff u64 | entryCount u64 | maxSeq u64
//	    crc u32 (over the whole file before this field) | magic u32
//
// Every 16th entry is sampled into the sparse index; point reads bloom-check,
// binary-search the sample, then scan at most one stride.
const (
	sstMagic       = "SSTBL1\n\x00"
	sstFooterMagic = 0x53535442 // "SSTB"
	sstFooterSize  = 8*4 + 4 + 4
	sstIndexStride = 16
)

// ErrCorruptSSTable reports a structurally invalid or checksum-failing file.
var ErrCorruptSSTable = errors.New("nosql: corrupt sstable")

// indexEntry is one sparse-index sample.
type indexEntry struct {
	key    []byte
	offset uint64
}

// sstable is an open, immutable on-disk table.
type sstable struct {
	path       string
	file       *os.File
	size       int64
	index      []indexEntry
	bloom      *bloomFilter
	entryCount uint64
	maxSeq     uint64
	indexOff   uint64
}

// sstableWriter streams sorted entries into a new file.
type sstableWriter struct {
	path    string
	file    *os.File
	w       *bufio.Writer
	crc     uint32
	off     uint64
	count   uint64
	maxSeq  uint64
	index   []indexEntry
	bloom   *bloomFilter
	lastKey []byte
}

// newSSTableWriter creates path and prepares to receive entries in strictly
// ascending key order. expectEntries sizes the bloom filter.
func newSSTableWriter(path string, expectEntries int) (*sstableWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	sw := &sstableWriter{
		path:  path,
		file:  f,
		w:     bufio.NewWriterSize(f, 1<<16),
		bloom: newBloomFilter(expectEntries),
	}
	if err := sw.writeRaw([]byte(sstMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return sw, nil
}

func (sw *sstableWriter) writeRaw(p []byte) error {
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	n, err := sw.w.Write(p)
	sw.off += uint64(n)
	return err
}

func (sw *sstableWriter) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return sw.writeRaw(buf[:n])
}

// add appends one entry. Keys must arrive in strictly ascending order.
func (sw *sstableWriter) add(e entry) error {
	if sw.lastKey != nil && string(e.key) <= string(sw.lastKey) {
		return fmt.Errorf("nosql: sstable entries out of order: %q after %q", e.key, sw.lastKey)
	}
	if sw.count%sstIndexStride == 0 {
		sw.index = append(sw.index, indexEntry{key: append([]byte(nil), e.key...), offset: sw.off})
	}
	flags := byte(0)
	if e.tombstone {
		flags = 1
	}
	if err := sw.writeRaw([]byte{flags}); err != nil {
		return err
	}
	if err := sw.writeUvarint(uint64(len(e.key))); err != nil {
		return err
	}
	if err := sw.writeRaw(e.key); err != nil {
		return err
	}
	if !e.tombstone {
		if err := sw.writeUvarint(uint64(len(e.value))); err != nil {
			return err
		}
		if err := sw.writeRaw(e.value); err != nil {
			return err
		}
	}
	sw.bloom.Add(e.key)
	if e.seq > sw.maxSeq {
		sw.maxSeq = e.seq
	}
	sw.count++
	sw.lastKey = append(sw.lastKey[:0], e.key...)
	return nil
}

// finish writes index, bloom and footer, syncs and closes the file.
func (sw *sstableWriter) finish() (retErr error) {
	defer func() {
		if retErr != nil {
			sw.file.Close()
			os.Remove(sw.path)
		}
	}()
	indexOff := sw.off
	if err := sw.writeUvarint(uint64(len(sw.index))); err != nil {
		return err
	}
	for _, ie := range sw.index {
		if err := sw.writeUvarint(uint64(len(ie.key))); err != nil {
			return err
		}
		if err := sw.writeRaw(ie.key); err != nil {
			return err
		}
		if err := sw.writeUvarint(ie.offset); err != nil {
			return err
		}
	}
	bloomOff := sw.off
	if err := sw.writeRaw(sw.bloom.marshal()); err != nil {
		return err
	}
	var footer [sstFooterSize]byte
	binary.LittleEndian.PutUint64(footer[0:], indexOff)
	binary.LittleEndian.PutUint64(footer[8:], bloomOff)
	binary.LittleEndian.PutUint64(footer[16:], sw.count)
	binary.LittleEndian.PutUint64(footer[24:], sw.maxSeq)
	// CRC covers everything written so far (magic + entries + index + bloom).
	binary.LittleEndian.PutUint32(footer[32:], sw.crc)
	binary.LittleEndian.PutUint32(footer[36:], sstFooterMagic)
	if _, err := sw.w.Write(footer[:]); err != nil {
		return err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	if err := sw.file.Sync(); err != nil {
		return err
	}
	return sw.file.Close()
}

// openSSTable opens and verifies an existing table file.
func openSSTable(path string) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := readSSTable(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func readSSTable(path string, f *os.File) (*sstable, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size < int64(len(sstMagic)+sstFooterSize) {
		return nil, fmt.Errorf("%w: %s too small", ErrCorruptSSTable, path)
	}
	var footer [sstFooterSize]byte
	if _, err := f.ReadAt(footer[:], size-sstFooterSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(footer[36:]) != sstFooterMagic {
		return nil, fmt.Errorf("%w: %s bad footer magic", ErrCorruptSSTable, path)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	bloomOff := binary.LittleEndian.Uint64(footer[8:])
	entryCount := binary.LittleEndian.Uint64(footer[16:])
	maxSeq := binary.LittleEndian.Uint64(footer[24:])
	wantCRC := binary.LittleEndian.Uint32(footer[32:])
	body := size - sstFooterSize
	if int64(indexOff) > body || int64(bloomOff) > body || indexOff > bloomOff ||
		indexOff < uint64(len(sstMagic)) {
		return nil, fmt.Errorf("%w: %s bad offsets", ErrCorruptSSTable, path)
	}

	// Verify the checksum over the whole body.
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, body)); err != nil {
		return nil, err
	}
	if h.Sum32() != wantCRC {
		return nil, fmt.Errorf("%w: %s checksum mismatch", ErrCorruptSSTable, path)
	}
	magic := make([]byte, len(sstMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		return nil, err
	}
	if string(magic) != sstMagic {
		return nil, fmt.Errorf("%w: %s bad magic", ErrCorruptSSTable, path)
	}

	// Load the sparse index.
	idxData := make([]byte, bloomOff-indexOff)
	if _, err := f.ReadAt(idxData, int64(indexOff)); err != nil {
		return nil, err
	}
	idxCount, n := binary.Uvarint(idxData)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s bad index", ErrCorruptSSTable, path)
	}
	idxData = idxData[n:]
	index := make([]indexEntry, 0, idxCount)
	for i := uint64(0); i < idxCount; i++ {
		klen, n := binary.Uvarint(idxData)
		if n <= 0 || uint64(len(idxData)-n) < klen {
			return nil, fmt.Errorf("%w: %s bad index entry", ErrCorruptSSTable, path)
		}
		key := append([]byte(nil), idxData[n:n+int(klen)]...)
		idxData = idxData[n+int(klen):]
		off, n := binary.Uvarint(idxData)
		if n <= 0 {
			return nil, fmt.Errorf("%w: %s bad index offset", ErrCorruptSSTable, path)
		}
		idxData = idxData[n:]
		index = append(index, indexEntry{key: key, offset: off})
	}

	bloomData := make([]byte, body-int64(bloomOff))
	if _, err := f.ReadAt(bloomData, int64(bloomOff)); err != nil {
		return nil, err
	}
	bloom, err := unmarshalBloom(bloomData)
	if err != nil {
		return nil, fmt.Errorf("%w: %s bloom: %v", ErrCorruptSSTable, path, err)
	}
	return &sstable{
		path:       path,
		file:       f,
		size:       size,
		index:      index,
		bloom:      bloom,
		entryCount: entryCount,
		maxSeq:     maxSeq,
		indexOff:   indexOff,
	}, nil
}

func (st *sstable) close() error { return st.file.Close() }

// get point-reads a key.
func (st *sstable) get(key []byte) (entry, bool, error) {
	if !st.bloom.MayContain(key) {
		return entry{}, false, nil
	}
	// Find the greatest sample <= key.
	i := sort.Search(len(st.index), func(i int) bool { return string(st.index[i].key) > string(key) })
	if i == 0 {
		return entry{}, false, nil
	}
	start := st.index[i-1].offset
	var end uint64
	if i < len(st.index) {
		end = st.index[i].offset
	} else {
		end = st.indexOff
	}
	var found entry
	ok := false
	err := st.scanRange(start, end, func(e entry) bool {
		c := string(e.key)
		if c == string(key) {
			found, ok = e, true
			return false
		}
		return c < string(key) // stop once past
	})
	return found, ok, err
}

// scan iterates all entries in key order.
func (st *sstable) scan(fn func(entry) bool) error {
	return st.scanRange(uint64(len(sstMagic)), st.indexOff, fn)
}

// scanFrom iterates entries with key >= start in key order, using the
// sparse index to begin near the first qualifying entry. fn returning
// false stops the scan.
func (st *sstable) scanFrom(start []byte, fn func(entry) bool) error {
	i := sort.Search(len(st.index), func(i int) bool { return string(st.index[i].key) > string(start) })
	off := uint64(len(sstMagic))
	if i > 0 {
		off = st.index[i-1].offset
	}
	return st.scanRange(off, st.indexOff, func(e entry) bool {
		if string(e.key) < string(start) {
			return true // still before the range
		}
		return fn(e)
	})
}

// scanRange iterates entries in [startOff, endOff).
func (st *sstable) scanRange(startOff, endOff uint64, fn func(entry) bool) error {
	r := bufio.NewReaderSize(io.NewSectionReader(st.file, int64(startOff), int64(endOff-startOff)), 1<<16)
	for {
		flags, err := r.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptSSTable, err)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptSSTable, err)
		}
		e := entry{key: key, seq: st.maxSeq, tombstone: flags&1 != 0}
		if !e.tombstone {
			vlen, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorruptSSTable, err)
			}
			e.value = make([]byte, vlen)
			if _, err := io.ReadFull(r, e.value); err != nil {
				return fmt.Errorf("%w: %v", ErrCorruptSSTable, err)
			}
		}
		if !fn(e) {
			return nil
		}
	}
}

// writeSSTable dumps sorted entries to a new file and opens the result.
func writeSSTable(path string, entries []entry) (*sstable, error) {
	sw, err := newSSTableWriter(path, len(entries))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := sw.add(e); err != nil {
			sw.file.Close()
			os.Remove(path)
			return nil, err
		}
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	return openSSTable(path)
}
