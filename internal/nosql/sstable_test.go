package nosql

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func makeEntries(n int) []entry {
	out := make([]entry, n)
	for i := range out {
		out[i] = entry{
			key:   []byte(fmt.Sprintf("key-%05d", i)),
			value: []byte(fmt.Sprintf("value-%d", i*7)),
			seq:   uint64(i + 1),
		}
	}
	return out
}

func TestSSTableWriteReadGet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "000001.sst")
	entries := makeEntries(500)
	entries[123].tombstone = true
	entries[123].value = nil

	st, err := writeSSTable(path, entries)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()

	if st.entryCount != 500 {
		t.Errorf("entryCount = %d", st.entryCount)
	}
	if st.maxSeq != 500 {
		t.Errorf("maxSeq = %d", st.maxSeq)
	}

	for _, i := range []int{0, 1, 15, 16, 17, 123, 250, 499} {
		e, ok, err := st.get(entries[i].key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %s not found", entries[i].key)
		}
		if e.tombstone != entries[i].tombstone {
			t.Errorf("key %s tombstone = %v", entries[i].key, e.tombstone)
		}
		if !e.tombstone && string(e.value) != string(entries[i].value) {
			t.Errorf("key %s value = %q want %q", entries[i].key, e.value, entries[i].value)
		}
	}
	// Misses: before first, between keys, after last.
	for _, k := range []string{"aaa", "key-00000x", "zzz"} {
		if _, ok, err := st.get([]byte(k)); err != nil || ok {
			t.Errorf("get(%q) = found=%v err=%v, want miss", k, ok, err)
		}
	}

	// Full scan in order.
	var prev string
	n := 0
	err = st.scan(func(e entry) bool {
		if prev != "" && string(e.key) <= prev {
			t.Errorf("scan out of order: %q after %q", e.key, prev)
		}
		prev = string(e.key)
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("scan visited %d entries", n)
	}
}

func TestSSTableRejectsOutOfOrder(t *testing.T) {
	dir := t.TempDir()
	sw, err := newSSTableWriter(filepath.Join(dir, "x.sst"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.add(entry{key: []byte("b"), value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := sw.add(entry{key: []byte("a"), value: []byte("2")}); err == nil {
		t.Error("out-of-order add accepted")
	}
	sw.file.Close()
}

func TestSSTableCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "000001.sst")
	st, err := writeSSTable(path, makeEntries(100))
	if err != nil {
		t.Fatal(err)
	}
	st.close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the body.
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSSTable(path); err == nil {
		t.Error("corrupt sstable opened without error")
	}

	// Truncated file.
	if err := os.WriteFile(path, data[:20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSSTable(path); err == nil {
		t.Error("truncated sstable opened without error")
	}
}

func TestSSTableEmpty(t *testing.T) {
	dir := t.TempDir()
	st, err := writeSSTable(filepath.Join(dir, "e.sst"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	if _, ok, err := st.get([]byte("any")); err != nil || ok {
		t.Errorf("empty table get = %v, %v", ok, err)
	}
	n := 0
	st.scan(func(entry) bool { n++; return true })
	if n != 0 {
		t.Errorf("empty table scanned %d entries", n)
	}
}

func TestBloomFilter(t *testing.T) {
	bf := newBloomFilter(1000)
	for i := 0; i < 1000; i++ {
		bf.Add([]byte(fmt.Sprintf("present-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !bf.MayContain([]byte(fmt.Sprintf("present-%d", i))) {
			t.Fatalf("false negative for present-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 5000; i++ {
		if bf.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 250 { // 5% ceiling, target is ~1%
		t.Errorf("false positive rate too high: %d/5000", fp)
	}
	// Round trip.
	bf2, err := unmarshalBloom(bf.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bf2.MayContain([]byte("present-1")) {
		t.Error("marshaled filter lost a key")
	}
	if _, err := unmarshalBloom([]byte{1, 2}); err == nil {
		t.Error("short bloom unmarshaled")
	}
}

func TestMemtableNewestWins(t *testing.T) {
	m := newMemtable()
	m.put([]byte("k"), []byte("v1"), 1, false)
	m.put([]byte("k"), []byte("v2"), 2, false)
	if e, ok := m.get([]byte("k")); !ok || string(e.value) != "v2" {
		t.Errorf("got %v", e)
	}
	// Out-of-order replay must not regress.
	m.put([]byte("k"), []byte("v0"), 1, false)
	if e, _ := m.get([]byte("k")); string(e.value) != "v2" {
		t.Errorf("stale overwrite won: %q", e.value)
	}
	m.put([]byte("k"), nil, 3, true)
	if e, _ := m.get([]byte("k")); !e.tombstone {
		t.Error("tombstone lost")
	}
	if m.len() != 1 {
		t.Errorf("len = %d", m.len())
	}
	m.put([]byte("a"), []byte("x"), 4, false)
	s := m.sorted()
	if len(s) != 2 || string(s[0].key) != "a" || string(s[1].key) != "k" {
		t.Errorf("sorted = %v", s)
	}
}
