package nosql

import "sort"

// entry is one versioned mutation: the newest value of a partition key in
// the memtable, or one cell of an SSTable. Tombstone entries mark deletes.
type entry struct {
	key       []byte // OrderedBytes of the partition key value
	value     []byte // encoded row; nil when tombstone
	seq       uint64 // mutation sequence number, newest wins
	tombstone bool
}

// memtable is the in-memory write buffer: a hash map of newest versions with
// on-demand sorted iteration. Cassandra uses a skip list; a map plus sort at
// flush time gives the same externally observable behaviour (newest-wins
// point reads, sorted flush) with far less machinery.
type memtable struct {
	data  map[string]entry
	bytes int64
}

func newMemtable() *memtable {
	return &memtable{data: make(map[string]entry)}
}

// put records a mutation (value == nil means delete).
func (m *memtable) put(key []byte, value []byte, seq uint64, tombstone bool) {
	k := string(key)
	if old, ok := m.data[k]; ok {
		m.bytes -= int64(len(old.key) + len(old.value))
		if old.seq > seq {
			// Out-of-order replay: keep the newer version.
			m.bytes += int64(len(old.key) + len(old.value))
			return
		}
	}
	e := entry{key: key, value: value, seq: seq, tombstone: tombstone}
	m.data[k] = e
	m.bytes += int64(len(key) + len(value))
}

// get returns the newest version of key, if buffered.
func (m *memtable) get(key []byte) (entry, bool) {
	e, ok := m.data[string(key)]
	return e, ok
}

// len returns the number of buffered keys.
func (m *memtable) len() int { return len(m.data) }

// size returns the approximate buffered byte volume (flush trigger).
func (m *memtable) size() int64 { return m.bytes }

// sorted returns all entries in key order, tombstones included.
func (m *memtable) sorted() []entry {
	out := make([]entry, 0, len(m.data))
	for _, e := range m.data {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i].key) < string(out[j].key) })
	return out
}
