package nosql

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Options tune the engine.
type Options struct {
	// FlushThreshold is the memtable size in bytes that triggers an
	// automatic flush to an SSTable. <= 0 selects 4 MiB.
	FlushThreshold int64
	// SyncWrites fsyncs the commit log on every batch (durable but slow).
	SyncWrites bool
	// MaxTablesBeforeCompact triggers a tiered compaction when a column
	// family accumulates this many sstables. <= 0 selects 8.
	MaxTablesBeforeCompact int
	// GroupCommitIndexedBatches disables the modelled per-row write-path
	// serialization for batches over tables with secondary indexes (see
	// ApplyBatch). Off by default — the serialization is what reproduces
	// Cassandra's slow indexed bulk loads (Table 5's NoSQL-Min row); the
	// switch exists for the ablation benchmark.
	GroupCommitIndexedBatches bool
}

func (o Options) withDefaults() Options {
	if o.FlushThreshold <= 0 {
		o.FlushThreshold = 4 << 20
	}
	if o.MaxTablesBeforeCompact <= 0 {
		o.MaxTablesBeforeCompact = 8
	}
	return o
}

// DB is a columnar NoSQL database instance rooted at a directory. All
// operations are safe for concurrent use; the engine uses a coarse
// database-level mutex, which is honest about where this implementation
// trades concurrency for clarity.
type DB struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	keyspaces map[string]*keyspace
	log       *commitLog
	seq       uint64
	closed    bool
}

type keyspace struct {
	name   string
	tables map[string]*columnFamily // lower-cased name → CF (user tables only)
}

// catalog is the persisted DDL state (dir/catalog.json).
type catalog struct {
	Keyspaces []catalogKeyspace `json:"keyspaces"`
}
type catalogKeyspace struct {
	Name   string         `json:"name"`
	Tables []catalogTable `json:"tables"`
}
type catalogTable struct {
	Name    string          `json:"name"`
	Key     string          `json:"key"`
	Columns []catalogColumn `json:"columns"`
	Indexes []string        `json:"indexes,omitempty"`
}
type catalogColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Open opens (creating if needed) a database under dir, replaying the
// commit log so that un-flushed writes from a previous process survive.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{
		dir:       dir,
		opts:      opts,
		keyspaces: make(map[string]*keyspace),
	}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	// Replay mutations that post-date each CF's persisted watermark.
	err := replayCommitLog(db.logPath(), func(m mutation) error {
		if m.seq > db.seq {
			db.seq = m.seq
		}
		cf, err := db.resolveCF(m.keyspace, m.table)
		if err != nil {
			return nil // table dropped since; skip
		}
		if m.seq > cf.watermark {
			cf.apply(m)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, ks := range db.keyspaces {
		for _, cf := range ks.tables {
			if cf.watermark > db.seq {
				db.seq = cf.watermark
			}
			for _, idx := range cf.indexes {
				if idx.cf.watermark > db.seq {
					db.seq = idx.cf.watermark
				}
			}
		}
	}
	log, err := openCommitLog(db.logPath(), opts.SyncWrites)
	if err != nil {
		return nil, err
	}
	db.log = log
	return db, nil
}

func (db *DB) logPath() string { return filepath.Join(db.dir, "commit.log") }

func (db *DB) catalogPath() string { return filepath.Join(db.dir, "catalog.json") }

func (db *DB) loadCatalog() error {
	data, err := os.ReadFile(db.catalogPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var cat catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("nosql: corrupt catalog: %w", err)
	}
	for _, cks := range cat.Keyspaces {
		ks := &keyspace{name: cks.Name, tables: make(map[string]*columnFamily)}
		db.keyspaces[strings.ToLower(cks.Name)] = ks
		for _, ct := range cks.Tables {
			cols := make([]Column, len(ct.Columns))
			for i, cc := range ct.Columns {
				kind, err := ParseKind(cc.Type)
				if err != nil {
					return err
				}
				cols[i] = Column{Name: cc.Name, Kind: kind}
			}
			schema, err := NewTableSchema(cks.Name, ct.Name, cols, ct.Key)
			if err != nil {
				return err
			}
			cf, err := newColumnFamily(schema, db.tableDir(cks.Name, ct.Name), false)
			if err != nil {
				return err
			}
			ks.tables[strings.ToLower(ct.Name)] = cf
			for _, col := range ct.Indexes {
				if err := db.attachIndex(cks.Name, cf, col); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (db *DB) saveCatalog() error {
	var cat catalog
	ksNames := make([]string, 0, len(db.keyspaces))
	for k := range db.keyspaces {
		ksNames = append(ksNames, k)
	}
	sort.Strings(ksNames)
	for _, kname := range ksNames {
		ks := db.keyspaces[kname]
		cks := catalogKeyspace{Name: ks.name}
		tNames := make([]string, 0, len(ks.tables))
		for t := range ks.tables {
			tNames = append(tNames, t)
		}
		sort.Strings(tNames)
		for _, tname := range tNames {
			cf := ks.tables[tname]
			ct := catalogTable{Name: cf.schema.Name, Key: cf.schema.Key}
			for _, c := range cf.schema.Columns {
				ct.Columns = append(ct.Columns, catalogColumn{Name: c.Name, Type: c.Kind.String()})
			}
			idxCols := make([]string, 0, len(cf.indexes))
			for col := range cf.indexes {
				idxCols = append(idxCols, col)
			}
			sort.Strings(idxCols)
			ct.Indexes = idxCols
			cks.Tables = append(cks.Tables, ct)
		}
		cat.Keyspaces = append(cat.Keyspaces, cks)
	}
	data, err := json.MarshalIndent(&cat, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.catalogPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, db.catalogPath())
}

func (db *DB) tableDir(ks, table string) string {
	return filepath.Join(db.dir, strings.ToLower(ks), strings.ToLower(table))
}

func (db *DB) indexDir(ks, table, col string) string {
	return filepath.Join(db.dir, strings.ToLower(ks), strings.ToLower(table)+"@"+strings.ToLower(col))
}

// attachIndex opens/creates the hidden CF for an index and registers it.
func (db *DB) attachIndex(ksName string, cf *columnFamily, col string) error {
	lcol := strings.ToLower(col)
	hidden, err := newColumnFamily(
		hiddenIndexSchema(ksName, cf.schema.Name+"@"+lcol),
		db.indexDir(ksName, cf.schema.Name, lcol), true)
	if err != nil {
		return err
	}
	cf.indexes[lcol] = &secondaryIndex{column: lcol, cf: hidden}
	return nil
}

// resolveCF finds the CF for a mutation's table name; "t@col" routes to the
// hidden index CF of t's index on col.
func (db *DB) resolveCF(ksName, table string) (*columnFamily, error) {
	ks, ok := db.keyspaces[strings.ToLower(ksName)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchKeyspace, ksName)
	}
	base, col, isIdx := strings.Cut(strings.ToLower(table), "@")
	cf, ok := ks.tables[base]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchTable, ksName, table)
	}
	if !isIdx {
		return cf, nil
	}
	idx, ok := cf.indexes[col]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s(%s)", ErrNoSuchIndex, ksName, base, col)
	}
	return idx.cf, nil
}

// CreateKeyspace registers a new keyspace.
func (db *DB) CreateKeyspace(name string, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := checkIdent(name); err != nil {
		return err
	}
	key := strings.ToLower(name)
	if _, ok := db.keyspaces[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrKeyspaceExists, name)
	}
	db.keyspaces[key] = &keyspace{name: name, tables: make(map[string]*columnFamily)}
	return db.saveCatalog()
}

// CreateTable registers a column family in an existing keyspace.
func (db *DB) CreateTable(schema *TableSchema, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	ks, ok := db.keyspaces[strings.ToLower(schema.Keyspace)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchKeyspace, schema.Keyspace)
	}
	key := strings.ToLower(schema.Name)
	if _, ok := ks.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s.%s", ErrTableExists, schema.Keyspace, schema.Name)
	}
	cf, err := newColumnFamily(schema, db.tableDir(schema.Keyspace, schema.Name), false)
	if err != nil {
		return err
	}
	ks.tables[key] = cf
	return db.saveCatalog()
}

// CreateIndex adds a secondary index on one column. Existing rows are
// back-filled, as Cassandra does on index creation.
func (db *DB) CreateIndex(ksName, table, column string, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cf, err := db.resolveCF(ksName, table)
	if err != nil {
		return err
	}
	col, err := cf.schema.Column(column)
	if err != nil {
		return err
	}
	if col.Kind == KindIntSet {
		return fmt.Errorf("%w: %s", ErrIndexUnsupported, column)
	}
	lcol := strings.ToLower(column)
	if _, ok := cf.indexes[lcol]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s.%s(%s)", ErrIndexExists, ksName, table, column)
	}
	if strings.EqualFold(column, cf.schema.Key) {
		return fmt.Errorf("%w: %s is the primary key", ErrIndexUnsupported, column)
	}
	if err := db.attachIndex(ksName, cf, lcol); err != nil {
		return err
	}
	// Back-fill from existing rows.
	idx := cf.indexes[lcol]
	var muts []mutation
	err = cf.scanLive(func(e entry) bool {
		row, derr := decodeRow(cf.schema, e.value)
		if derr != nil {
			err = derr
			return false
		}
		v := row.Get(lcol)
		if v.IsNull() {
			return true
		}
		db.seq++
		muts = append(muts, mutation{
			seq:      db.seq,
			keyspace: ksName,
			table:    cf.schema.Name + "@" + lcol,
			key:      indexEntryKey(v, e.key),
		})
		return true
	})
	if err != nil {
		return err
	}
	if len(muts) > 0 {
		if err := db.log.append(muts); err != nil {
			return err
		}
		for _, m := range muts {
			idx.cf.apply(m)
		}
		if err := db.maybeFlush(idx.cf); err != nil {
			return err
		}
	}
	return db.saveCatalog()
}

// lookupCF resolves a user table.
func (db *DB) lookupCF(ksName, table string) (*columnFamily, error) {
	if strings.Contains(table, "@") {
		return nil, fmt.Errorf("%w: %s", ErrBadIdentifier, table)
	}
	return db.resolveCF(ksName, table)
}

// rowMutations validates a row and produces the base mutation plus any
// secondary-index maintenance mutations. Index maintenance performs the
// Cassandra-style read-before-write to retire stale entries — the cost that
// dominates the paper's NoSQL-Min insert times.
func (db *DB) rowMutations(ksName string, cf *columnFamily, row Row) ([]mutation, error) {
	keyIdx := cf.schema.KeyIndex()
	keyCol := cf.schema.Columns[keyIdx]
	keyVal := row.Get(keyCol.Name)
	if keyVal.IsNull() {
		return nil, fmt.Errorf("%w: %s", ErrPrimaryKeyMissing, keyCol.Name)
	}
	clean := make(Row, len(row))
	for name, v := range row {
		cv, err := cf.schema.CheckValue(name, v)
		if err != nil {
			return nil, err
		}
		clean[strings.ToLower(name)] = cv
	}
	keyVal, _ = cf.schema.CheckValue(keyCol.Name, keyVal)
	pk := keyVal.OrderedBytes()

	var oldRow Row
	if len(cf.indexes) > 0 {
		if e, ok, err := cf.getLive(pk); err != nil {
			return nil, err
		} else if ok {
			if oldRow, err = decodeRow(cf.schema, e.value); err != nil {
				return nil, err
			}
		}
	}

	db.seq++
	muts := []mutation{{
		seq:      db.seq,
		keyspace: ksName,
		table:    cf.schema.Name,
		key:      pk,
		value:    encodeRow(cf.schema, clean),
	}}
	for lcol := range cf.indexes {
		newVal := clean.Get(lcol)
		var oldVal Value
		if oldRow != nil {
			oldVal = oldRow.Get(lcol)
		}
		if oldRow != nil && !oldVal.IsNull() && !oldVal.Equal(newVal) {
			db.seq++
			muts = append(muts, mutation{
				seq:       db.seq,
				keyspace:  ksName,
				table:     cf.schema.Name + "@" + lcol,
				key:       indexEntryKey(oldVal, pk),
				tombstone: true,
			})
		}
		if !newVal.IsNull() && (oldRow == nil || !oldVal.Equal(newVal)) {
			db.seq++
			muts = append(muts, mutation{
				seq:      db.seq,
				keyspace: ksName,
				table:    cf.schema.Name + "@" + lcol,
				key:      indexEntryKey(newVal, pk),
			})
		}
	}
	return muts, nil
}

// deleteMutations produces the tombstone mutations for one key.
func (db *DB) deleteMutations(ksName string, cf *columnFamily, keyVal Value) ([]mutation, error) {
	keyVal, err := cf.schema.CheckValue(cf.schema.Key, keyVal)
	if err != nil {
		return nil, err
	}
	pk := keyVal.OrderedBytes()
	var oldRow Row
	if len(cf.indexes) > 0 {
		if e, ok, err := cf.getLive(pk); err != nil {
			return nil, err
		} else if ok {
			if oldRow, err = decodeRow(cf.schema, e.value); err != nil {
				return nil, err
			}
		}
	}
	db.seq++
	muts := []mutation{{
		seq:       db.seq,
		keyspace:  ksName,
		table:     cf.schema.Name,
		key:       pk,
		tombstone: true,
	}}
	for lcol := range cf.indexes {
		if oldRow == nil {
			continue
		}
		if v := oldRow.Get(lcol); !v.IsNull() {
			db.seq++
			muts = append(muts, mutation{
				seq:       db.seq,
				keyspace:  ksName,
				table:     cf.schema.Name + "@" + lcol,
				key:       indexEntryKey(v, pk),
				tombstone: true,
			})
		}
	}
	return muts, nil
}

// commit logs and applies a mutation group, then flushes any column family
// whose memtable crossed the threshold.
func (db *DB) commit(muts []mutation) error {
	if len(muts) == 0 {
		return nil
	}
	if err := db.log.append(muts); err != nil {
		return err
	}
	touched := make(map[*columnFamily]bool)
	for _, m := range muts {
		cf, err := db.resolveCF(m.keyspace, m.table)
		if err != nil {
			return err
		}
		cf.apply(m)
		touched[cf] = true
	}
	for cf := range touched {
		if err := db.maybeFlush(cf); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) maybeFlush(cf *columnFamily) error {
	if cf.mem.size() < db.opts.FlushThreshold {
		return nil
	}
	if err := cf.flush(); err != nil {
		return err
	}
	return cf.compactTiered(db.opts.MaxTablesBeforeCompact)
}

// Insert upserts one row.
func (db *DB) Insert(ksName, table string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return err
	}
	muts, err := db.rowMutations(ksName, cf, row)
	if err != nil {
		return err
	}
	return db.commit(muts)
}

// Delete removes one row by primary key.
func (db *DB) Delete(ksName, table string, key Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return err
	}
	muts, err := db.deleteMutations(ksName, cf, key)
	if err != nil {
		return err
	}
	return db.commit(muts)
}

// Get point-reads one row by primary key.
func (db *DB) Get(ksName, table string, key Value) (Row, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return nil, false, err
	}
	key, err = cf.schema.CheckValue(cf.schema.Key, key)
	if err != nil {
		return nil, false, err
	}
	e, ok, err := cf.getLive(key.OrderedBytes())
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := decodeRow(cf.schema, e.value)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// Scan iterates every live row of a table in primary-key order.
func (db *DB) Scan(ksName, table string, fn func(Row) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return err
	}
	var derr error
	err = cf.scanLive(func(e entry) bool {
		row, err := decodeRow(cf.schema, e.value)
		if err != nil {
			derr = err
			return false
		}
		return fn(row)
	})
	if derr != nil {
		return derr
	}
	return err
}

// ScanRange iterates live rows whose primary key k satisfies
// lo <= k < hi in key order; a NULL bound is unbounded on that side.
func (db *DB) ScanRange(ksName, table string, lo, hi Value, fn func(Row) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return err
	}
	var loB, hiB []byte
	if !lo.IsNull() {
		if lo, err = cf.schema.CheckValue(cf.schema.Key, lo); err != nil {
			return err
		}
		loB = lo.OrderedBytes()
	}
	if !hi.IsNull() {
		if hi, err = cf.schema.CheckValue(cf.schema.Key, hi); err != nil {
			return err
		}
		hiB = hi.OrderedBytes()
	}
	var derr error
	err = cf.scanRange(loB, hiB, func(e entry) bool {
		row, rerr := decodeRow(cf.schema, e.value)
		if rerr != nil {
			derr = rerr
			return false
		}
		return fn(row)
	})
	if derr != nil {
		return derr
	}
	return err
}

// SelectByIndex returns the rows whose indexed column equals val.
func (db *DB) SelectByIndex(ksName, table, column string, val Value) ([]Row, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return nil, err
	}
	lcol := strings.ToLower(column)
	idx, ok := cf.indexes[lcol]
	if !ok {
		return nil, fmt.Errorf("%w: no index on %s.%s(%s)", ErrNeedFiltering, ksName, table, column)
	}
	val, err = cf.schema.CheckValue(column, val)
	if err != nil {
		return nil, err
	}
	var rows []Row
	var scanErr error
	err = idx.cf.scanPrefix(indexPrefix(val), func(e entry) bool {
		pk, perr := indexedPK(e.key)
		if perr != nil {
			scanErr = perr
			return false
		}
		base, ok, gerr := cf.getLive(pk)
		if gerr != nil {
			scanErr = gerr
			return false
		}
		if !ok {
			return true // index entry outlived the row; skip
		}
		row, derr := decodeRow(cf.schema, base.value)
		if derr != nil {
			scanErr = derr
			return false
		}
		if !row.Get(lcol).Equal(val) {
			return true // stale entry from an unretired update
		}
		rows = append(rows, row)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// HasIndex reports whether table has a secondary index on column.
func (db *DB) HasIndex(ksName, table, column string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return false
	}
	_, ok := cf.indexes[strings.ToLower(column)]
	return ok
}

// Schema returns the schema of a table.
func (db *DB) Schema(ksName, table string) (*TableSchema, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return nil, err
	}
	return cf.schema, nil
}

// HasTable reports whether the table exists.
func (db *DB) HasTable(ksName, table string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, err := db.lookupCF(ksName, table)
	return err == nil
}

// DropTable removes a table, its secondary indexes and their files.
func (db *DB) DropTable(ksName, table string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	ks, ok := db.keyspaces[strings.ToLower(ksName)]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoSuchKeyspace, ksName)
	}
	key := strings.ToLower(table)
	cf, ok := ks.tables[key]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("%w: %s.%s", ErrNoSuchTable, ksName, table)
	}
	cf.close()
	os.RemoveAll(cf.dir)
	for _, idx := range cf.indexes {
		os.RemoveAll(idx.cf.dir)
	}
	delete(ks.tables, key)
	return db.saveCatalog()
}

// DropKeyspace removes a keyspace and every table in it.
func (db *DB) DropKeyspace(name string, ifExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	key := strings.ToLower(name)
	ks, ok := db.keyspaces[key]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoSuchKeyspace, name)
	}
	for _, cf := range ks.tables {
		cf.close()
	}
	os.RemoveAll(filepath.Join(db.dir, key))
	delete(db.keyspaces, key)
	return db.saveCatalog()
}

// FlushAll persists every memtable to SSTables and truncates the commit
// log; afterwards the on-disk sstable sizes account for all data.
func (db *DB) FlushAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushAllLocked()
}

func (db *DB) flushAllLocked() error {
	for _, ks := range db.keyspaces {
		for _, cf := range ks.tables {
			if err := cf.flush(); err != nil {
				return err
			}
			for _, idx := range cf.indexes {
				if err := idx.cf.flush(); err != nil {
					return err
				}
			}
		}
	}
	return db.log.truncate()
}

// Compact fully compacts one table and its indexes.
func (db *DB) Compact(ksName, table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return err
	}
	if err := cf.compact(); err != nil {
		return err
	}
	for _, idx := range cf.indexes {
		if err := idx.cf.compact(); err != nil {
			return err
		}
	}
	return nil
}

// TableDiskSize returns the on-disk bytes of a table including its
// secondary indexes. Call FlushAll first to account for buffered writes.
func (db *DB) TableDiskSize(ksName, table string) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cf, err := db.lookupCF(ksName, table)
	if err != nil {
		return 0, err
	}
	total := cf.diskSize()
	for _, idx := range cf.indexes {
		total += idx.cf.diskSize()
	}
	return total, nil
}

// KeyspaceDiskSize totals the on-disk bytes of every table in the keyspace.
func (db *DB) KeyspaceDiskSize(ksName string) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ks, ok := db.keyspaces[strings.ToLower(ksName)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchKeyspace, ksName)
	}
	var total int64
	for _, cf := range ks.tables {
		total += cf.diskSize()
		for _, idx := range cf.indexes {
			total += idx.cf.diskSize()
		}
	}
	return total, nil
}

// Tables lists the user tables of a keyspace.
func (db *DB) Tables(ksName string) ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ks, ok := db.keyspaces[strings.ToLower(ksName)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchKeyspace, ksName)
	}
	var names []string
	for _, cf := range ks.tables {
		names = append(names, cf.schema.Name)
	}
	sort.Strings(names)
	return names, nil
}

// Close flushes all state and releases file handles.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if err := db.flushAllLocked(); err != nil {
		return err
	}
	db.closed = true
	var first error
	for _, ks := range db.keyspaces {
		for _, cf := range ks.tables {
			if err := cf.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if err := db.log.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// CloseAbrupt simulates a crash: buffered commit-log records reach the OS,
// but memtables are NOT flushed to SSTables and the log is NOT truncated.
// A subsequent Open must recover the data by replay. For failure-injection
// tests.
func (db *DB) CloseAbrupt() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var first error
	if err := db.log.flush(); err != nil {
		first = err
	}
	for _, ks := range db.keyspaces {
		for _, cf := range ks.tables {
			if err := cf.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if err := db.log.close(); err != nil && first == nil {
		first = err
	}
	return first
}
