// Package nosql implements the columnar NoSQL storage engine the paper uses
// as its DWARF persistence layer (the role Cassandra plays in the original
// evaluation). The engine has keyspaces and column families; writes go to a
// commit log and a memtable and are flushed to immutable SSTables with bloom
// filters and sparse indexes; reads consult the memtable and SSTables newest
// first; column families may carry Cassandra-style secondary indexes, which
// are maintained with a read-before-write — the cost that makes the paper's
// NoSQL-Min schema the slowest writer in Table 5.
package nosql

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the column types supported by the engine, matching the CQL
// types the paper's schemas need (Table 1: int, text, boolean, set<int>).
type Kind uint8

// Supported column kinds.
const (
	KindNull Kind = iota
	KindInt       // 64-bit signed integer (CQL int / bigint)
	KindText      // UTF-8 string
	KindBool
	KindFloat  // 64-bit float (CQL double)
	KindIntSet // CQL set<int>
)

// String names the kind using CQL spelling.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindText:
		return "text"
	case KindBool:
		return "boolean"
	case KindFloat:
		return "double"
	case KindIntSet:
		return "set<int>"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a CQL type name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.ReplaceAll(s, " ", "")) {
	case "int", "bigint", "counter":
		return KindInt, nil
	case "text", "varchar", "ascii":
		return KindText, nil
	case "boolean", "bool":
		return KindBool, nil
	case "double", "float":
		return KindFloat, nil
	case "set<int>", "set<bigint>":
		return KindIntSet, nil
	default:
		return KindNull, fmt.Errorf("nosql: unknown column type %q", s)
	}
}

// Value is one typed cell value. The zero Value is NULL.
type Value struct {
	Kind  Kind
	Int   int64
	Text  string
	Bool  bool
	Float float64
	Set   []int64 // sorted, deduplicated
}

// Constructors for each kind.
func Null() Value              { return Value{} }
func Int(v int64) Value        { return Value{Kind: KindInt, Int: v} }
func Text(v string) Value      { return Value{Kind: KindText, Text: v} }
func Bool(v bool) Value        { return Value{Kind: KindBool, Bool: v} }
func Float(v float64) Value    { return Value{Kind: KindFloat, Float: v} }
func IntSet(vs ...int64) Value { return Value{Kind: KindIntSet, Set: normalizeSet(vs)} }

func normalizeSet(vs []int64) []int64 {
	if len(vs) == 0 {
		return nil
	}
	out := append([]int64(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value as a CQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindText:
		return "'" + strings.ReplaceAll(v.Text, "'", "''") + "'"
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindIntSet:
		parts := make([]string, len(v.Set))
		for i, x := range v.Set {
			parts[i] = strconv.FormatInt(x, 10)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "?"
	}
}

// Equal reports deep equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt:
		return v.Int == o.Int
	case KindText:
		return v.Text == o.Text
	case KindBool:
		return v.Bool == o.Bool
	case KindFloat:
		return v.Float == o.Float
	case KindIntSet:
		if len(v.Set) != len(o.Set) {
			return false
		}
		for i := range v.Set {
			if v.Set[i] != o.Set[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values of the same kind: -1, 0 or +1. Values of
// different kinds order by kind (NULL first), so mixed comparisons are
// total, which the index encoding relies on.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindNull:
		return 0
	case KindInt:
		return cmpInt64(v.Int, o.Int)
	case KindText:
		return strings.Compare(v.Text, o.Text)
	case KindBool:
		return cmpBool(v.Bool, o.Bool)
	case KindFloat:
		switch {
		case v.Float < o.Float:
			return -1
		case v.Float > o.Float:
			return 1
		default:
			return 0
		}
	case KindIntSet:
		for i := 0; i < len(v.Set) && i < len(o.Set); i++ {
			if c := cmpInt64(v.Set[i], o.Set[i]); c != 0 {
				return c
			}
		}
		return cmpInt64(int64(len(v.Set)), int64(len(o.Set)))
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// OrderedBytes encodes the value so that byte-wise comparison matches
// Value.Compare: the key encoding for partition keys and index entries.
func (v Value) OrderedBytes() []byte {
	out := []byte{byte(v.Kind)}
	switch v.Kind {
	case KindNull:
	case KindInt:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.Int)^(1<<63)) // order-preserving
		out = append(out, buf[:]...)
	case KindText:
		out = append(out, v.Text...)
	case KindBool:
		if v.Bool {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	case KindFloat:
		bits := math.Float64bits(v.Float)
		if v.Float >= 0 || bits == 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		out = append(out, buf[:]...)
	case KindIntSet:
		for _, x := range v.Set {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(x)^(1<<63))
			out = append(out, buf[:]...)
		}
	}
	return out
}

// appendValue serializes the value for row storage.
func appendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInt:
		dst = binary.AppendVarint(dst, v.Int)
	case KindText:
		dst = binary.AppendUvarint(dst, uint64(len(v.Text)))
		dst = append(dst, v.Text...)
	case KindBool:
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float))
		dst = append(dst, buf[:]...)
	case KindIntSet:
		dst = binary.AppendUvarint(dst, uint64(len(v.Set)))
		prev := int64(0)
		for i, x := range v.Set {
			if i == 0 {
				dst = binary.AppendVarint(dst, x)
			} else {
				dst = binary.AppendUvarint(dst, uint64(x-prev)) // delta, set is sorted
			}
			prev = x
		}
	}
	return dst
}

// ErrValueCorrupt reports a malformed serialized value.
var ErrValueCorrupt = errors.New("nosql: corrupt value encoding")

// decodeValue deserializes one value, returning it and the remaining bytes.
func decodeValue(src []byte) (Value, []byte, error) {
	if len(src) == 0 {
		return Value{}, nil, ErrValueCorrupt
	}
	kind := Kind(src[0])
	src = src[1:]
	switch kind {
	case KindNull:
		return Value{}, src, nil
	case KindInt:
		x, n := binary.Varint(src)
		if n <= 0 {
			return Value{}, nil, ErrValueCorrupt
		}
		return Int(x), src[n:], nil
	case KindText:
		l, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < l {
			return Value{}, nil, ErrValueCorrupt
		}
		return Text(string(src[n : n+int(l)])), src[n+int(l):], nil
	case KindBool:
		if len(src) < 1 {
			return Value{}, nil, ErrValueCorrupt
		}
		return Bool(src[0] == 1), src[1:], nil
	case KindFloat:
		if len(src) < 8 {
			return Value{}, nil, ErrValueCorrupt
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(src))
		return Float(f), src[8:], nil
	case KindIntSet:
		l, n := binary.Uvarint(src)
		if n <= 0 || l > uint64(len(src))*10+1 {
			return Value{}, nil, ErrValueCorrupt
		}
		src = src[n:]
		set := make([]int64, l)
		var prev int64
		for i := range set {
			if i == 0 {
				x, m := binary.Varint(src)
				if m <= 0 {
					return Value{}, nil, ErrValueCorrupt
				}
				set[i], prev, src = x, x, src[m:]
			} else {
				d, m := binary.Uvarint(src)
				if m <= 0 {
					return Value{}, nil, ErrValueCorrupt
				}
				prev += int64(d)
				set[i], src = prev, src[m:]
			}
		}
		return Value{Kind: KindIntSet, Set: set}, src, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: kind %d", ErrValueCorrupt, kind)
	}
}
