package nosql

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/nosql/cql"
)

// Session executes CQL statements against a DB, holding the USE-selected
// default keyspace. It is the programmatic equivalent of cqlsh.
type Session struct {
	db        *DB
	defaultKS string
}

// Session errors.
var (
	ErrBindCount       = errors.New("nosql: wrong number of bound arguments")
	ErrBindType        = errors.New("nosql: cannot bind argument type")
	ErrNoKeyspace      = errors.New("nosql: no keyspace selected (USE one or qualify the table)")
	ErrUnsupportedCQL  = errors.New("nosql: unsupported statement shape")
	ErrWhereUnsupport  = errors.New("nosql: unsupported WHERE shape")
	ErrAggregateShape  = errors.New("nosql: aggregates cannot mix with plain columns")
	ErrAggregateColumn = errors.New("nosql: aggregate over non-numeric column")
)

// NewSession wraps a DB.
func NewSession(db *DB) *Session { return &Session{db: db} }

// Result is the outcome of a statement: for SELECT, the projected rows in
// order plus the projected column names.
type Result struct {
	Columns []string
	Rows    []Row
}

// Execute parses and runs one statement. ? placeholders bind to args in
// order; supported binding types are int, int64, string, bool, float64,
// []int64 and Value.
func (s *Session) Execute(stmt string, args ...any) (*Result, error) {
	parsed, err := cql.Parse(stmt)
	if err != nil {
		return nil, err
	}
	binder := &argBinder{args: args}
	res, err := s.exec(parsed, binder)
	if err != nil {
		return nil, err
	}
	if binder.pos != len(binder.args) {
		return nil, fmt.Errorf("%w: %d placeholders, %d arguments", ErrBindCount, binder.pos, len(binder.args))
	}
	return res, nil
}

type argBinder struct {
	args []any
	pos  int
}

func (b *argBinder) next() (Value, error) {
	if b.pos >= len(b.args) {
		return Value{}, fmt.Errorf("%w: not enough arguments", ErrBindCount)
	}
	a := b.args[b.pos]
	b.pos++
	switch v := a.(type) {
	case nil:
		return Null(), nil
	case int:
		return Int(int64(v)), nil
	case int32:
		return Int(int64(v)), nil
	case int64:
		return Int(v), nil
	case string:
		return Text(v), nil
	case bool:
		return Bool(v), nil
	case float64:
		return Float(v), nil
	case []int64:
		return IntSet(v...), nil
	case Value:
		return v, nil
	default:
		return Value{}, fmt.Errorf("%w: %T", ErrBindType, a)
	}
}

// resolveExpr converts a parsed expression (or placeholder) to a Value.
func (b *argBinder) resolveExpr(e cql.Expr) (Value, error) {
	switch {
	case e.Placeholder:
		return b.next()
	case e.Null:
		return Null(), nil
	case e.IsInt:
		return Int(e.Int), nil
	case e.IsFloat:
		return Float(e.Float), nil
	case e.IsText:
		return Text(e.Text), nil
	case e.IsBool:
		return Bool(e.Bool), nil
	case e.IsSet:
		return IntSet(e.Set...), nil
	default:
		return Null(), nil
	}
}

func (s *Session) qualify(tn cql.TableName) (string, string, error) {
	ks := tn.Keyspace
	if ks == "" {
		ks = s.defaultKS
	}
	if ks == "" {
		return "", "", ErrNoKeyspace
	}
	return ks, tn.Table, nil
}

func (s *Session) exec(stmt cql.Statement, b *argBinder) (*Result, error) {
	switch st := stmt.(type) {
	case cql.Use:
		if _, ok := s.db.keyspaces[strings.ToLower(st.Keyspace)]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchKeyspace, st.Keyspace)
		}
		s.defaultKS = st.Keyspace
		return &Result{}, nil

	case cql.CreateKeyspace:
		return &Result{}, s.db.CreateKeyspace(st.Name, st.IfNotExists)

	case cql.CreateTable:
		ks, table, err := s.qualify(st.Name)
		if err != nil {
			return nil, err
		}
		cols := make([]Column, len(st.Columns))
		for i, cd := range st.Columns {
			kind, err := ParseKind(cd.Type)
			if err != nil {
				return nil, err
			}
			cols[i] = Column{Name: cd.Name, Kind: kind}
		}
		schema, err := NewTableSchema(ks, table, cols, st.Key)
		if err != nil {
			return nil, err
		}
		return &Result{}, s.db.CreateTable(schema, st.IfNotExists)

	case cql.CreateIndex:
		ks, table, err := s.qualify(st.Table)
		if err != nil {
			return nil, err
		}
		return &Result{}, s.db.CreateIndex(ks, table, st.Column, st.IfNotExists)

	case cql.Insert:
		ks, table, err := s.qualify(st.Table)
		if err != nil {
			return nil, err
		}
		row := make(Row, len(st.Columns))
		for i, col := range st.Columns {
			v, err := b.resolveExpr(st.Values[i])
			if err != nil {
				return nil, err
			}
			if !v.IsNull() {
				row[strings.ToLower(col)] = v
			}
		}
		return &Result{}, s.db.Insert(ks, table, row)

	case cql.Select:
		return s.execSelect(st, b)

	case cql.Update:
		return s.execUpdate(st, b)

	case cql.Delete:
		ks, table, err := s.qualify(st.Table)
		if err != nil {
			return nil, err
		}
		schema, err := s.db.Schema(ks, table)
		if err != nil {
			return nil, err
		}
		if len(st.Where) != 1 || st.Where[0].Op != "=" ||
			!strings.EqualFold(st.Where[0].Column, schema.Key) {
			return nil, fmt.Errorf("%w: DELETE needs WHERE %s = ?", ErrWhereUnsupport, schema.Key)
		}
		key, err := b.resolveExpr(st.Where[0].Value)
		if err != nil {
			return nil, err
		}
		return &Result{}, s.db.Delete(ks, table, key)

	case cql.Truncate:
		ks, table, err := s.qualify(st.Table)
		if err != nil {
			return nil, err
		}
		return &Result{}, s.truncate(ks, table)

	case cql.DropTable:
		ks, table, err := s.qualify(st.Table)
		if err != nil {
			return nil, err
		}
		return &Result{}, s.db.DropTable(ks, table, st.IfExists)

	case cql.DropKeyspace:
		if strings.EqualFold(s.defaultKS, st.Keyspace) {
			s.defaultKS = ""
		}
		return &Result{}, s.db.DropKeyspace(st.Keyspace, st.IfExists)

	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedCQL, stmt)
	}
}

// truncate deletes every row of a table (scan + tombstones).
func (s *Session) truncate(ks, table string) error {
	schema, err := s.db.Schema(ks, table)
	if err != nil {
		return err
	}
	var keys []Value
	err = s.db.Scan(ks, table, func(r Row) bool {
		keys = append(keys, r.Get(schema.Key))
		return true
	})
	if err != nil {
		return err
	}
	batch := NewBatch()
	for _, k := range keys {
		batch.Delete(ks, table, k)
	}
	return s.db.ApplyBatch(batch)
}

// execSelect plans a SELECT: primary-key point read, secondary-index read,
// or (with ALLOW FILTERING) a filtered scan — Cassandra's rules.
func (s *Session) execSelect(st cql.Select, b *argBinder) (*Result, error) {
	ks, table, err := s.qualify(st.Table)
	if err != nil {
		return nil, err
	}
	schema, err := s.db.Schema(ks, table)
	if err != nil {
		return nil, err
	}

	type boundPred struct {
		col string
		op  string
		val Value
	}
	preds := make([]boundPred, len(st.Where))
	for i, p := range st.Where {
		v, err := b.resolveExpr(p.Value)
		if err != nil {
			return nil, err
		}
		if _, err := schema.Column(p.Column); err != nil {
			return nil, err
		}
		preds[i] = boundPred{col: strings.ToLower(p.Column), op: p.Op, val: v}
	}

	// Choose the access path: an equality on the primary key beats an
	// equality on an indexed column; otherwise a full scan needs ALLOW
	// FILTERING (unless there is no predicate at all).
	var candidates []Row
	planned := -1
	for i, p := range preds {
		if p.op == "=" && strings.EqualFold(p.col, schema.Key) {
			row, ok, err := s.db.Get(ks, table, p.val)
			if err != nil {
				return nil, err
			}
			if ok {
				candidates = []Row{row}
			}
			planned = i
			break
		}
	}
	if planned < 0 {
		for i, p := range preds {
			if p.op == "=" && s.db.HasIndex(ks, table, p.col) {
				rows, err := s.db.SelectByIndex(ks, table, p.col, p.val)
				if err != nil {
					return nil, err
				}
				candidates = rows
				planned = i
				break
			}
		}
	}
	if planned < 0 {
		if len(preds) > 0 && !st.AllowFiltering {
			return nil, fmt.Errorf("%w: add ALLOW FILTERING or an index on a predicate column",
				ErrNeedFiltering)
		}
		err := s.db.Scan(ks, table, func(r Row) bool {
			candidates = append(candidates, r)
			return true
		})
		if err != nil {
			return nil, err
		}
	}

	// Apply the remaining predicates as filters.
	matches := candidates[:0]
	for _, row := range candidates {
		ok := true
		for i, p := range preds {
			if i == planned {
				continue
			}
			if !predicateHolds(row.Get(p.col), p.op, p.val) {
				ok = false
				break
			}
		}
		if ok {
			matches = append(matches, row)
		}
	}

	// Aggregates vs. plain projection.
	hasAgg := false
	for _, it := range st.Items {
		if it.Func != "" {
			hasAgg = true
		}
	}
	if hasAgg {
		for _, it := range st.Items {
			if it.Func == "" {
				return nil, ErrAggregateShape
			}
		}
		return aggregateResult(st.Items, matches)
	}

	if st.Limit > 0 && len(matches) > st.Limit {
		matches = matches[:st.Limit]
	}
	var cols []string
	star := false
	for _, it := range st.Items {
		if it.Star {
			star = true
			break
		}
		cols = append(cols, strings.ToLower(it.Column))
	}
	if star {
		cols = cols[:0]
		for _, c := range schema.Columns {
			cols = append(cols, strings.ToLower(c.Name))
		}
	} else {
		for _, c := range cols {
			if _, err := schema.Column(c); err != nil {
				return nil, err
			}
		}
	}
	out := make([]Row, len(matches))
	for i, row := range matches {
		proj := make(Row, len(cols))
		for _, c := range cols {
			if v := row.Get(c); !v.IsNull() {
				proj[c] = v
			}
		}
		out[i] = proj
	}
	return &Result{Columns: cols, Rows: out}, nil
}

func predicateHolds(v Value, op string, want Value) bool {
	// NULL never satisfies a comparison except != of a non-null value.
	if v.IsNull() {
		return op == "!=" && !want.IsNull()
	}
	if v.Kind == KindInt && want.Kind == KindFloat {
		v = Float(float64(v.Int))
	}
	if v.Kind == KindFloat && want.Kind == KindInt {
		want = Float(float64(want.Int))
	}
	c := v.Compare(want)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

func aggregateResult(items []cql.SelectItem, rows []Row) (*Result, error) {
	outRow := make(Row, len(items))
	var cols []string
	for _, it := range items {
		name := it.Func + "(" + strings.ToLower(it.Column) + ")"
		if it.Star {
			name = it.Func + "(*)"
		}
		cols = append(cols, name)
		if it.Func == "count" {
			n := 0
			for _, r := range rows {
				if it.Star || !r.Get(it.Column).IsNull() {
					n++
				}
			}
			outRow[name] = Int(int64(n))
			continue
		}
		var best Value
		var sum float64
		var cnt int64
		for _, r := range rows {
			v := r.Get(it.Column)
			if v.IsNull() {
				continue
			}
			switch v.Kind {
			case KindInt:
				sum += float64(v.Int)
			case KindFloat:
				sum += v.Float
			default:
				if it.Func == "sum" || it.Func == "avg" {
					return nil, fmt.Errorf("%w: %s", ErrAggregateColumn, it.Column)
				}
			}
			cnt++
			if best.IsNull() ||
				(it.Func == "min" && v.Compare(best) < 0) ||
				(it.Func == "max" && v.Compare(best) > 0) {
				best = v
			}
		}
		switch it.Func {
		case "min", "max":
			outRow[name] = best
		case "sum":
			outRow[name] = Float(sum)
		case "avg":
			if cnt == 0 {
				outRow[name] = Null()
			} else {
				outRow[name] = Float(sum / float64(cnt))
			}
		}
	}
	return &Result{Columns: cols, Rows: []Row{outRow}}, nil
}

// MustExecute is Execute for setup code known to be valid; it panics on
// error (used in tests and examples).
func (s *Session) MustExecute(stmt string, args ...any) *Result {
	res, err := s.Execute(stmt, args...)
	if err != nil {
		panic(fmt.Sprintf("cql %q: %v", stmt, err))
	}
	return res
}

// execUpdate merges SET assignments into the existing row (or creates one —
// CQL UPDATE is an upsert).
func (s *Session) execUpdate(st cql.Update, b *argBinder) (*Result, error) {
	ks, table, err := s.qualify(st.Table)
	if err != nil {
		return nil, err
	}
	schema, err := s.db.Schema(ks, table)
	if err != nil {
		return nil, err
	}
	// Bind assignments first: their placeholders precede the WHERE ones.
	row := make(Row, len(st.Set)+1)
	for _, asg := range st.Set {
		v, err := b.resolveExpr(asg.Value)
		if err != nil {
			return nil, err
		}
		row[strings.ToLower(asg.Column)] = v
	}
	if len(st.Where) != 1 || st.Where[0].Op != "=" ||
		!strings.EqualFold(st.Where[0].Column, schema.Key) {
		return nil, fmt.Errorf("%w: UPDATE needs WHERE %s = ?", ErrWhereUnsupport, schema.Key)
	}
	key, err := b.resolveExpr(st.Where[0].Value)
	if err != nil {
		return nil, err
	}
	old, ok, err := s.db.Get(ks, table, key)
	if err != nil {
		return nil, err
	}
	merged := make(Row)
	if ok {
		for k, v := range old {
			merged[k] = v
		}
	}
	for k, v := range row {
		if v.IsNull() {
			delete(merged, k)
		} else {
			merged[k] = v
		}
	}
	merged[strings.ToLower(schema.Key)] = key
	return &Result{}, s.db.Insert(ks, table, merged)
}
