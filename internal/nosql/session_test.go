package nosql

import (
	"errors"
	"testing"

	"repro/internal/nosql/cql"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	return NewSession(testDB(t, Options{}))
}

// TestPaperFigure3Insert executes the paper's Fig. 3 CQL verbatim (modulo
// the aggregate columns our richer measures add) against a DWARF_CELL table.
func TestPaperFigure3Insert(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE dwarf")
	s.MustExecute("USE dwarf")
	s.MustExecute(`CREATE TABLE DWARF_CELL (
		id int PRIMARY KEY, key text, measure int, parentNode int,
		pointerNode int, leaf boolean, schema_id int, dimension_table_name text)`)
	s.MustExecute(`INSERT INTO DWARF_CELL (id, key, measure, parentNode,
		pointerNode, leaf, schema_id, dimension_table_name)
		VALUES (3, 'Fenian St', 3, 3, null, true, 1, 'Station')`)

	res := s.MustExecute("SELECT key, measure, leaf FROM DWARF_CELL WHERE id = 3")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Get("key").Text != "Fenian St" || row.Get("measure").Int != 3 || !row.Get("leaf").Bool {
		t.Errorf("row = %v", row)
	}
	if !row.Get("pointernode").IsNull() {
		// projected columns only — pointerNode wasn't selected
		t.Errorf("pointerNode should be absent: %v", row)
	}
}

func TestSessionPlaceholders(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE ks")
	s.MustExecute("USE ks")
	s.MustExecute("CREATE TABLE t (id int PRIMARY KEY, name text, kids set<int>, f double)")
	if _, err := s.Execute("INSERT INTO t (id, name, kids, f) VALUES (?, ?, ?, ?)",
		int64(1), "x", []int64{3, 1}, 2.5); err != nil {
		t.Fatal(err)
	}
	res := s.MustExecute("SELECT * FROM t WHERE id = ?", 1)
	if len(res.Rows) != 1 || !res.Rows[0].Get("kids").Equal(IntSet(1, 3)) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Wrong arg count.
	if _, err := s.Execute("SELECT * FROM t WHERE id = ?"); !errors.Is(err, ErrBindCount) {
		t.Errorf("missing arg: %v", err)
	}
	if _, err := s.Execute("SELECT * FROM t WHERE id = ?", 1, 2); !errors.Is(err, ErrBindCount) {
		t.Errorf("extra arg: %v", err)
	}
	if _, err := s.Execute("INSERT INTO t (id) VALUES (?)", struct{}{}); !errors.Is(err, ErrBindType) {
		t.Errorf("bad type: %v", err)
	}
}

func TestSessionSelectPlans(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE ks")
	s.MustExecute("CREATE TABLE ks.cells (id int PRIMARY KEY, parent int, name text)")
	for i := 0; i < 30; i++ {
		s.MustExecute("INSERT INTO ks.cells (id, parent, name) VALUES (?, ?, ?)",
			i, i%3, "n")
	}
	// Non-indexed predicate requires ALLOW FILTERING.
	if _, err := s.Execute("SELECT * FROM ks.cells WHERE parent = 1"); !errors.Is(err, ErrNeedFiltering) {
		t.Errorf("want ErrNeedFiltering, got %v", err)
	}
	res := s.MustExecute("SELECT id FROM ks.cells WHERE parent = 1 ALLOW FILTERING")
	if len(res.Rows) != 10 {
		t.Errorf("filtering rows = %d", len(res.Rows))
	}
	// With an index the same query plans through it.
	s.MustExecute("CREATE INDEX ON ks.cells (parent)")
	res = s.MustExecute("SELECT id FROM ks.cells WHERE parent = 1")
	if len(res.Rows) != 10 {
		t.Errorf("indexed rows = %d", len(res.Rows))
	}
	// Compound predicate: index path + residual filter.
	res = s.MustExecute("SELECT id FROM ks.cells WHERE parent = 1 AND id >= 16")
	if len(res.Rows) != 5 {
		t.Errorf("compound rows = %d", len(res.Rows))
	}
	// LIMIT.
	res = s.MustExecute("SELECT id FROM ks.cells LIMIT 7")
	if len(res.Rows) != 7 {
		t.Errorf("limit rows = %d", len(res.Rows))
	}
	// Range predicates with filtering.
	res = s.MustExecute("SELECT id FROM ks.cells WHERE id < 5 AND id != 2 ALLOW FILTERING")
	if len(res.Rows) != 4 {
		t.Errorf("range rows = %d", len(res.Rows))
	}
}

func TestSessionAggregates(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE ks")
	s.MustExecute("USE ks")
	s.MustExecute("CREATE TABLE t (id int PRIMARY KEY, v int)")
	for i := 1; i <= 10; i++ {
		s.MustExecute("INSERT INTO t (id, v) VALUES (?, ?)", i, i*10)
	}
	res := s.MustExecute("SELECT COUNT(*) FROM t")
	if res.Rows[0].Get("count(*)").Int != 10 {
		t.Errorf("count = %v", res.Rows[0])
	}
	res = s.MustExecute("SELECT MAX(id), MIN(v), SUM(v), AVG(v) FROM t")
	row := res.Rows[0]
	if row.Get("max(id)").Int != 10 || row.Get("min(v)").Int != 10 {
		t.Errorf("max/min = %v", row)
	}
	if row.Get("sum(v)").Float != 550 || row.Get("avg(v)").Float != 55 {
		t.Errorf("sum/avg = %v", row)
	}
	// The mapper's next-id query shape.
	res = s.MustExecute("SELECT MAX(id) FROM t WHERE v >= 0 ALLOW FILTERING")
	if res.Rows[0].Get("max(id)").Int != 10 {
		t.Errorf("max with filter = %v", res.Rows[0])
	}
	if _, err := s.Execute("SELECT id, COUNT(*) FROM t"); !errors.Is(err, ErrAggregateShape) {
		t.Errorf("mixed agg: %v", err)
	}
}

func TestSessionUpdateDeleteTruncate(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE ks")
	s.MustExecute("USE ks")
	s.MustExecute("CREATE TABLE t (id int PRIMARY KEY, a text, b int)")
	s.MustExecute("INSERT INTO t (id, a, b) VALUES (1, 'x', 5)")

	// UPDATE merges (unlike INSERT, which replaces).
	s.MustExecute("UPDATE t SET a = 'y' WHERE id = 1")
	res := s.MustExecute("SELECT * FROM t WHERE id = 1")
	if res.Rows[0].Get("a").Text != "y" || res.Rows[0].Get("b").Int != 5 {
		t.Errorf("update lost columns: %v", res.Rows[0])
	}
	// UPDATE is an upsert.
	s.MustExecute("UPDATE t SET a = 'new' WHERE id = 2")
	res = s.MustExecute("SELECT * FROM t WHERE id = 2")
	if len(res.Rows) != 1 || res.Rows[0].Get("a").Text != "new" {
		t.Errorf("upsert: %v", res.Rows)
	}
	// Paper §4: UPDATE the schema row's size after bulk load.
	s.MustExecute("UPDATE t SET b = ? WHERE id = ?", 99, 1)
	res = s.MustExecute("SELECT b FROM t WHERE id = 1")
	if res.Rows[0].Get("b").Int != 99 {
		t.Errorf("update with placeholders: %v", res.Rows[0])
	}

	s.MustExecute("DELETE FROM t WHERE id = 1")
	res = s.MustExecute("SELECT * FROM t WHERE id = 1")
	if len(res.Rows) != 0 {
		t.Errorf("delete: %v", res.Rows)
	}

	s.MustExecute("TRUNCATE t")
	res = s.MustExecute("SELECT COUNT(*) FROM t")
	if res.Rows[0].Get("count(*)").Int != 0 {
		t.Errorf("truncate: %v", res.Rows[0])
	}
}

func TestSessionUseAndQualification(t *testing.T) {
	s := testSession(t)
	if _, err := s.Execute("SELECT * FROM unqualified"); !errors.Is(err, ErrNoKeyspace) {
		t.Errorf("no keyspace: %v", err)
	}
	if _, err := s.Execute("USE missing"); !errors.Is(err, ErrNoSuchKeyspace) {
		t.Errorf("USE missing: %v", err)
	}
	s.MustExecute("CREATE KEYSPACE IF NOT EXISTS ks WITH replication = whatever")
	s.MustExecute("USE ks")
	s.MustExecute("CREATE TABLE IF NOT EXISTS t (id int PRIMARY KEY)")
	s.MustExecute("CREATE TABLE IF NOT EXISTS t (id int PRIMARY KEY)") // idempotent
	s.MustExecute("INSERT INTO t (id) VALUES (1)")
	res := s.MustExecute("SELECT * FROM ks.t")
	if len(res.Rows) != 1 {
		t.Errorf("qualified select: %v", res.Rows)
	}
}

func TestSessionDropStatements(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE ks")
	s.MustExecute("USE ks")
	s.MustExecute("CREATE TABLE t (id int PRIMARY KEY)")
	s.MustExecute("INSERT INTO t (id) VALUES (1)")
	s.MustExecute("DROP TABLE t")
	if _, err := s.Execute("SELECT * FROM t"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("dropped table: %v", err)
	}
	if _, err := s.Execute("DROP TABLE t"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("double drop: %v", err)
	}
	s.MustExecute("DROP TABLE IF EXISTS t")
	// Recreate after drop works and is empty.
	s.MustExecute("CREATE TABLE t (id int PRIMARY KEY)")
	res := s.MustExecute("SELECT COUNT(*) FROM t")
	if res.Rows[0].Get("count(*)").Int != 0 {
		t.Errorf("recreated table not empty: %v", res.Rows[0])
	}
	s.MustExecute("DROP KEYSPACE ks")
	if _, err := s.Execute("SELECT * FROM t"); !errors.Is(err, ErrNoKeyspace) {
		t.Errorf("after keyspace drop the USE selection resets: %v", err)
	}
	if _, err := s.Execute("DROP KEYSPACE ks"); !errors.Is(err, ErrNoSuchKeyspace) {
		t.Errorf("double keyspace drop: %v", err)
	}
	s.MustExecute("DROP KEYSPACE IF EXISTS ks")
}

func TestSessionSyntaxErrors(t *testing.T) {
	s := testSession(t)
	for _, bad := range []string{
		"FROB the table",
		"SELECT FROM t",
		"INSERT INTO t (a, b) VALUES (1)",
		"CREATE TABLE t (id int)", // no primary key
		"SELECT * FROM t WHERE a ~ 1",
		"INSERT INTO t (a) VALUES ('unterminated)",
	} {
		if _, err := s.Execute(bad); !errors.Is(err, cql.ErrSyntax) {
			t.Errorf("%q: err = %v, want ErrSyntax", bad, err)
		}
	}
}

func TestSessionSelectProjectionErrors(t *testing.T) {
	s := testSession(t)
	s.MustExecute("CREATE KEYSPACE ks")
	s.MustExecute("USE ks")
	s.MustExecute("CREATE TABLE t (id int PRIMARY KEY, a int)")
	if _, err := s.Execute("SELECT nope FROM t"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("unknown projection: %v", err)
	}
	if _, err := s.Execute("SELECT * FROM t WHERE nope = 1"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("unknown predicate: %v", err)
	}
}
