package nosql

// Batch accumulates mutations that are committed with a single commit-log
// record — the bulk-insert path the paper uses for cube persistence ("the
// DWARF cubes were inserted in bulk").
//
// Reads performed for secondary-index maintenance observe the database
// state from before the batch, so a batch should not upsert the same
// primary key twice (the schema mappers never do).
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	keyspace string
	table    string
	row      Row   // insert payload (nil for delete)
	key      Value // delete key
	del      bool
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Insert queues an upsert.
func (b *Batch) Insert(keyspace, table string, row Row) *Batch {
	b.ops = append(b.ops, batchOp{keyspace: keyspace, table: table, row: row})
	return b
}

// Delete queues a row deletion.
func (b *Batch) Delete(keyspace, table string, key Value) *Batch {
	b.ops = append(b.ops, batchOp{keyspace: keyspace, table: table, key: key, del: true})
	return b
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// ApplyBatch validates, logs and applies all queued operations. Rows of
// tables without secondary indexes are group-committed as one commit-log
// record. Rows of indexed tables go through the write path one at a time —
// each row's base+index mutations form their own commit-log record, flushed
// individually — modelling how Cassandra serializes batch rows through the
// per-mutation write path when local secondary indexes must be maintained.
// This is the mechanism behind the paper's Table 5 outcome, where the
// index-bearing NoSQL-Min schema is by far the slowest bulk writer.
func (db *DB) ApplyBatch(b *Batch) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	var grouped []mutation
	for _, op := range b.ops {
		cf, err := db.lookupCF(op.keyspace, op.table)
		if err != nil {
			return err
		}
		var opMuts []mutation
		if op.del {
			opMuts, err = db.deleteMutations(op.keyspace, cf, op.key)
		} else {
			opMuts, err = db.rowMutations(op.keyspace, cf, op.row)
		}
		if err != nil {
			return err
		}
		if len(cf.indexes) == 0 || db.opts.GroupCommitIndexedBatches {
			grouped = append(grouped, opMuts...)
			continue
		}
		if err := db.commitSerialized(opMuts); err != nil {
			return err
		}
	}
	return db.commit(grouped)
}

// commitSerialized logs one row's mutations as an individually flushed
// record, then applies them.
func (db *DB) commitSerialized(muts []mutation) error {
	if len(muts) == 0 {
		return nil
	}
	if err := db.log.append(muts); err != nil {
		return err
	}
	if err := db.log.flush(); err != nil {
		return err
	}
	touched := make(map[*columnFamily]bool)
	for _, m := range muts {
		cf, err := db.resolveCF(m.keyspace, m.table)
		if err != nil {
			return err
		}
		cf.apply(m)
		touched[cf] = true
	}
	for cf := range touched {
		if err := db.maybeFlush(cf); err != nil {
			return err
		}
	}
	return nil
}
