package nosql

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// Engine errors surfaced to callers and the CQL session.
var (
	ErrKeyspaceExists    = errors.New("nosql: keyspace already exists")
	ErrNoSuchKeyspace    = errors.New("nosql: no such keyspace")
	ErrTableExists       = errors.New("nosql: table already exists")
	ErrNoSuchTable       = errors.New("nosql: no such table")
	ErrNoSuchColumn      = errors.New("nosql: no such column")
	ErrBadPrimaryKey     = errors.New("nosql: invalid primary key")
	ErrTypeMismatch      = errors.New("nosql: value type does not match column type")
	ErrIndexExists       = errors.New("nosql: index already exists")
	ErrNoSuchIndex       = errors.New("nosql: no such index")
	ErrNeedFiltering     = errors.New("nosql: predicate needs ALLOW FILTERING or an index")
	ErrClosed            = errors.New("nosql: database is closed")
	ErrBadIdentifier     = errors.New("nosql: invalid identifier")
	ErrIndexUnsupported  = errors.New("nosql: cannot index this column type")
	ErrPrimaryKeyMissing = errors.New("nosql: INSERT must provide the primary key column")
)

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func checkIdent(name string) error {
	if !identRe.MatchString(name) {
		return fmt.Errorf("%w: %q", ErrBadIdentifier, name)
	}
	return nil
}

// Column describes one column of a column family.
type Column struct {
	Name string
	Kind Kind
}

// TableSchema describes a column family: its ordered columns and the single
// partition-key column (the paper's schemas all use a single int id key).
type TableSchema struct {
	Keyspace string
	Name     string
	Columns  []Column
	// Key is the primary (partition) key column name.
	Key string
}

// NewTableSchema validates and builds a schema.
func NewTableSchema(keyspace, name string, cols []Column, key string) (*TableSchema, error) {
	if err := checkIdent(keyspace); err != nil {
		return nil, err
	}
	if err := checkIdent(name); err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: table %s has no columns", ErrBadPrimaryKey, name)
	}
	seen := map[string]bool{}
	keyFound := false
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if err := checkIdent(c.Name); err != nil {
			return nil, err
		}
		if seen[lc] {
			return nil, fmt.Errorf("nosql: duplicate column %q", c.Name)
		}
		seen[lc] = true
		if lc == strings.ToLower(key) {
			keyFound = true
			if c.Kind == KindIntSet {
				return nil, fmt.Errorf("%w: set column %q cannot be the key", ErrBadPrimaryKey, key)
			}
		}
	}
	if !keyFound {
		return nil, fmt.Errorf("%w: key column %q not among columns", ErrBadPrimaryKey, key)
	}
	s := &TableSchema{Keyspace: keyspace, Name: name, Columns: cols, Key: key}
	return s, nil
}

// ColumnIndex returns the position of a column (case-insensitive), or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the column metadata by name.
func (s *TableSchema) Column(name string) (Column, error) {
	if i := s.ColumnIndex(name); i >= 0 {
		return s.Columns[i], nil
	}
	return Column{}, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Name, name)
}

// KeyIndex returns the position of the primary key column.
func (s *TableSchema) KeyIndex() int { return s.ColumnIndex(s.Key) }

// CheckValue verifies that v is assignable to the named column. Integer
// values are accepted for float columns (widening), mirroring CQL literals.
func (s *TableSchema) CheckValue(name string, v Value) (Value, error) {
	col, err := s.Column(name)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return v, nil
	}
	if col.Kind == KindFloat && v.Kind == KindInt {
		return Float(float64(v.Int)), nil
	}
	if v.Kind != col.Kind {
		return Value{}, fmt.Errorf("%w: column %s is %s, got %s",
			ErrTypeMismatch, name, col.Kind, v.Kind)
	}
	return v, nil
}

// Row is a decoded row: column name (lower-case) to value. Absent columns
// are NULL.
type Row map[string]Value

// Get returns the value of a column, NULL when absent.
func (r Row) Get(name string) Value {
	if v, ok := r[strings.ToLower(name)]; ok {
		return v
	}
	return Null()
}

// encodeRow serializes a row following the schema's column order: a presence
// bitmap then each present value.
func encodeRow(s *TableSchema, r Row) []byte {
	nbits := (len(s.Columns) + 7) / 8
	out := make([]byte, nbits, nbits+len(s.Columns)*8)
	for i, c := range s.Columns {
		v := r.Get(c.Name)
		if v.IsNull() {
			continue
		}
		out[i/8] |= 1 << (i % 8)
		out = appendValue(out, v)
	}
	return out
}

// decodeRow deserializes a row encoded by encodeRow.
func decodeRow(s *TableSchema, data []byte) (Row, error) {
	nbits := (len(s.Columns) + 7) / 8
	if len(data) < nbits {
		return nil, ErrValueCorrupt
	}
	bitmap := data[:nbits]
	rest := data[nbits:]
	row := make(Row, len(s.Columns))
	for i, c := range s.Columns {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		var v Value
		var err error
		v, rest, err = decodeValue(rest)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", c.Name, err)
		}
		row[strings.ToLower(c.Name)] = v
	}
	return row, nil
}
