package cql

import (
	"strconv"
	"strings"
)

// Parse parses one CQL statement (a trailing semicolon is optional).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSemi)
	if p.cur().kind != tokEOF {
		return nil, syntaxErrf(p.cur().pos, "unexpected %s after statement", p.cur().kind)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// accept consumes the token if it matches.
func (p *parser) accept(kind tokenKind) bool {
	if p.cur().kind == kind {
		p.pos++
		return true
	}
	return false
}

// acceptKeyword consumes a case-insensitive keyword identifier.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur().kind != kind {
		return token{}, syntaxErrf(p.cur().pos, "expected %s, got %s %q", kind, p.cur().kind, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return syntaxErrf(p.cur().pos, "expected %q, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.acceptKeyword("CREATE"):
		return p.parseCreate()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	case p.acceptKeyword("SELECT"):
		return p.parseSelect()
	case p.acceptKeyword("UPDATE"):
		return p.parseUpdate()
	case p.acceptKeyword("DELETE"):
		return p.parseDelete()
	case p.acceptKeyword("USE"):
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return Use{Keyspace: t.text}, nil
	case p.acceptKeyword("TRUNCATE"):
		tn, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		return Truncate{Table: tn}, nil
	case p.acceptKeyword("DROP"):
		return p.parseDrop()
	default:
		return nil, syntaxErrf(p.cur().pos, "unknown statement start %q", p.cur().text)
	}
}

func (p *parser) parseDrop() (Statement, error) {
	parseIfExists := func() (bool, error) {
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return false, err
			}
			return true, nil
		}
		return false, nil
	}
	switch {
	case p.acceptKeyword("TABLE"), p.acceptKeyword("COLUMNFAMILY"):
		ifExists, err := parseIfExists()
		if err != nil {
			return nil, err
		}
		tn, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		return DropTable{Table: tn, IfExists: ifExists}, nil
	case p.acceptKeyword("KEYSPACE"):
		ifExists, err := parseIfExists()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return DropKeyspace{Keyspace: name.text, IfExists: ifExists}, nil
	default:
		return nil, syntaxErrf(p.cur().pos, "expected TABLE or KEYSPACE after DROP")
	}
}

func (p *parser) parseIfNotExists() (bool, error) {
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return false, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) parseTableName() (TableName, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return TableName{}, err
	}
	if p.accept(tokDot) {
		second, err := p.expect(tokIdent)
		if err != nil {
			return TableName{}, err
		}
		return TableName{Keyspace: first.text, Table: second.text}, nil
	}
	return TableName{Table: first.text}, nil
}

func (p *parser) parseCreate() (Statement, error) {
	switch {
	case p.acceptKeyword("KEYSPACE"):
		ine, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		// Swallow an optional WITH ... clause (replication etc.): accept
		// and ignore everything to end of statement.
		if p.acceptKeyword("WITH") {
			for p.cur().kind != tokEOF && p.cur().kind != tokSemi {
				p.next()
			}
		}
		return CreateKeyspace{Name: name.text, IfNotExists: ine}, nil
	case p.acceptKeyword("TABLE"), p.acceptKeyword("COLUMNFAMILY"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, syntaxErrf(p.cur().pos, "expected KEYSPACE, TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	ct := CreateTable{Name: tn, IfNotExists: ine}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			col, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if ct.Key != "" && !strings.EqualFold(ct.Key, col.text) {
				return nil, syntaxErrf(col.pos, "conflicting PRIMARY KEY declarations")
			}
			ct.Key = col.text
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		} else {
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: name.text, Type: typ})
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				if ct.Key != "" && !strings.EqualFold(ct.Key, name.text) {
					return nil, syntaxErrf(name.pos, "conflicting PRIMARY KEY declarations")
				}
				ct.Key = name.text
			}
		}
		if p.accept(tokComma) {
			continue
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		break
	}
	if ct.Key == "" {
		return nil, syntaxErrf(p.cur().pos, "CREATE TABLE needs a PRIMARY KEY")
	}
	return ct, nil
}

// parseType reads a type name, including the generic set<int> form.
func (p *parser) parseType() (string, error) {
	base, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	if p.accept(tokLt) {
		inner, err := p.expect(tokIdent)
		if err != nil {
			return "", err
		}
		if _, err := p.expect(tokGt); err != nil {
			return "", err
		}
		return strings.ToLower(base.text) + "<" + strings.ToLower(inner.text) + ">", nil
	}
	return strings.ToLower(base.text), nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	ci := CreateIndex{IfNotExists: ine}
	// Optional index name before ON.
	if p.cur().kind == tokIdent && !strings.EqualFold(p.cur().text, "ON") {
		ci.IndexName = p.next().text
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ci.Table = tn
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	col, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	ci.Column = col.text
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ins := Insert{Table: tn}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col.text)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, e)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if len(ins.Columns) != len(ins.Values) {
		return nil, syntaxErrf(p.cur().pos, "INSERT has %d columns but %d values",
			len(ins.Columns), len(ins.Values))
	}
	return ins, nil
}

func (p *parser) parseSelect() (Statement, error) {
	sel := Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	sel.Table = tn
	if p.acceptKeyword("WHERE") {
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, err
		}
		sel.Where = preds
	}
	if p.acceptKeyword("LIMIT") {
		t, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, syntaxErrf(t.pos, "bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	if p.acceptKeyword("ALLOW") {
		if err := p.expectKeyword("FILTERING"); err != nil {
			return nil, err
		}
		sel.AllowFiltering = true
	}
	return sel, nil
}

var aggregateFuncs = map[string]bool{
	"count": true, "min": true, "max": true, "sum": true, "avg": true,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokStar) {
		return SelectItem{Star: true}, nil
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return SelectItem{}, err
	}
	if aggregateFuncs[strings.ToLower(name.text)] && p.accept(tokLParen) {
		item := SelectItem{Func: strings.ToLower(name.text)}
		if p.accept(tokStar) {
			item.Star = true
		} else {
			col, err := p.expect(tokIdent)
			if err != nil {
				return SelectItem{}, err
			}
			item.Column = col.text
		}
		if _, err := p.expect(tokRParen); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	return SelectItem{Column: name.text}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	up := Update{Table: tn}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col.text, Value: e})
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, err
	}
	up.Where = preds
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	preds, err := p.parsePredicates()
	if err != nil {
		return nil, err
	}
	return Delete{Table: tn, Where: preds}, nil
}

func (p *parser) parsePredicates() ([]Predicate, error) {
	var preds []Predicate
	for {
		col, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		var op string
		switch {
		case p.accept(tokEq):
			op = "="
		case p.accept(tokNe):
			op = "!="
		case p.accept(tokLe):
			op = "<="
		case p.accept(tokLt):
			op = "<"
		case p.accept(tokGe):
			op = ">="
		case p.accept(tokGt):
			op = ">"
		default:
			return nil, syntaxErrf(p.cur().pos, "expected comparison operator, got %q", p.cur().text)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		preds = append(preds, Predicate{Column: col.text, Op: op, Value: e})
		if p.acceptKeyword("AND") {
			continue
		}
		return preds, nil
	}
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokQuestion:
		p.next()
		return Expr{Placeholder: true}, nil
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Expr{}, syntaxErrf(t.pos, "bad integer %q", t.text)
		}
		return Expr{IsInt: true, Int: v}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Expr{}, syntaxErrf(t.pos, "bad float %q", t.text)
		}
		return Expr{IsFloat: true, Float: v}, nil
	case tokString:
		p.next()
		return Expr{IsText: true, Text: t.text}, nil
	case tokLBrace:
		p.next()
		e := Expr{IsSet: true}
		if p.accept(tokRBrace) {
			return e, nil
		}
		for {
			it, err := p.expect(tokInt)
			if err != nil {
				return Expr{}, err
			}
			v, err := strconv.ParseInt(it.text, 10, 64)
			if err != nil {
				return Expr{}, syntaxErrf(it.pos, "bad set element %q", it.text)
			}
			e.Set = append(e.Set, v)
			if p.accept(tokComma) {
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return Expr{}, err
		}
		return e, nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.next()
			return Expr{IsBool: true, Bool: true}, nil
		case strings.EqualFold(t.text, "false"):
			p.next()
			return Expr{IsBool: true, Bool: false}, nil
		case strings.EqualFold(t.text, "null"):
			p.next()
			return Expr{Null: true}, nil
		}
	}
	return Expr{}, syntaxErrf(t.pos, "expected a literal or '?', got %q", t.text)
}
