package cql

import (
	"errors"
	"testing"
)

func TestParseCreateTableForms(t *testing.T) {
	// Trailing PRIMARY KEY clause.
	st, err := Parse(`CREATE TABLE ks.dwarf_node (
		id int, parentIds set<int>, childrenIds set<int>, root boolean,
		schema_id int, PRIMARY KEY (id));`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(CreateTable)
	if ct.Name.Keyspace != "ks" || ct.Name.Table != "dwarf_node" || ct.Key != "id" {
		t.Errorf("ct = %+v", ct)
	}
	if len(ct.Columns) != 5 || ct.Columns[1].Type != "set<int>" {
		t.Errorf("columns = %+v", ct.Columns)
	}

	// Inline PRIMARY KEY.
	st, err = Parse("CREATE TABLE t (id int PRIMARY KEY, v text)")
	if err != nil {
		t.Fatal(err)
	}
	if st.(CreateTable).Key != "id" {
		t.Errorf("inline key = %+v", st)
	}

	// Conflicting declarations.
	if _, err := Parse("CREATE TABLE t (id int PRIMARY KEY, v text, PRIMARY KEY (v))"); err == nil {
		t.Error("conflicting keys parsed")
	}
	// Missing key.
	if _, err := Parse("CREATE TABLE t (id int)"); !errors.Is(err, ErrSyntax) {
		t.Errorf("missing key: %v", err)
	}
}

func TestParseInsertLiterals(t *testing.T) {
	st, err := Parse(`INSERT INTO ks.t (i, f, s, b, n, ids, q)
		VALUES (-42, 3.5, 'it''s', false, null, {1, 2, 3}, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(Insert)
	v := ins.Values
	if !v[0].IsInt || v[0].Int != -42 {
		t.Errorf("int = %+v", v[0])
	}
	if !v[1].IsFloat || v[1].Float != 3.5 {
		t.Errorf("float = %+v", v[1])
	}
	if !v[2].IsText || v[2].Text != "it's" {
		t.Errorf("text = %+v", v[2])
	}
	if !v[3].IsBool || v[3].Bool {
		t.Errorf("bool = %+v", v[3])
	}
	if !v[4].Null {
		t.Errorf("null = %+v", v[4])
	}
	if !v[5].IsSet || len(v[5].Set) != 3 || v[5].Set[2] != 3 {
		t.Errorf("set = %+v", v[5])
	}
	if !v[6].Placeholder {
		t.Errorf("placeholder = %+v", v[6])
	}
	// Arity mismatch.
	if _, err := Parse("INSERT INTO t (a, b) VALUES (1)"); !errors.Is(err, ErrSyntax) {
		t.Errorf("arity: %v", err)
	}
}

func TestParseSelectShapes(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a = 1 AND b >= 'x' LIMIT 10 ALLOW FILTERING")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(Select)
	if !sel.Items[0].Star || sel.Limit != 10 || !sel.AllowFiltering {
		t.Errorf("sel = %+v", sel)
	}
	if len(sel.Where) != 2 || sel.Where[1].Op != ">=" {
		t.Errorf("where = %+v", sel.Where)
	}

	st, err = Parse("SELECT count(*), max(id) FROM ks.t")
	if err != nil {
		t.Fatal(err)
	}
	sel = st.(Select)
	if sel.Items[0].Func != "count" || !sel.Items[0].Star {
		t.Errorf("count item = %+v", sel.Items[0])
	}
	if sel.Items[1].Func != "max" || sel.Items[1].Column != "id" {
		t.Errorf("max item = %+v", sel.Items[1])
	}

	// A column that happens to be named like a function is fine without parens.
	st, err = Parse("SELECT count FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if sel := st.(Select); sel.Items[0].Func != "" || sel.Items[0].Column != "count" {
		t.Errorf("bare count column = %+v", sel.Items[0])
	}
}

func TestParseIndexUpdateDeleteUse(t *testing.T) {
	st, err := Parse("CREATE INDEX IF NOT EXISTS by_parent ON ks.cells (parentNodeId)")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(CreateIndex)
	if ci.IndexName != "by_parent" || ci.Column != "parentNodeId" || !ci.IfNotExists {
		t.Errorf("ci = %+v", ci)
	}
	if st, err = Parse("CREATE INDEX ON cells (c)"); err != nil {
		t.Fatal(err)
	}
	if st.(CreateIndex).IndexName != "" {
		t.Errorf("anonymous index = %+v", st)
	}

	st, err = Parse("UPDATE s SET size_as_mb = 12, n = ? WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(Update)
	if len(up.Set) != 2 || up.Set[0].Column != "size_as_mb" || !up.Set[1].Value.Placeholder {
		t.Errorf("up = %+v", up)
	}

	st, err = Parse("DELETE FROM ks.t WHERE id = 9;")
	if err != nil {
		t.Fatal(err)
	}
	if st.(Delete).Where[0].Value.Int != 9 {
		t.Errorf("del = %+v", st)
	}

	st, err = Parse("USE dwarf")
	if err != nil || st.(Use).Keyspace != "dwarf" {
		t.Errorf("use = %+v, %v", st, err)
	}

	st, err = Parse("TRUNCATE ks.t")
	if err != nil || st.(Truncate).Table.Table != "t" {
		t.Errorf("truncate = %+v, %v", st, err)
	}
}

func TestParseDropStatements(t *testing.T) {
	st, err := Parse("DROP TABLE ks.t")
	if err != nil {
		t.Fatal(err)
	}
	dt := st.(DropTable)
	if dt.Table.Keyspace != "ks" || dt.Table.Table != "t" || dt.IfExists {
		t.Errorf("drop = %+v", dt)
	}
	st, err = Parse("DROP TABLE IF EXISTS t")
	if err != nil || !st.(DropTable).IfExists {
		t.Errorf("drop if exists: %+v, %v", st, err)
	}
	st, err = Parse("DROP KEYSPACE IF EXISTS dwarf")
	if err != nil {
		t.Fatal(err)
	}
	dk := st.(DropKeyspace)
	if dk.Keyspace != "dwarf" || !dk.IfExists {
		t.Errorf("drop keyspace = %+v", dk)
	}
	if _, err := Parse("DROP INDEX i"); !errors.Is(err, ErrSyntax) {
		t.Errorf("drop index (unsupported): %v", err)
	}
}

func TestParseMiscErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"CREATE",
		"CREATE TABLE t",
		"CREATE TABLE t (id set<int> PRIMARY KEY)", // parses; schema layer rejects — lexer should pass
		"INSERT t (a) VALUES (1)",
		"SELECT * FROM",
		"UPDATE t WHERE id = 1",
		"DELETE t WHERE id = 1",
		"USE",
		"SELECT * FROM t LIMIT -3",
		"SELECT * FROM t ALLOW",
		"INSERT INTO t (a) VALUES ({1, 'x'})",
	} {
		if bad == "CREATE TABLE t (id set<int> PRIMARY KEY)" {
			if _, err := Parse(bad); err != nil {
				t.Errorf("%q should parse (typing is the schema layer's job): %v", bad, err)
			}
			continue
		}
		if _, err := Parse(bad); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: %v", bad, err)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT # FROM t",
		"SELECT 'open FROM t",
		"SELECT ! FROM t",
		"SELECT - FROM t",
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: %v", bad, err)
		}
	}
	// Trailing garbage after a complete statement.
	if _, err := Parse("USE ks extra tokens"); !errors.Is(err, ErrSyntax) {
		t.Errorf("trailing: %v", err)
	}
}

func TestParseNumbers(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b, c) VALUES (1e3, -2.5e-2, 007)")
	if err != nil {
		t.Fatal(err)
	}
	v := st.(Insert).Values
	if !v[0].IsFloat || v[0].Float != 1000 {
		t.Errorf("1e3 = %+v", v[0])
	}
	if !v[1].IsFloat || v[1].Float != -0.025 {
		t.Errorf("-2.5e-2 = %+v", v[1])
	}
	if !v[2].IsInt || v[2].Int != 7 {
		t.Errorf("007 = %+v", v[2])
	}
}
