// Package cql lexes and parses the CQL subset the reproduction needs: the
// DDL and DML statements that appear in the paper's §3–§4 (CREATE KEYSPACE /
// TABLE / INDEX, INSERT, SELECT, UPDATE, DELETE, USE, TRUNCATE), including
// set<int> literals, ALLOW FILTERING and ? placeholders.
package cql

import "fmt"

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokComma
	tokDot
	tokSemi
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokStar
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokQuestion
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of statement"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokStar:
		return "'*'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokQuestion:
		return "'?'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}
