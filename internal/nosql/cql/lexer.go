package cql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax wraps all lexical and grammatical errors.
var ErrSyntax = errors.New("cql: syntax error")

func syntaxErrf(pos int, format string, args ...any) error {
	return fmt.Errorf("%w at offset %d: %s", ErrSyntax, pos, fmt.Sprintf(format, args...))
}

// lex tokenizes a statement. Strings use single quotes with ” escaping;
// comments are not supported (statements come from code, not files).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '?':
			toks = append(toks, token{tokQuestion, "?", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokNe, "!=", i})
				i += 2
			} else {
				return nil, syntaxErrf(i, "unexpected '!'")
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, syntaxErrf(start, "unterminated string")
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '-' || c >= '0' && c <= '9':
			start := i
			if c == '-' {
				i++
				if i >= len(src) || src[i] < '0' || src[i] > '9' {
					return nil, syntaxErrf(start, "unexpected '-'")
				}
			}
			isFloat := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				(isFloat && (src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				if src[i] == '.' || src[i] == 'e' || src[i] == 'E' {
					isFloat = true
				}
				i++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[start:i], start})
		case c == '_' || unicode.IsLetter(rune(c)):
			start := i
			for i < len(src) && (src[i] == '_' || src[i] == '$' ||
				unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		default:
			return nil, syntaxErrf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
