package cql

// Statement is any parsed CQL statement.
type Statement interface{ isStatement() }

// TableName is an optionally keyspace-qualified table reference.
type TableName struct {
	Keyspace string // empty when unqualified (session default applies)
	Table    string
}

// CreateKeyspace is CREATE KEYSPACE [IF NOT EXISTS] name.
type CreateKeyspace struct {
	Name        string
	IfNotExists bool
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // CQL spelling, e.g. "int", "text", "set<int>"
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] t (col type, ...,
// PRIMARY KEY (col)); the key may also be declared inline on a column.
type CreateTable struct {
	Name        TableName
	Columns     []ColumnDef
	Key         string
	IfNotExists bool
}

// CreateIndex is CREATE INDEX [IF NOT EXISTS] [name] ON t (col).
type CreateIndex struct {
	IndexName   string
	Table       TableName
	Column      string
	IfNotExists bool
}

// Use is USE keyspace.
type Use struct{ Keyspace string }

// Insert is INSERT INTO t (cols...) VALUES (exprs...).
type Insert struct {
	Table   TableName
	Columns []string
	Values  []Expr
}

// SelectItem is one projection: a column, *, or an aggregate call.
type SelectItem struct {
	Star   bool
	Column string
	// Func is "" for plain columns, or one of count/min/max/sum/avg. A
	// count over * has Star set and Column empty.
	Func string
}

// Select is SELECT items FROM t [WHERE preds] [LIMIT n] [ALLOW FILTERING].
type Select struct {
	Table          TableName
	Items          []SelectItem
	Where          []Predicate
	Limit          int // 0 = no limit
	AllowFiltering bool
}

// Update is UPDATE t SET col = expr, ... WHERE key = expr.
type Update struct {
	Table TableName
	Set   []Assignment
	Where []Predicate
}

// Assignment is one SET column = expression.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM t WHERE key = expr.
type Delete struct {
	Table TableName
	Where []Predicate
}

// Truncate is TRUNCATE t.
type Truncate struct{ Table TableName }

// DropTable is DROP TABLE [IF EXISTS] t.
type DropTable struct {
	Table    TableName
	IfExists bool
}

// DropKeyspace is DROP KEYSPACE [IF EXISTS] k.
type DropKeyspace struct {
	Keyspace string
	IfExists bool
}

// Predicate is one WHERE conjunct: column op expression.
type Predicate struct {
	Column string
	Op     string // =, !=, <, <=, >, >=
	Value  Expr
}

// Expr is a literal or a ? placeholder.
type Expr struct {
	Placeholder bool
	Null        bool
	IsInt       bool
	IsFloat     bool
	IsText      bool
	IsBool      bool
	IsSet       bool
	Int         int64
	Float       float64
	Text        string
	Bool        bool
	Set         []int64
}

func (CreateKeyspace) isStatement() {}
func (CreateTable) isStatement()    {}
func (CreateIndex) isStatement()    {}
func (Use) isStatement()            {}
func (Insert) isStatement()         {}
func (Select) isStatement()         {}
func (Update) isStatement()         {}
func (Delete) isStatement()         {}
func (Truncate) isStatement()       {}
func (DropTable) isStatement()      {}
func (DropKeyspace) isStatement()   {}
