package nosql

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters hammers one table from several goroutines
// (the engine serializes through its DB-level mutex; this test pins the
// no-race, no-lost-write contract).
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := testDB(t, Options{FlushThreshold: 16 << 10})
	mustCreateCellsTable(t, db, "dw")
	if err := db.CreateIndex("dw", "cells", "parent", false); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 200
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				if err := db.Insert("dw", "cells", Row{
					"id": Int(id), "parent": Int(id % 7), "key": Text(fmt.Sprintf("w%d", w)),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Concurrent readers: point gets and index scans must never error.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, _, err := db.Get("dw", "cells", Int(int64(i))); err != nil {
					errs <- err
					return
				}
				if _, err := db.SelectByIndex("dw", "cells", "parent", Int(int64(i%7))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	n := 0
	db.Scan("dw", "cells", func(Row) bool { n++; return true })
	if n != writers*perWriter {
		t.Errorf("rows = %d, want %d", n, writers*perWriter)
	}
	// Index agrees after the storm.
	rows, err := db.SelectByIndex("dw", "cells", "parent", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for id := 0; id < writers*perWriter; id++ {
		if id%7 == 3 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("indexed rows = %d, want %d", len(rows), want)
	}
}

// TestCommitLogCorruptTail verifies WAL semantics: a torn/corrupt tail ends
// replay with the intact prefix preserved.
func TestCommitLogCorruptTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreateCellsTable(t, db, "dw")
	for i := 0; i < 20; i++ {
		db.Insert("dw", "cells", Row{"id": Int(int64(i))})
	}
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the last 5 bytes of the log (a torn tail).
	logPath := dir + "/commit.log"
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) - 5; i < len(data); i++ {
		data[i] ^= 0xAA
	}
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n := 0
	db2.Scan("dw", "cells", func(Row) bool { n++; return true })
	// The last record may be lost, everything before it must survive.
	if n < 19 || n > 20 {
		t.Errorf("recovered %d rows, want 19 or 20", n)
	}
	// Truncated log (half a record).
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayPrefixDirect drives replayCommitLog on a synthetic file.
func TestReplayPrefixDirect(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/commit.log"
	cl, err := openCommitLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cl.append([]mutation{{seq: uint64(i + 1), keyspace: "k", table: "t",
			key: []byte{byte(i)}, value: []byte("v")}})
	}
	cl.close()
	data, _ := os.ReadFile(path)
	// Keep only the first 2.5 records' bytes.
	cut := len(data) * 2 / 5
	os.WriteFile(path, data[:cut], 0o644)
	var seen []uint64
	err = replayCommitLog(path, func(m mutation) error {
		seen = append(seen, m.seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || len(seen) >= 5 {
		t.Errorf("replayed %v, want a strict intact prefix", seen)
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Errorf("out-of-order replay: %v", seen)
		}
	}
	// Missing file is fine.
	if err := replayCommitLog(dir+"/absent.log", nil); err != nil {
		t.Errorf("missing log: %v", err)
	}
}
