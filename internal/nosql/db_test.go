package nosql

import (
	"errors"
	"fmt"
	"testing"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustCreateCellsTable(t *testing.T, db *DB, ks string) {
	t.Helper()
	if err := db.CreateKeyspace(ks, false); err != nil {
		t.Fatal(err)
	}
	schema, err := NewTableSchema(ks, "cells", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "key", Kind: KindText},
		{Name: "measure", Kind: KindFloat},
		{Name: "parent", Kind: KindInt},
		{Name: "leaf", Kind: KindBool},
		{Name: "kids", Kind: KindIntSet},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(schema, false); err != nil {
		t.Fatal(err)
	}
}

func TestDBInsertGetScanDelete(t *testing.T) {
	db := testDB(t, Options{})
	mustCreateCellsTable(t, db, "dw")

	for i := 0; i < 100; i++ {
		err := db.Insert("dw", "cells", Row{
			"id": Int(int64(i)), "key": Text(fmt.Sprintf("station-%d", i)),
			"measure": Float(float64(i) * 1.5), "parent": Int(int64(i / 10)),
			"leaf": Bool(i%2 == 0), "kids": IntSet(int64(i), int64(i+1)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	row, ok, err := db.Get("dw", "cells", Int(42))
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if row.Get("key").Text != "station-42" || row.Get("measure").Float != 63 {
		t.Errorf("row = %v", row)
	}

	// Upsert overwrites.
	if err := db.Insert("dw", "cells", Row{"id": Int(42), "key": Text("renamed")}); err != nil {
		t.Fatal(err)
	}
	row, _, _ = db.Get("dw", "cells", Int(42))
	if row.Get("key").Text != "renamed" {
		t.Errorf("upsert: %v", row)
	}
	if !row.Get("measure").IsNull() {
		t.Errorf("upsert replaces whole row (Cassandra INSERT overwrite): %v", row)
	}

	// Scan in key order.
	var prev int64 = -1
	n := 0
	err = db.Scan("dw", "cells", func(r Row) bool {
		id := r.Get("id").Int
		if id <= prev {
			t.Errorf("scan out of order: %d after %d", id, prev)
		}
		prev = id
		n++
		return true
	})
	if err != nil || n != 100 {
		t.Fatalf("scan n=%d err=%v", n, err)
	}

	if err := db.Delete("dw", "cells", Int(42)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get("dw", "cells", Int(42)); ok {
		t.Error("deleted row still visible")
	}
	n = 0
	db.Scan("dw", "cells", func(Row) bool { n++; return true })
	if n != 99 {
		t.Errorf("scan after delete n=%d", n)
	}
}

func TestDBErrors(t *testing.T) {
	db := testDB(t, Options{})
	if err := db.CreateKeyspace("dw", false); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateKeyspace("dw", false); !errors.Is(err, ErrKeyspaceExists) {
		t.Errorf("dup keyspace: %v", err)
	}
	if err := db.CreateKeyspace("dw", true); err != nil {
		t.Errorf("IF NOT EXISTS keyspace: %v", err)
	}
	if _, _, err := db.Get("nope", "t", Int(1)); !errors.Is(err, ErrNoSuchKeyspace) {
		t.Errorf("missing ks: %v", err)
	}
	if _, _, err := db.Get("dw", "nope", Int(1)); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	mustCreateCellsTable(t, db, "dw2")
	if err := db.Insert("dw2", "cells", Row{"key": Text("x")}); !errors.Is(err, ErrPrimaryKeyMissing) {
		t.Errorf("missing pk: %v", err)
	}
	if err := db.Insert("dw2", "cells", Row{"id": Int(1), "key": Int(5)}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type mismatch: %v", err)
	}
	if err := db.Insert("dw2", "cells", Row{"id": Int(1), "nope": Int(5)}); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("unknown column: %v", err)
	}
}

func TestSecondaryIndexLifecycle(t *testing.T) {
	db := testDB(t, Options{})
	mustCreateCellsTable(t, db, "dw")

	// Rows exist before the index: back-fill must cover them.
	for i := 0; i < 20; i++ {
		err := db.Insert("dw", "cells", Row{
			"id": Int(int64(i)), "parent": Int(int64(i % 4)), "key": Text("k"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("dw", "cells", "parent", false); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("dw", "cells", "parent", false); !errors.Is(err, ErrIndexExists) {
		t.Errorf("dup index: %v", err)
	}
	if err := db.CreateIndex("dw", "cells", "kids", false); !errors.Is(err, ErrIndexUnsupported) {
		t.Errorf("set index: %v", err)
	}
	if err := db.CreateIndex("dw", "cells", "id", false); !errors.Is(err, ErrIndexUnsupported) {
		t.Errorf("pk index: %v", err)
	}

	rows, err := db.SelectByIndex("dw", "cells", "parent", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("index lookup returned %d rows, want 5", len(rows))
	}

	// New inserts maintain the index.
	if err := db.Insert("dw", "cells", Row{"id": Int(100), "parent": Int(2)}); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.SelectByIndex("dw", "cells", "parent", Int(2))
	if len(rows) != 6 {
		t.Errorf("after insert: %d rows, want 6", len(rows))
	}

	// Updates retire stale entries (read-before-write).
	if err := db.Insert("dw", "cells", Row{"id": Int(100), "parent": Int(3)}); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.SelectByIndex("dw", "cells", "parent", Int(2))
	if len(rows) != 5 {
		t.Errorf("after update: %d rows under parent=2, want 5", len(rows))
	}
	rows, _ = db.SelectByIndex("dw", "cells", "parent", Int(3))
	if len(rows) != 6 {
		t.Errorf("after update: %d rows under parent=3, want 6", len(rows))
	}

	// Deletes retire entries too.
	if err := db.Delete("dw", "cells", Int(100)); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.SelectByIndex("dw", "cells", "parent", Int(3))
	if len(rows) != 5 {
		t.Errorf("after delete: %d rows, want 5", len(rows))
	}

	// Missing value → empty result, not error.
	rows, err = db.SelectByIndex("dw", "cells", "parent", Int(99))
	if err != nil || len(rows) != 0 {
		t.Errorf("missing value: %d rows, %v", len(rows), err)
	}
	if _, err := db.SelectByIndex("dw", "cells", "key", Text("k")); !errors.Is(err, ErrNeedFiltering) {
		t.Errorf("unindexed column: %v", err)
	}
}

func TestBatchCommit(t *testing.T) {
	db := testDB(t, Options{})
	mustCreateCellsTable(t, db, "dw")
	b := NewBatch()
	for i := 0; i < 50; i++ {
		b.Insert("dw", "cells", Row{"id": Int(int64(i)), "key": Text("bulk")})
	}
	if b.Len() != 50 {
		t.Errorf("batch len = %d", b.Len())
	}
	if err := db.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	n := 0
	db.Scan("dw", "cells", func(Row) bool { n++; return true })
	if n != 50 {
		t.Errorf("rows after batch = %d", n)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("reset batch len = %d", b.Len())
	}
	b.Delete("dw", "cells", Int(0))
	if err := db.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get("dw", "cells", Int(0)); ok {
		t.Error("batched delete ignored")
	}
}

func TestFlushCompactAndSizes(t *testing.T) {
	db := testDB(t, Options{FlushThreshold: 2048, MaxTablesBeforeCompact: 100})
	mustCreateCellsTable(t, db, "dw")
	for i := 0; i < 2000; i++ {
		err := db.Insert("dw", "cells", Row{
			"id": Int(int64(i)), "key": Text(fmt.Sprintf("padding-padding-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The tiny threshold must have produced several sstables already.
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	size, err := db.TableDiskSize("dw", "cells")
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("disk size = %d", size)
	}
	ksSize, err := db.KeyspaceDiskSize("dw")
	if err != nil || ksSize != size {
		t.Errorf("keyspace size = %d vs table %d (%v)", ksSize, size, err)
	}

	// Delete half, compact: size shrinks and rows remain correct.
	for i := 0; i < 1000; i++ {
		if err := db.Delete("dw", "cells", Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact("dw", "cells"); err != nil {
		t.Fatal(err)
	}
	size2, _ := db.TableDiskSize("dw", "cells")
	if size2 >= size {
		t.Errorf("compaction did not shrink: %d -> %d", size, size2)
	}
	n := 0
	db.Scan("dw", "cells", func(Row) bool { n++; return true })
	if n != 1000 {
		t.Errorf("rows after compact = %d", n)
	}
}

func TestTieredCompactionBoundsTablesAndPreservesData(t *testing.T) {
	// A tiny flush threshold forces many flushes; tiered compaction must
	// bound the sstable count while newest-wins stays correct across
	// merged and unmerged runs.
	db := testDB(t, Options{FlushThreshold: 2048, MaxTablesBeforeCompact: 6})
	mustCreateCellsTable(t, db, "dw")
	// Three generations of the same keys, so versions land in different
	// sstables.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 600; i++ {
			err := db.Insert("dw", "cells", Row{
				"id":  Int(int64(i)),
				"key": Text(fmt.Sprintf("gen-%d-%04d-padpadpadpad", gen, i)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Delete a band of keys in the newest generation.
	for i := 100; i < 200; i++ {
		if err := db.Delete("dw", "cells", Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cf, err := db.lookupCF("dw", "cells")
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.tables) > 12 {
		t.Errorf("tiered compaction did not bound tables: %d", len(cf.tables))
	}
	// Every surviving key answers with its newest generation.
	for _, i := range []int{0, 50, 99, 200, 300, 599} {
		row, ok, err := db.Get("dw", "cells", Int(int64(i)))
		if err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
		if want := fmt.Sprintf("gen-2-%04d-padpadpadpad", i); row.Get("key").Text != want {
			t.Errorf("key %d = %q, want %q", i, row.Get("key").Text, want)
		}
	}
	for i := 100; i < 200; i += 25 {
		if _, ok, _ := db.Get("dw", "cells", Int(int64(i))); ok {
			t.Errorf("deleted key %d still visible", i)
		}
	}
	n := 0
	db.Scan("dw", "cells", func(Row) bool { n++; return true })
	if n != 500 {
		t.Errorf("scan count = %d, want 500", n)
	}
}

func TestReopenPersistsData(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreateCellsTable(t, db, "dw")
	if err := db.CreateIndex("dw", "cells", "parent", false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		db.Insert("dw", "cells", Row{"id": Int(int64(i)), "parent": Int(int64(i % 3))})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, ok, err := db2.Get("dw", "cells", Int(7))
	if err != nil || !ok || row.Get("parent").Int != 1 {
		t.Fatalf("reopened get: %v %v %v", row, ok, err)
	}
	rows, err := db2.SelectByIndex("dw", "cells", "parent", Int(0))
	if err != nil || len(rows) != 10 {
		t.Errorf("reopened index: %d rows, %v", len(rows), err)
	}
}

func TestCrashRecoveryViaCommitLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreateCellsTable(t, db, "dw")
	for i := 0; i < 25; i++ {
		db.Insert("dw", "cells", Row{"id": Int(int64(i)), "key": Text("pre-crash")})
	}
	// Crash: memtables are lost, only the commit log survives.
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n := 0
	db2.Scan("dw", "cells", func(r Row) bool {
		if r.Get("key").Text != "pre-crash" {
			t.Errorf("row corrupted: %v", r)
		}
		n++
		return true
	})
	if n != 25 {
		t.Errorf("recovered %d rows, want 25", n)
	}
	// Writes continue after recovery with consistent sequence numbers.
	if err := db2.Insert("dw", "cells", Row{"id": Int(100), "key": Text("post")}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db2.Get("dw", "cells", Int(100)); !ok {
		t.Error("post-recovery insert lost")
	}
}

func TestCrashRecoveryAfterFlushDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreateCellsTable(t, db, "dw")
	db.Insert("dw", "cells", Row{"id": Int(1), "key": Text("v1")})
	if err := db.FlushAll(); err != nil { // persists v1, truncates the log
		t.Fatal(err)
	}
	db.Insert("dw", "cells", Row{"id": Int(1), "key": Text("v2")})
	db.Delete("dw", "cells", Int(1)) // tombstone in log only
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok, _ := db2.Get("dw", "cells", Int(1)); ok {
		t.Error("deleted row resurrected after replay")
	}
}

func TestGroupCommitIndexedBatchesEquivalence(t *testing.T) {
	// The serialization switch changes commit granularity, never results.
	for _, group := range []bool{false, true} {
		db := testDB(t, Options{GroupCommitIndexedBatches: group})
		mustCreateCellsTable(t, db, "dw")
		if err := db.CreateIndex("dw", "cells", "parent", false); err != nil {
			t.Fatal(err)
		}
		b := NewBatch()
		for i := 0; i < 60; i++ {
			b.Insert("dw", "cells", Row{"id": Int(int64(i)), "parent": Int(int64(i % 4))})
		}
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		rows, err := db.SelectByIndex("dw", "cells", "parent", Int(2))
		if err != nil || len(rows) != 15 {
			t.Errorf("group=%t: %d rows, %v", group, len(rows), err)
		}
	}
}

func TestScanRange(t *testing.T) {
	db := testDB(t, Options{FlushThreshold: 1024})
	mustCreateCellsTable(t, db, "dw")
	for i := 0; i < 200; i++ {
		if err := db.Insert("dw", "cells", Row{"id": Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	err := db.ScanRange("dw", "cells", Int(50), Int(60), func(r Row) bool {
		got = append(got, r.Get("id").Int)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 50 || got[9] != 59 {
		t.Errorf("range = %v", got)
	}
	// Unbounded below, bounded above.
	n := 0
	db.ScanRange("dw", "cells", Null(), Int(5), func(Row) bool { n++; return true })
	if n != 5 {
		t.Errorf("lo-unbounded = %d", n)
	}
	// Bounded below, unbounded above.
	n = 0
	db.ScanRange("dw", "cells", Int(195), Null(), func(Row) bool { n++; return true })
	if n != 5 {
		t.Errorf("hi-unbounded = %d", n)
	}
	// Early stop.
	n = 0
	db.ScanRange("dw", "cells", Null(), Null(), func(Row) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop = %d", n)
	}
	// Type mismatch on bound.
	if err := db.ScanRange("dw", "cells", Text("x"), Null(), func(Row) bool { return true }); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("bad bound: %v", err)
	}
}

func TestTablesListing(t *testing.T) {
	db := testDB(t, Options{})
	mustCreateCellsTable(t, db, "dw")
	names, err := db.Tables("dw")
	if err != nil || len(names) != 1 || names[0] != "cells" {
		t.Errorf("Tables = %v, %v", names, err)
	}
	if _, err := db.Tables("nope"); !errors.Is(err, ErrNoSuchKeyspace) {
		t.Errorf("missing ks: %v", err)
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.CreateKeyspace("x", false); !errors.Is(err, ErrClosed) {
		t.Errorf("create on closed: %v", err)
	}
	if err := db.Insert("x", "t", Row{}); !errors.Is(err, ErrClosed) {
		t.Errorf("insert on closed: %v", err)
	}
	if db.Close() != nil {
		t.Error("double close should be nil")
	}
}
