package nosql

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The commit log is a single append-only file per database. Every mutation
// batch becomes one record; a torn or corrupt tail record ends replay (the
// standard write-ahead-log contract). Record layout:
//
//	crc u32 (over payload) | len u32 | payload
//	payload: count uvarint, then per mutation:
//	    seq uvarint | keyspace str | table str | flags u8 |
//	    klen uvarint | key | [vlen uvarint | value]
//
// strings are uvarint length + bytes.

// ErrCorruptLog reports a damaged commit log body (not merely a torn tail).
var ErrCorruptLog = errors.New("nosql: corrupt commit log")

// mutation is one logged write: an upsert or delete of a row.
type mutation struct {
	seq       uint64
	keyspace  string
	table     string
	key       []byte
	value     []byte
	tombstone bool
}

type commitLog struct {
	path string
	file *os.File
	w    *bufio.Writer
	sync bool
}

func openCommitLog(path string, syncWrites bool) (*commitLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &commitLog{path: path, file: f, w: bufio.NewWriterSize(f, 1<<16), sync: syncWrites}, nil
}

func appendLogString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// append writes one batch of mutations as a single record.
func (cl *commitLog) append(muts []mutation) error {
	payload := binary.AppendUvarint(nil, uint64(len(muts)))
	for _, m := range muts {
		payload = binary.AppendUvarint(payload, m.seq)
		payload = appendLogString(payload, m.keyspace)
		payload = appendLogString(payload, m.table)
		flags := byte(0)
		if m.tombstone {
			flags = 1
		}
		payload = append(payload, flags)
		payload = binary.AppendUvarint(payload, uint64(len(m.key)))
		payload = append(payload, m.key...)
		if !m.tombstone {
			payload = binary.AppendUvarint(payload, uint64(len(m.value)))
			payload = append(payload, m.value...)
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := cl.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cl.w.Write(payload); err != nil {
		return err
	}
	if cl.sync {
		if err := cl.w.Flush(); err != nil {
			return err
		}
		return cl.file.Sync()
	}
	return nil
}

// flush pushes buffered records to the OS.
func (cl *commitLog) flush() error { return cl.w.Flush() }

// truncate discards the log after all memtables were flushed to SSTables.
func (cl *commitLog) truncate() error {
	if err := cl.w.Flush(); err != nil {
		return err
	}
	if err := cl.file.Truncate(0); err != nil {
		return err
	}
	_, err := cl.file.Seek(0, io.SeekStart)
	return err
}

func (cl *commitLog) close() error {
	if err := cl.w.Flush(); err != nil {
		cl.file.Close()
		return err
	}
	return cl.file.Close()
}

// replayCommitLog streams every intact record's mutations to fn. A torn or
// corrupt tail ends replay silently, matching WAL semantics; corruption in
// the middle is still reported as corruption of the tail from that point.
func replayCommitLog(path string, fn func(mutation) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header: stop replay
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		plen := binary.LittleEndian.Uint32(hdr[4:])
		if plen > 1<<30 {
			return nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn record
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil // corrupt tail
		}
		count, n := binary.Uvarint(payload)
		if n <= 0 {
			return fmt.Errorf("%w: bad count", ErrCorruptLog)
		}
		payload = payload[n:]
		for i := uint64(0); i < count; i++ {
			var m mutation
			var n int
			m.seq, n = binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("%w: bad seq", ErrCorruptLog)
			}
			payload = payload[n:]
			var s string
			var err error
			if s, payload, err = readLogString(payload); err != nil {
				return err
			}
			m.keyspace = s
			if s, payload, err = readLogString(payload); err != nil {
				return err
			}
			m.table = s
			if len(payload) < 1 {
				return fmt.Errorf("%w: bad flags", ErrCorruptLog)
			}
			m.tombstone = payload[0]&1 != 0
			payload = payload[1:]
			klen, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload)-n) < klen {
				return fmt.Errorf("%w: bad key", ErrCorruptLog)
			}
			m.key = append([]byte(nil), payload[n:n+int(klen)]...)
			payload = payload[n+int(klen):]
			if !m.tombstone {
				vlen, n := binary.Uvarint(payload)
				if n <= 0 || uint64(len(payload)-n) < vlen {
					return fmt.Errorf("%w: bad value", ErrCorruptLog)
				}
				m.value = append([]byte(nil), payload[n:n+int(vlen)]...)
				payload = payload[n+int(vlen):]
			}
			if err := fn(m); err != nil {
				return err
			}
		}
	}
}

func readLogString(src []byte) (string, []byte, error) {
	l, n := binary.Uvarint(src)
	if n <= 0 || uint64(len(src)-n) < l {
		return "", nil, fmt.Errorf("%w: bad string", ErrCorruptLog)
	}
	return string(src[n : n+int(l)]), src[n+int(l):], nil
}
