package nosql

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Int(rng.Int63() - (1 << 62))
	case 1:
		buf := make([]byte, rng.Intn(12))
		rng.Read(buf)
		return Text(string(buf))
	case 2:
		return Bool(rng.Intn(2) == 0)
	case 3:
		return Float(rng.NormFloat64() * 1e6)
	default:
		n := rng.Intn(6)
		set := make([]int64, n)
		for i := range set {
			set[i] = rng.Int63n(1000) - 500
		}
		return IntSet(set...)
	}
}

func TestValueEncodeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := randomValue(rng)
			enc := appendValue(nil, v)
			dec, rest, err := decodeValue(enc)
			if err != nil {
				t.Logf("decode(%v): %v", v, err)
				return false
			}
			if len(rest) != 0 {
				t.Logf("decode(%v): %d trailing bytes", v, len(rest))
				return false
			}
			if !dec.Equal(v) {
				t.Logf("round trip %v -> %v", v, dec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValueOrderedBytesMatchesCompare(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 80; i++ {
			a, b := randomValue(rng), randomValue(rng)
			// Only same-kind comparisons must agree byte-wise; the kind tag
			// prefix orders mixed kinds consistently with Compare as well.
			cmpVal := a.Compare(b)
			cmpBytes := bytes.Compare(a.OrderedBytes(), b.OrderedBytes())
			if a.Kind == KindText && b.Kind == KindText {
				// Text is not length-prefixed in OrderedBytes, so prefix
				// strings compare consistently too.
				if sign(cmpVal) != sign(cmpBytes) {
					t.Logf("text order mismatch %v vs %v: %d vs %d", a, b, cmpVal, cmpBytes)
					return false
				}
				continue
			}
			if a.Kind != b.Kind {
				continue
			}
			if a.Kind == KindIntSet {
				continue // sets are not used as keys
			}
			if sign(cmpVal) != sign(cmpBytes) {
				t.Logf("order mismatch %v vs %v: %d vs %d", a, b, cmpVal, cmpBytes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestValueDecodeCorrupt(t *testing.T) {
	if _, _, err := decodeValue(nil); err == nil {
		t.Error("empty input decoded")
	}
	if _, _, err := decodeValue([]byte{byte(KindText), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("oversized text length decoded")
	}
	if _, _, err := decodeValue([]byte{200}); err == nil {
		t.Error("unknown kind decoded")
	}
	if _, _, err := decodeValue([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float decoded")
	}
}

func TestIntSetNormalization(t *testing.T) {
	v := IntSet(5, 1, 5, 3, 1)
	want := []int64{1, 3, 5}
	if len(v.Set) != len(want) {
		t.Fatalf("set = %v", v.Set)
	}
	for i := range want {
		if v.Set[i] != want[i] {
			t.Fatalf("set = %v, want %v", v.Set, want)
		}
	}
	if v.String() != "{1, 3, 5}" {
		t.Errorf("String = %q", v.String())
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "bigint": KindInt, "text": KindText, "varchar": KindText,
		"boolean": KindBool, "double": KindFloat, "set<int>": KindIntSet,
		"set < int >": KindIntSet,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("map<int,text>"); err == nil {
		t.Error("unsupported type parsed")
	}
}

func TestValueStringLiterals(t *testing.T) {
	if got := Text("O'Brien").String(); got != "'O''Brien'" {
		t.Errorf("escaped text = %q", got)
	}
	if got := Null().String(); got != "null" {
		t.Errorf("null = %q", got)
	}
	if got := Bool(true).String(); got != "true" {
		t.Errorf("bool = %q", got)
	}
}

func TestRowCodecNullBitmap(t *testing.T) {
	schema, err := NewTableSchema("ks", "t", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "name", Kind: KindText},
		{Name: "leaf", Kind: KindBool},
		{Name: "kids", Kind: KindIntSet},
		{Name: "score", Kind: KindFloat},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	row := Row{"id": Int(7), "leaf": Bool(true), "kids": IntSet(3, 1)}
	enc := encodeRow(schema, row)
	dec, err := decodeRow(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Get("id").Equal(Int(7)) || !dec.Get("leaf").Equal(Bool(true)) {
		t.Errorf("decoded = %v", dec)
	}
	if !dec.Get("name").IsNull() || !dec.Get("score").IsNull() {
		t.Errorf("absent columns should be NULL: %v", dec)
	}
	if !dec.Get("kids").Equal(IntSet(1, 3)) {
		t.Errorf("set = %v", dec.Get("kids"))
	}
	if _, err := decodeRow(schema, enc[:1]); err == nil {
		t.Error("truncated row decoded")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewTableSchema("ks", "t", []Column{{Name: "a", Kind: KindInt}}, "missing"); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := NewTableSchema("ks", "t", []Column{{Name: "a", Kind: KindInt}, {Name: "A", Kind: KindText}}, "a"); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTableSchema("ks", "t", []Column{{Name: "s", Kind: KindIntSet}}, "s"); err == nil {
		t.Error("set primary key accepted")
	}
	if _, err := NewTableSchema("bad name", "t", []Column{{Name: "a", Kind: KindInt}}, "a"); err == nil {
		t.Error("bad keyspace ident accepted")
	}
	s, err := NewTableSchema("ks", "t", []Column{{Name: "a", Kind: KindInt}, {Name: "f", Kind: KindFloat}}, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Int widens to float.
	v, err := s.CheckValue("f", Int(3))
	if err != nil || v.Kind != KindFloat || v.Float != 3 {
		t.Errorf("widening = %v, %v", v, err)
	}
	if _, err := s.CheckValue("a", Text("x")); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := s.CheckValue("zzz", Int(1)); err == nil {
		t.Error("unknown column accepted")
	}
}
