package nosql

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// bloomFilter is a classic Bloom filter sized at build time for a target
// false-positive rate. SSTables persist one per file so point reads can skip
// tables that cannot contain the key.
type bloomFilter struct {
	bits []uint64
	k    uint32
}

// newBloomFilter sizes a filter for n keys at roughly 1% false positives.
func newBloomFilter(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	// m = -n*ln(p)/ln(2)^2 with p = 0.01 → ~9.59 bits per key.
	m := int(math.Ceil(float64(n) * 9.6))
	words := (m + 63) / 64
	if words < 1 {
		words = 1
	}
	return &bloomFilter{bits: make([]uint64, words), k: 7}
}

// hash2 derives two independent 64-bit hashes for double hashing.
func hash2(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h.Write([]byte{0x9e, 0x37, 0x79, 0xb9})
	h2 := h.Sum64() | 1 // odd, so strides cover the table
	return h1, h2
}

// Add inserts a key.
func (b *bloomFilter) Add(key []byte) {
	h1, h2 := hash2(key)
	m := uint64(len(b.bits) * 64)
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether the key may be present (no false negatives).
func (b *bloomFilter) MayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h1, h2 := hash2(key)
	m := uint64(len(b.bits) * 64)
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter.
func (b *bloomFilter) marshal() []byte {
	out := make([]byte, 8+8*len(b.bits))
	binary.LittleEndian.PutUint32(out[0:], b.k)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(b.bits)))
	for i, w := range b.bits {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out
}

// unmarshalBloom parses a serialized filter.
func unmarshalBloom(data []byte) (*bloomFilter, error) {
	if len(data) < 8 {
		return nil, ErrValueCorrupt
	}
	k := binary.LittleEndian.Uint32(data[0:])
	n := binary.LittleEndian.Uint32(data[4:])
	if uint64(len(data)) < 8+8*uint64(n) || k == 0 || k > 64 {
		return nil, ErrValueCorrupt
	}
	b := &bloomFilter{bits: make([]uint64, n), k: k}
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	return b, nil
}
