package nosql

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// columnFamily is one table's storage: a memtable plus a stack of SSTables,
// newest last. Secondary indexes hang off user tables as hidden column
// families whose keys embed (column value, primary key).
type columnFamily struct {
	schema      *TableSchema
	dir         string
	mem         *memtable
	tables      []*sstable // oldest .. newest
	nextFileNum int
	watermark   uint64 // max mutation seq already persisted in sstables
	hidden      bool
	indexes     map[string]*secondaryIndex // lower-cased column name → index
}

// secondaryIndex is a Cassandra-style index: a hidden column family whose
// entry keys are (indexed value, primary key) composites with empty values.
type secondaryIndex struct {
	column string // lower-cased
	cf     *columnFamily
}

func newColumnFamily(schema *TableSchema, dir string, hidden bool) (*columnFamily, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cf := &columnFamily{
		schema:  schema,
		dir:     dir,
		mem:     newMemtable(),
		hidden:  hidden,
		indexes: make(map[string]*secondaryIndex),
	}
	if err := cf.loadTables(); err != nil {
		return nil, err
	}
	return cf, nil
}

// loadTables opens existing sstable files in file-number order.
func (cf *columnFamily) loadTables() error {
	entries, err := os.ReadDir(cf.dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".sst" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		st, err := openSSTable(filepath.Join(cf.dir, name))
		if err != nil {
			return fmt.Errorf("open %s: %w", name, err)
		}
		cf.tables = append(cf.tables, st)
		if st.maxSeq > cf.watermark {
			cf.watermark = st.maxSeq
		}
		var num int
		fmt.Sscanf(name, "%06d.sst", &num)
		if num >= cf.nextFileNum {
			cf.nextFileNum = num + 1
		}
	}
	return nil
}

// apply buffers one mutation in the memtable.
func (cf *columnFamily) apply(m mutation) {
	cf.mem.put(m.key, m.value, m.seq, m.tombstone)
}

// get returns the newest version of a key: memtable first, then sstables
// newest first.
func (cf *columnFamily) get(key []byte) (entry, bool, error) {
	if e, ok := cf.mem.get(key); ok {
		return e, true, nil
	}
	for i := len(cf.tables) - 1; i >= 0; i-- {
		e, ok, err := cf.tables[i].get(key)
		if err != nil {
			return entry{}, false, err
		}
		if ok {
			return e, true, nil
		}
	}
	return entry{}, false, nil
}

// getLive is get filtering tombstones.
func (cf *columnFamily) getLive(key []byte) (entry, bool, error) {
	e, ok, err := cf.get(key)
	if err != nil || !ok || e.tombstone {
		return entry{}, false, err
	}
	return e, true, nil
}

// mergedEntries materializes the newest version of every key in key order.
// With includeTombstones false, deleted keys are dropped (read/scan view);
// with true, tombstones are kept (not needed by full compaction, which owns
// all history, but kept for partial merges).
func (cf *columnFamily) mergedEntries(includeTombstones bool) ([]entry, error) {
	merged := make(map[string]entry)
	for _, st := range cf.tables { // oldest → newest: later puts overwrite
		err := st.scan(func(e entry) bool {
			merged[string(e.key)] = e
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	for _, e := range cf.mem.sorted() {
		merged[string(e.key)] = e
	}
	out := make([]entry, 0, len(merged))
	for _, e := range merged {
		if e.tombstone && !includeTombstones {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i].key) < string(out[j].key) })
	return out, nil
}

// scanLive iterates live rows in key order.
func (cf *columnFamily) scanLive(fn func(entry) bool) error {
	entries, err := cf.mergedEntries(false)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// scanBounded merges the newest version of every key in [lo, …) while
// inRange holds, reading only the qualifying slice of each sstable (via the
// sparse indexes) instead of materializing the whole column family. The
// memtable contributes its in-range subset. Tombstoned keys are dropped.
func (cf *columnFamily) scanBounded(lo []byte, inRange func(key []byte) bool, fn func(entry) bool) error {
	merged := make(map[string]entry)
	for _, st := range cf.tables { // oldest → newest: later tables overwrite
		err := st.scanFrom(lo, func(e entry) bool {
			if !inRange(e.key) {
				return false
			}
			merged[string(e.key)] = e
			return true
		})
		if err != nil {
			return err
		}
	}
	for k, e := range cf.mem.data {
		if string(e.key) >= string(lo) && inRange(e.key) {
			merged[k] = e
		}
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if e.tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(merged[k]) {
			return nil
		}
	}
	return nil
}

// scanRange iterates live entries with lo <= key < hi (nil bound =
// unbounded).
func (cf *columnFamily) scanRange(lo, hi []byte, fn func(entry) bool) error {
	return cf.scanBounded(lo, func(key []byte) bool {
		return hi == nil || string(key) < string(hi)
	}, fn)
}

// scanPrefix iterates live entries whose key has the given prefix.
func (cf *columnFamily) scanPrefix(prefix []byte, fn func(entry) bool) error {
	return cf.scanBounded(prefix, func(key []byte) bool {
		return len(key) >= len(prefix) && string(key[:len(prefix)]) == string(prefix)
	}, fn)
}

// flush writes the memtable to a new sstable, newest in the stack.
func (cf *columnFamily) flush() error {
	if cf.mem.len() == 0 {
		return nil
	}
	path := filepath.Join(cf.dir, fmt.Sprintf("%06d.sst", cf.nextFileNum))
	st, err := writeSSTable(path, cf.mem.sorted())
	if err != nil {
		return err
	}
	cf.nextFileNum++
	cf.tables = append(cf.tables, st)
	if st.maxSeq > cf.watermark {
		cf.watermark = st.maxSeq
	}
	cf.mem = newMemtable()
	return nil
}

// compact merges everything (sstables + memtable) into one sstable and
// drops tombstones — a full, size-tiered-to-one compaction.
func (cf *columnFamily) compact() error {
	if len(cf.tables) <= 1 && cf.mem.len() == 0 {
		return nil
	}
	entries, err := cf.mergedEntries(false)
	if err != nil {
		return err
	}
	old := cf.tables
	path := filepath.Join(cf.dir, fmt.Sprintf("%06d.sst", cf.nextFileNum))
	maxSeq := cf.watermark
	for _, e := range entries {
		if e.seq > maxSeq {
			maxSeq = e.seq
		}
	}
	for i := range entries {
		entries[i].seq = maxSeq // the new table supersedes everything prior
	}
	st, err := writeSSTable(path, entries)
	if err != nil {
		return err
	}
	cf.nextFileNum++
	cf.tables = []*sstable{st}
	cf.watermark = maxSeq
	cf.mem = newMemtable()
	for _, t := range old {
		t.close()
		os.Remove(t.path)
	}
	return nil
}

// compactTiered is the steady-state compaction: when the stack holds too
// many sstables it merges the contiguous run of `runLen` tables with the
// smallest total size — the size-tiered strategy's behaviour (merge small,
// similar runs; never rewrite the whole keyspace), keeping bulk-load write
// amplification logarithmic. Only time-contiguous runs merge, so the
// newest-wins read order stays correct. Tombstones survive unless the run
// starts at the oldest table.
func (cf *columnFamily) compactTiered(maxTables int) error {
	runLen := maxTables / 2
	if runLen < 2 {
		runLen = 2
	}
	if len(cf.tables) < maxTables || len(cf.tables) < runLen {
		return nil
	}
	best, bestSize := -1, int64(0)
	for i := 0; i+runLen <= len(cf.tables); i++ {
		var total int64
		for j := i; j < i+runLen; j++ {
			total += cf.tables[j].size
		}
		if best < 0 || total < bestSize {
			best, bestSize = i, total
		}
	}
	run := cf.tables[best : best+runLen]
	merged := make(map[string]entry)
	for _, st := range run { // oldest → newest within the run
		err := st.scan(func(e entry) bool {
			merged[string(e.key)] = e
			return true
		})
		if err != nil {
			return err
		}
	}
	dropTombstones := best == 0
	entries := make([]entry, 0, len(merged))
	var maxSeq uint64
	for _, e := range merged {
		if e.tombstone && dropTombstones {
			continue
		}
		if e.seq > maxSeq {
			maxSeq = e.seq
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return string(entries[i].key) < string(entries[j].key) })
	for i := range entries {
		entries[i].seq = maxSeq
	}
	path := filepath.Join(cf.dir, fmt.Sprintf("%06d.sst", cf.nextFileNum))
	st, err := writeSSTable(path, entries)
	if err != nil {
		return err
	}
	cf.nextFileNum++
	newTables := make([]*sstable, 0, len(cf.tables)-runLen+1)
	newTables = append(newTables, cf.tables[:best]...)
	newTables = append(newTables, st)
	newTables = append(newTables, cf.tables[best+runLen:]...)
	for _, t := range run {
		t.close()
		os.Remove(t.path)
	}
	cf.tables = newTables
	return nil
}

// diskSize is the byte total of the CF's sstable files (hidden index CFs
// are accounted by their owners).
func (cf *columnFamily) diskSize() int64 {
	var total int64
	for _, t := range cf.tables {
		total += t.size
	}
	return total
}

// close releases file handles.
func (cf *columnFamily) close() error {
	var first error
	for _, t := range cf.tables {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, idx := range cf.indexes {
		if err := idx.cf.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// indexEntryKey builds the composite (value, pk) key of an index entry. The
// value bytes are length-prefixed so that a prefix scan for one value never
// bleeds into the next.
func indexEntryKey(val Value, pk []byte) []byte {
	vb := val.OrderedBytes()
	out := binary.AppendUvarint(nil, uint64(len(vb)))
	out = append(out, vb...)
	return append(out, pk...)
}

// indexPrefix is the scan prefix matching all entries for one value.
func indexPrefix(val Value) []byte {
	vb := val.OrderedBytes()
	out := binary.AppendUvarint(nil, uint64(len(vb)))
	return append(out, vb...)
}

// indexedPK extracts the primary-key bytes back out of an index entry key.
func indexedPK(entryKey []byte) ([]byte, error) {
	l, n := binary.Uvarint(entryKey)
	if n <= 0 || uint64(len(entryKey)-n) < l {
		return nil, ErrValueCorrupt
	}
	return entryKey[n+int(l):], nil
}

// hiddenIndexSchema is the pseudo-schema of index column families; entry
// values are empty, everything lives in the key.
func hiddenIndexSchema(ks, name string) *TableSchema {
	return &TableSchema{
		Keyspace: ks,
		Name:     name,
		Columns:  []Column{{Name: "pk", Kind: KindText}},
		Key:      "pk",
	}
}
