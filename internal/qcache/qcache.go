// Package qcache is a byte-bounded LRU for query results, built for the
// cube store's two-level caching scheme:
//
//   - Partials ([Cache.GetPartial]/[Cache.PutPartial]) are per-target
//     intermediate results keyed by target identity + canonical query key.
//     Sealed segment files are immutable and their names are never reused,
//     so a partial computed over one never goes stale — it only ever
//     leaves the cache by LRU eviction.
//   - Results ([Cache.GetResult]/[Cache.PutResult]) are full merged
//     answers stamped with the store generation they were computed at. A
//     lookup whose stamp doesn't match the store's current generation is a
//     miss; the entry is simply overwritten by the recomputed answer.
//
// Keys are opaque strings; the Key* builders produce canonical ones so
// that two spellings of the same query share a cache entry (see
// [KeyGroupBy]). Cached values are shared between the cache and every
// caller that hit it, so callers must treat them as read-only.
package qcache

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dwarf"
)

// Cache is a byte-bounded LRU safe for concurrent use. The byte budget
// counts estimated value sizes (see the SizeOf* helpers), not precise heap
// footprints; keys ride along for free in the estimate's per-entry slack.
type Cache struct {
	mu    sync.Mutex
	max   int64
	used  int64
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses, stale        atomic.Int64 // result-level
	partialHits, partialMisses atomic.Int64 // target-level
}

type entry struct {
	key  string
	val  any
	gen  uint64
	size int64
}

// New returns a cache bounded to roughly maxBytes of cached values.
func New(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &Cache{max: maxBytes, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// GetResult returns the value cached under key if its generation stamp
// matches gen. A stale entry misses like a cold one — it stays put until
// the caller overwrites it with PutResult — but is counted separately in
// Stats.Stale, so hit-rate diagnostics under write churn can tell "the
// cache never saw this query" from "the answer was there but outdated".
func (c *Cache) GetResult(key string, gen uint64) (any, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok {
		ent := el.Value.(*entry)
		if ent.gen == gen {
			c.ll.MoveToFront(el)
			// Capture under the lock: a concurrent put may overwrite
			// ent.val in place the moment we release it.
			val := ent.val
			c.mu.Unlock()
			c.hits.Add(1)
			return val, true
		}
		c.mu.Unlock()
		c.stale.Add(1)
		return nil, false
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// PutResult caches a full merged answer under key, stamped with the store
// generation it was computed at.
func (c *Cache) PutResult(key string, val any, gen uint64, size int64) {
	c.put(key, val, gen, size)
}

// GetPartial returns the value cached under key with no staleness check —
// partial keys embed an immutable target's identity, so presence implies
// validity.
func (c *Cache) GetPartial(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok {
		ent := el.Value.(*entry)
		c.ll.MoveToFront(el)
		val := ent.val // capture under the lock; put may overwrite in place
		c.mu.Unlock()
		c.partialHits.Add(1)
		return val, true
	}
	c.mu.Unlock()
	c.partialMisses.Add(1)
	return nil, false
}

// PutPartial caches a per-target partial under key.
func (c *Cache) PutPartial(key string, val any, size int64) {
	c.put(key, val, 0, size)
}

// minEntryBytes is the floor charged per cached entry. Size estimates come
// from callers; trusting a zero or negative one would let used drift below
// the truth (a negative total even makes the eviction loop unreachable and
// the cache grow without bound), so put clamps every charge to at least
// one entry's bookkeeping overhead.
const minEntryBytes = perElemOverhead

func (c *Cache) put(key string, val any, gen uint64, size int64) {
	if size < minEntryBytes {
		size = minEntryBytes
	}
	if size > c.max {
		// A value bigger than the whole budget would flush everything and
		// then not fit; refusing it keeps the hot set intact.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*entry)
		c.used += size - ent.size
		ent.val, ent.gen, ent.size = val, gen, size
		c.ll.MoveToFront(el)
	} else {
		c.byKey[key] = c.ll.PushFront(&entry{key: key, val: val, gen: gen, size: size})
		c.used += size
	}
	for c.used > c.max {
		cold := c.ll.Back()
		ent := cold.Value.(*entry)
		c.ll.Remove(cold)
		delete(c.byKey, ent.key)
		c.used -= ent.size
	}
}

// Stats is a point-in-time counter snapshot. Misses counts cold lookups
// only; Stale counts lookups that found an entry with an outdated
// generation stamp. A recompute follows either one, so the effective miss
// rate is (Misses+Stale)/(Hits+Misses+Stale).
type Stats struct {
	Hits, Misses, Stale        int64 // result-level lookups
	PartialHits, PartialMisses int64 // per-target partial lookups
	Bytes                      int64 // estimated bytes of cached values
	Entries                    int   // live entries (results + partials)
}

// Stats returns the cache's current counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes, entries := c.used, c.ll.Len()
	c.mu.Unlock()
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Stale: c.stale.Load(),
		PartialHits: c.partialHits.Load(), PartialMisses: c.partialMisses.Load(),
		Bytes: bytes, Entries: entries,
	}
}

// ---- canonical query keys ----
//
// A canonical key is a deterministic byte serialization of the query shape
// and parameters. Selectors are normalized to the kernel's semantics so
// that spellings the kernel answers identically share one entry:
//
//   - A selector carrying both a range and keys means the range (the
//     HasRange-precedence rule), so Keys are dropped from the key.
//   - Explicit key lists are deduplicated first-occurrence-wins, exactly
//     like the kernel's dedupKeys. Order is preserved, NOT sorted: the
//     kernel folds matches in list order, and float aggregation is only
//     guaranteed bit-identical for identical fold order.

// KeyGroupBy returns the canonical cache key for a GroupBy over the
// dimension at index dim under sels.
func KeyGroupBy(dim int, sels []dwarf.Selector) string {
	b := make([]byte, 0, 16+16*len(sels))
	b = append(b, 'g')
	b = binary.AppendUvarint(b, uint64(dim))
	b = appendSelectors(b, sels)
	return string(b)
}

// KeyPivot returns the canonical cache key for a Pivot over the
// dimensions at indices dims under sels.
func KeyPivot(dims []int, sels []dwarf.Selector) string {
	b := make([]byte, 0, 16+2*len(dims)+16*len(sels))
	b = append(b, 'p')
	b = binary.AppendUvarint(b, uint64(len(dims)))
	for _, d := range dims {
		b = binary.AppendUvarint(b, uint64(d))
	}
	b = appendSelectors(b, sels)
	return string(b)
}

// KeyTopK returns the canonical cache key for a TopK over the dimension
// at index dim under sels with spec.
func KeyTopK(dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) string {
	b := make([]byte, 0, 32+16*len(sels))
	b = append(b, 'k')
	b = binary.AppendUvarint(b, uint64(dim))
	b = append(b, byte(spec.By))
	b = binary.AppendVarint(b, int64(spec.K))
	if spec.HasThreshold {
		b = append(b, 1)
		b = binary.AppendUvarint(b, math.Float64bits(spec.Threshold))
	} else {
		b = append(b, 0)
	}
	b = appendSelectors(b, sels)
	return string(b)
}

func appendSelectors(b []byte, sels []dwarf.Selector) []byte {
	b = binary.AppendUvarint(b, uint64(len(sels)))
	for i := range sels {
		b = appendSelector(b, &sels[i])
	}
	return b
}

func appendSelector(b []byte, s *dwarf.Selector) []byte {
	switch {
	case s.HasRange:
		b = append(b, 'R')
		b = appendString(b, s.Lo)
		b = appendString(b, s.Hi)
	case len(s.Keys) > 0:
		keys := dedupFirstWins(s.Keys)
		b = append(b, 'K')
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
		}
	default:
		b = append(b, 'A')
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// dedupFirstWins drops repeated keys, keeping the first occurrence in
// place — the same normalization the kernel applies before matching.
func dedupFirstWins(keys []string) []string {
	for i := 1; i < len(keys); i++ {
		for j := 0; j < i; j++ {
			if keys[i] == keys[j] {
				out := make([]string, 0, len(keys)-1)
				out = append(out, keys[:i]...)
				for _, k := range keys[i+1:] {
					seen := false
					for _, have := range out {
						if k == have {
							seen = true
							break
						}
					}
					if !seen {
						out = append(out, k)
					}
				}
				return out
			}
		}
	}
	return keys
}

// ---- size estimates ----
//
// The estimates charge each entry for its string payloads plus a flat
// per-element overhead (headers, map buckets, slice slots). They are meant
// to keep the byte bound honest to within a small factor, not to account
// exactly.

const perElemOverhead = 64

// SizeOfGroupMap estimates the bytes held by a GroupBy result map.
func SizeOfGroupMap(m map[string]dwarf.Aggregate) int64 {
	n := int64(perElemOverhead)
	for k := range m {
		n += int64(len(k)) + 32 + perElemOverhead
	}
	return n
}

// SizeOfPivotRows estimates the bytes held by a Pivot result.
func SizeOfPivotRows(rows []dwarf.PivotGroup) int64 {
	n := int64(perElemOverhead)
	for i := range rows {
		for _, k := range rows[i].Keys {
			n += int64(len(k)) + 16
		}
		n += 32 + perElemOverhead
	}
	return n
}

// SizeOfEntries estimates the bytes held by a TopK result.
func SizeOfEntries(es []dwarf.GroupEntry) int64 {
	n := int64(perElemOverhead)
	for i := range es {
		n += int64(len(es[i].Key)) + 32 + perElemOverhead
	}
	return n
}
