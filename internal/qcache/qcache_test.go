package qcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dwarf"
)

func TestResultGenerationStamp(t *testing.T) {
	c := New(1 << 20)
	c.PutResult("k", "v1", 7, 100)
	if v, ok := c.GetResult("k", 7); !ok || v.(string) != "v1" {
		t.Fatalf("same-gen lookup: got %v, %v", v, ok)
	}
	if _, ok := c.GetResult("k", 8); ok {
		t.Fatal("stale-gen lookup must miss")
	}
	// Overwriting with the new generation revives the key.
	c.PutResult("k", "v2", 8, 100)
	if v, ok := c.GetResult("k", 8); !ok || v.(string) != "v2" {
		t.Fatalf("post-overwrite lookup: got %v, %v", v, ok)
	}
	st := c.Stats()
	// The gen-8 lookup found the gen-7 entry, so it is a stale lookup, not
	// a cold miss.
	if st.Hits != 2 || st.Misses != 0 || st.Stale != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("occupancy after overwrite: %+v", st)
	}
	if _, ok := c.GetResult("absent", 8); ok {
		t.Fatal("unknown key must miss")
	}
	if st = c.Stats(); st.Misses != 1 || st.Stale != 1 {
		t.Fatalf("cold miss must not count as stale: %+v", st)
	}
}

func TestPartialNeverStale(t *testing.T) {
	c := New(1 << 20)
	c.PutPartial("seg-1|q", 42, 10)
	for gen := 0; gen < 3; gen++ {
		if v, ok := c.GetPartial("seg-1|q"); !ok || v.(int) != 42 {
			t.Fatalf("partial lookup: got %v, %v", v, ok)
		}
	}
	st := c.Stats()
	if st.PartialHits != 3 || st.PartialMisses != 0 {
		t.Fatalf("partial counters: %+v", st)
	}
}

func TestByteBoundEviction(t *testing.T) {
	c := New(250)
	for i := 0; i < 5; i++ {
		c.PutPartial(fmt.Sprintf("k%d", i), i, 100) // fits 2 at a time
	}
	// Only the two most recent survive.
	if _, ok := c.GetPartial("k2"); ok {
		t.Fatal("k2 should have been evicted")
	}
	for _, k := range []string{"k3", "k4"} {
		if _, ok := c.GetPartial(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	if st := c.Stats(); st.Bytes != 200 || st.Entries != 2 {
		t.Fatalf("occupancy: %+v", st)
	}
	// Touching k3 makes k4 the eviction victim.
	c.GetPartial("k3")
	c.PutPartial("k5", 5, 100)
	if _, ok := c.GetPartial("k4"); ok {
		t.Fatal("k4 should have been evicted after k3 promotion")
	}
	if _, ok := c.GetPartial("k3"); !ok {
		t.Fatal("k3 should survive")
	}
}

func TestOversizedValueRefused(t *testing.T) {
	c := New(100)
	c.PutPartial("keep", 1, 50)
	c.PutResult("huge", 2, 1, 1000)
	if _, ok := c.GetResult("huge", 1); ok {
		t.Fatal("oversized value must not be cached")
	}
	if _, ok := c.GetPartial("keep"); !ok {
		t.Fatal("oversized insert must not flush the hot set")
	}
}

func TestSizeClampedToMinimum(t *testing.T) {
	// Zero and negative caller estimates must not corrupt the byte
	// accounting: each entry is charged at least minEntryBytes, so the
	// budget still bounds the entry count and eviction still fires.
	c := New(4 * minEntryBytes)
	for i := 0; i < 100; i++ {
		c.PutPartial(fmt.Sprintf("z%d", i), i, 0)
	}
	if st := c.Stats(); st.Entries != 4 || st.Bytes != 4*minEntryBytes {
		t.Fatalf("zero-size entries must be clamped: %+v", st)
	}
	for i := 0; i < 100; i++ {
		c.PutResult(fmt.Sprintf("n%d", i), i, 1, -1<<40)
	}
	st := c.Stats()
	if st.Entries != 4 || st.Bytes != 4*minEntryBytes {
		t.Fatalf("negative-size entries must be clamped: %+v", st)
	}
	if st.Bytes < 0 {
		t.Fatalf("used bytes went negative: %+v", st)
	}
	// The cache still works after the hostile inserts.
	c.PutResult("k", "v", 1, minEntryBytes)
	if v, ok := c.GetResult("k", 1); !ok || v.(string) != "v" {
		t.Fatalf("cache wedged after clamped inserts: %v, %v", v, ok)
	}
}

func TestOverwriteShrinkClamped(t *testing.T) {
	// Overwriting an entry with a zero-size estimate must release the old
	// charge down to the clamp, not below it.
	c := New(1 << 20)
	c.PutResult("k", "big", 1, 10_000)
	c.PutResult("k", "small", 2, 0)
	if st := c.Stats(); st.Entries != 1 || st.Bytes != minEntryBytes {
		t.Fatalf("shrink accounting: %+v", st)
	}
}

func sel(keys ...string) dwarf.Selector { return dwarf.Selector{Keys: keys} }

func TestKeyCanonicalization(t *testing.T) {
	all := dwarf.Selector{}
	rng := dwarf.Selector{Lo: "a", Hi: "b", HasRange: true}

	// HasRange wins over Keys: same range with or without a key list is
	// the same query per the kernel, so the same key.
	rngWithKeys := rng
	rngWithKeys.Keys = []string{"x", "y"}
	if KeyGroupBy(0, []dwarf.Selector{rng, all}) != KeyGroupBy(0, []dwarf.Selector{rngWithKeys, all}) {
		t.Fatal("HasRange must shadow Keys in the canonical key")
	}

	// Duplicate keys collapse first-occurrence-wins.
	if KeyGroupBy(0, []dwarf.Selector{sel("a", "b", "a"), all}) != KeyGroupBy(0, []dwarf.Selector{sel("a", "b"), all}) {
		t.Fatal("duplicate keys must collapse")
	}
	// Order is preserved, not sorted: fold order changes float results.
	if KeyGroupBy(0, []dwarf.Selector{sel("b", "a"), all}) == KeyGroupBy(0, []dwarf.Selector{sel("a", "b"), all}) {
		t.Fatal("key order must be preserved")
	}

	// Distinct parameters produce distinct keys.
	keys := []string{
		KeyGroupBy(0, []dwarf.Selector{all, all}),
		KeyGroupBy(1, []dwarf.Selector{all, all}),
		KeyGroupBy(0, []dwarf.Selector{rng, all}),
		KeyGroupBy(0, []dwarf.Selector{all, rng}),
		KeyGroupBy(0, []dwarf.Selector{sel("a"), all}),
		KeyPivot([]int{0}, []dwarf.Selector{all, all}),
		KeyPivot([]int{0, 1}, []dwarf.Selector{all, all}),
		KeyPivot([]int{1, 0}, []dwarf.Selector{all, all}),
		KeyTopK(0, []dwarf.Selector{all, all}, dwarf.TopKSpec{K: 5}),
		KeyTopK(0, []dwarf.Selector{all, all}, dwarf.TopKSpec{K: 6}),
		KeyTopK(0, []dwarf.Selector{all, all}, dwarf.TopKSpec{K: 5, By: dwarf.ByCount}),
		KeyTopK(0, []dwarf.Selector{all, all}, dwarf.TopKSpec{K: 5, HasThreshold: true}),
		KeyTopK(0, []dwarf.Selector{all, all}, dwarf.TopKSpec{K: 5, Threshold: 2, HasThreshold: true}),
	}
	seen := map[string]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Fatalf("key %d collides with key %d", i, j)
		}
		seen[k] = i
	}

	// Threshold without HasThreshold is not part of the query.
	if KeyTopK(0, []dwarf.Selector{all}, dwarf.TopKSpec{K: 5, Threshold: 2}) !=
		KeyTopK(0, []dwarf.Selector{all}, dwarf.TopKSpec{K: 5}) {
		t.Fatal("inactive threshold must not split keys")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(10_000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%17)
				switch i % 3 {
				case 0:
					c.PutResult(k, i, uint64(i%5), 64)
				case 1:
					c.GetResult(k, uint64(i%5))
				default:
					c.GetPartial(k)
				}
			}
		}(w)
	}
	wg.Wait()
	c.Stats()
}

// TestConcurrentHitOverwriteRace hammers one key with overwrites and hits.
// put overwrites entries in place, so a hit must capture the value before
// releasing the lock — reading ent.val after Unlock races with the next
// overwrite (caught by -race; this pins the capture-under-lock fix).
func TestConcurrentHitOverwriteRace(t *testing.T) {
	c := New(10_000)
	c.PutResult("hot", 0, 1, 64)
	c.PutPartial("warm", 0, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.PutResult("hot", i, 1, 64)
				c.PutPartial("warm", i, 64)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if v, ok := c.GetResult("hot", 1); ok {
					_ = v.(int)
				}
				if v, ok := c.GetPartial("warm"); ok {
					_ = v.(int)
				}
			}
		}()
	}
	wg.Wait()
}
