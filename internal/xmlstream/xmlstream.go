// Package xmlstream turns XML feed documents into DWARF fact tuples — the
// paper's entry point ("transforming web data (XML or JSON) into
// multi-dimensional cubes"). A Spec names the record element and maps its
// attributes and child elements onto cube dimensions, optionally through
// transforms (e.g. an RFC 3339 timestamp split into year/month/day/hour).
// Parsing is streaming: one record in memory at a time.
package xmlstream

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/dwarf"
)

// Spec maps a record-oriented XML document onto fact tuples.
type Spec struct {
	// RecordElement is the local name of one record (e.g. "station").
	RecordElement string
	// Dimensions map fields to cube dimensions, in dimension order.
	Dimensions []DimSpec
	// MeasureField names the numeric measure field.
	MeasureField string
}

// DimSpec maps one field to one dimension. Field is a child element's local
// name, or "@name" for an attribute of the record element. Transform, when
// set, rewrites the raw string (see TimePart).
type DimSpec struct {
	Name      string
	Field     string
	Transform Transform
}

// Transform rewrites a raw field value into a dimension key.
type Transform func(string) (string, error)

// Ingestion errors.
var (
	ErrBadSpec      = errors.New("xmlstream: invalid spec")
	ErrMissingField = errors.New("xmlstream: record is missing a mapped field")
	ErrBadMeasure   = errors.New("xmlstream: measure is not numeric")
)

// DimNames returns the dimension names in order (the cube's dimension
// list).
func (s Spec) DimNames() []string {
	out := make([]string, len(s.Dimensions))
	for i, d := range s.Dimensions {
		out[i] = d.Name
	}
	return out
}

func (s Spec) validate() error {
	if s.RecordElement == "" {
		return fmt.Errorf("%w: no record element", ErrBadSpec)
	}
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("%w: no dimensions", ErrBadSpec)
	}
	if s.MeasureField == "" {
		return fmt.Errorf("%w: no measure field", ErrBadSpec)
	}
	return nil
}

// ParseFunc streams tuples out of the document, calling fn for each.
func ParseFunc(r io.Reader, spec Spec, fn func(dwarf.Tuple) error) error {
	if err := spec.validate(); err != nil {
		return err
	}
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("xmlstream: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != spec.RecordElement {
			continue
		}
		fields, err := collectRecord(dec, start)
		if err != nil {
			return err
		}
		tuple, err := spec.tupleFrom(fields)
		if err != nil {
			return err
		}
		if err := fn(tuple); err != nil {
			return err
		}
	}
}

// Parse collects every tuple of the document.
func Parse(r io.Reader, spec Spec) ([]dwarf.Tuple, error) {
	var out []dwarf.Tuple
	err := ParseFunc(r, spec, func(t dwarf.Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// collectRecord reads one record element into a flat field map: attributes
// under "@name", direct child elements under their local name (text
// content, trimmed).
func collectRecord(dec *xml.Decoder, start xml.StartElement) (map[string]string, error) {
	fields := make(map[string]string, 8)
	for _, a := range start.Attr {
		fields["@"+a.Name.Local] = a.Value
	}
	depth := 0
	var childName string
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlstream: truncated record %q: %w", start.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 1 {
				childName = t.Name.Local
				text.Reset()
			}
		case xml.CharData:
			if depth == 1 {
				text.Write(t)
			}
		case xml.EndElement:
			if depth == 0 {
				return fields, nil // end of the record element
			}
			if depth == 1 && childName != "" {
				fields[childName] = strings.TrimSpace(text.String())
			}
			depth--
		}
	}
}

func (s Spec) tupleFrom(fields map[string]string) (dwarf.Tuple, error) {
	dims := make([]string, len(s.Dimensions))
	for i, d := range s.Dimensions {
		raw, ok := fields[d.Field]
		if !ok {
			return dwarf.Tuple{}, fmt.Errorf("%w: %q (dimension %s)", ErrMissingField, d.Field, d.Name)
		}
		if d.Transform != nil {
			v, err := d.Transform(raw)
			if err != nil {
				return dwarf.Tuple{}, fmt.Errorf("xmlstream: dimension %s: %w", d.Name, err)
			}
			dims[i] = v
		} else {
			dims[i] = raw
		}
	}
	raw, ok := fields[s.MeasureField]
	if !ok {
		return dwarf.Tuple{}, fmt.Errorf("%w: measure %q", ErrMissingField, s.MeasureField)
	}
	m, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return dwarf.Tuple{}, fmt.Errorf("%w: %q", ErrBadMeasure, raw)
	}
	return dwarf.Tuple{Dims: dims, Measure: m}, nil
}

// TimePart returns a transform extracting one part of a timestamp in the
// given layout. Parts: "year", "month", "day", "hour", "quarter" (15-minute
// slot, q0..q3).
func TimePart(layout, part string) Transform {
	return func(raw string) (string, error) {
		ts, err := time.Parse(layout, raw)
		if err != nil {
			return "", fmt.Errorf("bad timestamp %q: %w", raw, err)
		}
		switch part {
		case "year":
			return fmt.Sprintf("%04d", ts.Year()), nil
		case "month":
			return fmt.Sprintf("%02d", int(ts.Month())), nil
		case "day":
			return fmt.Sprintf("%02d", ts.Day()), nil
		case "hour":
			return fmt.Sprintf("%02d", ts.Hour()), nil
		case "quarter":
			return fmt.Sprintf("q%d", ts.Minute()/15), nil
		default:
			return "", fmt.Errorf("unknown time part %q", part)
		}
	}
}

// BikeFeedSpec is the ready-made spec for the bike XML feed emitted by
// internal/smartcity, producing the 8-dimension layout of the evaluation.
func BikeFeedSpec() Spec {
	return Spec{
		RecordElement: "station",
		Dimensions: []DimSpec{
			{Name: "Year", Field: "timestamp", Transform: TimePart(time.RFC3339, "year")},
			{Name: "Month", Field: "timestamp", Transform: TimePart(time.RFC3339, "month")},
			{Name: "Day", Field: "timestamp", Transform: TimePart(time.RFC3339, "day")},
			{Name: "Hour", Field: "timestamp", Transform: TimePart(time.RFC3339, "hour")},
			{Name: "Quarter", Field: "timestamp", Transform: TimePart(time.RFC3339, "quarter")},
			{Name: "Area", Field: "@area"},
			{Name: "Station", Field: "@id"},
			{Name: "Status", Field: "status"},
		},
		MeasureField: "bikes",
	}
}

// CarParkFeedSpec is the ready-made spec for the car-park XML feed.
func CarParkFeedSpec() Spec {
	return Spec{
		RecordElement: "carpark",
		Dimensions: []DimSpec{
			{Name: "Year", Field: "timestamp", Transform: TimePart(time.RFC3339, "year")},
			{Name: "Month", Field: "timestamp", Transform: TimePart(time.RFC3339, "month")},
			{Name: "Day", Field: "timestamp", Transform: TimePart(time.RFC3339, "day")},
			{Name: "Hour", Field: "timestamp", Transform: TimePart(time.RFC3339, "hour")},
			{Name: "Zone", Field: "@zone"},
			{Name: "CarPark", Field: "@name"},
		},
		MeasureField: "spaces",
	}
}
