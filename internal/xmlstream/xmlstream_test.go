package xmlstream

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

func TestBikeFeedRoundTrip(t *testing.T) {
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 11}).Take(200)
	var buf bytes.Buffer
	if err := smartcity.WriteBikesXML(&buf, recs); err != nil {
		t.Fatal(err)
	}
	spec := BikeFeedSpec()
	tuples, err := Parse(&buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 200 {
		t.Fatalf("parsed %d tuples", len(tuples))
	}
	// Parsed tuples must equal the direct record mapping.
	for i, r := range recs {
		want := r.Tuple()
		got := tuples[i]
		if got.Measure != want.Measure {
			t.Fatalf("tuple %d measure %g != %g", i, got.Measure, want.Measure)
		}
		for d := range want.Dims {
			if got.Dims[d] != want.Dims[d] {
				t.Fatalf("tuple %d dim %d: %q != %q", i, d, got.Dims[d], want.Dims[d])
			}
		}
	}
	// And they build the same cube.
	a, err := dwarf.New(spec.DimNames(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]dwarf.Tuple, len(recs))
	for i, r := range recs {
		direct[i] = r.Tuple()
	}
	b, err := dwarf.New(smartcity.BikeDims, direct)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Stats(), b.Stats()
	if as.Nodes != bs.Nodes || as.Cells != bs.Cells {
		t.Errorf("cube stats differ: %+v vs %+v", as, bs)
	}
}

func TestCarParkSpec(t *testing.T) {
	recs := smartcity.NewCarParkFeed(2, 4).Take(40)
	var buf bytes.Buffer
	if err := smartcity.WriteCarParksXML(&buf, recs); err != nil {
		t.Fatal(err)
	}
	tuples, err := Parse(&buf, CarParkFeedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 40 {
		t.Fatalf("parsed %d", len(tuples))
	}
}

func TestStreamingCallback(t *testing.T) {
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 1}).Take(30)
	var buf bytes.Buffer
	smartcity.WriteBikesXML(&buf, recs)
	n := 0
	err := ParseFunc(&buf, BikeFeedSpec(), func(tu dwarf.Tuple) error {
		n++
		if n == 10 {
			return errors.New("stop early")
		}
		return nil
	})
	if err == nil || n != 10 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}

func TestMalformedInputs(t *testing.T) {
	spec := BikeFeedSpec()
	// Truncated document.
	if _, err := Parse(strings.NewReader(`<feed><station id="x" area="a"><status>o`), spec); err == nil {
		t.Error("truncated xml parsed")
	}
	// Record missing a mapped field.
	doc := `<feed><station id="s1" area="a1"><status>open</status><bikes>3</bikes></station></feed>`
	if _, err := Parse(strings.NewReader(doc), spec); !errors.Is(err, ErrMissingField) {
		t.Errorf("missing field: %v", err)
	}
	// Non-numeric measure.
	doc = `<feed><station id="s1" area="a1"><status>open</status>
		<timestamp>2015-06-01T00:00:00Z</timestamp><bikes>lots</bikes></station></feed>`
	if _, err := Parse(strings.NewReader(doc), spec); !errors.Is(err, ErrBadMeasure) {
		t.Errorf("bad measure: %v", err)
	}
	// Bad timestamp surfaces the transform error.
	doc = `<feed><station id="s1" area="a1"><status>open</status>
		<timestamp>yesterday</timestamp><bikes>3</bikes></station></feed>`
	if _, err := Parse(strings.NewReader(doc), spec); err == nil {
		t.Error("bad timestamp parsed")
	}
	// Invalid specs.
	if _, err := Parse(strings.NewReader("<a/>"), Spec{}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty spec: %v", err)
	}
}

func TestTimePartTransforms(t *testing.T) {
	ts := "2015-09-17T14:47:03Z"
	cases := map[string]string{
		"year": "2015", "month": "09", "day": "17", "hour": "14", "quarter": "q3",
	}
	for part, want := range cases {
		got, err := TimePart("2006-01-02T15:04:05Z07:00", part)(ts)
		if err != nil || got != want {
			t.Errorf("TimePart(%s) = %q, %v; want %q", part, got, err, want)
		}
	}
	if _, err := TimePart("2006-01-02T15:04:05Z07:00", "minute")(ts); err == nil {
		t.Error("unknown part accepted")
	}
}

func TestNestedElementsIgnored(t *testing.T) {
	// Deeper nesting inside a record must not shadow the direct children.
	doc := `<feed><station id="s1" area="a1">
		<meta><status>closed</status></meta>
		<status>open</status>
		<timestamp>2015-06-01T00:00:00Z</timestamp>
		<bikes>7</bikes></station></feed>`
	tuples, err := Parse(strings.NewReader(doc), BikeFeedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if tuples[0].Dims[7] != "open" {
		t.Errorf("status = %q, want the direct child", tuples[0].Dims[7])
	}
}
