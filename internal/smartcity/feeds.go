package smartcity

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dwarf"
)

// The remaining feeds from the paper's introduction. Each produces records
// with its own dimensional layout so the examples can show cubes fused from
// heterogeneous sources.

// CarParkRecord is one occupancy report from a car-park feed.
type CarParkRecord struct {
	Timestamp time.Time
	CarPark   string
	Zone      string
	Spaces    int // free spaces
	Capacity  int
}

// CarParkDims is the car-park cube layout.
var CarParkDims = []string{"Year", "Month", "Day", "Hour", "Zone", "CarPark"}

// Tuple maps the record with free spaces as the measure.
func (r CarParkRecord) Tuple() dwarf.Tuple {
	return dwarf.Tuple{
		Dims: []string{
			fmt.Sprintf("%04d", r.Timestamp.Year()),
			fmt.Sprintf("%02d", int(r.Timestamp.Month())),
			fmt.Sprintf("%02d", r.Timestamp.Day()),
			fmt.Sprintf("%02d", r.Timestamp.Hour()),
			r.Zone,
			r.CarPark,
		},
		Measure: float64(r.Spaces),
	}
}

// CarParkFeed streams deterministic car-park occupancy.
type CarParkFeed struct {
	rng    *rand.Rand
	now    time.Time
	spaces []int
	caps   []int
	next   int
}

// NewCarParkFeed builds a feed of n car parks.
func NewCarParkFeed(seed int64, n int) *CarParkFeed {
	if n <= 0 {
		n = 12
	}
	rng := rand.New(rand.NewSource(seed))
	f := &CarParkFeed{
		rng:    rng,
		now:    time.Date(2015, time.June, 1, 0, 0, 0, 0, time.UTC),
		spaces: make([]int, n),
		caps:   make([]int, n),
	}
	for i := range f.caps {
		f.caps[i] = 100 + rng.Intn(400)
		f.spaces[i] = rng.Intn(f.caps[i] + 1)
	}
	return f
}

// Next returns the next report.
func (f *CarParkFeed) Next() CarParkRecord {
	if f.next >= len(f.caps) {
		f.next = 0
		f.now = f.now.Add(10 * time.Minute)
	}
	i := f.next
	f.next++
	drift := 0
	if h := f.now.Hour(); h >= 8 && h <= 18 {
		drift = -4
	} else {
		drift = 4
	}
	f.spaces[i] += f.rng.Intn(21) - 10 + drift
	if f.spaces[i] < 0 {
		f.spaces[i] = 0
	}
	if f.spaces[i] > f.caps[i] {
		f.spaces[i] = f.caps[i]
	}
	return CarParkRecord{
		Timestamp: f.now,
		CarPark:   fmt.Sprintf("carpark-%02d", i),
		Zone:      fmt.Sprintf("zone-%d", i%4),
		Spaces:    f.spaces[i],
		Capacity:  f.caps[i],
	}
}

// Take returns the next n reports.
func (f *CarParkFeed) Take(n int) []CarParkRecord {
	out := make([]CarParkRecord, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// AirQualityRecord is one sensor reading.
type AirQualityRecord struct {
	Timestamp time.Time
	Sensor    string
	Zone      string
	Pollutant string // no2, pm10, pm25, o3
	Value     float64
}

// AirQualityDims is the air-quality cube layout.
var AirQualityDims = []string{"Year", "Month", "Day", "Hour", "Zone", "Sensor", "Pollutant"}

// Tuple maps the reading with the concentration as the measure.
func (r AirQualityRecord) Tuple() dwarf.Tuple {
	return dwarf.Tuple{
		Dims: []string{
			fmt.Sprintf("%04d", r.Timestamp.Year()),
			fmt.Sprintf("%02d", int(r.Timestamp.Month())),
			fmt.Sprintf("%02d", r.Timestamp.Day()),
			fmt.Sprintf("%02d", r.Timestamp.Hour()),
			r.Zone,
			r.Sensor,
			r.Pollutant,
		},
		Measure: r.Value,
	}
}

// AirQualityFeed streams deterministic sensor readings.
type AirQualityFeed struct {
	rng        *rand.Rand
	now        time.Time
	sensors    int
	pollutants []string
	base       []float64
	next       int
}

// NewAirQualityFeed builds a feed of n sensors cycling four pollutants.
func NewAirQualityFeed(seed int64, n int) *AirQualityFeed {
	if n <= 0 {
		n = 10
	}
	rng := rand.New(rand.NewSource(seed))
	f := &AirQualityFeed{
		rng:        rng,
		now:        time.Date(2015, time.June, 1, 0, 0, 0, 0, time.UTC),
		sensors:    n,
		pollutants: []string{"no2", "pm10", "pm25", "o3"},
		base:       make([]float64, n),
	}
	for i := range f.base {
		f.base[i] = 10 + rng.Float64()*30
	}
	return f
}

// Next returns the next reading.
func (f *AirQualityFeed) Next() AirQualityRecord {
	total := f.sensors * len(f.pollutants)
	if f.next >= total {
		f.next = 0
		f.now = f.now.Add(30 * time.Minute)
	}
	i := f.next
	f.next++
	sensor := i / len(f.pollutants)
	pollutant := f.pollutants[i%len(f.pollutants)]
	rush := 0.0
	if h := f.now.Hour(); h >= 7 && h <= 10 || h >= 16 && h <= 19 {
		rush = 12
	}
	v := f.base[sensor] + rush + f.rng.NormFloat64()*4
	if v < 0 {
		v = 0
	}
	return AirQualityRecord{
		Timestamp: f.now,
		Sensor:    fmt.Sprintf("sensor-%02d", sensor),
		Zone:      fmt.Sprintf("zone-%d", sensor%3),
		Pollutant: pollutant,
		Value:     float64(int(v*10)) / 10,
	}
}

// Take returns the next n readings.
func (f *AirQualityFeed) Take(n int) []AirQualityRecord {
	out := make([]AirQualityRecord, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// AuctionRecord is one sale from the online-auction/sales feed.
type AuctionRecord struct {
	Timestamp time.Time
	Category  string
	Seller    string
	County    string
	Price     float64
}

// AuctionDims is the sales cube layout.
var AuctionDims = []string{"Year", "Month", "Day", "Category", "County", "Seller"}

// Tuple maps the sale with the price as the measure.
func (r AuctionRecord) Tuple() dwarf.Tuple {
	return dwarf.Tuple{
		Dims: []string{
			fmt.Sprintf("%04d", r.Timestamp.Year()),
			fmt.Sprintf("%02d", int(r.Timestamp.Month())),
			fmt.Sprintf("%02d", r.Timestamp.Day()),
			r.Category,
			r.County,
			r.Seller,
		},
		Measure: r.Price,
	}
}

// AuctionFeed streams deterministic sales.
type AuctionFeed struct {
	rng        *rand.Rand
	now        time.Time
	categories []string
	counties   []string
}

// NewAuctionFeed builds the sales stream.
func NewAuctionFeed(seed int64) *AuctionFeed {
	return &AuctionFeed{
		rng:        rand.New(rand.NewSource(seed)),
		now:        time.Date(2015, time.June, 1, 8, 0, 0, 0, time.UTC),
		categories: []string{"electronics", "furniture", "books", "clothing", "sports"},
		counties:   []string{"Dublin", "Cork", "Galway", "Limerick"},
	}
}

// Next returns the next sale.
func (f *AuctionFeed) Next() AuctionRecord {
	f.now = f.now.Add(time.Duration(1+f.rng.Intn(20)) * time.Minute)
	return AuctionRecord{
		Timestamp: f.now,
		Category:  f.categories[f.rng.Intn(len(f.categories))],
		Seller:    fmt.Sprintf("seller-%03d", f.rng.Intn(200)),
		County:    f.counties[f.rng.Intn(len(f.counties))],
		Price:     float64(5+f.rng.Intn(500)) + 0.99,
	}
}

// Take returns the next n sales.
func (f *AuctionFeed) Take(n int) []AuctionRecord {
	out := make([]AuctionRecord, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}
