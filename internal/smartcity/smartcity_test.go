package smartcity

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dwarf"
)

func TestBikeFeedDeterministic(t *testing.T) {
	a := NewBikeFeed(BikeConfig{Seed: 7}).Take(500)
	b := NewBikeFeed(BikeConfig{Seed: 7}).Take(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewBikeFeed(BikeConfig{Seed: 8}).Take(500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestBikeFeedPhysicalBounds(t *testing.T) {
	recs := NewBikeFeed(BikeConfig{Seed: 1}).Take(5000)
	for _, r := range recs {
		if r.BikesAvailable < 0 || r.BikesAvailable > r.Capacity {
			t.Fatalf("bikes out of bounds: %+v", r)
		}
		if r.BikesAvailable+r.DocksAvailable != r.Capacity {
			t.Fatalf("bikes+docks != capacity: %+v", r)
		}
		if r.BikesAvailable == r.Capacity && r.Status != "full" {
			t.Fatalf("full station not marked full: %+v", r)
		}
	}
	// Time advances monotonically.
	for i := 1; i < len(recs); i++ {
		if recs[i].Timestamp.Before(recs[i-1].Timestamp) {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}

func TestTupleLayoutEightDimensions(t *testing.T) {
	r := NewBikeFeed(BikeConfig{Seed: 3}).Next()
	tup := r.Tuple()
	if len(tup.Dims) != 8 || len(BikeDims) != 8 {
		t.Fatalf("the paper's cubes have 8 dimensions, got %d", len(tup.Dims))
	}
	if tup.Dims[0] != "2015" {
		t.Errorf("year dim = %q", tup.Dims[0])
	}
	if !strings.HasPrefix(tup.Dims[6], "station-") {
		t.Errorf("station dim = %q", tup.Dims[6])
	}
	if tup.Measure != float64(r.BikesAvailable) {
		t.Errorf("measure = %g", tup.Measure)
	}
}

func TestPresetsMatchTable2(t *testing.T) {
	wants := map[string]int{
		"Day": 7358, "Week": 60102, "Month": 118934, "TMonth": 396756, "SMonth": 1181344,
	}
	if len(Presets) != 5 {
		t.Fatalf("presets = %d", len(Presets))
	}
	for name, want := range wants {
		p, err := PresetByName(name)
		if err != nil || p.Tuples != want {
			t.Errorf("%s: %d tuples, %v; want %d", name, p.Tuples, err, want)
		}
	}
	if _, err := PresetByName("Year"); err == nil {
		t.Error("unknown preset accepted")
	}
	// The generator delivers the exact count.
	tuples, err := Dataset("Day")
	if err != nil || len(tuples) != 7358 {
		t.Fatalf("Day dataset = %d tuples, %v", len(tuples), err)
	}
	// All tuples valid for cube construction.
	if _, err := dwarf.New(BikeDims, tuples); err != nil {
		t.Fatalf("Day dataset does not build: %v", err)
	}
}

func TestXMLEmissionParsesBack(t *testing.T) {
	recs := NewBikeFeed(BikeConfig{Seed: 5}).Take(50)
	var buf bytes.Buffer
	if err := WriteBikesXML(&buf, recs); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "<station id=\"station-") || !strings.Contains(s, "<bikes>") {
		t.Errorf("xml = %.200s", s)
	}
	if strings.Count(s, "<station ") != 50 {
		t.Errorf("station count = %d", strings.Count(s, "<station "))
	}
}

func TestJSONEmission(t *testing.T) {
	recs := NewBikeFeed(BikeConfig{Seed: 5}).Take(10)
	var buf bytes.Buffer
	if err := WriteBikesJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"stations"`) || !strings.Contains(s, `"location"`) {
		t.Errorf("json = %.200s", s)
	}
}

func TestCarParkFeed(t *testing.T) {
	recs := NewCarParkFeed(1, 6).Take(600)
	for _, r := range recs {
		if r.Spaces < 0 || r.Spaces > r.Capacity {
			t.Fatalf("spaces out of bounds: %+v", r)
		}
	}
	tup := recs[0].Tuple()
	if len(tup.Dims) != len(CarParkDims) {
		t.Errorf("carpark dims = %d", len(tup.Dims))
	}
	var buf bytes.Buffer
	if err := WriteCarParksXML(&buf, recs[:5]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<carpark name=") {
		t.Errorf("xml = %.120s", buf.String())
	}
}

func TestAirQualityFeed(t *testing.T) {
	recs := NewAirQualityFeed(1, 4).Take(400)
	pollutants := map[string]bool{}
	for _, r := range recs {
		if r.Value < 0 {
			t.Fatalf("negative reading: %+v", r)
		}
		pollutants[r.Pollutant] = true
	}
	if len(pollutants) != 4 {
		t.Errorf("pollutants = %v", pollutants)
	}
	var buf bytes.Buffer
	if err := WriteAirQualityJSON(&buf, recs[:5]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"readings"`) {
		t.Errorf("json = %.120s", buf.String())
	}
	tup := recs[0].Tuple()
	if len(tup.Dims) != len(AirQualityDims) {
		t.Errorf("air dims = %d", len(tup.Dims))
	}
}

func TestAuctionFeed(t *testing.T) {
	recs := NewAuctionFeed(1).Take(300)
	for _, r := range recs {
		if r.Price <= 0 {
			t.Fatalf("bad price: %+v", r)
		}
	}
	tup := recs[0].Tuple()
	if len(tup.Dims) != len(AuctionDims) {
		t.Errorf("auction dims = %d", len(tup.Dims))
	}
	// Feeds a valid cube.
	tuples := make([]dwarf.Tuple, len(recs))
	for i, r := range recs {
		tuples[i] = r.Tuple()
	}
	if _, err := dwarf.New(AuctionDims, tuples); err != nil {
		t.Fatal(err)
	}
}
