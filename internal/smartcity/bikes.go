// Package smartcity generates the deterministic synthetic feeds that stand
// in for the paper's Dublin/CitiBikes data streams (the intro's list: bike
// sharing, car parks, air-quality sensors, auctions and sales data). The
// generators reproduce the statistical shape that matters for the
// evaluation — a polling sensor fleet with strong prefix locality, bounded
// key cardinalities and 8 cube dimensions — and can emit their records as
// XML or JSON documents so the ingestion path is exercised end to end.
package smartcity

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dwarf"
)

// BikeRecord is one observation from the bike-sharing feed.
type BikeRecord struct {
	Timestamp      time.Time
	StationID      string
	Name           string
	Area           string
	Status         string
	BikesAvailable int
	DocksAvailable int
	Capacity       int
}

// BikeDims is the 8-dimension cube layout used throughout the evaluation
// ("All DWARFs contain 8 dimensions"). Time parts first gives the strong
// prefix locality of a polled feed.
var BikeDims = []string{"Year", "Month", "Day", "Hour", "Quarter", "Area", "Station", "Status"}

// Tuple maps the record onto the 8-dimension layout with the available-bike
// count as the measure.
func (r BikeRecord) Tuple() dwarf.Tuple {
	return dwarf.Tuple{
		Dims: []string{
			fmt.Sprintf("%04d", r.Timestamp.Year()),
			fmt.Sprintf("%02d", int(r.Timestamp.Month())),
			fmt.Sprintf("%02d", r.Timestamp.Day()),
			fmt.Sprintf("%02d", r.Timestamp.Hour()),
			fmt.Sprintf("q%d", r.Timestamp.Minute()/15),
			r.Area,
			r.StationID,
			r.Status,
		},
		Measure: float64(r.BikesAvailable),
	}
}

// BikeConfig tunes the feed generator. The zero value selects the defaults
// used by the Table 2 presets.
type BikeConfig struct {
	Seed            int64
	Stations        int     // default 80
	Areas           int     // default 12
	IntervalMinutes int     // polling interval, default 15
	DropoutRate     float64 // fraction of missed station reports, default 0.04
	Start           time.Time
}

func (c BikeConfig) withDefaults() BikeConfig {
	if c.Stations <= 0 {
		c.Stations = 80
	}
	if c.Areas <= 0 {
		c.Areas = 12
	}
	if c.IntervalMinutes <= 0 {
		c.IntervalMinutes = 15
	}
	if c.DropoutRate == 0 {
		c.DropoutRate = 0.04
	}
	if c.Start.IsZero() {
		// The paper's harvest period (late 2015, before the EDBT'16
		// deadline).
		c.Start = time.Date(2015, time.June, 1, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// BikeFeed is an infinite deterministic stream of bike-share observations:
// every interval tick each station reports (minus dropouts), with the bike
// count doing a bounded random walk that dips in rush hours.
type BikeFeed struct {
	cfg      BikeConfig
	rng      *rand.Rand
	now      time.Time
	bikes    []int
	caps     []int
	station  int // next station to report this tick
	statuses []string
}

// NewBikeFeed builds the deterministic stream for a config.
func NewBikeFeed(cfg BikeConfig) *BikeFeed {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &BikeFeed{
		cfg:      cfg,
		rng:      rng,
		now:      cfg.Start,
		bikes:    make([]int, cfg.Stations),
		caps:     make([]int, cfg.Stations),
		statuses: []string{"open", "open", "open", "open", "open", "open", "full", "maintenance"},
	}
	for i := range f.caps {
		f.caps[i] = 10 + rng.Intn(31)
		f.bikes[i] = rng.Intn(f.caps[i] + 1)
	}
	return f
}

// Next returns the next observation.
func (f *BikeFeed) Next() BikeRecord {
	for {
		if f.station >= f.cfg.Stations {
			f.station = 0
			f.now = f.now.Add(time.Duration(f.cfg.IntervalMinutes) * time.Minute)
		}
		i := f.station
		f.station++
		// Random walk, biased down in rush hours and up at night.
		drift := 0
		switch h := f.now.Hour(); {
		case h >= 7 && h <= 9 || h >= 16 && h <= 18:
			drift = -1
		case h >= 22 || h <= 5:
			drift = 1
		}
		delta := f.rng.Intn(7) - 3 + drift
		f.bikes[i] += delta
		if f.bikes[i] < 0 {
			f.bikes[i] = 0
		}
		if f.bikes[i] > f.caps[i] {
			f.bikes[i] = f.caps[i]
		}
		if f.rng.Float64() < f.cfg.DropoutRate {
			continue // missed report; move on deterministically
		}
		status := f.statuses[f.rng.Intn(len(f.statuses))]
		if f.bikes[i] == f.caps[i] {
			status = "full"
		}
		return BikeRecord{
			Timestamp:      f.now,
			StationID:      fmt.Sprintf("station-%03d", i),
			Name:           fmt.Sprintf("Station %03d", i),
			Area:           fmt.Sprintf("area-%02d", i%f.cfg.Areas),
			Status:         status,
			BikesAvailable: f.bikes[i],
			DocksAvailable: f.caps[i] - f.bikes[i],
			Capacity:       f.caps[i],
		}
	}
}

// Take returns the next n observations.
func (f *BikeFeed) Take(n int) []BikeRecord {
	out := make([]BikeRecord, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// Preset is one of the paper's five evaluation datasets (Table 2).
type Preset struct {
	Name string
	// Tuples is the exact fact count of Table 2.
	Tuples int
	// PaperMB is the source-data size the paper reports, for the Table 2
	// comparison row.
	PaperMB float64
	// Period is the human description from the paper.
	Period string
}

// Presets mirrors Table 2: Day, Week, Month, TMonth (two months), SMonth
// (six months).
var Presets = []Preset{
	{Name: "Day", Tuples: 7358, PaperMB: 2.1, Period: "one day"},
	{Name: "Week", Tuples: 60102, PaperMB: 17.1, Period: "one week"},
	{Name: "Month", Tuples: 118934, PaperMB: 54.1, Period: "one month"},
	{Name: "TMonth", Tuples: 396756, PaperMB: 113, Period: "two months"},
	{Name: "SMonth", Tuples: 1181344, PaperMB: 338, Period: "six months"},
}

// PresetByName resolves a Table 2 dataset name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("smartcity: unknown preset %q (want Day/Week/Month/TMonth/SMonth)", name)
}

// DatasetRecords generates exactly the preset's observation count.
func DatasetRecords(name string) ([]BikeRecord, error) {
	p, err := PresetByName(name)
	if err != nil {
		return nil, err
	}
	return NewBikeFeed(BikeConfig{Seed: 2016}).Take(p.Tuples), nil
}

// Dataset generates the preset's fact tuples.
func Dataset(name string) ([]dwarf.Tuple, error) {
	recs, err := DatasetRecords(name)
	if err != nil {
		return nil, err
	}
	tuples := make([]dwarf.Tuple, len(recs))
	for i, r := range recs {
		tuples[i] = r.Tuple()
	}
	return tuples, nil
}
