package smartcity

import (
	"encoding/json"
	"encoding/xml"
	"io"
	"time"
)

// Wire formats: the generators can serialize their records as the XML and
// JSON documents a real feed would publish, so the ingestion pipeline
// (internal/xmlstream, internal/jsonstream) is exercised end to end on the
// same bytes a crawler would fetch.

type xmlBikeFeed struct {
	XMLName   xml.Name         `xml:"feed"`
	Generated string           `xml:"generated,attr"`
	Stations  []xmlBikeStation `xml:"station"`
}

type xmlBikeStation struct {
	ID        string `xml:"id,attr"`
	Area      string `xml:"area,attr"`
	Name      string `xml:"name"`
	Status    string `xml:"status"`
	Timestamp string `xml:"timestamp"`
	Bikes     int    `xml:"bikes"`
	Docks     int    `xml:"docks"`
	Capacity  int    `xml:"capacity"`
}

// WriteBikesXML emits the records as one XML feed document.
func WriteBikesXML(w io.Writer, recs []BikeRecord) error {
	doc := xmlBikeFeed{Generated: recs[len(recs)-1].Timestamp.Format(time.RFC3339)}
	if len(recs) == 0 {
		doc.Generated = ""
	}
	doc.Stations = make([]xmlBikeStation, len(recs))
	for i, r := range recs {
		doc.Stations[i] = xmlBikeStation{
			ID:        r.StationID,
			Area:      r.Area,
			Name:      r.Name,
			Status:    r.Status,
			Timestamp: r.Timestamp.Format(time.RFC3339),
			Bikes:     r.BikesAvailable,
			Docks:     r.DocksAvailable,
			Capacity:  r.Capacity,
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

type jsonBikeDoc struct {
	Generated string            `json:"generated"`
	Stations  []jsonBikeStation `json:"stations"`
}

type jsonBikeStation struct {
	ID        string           `json:"id"`
	Name      string           `json:"name"`
	Status    string           `json:"status"`
	Timestamp string           `json:"timestamp"`
	Location  jsonBikeLocation `json:"location"`
	Bikes     int              `json:"bikes"`
	Docks     int              `json:"docks"`
	Capacity  int              `json:"capacity"`
}

type jsonBikeLocation struct {
	Area string `json:"area"`
}

// WriteBikesJSON emits the records as one JSON feed document with the area
// nested under location (to exercise dotted-path extraction).
func WriteBikesJSON(w io.Writer, recs []BikeRecord) error {
	doc := jsonBikeDoc{}
	if len(recs) > 0 {
		doc.Generated = recs[len(recs)-1].Timestamp.Format(time.RFC3339)
	}
	doc.Stations = make([]jsonBikeStation, len(recs))
	for i, r := range recs {
		doc.Stations[i] = jsonBikeStation{
			ID:        r.StationID,
			Name:      r.Name,
			Status:    r.Status,
			Timestamp: r.Timestamp.Format(time.RFC3339),
			Location:  jsonBikeLocation{Area: r.Area},
			Bikes:     r.BikesAvailable,
			Docks:     r.DocksAvailable,
			Capacity:  r.Capacity,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

type jsonAirDoc struct {
	Readings []jsonAirReading `json:"readings"`
}

type jsonAirReading struct {
	Sensor    string  `json:"sensor"`
	Zone      string  `json:"zone"`
	Pollutant string  `json:"pollutant"`
	Timestamp string  `json:"timestamp"`
	Value     float64 `json:"value"`
}

// WriteAirQualityJSON emits sensor readings as one JSON document.
func WriteAirQualityJSON(w io.Writer, recs []AirQualityRecord) error {
	doc := jsonAirDoc{Readings: make([]jsonAirReading, len(recs))}
	for i, r := range recs {
		doc.Readings[i] = jsonAirReading{
			Sensor:    r.Sensor,
			Zone:      r.Zone,
			Pollutant: r.Pollutant,
			Timestamp: r.Timestamp.Format(time.RFC3339),
			Value:     r.Value,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

type xmlCarParkDoc struct {
	XMLName  xml.Name         `xml:"carparks"`
	CarParks []xmlCarParkRead `xml:"carpark"`
}

type xmlCarParkRead struct {
	Name      string `xml:"name,attr"`
	Zone      string `xml:"zone,attr"`
	Timestamp string `xml:"timestamp"`
	Spaces    int    `xml:"spaces"`
	Capacity  int    `xml:"capacity"`
}

// WriteCarParksXML emits occupancy reports as one XML document.
func WriteCarParksXML(w io.Writer, recs []CarParkRecord) error {
	doc := xmlCarParkDoc{CarParks: make([]xmlCarParkRead, len(recs))}
	for i, r := range recs {
		doc.CarParks[i] = xmlCarParkRead{
			Name:      r.CarPark,
			Zone:      r.Zone,
			Timestamp: r.Timestamp.Format(time.RFC3339),
			Spaces:    r.Spaces,
			Capacity:  r.Capacity,
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
