package mapper

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/sqlengine"
)

// MySQLMinDDL is the NoSQL-Min layout ported to the relational engine: one
// cube table plus one cell table, no join tables, no secondary indexes —
// the paper's "schema without joins".
var MySQLMinDDL = []string{
	`CREATE TABLE IF NOT EXISTS dwarf_cube (
		id INT PRIMARY KEY, node_count INT, cell_count INT, size_as_mb INT,
		is_cube BOOLEAN, dimensions TEXT, source_tuples INT)`,
	`CREATE TABLE IF NOT EXISTS dwarf_cell (
		id INT PRIMARY KEY, item DOUBLE, item_count INT, item_min DOUBLE,
		item_max DOUBLE, name TEXT, leaf BOOLEAN, root BOOLEAN, cubeid INT,
		parent_node_id INT, child_node_id INT)`,
}

// MySQLMin is the single-table relational schema.
type MySQLMin struct {
	db   *sqlengine.DB
	opts Options
}

// NewMySQLMin opens (or creates) a MySQL-Min store under dir.
func NewMySQLMin(dir string, opts Options, engine sqlengine.Options) (*MySQLMin, error) {
	db, err := sqlengine.Open(dir, engine)
	if err != nil {
		return nil, err
	}
	for _, ddl := range MySQLMinDDL {
		if _, err := db.Exec(ddl); err != nil {
			db.Close()
			return nil, err
		}
	}
	return &MySQLMin{db: db, opts: opts.withDefaults()}, nil
}

// Name implements Store.
func (s *MySQLMin) Name() string { return "MySQL-Min" }

// DB exposes the underlying engine.
func (s *MySQLMin) DB() *sqlengine.DB { return s.db }

// Close implements Store.
func (s *MySQLMin) Close() error { return s.db.Close() }

func (s *MySQLMin) nextSchemaID() (SchemaID, error) {
	rows, err := s.db.Query("SELECT max(id) FROM dwarf_cube")
	if err != nil {
		return 0, err
	}
	if rows.Data[0][0].IsNull() {
		return 1, nil
	}
	return SchemaID(rows.Data[0][0].Int + 1), nil
}

// Save implements Store: cell rows only, multi-row INSERTs in one
// transaction.
func (s *MySQLMin) Save(c *dwarf.Cube) (SchemaID, error) {
	sid, err := s.nextSchemaID()
	if err != nil {
		return 0, err
	}
	base := int64(sid) * idStride
	e := enumerate(c)

	if _, err := s.db.Exec("BEGIN"); err != nil {
		return 0, err
	}
	if _, err := s.db.Exec(`INSERT INTO dwarf_cube (id, node_count, cell_count,
		size_as_mb, is_cube, dimensions, source_tuples) VALUES (?, ?, ?, ?, ?, ?, ?)`,
		int64(sid), len(e.nodes), e.cellCount, 0, c.FromQuery,
		encodeDims(c.Dims()), c.NumSourceTuples()); err != nil {
		return 0, err
	}
	ins := &bulkInserter{db: s.db, table: "dwarf_cell",
		cols: []string{"id", "item", "item_count", "item_min", "item_max", "name",
			"leaf", "root", "cubeid", "parent_node_id", "child_node_id"},
		max: s.opts.BatchSize}

	for i, n := range e.nodes {
		nodeID := base + e.nodeIDs[n]
		ids := e.cellIDs[i]
		isRoot := i == 0
		emit := func(cellID int64, key string, agg dwarf.Aggregate, child int64) error {
			var item, mn, mx, mc any
			if n.Leaf {
				item, mc, mn, mx = agg.Sum, agg.Count, agg.Min, agg.Max
			}
			var childVal any
			if child != 0 {
				childVal = child
			}
			return ins.add(cellID, item, mc, mn, mx, key, n.Leaf, isRoot,
				int64(sid), nodeID, childVal)
		}
		for j := range n.Cells {
			cell := &n.Cells[j]
			var child int64
			if cell.Child != nil {
				child = base + e.nodeID(cell.Child)
			}
			if err := emit(base+ids[j], cell.Key, cell.Agg, child); err != nil {
				return 0, err
			}
		}
		var allChild int64
		if n.AllChild != nil {
			allChild = base + e.nodeID(n.AllChild)
		}
		if err := emit(base+ids[len(ids)-1], allKey, n.AllAgg, allChild); err != nil {
			return 0, err
		}
	}
	if err := ins.flush(); err != nil {
		return 0, err
	}
	if _, err := s.db.Exec("COMMIT"); err != nil {
		return 0, err
	}

	if err := s.db.Checkpoint(); err != nil {
		return 0, err
	}
	size, err := s.db.TotalDiskSize()
	if err != nil {
		return 0, err
	}
	if _, err := s.db.Exec("UPDATE dwarf_cube SET size_as_mb = ? WHERE id = ?",
		bytesToMB(size), int64(sid)); err != nil {
		return 0, err
	}
	return sid, nil
}

// Load implements Store: one filtered scan of the cell table, nodes derived
// from parent ids (as the paper anticipates, "DWARF Node reconstruction is
// required").
func (s *MySQLMin) Load(id SchemaID) (*dwarf.Cube, error) {
	info, err := s.cubeInfo(id)
	if err != nil {
		return nil, err
	}
	rows, err := s.db.Query(`SELECT id, item, item_count, item_min, item_max, name,
		leaf, root, parent_node_id, child_node_id FROM dwarf_cell WHERE cubeid = ?`, int64(id))
	if err != nil {
		return nil, err
	}
	var cells []cellRow
	nodeSet := map[int64]bool{}
	var rootID int64
	for _, r := range rows.Data {
		parent := r[8].Int
		nodeSet[parent] = true
		if r[7].Bool {
			rootID = parent
		}
		cells = append(cells, cellRow{
			id:          r[0].Int,
			key:         r[5].Text,
			agg:         dwarf.Aggregate{Sum: r[1].Float, Count: r[2].Int, Min: r[3].Float, Max: r[4].Float},
			parentNode:  parent,
			pointerNode: r[9].Int,
			leaf:        r[6].Bool,
			isAll:       r[5].Text == allKey,
		})
	}
	if rootID == 0 {
		return nil, fmt.Errorf("%w: cube %d has no root cells", ErrCorruptStore, id)
	}
	nodeIDs := make([]int64, 0, len(nodeSet))
	for nid := range nodeSet {
		nodeIDs = append(nodeIDs, nid)
	}
	return rebuildFromCells(nodeIDs, rootID, cells, info.Dimensions, info.SourceRows, info.IsCube)
}

func (s *MySQLMin) cubeInfo(id SchemaID) (SchemaInfo, error) {
	rows, err := s.db.Query("SELECT node_count, cell_count, size_as_mb, is_cube, "+
		"dimensions, source_tuples FROM dwarf_cube WHERE id = ?", int64(id))
	if err != nil {
		return SchemaInfo{}, err
	}
	if len(rows.Data) == 0 {
		return SchemaInfo{}, fmt.Errorf("%w: %d", ErrNoSuchSchema, id)
	}
	r := rows.Data[0]
	dims, err := decodeDims(r[4].Text)
	if err != nil {
		return SchemaInfo{}, err
	}
	return SchemaInfo{
		ID:         id,
		NodeCount:  int(r[0].Int),
		CellCount:  int(r[1].Int),
		SizeAsMB:   r[2].Int,
		IsCube:     r[3].Bool,
		Dimensions: dims,
		SourceRows: int(r[5].Int),
	}, nil
}

// Schemas implements Store.
func (s *MySQLMin) Schemas() ([]SchemaInfo, error) {
	rows, err := s.db.Query("SELECT id FROM dwarf_cube")
	if err != nil {
		return nil, err
	}
	out := make([]SchemaInfo, 0, len(rows.Data))
	for _, r := range rows.Data {
		info, err := s.cubeInfo(SchemaID(r[0].Int))
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}

// StoredBytes implements Store.
func (s *MySQLMin) StoredBytes() (int64, error) {
	if err := s.db.Checkpoint(); err != nil {
		return 0, err
	}
	return s.db.TotalDiskSize()
}
