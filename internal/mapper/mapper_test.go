package mapper

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/nosql"
)

func paperCube(t *testing.T) *dwarf.Cube {
	t.Helper()
	c, err := dwarf.New([]string{"Country", "City", "Station"}, []dwarf.Tuple{
		{Dims: []string{"Ireland", "Dublin", "Fenian St"}, Measure: 3},
		{Dims: []string{"Ireland", "Dublin", "Pearse St"}, Measure: 5},
		{Dims: []string{"Ireland", "Cork", "Patrick St"}, Measure: 2},
		{Dims: []string{"France", "Paris", "Rue Cler"}, Measure: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomCube(t *testing.T, seed int64, n int) *dwarf.Cube {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ndims := 2 + rng.Intn(3)
	dims := make([]string, ndims)
	for i := range dims {
		dims[i] = fmt.Sprintf("d%d", i)
	}
	tuples := make([]dwarf.Tuple, n)
	for i := range tuples {
		keys := make([]string, ndims)
		for d := range keys {
			keys[d] = fmt.Sprintf("k%d", rng.Intn(6))
		}
		tuples[i] = dwarf.Tuple{Dims: keys, Measure: float64(rng.Intn(20))}
	}
	c, err := dwarf.New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func openTestStore(t *testing.T, kind Kind) Store {
	t.Helper()
	st, err := OpenStore(kind, t.TempDir(), Options{BatchSize: 64}, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// equalCubes compares two cubes by structure stats and a battery of
// queries, including every base tuple and ALL queries.
func equalCubes(t *testing.T, a, b *dwarf.Cube, label string) {
	t.Helper()
	as, bs := a.Stats(), b.Stats()
	if as.Nodes != bs.Nodes || as.Cells != bs.Cells {
		t.Errorf("%s: stats differ: %+v vs %+v", label, as, bs)
	}
	if a.NumSourceTuples() != b.NumSourceTuples() {
		t.Errorf("%s: tuple counts differ: %d vs %d", label, a.NumSourceTuples(), b.NumSourceTuples())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Errorf("%s: invariants: %v", label, err)
	}
	ndims := a.NumDims()
	allQ := make([]string, ndims)
	for i := range allQ {
		allQ[i] = dwarf.All
	}
	ga, _ := a.Point(allQ...)
	gb, _ := b.Point(allQ...)
	if !ga.Equal(gb) {
		t.Errorf("%s: ALL query differs: %v vs %v", label, ga, gb)
	}
	a.Tuples(func(keys []string, agg dwarf.Aggregate) bool {
		got, err := b.Point(keys...)
		if err != nil || !got.Equal(agg) {
			t.Errorf("%s: tuple %v: %v vs %v (%v)", label, keys, agg, got, err)
			return false
		}
		// Probe one wildcard variant per tuple.
		probe := append([]string(nil), keys...)
		probe[len(probe)-1] = dwarf.All
		wa, _ := a.Point(probe...)
		wb, _ := b.Point(probe...)
		if !wa.Equal(wb) {
			t.Errorf("%s: wildcard %v: %v vs %v", label, probe, wa, wb)
			return false
		}
		return true
	})
}

func TestAllStoresRoundTripPaperExample(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			st := openTestStore(t, kind)
			cube := paperCube(t)
			id, err := st.Save(cube)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := st.Load(id)
			if err != nil {
				t.Fatal(err)
			}
			equalCubes(t, cube, loaded, string(kind))

			// Metadata round trip.
			infos, err := st.Schemas()
			if err != nil || len(infos) != 1 {
				t.Fatalf("Schemas: %v %v", infos, err)
			}
			info := infos[0]
			stats := cube.Stats()
			if info.NodeCount != stats.Nodes || info.CellCount != stats.TotalCells() {
				t.Errorf("schema row counts %+v vs stats %+v", info, stats)
			}
			if info.SourceRows != 4 || info.IsCube {
				t.Errorf("schema row = %+v", info)
			}
			if len(info.Dimensions) != 3 || info.Dimensions[0] != "Country" {
				t.Errorf("dimensions = %v", info.Dimensions)
			}
			size, err := st.StoredBytes()
			if err != nil || size <= 0 {
				t.Errorf("StoredBytes = %d, %v", size, err)
			}
		})
	}
}

func TestAllStoresRoundTripRandomCubes(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			st := openTestStore(t, kind)
			for seed := int64(1); seed <= 3; seed++ {
				cube := randomCube(t, seed, 60+int(seed)*40)
				id, err := st.Save(cube)
				if err != nil {
					t.Fatal(err)
				}
				loaded, err := st.Load(id)
				if err != nil {
					t.Fatal(err)
				}
				equalCubes(t, cube, loaded, fmt.Sprintf("%s/seed%d", kind, seed))
			}
			// Three schemas coexist in one store.
			infos, err := st.Schemas()
			if err != nil || len(infos) != 3 {
				t.Fatalf("Schemas after 3 saves: %d, %v", len(infos), err)
			}
		})
	}
}

func TestIsCubeFlagRoundTrip(t *testing.T) {
	for _, kind := range AllKinds() {
		st := openTestStore(t, kind)
		cube := paperCube(t)
		sub, err := cube.Extract([]dwarf.Selector{
			dwarf.SelectKeys("Ireland"), dwarf.SelectAll(), dwarf.SelectAll(),
		})
		if err != nil {
			t.Fatal(err)
		}
		id, err := st.Save(sub)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := st.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if !loaded.FromQuery {
			t.Errorf("%s: is_cube flag lost", kind)
		}
	}
}

func TestLoadMissingSchema(t *testing.T) {
	for _, kind := range AllKinds() {
		st := openTestStore(t, kind)
		if _, err := st.Load(42); !errors.Is(err, ErrNoSuchSchema) {
			t.Errorf("%s: missing schema: %v", kind, err)
		}
	}
}

func TestSizeAsMBRecorded(t *testing.T) {
	// A big enough cube should cross the 1 MB threshold and have the
	// paper's size_as_mb field populated by the post-save UPDATE.
	st := openTestStore(t, KindNoSQLDwarf)
	cube := randomCube(t, 99, 5000)
	id, err := st.Save(cube)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := st.Schemas()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.ID == id && info.SizeAsMB < 0 {
			t.Errorf("size_as_mb = %d", info.SizeAsMB)
		}
	}
}

// TestPaperFigure3CQL checks the Fig. 3 cell→CQL transformation renders the
// statement shape the paper prints, and that it executes.
func TestPaperFigure3CQL(t *testing.T) {
	stmt := CellInsertCQL(3, "Fenian St", dwarf.NewAggregate(3), 3, 0, true, 1, "Station")
	for _, want := range []string{"INSERT INTO dwarf.dwarf_cell", "'Fenian St'", "null", "true"} {
		if !strings.Contains(stmt, want) {
			t.Errorf("CQL %q missing %q", stmt, want)
		}
	}
	st := openTestStore(t, KindNoSQLDwarf).(*NoSQLDwarf)
	sess := nosql.NewSession(st.DB())
	if _, err := sess.Execute(stmt); err != nil {
		t.Errorf("Fig. 3 CQL failed to execute: %v", err)
	}
}

// TestMySQLDwarfJoinQuery exercises the Fig. 4 join path on the relational
// engine: fetching a node's cells through NODE_CHILDREN.
func TestMySQLDwarfJoinQuery(t *testing.T) {
	st := openTestStore(t, KindMySQLDwarf).(*MySQLDwarf)
	cube := paperCube(t)
	id, err := st.Save(cube)
	if err != nil {
		t.Fatal(err)
	}
	rootID := int64(id)*idStride + 1
	rows, err := st.CellsOfNode(rootID)
	if err != nil {
		t.Fatal(err)
	}
	// Root node: France + Ireland + the ALL cell.
	if len(rows.Data) != 3 {
		t.Fatalf("root cells via join = %d rows", len(rows.Data))
	}
	keys := map[string]bool{}
	for _, r := range rows.Data {
		keys[r[1].Text] = true
	}
	if !keys["France"] || !keys["Ireland"] || !keys["*"] {
		t.Errorf("root cell keys = %v", keys)
	}
}

// TestNoSQLMinIndexQuery exercises the Table 3 secondary index.
func TestNoSQLMinIndexQuery(t *testing.T) {
	st := openTestStore(t, KindNoSQLMin).(*NoSQLMin)
	cube := paperCube(t)
	id, err := st.Save(cube)
	if err != nil {
		t.Fatal(err)
	}
	rootID := int64(id)*idStride + 1
	rows, err := st.CellsUnderNode(rootID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("cells under root via index = %d", len(rows))
	}
}

// TestSchemaDDLShapes pins the published schema definitions: Table 1,
// Table 3 and Fig. 4 column families/tables exist with their documented
// columns after store creation.
func TestSchemaDDLShapes(t *testing.T) {
	t.Run("NoSQLDwarf-Table1", func(t *testing.T) {
		st := openTestStore(t, KindNoSQLDwarf).(*NoSQLDwarf)
		for _, table := range []string{"dwarf_schema", "dwarf_node", "dwarf_cell"} {
			if !st.DB().HasTable("dwarf", table) {
				t.Errorf("missing column family %s", table)
			}
		}
		schema, err := st.DB().Schema("dwarf", "dwarf_node")
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []string{"id", "parent_ids", "children_ids", "root", "schema_id"} {
			if _, err := schema.Column(col); err != nil {
				t.Errorf("dwarf_node missing %s", col)
			}
		}
	})
	t.Run("NoSQLMin-Table3", func(t *testing.T) {
		st := openTestStore(t, KindNoSQLMin).(*NoSQLMin)
		if !st.DB().HasIndex("dwarfmin", "dwarf_cell", "parent_node_id") ||
			!st.DB().HasIndex("dwarfmin", "dwarf_cell", "child_node_id") {
			t.Error("NoSQL-Min must carry its two secondary indexes")
		}
	})
	t.Run("MySQLDwarf-Fig4", func(t *testing.T) {
		st := openTestStore(t, KindMySQLDwarf).(*MySQLDwarf)
		tables := st.DB().Tables()
		want := []string{"cell_children", "dwarf_cell", "dwarf_node", "dwarf_schema", "node_children"}
		if len(tables) != len(want) {
			t.Fatalf("tables = %v", tables)
		}
		for i := range want {
			if tables[i] != want[i] {
				t.Errorf("tables = %v, want %v", tables, want)
			}
		}
	})
	t.Run("MySQLMin", func(t *testing.T) {
		st := openTestStore(t, KindMySQLMin).(*MySQLMin)
		def, err := st.DB().TableDef("dwarf_cell")
		if err != nil {
			t.Fatal(err)
		}
		if len(def.Indexes) != 0 {
			t.Errorf("MySQL-Min should have no secondary indexes: %v", def.Indexes)
		}
	})
}

func TestOpenStoreUnknownKind(t *testing.T) {
	if _, err := OpenStore(Kind("bogus"), t.TempDir(), Options{}, EngineOptions{}); err == nil {
		t.Error("unknown kind opened")
	}
}

// TestStorePersistenceAcrossReopen saves, closes, reopens, loads.
func TestStorePersistenceAcrossReopen(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			dir := t.TempDir()
			st, err := OpenStore(kind, dir, Options{}, EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cube := paperCube(t)
			id, err := st.Save(cube)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := OpenStore(kind, dir, Options{}, EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			loaded, err := st2.Load(id)
			if err != nil {
				t.Fatal(err)
			}
			equalCubes(t, cube, loaded, string(kind)+"/reopen")
		})
	}
}
