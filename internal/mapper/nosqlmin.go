package mapper

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/nosql"
)

// NoSQLMinDDL is the Table 3 schema: no node table — cells carry their
// parent and pointer node ids and nodes are rebuilt at load time. The two
// secondary indexes replace the node table's structure and are exactly what
// makes this schema the slowest writer in the paper's Table 5.
var NoSQLMinDDL = []string{
	`CREATE KEYSPACE IF NOT EXISTS dwarfmin`,
	`CREATE TABLE IF NOT EXISTS dwarfmin.dwarf_cube (
		id int PRIMARY KEY,
		node_count int,
		cell_count int,
		size_as_mb int,
		is_cube boolean,
		dimensions text,
		source_tuples int)`,
	`CREATE TABLE IF NOT EXISTS dwarfmin.dwarf_cell (
		id int PRIMARY KEY,
		item double,
		item_count int,
		item_min double,
		item_max double,
		name text,
		leaf boolean,
		root boolean,
		cubeid int,
		parent_node_id int,
		child_node_id int)`,
	`CREATE INDEX IF NOT EXISTS ON dwarfmin.dwarf_cell (parent_node_id)`,
	`CREATE INDEX IF NOT EXISTS ON dwarfmin.dwarf_cell (child_node_id)`,
}

// NoSQLMin is the paper's minimal NoSQL schema (Table 3).
type NoSQLMin struct {
	db   *nosql.DB
	opts Options
}

// NewNoSQLMin opens (or creates) a NoSQL-Min store under dir.
func NewNoSQLMin(dir string, opts Options, engine nosql.Options) (*NoSQLMin, error) {
	db, err := nosql.Open(dir, engine)
	if err != nil {
		return nil, err
	}
	s := &NoSQLMin{db: db, opts: opts.withDefaults()}
	sess := nosql.NewSession(db)
	for _, ddl := range NoSQLMinDDL {
		if _, err := sess.Execute(ddl); err != nil {
			db.Close()
			return nil, err
		}
	}
	return s, nil
}

// Name implements Store.
func (s *NoSQLMin) Name() string { return "NoSQL-Min" }

// DB exposes the underlying engine.
func (s *NoSQLMin) DB() *nosql.DB { return s.db }

// Close implements Store.
func (s *NoSQLMin) Close() error { return s.db.Close() }

func (s *NoSQLMin) nextSchemaID() (SchemaID, error) {
	var maxID int64
	err := s.db.Scan("dwarfmin", "dwarf_cube", func(r nosql.Row) bool {
		if id := r.Get("id").Int; id > maxID {
			maxID = id
		}
		return true
	})
	return SchemaID(maxID + 1), err
}

// Save implements Store. Only cell rows are written; every insert maintains
// the two secondary indexes (with the engine's read-before-write), which is
// the schema's characteristic cost.
func (s *NoSQLMin) Save(c *dwarf.Cube) (SchemaID, error) {
	sid, err := s.nextSchemaID()
	if err != nil {
		return 0, err
	}
	base := int64(sid) * idStride
	e := enumerate(c)

	if err := s.db.Insert("dwarfmin", "dwarf_cube", nosql.Row{
		"id":            nosql.Int(int64(sid)),
		"node_count":    nosql.Int(int64(len(e.nodes))),
		"cell_count":    nosql.Int(int64(e.cellCount)),
		"size_as_mb":    nosql.Int(0),
		"is_cube":       nosql.Bool(c.FromQuery),
		"dimensions":    nosql.Text(encodeDims(c.Dims())),
		"source_tuples": nosql.Int(int64(c.NumSourceTuples())),
	}); err != nil {
		return 0, err
	}

	batch := nosql.NewBatch()
	flush := func(force bool) error {
		if batch.Len() == 0 || (!force && batch.Len() < s.opts.BatchSize) {
			return nil
		}
		if err := s.db.ApplyBatch(batch); err != nil {
			return err
		}
		batch.Reset()
		return nil
	}

	for i, n := range e.nodes {
		nodeID := base + e.nodeIDs[n]
		ids := e.cellIDs[i]
		isRoot := i == 0
		emit := func(cellID int64, key string, agg dwarf.Aggregate, child int64) {
			row := nosql.Row{
				"id":             nosql.Int(cellID),
				"name":           nosql.Text(key),
				"leaf":           nosql.Bool(n.Leaf),
				"root":           nosql.Bool(isRoot),
				"cubeid":         nosql.Int(int64(sid)),
				"parent_node_id": nosql.Int(nodeID),
			}
			if n.Leaf {
				row["item"] = nosql.Float(agg.Sum)
				row["item_count"] = nosql.Int(agg.Count)
				row["item_min"] = nosql.Float(agg.Min)
				row["item_max"] = nosql.Float(agg.Max)
			} else if child != 0 {
				row["child_node_id"] = nosql.Int(child)
			}
			batch.Insert("dwarfmin", "dwarf_cell", row)
		}
		for j := range n.Cells {
			cell := &n.Cells[j]
			var child int64
			if cell.Child != nil {
				child = base + e.nodeID(cell.Child)
			}
			emit(base+ids[j], cell.Key, cell.Agg, child)
			if err := flush(false); err != nil {
				return 0, err
			}
		}
		var allChild int64
		if n.AllChild != nil {
			allChild = base + e.nodeID(n.AllChild)
		}
		emit(base+ids[len(ids)-1], allKey, n.AllAgg, allChild)
		if err := flush(false); err != nil {
			return 0, err
		}
	}
	if err := flush(true); err != nil {
		return 0, err
	}

	if err := s.db.FlushAll(); err != nil {
		return 0, err
	}
	size, err := s.db.KeyspaceDiskSize("dwarfmin")
	if err != nil {
		return 0, err
	}
	sess := nosql.NewSession(s.db)
	if _, err := sess.Execute("UPDATE dwarfmin.dwarf_cube SET size_as_mb = ? WHERE id = ?",
		bytesToMB(size), int64(sid)); err != nil {
		return 0, err
	}
	return sid, nil
}

// Load implements Store: scan this cube's cells, derive the node set from
// the cells' parent ids (every node owns at least its ALL cell), and
// rebuild — "these nodes can be rebuilt at a later stage".
func (s *NoSQLMin) Load(id SchemaID) (*dwarf.Cube, error) {
	info, err := s.cubeRow(id)
	if err != nil {
		return nil, err
	}
	var cells []cellRow
	nodeSet := map[int64]bool{}
	var rootID int64
	lo, hi := nosql.Int(int64(id)*idStride), nosql.Int((int64(id)+1)*idStride)
	err = s.db.ScanRange("dwarfmin", "dwarf_cell", lo, hi, func(r nosql.Row) bool {
		parent := r.Get("parent_node_id").Int
		nodeSet[parent] = true
		if r.Get("root").Bool {
			rootID = parent
		}
		cells = append(cells, cellRow{
			id:  r.Get("id").Int,
			key: r.Get("name").Text,
			agg: dwarf.Aggregate{
				Sum:   r.Get("item").Float,
				Count: r.Get("item_count").Int,
				Min:   r.Get("item_min").Float,
				Max:   r.Get("item_max").Float,
			},
			parentNode:  parent,
			pointerNode: r.Get("child_node_id").Int,
			leaf:        r.Get("leaf").Bool,
			isAll:       r.Get("name").Text == allKey,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	if rootID == 0 {
		return nil, fmt.Errorf("%w: cube %d has no root cells", ErrCorruptStore, id)
	}
	nodeIDs := make([]int64, 0, len(nodeSet))
	for nid := range nodeSet {
		nodeIDs = append(nodeIDs, nid)
	}
	return rebuildFromCells(nodeIDs, rootID, cells, info.Dimensions, info.SourceRows, info.IsCube)
}

// CellsUnderNode exercises the parent_node_id secondary index: the rows of
// one rebuilt node (used by tests and the query examples).
func (s *NoSQLMin) CellsUnderNode(nodeID int64) ([]nosql.Row, error) {
	return s.db.SelectByIndex("dwarfmin", "dwarf_cell", "parent_node_id", nosql.Int(nodeID))
}

func (s *NoSQLMin) cubeRow(id SchemaID) (SchemaInfo, error) {
	row, ok, err := s.db.Get("dwarfmin", "dwarf_cube", nosql.Int(int64(id)))
	if err != nil {
		return SchemaInfo{}, err
	}
	if !ok {
		return SchemaInfo{}, fmt.Errorf("%w: %d", ErrNoSuchSchema, id)
	}
	dims, err := decodeDims(row.Get("dimensions").Text)
	if err != nil {
		return SchemaInfo{}, err
	}
	return SchemaInfo{
		ID:         id,
		NodeCount:  int(row.Get("node_count").Int),
		CellCount:  int(row.Get("cell_count").Int),
		SizeAsMB:   row.Get("size_as_mb").Int,
		IsCube:     row.Get("is_cube").Bool,
		Dimensions: dims,
		SourceRows: int(row.Get("source_tuples").Int),
	}, nil
}

// Schemas implements Store.
func (s *NoSQLMin) Schemas() ([]SchemaInfo, error) {
	var out []SchemaInfo
	var derr error
	err := s.db.Scan("dwarfmin", "dwarf_cube", func(r nosql.Row) bool {
		dims, err := decodeDims(r.Get("dimensions").Text)
		if err != nil {
			derr = err
			return false
		}
		out = append(out, SchemaInfo{
			ID:         SchemaID(r.Get("id").Int),
			NodeCount:  int(r.Get("node_count").Int),
			CellCount:  int(r.Get("cell_count").Int),
			SizeAsMB:   r.Get("size_as_mb").Int,
			IsCube:     r.Get("is_cube").Bool,
			Dimensions: dims,
			SourceRows: int(r.Get("source_tuples").Int),
		})
		return true
	})
	if derr != nil {
		return nil, derr
	}
	return out, err
}

// StoredBytes implements Store (secondary index files included).
func (s *NoSQLMin) StoredBytes() (int64, error) {
	if err := s.db.FlushAll(); err != nil {
		return 0, err
	}
	return s.db.KeyspaceDiskSize("dwarfmin")
}
