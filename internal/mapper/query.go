package mapper

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/nosql"
)

// On-store query primitives — the paper's §7 direction ("efficient query
// primitives for our DWARF cubes"): answer a point/ALL query by walking the
// stored rows directly, one dimension level at a time, without rebuilding
// the cube. Each schema model pays its own access cost:
//
//   - NoSQL-DWARF: node rows carry children_ids, so a level is resolved
//     with point reads by primary key.
//   - NoSQL-Min: there are no node rows; a level's cells are found through
//     the parent_node_id secondary index — the query-time price the paper
//     anticipates for dropping the node construct.
//   - MySQL-DWARF: a level is one NODE_CHILDREN ⋈ DWARF_CELL join plus a
//     CELL_CHILDREN lookup for the pointer.
//   - MySQL-Min: no indexes at all; every level filters a full scan — the
//     worst case the paper's §5.1 warns about.

// PointQuerier is implemented by stores that can answer point/ALL queries
// against their stored representation.
type PointQuerier interface {
	PointOnStore(id SchemaID, keys ...string) (dwarf.Aggregate, error)
}

// Compile-time checks.
var (
	_ PointQuerier = (*NoSQLDwarf)(nil)
	_ PointQuerier = (*NoSQLMin)(nil)
	_ PointQuerier = (*MySQLDwarf)(nil)
	_ PointQuerier = (*MySQLMin)(nil)
)

// ErrBadStoreQuery reports a key-count mismatch against the stored schema.
var ErrBadStoreQuery = fmt.Errorf("mapper: query key count does not match stored dimensions")

func wantKey(keys []string, level int) string { return keys[level] }

// aggFromCellRow decodes the measure columns of a NoSQL cell row.
func aggFromCellRow(r nosql.Row, sumCol, cntCol, minCol, maxCol string) dwarf.Aggregate {
	return dwarf.Aggregate{
		Sum:   r.Get(sumCol).Float,
		Count: r.Get(cntCol).Int,
		Min:   r.Get(minCol).Float,
		Max:   r.Get(maxCol).Float,
	}
}

// PointOnStore walks the Table 1 representation: node row → cell rows by
// primary key.
func (s *NoSQLDwarf) PointOnStore(id SchemaID, keys ...string) (dwarf.Aggregate, error) {
	info, _, err := s.schemaRow(id)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	if len(keys) != len(info.Dimensions) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d, stored %d", ErrBadStoreQuery,
			len(keys), len(info.Dimensions))
	}
	nodeID := info.EntryNodeID
	for level := 0; level < len(keys); level++ {
		nodeRow, ok, err := s.db.Get("dwarf", "dwarf_node", nosql.Int(nodeID))
		if err != nil {
			return dwarf.Aggregate{}, err
		}
		if !ok {
			return dwarf.Aggregate{}, fmt.Errorf("%w: node %d missing", ErrCorruptStore, nodeID)
		}
		want := wantKey(keys, level)
		lookFor := want
		if want == dwarf.All {
			lookFor = allKey
		}
		var match nosql.Row
		for _, cellID := range nodeRow.Get("children_ids").Set {
			cellRow, ok, err := s.db.Get("dwarf", "dwarf_cell", nosql.Int(cellID))
			if err != nil {
				return dwarf.Aggregate{}, err
			}
			if !ok {
				return dwarf.Aggregate{}, fmt.Errorf("%w: cell %d missing", ErrCorruptStore, cellID)
			}
			if cellRow.Get("key").Text == lookFor {
				match = cellRow
				break
			}
		}
		if match == nil {
			return dwarf.Aggregate{}, nil // combination absent
		}
		if match.Get("leaf").Bool {
			return aggFromCellRow(match, "measure", "measure_count", "measure_min", "measure_max"), nil
		}
		pointer := match.Get("pointer_node")
		if pointer.IsNull() {
			return dwarf.Aggregate{}, nil
		}
		nodeID = pointer.Int
	}
	return dwarf.Aggregate{}, nil
}

// PointOnStore walks the Table 3 representation: each level's cells come
// from the parent_node_id secondary index (node reconstruction on the fly).
func (s *NoSQLMin) PointOnStore(id SchemaID, keys ...string) (dwarf.Aggregate, error) {
	info, err := s.cubeRow(id)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	if len(keys) != len(info.Dimensions) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d, stored %d", ErrBadStoreQuery,
			len(keys), len(info.Dimensions))
	}
	nodeID := int64(id)*idStride + 1 // the root node id by construction
	for level := 0; level < len(keys); level++ {
		cells, err := s.db.SelectByIndex("dwarfmin", "dwarf_cell", "parent_node_id", nosql.Int(nodeID))
		if err != nil {
			return dwarf.Aggregate{}, err
		}
		want := wantKey(keys, level)
		lookFor := want
		if want == dwarf.All {
			lookFor = allKey
		}
		var match nosql.Row
		for _, r := range cells {
			if r.Get("name").Text == lookFor {
				match = r
				break
			}
		}
		if match == nil {
			return dwarf.Aggregate{}, nil
		}
		if match.Get("leaf").Bool {
			return aggFromCellRow(match, "item", "item_count", "item_min", "item_max"), nil
		}
		child := match.Get("child_node_id")
		if child.IsNull() {
			return dwarf.Aggregate{}, nil
		}
		nodeID = child.Int
	}
	return dwarf.Aggregate{}, nil
}

// PointOnStore walks the Fig. 4 representation with one join per level.
func (s *MySQLDwarf) PointOnStore(id SchemaID, keys ...string) (dwarf.Aggregate, error) {
	info, err := s.schemaInfo(id)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	if len(keys) != len(info.Dimensions) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d, stored %d", ErrBadStoreQuery,
			len(keys), len(info.Dimensions))
	}
	nodeID := info.EntryNodeID
	for level := 0; level < len(keys); level++ {
		want := wantKey(keys, level)
		lookFor := want
		if want == dwarf.All {
			lookFor = allKey
		}
		rows, err := s.db.Query(`SELECT c.id, c.measure, c.measure_count, c.measure_min,
			c.measure_max, c.leaf FROM node_children nc
			JOIN dwarf_cell c ON nc.cell_id = c.id
			WHERE nc.node_id = ? AND c.cell_key = ?`, nodeID, lookFor)
		if err != nil {
			return dwarf.Aggregate{}, err
		}
		if len(rows.Data) == 0 {
			return dwarf.Aggregate{}, nil
		}
		r := rows.Data[0]
		if r[5].Bool {
			return dwarf.Aggregate{Sum: r[1].Float, Count: r[2].Int, Min: r[3].Float, Max: r[4].Float}, nil
		}
		ptr, err := s.db.Query("SELECT node_id FROM cell_children WHERE cell_id = ?", r[0].Int)
		if err != nil {
			return dwarf.Aggregate{}, err
		}
		if len(ptr.Data) == 0 {
			return dwarf.Aggregate{}, nil
		}
		nodeID = ptr.Data[0][0].Int
	}
	return dwarf.Aggregate{}, nil
}

// PointOnStore walks the MySQL-Min representation. With no secondary
// indexes, every level is a filtered full scan of the cell table — the
// query-time cost of the join-free schema.
func (s *MySQLMin) PointOnStore(id SchemaID, keys ...string) (dwarf.Aggregate, error) {
	info, err := s.cubeInfo(id)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	if len(keys) != len(info.Dimensions) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d, stored %d", ErrBadStoreQuery,
			len(keys), len(info.Dimensions))
	}
	nodeID := int64(id)*idStride + 1
	for level := 0; level < len(keys); level++ {
		want := wantKey(keys, level)
		lookFor := want
		if want == dwarf.All {
			lookFor = allKey
		}
		rows, err := s.db.Query(`SELECT item, item_count, item_min, item_max, leaf,
			child_node_id FROM dwarf_cell WHERE parent_node_id = ? AND name = ?`,
			nodeID, lookFor)
		if err != nil {
			return dwarf.Aggregate{}, err
		}
		if len(rows.Data) == 0 {
			return dwarf.Aggregate{}, nil
		}
		r := rows.Data[0]
		if r[4].Bool {
			return dwarf.Aggregate{Sum: r[0].Float, Count: r[1].Int, Min: r[2].Float, Max: r[3].Float}, nil
		}
		if r[5].IsNull() {
			return dwarf.Aggregate{}, nil
		}
		nodeID = r[5].Int
	}
	return dwarf.Aggregate{}, nil
}
