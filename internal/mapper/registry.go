package mapper

import (
	"fmt"

	"repro/internal/nosql"
	"repro/internal/sqlengine"
)

// Kind names one of the four schema models using the paper's labels.
type Kind string

// The four schema models of the evaluation (Tables 4 and 5).
const (
	KindMySQLDwarf Kind = "MySQL-DWARF"
	KindMySQLMin   Kind = "MySQL-Min"
	KindNoSQLDwarf Kind = "NoSQL-DWARF"
	KindNoSQLMin   Kind = "NoSQL-Min"
)

// AllKinds returns the schema models in the paper's table row order.
func AllKinds() []Kind {
	return []Kind{KindMySQLDwarf, KindMySQLMin, KindNoSQLDwarf, KindNoSQLMin}
}

// EngineOptions carries per-engine tuning for OpenStore.
type EngineOptions struct {
	NoSQL nosql.Options
	SQL   sqlengine.Options
}

// OpenStore opens a store of the given kind rooted at dir.
func OpenStore(kind Kind, dir string, opts Options, engines EngineOptions) (Store, error) {
	switch kind {
	case KindNoSQLDwarf:
		return NewNoSQLDwarf(dir, opts, engines.NoSQL)
	case KindNoSQLMin:
		return NewNoSQLMin(dir, opts, engines.NoSQL)
	case KindMySQLDwarf:
		return NewMySQLDwarf(dir, opts, engines.SQL)
	case KindMySQLMin:
		return NewMySQLMin(dir, opts, engines.SQL)
	default:
		return nil, fmt.Errorf("mapper: unknown store kind %q", kind)
	}
}
