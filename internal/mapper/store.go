// Package mapper implements the paper's contribution: the bi-directional
// mapping between an in-memory DWARF cube and four storage schema models
// (§3–§5):
//
//   - NoSQL-DWARF — Table 1: DWARF_Schema / DWARF_Node / DWARF_Cell column
//     families in the columnar engine, primary indexes only.
//   - NoSQL-Min — Table 3: cells only, nodes rebuilt at load time, two
//     secondary indexes (parent_node_id, child_node_id).
//   - MySQL-DWARF — Fig. 4: fully relational with NODE_CHILDREN and
//     CELL_CHILDREN join tables (plus the FK indexes a real MySQL would
//     carry), the schema that "most accurately describes a dwarf structure
//     in a relational database".
//   - MySQL-Min — the NoSQL-Min single-table layout ported to the
//     relational engine, no joins, no secondary indexes.
//
// Save traverses the DWARF breadth-first, top-down, with a visited lookup
// table so that multi-parent nodes (the product of suffix coalescing) are
// emitted exactly once (§4), and bulk-inserts the rows. Load reads the rows
// back, joins them on their ids and rebuilds an equivalent cube.
//
// Deviation from the paper's column lists: our cubes carry full aggregate
// state (sum/count/min/max), so every cell row has measure_count,
// measure_min and measure_max next to the paper's single measure column,
// and every schema/cube row stores the dimension-name list and the source
// tuple count. All four schemas carry the same extras, so the paper's
// cross-schema comparisons are unaffected.
package mapper

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/dwarf"
)

// SchemaID identifies one stored DWARF schema within a store.
type SchemaID int64

// SchemaInfo is the stored metadata of one DWARF schema — the paper's
// DWARF_Schema / DWARF_Cube row.
type SchemaInfo struct {
	ID          SchemaID
	NodeCount   int
	CellCount   int
	SizeAsMB    int64
	EntryNodeID int64
	IsCube      bool // built by querying another DWARF (paper's is_cube)
	Dimensions  []string
	SourceRows  int // fact tuples folded into the cube
}

// Store is a DWARF persistence backend (one of the four schema models).
type Store interface {
	// Name is the schema-model name as the paper's tables use it.
	Name() string
	// Save bulk-inserts the cube and returns its new schema id.
	Save(c *dwarf.Cube) (SchemaID, error)
	// Load rebuilds the cube identified by id.
	Load(id SchemaID) (*dwarf.Cube, error)
	// Schemas lists stored schema rows.
	Schemas() ([]SchemaInfo, error)
	// StoredBytes reports the store's on-disk footprint after flushing.
	StoredBytes() (int64, error)
	// Close releases the underlying engine.
	Close() error
}

// Mapper errors.
var (
	ErrNoSuchSchema = errors.New("mapper: no such schema id")
	ErrCorruptStore = errors.New("mapper: stored cube is inconsistent")
)

// Options tune a store.
type Options struct {
	// BatchSize is rows per bulk batch (NoSQL) or per multi-row INSERT
	// (MySQL). <= 0 selects 1000.
	BatchSize int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 1000
	}
	return o
}

// allKey is the stored key of ALL cells. The dwarf package reserves "*" for
// queries, so no data key collides with it.
const allKey = "*"

// enumeration assigns unique ids to distinct nodes and cells in the BFS
// top-down order of §4. It is the "lookup table which records each Node and
// Cell visited".
type enumeration struct {
	nodes   []*dwarf.Node
	nodeIDs map[*dwarf.Node]int64
	// cellIDs[i] holds the ids of nodes[i]'s cells; the ALL cell id is the
	// extra last element.
	cellIDs   [][]int64
	cellCount int
	// parentCells[nodeID] lists the cell ids pointing at that node.
	parentCells map[int64][]int64
}

func enumerate(c *dwarf.Cube) *enumeration {
	e := &enumeration{
		nodeIDs:     make(map[*dwarf.Node]int64),
		parentCells: make(map[int64][]int64),
	}
	c.Visit(func(n *dwarf.Node) bool {
		e.nodeIDs[n] = int64(len(e.nodes) + 1)
		e.nodes = append(e.nodes, n)
		return true
	})
	var nextCell int64
	e.cellIDs = make([][]int64, len(e.nodes))
	for i, n := range e.nodes {
		ids := make([]int64, len(n.Cells)+1)
		for j := range ids {
			nextCell++
			ids[j] = nextCell
		}
		e.cellIDs[i] = ids
		for j := range n.Cells {
			if child := n.Cells[j].Child; child != nil {
				e.parentCells[e.nodeIDs[child]] = append(e.parentCells[e.nodeIDs[child]], ids[j])
			}
		}
		if n.AllChild != nil {
			allID := ids[len(ids)-1]
			e.parentCells[e.nodeIDs[n.AllChild]] = append(e.parentCells[e.nodeIDs[n.AllChild]], allID)
		}
	}
	e.cellCount = int(nextCell)
	return e
}

// nodeID returns the id of a node pointer.
func (e *enumeration) nodeID(n *dwarf.Node) int64 {
	if n == nil {
		return 0
	}
	return e.nodeIDs[n]
}

// encodeDims serializes dimension names for the schema row.
func encodeDims(dims []string) string {
	b, _ := json.Marshal(dims)
	return string(b)
}

func decodeDims(s string) ([]string, error) {
	var dims []string
	if err := json.Unmarshal([]byte(s), &dims); err != nil {
		return nil, fmt.Errorf("%w: bad dimension list: %v", ErrCorruptStore, err)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: empty dimension list", ErrCorruptStore)
	}
	return dims, nil
}

// bytesToMB converts to the paper's integer size_as_mb convention
// (Table 4 prints "< 1" for sub-megabyte cubes).
func bytesToMB(n int64) int64 { return n / (1 << 20) }

// rebuiltNode is the shared load-side scaffolding: a node id plus its
// future cells, filled while scanning cell rows and wired afterwards.
type rebuiltNode struct {
	node *dwarf.Node
	root bool
}

// cellRow is a storage-agnostic decoded cell used by the rebuild helpers.
type cellRow struct {
	id          int64
	key         string
	agg         dwarf.Aggregate
	parentNode  int64
	pointerNode int64 // 0 = none
	leaf        bool
	isAll       bool
}

// rebuildFromCells wires nodes from decoded cell rows: every cell attaches
// to its parent node; ALL cells set AllChild/AllAgg. rootID names the entry
// node. The caller supplies node ids (from node rows or from the cells'
// parent ids when the store has no node table).
func rebuildFromCells(nodeIDs []int64, rootID int64, cells []cellRow, dims []string,
	numTuples int, fromQuery bool) (*dwarf.Cube, error) {

	nodes := make(map[int64]*dwarf.Node, len(nodeIDs))
	for _, id := range nodeIDs {
		nodes[id] = dwarf.NewNode(id)
	}
	root, ok := nodes[rootID]
	if !ok {
		return nil, fmt.Errorf("%w: entry node %d missing", ErrCorruptStore, rootID)
	}
	for _, c := range cells {
		parent, ok := nodes[c.parentNode]
		if !ok {
			return nil, fmt.Errorf("%w: cell %d references missing node %d", ErrCorruptStore, c.id, c.parentNode)
		}
		var child *dwarf.Node
		if c.pointerNode != 0 {
			child, ok = nodes[c.pointerNode]
			if !ok {
				return nil, fmt.Errorf("%w: cell %d points to missing node %d", ErrCorruptStore, c.id, c.pointerNode)
			}
		}
		if c.isAll {
			if c.leaf {
				parent.AllAgg = c.agg
			} else {
				parent.AllChild = child
			}
			continue
		}
		cell := dwarf.Cell{Key: c.key, Child: child}
		if c.leaf {
			cell.Agg = c.agg
		}
		parent.Cells = append(parent.Cells, cell)
	}
	return dwarf.FromParts(dims, root, numTuples, fromQuery)
}
