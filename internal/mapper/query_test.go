package mapper

import (
	"errors"
	"testing"

	"repro/internal/dwarf"
)

// TestPointOnStoreMatchesInMemory checks that every store's on-store walk
// answers exactly like the in-memory cube, for every base tuple and a
// wildcard battery, without loading the cube.
func TestPointOnStoreMatchesInMemory(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			st := openTestStore(t, kind)
			cube := randomCube(t, 17, 120)
			id, err := st.Save(cube)
			if err != nil {
				t.Fatal(err)
			}
			q, ok := st.(PointQuerier)
			if !ok {
				t.Fatalf("%s does not implement PointQuerier", kind)
			}
			checked := 0
			cube.Tuples(func(keys []string, agg dwarf.Aggregate) bool {
				got, err := q.PointOnStore(id, keys...)
				if err != nil {
					t.Fatalf("PointOnStore(%v): %v", keys, err)
				}
				if !got.Equal(agg) {
					t.Fatalf("PointOnStore(%v) = %v, want %v", keys, got, agg)
				}
				// Wildcard variant.
				probe := append([]string(nil), keys...)
				probe[0] = dwarf.All
				want, _ := cube.Point(probe...)
				got, err = q.PointOnStore(id, probe...)
				if err != nil || !got.Equal(want) {
					t.Fatalf("PointOnStore(%v) = %v, %v; want %v", probe, got, err, want)
				}
				checked++
				return checked < 40
			})

			// Grand total.
			allQ := make([]string, cube.NumDims())
			for i := range allQ {
				allQ[i] = dwarf.All
			}
			want, _ := cube.Point(allQ...)
			got, err := q.PointOnStore(id, allQ...)
			if err != nil || !got.Equal(want) {
				t.Errorf("ALL = %v, %v; want %v", got, err, want)
			}

			// Missing combination → zero aggregate.
			miss := make([]string, cube.NumDims())
			for i := range miss {
				miss[i] = "no-such-key"
			}
			got, err = q.PointOnStore(id, miss...)
			if err != nil || !got.IsZero() {
				t.Errorf("missing = %v, %v; want zero", got, err)
			}

			// Arity errors.
			if _, err := q.PointOnStore(id, "just-one"); err == nil {
				t.Error("short query accepted")
			}
			// Unknown schema.
			if _, err := q.PointOnStore(999); !errors.Is(err, ErrNoSuchSchema) {
				t.Errorf("unknown schema: %v", err)
			}
		})
	}
}

// TestPointOnStoreMultipleSchemas verifies id-space isolation between
// schemas in one store.
func TestPointOnStoreMultipleSchemas(t *testing.T) {
	st := openTestStore(t, KindNoSQLDwarf)
	q := st.(PointQuerier)
	c1 := paperCube(t)
	id1, err := st.Save(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := dwarf.New([]string{"Country", "City", "Station"}, []dwarf.Tuple{
		{Dims: []string{"Spain", "Madrid", "Sol"}, Measure: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Save(c2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.PointOnStore(id1, "Ireland", dwarf.All, dwarf.All)
	if err != nil || got.Sum != 10 {
		t.Errorf("schema 1: %v, %v", got, err)
	}
	got, err = q.PointOnStore(id2, "Spain", "Madrid", "Sol")
	if err != nil || got.Sum != 9 {
		t.Errorf("schema 2: %v, %v", got, err)
	}
	// Keys of one schema do not bleed into the other.
	got, err = q.PointOnStore(id2, "Ireland", dwarf.All, dwarf.All)
	if err != nil || !got.IsZero() {
		t.Errorf("cross-schema bleed: %v, %v", got, err)
	}
}
