package mapper

import (
	"fmt"
	"strings"

	"repro/internal/dwarf"
	"repro/internal/sqlengine"
)

// MySQLDwarfDDL is the Fig. 4 relational schema. A node's cell memberships
// and a cell's node pointer are rows in the NODE_CHILDREN / CELL_CHILDREN
// join tables because "this multi-inheritance like structure is hard to
// represent accurately in a traditional RDBMS"; the FK indexes are what a
// real MySQL would create to make the load-side joins feasible.
var MySQLDwarfDDL = []string{
	`CREATE TABLE IF NOT EXISTS dwarf_schema (
		id INT PRIMARY KEY, node_count INT, cell_count INT, size_as_mb INT,
		entry_node_id INT, is_cube BOOLEAN, dimensions TEXT, source_tuples INT)`,
	`CREATE TABLE IF NOT EXISTS dwarf_node (
		id INT PRIMARY KEY, root BOOLEAN, schema_id INT)`,
	`CREATE TABLE IF NOT EXISTS dwarf_cell (
		id INT PRIMARY KEY, cell_key TEXT, measure DOUBLE, measure_count INT,
		measure_min DOUBLE, measure_max DOUBLE, leaf BOOLEAN, schema_id INT,
		dimension_table_name TEXT)`,
	`CREATE TABLE IF NOT EXISTS node_children (
		id INT PRIMARY KEY, node_id INT, cell_id INT)`,
	`CREATE TABLE IF NOT EXISTS cell_children (
		id INT PRIMARY KEY, cell_id INT, node_id INT)`,
	`CREATE INDEX IF NOT EXISTS nc_node ON node_children (node_id)`,
	`CREATE INDEX IF NOT EXISTS cc_cell ON cell_children (cell_id)`,
}

// MySQLDwarf is the fully relational DWARF schema (Fig. 4).
type MySQLDwarf struct {
	db   *sqlengine.DB
	opts Options
}

// NewMySQLDwarf opens (or creates) a MySQL-DWARF store under dir.
func NewMySQLDwarf(dir string, opts Options, engine sqlengine.Options) (*MySQLDwarf, error) {
	db, err := sqlengine.Open(dir, engine)
	if err != nil {
		return nil, err
	}
	for _, ddl := range MySQLDwarfDDL {
		if _, err := db.Exec(ddl); err != nil {
			db.Close()
			return nil, err
		}
	}
	return &MySQLDwarf{db: db, opts: opts.withDefaults()}, nil
}

// Name implements Store.
func (s *MySQLDwarf) Name() string { return "MySQL-DWARF" }

// DB exposes the underlying engine.
func (s *MySQLDwarf) DB() *sqlengine.DB { return s.db }

// Close implements Store.
func (s *MySQLDwarf) Close() error { return s.db.Close() }

func (s *MySQLDwarf) nextSchemaID() (SchemaID, error) {
	rows, err := s.db.Query("SELECT max(id) FROM dwarf_schema")
	if err != nil {
		return 0, err
	}
	if rows.Data[0][0].IsNull() {
		return 1, nil
	}
	return SchemaID(rows.Data[0][0].Int + 1), nil
}

// bulkInserter accumulates rows and emits multi-row INSERT statements — the
// MySQL bulk-load path of the evaluation.
type bulkInserter struct {
	db    *sqlengine.DB
	table string
	cols  []string
	max   int
	args  []any
	rows  int
}

func (b *bulkInserter) add(vals ...any) error {
	b.args = append(b.args, vals...)
	b.rows++
	if b.rows >= b.max {
		return b.flush()
	}
	return nil
}

func (b *bulkInserter) flush() error {
	if b.rows == 0 {
		return nil
	}
	one := "(" + strings.TrimSuffix(strings.Repeat("?, ", len(b.cols)), ", ") + ")"
	stmt := fmt.Sprintf("INSERT INTO %s (%s) VALUES %s",
		b.table, strings.Join(b.cols, ", "),
		strings.TrimSuffix(strings.Repeat(one+", ", b.rows), ", "))
	_, err := b.db.Exec(stmt, b.args...)
	b.args = b.args[:0]
	b.rows = 0
	return err
}

// Save implements Store: BFS emission; one row per node and cell, one join
// row per node→cell membership and per cell→node pointer.
func (s *MySQLDwarf) Save(c *dwarf.Cube) (SchemaID, error) {
	sid, err := s.nextSchemaID()
	if err != nil {
		return 0, err
	}
	base := int64(sid) * idStride
	e := enumerate(c)
	dims := c.Dims()

	if _, err := s.db.Exec("BEGIN"); err != nil {
		return 0, err
	}
	if _, err := s.db.Exec(`INSERT INTO dwarf_schema (id, node_count, cell_count,
		size_as_mb, entry_node_id, is_cube, dimensions, source_tuples)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
		int64(sid), len(e.nodes), e.cellCount, 0, base+1, c.FromQuery,
		encodeDims(dims), c.NumSourceTuples()); err != nil {
		return 0, err
	}

	nodeIns := &bulkInserter{db: s.db, table: "dwarf_node",
		cols: []string{"id", "root", "schema_id"}, max: s.opts.BatchSize}
	cellIns := &bulkInserter{db: s.db, table: "dwarf_cell",
		cols: []string{"id", "cell_key", "measure", "measure_count", "measure_min",
			"measure_max", "leaf", "schema_id", "dimension_table_name"},
		max: s.opts.BatchSize}
	ncIns := &bulkInserter{db: s.db, table: "node_children",
		cols: []string{"id", "node_id", "cell_id"}, max: s.opts.BatchSize}
	ccIns := &bulkInserter{db: s.db, table: "cell_children",
		cols: []string{"id", "cell_id", "node_id"}, max: s.opts.BatchSize}

	var ncSeq, ccSeq int64
	for i, n := range e.nodes {
		nodeID := base + e.nodeIDs[n]
		ids := e.cellIDs[i]
		if err := nodeIns.add(nodeID, i == 0, int64(sid)); err != nil {
			return 0, err
		}
		dimName := ""
		if n.Level < len(dims) {
			dimName = dims[n.Level]
		}
		emit := func(cellID int64, key string, agg dwarf.Aggregate, pointer int64) error {
			var m, mn, mx any
			var mc any
			if n.Leaf {
				m, mc, mn, mx = agg.Sum, agg.Count, agg.Min, agg.Max
			}
			if err := cellIns.add(cellID, key, m, mc, mn, mx, n.Leaf, int64(sid), dimName); err != nil {
				return err
			}
			ncSeq++
			if err := ncIns.add(base+ncSeq, nodeID, cellID); err != nil {
				return err
			}
			if pointer != 0 {
				ccSeq++
				if err := ccIns.add(base+ccSeq, cellID, pointer); err != nil {
					return err
				}
			}
			return nil
		}
		for j := range n.Cells {
			cell := &n.Cells[j]
			var pointer int64
			if cell.Child != nil {
				pointer = base + e.nodeID(cell.Child)
			}
			if err := emit(base+ids[j], cell.Key, cell.Agg, pointer); err != nil {
				return 0, err
			}
		}
		var allPointer int64
		if n.AllChild != nil {
			allPointer = base + e.nodeID(n.AllChild)
		}
		if err := emit(base+ids[len(ids)-1], allKey, n.AllAgg, allPointer); err != nil {
			return 0, err
		}
	}
	for _, ins := range []*bulkInserter{nodeIns, cellIns, ncIns, ccIns} {
		if err := ins.flush(); err != nil {
			return 0, err
		}
	}
	if _, err := s.db.Exec("COMMIT"); err != nil {
		return 0, err
	}

	if err := s.db.Checkpoint(); err != nil {
		return 0, err
	}
	size, err := s.db.TotalDiskSize()
	if err != nil {
		return 0, err
	}
	if _, err := s.db.Exec("UPDATE dwarf_schema SET size_as_mb = ? WHERE id = ?",
		bytesToMB(size), int64(sid)); err != nil {
		return 0, err
	}
	return sid, nil
}

// Load implements Store: filter each table to the schema's id range and
// join node_children / cell_children back onto nodes and cells.
func (s *MySQLDwarf) Load(id SchemaID) (*dwarf.Cube, error) {
	info, err := s.schemaInfo(id)
	if err != nil {
		return nil, err
	}
	var nodeIDs []int64
	rootID := info.EntryNodeID
	rows, err := s.db.Query("SELECT id, root FROM dwarf_node WHERE schema_id = ?", int64(id))
	if err != nil {
		return nil, err
	}
	for _, r := range rows.Data {
		nodeIDs = append(nodeIDs, r[0].Int)
		if r[1].Bool {
			rootID = r[0].Int
		}
	}

	type cellRec struct {
		key  string
		agg  dwarf.Aggregate
		leaf bool
	}
	cellsByID := map[int64]cellRec{}
	rows, err = s.db.Query(`SELECT id, cell_key, measure, measure_count, measure_min,
		measure_max, leaf FROM dwarf_cell WHERE schema_id = ?`, int64(id))
	if err != nil {
		return nil, err
	}
	for _, r := range rows.Data {
		cellsByID[r[0].Int] = cellRec{
			key:  r[1].Text,
			agg:  dwarf.Aggregate{Sum: r[2].Float, Count: r[3].Int, Min: r[4].Float, Max: r[5].Float},
			leaf: r[6].Bool,
		}
	}

	lo, hi := int64(id)*idStride, (int64(id)+1)*idStride
	parentOf := map[int64]int64{} // cell id → node id
	rows, err = s.db.Query("SELECT node_id, cell_id FROM node_children WHERE id >= ? AND id < ?", lo, hi)
	if err != nil {
		return nil, err
	}
	for _, r := range rows.Data {
		parentOf[r[1].Int] = r[0].Int
	}
	pointerOf := map[int64]int64{} // cell id → node id
	rows, err = s.db.Query("SELECT cell_id, node_id FROM cell_children WHERE id >= ? AND id < ?", lo, hi)
	if err != nil {
		return nil, err
	}
	for _, r := range rows.Data {
		pointerOf[r[0].Int] = r[1].Int
	}

	cells := make([]cellRow, 0, len(cellsByID))
	for cid, rec := range cellsByID {
		parent, ok := parentOf[cid]
		if !ok {
			return nil, fmt.Errorf("%w: cell %d has no NODE_CHILDREN row", ErrCorruptStore, cid)
		}
		cells = append(cells, cellRow{
			id:          cid,
			key:         rec.key,
			agg:         rec.agg,
			parentNode:  parent,
			pointerNode: pointerOf[cid],
			leaf:        rec.leaf,
			isAll:       rec.key == allKey,
		})
	}
	return rebuildFromCells(nodeIDs, rootID, cells, info.Dimensions, info.SourceRows, info.IsCube)
}

// CellsOfNode exercises the executor's join path on the Fig. 4 schema: the
// key cells contained in one node, via NODE_CHILDREN ⋈ DWARF_CELL.
func (s *MySQLDwarf) CellsOfNode(nodeID int64) (*sqlengine.Rows, error) {
	return s.db.Query(`SELECT c.id, c.cell_key, c.measure FROM node_children nc
		JOIN dwarf_cell c ON nc.cell_id = c.id WHERE nc.node_id = ?`, nodeID)
}

func (s *MySQLDwarf) schemaInfo(id SchemaID) (SchemaInfo, error) {
	rows, err := s.db.Query("SELECT node_count, cell_count, size_as_mb, entry_node_id, "+
		"is_cube, dimensions, source_tuples FROM dwarf_schema WHERE id = ?", int64(id))
	if err != nil {
		return SchemaInfo{}, err
	}
	if len(rows.Data) == 0 {
		return SchemaInfo{}, fmt.Errorf("%w: %d", ErrNoSuchSchema, id)
	}
	r := rows.Data[0]
	dims, err := decodeDims(r[5].Text)
	if err != nil {
		return SchemaInfo{}, err
	}
	return SchemaInfo{
		ID:          id,
		NodeCount:   int(r[0].Int),
		CellCount:   int(r[1].Int),
		SizeAsMB:    r[2].Int,
		EntryNodeID: r[3].Int,
		IsCube:      r[4].Bool,
		Dimensions:  dims,
		SourceRows:  int(r[6].Int),
	}, nil
}

// Schemas implements Store.
func (s *MySQLDwarf) Schemas() ([]SchemaInfo, error) {
	rows, err := s.db.Query("SELECT id FROM dwarf_schema")
	if err != nil {
		return nil, err
	}
	out := make([]SchemaInfo, 0, len(rows.Data))
	for _, r := range rows.Data {
		info, err := s.schemaInfo(SchemaID(r[0].Int))
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}

// StoredBytes implements Store.
func (s *MySQLDwarf) StoredBytes() (int64, error) {
	if err := s.db.Checkpoint(); err != nil {
		return 0, err
	}
	return s.db.TotalDiskSize()
}
