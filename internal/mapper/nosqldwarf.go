package mapper

import (
	"fmt"
	"strings"

	"repro/internal/dwarf"
	"repro/internal/nosql"
)

// idStride separates the id spaces of schemas sharing one store: global id =
// schema id * idStride + local id.
const idStride = int64(1) << 40

// NoSQLDwarfDDL is the Table 1 schema (with the documented aggregate and
// dimension extras) as executable CQL.
var NoSQLDwarfDDL = []string{
	`CREATE KEYSPACE IF NOT EXISTS dwarf`,
	`CREATE TABLE IF NOT EXISTS dwarf.dwarf_schema (
		id int PRIMARY KEY,
		node_count int,
		cell_count int,
		size_as_mb int,
		entry_node_id int,
		is_cube boolean,
		dimensions text,
		source_tuples int)`,
	`CREATE TABLE IF NOT EXISTS dwarf.dwarf_node (
		id int PRIMARY KEY,
		parent_ids set<int>,
		children_ids set<int>,
		root boolean,
		schema_id int)`,
	`CREATE TABLE IF NOT EXISTS dwarf.dwarf_cell (
		id int PRIMARY KEY,
		key text,
		measure double,
		measure_count int,
		measure_min double,
		measure_max double,
		parent_node int,
		pointer_node int,
		leaf boolean,
		schema_id int,
		dimension_table_name text)`,
}

// NoSQLDwarf is the paper's primary schema model: the full DWARF structure
// in three column families with primary indexes only (Table 1).
type NoSQLDwarf struct {
	db   *nosql.DB
	opts Options
}

// NewNoSQLDwarf opens (or creates) a NoSQL-DWARF store under dir.
func NewNoSQLDwarf(dir string, opts Options, engine nosql.Options) (*NoSQLDwarf, error) {
	db, err := nosql.Open(dir, engine)
	if err != nil {
		return nil, err
	}
	s := &NoSQLDwarf{db: db, opts: opts.withDefaults()}
	sess := nosql.NewSession(db)
	for _, ddl := range NoSQLDwarfDDL {
		if _, err := sess.Execute(ddl); err != nil {
			db.Close()
			return nil, err
		}
	}
	return s, nil
}

// Name implements Store.
func (s *NoSQLDwarf) Name() string { return "NoSQL-DWARF" }

// DB exposes the underlying engine (examples, tests).
func (s *NoSQLDwarf) DB() *nosql.DB { return s.db }

// Close implements Store.
func (s *NoSQLDwarf) Close() error { return s.db.Close() }

// nextSchemaID scans the schema table for the next free id — the paper's
// "querying the DWARF_Schema column family to determine the next id".
func (s *NoSQLDwarf) nextSchemaID() (SchemaID, error) {
	var maxID int64
	err := s.db.Scan("dwarf", "dwarf_schema", func(r nosql.Row) bool {
		if id := r.Get("id").Int; id > maxID {
			maxID = id
		}
		return true
	})
	return SchemaID(maxID + 1), err
}

// CellInsertCQL renders the CQL INSERT for one cell row — the Fig. 3
// transformation. The bulk path batches the same values through the engine
// API instead of parsing one statement per cell.
func CellInsertCQL(id int64, key string, agg dwarf.Aggregate, parentNode, pointerNode int64,
	leaf bool, schemaID SchemaID, dimName string) string {

	pointer := "null"
	if pointerNode != 0 {
		pointer = fmt.Sprint(pointerNode)
	}
	return fmt.Sprintf("INSERT INTO dwarf.dwarf_cell (id, key, measure, measure_count, "+
		"measure_min, measure_max, parent_node, pointer_node, leaf, schema_id, "+
		"dimension_table_name) VALUES (%d, '%s', %g, %d, %g, %g, %d, %s, %t, %d, '%s');",
		id, strings.ReplaceAll(key, "'", "''"), agg.Sum, agg.Count, agg.Min, agg.Max,
		parentNode, pointer, leaf, int64(schemaID), strings.ReplaceAll(dimName, "'", "''"))
}

// Save implements Store: BFS emission with the §4 visited table, batched
// inserts, then the size_as_mb update.
func (s *NoSQLDwarf) Save(c *dwarf.Cube) (SchemaID, error) {
	sid, err := s.nextSchemaID()
	if err != nil {
		return 0, err
	}
	base := int64(sid) * idStride
	e := enumerate(c)
	dims := c.Dims()

	sess := nosql.NewSession(s.db)
	_, err = sess.Execute(`INSERT INTO dwarf.dwarf_schema (id, node_count, cell_count,
		size_as_mb, entry_node_id, is_cube, dimensions, source_tuples)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
		int64(sid), int64(len(e.nodes)), int64(e.cellCount), int64(0),
		base+1, c.FromQuery, encodeDims(dims), c.NumSourceTuples())
	if err != nil {
		return 0, err
	}

	batch := nosql.NewBatch()
	flush := func(force bool) error {
		if batch.Len() == 0 || (!force && batch.Len() < s.opts.BatchSize) {
			return nil
		}
		if err := s.db.ApplyBatch(batch); err != nil {
			return err
		}
		batch.Reset()
		return nil
	}

	for i, n := range e.nodes {
		nodeID := base + e.nodeIDs[n]
		ids := e.cellIDs[i]
		children := make([]int64, len(ids))
		for j, cid := range ids {
			children[j] = base + cid
		}
		parents := make([]int64, 0, len(e.parentCells[e.nodeIDs[n]]))
		for _, pid := range e.parentCells[e.nodeIDs[n]] {
			parents = append(parents, base+pid)
		}
		batch.Insert("dwarf", "dwarf_node", nosql.Row{
			"id":           nosql.Int(nodeID),
			"parent_ids":   nosql.IntSet(parents...),
			"children_ids": nosql.IntSet(children...),
			"root":         nosql.Bool(i == 0),
			"schema_id":    nosql.Int(int64(sid)),
		})
		if err := flush(false); err != nil {
			return 0, err
		}
		dimName := ""
		if n.Level < len(dims) {
			dimName = dims[n.Level]
		}
		emitCell := func(cellID int64, key string, agg dwarf.Aggregate, pointer int64) {
			row := nosql.Row{
				"id":                   nosql.Int(cellID),
				"key":                  nosql.Text(key),
				"parent_node":          nosql.Int(nodeID),
				"leaf":                 nosql.Bool(n.Leaf),
				"schema_id":            nosql.Int(int64(sid)),
				"dimension_table_name": nosql.Text(dimName),
			}
			if n.Leaf {
				row["measure"] = nosql.Float(agg.Sum)
				row["measure_count"] = nosql.Int(agg.Count)
				row["measure_min"] = nosql.Float(agg.Min)
				row["measure_max"] = nosql.Float(agg.Max)
			} else if pointer != 0 {
				row["pointer_node"] = nosql.Int(pointer)
			}
			batch.Insert("dwarf", "dwarf_cell", row)
		}
		for j := range n.Cells {
			cell := &n.Cells[j]
			var pointer int64
			if cell.Child != nil {
				pointer = base + e.nodeID(cell.Child)
			}
			emitCell(base+ids[j], cell.Key, cell.Agg, pointer)
			if err := flush(false); err != nil {
				return 0, err
			}
		}
		var allPointer int64
		if n.AllChild != nil {
			allPointer = base + e.nodeID(n.AllChild)
		}
		emitCell(base+ids[len(ids)-1], allKey, n.AllAgg, allPointer)
		if err := flush(false); err != nil {
			return 0, err
		}
	}
	if err := flush(true); err != nil {
		return 0, err
	}

	// Persist everything, then record the measured size (paper §4).
	if err := s.db.FlushAll(); err != nil {
		return 0, err
	}
	size, err := s.db.KeyspaceDiskSize("dwarf")
	if err != nil {
		return 0, err
	}
	if _, err := sess.Execute("UPDATE dwarf.dwarf_schema SET size_as_mb = ? WHERE id = ?",
		bytesToMB(size), int64(sid)); err != nil {
		return 0, err
	}
	return sid, nil
}

// Load implements Store: read the schema row, scan nodes and cells of this
// schema, join on ids and rebuild the cube.
func (s *NoSQLDwarf) Load(id SchemaID) (*dwarf.Cube, error) {
	info, row, err := s.schemaRow(id)
	if err != nil {
		return nil, err
	}
	_ = row
	// Ids of this schema live in [id*stride, (id+1)*stride): a key-range
	// scan touches only this schema's rows.
	lo, hi := nosql.Int(int64(id)*idStride), nosql.Int((int64(id)+1)*idStride)
	var nodeIDs []int64
	rootID := info.EntryNodeID
	err = s.db.ScanRange("dwarf", "dwarf_node", lo, hi, func(r nosql.Row) bool {
		nodeIDs = append(nodeIDs, r.Get("id").Int)
		if r.Get("root").Bool {
			rootID = r.Get("id").Int
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var cells []cellRow
	err = s.db.ScanRange("dwarf", "dwarf_cell", lo, hi, func(r nosql.Row) bool {
		cells = append(cells, cellRow{
			id:  r.Get("id").Int,
			key: r.Get("key").Text,
			agg: dwarf.Aggregate{
				Sum:   r.Get("measure").Float,
				Count: r.Get("measure_count").Int,
				Min:   r.Get("measure_min").Float,
				Max:   r.Get("measure_max").Float,
			},
			parentNode:  r.Get("parent_node").Int,
			pointerNode: r.Get("pointer_node").Int,
			leaf:        r.Get("leaf").Bool,
			isAll:       r.Get("key").Text == allKey,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return rebuildFromCells(nodeIDs, rootID, cells, info.Dimensions, info.SourceRows, info.IsCube)
}

func (s *NoSQLDwarf) schemaRow(id SchemaID) (SchemaInfo, nosql.Row, error) {
	row, ok, err := s.db.Get("dwarf", "dwarf_schema", nosql.Int(int64(id)))
	if err != nil {
		return SchemaInfo{}, nil, err
	}
	if !ok {
		return SchemaInfo{}, nil, fmt.Errorf("%w: %d", ErrNoSuchSchema, id)
	}
	dims, err := decodeDims(row.Get("dimensions").Text)
	if err != nil {
		return SchemaInfo{}, nil, err
	}
	return SchemaInfo{
		ID:          id,
		NodeCount:   int(row.Get("node_count").Int),
		CellCount:   int(row.Get("cell_count").Int),
		SizeAsMB:    row.Get("size_as_mb").Int,
		EntryNodeID: row.Get("entry_node_id").Int,
		IsCube:      row.Get("is_cube").Bool,
		Dimensions:  dims,
		SourceRows:  int(row.Get("source_tuples").Int),
	}, row, nil
}

// Schemas implements Store.
func (s *NoSQLDwarf) Schemas() ([]SchemaInfo, error) {
	var out []SchemaInfo
	var derr error
	err := s.db.Scan("dwarf", "dwarf_schema", func(r nosql.Row) bool {
		dims, err := decodeDims(r.Get("dimensions").Text)
		if err != nil {
			derr = err
			return false
		}
		out = append(out, SchemaInfo{
			ID:          SchemaID(r.Get("id").Int),
			NodeCount:   int(r.Get("node_count").Int),
			CellCount:   int(r.Get("cell_count").Int),
			SizeAsMB:    r.Get("size_as_mb").Int,
			EntryNodeID: r.Get("entry_node_id").Int,
			IsCube:      r.Get("is_cube").Bool,
			Dimensions:  dims,
			SourceRows:  int(r.Get("source_tuples").Int),
		})
		return true
	})
	if derr != nil {
		return nil, derr
	}
	return out, err
}

// StoredBytes implements Store.
func (s *NoSQLDwarf) StoredBytes() (int64, error) {
	if err := s.db.FlushAll(); err != nil {
		return 0, err
	}
	return s.db.KeyspaceDiskSize("dwarf")
}
