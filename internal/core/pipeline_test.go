package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/jsonstream"
	"repro/internal/mapper"
	"repro/internal/smartcity"
	"repro/internal/xmlstream"
)

func TestPipelineXMLToStore(t *testing.T) {
	store, err := mapper.OpenStore(mapper.KindNoSQLDwarf, t.TempDir(), mapper.Options{}, mapper.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	p := &Pipeline{Store: store}

	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 1}).Take(300)
	var doc bytes.Buffer
	if err := smartcity.WriteBikesXML(&doc, recs); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunXML(&doc, xmlstream.BikeFeedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stored || res.Tuples != 300 {
		t.Fatalf("res = %+v", res)
	}
	loaded, err := store.Load(res.SchemaID)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSourceTuples() != 300 {
		t.Errorf("loaded tuples = %d", loaded.NumSourceTuples())
	}
}

func TestPipelineJSONWithoutStore(t *testing.T) {
	p := &Pipeline{}
	recs := smartcity.NewAirQualityFeed(2, 3).Take(60)
	var doc bytes.Buffer
	if err := smartcity.WriteAirQualityJSON(&doc, recs); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunJSON(&doc, jsonstream.AirQualityFeedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored || res.Cube == nil {
		t.Fatalf("res = %+v", res)
	}
}

func TestPipelineEmptyFeed(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.RunTuples([]string{"a"}, nil); !errors.Is(err, ErrNoTuples) {
		t.Errorf("empty: %v", err)
	}
}

func TestPipelineUpdate(t *testing.T) {
	store, err := mapper.OpenStore(mapper.KindMySQLMin, t.TempDir(), mapper.Options{}, mapper.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	p := &Pipeline{Store: store}
	base, err := p.RunTuples([]string{"d"}, []dwarf.Tuple{{Dims: []string{"x"}, Measure: 1}})
	if err != nil {
		t.Fatal(err)
	}
	updated, err := p.Update(base.Cube, []dwarf.Tuple{{Dims: []string{"y"}, Measure: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if updated.Tuples != 2 || updated.SchemaID == base.SchemaID {
		t.Fatalf("updated = %+v (base id %d)", updated, base.SchemaID)
	}
	agg, _ := updated.Cube.Point(dwarf.All)
	if agg.Sum != 3 {
		t.Errorf("merged sum = %g", agg.Sum)
	}
	if _, err := p.Update(base.Cube, nil); !errors.Is(err, ErrNoTuples) {
		t.Errorf("empty update: %v", err)
	}
}

func TestPipelineParallelWorkers(t *testing.T) {
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 3}).Take(500)
	tuples := make([]dwarf.Tuple, len(recs))
	for i, r := range recs {
		tuples[i] = r.Tuple()
	}
	serial := &Pipeline{}
	parallel := &Pipeline{Workers: 4}
	sres, err := serial.RunTuples(smartcity.BikeDims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := parallel.RunTuples(smartcity.BikeDims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	ss, ps := sres.Cube.Stats(), pres.Cube.Stats()
	if ss != ps {
		t.Fatalf("parallel pipeline cube diverged: %+v vs %+v", ss, ps)
	}

	// Update threads the worker count into the delta build.
	extra := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 4}).Take(200)
	more := make([]dwarf.Tuple, len(extra))
	for i, r := range extra {
		more[i] = r.Tuple()
	}
	sup, err := serial.Update(sres.Cube, more)
	if err != nil {
		t.Fatal(err)
	}
	pup, err := parallel.Update(pres.Cube, more)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := sup.Cube.Point(dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All)
	pa, _ := pup.Cube.Point(dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All)
	if !sa.Equal(pa) {
		t.Errorf("updated ALL: serial=%v parallel=%v", sa, pa)
	}
}
