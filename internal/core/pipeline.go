package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/dwarf"
	"repro/internal/jsonstream"
	"repro/internal/mapper"
	"repro/internal/xmlstream"
)

// Pipeline wires the paper's end-to-end flow: a web-produced feed document
// (XML or JSON) is parsed into fact tuples, a DWARF cube is constructed,
// and the cube is persisted through a schema-model store for later
// retrieval and querying.
type Pipeline struct {
	// Store receives the constructed cubes. Optional: with no store the
	// pipeline stops at the in-memory cube.
	Store mapper.Store
	// Options tune cube construction (suffix-coalescing ablations).
	Options []dwarf.Option
	// Workers selects the sharded parallel cube build when > 1: the fact
	// stream is partitioned by first-dimension key ranges and one builder
	// goroutine runs per shard. 0 and 1 build serially. The resulting cube
	// is structurally identical either way.
	Workers int
}

// buildOptions is the pipeline's construction option list: the configured
// Options plus the worker count.
func (p *Pipeline) buildOptions() []dwarf.Option {
	if p.Workers <= 1 {
		return p.Options
	}
	return append(append([]dwarf.Option(nil), p.Options...), dwarf.WithWorkers(p.Workers))
}

// Result is the outcome of one pipeline run.
type Result struct {
	Cube     *dwarf.Cube
	SchemaID mapper.SchemaID
	Stored   bool
	Tuples   int
}

// ErrNoTuples reports an input document with no records.
var ErrNoTuples = errors.New("core: feed produced no tuples")

// RunXML ingests one XML feed document.
func (p *Pipeline) RunXML(r io.Reader, spec xmlstream.Spec) (*Result, error) {
	tuples, err := xmlstream.Parse(r, spec)
	if err != nil {
		return nil, err
	}
	return p.RunTuples(spec.DimNames(), tuples)
}

// RunJSON ingests one JSON feed document.
func (p *Pipeline) RunJSON(r io.Reader, spec jsonstream.Spec) (*Result, error) {
	tuples, err := jsonstream.Parse(r, spec)
	if err != nil {
		return nil, err
	}
	return p.RunTuples(spec.DimNames(), tuples)
}

// RunTuples constructs and (when a store is configured) persists a cube
// from already-extracted facts.
func (p *Pipeline) RunTuples(dims []string, tuples []dwarf.Tuple) (*Result, error) {
	if len(tuples) == 0 {
		return nil, ErrNoTuples
	}
	cube, err := dwarf.New(dims, tuples, p.buildOptions()...)
	if err != nil {
		return nil, err
	}
	res := &Result{Cube: cube, Tuples: len(tuples)}
	if p.Store != nil {
		id, err := p.Store.Save(cube)
		if err != nil {
			return nil, fmt.Errorf("core: persist: %w", err)
		}
		res.SchemaID = id
		res.Stored = true
	}
	return res, nil
}

// Update folds a fresh feed batch into an existing cube and re-persists the
// merged cube — the incremental-maintenance loop of the paper's §7.
func (p *Pipeline) Update(base *dwarf.Cube, tuples []dwarf.Tuple) (*Result, error) {
	if len(tuples) == 0 {
		return nil, ErrNoTuples
	}
	// Always override the worker count: the delta must follow this
	// pipeline's setting, not whatever the base cube was built with
	// (Workers <= 1 means a serial delta even under a parallel-built base).
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	merged, err := base.Append(tuples, dwarf.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	res := &Result{Cube: merged, Tuples: merged.NumSourceTuples()}
	if p.Store != nil {
		id, err := p.Store.Save(merged)
		if err != nil {
			return nil, fmt.Errorf("core: persist: %w", err)
		}
		res.SchemaID = id
		res.Stored = true
	}
	return res, nil
}
