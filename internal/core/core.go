// Package core ties the paper's pipeline together: a smart-city feed
// (XML/JSON) is ingested into fact tuples, a DWARF cube is constructed from
// them (internal/dwarf), and the cube is persisted through one of the four
// storage schema mappers (internal/mapper). See Pipeline.
package core
