// Package cluster scatter-gathers the cube query surface across N dwarfd
// nodes, each running its own cubestore over a hash-partitioned slice of
// the tuple stream.
//
// The coordinator answers every query shape by fanning the query out to
// every node's /query/partial endpoint (serve.Options.ClusterNode) and
// merging the per-node partials exactly as the store merges its own
// per-segment partials today:
//
//   - Point/Range: per-node aggregates merged with dwarf.MergeAggregates,
//     folded in node-index order (deterministic).
//   - GroupBy/Pivot: per-node maps/rows merged with dwarf.MergeGroupMaps /
//     dwarf.MergePivotGroups — the same helpers the store's fan-out uses.
//   - TopK: every node returns its FULL group map; the coordinator merges
//     the maps first and only then applies the threshold and the K cut
//     (dwarf.TopKFromGroups). Cutting per node would misrank keys whose
//     tuples hash-split across nodes, so no per-node cut exists on the
//     wire at all.
//   - RollUp: query.RollUp over the coordinator (it is a query.Querier),
//     which lowers to Pivot.
//
// Failure semantics are strict by construction: a node that cannot be
// reached within the per-node timeout and bounded retries fails the whole
// query with an error naming the node — never a silently short merged
// total. Callers that prefer availability opt in per request (the
// gateway's allow_partial), and the answer is then explicitly marked with
// the nodes it is missing.
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dwarf"
	"repro/internal/query"
)

// Defaults for Options.
const (
	DefaultTimeout = 5 * time.Second
	DefaultRetries = 2
	DefaultBackoff = 50 * time.Millisecond
)

// Options configures a Coordinator.
type Options struct {
	// Nodes are the dwarfd node base URLs (e.g. http://10.0.0.1:8080), in
	// partition order. The order IS the partition map: tuples hash to
	// len(Nodes) buckets by index, so growing or reordering the list
	// re-homes data. At least one node is required.
	Nodes []string
	// Dims is the cluster's dimension list; every node's store must have
	// exactly these dimensions (validated lazily per query by the nodes).
	Dims []string
	// LiveName is the cube name queried on every node ("live" when empty).
	LiveName string
	// Timeout bounds each HTTP attempt to one node (DefaultTimeout when 0).
	Timeout time.Duration
	// Retries is how many times a failed query attempt is retried per node
	// beyond the first, with doubling backoff (DefaultRetries when 0; -1
	// disables retries). Ingest is never retried: appends are not
	// idempotent, and a retry after an ambiguous failure could double-count
	// a batch the node actually acknowledged.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (DefaultBackoff when 0).
	Backoff time.Duration
	// Client is the HTTP client used for every node call. Defaults to a
	// dedicated client; Timeout is applied per request regardless.
	Client *http.Client
}

// Coordinator fans queries out over the nodes and merges partials. It
// implements query.Querier, so every shape — including RollUp/DrillDown —
// runs over a cluster exactly as over one store.
type Coordinator struct {
	dims []string
	live string

	mu    sync.RWMutex
	nodes []*node
}

// New builds a Coordinator over opts.Nodes.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if len(opts.Dims) == 0 {
		return nil, fmt.Errorf("cluster: no dimensions configured")
	}
	live := opts.LiveName
	if live == "" {
		live = "live"
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	retries := opts.Retries
	if retries == 0 {
		retries = DefaultRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff := opts.Backoff
	if backoff == 0 {
		backoff = DefaultBackoff
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{dims: append([]string(nil), opts.Dims...), live: live}
	for _, u := range opts.Nodes {
		c.nodes = append(c.nodes, &node{
			base: strings.TrimRight(u, "/"), client: client,
			timeout: timeout, retries: retries, backoff: backoff,
		})
	}
	return c, nil
}

// NumNodes returns the cluster size (the number of hash partitions).
func (c *Coordinator) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// SetNode repoints partition i at a new base URL — the operational hook
// for replacing a dead node with its restarted or recovered successor.
// The partition count never changes; the new node must hold partition i's
// data (e.g. the same store directory recovered via its WAL).
func (c *Coordinator) SetNode(i int, baseURL string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: node index %d out of range [0,%d)", i, len(c.nodes))
	}
	old := c.nodes[i]
	c.nodes[i] = &node{
		base: strings.TrimRight(baseURL, "/"), client: old.client,
		timeout: old.timeout, retries: old.retries, backoff: old.backoff,
	}
	return nil
}

func (c *Coordinator) snapshot() []*node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*node(nil), c.nodes...)
}

// NodeError is one node's failure inside a scatter.
type NodeError struct {
	Node string // base URL
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("node %s: %v", e.Node, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// scatterError is the strict-mode query failure: every failed node, named.
type scatterError struct {
	total  int
	failed []*NodeError
}

func (e *scatterError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d/%d nodes failed:", len(e.failed), e.total)
	for _, f := range e.failed {
		b.WriteString(" [")
		b.WriteString(f.Error())
		b.WriteString("]")
	}
	return b.String()
}

// scatter runs fn against every node concurrently and returns the per-node
// results in node order plus every failure. Callers enforce the failure
// policy: strict methods reject any failure, the gateway's allow_partial
// path merges the survivors and reports the failed nodes explicitly.
func scatter[T any](nodes []*node, fn func(n *node) (T, error)) ([]T, []*NodeError) {
	parts := make([]T, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			parts[i], errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	var failed []*NodeError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &NodeError{Node: nodes[i].base, Err: err})
		}
	}
	return parts, failed
}

func strictErr(total int, failed []*NodeError) error {
	if len(failed) == 0 {
		return nil
	}
	return &scatterError{total: total, failed: failed}
}

// Dims returns the cluster's dimension names in order.
func (c *Coordinator) Dims() []string { return append([]string(nil), c.dims...) }

// NumDims returns the number of dimensions.
func (c *Coordinator) NumDims() int { return len(c.dims) }

// The coordinator validates query arguments up front with the kernel's own
// rules and error shapes (wrapping dwarf.ErrBadQuery), so it is a drop-in
// query.Querier: an invalid query fails identically against a cluster and
// a single store, without a network round trip.

func (c *Coordinator) checkSels(sels []dwarf.Selector) error {
	if len(sels) != len(c.dims) {
		return fmt.Errorf("%w: got %d selectors, cube has %d dimensions", dwarf.ErrBadQuery, len(sels), len(c.dims))
	}
	return nil
}

func (c *Coordinator) checkDim(dim int) error {
	if dim < 0 || dim >= len(c.dims) {
		return fmt.Errorf("%w: group-by dimension %d out of range", dwarf.ErrBadQuery, dim)
	}
	return nil
}

// Point answers a point/ALL-wildcard query across the cluster: per-node
// point partials merged in node order.
func (c *Coordinator) Point(keys ...string) (dwarf.Aggregate, error) {
	if len(keys) != len(c.dims) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d keys, cube has %d dimensions", dwarf.ErrBadQuery, len(keys), len(c.dims))
	}
	agg, _, err := c.point(c.snapshot(), keys)
	return agg, err
}

func (c *Coordinator) point(nodes []*node, keys []string) (dwarf.Aggregate, []*NodeError, error) {
	if i, ok := c.pointOwner(nodes, keys); ok {
		nodes = nodes[i : i+1]
	}
	parts, failed := scatter(nodes, func(n *node) (dwarf.Aggregate, error) {
		return n.partialAgg(partialReq{Shape: "point", Cube: c.live, Keys: keys})
	})
	if err := strictErr(len(nodes), failed); err != nil {
		return dwarf.Aggregate{}, failed, err
	}
	return mergeAggs(parts), failed, nil
}

// pointOwner reports the single node that can hold a fully bound point
// tuple. Append hash-routes each tuple by its full key tuple (NodeFor), so
// a point query binding every dimension matches tuples living on exactly
// one partition; every other node would contribute the zero aggregate, and
// merging zeros is the identity — asking one node is bit-identical to the
// full scatter. Routing applies only when nodes is the full partition map:
// an ALL wildcard aggregates across partitions, and a survivor subset (the
// gateway's allow_partial re-run) no longer indexes like the partition map,
// so both fall back to the scatter.
func (c *Coordinator) pointOwner(nodes []*node, keys []string) (int, bool) {
	if len(nodes) != c.NumNodes() || len(keys) != len(c.dims) {
		return 0, false
	}
	for _, k := range keys {
		if k == dwarf.All {
			return 0, false
		}
	}
	return NodeFor(keys, len(nodes)), true
}

// Range aggregates one selector per dimension across the cluster.
func (c *Coordinator) Range(sels []dwarf.Selector) (dwarf.Aggregate, error) {
	if err := c.checkSels(sels); err != nil {
		return dwarf.Aggregate{}, err
	}
	agg, _, err := c.rangeQ(c.snapshot(), sels)
	return agg, err
}

func (c *Coordinator) rangeQ(nodes []*node, sels []dwarf.Selector) (dwarf.Aggregate, []*NodeError, error) {
	req := partialReq{Shape: "range", Cube: c.live, Selectors: wireSelectors(sels)}
	parts, failed := scatter(nodes, func(n *node) (dwarf.Aggregate, error) {
		return n.partialAgg(req)
	})
	if err := strictErr(len(nodes), failed); err != nil {
		return dwarf.Aggregate{}, failed, err
	}
	return mergeAggs(parts), failed, nil
}

// GroupBy groups the dimension at index dim across the cluster: full
// per-node group maps merged with the kernel's map merge.
func (c *Coordinator) GroupBy(dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error) {
	if err := c.checkDim(dim); err != nil {
		return nil, err
	}
	if err := c.checkSels(sels); err != nil {
		return nil, err
	}
	groups, _, err := c.groupBy(c.snapshot(), dim, sels)
	return groups, err
}

func (c *Coordinator) groupBy(nodes []*node, dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, []*NodeError, error) {
	req := partialReq{
		Shape: "groupby", Cube: c.live,
		Dim: strconv.Itoa(dim), Selectors: wireSelectors(sels),
	}
	parts, failed := scatter(nodes, func(n *node) (map[string]dwarf.Aggregate, error) {
		return n.partialGroups(req)
	})
	if err := strictErr(len(nodes), failed); err != nil {
		return nil, failed, err
	}
	return dwarf.MergeGroupMaps(make(map[string]dwarf.Aggregate), parts...), failed, nil
}

// Pivot is the multi-dimension GroupBy across the cluster, returning
// sorted rows — the same merge the store applies to per-segment rows.
func (c *Coordinator) Pivot(dims []int, sels []dwarf.Selector) ([]dwarf.PivotGroup, error) {
	if err := c.checkSels(sels); err != nil {
		return nil, err
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: pivot needs at least one group dimension", dwarf.ErrBadQuery)
	}
	grouped := make([]bool, len(c.dims))
	for _, d := range dims {
		if err := c.checkDim(d); err != nil {
			return nil, err
		}
		if grouped[d] {
			return nil, fmt.Errorf("%w: group-by dimension %d named twice", dwarf.ErrBadQuery, d)
		}
		grouped[d] = true
	}
	rows, _, err := c.pivot(c.snapshot(), dims, sels)
	return rows, err
}

func (c *Coordinator) pivot(nodes []*node, dims []int, sels []dwarf.Selector) ([]dwarf.PivotGroup, []*NodeError, error) {
	wdims := make([]string, len(dims))
	for i, d := range dims {
		wdims[i] = strconv.Itoa(d)
	}
	req := partialReq{Shape: "pivot", Cube: c.live, Dims: wdims, Selectors: wireSelectors(sels)}
	parts, failed := scatter(nodes, func(n *node) ([]dwarf.PivotGroup, error) {
		return n.partialRows(req)
	})
	if err := strictErr(len(nodes), failed); err != nil {
		return nil, failed, err
	}
	return dwarf.MergePivotGroups(parts...), failed, nil
}

// TopK ranks the groups of one dimension across the cluster. Every node
// contributes its full group map; threshold and K cut run only after the
// merge (the full-map-before-cut rule, now over the network).
func (c *Coordinator) TopK(dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, error) {
	if err := c.checkDim(dim); err != nil {
		return nil, err
	}
	if err := c.checkSels(sels); err != nil {
		return nil, err
	}
	entries, _, err := c.topK(c.snapshot(), dim, sels, spec)
	return entries, err
}

func (c *Coordinator) topK(nodes []*node, dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, []*NodeError, error) {
	groups, failed, err := c.groupBy(nodes, dim, sels)
	if err != nil {
		return nil, failed, err
	}
	return dwarf.TopKFromGroups(groups, spec), failed, nil
}

// The coordinator serves the full shared query surface.
var _ query.Querier = (*Coordinator)(nil)

// Append hash-routes the batch and appends each slice to its node. The
// write is acknowledged only when every involved node acknowledged its
// slice; on failure the error names the nodes whose slices did NOT land,
// while the other nodes keep theirs — cross-node appends are not atomic,
// and pretending otherwise would hide which data is durable. Failed slices
// are safe to re-send once their node is back: the error is explicit about
// which tuples are missing.
func (c *Coordinator) Append(tuples []dwarf.Tuple) error {
	if len(tuples) == 0 {
		return fmt.Errorf("cluster: empty batch")
	}
	nodes := c.snapshot()
	buckets := make([][]dwarf.Tuple, len(nodes))
	for _, tu := range tuples {
		i := NodeFor(tu.Dims, len(nodes))
		buckets[i] = append(buckets[i], tu)
	}
	involved := make([]*node, 0, len(nodes))
	batches := make([][]dwarf.Tuple, 0, len(nodes))
	for i, b := range buckets {
		if len(b) > 0 {
			involved = append(involved, nodes[i])
			batches = append(batches, b)
		}
	}
	errs := make([]error, len(involved))
	var wg sync.WaitGroup
	for i := range involved {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = involved[i].ingest(batches[i])
		}(i)
	}
	wg.Wait()
	var failed []*NodeError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &NodeError{Node: involved[i].base, Err: err})
		}
	}
	return strictErr(len(involved), failed)
}

// Generations probes every node's store generation (via /store/stats),
// returning base URL → generation. A node that cannot be reached is
// reported in the error and omitted from the map.
func (c *Coordinator) Generations() (map[string]uint64, error) {
	nodes := c.snapshot()
	type genT struct {
		base string
		gen  uint64
	}
	parts, failed := scatter(nodes, func(n *node) (genT, error) {
		gen, err := n.generation()
		return genT{base: n.base, gen: gen}, err
	})
	out := make(map[string]uint64, len(parts))
	for _, p := range parts {
		if p.base != "" {
			out[p.base] = p.gen
		}
	}
	for _, f := range failed {
		delete(out, f.Node)
	}
	return out, strictErr(len(nodes), failed)
}

// mergeAggs folds per-node aggregates in node order.
func mergeAggs(parts []dwarf.Aggregate) dwarf.Aggregate {
	var out dwarf.Aggregate
	for _, a := range parts {
		out = dwarf.MergeAggregates(out, a)
	}
	return out
}

// wireSelectors converts kernel selectors to the serve wire form,
// preserving the HasRange-over-Keys precedence.
func wireSelectors(sels []dwarf.Selector) []wireSelector {
	if len(sels) == 0 {
		return nil
	}
	out := make([]wireSelector, len(sels))
	for i := range sels {
		switch {
		case sels[i].HasRange:
			lo, hi := sels[i].Lo, sels[i].Hi
			out[i] = wireSelector{Lo: &lo, Hi: &hi}
		case len(sels[i].Keys) > 0:
			out[i] = wireSelector{Keys: sels[i].Keys}
		}
	}
	return out
}

func failedNames(failed []*NodeError) []string {
	if len(failed) == 0 {
		return nil
	}
	out := make([]string, len(failed))
	for i, f := range failed {
		out[i] = f.Node
	}
	sort.Strings(out)
	return out
}
