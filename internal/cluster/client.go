package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/dwarf"
)

// node is one dwarfd cluster member as seen by the coordinator: a base
// URL plus the per-attempt timeout and bounded retry/backoff policy.
type node struct {
	base    string
	client  *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
}

// ---- wire types (mirroring internal/serve's request/partial formats) ----

type wireSelector struct {
	Keys []string `json:"keys,omitempty"`
	Lo   *string  `json:"lo,omitempty"`
	Hi   *string  `json:"hi,omitempty"`
}

type partialReq struct {
	Shape     string         `json:"shape"`
	Cube      string         `json:"cube"`
	Keys      []string       `json:"keys,omitempty"`
	Dim       string         `json:"dim,omitempty"`
	Dims      []string       `json:"dims,omitempty"`
	Selectors []wireSelector `json:"selectors,omitempty"`
}

// wireAgg decodes the serve aggregate envelope; Avg is derived, ignored.
type wireAgg struct {
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Avg   float64 `json:"avg"`
}

func (a wireAgg) agg() dwarf.Aggregate {
	return dwarf.Aggregate{Sum: a.Sum, Count: a.Count, Min: a.Min, Max: a.Max}
}

type partialAggResp struct {
	Generation uint64  `json:"generation"`
	Aggregate  wireAgg `json:"aggregate"`
}

type partialGroupsResp struct {
	Generation uint64             `json:"generation"`
	Groups     map[string]wireAgg `json:"groups"`
}

type partialRowsResp struct {
	Generation uint64 `json:"generation"`
	Rows       []struct {
		Keys      []string `json:"keys"`
		Aggregate wireAgg  `json:"aggregate"`
	} `json:"rows"`
}

type errorResp struct {
	Error string `json:"error"`
}

// ---- shape calls ----

func (n *node) partialAgg(req partialReq) (dwarf.Aggregate, error) {
	var resp partialAggResp
	if err := n.postRetry("/query/partial", req, &resp); err != nil {
		return dwarf.Aggregate{}, err
	}
	return resp.Aggregate.agg(), nil
}

func (n *node) partialGroups(req partialReq) (map[string]dwarf.Aggregate, error) {
	var resp partialGroupsResp
	if err := n.postRetry("/query/partial", req, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]dwarf.Aggregate, len(resp.Groups))
	for k, a := range resp.Groups {
		out[k] = a.agg()
	}
	return out, nil
}

func (n *node) partialRows(req partialReq) ([]dwarf.PivotGroup, error) {
	var resp partialRowsResp
	if err := n.postRetry("/query/partial", req, &resp); err != nil {
		return nil, err
	}
	rows := make([]dwarf.PivotGroup, len(resp.Rows))
	for i, r := range resp.Rows {
		rows[i] = dwarf.PivotGroup{Keys: r.Keys, Agg: r.Aggregate.agg()}
	}
	return rows, nil
}

type wireTuple struct {
	Dims    []string `json:"dims"`
	Measure float64  `json:"measure"`
}

// ingest appends one node's slice of a batch. NO retry: the store has no
// idempotent dedupe, so re-sending after an ambiguous failure (timeout
// after the node may have logged the batch) could double-count it. The
// caller's error names the node so the operator can reconcile explicitly.
func (n *node) ingest(tuples []dwarf.Tuple) error {
	specs := make([]wireTuple, len(tuples))
	for i, tu := range tuples {
		specs[i] = wireTuple{Dims: tu.Dims, Measure: tu.Measure}
	}
	var resp struct {
		Appended int `json:"appended"`
	}
	err := n.post("/ingest", map[string]any{"tuples": specs}, &resp)
	if err != nil {
		return err
	}
	if resp.Appended != len(tuples) {
		return fmt.Errorf("node acknowledged %d of %d tuples", resp.Appended, len(tuples))
	}
	return nil
}

// generation reads the node's visible-state generation from /store/stats.
func (n *node) generation() (uint64, error) {
	var resp struct {
		Stats struct {
			Generation uint64 `json:"generation"`
		} `json:"stats"`
	}
	if err := n.get("/store/stats", &resp); err != nil {
		return 0, err
	}
	return resp.Stats.Generation, nil
}

// ---- transport ----

// postRetry is post with the bounded retry+backoff policy — queries are
// idempotent, so transport failures and 5xx responses are retried up to
// n.retries times with doubling backoff.
func (n *node) postRetry(path string, body, out any) error {
	var err error
	backoff := n.backoff
	for attempt := 0; ; attempt++ {
		err = n.post(path, body, out)
		if err == nil || !retryable(err) || attempt >= n.retries {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// statusError is a non-2xx node response; 5xx ones are retryable.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("HTTP %d: %s", e.status, e.msg)
	}
	return fmt.Sprintf("HTTP %d", e.status)
}

func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.status >= 500
	}
	// Everything else at this layer is a transport/timeout failure.
	return true
}

func (n *node) post(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return n.do(req, out)
}

func (n *node) get(path string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+path, nil)
	if err != nil {
		return err
	}
	return n.do(req, out)
}

func (n *node) do(req *http.Request, out any) error {
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e errorResp
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return &statusError{status: resp.StatusCode, msg: e.Error}
		}
		return &statusError{status: resp.StatusCode}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
