package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/query"
	"repro/internal/serve"
)

var testDims = []string{"Day", "Region", "Kind"}

// allSels is the all-wildcard full-arity selector list.
func allSels() []dwarf.Selector { return make([]dwarf.Selector, len(testDims)) }

// testTuples builds a deterministic dataset with integer measures. Integer
// measures make every aggregate exact in float64 (all values ≪ 2^53), so a
// K-node cluster must be BIT-identical to one union store no matter how the
// hash partitions the fold order.
func testTuples(n int) []dwarf.Tuple {
	days := []string{"d0", "d1", "d2", "d3", "d4", "d5"}
	regions := []string{"north", "south", "east", "west"}
	kinds := []string{"bike", "noise", "air"}
	out := make([]dwarf.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = dwarf.Tuple{
			Dims: []string{
				days[i%len(days)],
				regions[(i/2)%len(regions)],
				kinds[(i/5)%len(kinds)],
			},
			Measure: float64(i*7%13 + 1),
		}
	}
	return out
}

// testNode is one in-process dwarfd cluster member.
type testNode struct {
	dir   string
	store *cubestore.Store
	srv   *httptest.Server
}

func (tn *testNode) stop(t *testing.T) {
	t.Helper()
	tn.srv.Close()
	if err := tn.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// startNode opens (or reopens) a store in dir and serves it in cluster-node
// mode. Small seal threshold so multi-segment stores are exercised.
func startNode(t *testing.T, dir string) *testNode {
	t.Helper()
	st, err := cubestore.Open(dir, cubestore.Options{
		Dims:       testDims,
		SealTuples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Options{Store: st, ClusterNode: true})
	if err != nil {
		t.Fatal(err)
	}
	return &testNode{dir: dir, store: st, srv: httptest.NewServer(srv.Handler())}
}

// testCluster wires k in-process nodes plus a coordinator over them and a
// single union store holding the same tuples — the differential oracle.
type testCluster struct {
	nodes []*testNode
	coord *Coordinator
	union *cubestore.Store
}

func newTestCluster(t *testing.T, k int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		tn := startNode(t, t.TempDir())
		tc.nodes = append(tc.nodes, tn)
		urls[i] = tn.srv.URL
	}
	t.Cleanup(func() {
		for _, tn := range tc.nodes {
			tn.srv.Close()
			tn.store.Close()
		}
	})
	opts.Nodes = urls
	opts.Dims = testDims
	coord, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	union, err := cubestore.Open(t.TempDir(), cubestore.Options{
		Dims:       testDims,
		SealTuples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { union.Close() })
	tc.union = union
	return tc
}

// load appends tuples through the coordinator (hash-routed over HTTP) and
// the same tuples to the union store directly.
func (tc *testCluster) load(t *testing.T, tuples []dwarf.Tuple) {
	t.Helper()
	if err := tc.coord.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if err := tc.union.Append(tuples); err != nil {
		t.Fatal(err)
	}
}

// assertIdentical runs every query shape against the coordinator and the
// union store and requires bit-identical answers.
func assertIdentical(t *testing.T, coord query.Querier, union query.Querier) {
	t.Helper()

	// Point: every cell that exists plus wildcard mixes and a miss.
	points := [][]string{
		{"d0", "north", "bike"},
		{"d1", "south", "bike"},
		{"d3", "east", "noise"},
		{"", "west", ""},
		{"d2", "", ""},
		{"", "", ""},
		{"d0", "nowhere", "bike"},
	}
	for _, keys := range points {
		want, err1 := union.Point(keys...)
		got, err2 := coord.Point(keys...)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Point(%v): union err=%v cluster err=%v", keys, err1, err2)
		}
		if got != want {
			t.Fatalf("Point(%v): union %+v cluster %+v", keys, want, got)
		}
	}

	// Invalid arity fails identically on both sides (coordinator
	// validates up front, like the kernel).
	_, errU := union.Range(nil)
	_, errC := coord.Range(nil)
	if errU == nil || errC == nil || errU.Error() != errC.Error() {
		t.Fatalf("Range(nil) parity: union err=%v cluster err=%v", errU, errC)
	}

	// Range: all-wildcard (grand total), key sets, ranges, and a mix.
	ranges := [][]dwarf.Selector{
		allSels(),
		{dwarf.SelectRange("d1", "d3"), {}, {}},
		{{}, dwarf.SelectKeys("north", "south"), {}},
		{dwarf.SelectRange("d0", "d2"), {}, dwarf.SelectKeys("bike")},
	}
	for i, sels := range ranges {
		want, err1 := union.Range(sels)
		got, err2 := coord.Range(sels)
		if err1 != nil || err2 != nil {
			t.Fatalf("Range case %d: union err=%v cluster err=%v", i, err1, err2)
		}
		if got != want {
			t.Fatalf("Range case %d: union %+v cluster %+v", i, want, got)
		}
	}

	// GroupBy: every dimension, with and without a restriction.
	for dim := 0; dim < len(testDims); dim++ {
		for _, sels := range [][]dwarf.Selector{allSels(), {dwarf.SelectRange("d0", "d3"), {}, {}}} {
			want, err1 := union.GroupBy(dim, sels)
			got, err2 := coord.GroupBy(dim, sels)
			if err1 != nil || err2 != nil {
				t.Fatalf("GroupBy(%d): union err=%v cluster err=%v", dim, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("GroupBy(%d, %v):\nunion   %v\ncluster %v", dim, sels, want, got)
			}
		}
	}

	// Pivot: two shapes; rows are sorted, so DeepEqual pins order too.
	for _, dims := range [][]int{{0, 2}, {1, 2}, {0, 1, 2}} {
		want, err1 := union.Pivot(dims, allSels())
		got, err2 := coord.Pivot(dims, allSels())
		if err1 != nil || err2 != nil {
			t.Fatalf("Pivot(%v): union err=%v cluster err=%v", dims, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Pivot(%v):\nunion   %v\ncluster %v", dims, want, got)
		}
	}

	// TopK: entry order (metric desc, key asc) must survive the network
	// merge — full group maps cut once at the coordinator.
	specs := []dwarf.TopKSpec{
		{K: 2, By: dwarf.BySum},
		{K: 3, By: dwarf.ByCount},
		{K: 0, By: dwarf.BySum, Threshold: 50, HasThreshold: true},
	}
	for _, spec := range specs {
		want, err1 := union.TopK(1, allSels(), spec)
		got, err2 := coord.TopK(1, allSels(), spec)
		if err1 != nil || err2 != nil {
			t.Fatalf("TopK(%+v): union err=%v cluster err=%v", spec, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%+v):\nunion   %v\ncluster %v", spec, want, got)
		}
	}

	// RollUp lowers to Pivot through the shared query facade on both sides.
	wantDims, wantRows, err1 := query.RollUp(union, "Region", "Kind")
	gotDims, gotRows, err2 := query.RollUp(coord, "Region", "Kind")
	if err1 != nil || err2 != nil {
		t.Fatalf("RollUp: union err=%v cluster err=%v", err1, err2)
	}
	if !reflect.DeepEqual(gotDims, wantDims) || !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatalf("RollUp:\nunion   %v %v\ncluster %v %v", wantDims, wantRows, gotDims, gotRows)
	}
}

// TestClusterMatchesUnionStore is the core differential gate: a 3-node
// cluster must be bit-identical to one store holding the union of the data,
// across every query shape.
func TestClusterMatchesUnionStore(t *testing.T) {
	tc := newTestCluster(t, 3, Options{})
	tc.load(t, testTuples(200))
	assertIdentical(t, tc.coord, tc.union)

	// A second batch after the first answers: re-converges.
	tc.load(t, testTuples(77)[30:])
	assertIdentical(t, tc.coord, tc.union)
}

// TestClusterSingleNode pins the degenerate cluster: one node behaves like
// a remote store.
func TestClusterSingleNode(t *testing.T) {
	tc := newTestCluster(t, 1, Options{})
	tc.load(t, testTuples(60))
	assertIdentical(t, tc.coord, tc.union)
}

// TestNodeKillStrictError kills one node mid-battery: every shape must
// return an explicit error naming the dead node — never a silently short
// merged answer.
func TestNodeKillStrictError(t *testing.T) {
	tc := newTestCluster(t, 3, Options{Retries: -1, Timeout: 2 * time.Second})
	tc.load(t, testTuples(120))
	assertIdentical(t, tc.coord, tc.union)

	dead := tc.nodes[1]
	dead.srv.Close()

	check := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: no error with node %s dead", what, dead.srv.URL)
		}
		if !strings.Contains(err.Error(), dead.srv.URL) {
			t.Fatalf("%s: error %q does not name dead node %s", what, err, dead.srv.URL)
		}
		var se *scatterError
		if !asScatter(err, &se) {
			t.Fatalf("%s: error %T is not a scatterError", what, err)
		}
		if se.total != 3 || len(se.failed) != 1 {
			t.Fatalf("%s: want 1/3 failed, got %d/%d", what, len(se.failed), se.total)
		}
	}

	// A fully bound point routes to its single owner, so strict mode only
	// fails when that owner is the dead node — and the error then reports
	// a 1-node scatter. A survivor-owned cell keeps answering, and any
	// wildcard falls back to the full scatter and fails like the rest.
	var deadKeys, aliveKeys []string
	for _, tu := range testTuples(120) {
		if NodeFor(tu.Dims, 3) == 1 {
			deadKeys = tu.Dims
		} else {
			aliveKeys = tu.Dims
		}
	}
	_, err := tc.coord.Point(deadKeys...)
	if err == nil || !strings.Contains(err.Error(), dead.srv.URL) {
		t.Fatalf("dead-owned Point: err %v does not name %s", err, dead.srv.URL)
	}
	var se *scatterError
	if !asScatter(err, &se) || se.total != 1 || len(se.failed) != 1 {
		t.Fatalf("dead-owned Point: want a 1/1 scatter error, got %v", err)
	}
	if got, err := tc.coord.Point(aliveKeys...); err != nil || got.Count == 0 {
		t.Fatalf("survivor-owned Point: %+v, %v", got, err)
	}
	_, err = tc.coord.Point("d0", dwarf.All, "bike")
	check("Point", err)
	_, err = tc.coord.Range(allSels())
	check("Range", err)
	_, err = tc.coord.GroupBy(1, allSels())
	check("GroupBy", err)
	_, err = tc.coord.Pivot([]int{0, 1}, allSels())
	check("Pivot", err)
	_, err = tc.coord.TopK(1, allSels(), dwarf.TopKSpec{K: 2})
	check("TopK", err)
	_, _, err = query.RollUp(tc.coord, "Region")
	check("RollUp", err)
}

func asScatter(err error, out **scatterError) bool {
	se, ok := err.(*scatterError)
	if ok {
		*out = se
	}
	return ok
}

// TestNodeKillRestartRecovers kills a node, restarts it over the same
// store directory (WAL + manifest recovery), repoints the coordinator with
// SetNode, and requires the full battery to be bit-identical again.
func TestNodeKillRestartRecovers(t *testing.T) {
	tc := newTestCluster(t, 3, Options{})
	tc.load(t, testTuples(150))
	assertIdentical(t, tc.coord, tc.union)

	victim := tc.nodes[2]
	victim.stop(t)
	if _, err := tc.coord.GroupBy(0, allSels()); err == nil {
		t.Fatal("no error with a node down")
	}

	reborn := startNode(t, victim.dir)
	tc.nodes[2] = reborn
	t.Cleanup(func() {
		reborn.srv.Close()
		reborn.store.Close()
	})
	if err := tc.coord.SetNode(2, reborn.srv.URL); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, tc.coord, tc.union)

	// And the restarted node keeps taking writes for its partition.
	tc.load(t, testTuples(33))
	assertIdentical(t, tc.coord, tc.union)
}

// TestSlowNodeTimesOut wraps one node in an artificial delay longer than
// the per-node timeout: the query must fail explicitly naming that node,
// within a bound far below the delay stack (no unbounded waiting).
func TestSlowNodeTimesOut(t *testing.T) {
	tc := newTestCluster(t, 3, Options{})
	tc.load(t, testTuples(90))

	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
		http.Error(w, "too late", http.StatusServiceUnavailable)
	}))
	defer slow.Close()

	coord, err := New(Options{
		Nodes:   []string{tc.nodes[0].srv.URL, tc.nodes[1].srv.URL, slow.URL},
		Dims:    testDims,
		Timeout: 100 * time.Millisecond,
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = coord.GroupBy(0, allSels())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("no error with a node slower than the timeout")
	}
	if !strings.Contains(err.Error(), slow.URL) {
		t.Fatalf("error %q does not name the slow node %s", err, slow.URL)
	}
	if elapsed > time.Second {
		t.Fatalf("timeout took %v, want well under the node's 2s delay", elapsed)
	}
}

// TestRetryRecoversTransientFailure pins the bounded-retry policy: a node
// that 500s twice then answers is transparently retried, and one that 400s
// is not (client errors are not transient).
func TestRetryRecoversTransientFailure(t *testing.T) {
	var calls int
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"generation":1,"aggregate":{"sum":5,"count":1,"min":5,"max":5,"avg":5}}`))
	}))
	defer flaky.Close()

	coord, err := New(Options{
		Nodes:   []string{flaky.URL},
		Dims:    testDims,
		Retries: 2,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := coord.Point("a", "b", "c")
	if err != nil {
		t.Fatalf("retries did not mask two 500s: %v", err)
	}
	if agg.Sum != 5 || agg.Count != 1 {
		t.Fatalf("got %+v after retry", agg)
	}
	if calls != 3 {
		t.Fatalf("%d calls, want 3 (two failures + success)", calls)
	}

	calls = 0
	always400 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	}))
	defer always400.Close()
	coord2, err := New(Options{Nodes: []string{always400.URL}, Dims: testDims, Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.Point("a", "b", "c"); err == nil {
		t.Fatal("400 did not fail the query")
	}
	if calls != 1 {
		t.Fatalf("%d calls on a 400, want 1 (no retry of client errors)", calls)
	}
}

// TestAppendFailureNamesNode: an ingest hitting a dead node fails
// explicitly (and is never retried — the batch may have landed).
func TestAppendFailureNamesNode(t *testing.T) {
	tc := newTestCluster(t, 3, Options{Timeout: 2 * time.Second})
	dead := tc.nodes[0]
	dead.srv.Close()

	// A batch wide enough to hit every partition.
	err := tc.coord.Append(testTuples(60))
	if err == nil {
		t.Fatal("Append succeeded with a node dead")
	}
	if !strings.Contains(err.Error(), dead.srv.URL) {
		t.Fatalf("Append error %q does not name dead node %s", err, dead.srv.URL)
	}
	// The surviving nodes keep their slices: totals equal the union of the
	// two live partitions (re-derived from the stores directly).
	var want dwarf.Aggregate
	for _, tn := range tc.nodes[1:] {
		agg, err := tn.store.Range(allSels())
		if err != nil {
			t.Fatal(err)
		}
		want = dwarf.MergeAggregates(want, agg)
	}
	got, _, err := tc.coord.rangeQ(surviving(tc.coord.snapshot(), []*NodeError{{Node: dead.srv.URL}}), allSels())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("surviving nodes hold %+v, direct union of their stores %+v", got, want)
	}
}

// TestGenerations probes every node's store generation.
func TestGenerations(t *testing.T) {
	tc := newTestCluster(t, 3, Options{})
	tc.load(t, testTuples(30))
	gens, err := tc.coord.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("got %d generations, want 3: %v", len(gens), gens)
	}
	var total uint64
	for _, g := range gens {
		total += g
	}
	if total == 0 {
		t.Fatal("all generations zero after a load")
	}
}

// TestNodeForDeterminismAndSpread: the partitioner is pure/stable, keys
// spread over nodes, and the length prefix keeps concatenation collisions
// apart.
func TestNodeForDeterminism(t *testing.T) {
	keys := []string{"d1", "north", "bike"}
	want := NodeFor(keys, 5)
	for i := 0; i < 100; i++ {
		if NodeFor(keys, 5) != want {
			t.Fatal("NodeFor is not stable")
		}
	}
	if NodeFor(keys, 1) != 0 || NodeFor(keys, 0) != 0 {
		t.Fatal("degenerate n must map to node 0")
	}

	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[NodeFor([]string{fmt.Sprintf("k%d", i), "x"}, 3)]++
	}
	for n, c := range counts {
		if c < 600 {
			t.Fatalf("node %d got %d of 3000 keys — partitioner badly skewed: %v", n, c, counts)
		}
	}

	if NodeFor([]string{"ab", "c"}, 1<<30) == NodeFor([]string{"a", "bc"}, 1<<30) {
		t.Fatal("length prefix failed: concatenation collision")
	}
}

// TestPointRoutesToSingleNode proves the point fast path at the wire: with
// every dimension bound, the coordinator asks exactly one of the three
// nodes — the tuple's Append-time owner — while a wildcard anywhere in the
// key falls back to the full scatter. Each counted answer is also checked
// against a union store, so routing can never trade correctness for fewer
// requests.
func TestPointRoutesToSingleNode(t *testing.T) {
	const k = 3
	var hits [k]atomic.Int64
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		st, err := cubestore.Open(t.TempDir(), cubestore.Options{Dims: testDims, SealTuples: 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		sv, err := serve.New(serve.Options{Store: st, ClusterNode: true})
		if err != nil {
			t.Fatal(err)
		}
		h, i := sv.Handler(), i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord, err := New(Options{Nodes: urls, Dims: testDims, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	union, err := cubestore.Open(t.TempDir(), cubestore.Options{Dims: testDims, SealTuples: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { union.Close() })
	tuples := testTuples(90)
	if err := coord.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if err := union.Append(tuples); err != nil {
		t.Fatal(err)
	}
	reset := func() {
		for i := range hits {
			hits[i].Store(0)
		}
	}
	requests := func() (total int64, asked []int) {
		for i := range hits {
			n := hits[i].Load()
			total += n
			if n > 0 {
				asked = append(asked, i)
			}
		}
		return total, asked
	}

	// Every fully bound tuple in the dataset: one request, to its owner.
	seen := map[string]bool{}
	for _, tu := range tuples {
		key := strings.Join(tu.Dims, "\x00")
		if seen[key] {
			continue
		}
		seen[key] = true
		want, err := union.Point(tu.Dims...)
		if err != nil {
			t.Fatal(err)
		}
		reset()
		got, err := coord.Point(tu.Dims...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point %v: %+v, union %+v", tu.Dims, got, want)
		}
		total, asked := requests()
		if total != 1 || len(asked) != 1 || asked[0] != NodeFor(tu.Dims, k) {
			t.Fatalf("point %v made %d requests to nodes %v, want 1 to owner %d",
				tu.Dims, total, asked, NodeFor(tu.Dims, k))
		}
	}

	// A bound tuple no node holds still answers (the zero aggregate) with
	// a single request.
	reset()
	got, err := coord.Point("nope", "nope", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if got != (dwarf.Aggregate{}) {
		t.Fatalf("absent cell: %+v", got)
	}
	if total, _ := requests(); total != 1 {
		t.Fatalf("absent cell made %d requests, want 1", total)
	}

	// Any wildcard disables routing: the cell's tuples may live anywhere.
	for _, keys := range [][]string{
		{dwarf.All, "north", "bike"},
		{"d0", dwarf.All, "bike"},
		{"d0", "north", dwarf.All},
		{dwarf.All, dwarf.All, dwarf.All},
	} {
		want, err := union.Point(keys...)
		if err != nil {
			t.Fatal(err)
		}
		reset()
		got, err := coord.Point(keys...)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point %v: %+v, union %+v", keys, got, want)
		}
		if total, asked := requests(); total != k || len(asked) != k {
			t.Fatalf("wildcard point %v made %d requests to nodes %v, want all %d",
				keys, total, asked, k)
		}
	}
}
