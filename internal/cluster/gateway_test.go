package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dwarf"
)

// gwFixture is a 3-node cluster behind a gateway, plus the union oracle.
func gwFixture(t *testing.T) (*testCluster, *httptest.Server) {
	t.Helper()
	tc := newTestCluster(t, 3, Options{Timeout: 2 * time.Second, Retries: -1})
	gw := httptest.NewServer(NewGateway(tc.coord, 0).Handler())
	t.Cleanup(gw.Close)
	return tc, gw
}

func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d (want %d): %v", url, resp.StatusCode, wantStatus, out)
	}
	return out
}

func aggOf(t *testing.T, v any) dwarf.Aggregate {
	t.Helper()
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("aggregate is %T", v)
	}
	return dwarf.Aggregate{
		Sum:   m["sum"].(float64),
		Count: int64(m["count"].(float64)),
		Min:   m["min"].(float64),
		Max:   m["max"].(float64),
	}
}

// TestGatewayEndToEnd drives ingest and every query endpoint through the
// gateway and checks the answers against the union store.
func TestGatewayEndToEnd(t *testing.T) {
	tc, gw := gwFixture(t)

	// Ingest through the gateway (hash-routed by the coordinator).
	tuples := testTuples(120)
	specs := make([]map[string]any, len(tuples))
	for i, tu := range tuples {
		specs[i] = map[string]any{"dims": tu.Dims, "measure": tu.Measure}
	}
	resp := postJSON(t, gw.URL+"/ingest", map[string]any{"tuples": specs}, http.StatusOK)
	if resp["appended"] != float64(len(tuples)) {
		t.Fatalf("ingest ack %v", resp)
	}
	if err := tc.union.Append(tuples); err != nil {
		t.Fatal(err)
	}

	// Point.
	want, err := tc.union.Point("d0", "north", "bike")
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, gw.URL+"/query/point",
		map[string]any{"keys": []string{"d0", "north", "bike"}}, http.StatusOK)
	if got := aggOf(t, resp["aggregate"]); got != want {
		t.Fatalf("point: gateway %+v union %+v", got, want)
	}
	if resp["partial"] != nil {
		t.Fatalf("complete answer marked partial: %v", resp)
	}

	// Range with a lo/hi selector and a keys selector.
	wantR, err := tc.union.Range([]dwarf.Selector{
		dwarf.SelectRange("d1", "d4"), dwarf.SelectKeys("north", "east"), {},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, gw.URL+"/query/range", map[string]any{
		"selectors": []map[string]any{
			{"lo": "d1", "hi": "d4"},
			{"keys": []string{"north", "east"}},
		},
	}, http.StatusOK)
	if got := aggOf(t, resp["aggregate"]); got != wantR {
		t.Fatalf("range: gateway %+v union %+v", got, wantR)
	}

	// GroupBy by name, full map.
	wantG, err := tc.union.GroupBy(1, allSels())
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, gw.URL+"/query/groupby", map[string]any{"dim": "Region"}, http.StatusOK)
	groups := resp["groups"].(map[string]any)
	if len(groups) != len(wantG) {
		t.Fatalf("groupby: %d groups, union has %d", len(groups), len(wantG))
	}
	for k, wa := range wantG {
		if got := aggOf(t, groups[k]); got != wa {
			t.Fatalf("groupby[%s]: gateway %+v union %+v", k, got, wa)
		}
	}
	if resp["total_groups"] != float64(len(wantG)) {
		t.Fatalf("total_groups %v, want %d", resp["total_groups"], len(wantG))
	}

	// GroupBy paging: limit 2 over 4 regions, sorted key order.
	resp = postJSON(t, gw.URL+"/query/groupby",
		map[string]any{"dim": "Region", "limit": 2, "offset": 0}, http.StatusOK)
	if n := len(resp["groups"].(map[string]any)); n != 2 {
		t.Fatalf("page size %d, want 2", n)
	}
	if resp["truncated"] != true || resp["total_groups"] != float64(len(wantG)) {
		t.Fatalf("paging envelope %v", resp)
	}

	// TopK: order pinned against the union store.
	wantT, err := tc.union.TopK(1, allSels(), dwarf.TopKSpec{K: 3, By: dwarf.BySum})
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, gw.URL+"/query/topk",
		map[string]any{"dim": "Region", "k": 3, "by": "sum"}, http.StatusOK)
	entries := resp["entries"].([]any)
	if len(entries) != len(wantT) {
		t.Fatalf("topk: %d entries, union has %d", len(entries), len(wantT))
	}
	// dwarfd wire compatibility: the envelope field is total_entries, not total.
	if _, ok := resp["total_entries"]; !ok {
		t.Fatalf("topk envelope missing total_entries: %v", resp)
	}
	for i, e := range entries {
		em := e.(map[string]any)
		if em["key"] != wantT[i].Key {
			t.Fatalf("topk[%d]: key %v, union %s", i, em["key"], wantT[i].Key)
		}
		if got := aggOf(t, em["aggregate"]); got != wantT[i].Agg {
			t.Fatalf("topk[%d]: agg %+v, union %+v", i, got, wantT[i].Agg)
		}
		// dwarfd wire compatibility: each entry carries its ranking metric.
		if em["metric"] != wantT[i].Agg.Sum {
			t.Fatalf("topk[%d]: metric %v, union sum %v", i, em["metric"], wantT[i].Agg.Sum)
		}
	}

	// Pivot and RollUp row-for-row.
	wantP, err := tc.union.Pivot([]int{1, 2}, allSels())
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []struct {
		path string
		body map[string]any
	}{
		{"/query/pivot", map[string]any{"dims": []string{"Region", "Kind"}}},
		{"/query/rollup", map[string]any{"keep": []string{"Kind", "Region"}}}, // order normalized
	} {
		resp = postJSON(t, gw.URL+ep.path, ep.body, http.StatusOK)
		rows := resp["groups"].([]any)
		if len(rows) != len(wantP) {
			t.Fatalf("%s: %d rows, union has %d", ep.path, len(rows), len(wantP))
		}
		// dwarfd wire compatibility: pivot/rollup report total_groups.
		if _, ok := resp["total_groups"]; !ok {
			t.Fatalf("%s envelope missing total_groups: %v", ep.path, resp)
		}
		for i, r := range rows {
			rm := r.(map[string]any)
			keys := rm["keys"].([]any)
			for j, k := range keys {
				if k != wantP[i].Keys[j] {
					t.Fatalf("%s row %d: keys %v, union %v", ep.path, i, keys, wantP[i].Keys)
				}
			}
			if got := aggOf(t, rm["aggregate"]); got != wantP[i].Agg {
				t.Fatalf("%s row %d: agg %+v, union %+v", ep.path, i, got, wantP[i].Agg)
			}
		}
	}

	// Cluster stats: three healthy nodes.
	sresp, err := http.Get(gw.URL + "/cluster/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	nodes := stats["nodes"].([]any)
	if len(nodes) != 3 {
		t.Fatalf("stats lists %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.(map[string]any)["ok"] != true {
			t.Fatalf("unhealthy node in %v", nodes)
		}
	}
}

// TestGatewayBadRequests pins 400s: unknown dim, bad selector, bad body.
func TestGatewayBadRequests(t *testing.T) {
	_, gw := gwFixture(t)
	resp := postJSON(t, gw.URL+"/query/groupby", map[string]any{"dim": "Nope"}, http.StatusBadRequest)
	if !strings.Contains(resp["error"].(string), "Nope") {
		t.Fatalf("error %v does not name the bad dim", resp["error"])
	}
	postJSON(t, gw.URL+"/query/range", map[string]any{
		"selectors": []map[string]any{{"lo": "a"}},
	}, http.StatusBadRequest)
	postJSON(t, gw.URL+"/query/pivot", map[string]any{
		"dims": []string{"Region", "Region"},
	}, http.StatusBadRequest)
	postJSON(t, gw.URL+"/query/topk", map[string]any{
		"dim": "Region", "k": 2, "by": "median",
	}, http.StatusBadRequest)
}

// TestGatewayPartialAnswers kills one node and pins both failure modes:
// strict 502 naming the node, and allow_partial's explicitly-marked merge
// over the survivors — checked value-for-value against the surviving
// stores, so a silently-wrong total cannot pass.
func TestGatewayPartialAnswers(t *testing.T) {
	tc, gw := gwFixture(t)
	tuples := testTuples(150)
	if err := tc.coord.Append(tuples); err != nil {
		t.Fatal(err)
	}

	dead := tc.nodes[1]
	dead.srv.Close()

	// Strict: 502, error names the dead node.
	resp := postJSON(t, gw.URL+"/query/groupby", map[string]any{"dim": "Kind"}, http.StatusBadGateway)
	if !strings.Contains(resp["error"].(string), dead.srv.URL) {
		t.Fatalf("502 error %v does not name %s", resp["error"], dead.srv.URL)
	}

	// allow_partial: 200, marked, and equal to the survivors' true union.
	wantG := make(map[string]dwarf.Aggregate)
	for _, tn := range []*testNode{tc.nodes[0], tc.nodes[2]} {
		g, err := tn.store.GroupBy(2, allSels())
		if err != nil {
			t.Fatal(err)
		}
		wantG = dwarf.MergeGroupMaps(wantG, g)
	}
	resp = postJSON(t, gw.URL+"/query/groupby",
		map[string]any{"dim": "Kind", "allow_partial": true}, http.StatusOK)
	if resp["partial"] != true {
		t.Fatalf("partial answer not marked: %v", resp)
	}
	failedNodes := resp["failed_nodes"].([]any)
	if len(failedNodes) != 1 || failedNodes[0] != dead.srv.URL {
		t.Fatalf("failed_nodes %v, want [%s]", failedNodes, dead.srv.URL)
	}
	groups := resp["groups"].(map[string]any)
	if len(groups) != len(wantG) {
		t.Fatalf("partial groupby: %d groups, survivors hold %d", len(groups), len(wantG))
	}
	for k, wa := range wantG {
		if got := aggOf(t, groups[k]); got != wa {
			t.Fatalf("partial groupby[%s]: %+v, survivors %+v", k, got, wa)
		}
	}

	// Point routing interacts with the dead node three ways. A fully bound
	// point is asked of its single owning node, so a cell owned by a
	// survivor answers completely — no partial marking — while one owned
	// by the dead node fails strict and is marked after the re-run over
	// the survivor subset (which scatters: the subset is not the partition
	// map). A wildcard point always scatters and so always answers
	// partially here.
	var aliveKeys, deadKeys []string
	for _, tu := range tuples {
		if NodeFor(tu.Dims, len(tc.nodes)) == 1 {
			deadKeys = tu.Dims
		} else {
			aliveKeys = tu.Dims
		}
	}
	if aliveKeys == nil || deadKeys == nil {
		t.Fatal("fixture tuples do not cover both owners")
	}
	resp = postJSON(t, gw.URL+"/query/point",
		map[string]any{"keys": aliveKeys, "allow_partial": true}, http.StatusOK)
	if resp["partial"] == true {
		t.Fatalf("survivor-owned point wrongly marked partial: %v", resp)
	}
	if aggOf(t, resp["aggregate"]).Count == 0 {
		t.Fatalf("survivor-owned point lost its cell: %v", resp)
	}
	resp = postJSON(t, gw.URL+"/query/point",
		map[string]any{"keys": deadKeys, "allow_partial": true}, http.StatusOK)
	if resp["partial"] != true {
		t.Fatalf("dead-owned point not marked partial: %v", resp)
	}
	resp = postJSON(t, gw.URL+"/query/point",
		map[string]any{"keys": []string{dwarf.All, "", ""}, "allow_partial": true}, http.StatusOK)
	if resp["partial"] != true {
		t.Fatalf("wildcard point not marked partial: %v", resp)
	}

	// All nodes dead: allow_partial does NOT fabricate an empty answer.
	tc.nodes[0].srv.Close()
	tc.nodes[2].srv.Close()
	postJSON(t, gw.URL+"/query/groupby",
		map[string]any{"dim": "Kind", "allow_partial": true}, http.StatusBadGateway)
}
