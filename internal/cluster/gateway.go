package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/dwarf"
)

// Gateway is the cluster's client-facing HTTP surface (cmd/dwarfgw): the
// same query endpoints dwarfd serves, answered by coordinator
// scatter-gather, plus hash-routed /ingest and a /cluster/stats probe.
//
// Failure semantics per request: by default a node failure fails the query
// with 502 and an error naming every failed node. A request carrying
// "allow_partial": true instead gets the merge over the surviving nodes,
// explicitly marked with "partial": true and the failed node list — the
// two responses are never confusable, and a silently short total is
// impossible by construction.
type Gateway struct {
	coord      *Coordinator
	groupLimit int
}

// DefaultGroupLimit caps groups per keyed gateway response, like dwarfd's.
const DefaultGroupLimit = 1000

// NewGateway wraps a coordinator. groupLimit <= 0 means DefaultGroupLimit.
func NewGateway(c *Coordinator, groupLimit int) *Gateway {
	if groupLimit <= 0 {
		groupLimit = DefaultGroupLimit
	}
	return &Gateway{coord: c, groupLimit: groupLimit}
}

// Handler returns the gateway's route table.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query/point", g.handlePoint)
	mux.HandleFunc("/query/range", g.handleRange)
	mux.HandleFunc("/query/groupby", g.handleGroupBy)
	mux.HandleFunc("/query/pivot", g.handlePivot)
	mux.HandleFunc("/query/topk", g.handleTopK)
	mux.HandleFunc("/query/rollup", g.handleRollUp)
	mux.HandleFunc("/ingest", g.handleIngest)
	mux.HandleFunc("/cluster/stats", g.handleStats)
	return mux
}

// aggJSON mirrors dwarfd's aggregate envelope.
type aggJSON struct {
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Avg   float64 `json:"avg"`
}

func toAggJSON(a dwarf.Aggregate) aggJSON {
	return aggJSON{Sum: a.Sum, Count: a.Count, Min: a.Min, Max: a.Max, Avg: a.Avg()}
}

// partialMark carries the explicit marking of an allow_partial answer that
// is missing nodes; embedded empty in complete answers (omitted fields).
type partialMark struct {
	Partial     bool     `json:"partial,omitempty"`
	FailedNodes []string `json:"failed_nodes,omitempty"`
}

func mark(failed []*NodeError) partialMark {
	return partialMark{Partial: len(failed) > 0, FailedNodes: failedNames(failed)}
}

func (g *Gateway) sendJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (g *Gateway) fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var se *scatterError
	var be *badReqError
	switch {
	case errors.As(err, &se):
		status = http.StatusBadGateway
	case errors.As(err, &be):
		status = http.StatusBadRequest
	}
	g.sendJSON(w, status, map[string]string{"error": err.Error()})
}

type badReqError struct{ msg string }

func (e *badReqError) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &badReqError{msg: fmt.Sprintf(format, args...)}
}

func (g *Gateway) decode(w http.ResponseWriter, r *http.Request, v any) error {
	if r.Method != http.MethodPost {
		return badReq("POST a JSON body to %s", r.URL.Path)
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badReq("bad request body: %v", err)
	}
	return nil
}

// selectors converts wire selector specs, padding trailing ALL like dwarfd.
func (g *Gateway) selectors(specs []wireSelector) ([]dwarf.Selector, error) {
	ndims := g.coord.NumDims()
	if len(specs) > ndims {
		return nil, badReq("got %d selectors, cluster has %d dimensions", len(specs), ndims)
	}
	out := make([]dwarf.Selector, ndims)
	for i, sp := range specs {
		switch {
		case sp.Lo != nil || sp.Hi != nil:
			if sp.Lo == nil || sp.Hi == nil || len(sp.Keys) > 0 {
				return nil, badReq("selector %d: a range needs lo and hi and no keys", i)
			}
			out[i] = dwarf.SelectRange(*sp.Lo, *sp.Hi)
		case len(sp.Keys) > 0:
			out[i] = dwarf.SelectKeys(sp.Keys...)
		}
	}
	return out, nil
}

func (g *Gateway) dimIndex(field string) (int, error) {
	if n, err := strconv.Atoi(field); err == nil {
		if n < 0 || n >= g.coord.NumDims() {
			return -1, badReq("dimension index %d out of range", n)
		}
		return n, nil
	}
	for i, d := range g.coord.dims {
		if d == field {
			return i, nil
		}
	}
	return -1, badReq("unknown dimension %q (have %v)", field, g.coord.dims)
}

// clamp bounds one keyed response page.
func (g *Gateway) clamp(limit, offset int) (int, int) {
	if limit <= 0 || limit > g.groupLimit {
		limit = g.groupLimit
	}
	if offset < 0 {
		offset = 0
	}
	return limit, offset
}

func window[T any](rows []T, offset, limit int) ([]T, bool) {
	if offset >= len(rows) {
		return []T{}, false
	}
	rows = rows[offset:]
	if len(rows) > limit {
		return rows[:limit], true
	}
	return rows, false
}

// nodesFor gives every handler one consistent node snapshot per request.
func (g *Gateway) nodesFor() []*node { return g.coord.snapshot() }

// ---- query handlers ----

type pointReq struct {
	Keys         []string `json:"keys"`
	AllowPartial bool     `json:"allow_partial,omitempty"`
}

func (g *Gateway) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req pointReq
	if r.Method == http.MethodGet {
		req.Keys = r.URL.Query()["key"]
	} else if err := g.decode(w, r, &req); err != nil {
		g.fail(w, err)
		return
	}
	agg, failed, err := runPartialAware(g, req.AllowPartial,
		func(nodes []*node) (dwarf.Aggregate, []*NodeError, error) {
			return g.coord.point(nodes, req.Keys)
		})
	if err != nil {
		g.fail(w, err)
		return
	}
	g.sendJSON(w, http.StatusOK, struct {
		Aggregate aggJSON  `json:"aggregate"`
		Keys      []string `json:"keys"`
		partialMark
	}{toAggJSON(agg), req.Keys, mark(failed)})
}

type rangeReq struct {
	Selectors    []wireSelector `json:"selectors"`
	AllowPartial bool           `json:"allow_partial,omitempty"`
}

func (g *Gateway) handleRange(w http.ResponseWriter, r *http.Request) {
	var req rangeReq
	if err := g.decode(w, r, &req); err != nil {
		g.fail(w, err)
		return
	}
	sels, err := g.selectors(req.Selectors)
	if err != nil {
		g.fail(w, err)
		return
	}
	agg, failed, err := runPartialAware(g, req.AllowPartial,
		func(nodes []*node) (dwarf.Aggregate, []*NodeError, error) {
			return g.coord.rangeQ(nodes, sels)
		})
	if err != nil {
		g.fail(w, err)
		return
	}
	g.sendJSON(w, http.StatusOK, struct {
		Aggregate aggJSON `json:"aggregate"`
		partialMark
	}{toAggJSON(agg), mark(failed)})
}

type groupByReq struct {
	Dim          string         `json:"dim"`
	Selectors    []wireSelector `json:"selectors,omitempty"`
	Limit        int            `json:"limit,omitempty"`
	Offset       int            `json:"offset,omitempty"`
	AllowPartial bool           `json:"allow_partial,omitempty"`
}

func (g *Gateway) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	var req groupByReq
	if err := g.decode(w, r, &req); err != nil {
		g.fail(w, err)
		return
	}
	dim, err := g.dimIndex(req.Dim)
	if err != nil {
		g.fail(w, err)
		return
	}
	sels, err := g.selectors(req.Selectors)
	if err != nil {
		g.fail(w, err)
		return
	}
	groups, failed, err := g.grouped(req.AllowPartial, dim, sels)
	if err != nil {
		g.fail(w, err)
		return
	}
	limit, offset := g.clamp(req.Limit, req.Offset)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pageKeys, truncated := window(keys, offset, limit)
	page := make(map[string]aggJSON, len(pageKeys))
	for _, k := range pageKeys {
		page[k] = toAggJSON(groups[k])
	}
	g.sendJSON(w, http.StatusOK, struct {
		Dim         string             `json:"dim"`
		Groups      map[string]aggJSON `json:"groups"`
		TotalGroups int                `json:"total_groups"`
		Offset      int                `json:"offset"`
		Limit       int                `json:"limit"`
		Truncated   bool               `json:"truncated"`
		partialMark
	}{g.coord.dims[dim], page, len(groups), offset, limit, truncated, mark(failed)})
}

type topKReq struct {
	Dim          string         `json:"dim"`
	K            int            `json:"k"`
	By           string         `json:"by,omitempty"`
	Threshold    *float64       `json:"threshold,omitempty"`
	Selectors    []wireSelector `json:"selectors,omitempty"`
	Limit        int            `json:"limit,omitempty"`
	Offset       int            `json:"offset,omitempty"`
	AllowPartial bool           `json:"allow_partial,omitempty"`
}

type entryJSON struct {
	Key       string  `json:"key"`
	Metric    float64 `json:"metric"`
	Aggregate aggJSON `json:"aggregate"`
}

func (g *Gateway) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topKReq
	if err := g.decode(w, r, &req); err != nil {
		g.fail(w, err)
		return
	}
	dim, err := g.dimIndex(req.Dim)
	if err != nil {
		g.fail(w, err)
		return
	}
	sels, err := g.selectors(req.Selectors)
	if err != nil {
		g.fail(w, err)
		return
	}
	by, err := dwarf.ParseMetric(req.By)
	if err != nil {
		g.fail(w, badReq("%v", err))
		return
	}
	spec := dwarf.TopKSpec{K: req.K, By: by}
	if req.Threshold != nil {
		spec.Threshold, spec.HasThreshold = *req.Threshold, true
	}
	// Full-map-before-cut over the network: merge every node's complete
	// group map, then rank and cut once.
	groups, failed, err := g.grouped(req.AllowPartial, dim, sels)
	if err != nil {
		g.fail(w, err)
		return
	}
	entries := dwarf.TopKFromGroups(groups, spec)
	limit, offset := g.clamp(req.Limit, req.Offset)
	pageEntries, truncated := window(entries, offset, limit)
	out := make([]entryJSON, len(pageEntries))
	for i, e := range pageEntries {
		out[i] = entryJSON{Key: e.Key, Metric: by.Of(e.Agg), Aggregate: toAggJSON(e.Agg)}
	}
	g.sendJSON(w, http.StatusOK, struct {
		Dim       string      `json:"dim"`
		By        string      `json:"by"`
		Entries   []entryJSON `json:"entries"`
		Total     int         `json:"total_entries"`
		Offset    int         `json:"offset"`
		Limit     int         `json:"limit"`
		Truncated bool        `json:"truncated"`
		partialMark
	}{g.coord.dims[dim], by.String(), out, len(entries), offset, limit, truncated, mark(failed)})
}

type pivotReq struct {
	Dims         []string       `json:"dims,omitempty"`
	Keep         []string       `json:"keep,omitempty"` // rollup spelling
	Selectors    []wireSelector `json:"selectors,omitempty"`
	Limit        int            `json:"limit,omitempty"`
	Offset       int            `json:"offset,omitempty"`
	AllowPartial bool           `json:"allow_partial,omitempty"`
}

type rowJSON struct {
	Keys      []string `json:"keys"`
	Aggregate aggJSON  `json:"aggregate"`
}

func (g *Gateway) handlePivot(w http.ResponseWriter, r *http.Request)  { g.pivotLike(w, r, false) }
func (g *Gateway) handleRollUp(w http.ResponseWriter, r *http.Request) { g.pivotLike(w, r, true) }

func (g *Gateway) pivotLike(w http.ResponseWriter, r *http.Request, rollup bool) {
	var req pivotReq
	if err := g.decode(w, r, &req); err != nil {
		g.fail(w, err)
		return
	}
	fields := req.Dims
	if rollup {
		fields = req.Keep
	}
	if len(fields) == 0 {
		g.fail(w, badReq("no dimensions to group by"))
		return
	}
	seen := make(map[int]bool, len(fields))
	dims := make([]int, 0, len(fields))
	for _, f := range fields {
		d, err := g.dimIndex(f)
		if err != nil {
			g.fail(w, err)
			return
		}
		if seen[d] {
			if rollup {
				continue // keep is a set, like query.RollUp's
			}
			g.fail(w, badReq("pivot dimension %q named twice", f))
			return
		}
		seen[d] = true
		dims = append(dims, d)
	}
	if rollup {
		// RollUp keeps store dimension order, like query.RollUp.
		sort.Ints(dims)
	}
	sels, err := g.selectors(req.Selectors)
	if err != nil {
		g.fail(w, err)
		return
	}
	rows, failed, err := runPartialAware(g, req.AllowPartial,
		func(nodes []*node) ([]dwarf.PivotGroup, []*NodeError, error) {
			return g.coord.pivot(nodes, dims, sels)
		})
	if err != nil {
		g.fail(w, err)
		return
	}
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = g.coord.dims[d]
	}
	limit, offset := g.clamp(req.Limit, req.Offset)
	pageRows, truncated := window(rows, offset, limit)
	out := make([]rowJSON, len(pageRows))
	for i, row := range pageRows {
		out[i] = rowJSON{Keys: row.Keys, Aggregate: toAggJSON(row.Agg)}
	}
	g.sendJSON(w, http.StatusOK, struct {
		Dims      []string  `json:"dims"`
		Groups    []rowJSON `json:"groups"`
		Total     int       `json:"total_groups"`
		Offset    int       `json:"offset"`
		Limit     int       `json:"limit"`
		Truncated bool      `json:"truncated"`
		partialMark
	}{names, out, len(rows), offset, limit, truncated, mark(failed)})
}

// ---- ingest + stats ----

type ingestReq struct {
	Tuples []wireTuple `json:"tuples"`
}

func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestReq
	if err := g.decode(w, r, &req); err != nil {
		g.fail(w, err)
		return
	}
	if len(req.Tuples) == 0 {
		g.fail(w, badReq("empty batch"))
		return
	}
	ndims := g.coord.NumDims()
	tuples := make([]dwarf.Tuple, len(req.Tuples))
	for i, tu := range req.Tuples {
		if len(tu.Dims) != ndims {
			g.fail(w, badReq("tuple %d has %d dims, cluster has %d", i, len(tu.Dims), ndims))
			return
		}
		tuples[i] = dwarf.Tuple{Dims: tu.Dims, Measure: tu.Measure}
	}
	if err := g.coord.Append(tuples); err != nil {
		g.fail(w, err)
		return
	}
	g.sendJSON(w, http.StatusOK, map[string]any{"appended": len(tuples)})
}

type nodeStat struct {
	Node       string `json:"node"`
	OK         bool   `json:"ok"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	nodes := g.nodesFor()
	stats := make([]nodeStat, len(nodes))
	type genRes struct {
		gen uint64
		err error
	}
	parts, _ := scatter(nodes, func(n *node) (genRes, error) {
		gen, err := n.generation()
		return genRes{gen: gen, err: err}, nil
	})
	for i, p := range parts {
		stats[i] = nodeStat{Node: nodes[i].base, OK: p.err == nil, Generation: p.gen}
		if p.err != nil {
			stats[i].Error = p.err.Error()
		}
	}
	g.sendJSON(w, http.StatusOK, map[string]any{
		"dims":  g.coord.dims,
		"nodes": stats,
	})
}

// ---- partial-answer plumbing ----

// runPartialAware runs one scatter-shaped query with the gateway failure
// policy. Strict (allowPartial false): any node failure is the caller's
// error, verbatim. allow_partial: on failure the query re-runs over the
// surviving nodes and the ORIGINAL failed list is returned for explicit
// marking — unless no node survived or the re-run itself failed, which is
// an error again (an answer over zero nodes is not a partial answer).
func runPartialAware[T any](g *Gateway, allowPartial bool,
	run func([]*node) (T, []*NodeError, error)) (T, []*NodeError, error) {

	nodes := g.nodesFor()
	res, failed, err := run(nodes)
	if err == nil || !allowPartial {
		return res, failed, err
	}
	alive := surviving(nodes, failed)
	if len(alive) == 0 {
		return res, failed, err
	}
	res, _, err = run(alive)
	if err != nil {
		var zero T
		return zero, failed, err
	}
	return res, failed, nil
}

// grouped is the shared GroupBy/TopK scatter under the failure policy.
func (g *Gateway) grouped(allowPartial bool, dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, []*NodeError, error) {
	return runPartialAware(g, allowPartial,
		func(nodes []*node) (map[string]dwarf.Aggregate, []*NodeError, error) {
			return g.coord.groupBy(nodes, dim, sels)
		})
}

// surviving filters the failed nodes out of a snapshot.
func surviving(nodes []*node, failed []*NodeError) []*node {
	bad := make(map[string]bool, len(failed))
	for _, f := range failed {
		bad[f.Node] = true
	}
	out := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if !bad[n.base] {
			out = append(out, n)
		}
	}
	return out
}
