package cluster

// NodeFor maps one tuple's dimension keys to its home node index in an
// n-node cluster: FNV-1a over every key with a length prefix, mod n. The
// function is pure and stable — the same keys always land on the same
// node, which is what makes per-node cubes partials of the logical cube:
// every tuple of a given key combination folds into exactly one node, so
// aggregates for any cell are disjoint across nodes and merge losslessly.
//
// The length prefix keeps distinct key lists from colliding by
// concatenation ({"ab","c"} vs {"a","bc"}); a separator byte alone would
// still collide on keys containing the separator.
func NodeFor(keys []string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, k := range keys {
		l := len(k)
		h ^= uint64(l & 0xff)
		h *= prime64
		h ^= uint64(l >> 8 & 0xff)
		h *= prime64
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime64
		}
	}
	return int(h % uint64(n))
}
