package dwarf

// Stats summarizes a cube's size: the node_count / cell_count the paper's
// DWARF_Schema column family records, plus an in-memory byte estimate.
type Stats struct {
	// Nodes is the number of distinct DWARF nodes.
	Nodes int
	// Cells is the number of key cells across distinct nodes (ALL cells
	// excluded; see AllCells).
	Cells int
	// AllCells is the number of ALL cells, one per node.
	AllCells int
	// SourceTuples is the number of fact tuples folded in.
	SourceTuples int
	// EstBytes is a rough in-memory footprint estimate.
	EstBytes int64
}

// TotalCells returns key cells plus ALL cells, the cell_count convention
// used when persisting a schema row.
func (s Stats) TotalCells() int { return s.Cells + s.AllCells }

const (
	nodeOverheadBytes = 64 // Node struct + slice header + map slot share
	cellOverheadBytes = 56 // Cell struct: string header, pointer, aggregate
)

// Stats traverses the cube once and counts distinct nodes and cells.
func (c *Cube) Stats() Stats {
	st := Stats{SourceTuples: c.numTuples}
	c.Visit(func(n *Node) bool {
		st.Nodes++
		st.AllCells++
		st.Cells += len(n.Cells)
		st.EstBytes += nodeOverheadBytes
		for i := range n.Cells {
			st.EstBytes += cellOverheadBytes + int64(len(n.Cells[i].Key))
		}
		return true
	})
	return st
}
