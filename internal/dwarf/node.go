// Package dwarf implements the DWARF data-cube structure of Sismanis et al.
// (SIGMOD 2002) as used by Scriney & Roantree, "Efficient Cube Construction
// for Smart City Data" (EDBT/ICDT 2016 Workshops).
//
// A DWARF is a tree of Nodes, one layer per dimension. A Node is a container
// of Cells that share the same parent; a Cell carries a dimension key and
// either a pointer to the Node of the next dimension level (non-leaf) or an
// aggregate value (leaf). Every node additionally owns an ALL cell holding
// the aggregate over all of its cells. Prefix coalescing (shared prefixes
// stored once) and suffix coalescing (identical sub-dwarfs shared by
// pointer) make the structure a compressed representation of the full cube:
// every group-by of the fact table can be answered by one root-to-leaf walk.
package dwarf

import "sort"

// All is the reserved wildcard key. Passing All for a dimension in a query
// follows the ALL cell of the node at that level, i.e. aggregates over the
// whole dimension. Source tuples must not use All as a dimension key.
const All = "*"

// Node is a container for the group of cells sharing one parent path. Nodes
// may be pointed to by multiple parent cells (the multiple-inheritance the
// paper's §4 traversal guards against), which is exactly what suffix
// coalescing produces.
type Node struct {
	// Level is the 0-based dimension index this node belongs to.
	Level int
	// Leaf reports whether this node is at the last dimension level; leaf
	// cells hold aggregates instead of child pointers.
	Leaf bool
	// Cells is sorted by Key. It never contains the ALL cell.
	Cells []Cell
	// AllChild is the sub-dwarf aggregating over this dimension (non-leaf
	// nodes). It is nil only for an empty cube's root chain.
	AllChild *Node
	// AllAgg is the aggregate over all cells (leaf nodes).
	AllAgg Aggregate

	// seq is a construction-order identifier, unique per distinct node
	// within a cube. It keys hash-consing and gives codecs a stable id.
	seq int64
}

// Cell is a single entry of a Node: a dimension key plus either the child
// node of the next level or, at the leaf level, the aggregate value derived
// from the fact measures.
type Cell struct {
	Key   string
	Child *Node     // non-leaf levels
	Agg   Aggregate // leaf level
}

// Seq returns the node's construction-order identifier. Distinct nodes of
// the same cube have distinct sequence numbers.
func (n *Node) Seq() int64 { return n.seq }

// NumCells returns the number of key cells (the ALL cell excluded).
func (n *Node) NumCells() int { return len(n.Cells) }

// find locates key among the node's sorted cells.
func (n *Node) find(key string) (int, bool) {
	i := sort.Search(len(n.Cells), func(i int) bool { return n.Cells[i].Key >= key })
	if i < len(n.Cells) && n.Cells[i].Key == key {
		return i, true
	}
	return i, false
}

// Lookup returns the cell for key, if present.
func (n *Node) Lookup(key string) (*Cell, bool) {
	if i, ok := n.find(key); ok {
		return &n.Cells[i], true
	}
	return nil, false
}

// Keys returns the node's cell keys in sorted order.
func (n *Node) Keys() []string {
	out := make([]string, len(n.Cells))
	for i := range n.Cells {
		out[i] = n.Cells[i].Key
	}
	return out
}
