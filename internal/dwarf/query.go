package dwarf

import (
	"fmt"
	"sort"
)

// Point answers a point or ALL-wildcard query: one key per dimension, where
// the reserved All key aggregates over that dimension. A combination absent
// from the cube yields the zero Aggregate (Count == 0); errors are reserved
// for malformed queries.
func (c *Cube) Point(keys ...string) (Aggregate, error) {
	if len(keys) != len(c.dims) {
		return Aggregate{}, fmt.Errorf("%w: got %d keys, cube has %d dimensions",
			ErrBadQuery, len(keys), len(c.dims))
	}
	cur := c.root
	for l := 0; l < len(c.dims); l++ {
		if cur == nil {
			return Aggregate{}, nil
		}
		if keys[l] == All {
			if cur.Leaf {
				return cur.AllAgg, nil
			}
			cur = cur.AllChild
			continue
		}
		cell, ok := cur.Lookup(keys[l])
		if !ok {
			return Aggregate{}, nil
		}
		if cur.Leaf {
			return cell.Agg, nil
		}
		cur = cell.Child
	}
	return Aggregate{}, nil
}

// MustPoint is Point for callers that know the key count is right (examples,
// benchmarks). It panics on malformed queries.
func (c *Cube) MustPoint(keys ...string) Aggregate {
	agg, err := c.Point(keys...)
	if err != nil {
		panic(err)
	}
	return agg
}

// Selector restricts one dimension of a range query. The zero Selector
// matches everything via the ALL cell (no enumeration). A Selector may
// instead enumerate explicit keys or an inclusive key range [Lo, Hi].
type Selector struct {
	Keys     []string
	Lo, Hi   string
	HasRange bool
}

// SelectAll matches the whole dimension through the ALL cell.
func SelectAll() Selector { return Selector{} }

// SelectKeys matches an explicit set of keys.
func SelectKeys(keys ...string) Selector { return Selector{Keys: keys} }

// SelectRange matches keys with lo <= key <= hi.
func SelectRange(lo, hi string) Selector { return Selector{Lo: lo, Hi: hi, HasRange: true} }

// isAll reports whether the selector can be answered via the ALL cell.
func (s Selector) isAll() bool { return !s.HasRange && len(s.Keys) == 0 }

// matchIndexes returns the cell indexes of n matched by the selector.
func (s Selector) matchIndexes(n *Node) []int {
	switch {
	case s.isAll():
		out := make([]int, len(n.Cells))
		for i := range out {
			out[i] = i
		}
		return out
	case s.HasRange:
		lo := sort.Search(len(n.Cells), func(i int) bool { return n.Cells[i].Key >= s.Lo })
		var out []int
		for i := lo; i < len(n.Cells) && n.Cells[i].Key <= s.Hi; i++ {
			out = append(out, i)
		}
		return out
	default:
		var out []int
		seen := make(map[int]bool, len(s.Keys))
		for _, k := range s.Keys {
			if i, ok := n.find(k); ok && !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
		return out
	}
}

// Range aggregates over the sub-cube addressed by one selector per
// dimension. Pure-ALL dimensions are answered through ALL cells without
// enumeration, matching how a DWARF serves group-bys.
func (c *Cube) Range(sels []Selector) (Aggregate, error) {
	if len(sels) != len(c.dims) {
		return Aggregate{}, fmt.Errorf("%w: got %d selectors, cube has %d dimensions",
			ErrBadQuery, len(sels), len(c.dims))
	}
	return rangeWalk(c.root, sels), nil
}

func rangeWalk(n *Node, sels []Selector) Aggregate {
	if n == nil {
		return Aggregate{}
	}
	sel := sels[0]
	if sel.isAll() {
		if n.Leaf {
			return n.AllAgg
		}
		return rangeWalk(n.AllChild, sels[1:])
	}
	var agg Aggregate
	for _, i := range sel.matchIndexes(n) {
		if n.Leaf {
			agg = MergeAggregates(agg, n.Cells[i].Agg)
		} else {
			agg = MergeAggregates(agg, rangeWalk(n.Cells[i].Child, sels[1:]))
		}
	}
	return agg
}

// GroupBy returns, for the dimension at index dim, the aggregate of every
// key under the restriction of sels (sels[dim] is ignored and replaced by
// each key in turn).
func (c *Cube) GroupBy(dim int, sels []Selector) (map[string]Aggregate, error) {
	if dim < 0 || dim >= len(c.dims) {
		return nil, fmt.Errorf("%w: group-by dimension %d out of range", ErrBadQuery, dim)
	}
	if len(sels) != len(c.dims) {
		return nil, fmt.Errorf("%w: got %d selectors, cube has %d dimensions",
			ErrBadQuery, len(sels), len(c.dims))
	}
	out := make(map[string]Aggregate)
	groupWalk(c.root, sels, dim, "", out)
	return out, nil
}

func groupWalk(n *Node, sels []Selector, dim int, group string, out map[string]Aggregate) {
	if n == nil {
		return
	}
	depth := n.Level
	sel := sels[depth]
	if depth != dim && sel.isAll() {
		if n.Leaf {
			out[group] = MergeAggregates(out[group], n.AllAgg)
			return
		}
		groupWalk(n.AllChild, sels, dim, group, out)
		return
	}
	for _, i := range sel.matchIndexes(n) {
		g := group
		if depth == dim {
			g = n.Cells[i].Key
		}
		if n.Leaf {
			out[g] = MergeAggregates(out[g], n.Cells[i].Agg)
		} else {
			groupWalk(n.Cells[i].Child, sels, dim, g, out)
		}
	}
}

// Tuples enumerates the cube's base facts in sorted dimension order, with
// duplicate key combinations already merged into one aggregate. The callback
// receives a reused dims slice; copy it to retain.
func (c *Cube) Tuples(fn func(dims []string, agg Aggregate) bool) {
	dims := make([]string, len(c.dims))
	tupleWalk(c.root, dims, 0, fn)
}

func tupleWalk(n *Node, dims []string, depth int, fn func([]string, Aggregate) bool) bool {
	if n == nil {
		return true
	}
	for i := range n.Cells {
		dims[depth] = n.Cells[i].Key
		if n.Leaf {
			if !fn(dims, n.Cells[i].Agg) {
				return false
			}
		} else if !tupleWalk(n.Cells[i].Child, dims, depth+1, fn) {
			return false
		}
	}
	return true
}

// Extract materializes the sub-cube matched by sels as a new DWARF over the
// same dimensions, with FromQuery set — the paper's is_cube flag. The
// extracted cube carries merged aggregates as its leaf measures (sums).
func (c *Cube) Extract(sels []Selector) (*Cube, error) {
	if len(sels) != len(c.dims) {
		return nil, fmt.Errorf("%w: got %d selectors, cube has %d dimensions",
			ErrBadQuery, len(sels), len(c.dims))
	}
	var tuples []Tuple
	dims := make([]string, len(c.dims))
	extractWalk(c.root, sels, dims, &tuples)
	sub, err := New(c.dims, tuples)
	if err != nil {
		return nil, err
	}
	sub.FromQuery = true
	return sub, nil
}

func extractWalk(n *Node, sels []Selector, dims []string, out *[]Tuple) {
	if n == nil {
		return
	}
	sel := sels[n.Level]
	for _, i := range sel.matchIndexes(n) {
		dims[n.Level] = n.Cells[i].Key
		if n.Leaf {
			*out = append(*out, Tuple{Dims: append([]string(nil), dims...), Measure: n.Cells[i].Agg.Sum})
		} else {
			extractWalk(n.Cells[i].Child, sels, dims, out)
		}
	}
}
