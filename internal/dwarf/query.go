package dwarf

// The query methods on *Cube are thin wrappers over the unified kernel
// (kernel.go), which walks the cube through its Source implementation
// (source.go). The same kernel serves *CubeView, so both representations
// answer every shape from literally the same code.

// Point answers a point or ALL-wildcard query: one key per dimension, where
// the reserved All key aggregates over that dimension. A combination absent
// from the cube yields the zero Aggregate (Count == 0); errors are reserved
// for malformed queries.
func (c *Cube) Point(keys ...string) (Aggregate, error) {
	return QueryPoint(c, keys...)
}

// MustPoint is Point for callers that know the key count is right (examples,
// benchmarks). It panics on malformed queries.
func (c *Cube) MustPoint(keys ...string) Aggregate {
	agg, err := c.Point(keys...)
	if err != nil {
		panic(err)
	}
	return agg
}

// Selector restricts one dimension of a range query. The zero Selector
// matches everything via the ALL cell (no enumeration). A Selector may
// instead enumerate explicit keys or an inclusive key range [Lo, Hi].
type Selector struct {
	Keys     []string
	Lo, Hi   string
	HasRange bool
}

// SelectAll matches the whole dimension through the ALL cell.
func SelectAll() Selector { return Selector{} }

// SelectKeys matches an explicit set of keys.
func SelectKeys(keys ...string) Selector { return Selector{Keys: keys} }

// SelectRange matches keys with lo <= key <= hi.
func SelectRange(lo, hi string) Selector { return Selector{Lo: lo, Hi: hi, HasRange: true} }

// isAll reports whether the selector can be answered via the ALL cell.
func (s Selector) isAll() bool { return !s.HasRange && len(s.Keys) == 0 }

// Range aggregates over the sub-cube addressed by one selector per
// dimension. Pure-ALL dimensions are answered through ALL cells without
// enumeration, matching how a DWARF serves group-bys.
func (c *Cube) Range(sels []Selector) (Aggregate, error) {
	return QueryRange(c, sels)
}

// GroupBy returns, for the dimension at index dim, the aggregate of every
// key under the restriction of sels (sels[dim] is ignored and replaced by
// each key in turn).
func (c *Cube) GroupBy(dim int, sels []Selector) (map[string]Aggregate, error) {
	return QueryGroupBy(c, dim, sels)
}

// Pivot is the multi-dimension GroupBy: every distinct key combination over
// the dimensions in dims under the restriction of sels, as sorted rows.
func (c *Cube) Pivot(dims []int, sels []Selector) ([]PivotGroup, error) {
	return QueryPivot(c, dims, sels)
}

// TopK ranks the groups of the dimension at index dim by spec's metric and
// returns the surviving entries, best first (iceberg threshold and K cut
// applied after grouping).
func (c *Cube) TopK(dim int, sels []Selector, spec TopKSpec) ([]GroupEntry, error) {
	return QueryTopK(c, dim, sels, spec)
}

// Tuples enumerates the cube's base facts in sorted dimension order, with
// duplicate key combinations already merged into one aggregate. The callback
// receives a reused dims slice; copy it to retain.
func (c *Cube) Tuples(fn func(dims []string, agg Aggregate) bool) {
	// The node-graph source cannot fail mid-walk.
	_ = QueryTuples(c, fn)
}

// Extract materializes the sub-cube matched by sels as a new DWARF over the
// same dimensions, with FromQuery set — the paper's is_cube flag. The
// extracted cube carries merged aggregates as its leaf measures (sums).
func (c *Cube) Extract(sels []Selector) (*Cube, error) {
	if len(sels) != len(c.dims) {
		return nil, badQueryArity(len(sels), len(c.dims))
	}
	dims := make([]int, len(c.dims))
	for i := range dims {
		dims[i] = i
	}
	rows, err := QueryPivot(c, dims, sels)
	if err != nil {
		return nil, err
	}
	tuples := make([]Tuple, len(rows))
	for i, row := range rows {
		tuples[i] = Tuple{Dims: row.Keys, Measure: row.Agg.Sum}
	}
	sub, err := New(c.dims, tuples)
	if err != nil {
		return nil, err
	}
	sub.FromQuery = true
	return sub, nil
}
