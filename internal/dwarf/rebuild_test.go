package dwarf

import (
	"errors"
	"testing"
)

// buildRawPair wires a 2-level node graph by hand, as a storage mapper
// would during Load.
func buildRawPair() (*Node, *Node) {
	leaf := NewNode(2)
	leaf.Cells = append(leaf.Cells, Cell{Key: "x", Agg: NewAggregate(1)})
	leaf.AllAgg = NewAggregate(1)
	root := NewNode(1)
	root.Cells = append(root.Cells, Cell{Key: "a", Child: leaf})
	root.AllChild = leaf
	return root, leaf
}

func TestFromPartsAssignsLevelsAndSorts(t *testing.T) {
	root, _ := buildRawPair()
	// Add a second cell out of order: FromParts must sort.
	leaf2 := NewNode(3)
	leaf2.Cells = append(leaf2.Cells, Cell{Key: "y", Agg: NewAggregate(2)})
	leaf2.AllAgg = NewAggregate(2)
	root.Cells = append(root.Cells, Cell{Key: "A", Child: leaf2}) // "A" < "a"
	c, err := FromParts([]string{"d1", "d2"}, root, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.FromQuery || c.NumSourceTuples() != 2 {
		t.Errorf("metadata: fromQuery=%t tuples=%d", c.FromQuery, c.NumSourceTuples())
	}
	if got := c.Root().Keys(); got[0] != "A" || got[1] != "a" {
		t.Errorf("cells unsorted after FromParts: %v", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	agg, _ := c.Point("a", "x")
	if agg.Sum != 1 {
		t.Errorf("query after rebuild: %v", agg)
	}
}

func TestFromPartsRejectsCorruptGraphs(t *testing.T) {
	// Nil root.
	if _, err := FromParts([]string{"a"}, nil, 0, false); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("nil root: %v", err)
	}
	// No dims.
	root, _ := buildRawPair()
	if _, err := FromParts(nil, root, 0, false); !errors.Is(err, ErrNoDimensions) {
		t.Errorf("no dims: %v", err)
	}
	// Too deep: 2-level graph in a 1-dim cube.
	root, _ = buildRawPair()
	if _, err := FromParts([]string{"only"}, root, 1, false); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("depth: %v", err)
	}
	// Duplicate keys in one node.
	root, leaf := buildRawPair()
	root.Cells = append(root.Cells, Cell{Key: "a", Child: leaf})
	if _, err := FromParts([]string{"d1", "d2"}, root, 1, false); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("dup keys: %v", err)
	}
	// Leaf cell with a child pointer.
	root, leaf = buildRawPair()
	leaf.Cells[0].Child = NewNode(9)
	if _, err := FromParts([]string{"d1", "d2"}, root, 1, false); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("leaf with child: %v", err)
	}
	// Interior cell without a child.
	root, _ = buildRawPair()
	root.Cells[0].Child = nil
	if _, err := FromParts([]string{"d1", "d2"}, root, 1, false); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("interior without child: %v", err)
	}
	// A node reachable at two different levels.
	root, leaf = buildRawPair()
	mid := NewNode(7)
	mid.Cells = append(mid.Cells, Cell{Key: "m", Child: leaf})
	mid.AllChild = leaf
	root.Cells[0].Child = mid
	root.AllChild = mid
	// leaf reachable at level 2 via mid... build a 3-dim cube where root
	// ALSO points directly at leaf (level mismatch).
	root.Cells = append(root.Cells, Cell{Key: "direct", Child: leaf})
	if _, err := FromParts([]string{"d1", "d2", "d3"}, root, 1, false); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("level conflict: %v", err)
	}
}

func TestCheckInvariantsCatchesDamage(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("fresh cube: %v", err)
	}
	// Damage a leaf ALL aggregate.
	var leaf *Node
	c.Visit(func(n *Node) bool {
		if n.Leaf && len(n.Cells) > 0 {
			leaf = n
			return false
		}
		return true
	})
	saved := leaf.AllAgg
	leaf.AllAgg = NewAggregate(12345)
	if err := c.CheckInvariants(); !errors.Is(err, ErrInvalidStructure) {
		t.Errorf("damaged ALL undetected: %v", err)
	}
	leaf.AllAgg = saved
	// Damage sort order.
	root := c.Root()
	if len(root.Cells) >= 2 {
		root.Cells[0], root.Cells[1] = root.Cells[1], root.Cells[0]
		if err := c.CheckInvariants(); !errors.Is(err, ErrInvalidStructure) {
			t.Errorf("unsorted cells undetected: %v", err)
		}
		root.Cells[0], root.Cells[1] = root.Cells[1], root.Cells[0]
	}
}
