package dwarf

import (
	"fmt"
	"io"
	"strings"
)

// Dump renders the cube as an indented tree in the style of the paper's
// Fig. 2: one line per cell, ALL cells last, shared (coalesced) sub-dwarfs
// printed once and referenced by node id afterwards. Intended for examples
// and debugging at small scale.
func (c *Cube) Dump(w io.Writer) error {
	if c.root == nil {
		_, err := fmt.Fprintln(w, "(empty cube)")
		return err
	}
	seen := map[*Node]bool{}
	var walk func(n *Node, indent int) error
	walk = func(n *Node, indent int) error {
		pad := strings.Repeat("  ", indent)
		if seen[n] {
			_, err := fmt.Fprintf(w, "%s^ node #%d (shared)\n", pad, n.seq)
			return err
		}
		seen[n] = true
		if _, err := fmt.Fprintf(w, "%snode #%d [%s]\n", pad, n.seq, c.dimName(n.Level)); err != nil {
			return err
		}
		for i := range n.Cells {
			cell := &n.Cells[i]
			if n.Leaf {
				if _, err := fmt.Fprintf(w, "%s  %q -> %s\n", pad, cell.Key, cell.Agg); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s  %q:\n", pad, cell.Key); err != nil {
				return err
			}
			if err := walk(cell.Child, indent+2); err != nil {
				return err
			}
		}
		if n.Leaf {
			_, err := fmt.Fprintf(w, "%s  ALL -> %s\n", pad, n.AllAgg)
			return err
		}
		if n.AllChild != nil {
			if _, err := fmt.Fprintf(w, "%s  ALL:\n", pad); err != nil {
				return err
			}
			return walk(n.AllChild, indent+2)
		}
		return nil
	}
	return walk(c.root, 0)
}

func (c *Cube) dimName(level int) string {
	if level >= 0 && level < len(c.dims) {
		return c.dims[level]
	}
	return fmt.Sprintf("level-%d", level)
}
