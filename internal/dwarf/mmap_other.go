//go:build !unix

package dwarf

import (
	"fmt"
	"os"
)

// mapFile reads path into memory on platforms without mmap support.
func mapFile(path string) (data []byte, mapped bool, err error) {
	if st, err := os.Stat(path); err != nil {
		return nil, false, err
	} else if st.Size() > maxStreamBytes {
		return nil, false, fmt.Errorf("dwarf: %s: %d-byte cube exceeds the 4 GiB view limit; use Decode", path, st.Size())
	}
	b, err := os.ReadFile(path)
	return b, false, err
}

func unmapFile([]byte) error { return nil }
