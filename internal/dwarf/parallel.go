package dwarf

import (
	"runtime"
	"sort"
	"sync"
)

// Parallel sharded construction.
//
// The paper's construction (§4, Fig. 1) is a single sorted scan. That scan
// has a natural partition: prefix key ranges. In sorted order every run of
// tuples sharing the same first lo dimension keys is contiguous, so a shard
// boundary placed between two runs guarantees no run crosses shards — each
// shard's level-lo sub-dwarfs are complete and can be built with zero
// coordination. The planner picks lo as shallow as possible (less serial
// spine work) while still yielding enough runs to feed every worker; for a
// feed whose leading dimension is near-constant (a Year dimension, say) it
// automatically deepens until the data fans out.
//
// The pipeline: sort once, plan shards at prefix-run boundaries, run an
// independent builder per shard on its own goroutine (own open path, own
// hash-consing table) emitting closed level-lo sub-dwarfs, then stitch
// serially: re-canonicalize shard output into one global table (restoring
// the cross-shard sharing a serial build's single table provides) and
// replay the spine above lo — opening cells for each unit's prefix and
// closing spine nodes with the same suffixCoalesce calls, over the same
// children in the same order, as a serial close would issue. Aggregates
// therefore merge in the serial order and the cube is bit-for-bit
// structurally identical to a serial build, under every ablation option.

// NewParallel constructs a DWARF cube from fact tuples using a sharded
// parallel build with the given worker count. workers <= 0 selects
// runtime.NumCPU(); workers == 1 is the serial builder. The cube is
// structurally identical to New over the same facts.
func NewParallel(dims []string, tuples []Tuple, workers int, opts ...Option) (*Cube, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return New(dims, tuples, append(append([]Option(nil), opts...), WithWorkers(workers))...)
}

// NewFromAggregatesParallel is NewParallel over pre-aggregated facts.
func NewFromAggregatesParallel(dims []string, tuples []AggTuple, workers int, opts ...Option) (*Cube, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return NewFromAggregates(dims, tuples, append(append([]Option(nil), opts...), WithWorkers(workers))...)
}

// sortTuplesParallel is the parallel front of the pipeline: a stable merge
// sort over a copy of the facts, worker chunks sorted concurrently and then
// pairwise-merged (also concurrently, one goroutine per pair and rounds
// halving). A stable sort's output is uniquely determined by comparator and
// input order, so the result is element-for-element identical to
// sortTuples — the serial scan equivalence the shard builds rely on.
func sortTuplesParallel(tuples []AggTuple, workers int) []AggTuple {
	n := len(tuples)
	// Below ~1k elements per chunk the goroutine overhead beats the win.
	if workers > n/1024 {
		workers = n / 1024
	}
	if workers <= 1 {
		return sortTuples(tuples)
	}
	src := make([]AggTuple, n)
	copy(src, tuples)
	runs := make([]int, workers+1)
	for i := range runs {
		runs[i] = i * n / workers
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := src[lo:hi]
			sort.SliceStable(s, func(a, b int) bool { return lessDims(s[a].Dims, s[b].Dims) })
		}(runs[i], runs[i+1])
	}
	wg.Wait()
	buf := make([]AggTuple, n)
	for len(runs) > 2 {
		next := []int{0}
		var mwg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeRuns(buf[lo:hi], src[lo:mid], src[mid:hi])
			}(runs[i], runs[i+1], runs[i+2])
			next = append(next, runs[i+2])
		}
		if len(runs)%2 == 0 {
			// Odd run count: the last run carries over to the next round.
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(buf[lo:hi], src[lo:hi])
			next = append(next, hi)
		}
		mwg.Wait()
		src, buf = buf, src
		runs = next
	}
	return src
}

// mergeRuns stable-merges two adjacent sorted runs into dst (equal elements
// prefer the left run, preserving input order).
func mergeRuns(dst, a, b []AggTuple) {
	k := 0
	for len(a) > 0 && len(b) > 0 {
		if lessDims(b[0].Dims, a[0].Dims) {
			dst[k] = b[0]
			b = b[1:]
		} else {
			dst[k] = a[0]
			a = a[1:]
		}
		k++
	}
	copy(dst[k:], a)
	copy(dst[k+len(a):], b)
}

// buildParallel runs the sharded pipeline over sorted facts. Callers
// guarantee o.Workers > 1; the planner may still collapse to one shard
// (tiny input, no key diversity at any depth), in which case the serial
// path runs.
func buildParallel(ndims int, o Options, sorted []AggTuple) *Node {
	shards, lo := planShards(sorted, o.Workers, ndims)
	if lo == 0 || len(shards) <= 1 {
		return newBuilder(ndims, o).buildSorted(sorted)
	}
	units := make([][]prefixSub, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			units[i] = newBuilder(ndims, o).scanRuns(shards[i], lo)
		}(i)
	}
	wg.Wait()
	return stitch(ndims, o, units, lo)
}

// planShards splits the sorted facts into at most `workers` contiguous
// subslices cut at lo-prefix run boundaries, each targeting an equal share
// of the tuples, and reports the chosen prefix depth lo. lo is the
// shallowest depth whose run count reaches the worker count — shallower
// means less serial spine work in the stitch — falling back to the deepest
// interior depth when no depth fans out that far. A run longer than the
// per-shard target inflates its shard rather than being split. lo = 0
// (with a single shard) signals "build serially": the input is too small
// or has no key diversity to shard.
func planShards(sorted []AggTuple, workers, ndims int) ([][]AggTuple, int) {
	n := len(sorted)
	if workers <= 1 || n == 0 || ndims < 2 {
		return [][]AggTuple{sorted}, 0
	}
	lo := 0
	for d := 1; d < ndims; d++ {
		runs := 1
		for i := 1; i < n && runs < workers; i++ {
			if commonPrefix(sorted[i-1].Dims, sorted[i].Dims) < d {
				runs++
			}
		}
		if runs >= workers {
			lo = d
			break
		}
		if d == ndims-1 && runs >= 2 {
			lo = d // deepest interior depth: as many shards as runs allow
		}
	}
	if lo == 0 {
		return [][]AggTuple{sorted}, 0
	}
	target := (n + workers - 1) / workers
	shards := make([][]AggTuple, 0, workers)
	start := 0
	for start < n && len(shards) < workers-1 {
		end := start + target
		if end >= n {
			break
		}
		// Slide the cut forward to the next lo-prefix run boundary.
		for end < n && commonPrefix(sorted[end-1].Dims, sorted[end].Dims) >= lo {
			end++
		}
		if end >= n {
			break
		}
		shards = append(shards, sorted[start:end])
		start = end
	}
	shards = append(shards, sorted[start:])
	if len(shards) < 2 {
		return shards, 0
	}
	return shards, lo
}

// stitch assembles the shards' (prefix, sub-dwarf) units into the final
// root by replaying the spine above lo: a serial scan over units instead of
// tuples. Shard ranges are disjoint and ordered, so unit order is global
// prefix order and every spine node's cells arrive sorted. Closing a spine
// node issues the identical suffixCoalesce call — same children, same
// order — as a serial build's close of that node, and recanon gives the
// coalesces one global hash-consing table to share against.
func stitch(ndims int, o Options, shardUnits [][]prefixSub, lo int) *Node {
	sb := newBuilder(ndims, o)
	memo := make(map[*Node]*Node)
	var prev []string
	for _, units := range shardUnits {
		for _, u := range units {
			sub := sb.recanon(u.sub, memo)
			p := 0
			if prev == nil {
				sb.open[0] = sb.newNode(0)
			} else {
				// Adjacent runs always diverge inside the prefix (runs are
				// maximal and shard cuts fall on run boundaries), so p < lo.
				p = commonPrefix(prev, u.prefix)
				for l := lo - 1; l > p; l-- {
					sb.attachClosed(l)
				}
			}
			// Open the new spine suffix and hang the unit's sub-dwarf off
			// the level lo-1 cell.
			for l := p; l < lo; l++ {
				n := sb.open[l]
				if l == lo-1 {
					n.Cells = append(n.Cells, Cell{Key: u.prefix[l], Child: sub})
				} else {
					n.Cells = append(n.Cells, Cell{Key: u.prefix[l]})
					sb.open[l+1] = sb.newNode(l + 1)
				}
			}
			prev = u.prefix
		}
	}
	for l := lo - 1; l > 0; l-- {
		sb.attachClosed(l)
	}
	return sb.close(sb.open[0])
}
