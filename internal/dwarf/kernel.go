package dwarf

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"unsafe"
)

// This file is the unified query kernel: every query shape is implemented
// exactly once, against the Source cursor interface, and therefore answers
// identically over the in-memory node graph (*Cube), the zero-copy encoded
// view (*CubeView) and — via per-target fan-out plus partial merging in
// internal/cubestore — the live store. The exported methods on Cube and
// CubeView (query.go, view.go) are thin wrappers over these functions.
//
// Allocation discipline: walks keep all traversal state (one CellIter per
// level) in a fixed-size kernelState that escape analysis keeps on the
// stack, so zero-copy queries allocate nothing per node visited; only
// result containers (group maps, cloned group keys) and oversized-arity
// fallbacks allocate.

// kernelMaxDims is the dimension count the stack-resident iterator array
// covers; wider cubes fall back to one heap allocation per query.
const kernelMaxDims = 16

// kernelState is the reusable traversal state of one kernel walk.
type kernelState struct {
	src   Source
	ndims int
	sels  []Selector
	// keysets[d] is sels[d].Keys deduplicated (first occurrence wins), so
	// the dedup work and its allocation happen once per query, not once per
	// node visited.
	keysets  [][]string
	itersBuf [kernelMaxDims]CellIter
	iters    []CellIter
}

func (w *kernelState) init(src Source, sels []Selector) {
	w.src = src
	w.ndims = src.NumDims()
	w.sels = sels
	if w.ndims <= kernelMaxDims {
		w.iters = w.itersBuf[:w.ndims]
	} else {
		w.iters = make([]CellIter, w.ndims)
	}
	for d, sel := range sels {
		if len(sel.Keys) == 0 {
			continue
		}
		if w.keysets == nil {
			w.keysets = make([][]string, w.ndims)
		}
		w.keysets[d] = dedupKeys(sel.Keys)
	}
}

// dedupKeys drops repeated keys, keeping first occurrences in order. The
// common duplicate-free case returns the input slice unchanged.
func dedupKeys(keys []string) []string {
	for i := 1; i < len(keys); i++ {
		for j := 0; j < i; j++ {
			if keys[i] == keys[j] {
				// Rare path: rebuild without duplicates.
				out := make([]string, 0, len(keys)-1)
				out = append(out, keys[:i]...)
				for _, k := range keys[i+1:] {
					seen := false
					for _, have := range out {
						if k == have {
							seen = true
							break
						}
					}
					if !seen {
						out = append(out, k)
					}
				}
				return out
			}
		}
	}
	return keys
}

func badQueryArity(got, want int) error {
	return fmt.Errorf("%w: got %d selectors, cube has %d dimensions", ErrBadQuery, got, want)
}

// ---- Point ----

// QueryPoint answers a point or ALL-wildcard query — one key per dimension,
// where the reserved All key aggregates over that dimension — against any
// Source. Absent combinations yield the zero Aggregate; errors are reserved
// for malformed queries and corrupt streams.
func QueryPoint(src Source, keys ...string) (Aggregate, error) {
	ndims := src.NumDims()
	if len(keys) != ndims {
		return Aggregate{}, fmt.Errorf("%w: got %d keys, cube has %d dimensions", ErrBadQuery, len(keys), ndims)
	}
	cur, err := src.SourceRoot()
	if err != nil {
		return Aggregate{}, err
	}
	for l := 0; l < ndims; l++ {
		if cur.IsNil() {
			return Aggregate{}, nil
		}
		leaf := l == ndims-1
		if keys[l] == All {
			agg, child, err := src.SourceAll(cur, l)
			if err != nil || leaf {
				return agg, err
			}
			cur = child
			continue
		}
		agg, child, found, err := src.SourceLookup(cur, l, keys[l])
		if err != nil {
			return Aggregate{}, err
		}
		if !found {
			return Aggregate{}, nil
		}
		if leaf {
			return agg, nil
		}
		cur = child
	}
	return Aggregate{}, nil
}

// ---- Range ----

// QueryRange aggregates over the sub-cube addressed by one selector per
// dimension. Pure-ALL dimensions are answered through ALL cells without
// enumeration, matching how a DWARF serves group-bys.
func QueryRange(src Source, sels []Selector) (Aggregate, error) {
	if len(sels) != src.NumDims() {
		return Aggregate{}, badQueryArity(len(sels), src.NumDims())
	}
	root, err := src.SourceRoot()
	if err != nil {
		return Aggregate{}, err
	}
	var w kernelState
	w.init(src, sels)
	return w.rangeAt(root, 0)
}

func (w *kernelState) rangeAt(n Cursor, depth int) (Aggregate, error) {
	if n.IsNil() {
		return Aggregate{}, nil
	}
	sel := w.sels[depth]
	leaf := depth == w.ndims-1
	if sel.isAll() {
		agg, child, err := w.src.SourceAll(n, depth)
		if err != nil || leaf {
			return agg, err
		}
		return w.rangeAt(child, depth+1)
	}
	var out Aggregate
	if sel.HasRange {
		it := &w.iters[depth]
		if err := w.src.SourceCells(n, depth, sel.Lo, it); err != nil {
			return Aggregate{}, err
		}
		for {
			key, agg, child, ok, err := w.src.SourceNext(it)
			if err != nil {
				return Aggregate{}, err
			}
			if !ok || key > sel.Hi {
				break
			}
			if key < sel.Lo {
				continue
			}
			if !leaf {
				if agg, err = w.rangeAt(child, depth+1); err != nil {
					return Aggregate{}, err
				}
			}
			out = MergeAggregates(out, agg)
		}
		return out, nil
	}
	for _, k := range w.keysets[depth] {
		agg, child, found, err := w.src.SourceLookup(n, depth, k)
		if err != nil {
			return Aggregate{}, err
		}
		if !found {
			continue
		}
		if !leaf {
			if agg, err = w.rangeAt(child, depth+1); err != nil {
				return Aggregate{}, err
			}
		}
		out = MergeAggregates(out, agg)
	}
	return out, nil
}

// ---- GroupBy / Pivot (one walk serves both) ----

// keyArena clones retained group keys into shared chunks, so a walk over an
// unstable-key source (encoded views, whose keys alias the mapped bytes)
// costs one allocation per ~4 KiB of retained key bytes instead of one per
// key. Handed-out strings alias a chunk that is only ever appended to
// within its capacity — never grown in place — so they stay valid for the
// life of the result.
type keyArena struct{ buf []byte }

const keyArenaChunk = 4096

func (a *keyArena) clone(s string) string {
	if len(s) == 0 {
		return ""
	}
	if len(s) > cap(a.buf)-len(a.buf) {
		size := keyArenaChunk
		if len(s) > size {
			size = len(s)
		}
		a.buf = make([]byte, 0, size)
	}
	off := len(a.buf)
	a.buf = append(a.buf, s...)
	return unsafe.String(&a.buf[off], len(s))
}

func (a *keyArena) cloneBytes(b []byte) string {
	return a.clone(unsafe.String(unsafe.SliceData(b), len(b)))
}

// pivotState extends the kernel walk with grouping: the dimensions in
// grouped contribute their cell key to the group identity instead of being
// collapsed, and leaf aggregates accumulate per distinct group.
type pivotState struct {
	kernelState
	grouped []bool
	keys    []string // current group key per grouped depth
	stable  bool
	arena   keyArena // clones of retained keys (unstable sources)

	// Single-dimension grouping (GroupBy) accumulates directly into the
	// result map; multi-dimension grouping (Pivot) accumulates under an
	// unambiguous composite encoding of the key tuple.
	single  int // the grouped depth, or -1 for composite mode
	out     map[string]Aggregate
	order   []int // grouped depths in output order (composite mode)
	acc     map[string]*Aggregate
	scratch []byte
	aggSlab []Aggregate // chunked accumulator storage (composite mode)
}

// newAgg hands out a stable *Aggregate from chunked slab storage: one
// allocation per chunk of groups, not one per group. Chunks are never grown
// in place, so earlier pointers stay valid.
func (w *pivotState) newAgg(a Aggregate) *Aggregate {
	if len(w.aggSlab) == cap(w.aggSlab) {
		w.aggSlab = make([]Aggregate, 0, 128)
	}
	w.aggSlab = append(w.aggSlab, a)
	return &w.aggSlab[len(w.aggSlab)-1]
}

func (w *pivotState) walk(n Cursor, depth int) error {
	if n.IsNil() {
		return nil
	}
	sel := w.sels[depth]
	leaf := depth == w.ndims-1
	if !w.grouped[depth] && sel.isAll() {
		agg, child, err := w.src.SourceAll(n, depth)
		if err != nil {
			return err
		}
		if leaf {
			w.emit(agg)
			return nil
		}
		return w.walk(child, depth+1)
	}
	// A selector carrying both a range and keys means the range — the same
	// precedence Range applies, so every shape reads a Selector identically.
	if !sel.HasRange && len(sel.Keys) > 0 {
		for _, k := range w.keysets[depth] {
			agg, child, found, err := w.src.SourceLookup(n, depth, k)
			if err != nil {
				return err
			}
			if !found {
				continue
			}
			if w.grouped[depth] {
				w.keys[depth] = k
			}
			if leaf {
				w.emit(agg)
			} else if err := w.walk(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	it := &w.iters[depth]
	if err := w.src.SourceCells(n, depth, sel.Lo, it); err != nil {
		return err
	}
	for {
		key, agg, child, ok, err := w.src.SourceNext(it)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if sel.HasRange {
			if key > sel.Hi {
				break
			}
			if key < sel.Lo {
				continue
			}
		}
		if w.grouped[depth] {
			w.keys[depth] = key
		}
		if leaf {
			w.emit(agg)
		} else if err := w.walk(child, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// emit folds one leaf aggregate into the current group. Group keys may
// alias source memory; they are cloned exactly once, on first insertion,
// into the walk's shared arena rather than one heap string per key.
func (w *pivotState) emit(a Aggregate) {
	if w.single >= 0 {
		k := w.keys[w.single]
		old, ok := w.out[k]
		if !ok && !w.stable {
			k = w.arena.clone(k)
		}
		w.out[k] = MergeAggregates(old, a)
		return
	}
	w.scratch = appendGroupKey(w.scratch[:0], w.keys, w.order)
	if p, ok := w.acc[string(w.scratch)]; ok {
		*p = MergeAggregates(*p, a)
		return
	}
	w.acc[w.arena.cloneBytes(w.scratch)] = w.newAgg(a)
}

// appendGroupKey appends the unambiguous composite encoding of the group
// key tuple (per key: uvarint length, then the bytes) for depths in order.
func appendGroupKey(dst []byte, keys []string, order []int) []byte {
	for _, d := range order {
		dst = binary.AppendUvarint(dst, uint64(len(keys[d])))
		dst = append(dst, keys[d]...)
	}
	return dst
}

// decodeGroupKey splits a composite group key back into its parts.
func decodeGroupKey(enc string, n int) []string {
	out := make([]string, 0, n)
	for len(enc) > 0 && len(out) < n {
		l, w := binary.Uvarint([]byte(enc[:min(len(enc), binary.MaxVarintLen64)]))
		if w <= 0 || uint64(len(enc)-w) < l {
			break // unreachable for keys we encoded ourselves
		}
		out = append(out, strings.Clone(enc[w:w+int(l)]))
		enc = enc[w+int(l):]
	}
	return out
}

// QueryGroupBy returns, for the dimension at index dim, the aggregate of
// every key under the restriction of sels (sels[dim] is ignored and
// replaced by each key in turn).
func QueryGroupBy(src Source, dim int, sels []Selector) (map[string]Aggregate, error) {
	ndims := src.NumDims()
	if dim < 0 || dim >= ndims {
		return nil, fmt.Errorf("%w: group-by dimension %d out of range", ErrBadQuery, dim)
	}
	if len(sels) != ndims {
		return nil, badQueryArity(len(sels), ndims)
	}
	root, err := src.SourceRoot()
	if err != nil {
		return nil, err
	}
	w := pivotState{single: dim, stable: src.StableKeys(), out: make(map[string]Aggregate)}
	w.init(src, sels)
	grouped := make([]bool, ndims)
	grouped[dim] = true
	w.grouped = grouped
	w.keys = make([]string, ndims)
	if err := w.walk(root, 0); err != nil {
		return nil, err
	}
	return w.out, nil
}

// PivotGroup is one row of a multi-dimension group-by: the group's key per
// grouped dimension (in the order the query named them) and its aggregate.
type PivotGroup struct {
	Keys []string
	Agg  Aggregate
}

// QueryPivot is the multi-dimension GroupBy: for every distinct key
// combination over the dimensions in dims (under the restriction of sels,
// whose entries at grouped dimensions select which members appear), the
// merged aggregate. Rows are sorted by Keys, so the result order is
// deterministic across sources. At least one dimension must be named.
func QueryPivot(src Source, dims []int, sels []Selector) ([]PivotGroup, error) {
	ndims := src.NumDims()
	if len(sels) != ndims {
		return nil, badQueryArity(len(sels), ndims)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: pivot needs at least one group dimension", ErrBadQuery)
	}
	grouped := make([]bool, ndims)
	for _, d := range dims {
		if d < 0 || d >= ndims {
			return nil, fmt.Errorf("%w: group-by dimension %d out of range", ErrBadQuery, d)
		}
		if grouped[d] {
			return nil, fmt.Errorf("%w: group-by dimension %d named twice", ErrBadQuery, d)
		}
		grouped[d] = true
	}
	root, err := src.SourceRoot()
	if err != nil {
		return nil, err
	}
	w := pivotState{single: -1, stable: src.StableKeys(), acc: make(map[string]*Aggregate), order: dims}
	w.init(src, sels)
	w.grouped = grouped
	w.keys = make([]string, ndims)
	if err := w.walk(root, 0); err != nil {
		return nil, err
	}
	return pivotRows(w.acc, len(dims)), nil
}

// pivotRows materializes a composite-keyed accumulator as sorted rows.
func pivotRows(acc map[string]*Aggregate, nkeys int) []PivotGroup {
	out := make([]PivotGroup, 0, len(acc))
	for enc, agg := range acc {
		out = append(out, PivotGroup{Keys: decodeGroupKey(enc, nkeys), Agg: *agg})
	}
	sortPivotGroups(out)
	return out
}

func sortPivotGroups(rows []PivotGroup) {
	sort.Slice(rows, func(i, j int) bool { return compareKeyTuples(rows[i].Keys, rows[j].Keys) < 0 })
}

func compareKeyTuples(a, b []string) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// MergePivotGroups folds per-source pivot partials into one sorted result,
// merging aggregates of equal key tuples in the order the partials are
// given — the store's fan-out merge for Pivot and RollUp.
func MergePivotGroups(parts ...[]PivotGroup) []PivotGroup {
	if len(parts) == 1 {
		// Aliases the lone input rather than copying. Callers merging
		// cache-shared partials must therefore always include at least one
		// private part (the store always appends the live memtable's rows,
		// a cluster coordinator merges one part per node), or copy before
		// treating the result as their own.
		return parts[0]
	}
	acc := make(map[string]*Aggregate)
	var scratch []byte
	nkeys := 0
	for _, rows := range parts {
		for i := range rows {
			if len(rows[i].Keys) > nkeys {
				nkeys = len(rows[i].Keys)
			}
			scratch = scratch[:0]
			for _, k := range rows[i].Keys {
				scratch = binary.AppendUvarint(scratch, uint64(len(k)))
				scratch = append(scratch, k...)
			}
			if p, ok := acc[string(scratch)]; ok {
				*p = MergeAggregates(*p, rows[i].Agg)
			} else {
				agg := rows[i].Agg
				acc[string(scratch)] = &agg
			}
		}
	}
	return pivotRows(acc, nkeys)
}

// MergeGroupMaps folds per-source GroupBy partials into dst, merging equal
// keys in the order given — the store's fan-out merge for GroupBy and TopK.
func MergeGroupMaps(dst map[string]Aggregate, parts ...map[string]Aggregate) map[string]Aggregate {
	if dst == nil {
		dst = make(map[string]Aggregate)
	}
	for _, part := range parts {
		for k, a := range part {
			dst[k] = MergeAggregates(dst[k], a)
		}
	}
	return dst
}

// ---- TopK / iceberg ----

// Metric selects the aggregate component a TopK query ranks by.
type Metric uint8

// The rankable aggregate components.
const (
	BySum Metric = iota
	ByCount
	ByMin
	ByMax
	ByAvg
)

// Of returns the metric's value for one aggregate.
func (m Metric) Of(a Aggregate) float64 {
	switch m {
	case ByCount:
		return float64(a.Count)
	case ByMin:
		return a.Min
	case ByMax:
		return a.Max
	case ByAvg:
		return a.Avg()
	default:
		return a.Sum
	}
}

// String renders the metric's wire name.
func (m Metric) String() string {
	switch m {
	case ByCount:
		return "count"
	case ByMin:
		return "min"
	case ByMax:
		return "max"
	case ByAvg:
		return "avg"
	default:
		return "sum"
	}
}

// ParseMetric resolves a wire name ("sum", "count", "min", "max", "avg");
// the empty string selects BySum.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "", "sum":
		return BySum, nil
	case "count":
		return ByCount, nil
	case "min":
		return ByMin, nil
	case "max":
		return ByMax, nil
	case "avg":
		return ByAvg, nil
	}
	return BySum, fmt.Errorf("%w: unknown metric %q", ErrBadQuery, s)
}

// TopKSpec shapes a TopK/iceberg query: rank groups by a metric
// (descending, ties broken by key ascending), optionally drop groups below
// an iceberg threshold, and keep at most K.
type TopKSpec struct {
	// K caps the number of groups returned; <= 0 returns every group that
	// clears the threshold.
	K int
	// By is the ranking metric (BySum for the zero value).
	By Metric
	// Threshold, when HasThreshold is set, drops groups whose metric is
	// below it before the cut — the iceberg condition.
	Threshold    float64
	HasThreshold bool
}

// GroupEntry is one ranked group of a TopK result.
type GroupEntry struct {
	Key string
	Agg Aggregate
}

// QueryTopK ranks the groups of the dimension at index dim (under the
// restriction of sels) by spec's metric and returns the surviving entries,
// best first. The grouping is exactly QueryGroupBy's; the cut happens after
// all partial aggregates are in, so a store fans out the grouping and cuts
// once over the merged map (TopKFromGroups).
func QueryTopK(src Source, dim int, sels []Selector, spec TopKSpec) ([]GroupEntry, error) {
	groups, err := QueryGroupBy(src, dim, sels)
	if err != nil {
		return nil, err
	}
	return TopKFromGroups(groups, spec), nil
}

// TopKFromGroups ranks a (fully merged) group map: metric descending, ties
// by key ascending, iceberg threshold applied before the K cut. It is the
// single finishing step shared by every TopK path, so single-source and
// fan-out answers order identically. groups is read, never mutated — the
// store's planned path and the cluster coordinator both hand it a
// cache-shared map, relying on that.
func TopKFromGroups(groups map[string]Aggregate, spec TopKSpec) []GroupEntry {
	out := make([]GroupEntry, 0, len(groups))
	for k, a := range groups {
		if spec.HasThreshold && spec.By.Of(a) < spec.Threshold {
			continue
		}
		out = append(out, GroupEntry{Key: k, Agg: a})
	}
	sort.Slice(out, func(i, j int) bool {
		mi, mj := spec.By.Of(out[i].Agg), spec.By.Of(out[j].Agg)
		if mi != mj {
			return mi > mj
		}
		return out[i].Key < out[j].Key
	})
	if spec.K > 0 && len(out) > spec.K {
		out = out[:spec.K]
	}
	return out
}

// ---- Tuples ----

// QueryTuples enumerates the source's base facts in sorted dimension order,
// duplicate key combinations already merged into one aggregate. The
// callback receives a reused dims slice holding retainable strings; copy
// the slice to keep a row. Enumeration can fail on a corrupt stream.
func QueryTuples(src Source, fn func(dims []string, agg Aggregate) bool) error {
	root, err := src.SourceRoot()
	if err != nil {
		return err
	}
	var w kernelState
	w.init(src, nil)
	dims := make([]string, w.ndims)
	_, err = w.tuplesAt(root, 0, dims, src.StableKeys(), fn)
	return err
}

func (w *kernelState) tuplesAt(n Cursor, depth int, dims []string, stable bool, fn func([]string, Aggregate) bool) (bool, error) {
	if n.IsNil() {
		return true, nil
	}
	leaf := depth == w.ndims-1
	it := &w.iters[depth]
	if err := w.src.SourceCells(n, depth, "", it); err != nil {
		return false, err
	}
	for {
		key, agg, child, ok, err := w.src.SourceNext(it)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		if !stable {
			key = strings.Clone(key)
		}
		dims[depth] = key
		if leaf {
			if !fn(dims, agg) {
				return false, nil
			}
		} else {
			cont, err := w.tuplesAt(child, depth+1, dims, stable, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
}
