package dwarf

import "os"

// writeFileForTest writes test fixtures; split out so view_test.go keeps no
// os dependency of its own.
func writeFileForTest(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
