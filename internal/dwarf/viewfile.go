package dwarf

import "fmt"

// ViewFile is a CubeView backed by a file region. On platforms with mmap
// support the file's pages are mapped read-only and shared with the kernel
// page cache — opening a multi-gigabyte cube costs no heap — with a
// transparent fallback to reading the file into memory elsewhere (or when
// mapping fails). Close releases the mapping; the view must not be used
// after Close.
type ViewFile struct {
	*CubeView
	data   []byte
	mapped bool
}

// OpenViewFile opens an encoded cube file as a zero-copy view. The
// checksum is verified unless the file carries a v2 offset trailer, in
// which case only the (small) trailer is validated and the open is O(1) in
// the file size; call VerifyEncoded explicitly to audit such a file.
func OpenViewFile(path string) (*ViewFile, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	// With a trailer the payload checksum pass is skipped: an O(1) open is
	// the point of the trailer, and every query remains bounds-checked.
	var v *CubeView
	if HasOffsetTrailer(data) {
		v, err = OpenViewTrusted(data)
	} else {
		v, err = OpenView(data)
	}
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &ViewFile{CubeView: v, data: data, mapped: mapped}, nil
}

// Mapped reports whether the view is served from an mmap'd region rather
// than a heap copy of the file.
func (f *ViewFile) Mapped() bool { return f.mapped }

// Close releases the file mapping, if any. The view must not be used after
// Close returns.
func (f *ViewFile) Close() error {
	data := f.data
	f.data, f.CubeView = nil, nil
	if f.mapped && data != nil {
		return unmapFile(data)
	}
	return nil
}
