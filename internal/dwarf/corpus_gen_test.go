package dwarf

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/ from fuzzSeedStreams. It is a no-op unless the
// WRITE_FUZZ_CORPUS environment variable is set:
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/dwarf/
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz/")
	}
	seeds := fuzzSeedStreams(t)
	write := func(dir, name, content string) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range seeds {
		quoted := strconv.Quote(string(seed))
		write("testdata/fuzz/FuzzDecode", fmt.Sprintf("seed-%02d", i),
			fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", quoted))
		write("testdata/fuzz/FuzzViewQuery", fmt.Sprintf("seed-%02d", i),
			fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nstring(\"d1\")\nstring(\"north\")\nbyte(%d)\n", quoted, i%4))
		write("testdata/fuzz/FuzzQueryKernel", fmt.Sprintf("seed-%02d", i),
			fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nbyte(%d)\nbyte(%d)\nstring(\"d1\")\nstring(\"north\")\n", quoted, i, i%4))
		// Pair each stream with its neighbour so the merge corpus starts
		// from same-dims, mismatched-dims and not-a-cube combinations.
		other := strconv.Quote(string(seeds[(i+1)%len(seeds)]))
		write("testdata/fuzz/FuzzMergeViews", fmt.Sprintf("seed-%02d", i),
			fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n[]byte(%s)\n", quoted, other))
	}
	// A resealed-corrupt stream: structurally broken but checksum-valid, so
	// the corpus starts past the CRC gate.
	broken := fuzzSeedStreams(t)[0]
	if len(broken) > 12 {
		broken = append([]byte(nil), broken...)
		broken[len(codecMagic)+3] ^= 0x40
	}
	quoted := strconv.Quote(string(resealV1(broken)))
	write("testdata/fuzz/FuzzDecode", "seed-resealed",
		fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", quoted))
	write("testdata/fuzz/FuzzViewQuery", "seed-resealed",
		fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nstring(\"*\")\nstring(\"\")\nbyte(2)\n", quoted))
	write("testdata/fuzz/FuzzQueryKernel", "seed-resealed",
		fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nbyte(2)\nbyte(1)\nstring(\"*\")\nstring(\"\")\n", quoted))
}
