package dwarf

import "fmt"

// Incremental accumulates fact tuples in bounded chunks and maintains a
// standing cube by merging each completed chunk — the streaming
// construction mode for feeds too large to buffer entirely, and the
// building block of the paper's §7 maintenance loop. Construction options
// (ablations, WithWorkers) apply to every chunk build, so a workers setting
// shards each flush across goroutines. The zero value is not usable; call
// NewIncremental.
type Incremental struct {
	dims      []string
	opts      []Option
	chunkSize int
	pending   []Tuple
	cube      *Cube
}

// NewIncremental creates a streaming builder. chunkSize bounds how many
// buffered tuples trigger a merge; <= 0 selects 65536.
func NewIncremental(dims []string, chunkSize int, opts ...Option) (*Incremental, error) {
	if chunkSize <= 0 {
		chunkSize = 65536
	}
	empty, err := New(dims, nil, opts...)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		dims:      append([]string(nil), dims...),
		opts:      opts,
		chunkSize: chunkSize,
		cube:      empty,
	}, nil
}

// Add buffers one tuple, merging the chunk into the standing cube when the
// buffer fills.
func (inc *Incremental) Add(t Tuple) error {
	if len(t.Dims) != len(inc.dims) {
		return fmt.Errorf("%w: tuple has %d dims, builder has %d",
			ErrDimMismatch, len(t.Dims), len(inc.dims))
	}
	inc.pending = append(inc.pending, Tuple{Dims: append([]string(nil), t.Dims...), Measure: t.Measure})
	if len(inc.pending) >= inc.chunkSize {
		return inc.flush()
	}
	return nil
}

// AddBatch buffers many tuples.
func (inc *Incremental) AddBatch(tuples []Tuple) error {
	for _, t := range tuples {
		if err := inc.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// flush builds the pending chunk (sharded when the options carry a worker
// count) and merges it into the standing cube.
func (inc *Incremental) flush() error {
	if len(inc.pending) == 0 {
		return nil
	}
	delta, err := New(inc.dims, inc.pending, inc.opts...)
	if err != nil {
		return err
	}
	merged, err := Merge(inc.cube, delta)
	if err != nil {
		return err
	}
	inc.cube = merged
	inc.pending = inc.pending[:0]
	return nil
}

// Cube merges any pending chunk and returns the standing cube. The builder
// remains usable; later Adds extend from this point.
func (inc *Incremental) Cube() (*Cube, error) {
	if err := inc.flush(); err != nil {
		return nil, err
	}
	return inc.cube, nil
}

// Buffered reports the tuples waiting for the next merge.
func (inc *Incremental) Buffered() int { return len(inc.pending) }
