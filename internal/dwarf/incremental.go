package dwarf

import "sync"

// Incremental accumulates fact tuples in bounded chunks and maintains a
// standing cube by merging each completed chunk — the streaming
// construction mode for feeds too large to buffer entirely, and the
// building block of the paper's §7 maintenance loop. Construction options
// (ablations, WithWorkers) apply to every chunk build, so a workers setting
// shards each flush across goroutines. The zero value is not usable; call
// NewIncremental.
//
// An Incremental is safe for concurrent use: Add, AddBatch, Cube and
// Buffered may be called from multiple goroutines. Ownership rule for
// Cube(): the returned *Cube is immutable and stays valid and unchanged
// forever — later Adds merge into NEW cubes and never touch one already
// handed out. The flip side is that later standing cubes share sub-dwarfs
// with earlier ones by pointer, so callers must treat a returned cube (and
// every Node reachable through Root()) as strictly read-only; writing to its
// nodes would corrupt the builder's standing cube out from under a
// concurrent flush. cubestore relies on this rule to query a memtable's
// standing cube while ingestion keeps appending.
type Incremental struct {
	mu        sync.Mutex
	dims      []string
	opts      []Option
	chunkSize int
	pending   []Tuple
	cube      *Cube
}

// NewIncremental creates a streaming builder. chunkSize bounds how many
// buffered tuples trigger a merge; <= 0 selects 65536.
func NewIncremental(dims []string, chunkSize int, opts ...Option) (*Incremental, error) {
	if chunkSize <= 0 {
		chunkSize = 65536
	}
	empty, err := New(dims, nil, opts...)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		dims:      append([]string(nil), dims...),
		opts:      opts,
		chunkSize: chunkSize,
		cube:      empty,
	}, nil
}

// Add buffers one tuple, merging the chunk into the standing cube when the
// buffer fills.
func (inc *Incremental) Add(t Tuple) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.add(t)
}

// AddBatch buffers many tuples as one atomic call: a Cube() from another
// goroutine sees either none or all of the batch. All tuples are validated
// before any is buffered, and however many chunks the batch completes are
// built individually but folded into the standing cube by a single k-way
// MergeAll — one coalesce pass instead of one full merge per chunk.
func (inc *Incremental) AddBatch(tuples []Tuple) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	for _, t := range tuples {
		if err := ValidateTuple(t, len(inc.dims)); err != nil {
			return err
		}
	}
	for _, t := range tuples {
		inc.pending = append(inc.pending, Tuple{Dims: append([]string(nil), t.Dims...), Measure: t.Measure})
	}
	return inc.flush(false)
}

func (inc *Incremental) add(t Tuple) error {
	// Full validation up front: a bad tuple rejected here costs one call; a
	// bad tuple discovered at flush time would poison the whole builder.
	if err := ValidateTuple(t, len(inc.dims)); err != nil {
		return err
	}
	inc.pending = append(inc.pending, Tuple{Dims: append([]string(nil), t.Dims...), Measure: t.Measure})
	if len(inc.pending) >= inc.chunkSize {
		return inc.flush(false)
	}
	return nil
}

// flush builds every complete chunk (plus, when all is set, the partial
// tail) as its own delta cube — sharded when the options carry a worker
// count — and folds the standing cube and all deltas with one k-way
// MergeAll. The chunk partition is identical to flushing after every
// chunkSize-th Add, so the resulting aggregates are bit-for-bit the same;
// only the k-1 intermediate merge passes disappear. Callers hold inc.mu.
func (inc *Incremental) flush(all bool) error {
	pending := inc.pending
	var merge []*Cube
	for len(pending) >= inc.chunkSize {
		delta, err := New(inc.dims, pending[:inc.chunkSize], inc.opts...)
		if err != nil {
			return err
		}
		merge = append(merge, delta)
		pending = pending[inc.chunkSize:]
	}
	if all && len(pending) > 0 {
		delta, err := New(inc.dims, pending, inc.opts...)
		if err != nil {
			return err
		}
		merge = append(merge, delta)
		pending = nil
	}
	if len(merge) == 0 {
		return nil
	}
	merged, err := MergeAll(append([]*Cube{inc.cube}, merge...)...)
	if err != nil {
		return err
	}
	inc.cube = merged
	// Move any unflushed tail to the front of the buffer; the deltas copied
	// their tuples during construction, so reuse is safe.
	n := copy(inc.pending, pending)
	inc.pending = inc.pending[:n]
	return nil
}

// Cube merges any pending chunk and returns the standing cube. The builder
// remains usable; later Adds extend from this point. The returned cube is
// immutable — no later Add or flush modifies it (see the ownership rule on
// Incremental) — so it is safe to query, encode or retain concurrently with
// further ingestion.
func (inc *Incremental) Cube() (*Cube, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if err := inc.flush(true); err != nil {
		return nil, err
	}
	return inc.cube, nil
}

// Buffered reports the tuples waiting for the next merge.
func (inc *Incremental) Buffered() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return len(inc.pending)
}

// Dims returns the builder's dimension names in order.
func (inc *Incremental) Dims() []string {
	return append([]string(nil), inc.dims...)
}
