package dwarf

import "sync"

// Incremental accumulates fact tuples in bounded chunks and maintains a
// standing cube by merging each completed chunk — the streaming
// construction mode for feeds too large to buffer entirely, and the
// building block of the paper's §7 maintenance loop. Construction options
// (ablations, WithWorkers) apply to every chunk build, so a workers setting
// shards each flush across goroutines. The zero value is not usable; call
// NewIncremental.
//
// An Incremental is safe for concurrent use: Add, AddBatch, Cube and
// Buffered may be called from multiple goroutines. Ownership rule for
// Cube(): the returned *Cube is immutable and stays valid and unchanged
// forever — later Adds merge into NEW cubes and never touch one already
// handed out. The flip side is that later standing cubes share sub-dwarfs
// with earlier ones by pointer, so callers must treat a returned cube (and
// every Node reachable through Root()) as strictly read-only; writing to its
// nodes would corrupt the builder's standing cube out from under a
// concurrent flush. cubestore relies on this rule to query a memtable's
// standing cube while ingestion keeps appending.
type Incremental struct {
	mu        sync.Mutex
	dims      []string
	opts      []Option
	chunkSize int
	pending   []Tuple
	cube      *Cube
}

// NewIncremental creates a streaming builder. chunkSize bounds how many
// buffered tuples trigger a merge; <= 0 selects 65536.
func NewIncremental(dims []string, chunkSize int, opts ...Option) (*Incremental, error) {
	if chunkSize <= 0 {
		chunkSize = 65536
	}
	empty, err := New(dims, nil, opts...)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		dims:      append([]string(nil), dims...),
		opts:      opts,
		chunkSize: chunkSize,
		cube:      empty,
	}, nil
}

// Add buffers one tuple, merging the chunk into the standing cube when the
// buffer fills.
func (inc *Incremental) Add(t Tuple) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.add(t)
}

// AddBatch buffers many tuples as one atomic call: a Cube() from another
// goroutine sees either none or all of the batch.
func (inc *Incremental) AddBatch(tuples []Tuple) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	for _, t := range tuples {
		if err := inc.add(t); err != nil {
			return err
		}
	}
	return nil
}

func (inc *Incremental) add(t Tuple) error {
	// Full validation up front: a bad tuple rejected here costs one call; a
	// bad tuple discovered at flush time would poison the whole builder.
	if err := ValidateTuple(t, len(inc.dims)); err != nil {
		return err
	}
	inc.pending = append(inc.pending, Tuple{Dims: append([]string(nil), t.Dims...), Measure: t.Measure})
	if len(inc.pending) >= inc.chunkSize {
		return inc.flush()
	}
	return nil
}

// flush builds the pending chunk (sharded when the options carry a worker
// count) and merges it into the standing cube. Callers hold inc.mu.
func (inc *Incremental) flush() error {
	if len(inc.pending) == 0 {
		return nil
	}
	delta, err := New(inc.dims, inc.pending, inc.opts...)
	if err != nil {
		return err
	}
	merged, err := Merge(inc.cube, delta)
	if err != nil {
		return err
	}
	inc.cube = merged
	inc.pending = inc.pending[:0]
	return nil
}

// Cube merges any pending chunk and returns the standing cube. The builder
// remains usable; later Adds extend from this point. The returned cube is
// immutable — no later Add or flush modifies it (see the ownership rule on
// Incremental) — so it is safe to query, encode or retain concurrently with
// further ingestion.
func (inc *Incremental) Cube() (*Cube, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if err := inc.flush(); err != nil {
		return nil, err
	}
	return inc.cube, nil
}

// Buffered reports the tuples waiting for the next merge.
func (inc *Incremental) Buffered() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return len(inc.pending)
}

// Dims returns the builder's dimension names in order.
func (inc *Incremental) Dims() []string {
	return append([]string(nil), inc.dims...)
}
