package dwarf

// Visit walks every distinct node of the cube breadth-first starting at the
// root — the traversal order the paper's §4 uses to map a DWARF into NoSQL
// rows. Because suffix coalescing gives nodes multiple parents, a visited
// set guarantees each node is delivered exactly once. Return false from fn
// to stop early.
func (c *Cube) Visit(fn func(n *Node) bool) {
	if c.root == nil {
		return
	}
	seen := make(map[*Node]bool)
	queue := []*Node{c.root}
	seen[c.root] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !fn(n) {
			return
		}
		push := func(child *Node) {
			if child != nil && !seen[child] {
				seen[child] = true
				queue = append(queue, child)
			}
		}
		for i := range n.Cells {
			push(n.Cells[i].Child)
		}
		push(n.AllChild)
	}
}

// VisitDepthFirst walks every distinct node with children delivered before
// their parents (post-order), the order codecs need so that child ids exist
// before they are referenced.
func (c *Cube) VisitDepthFirst(fn func(n *Node) bool) {
	if c.root == nil {
		return
	}
	seen := make(map[*Node]bool)
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n == nil || seen[n] {
			return true
		}
		seen[n] = true
		for i := range n.Cells {
			if !walk(n.Cells[i].Child) {
				return false
			}
		}
		if !walk(n.AllChild) {
			return false
		}
		return fn(n)
	}
	walk(c.root)
}
