package dwarf

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// CubeView answers queries directly against a []byte in the DWRFCUBE
// encoding, without decoding the node graph: no Node allocation, no copy of
// keys or aggregates, just bounds-checked reads of the encoded bytes. A view
// over an mmap'd cube file therefore shares one kernel page cache across
// every process serving the same cube, which is what lets dwarfd hold many
// large cubes hot at once.
//
// Random access into the node section needs one offset per node. When the
// stream carries the v2 node-offset trailer (see EncodeIndexed) the index is
// read straight from the trailer and OpenView is O(header). Otherwise the
// index is built lazily on first touch by a single validating scan of the
// node section.
//
// A CubeView is safe for concurrent readers: after construction all state is
// immutable except the lazily built index, which is guarded by a sync.Once.
//
// Query semantics mirror *Cube exactly — the differential property tests in
// view_test.go hold every answer of every query shape equal between the two,
// under every construction option set.
type CubeView struct {
	data []byte
	hdr  viewHeader

	// indexed is true when the offsets below were taken from a v2 trailer
	// at open time. It is written only before the view is shared.
	indexed bool

	once    sync.Once
	idxErr  error
	starts  []uint32 // starts[id-1]: offset of node id's record
	allOffs []uint32 // allOffs[id-1]: offset of node id's ALL record
	rootID  uint64

	// zones are the per-dimension zone maps from the v3 metadata section,
	// nil when the stream carries none (v1/v2 files). Immutable after open.
	zones []ZoneMap

	// The fanout side-index, built once on the first query (ensure): flat
	// per-node header metadata plus one offset per cell, so a descent never
	// re-parses a record header and key lookups binary-search the sorted
	// cells instead of scanning them. ~13 bytes per node + 4 per cell; for
	// the serving tier that trade buys the cube-like Point latency the
	// encoded representation otherwise gives up to varint parsing.
	levels   []uint16 // levels[id-1]: node id's level
	ncells   []uint32 // ncells[id-1]: node id's key-cell count
	cellsOff []uint32 // cellsOff[id-1]: offset of node id's first cell
	cellIdx  []uint32 // cellIdx[id-1]: node id's slot range start in cellOffs
	cellOffs []uint32 // one offset per cell record, node-major, key order
}

// errCorrupt wraps a structural complaint in ErrCorruptCube so every parse
// failure — decoder or view — satisfies errors.Is(err, ErrCorruptCube).
func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptCube, fmt.Sprintf(format, args...))
}

// cursor is a bounds-checked reader over the payload of an encoded cube.
// Every out-of-bounds or malformed read returns ErrCorruptCube; cursors
// never panic on arbitrary bytes.
type cursor struct {
	data []byte
	pos  int
	end  int // exclusive limit (start of the CRC word)
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.pos:c.end])
	if n <= 0 {
		return 0, errCorrupt("bad uvarint at offset %d", c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) u8() (byte, error) {
	if c.pos >= c.end {
		return 0, errCorrupt("unexpected end of stream at offset %d", c.pos)
	}
	b := c.data[c.pos]
	c.pos++
	return b, nil
}

// str reads a length-prefixed string and returns a view of its bytes.
func (c *cursor) str() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.end-c.pos) {
		return nil, errCorrupt("string of %d bytes overruns stream at offset %d", n, c.pos)
	}
	s := c.data[c.pos : c.pos+int(n)]
	c.pos += int(n)
	return s, nil
}

// skipAgg advances over an encoded aggregate without decoding its floats —
// the hot path for cell scans that pass over non-matching leaf cells.
func (c *cursor) skipAgg() error {
	if c.end-c.pos < 24 {
		return errCorrupt("truncated aggregate at offset %d", c.pos)
	}
	c.pos += 24
	_, err := c.uvarint()
	return err
}

func (c *cursor) agg() (Aggregate, error) {
	if c.end-c.pos < 24 {
		return Aggregate{}, errCorrupt("truncated aggregate at offset %d", c.pos)
	}
	var a Aggregate
	a.Sum = f64frombytes(c.data[c.pos:])
	a.Min = f64frombytes(c.data[c.pos+8:])
	a.Max = f64frombytes(c.data[c.pos+16:])
	c.pos += 24
	cnt, err := c.uvarint()
	if err != nil {
		return Aggregate{}, err
	}
	a.Count = int64(cnt)
	return a, nil
}

// viewHeader is the parsed fixed header of a v1 stream: everything before
// the node section.
type viewHeader struct {
	numTuples  uint64
	fromQuery  bool
	dims       []string
	nodeCount  uint64
	nodesStart int
	payloadEnd int // offset of the v1 CRC word
}

// parseViewHeader parses the header of v1, a stream with any offset trailer
// already stripped (see splitIndexed).
func parseViewHeader(v1 []byte) (viewHeader, error) {
	if len(v1) < len(codecMagic)+4 {
		return viewHeader{}, errCorrupt("stream of %d bytes is shorter than magic plus checksum", len(v1))
	}
	if string(v1[:len(codecMagic)]) != codecMagic {
		return viewHeader{}, ErrBadMagic
	}
	h := viewHeader{payloadEnd: len(v1) - 4}
	cur := cursor{data: v1, pos: len(codecMagic), end: h.payloadEnd}
	version, err := cur.u8()
	if err != nil {
		return viewHeader{}, err
	}
	if version != codecVersion {
		return viewHeader{}, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	flags, err := cur.u8()
	if err != nil {
		return viewHeader{}, err
	}
	h.fromQuery = flags&1 != 0
	if h.numTuples, err = cur.uvarint(); err != nil {
		return viewHeader{}, err
	}
	ndims, err := cur.uvarint()
	if err != nil {
		return viewHeader{}, err
	}
	if ndims == 0 || ndims > 1<<16 {
		return viewHeader{}, errCorrupt("implausible dimension count %d", ndims)
	}
	h.dims = make([]string, ndims)
	for i := range h.dims {
		d, err := cur.str()
		if err != nil {
			return viewHeader{}, err
		}
		h.dims[i] = string(d)
	}
	if h.nodeCount, err = cur.uvarint(); err != nil {
		return viewHeader{}, err
	}
	if h.nodeCount > uint64(len(v1)) {
		return viewHeader{}, errCorrupt("node count %d exceeds stream size", h.nodeCount)
	}
	h.nodesStart = cur.pos
	return h, nil
}

// scanEncoded walks the node section of a v1 stream once, front to back,
// validating every structural invariant the query walks rely on: levels in
// range, the leaf flag agreeing with the level, cell keys strictly sorted,
// child ids pointing backwards to nodes one level deeper, and the stream
// fully consumed. It returns the per-node record and ALL-record offsets plus
// the root id — the same index the v2 trailer carries precomputed.
// When zacc is non-nil the scan also folds every cell key into it, giving
// the upgrade path (AppendOffsetTrailer) its zone maps for free.
func scanEncoded(v1 []byte, h viewHeader, zacc *zoneAcc) (starts, allOffs []uint32, rootID uint64, err error) {
	if len(v1) > maxStreamBytes {
		return nil, nil, 0, errCorrupt("stream of %d bytes exceeds the 4 GiB offset-index limit", len(v1))
	}
	ndims := len(h.dims)
	cur := cursor{data: v1, pos: h.nodesStart, end: h.payloadEnd}
	starts = make([]uint32, h.nodeCount)
	allOffs = make([]uint32, h.nodeCount)
	levels := make([]int32, h.nodeCount)
	for id := uint64(1); id <= h.nodeCount; id++ {
		starts[id-1] = uint32(cur.pos)
		level, err := cur.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if level >= uint64(ndims) {
			return nil, nil, 0, errCorrupt("node %d: level %d out of range for %d dimensions", id, level, ndims)
		}
		leafB, err := cur.u8()
		if err != nil {
			return nil, nil, 0, err
		}
		if leafB > 1 {
			return nil, nil, 0, errCorrupt("node %d: bad leaf flag %d", id, leafB)
		}
		leaf := leafB == 1
		if leaf != (int(level) == ndims-1) {
			return nil, nil, 0, errCorrupt("node %d: leaf flag %v disagrees with level %d of %d", id, leaf, level, ndims)
		}
		levels[id-1] = int32(level)
		ncells, err := cur.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if ncells > uint64(cur.end-cur.pos) {
			return nil, nil, 0, errCorrupt("node %d: cell count %d overruns stream", id, ncells)
		}
		var prevKey []byte
		for i := uint64(0); i < ncells; i++ {
			key, err := cur.str()
			if err != nil {
				return nil, nil, 0, err
			}
			if i > 0 && cmpKeys(prevKey, key) >= 0 {
				return nil, nil, 0, errCorrupt("node %d: cell keys not strictly sorted", id)
			}
			prevKey = key
			if zacc != nil {
				zacc.add(int(level), key)
			}
			if leaf {
				if _, err := cur.agg(); err != nil {
					return nil, nil, 0, err
				}
			} else {
				child, err := cur.uvarint()
				if err != nil {
					return nil, nil, 0, err
				}
				if child == 0 || child >= id {
					return nil, nil, 0, errCorrupt("node %d: cell child id %d is not an earlier node", id, child)
				}
				if levels[child-1] != int32(level)+1 {
					return nil, nil, 0, errCorrupt("node %d: child %d at level %d, want %d", id, child, levels[child-1], level+1)
				}
			}
		}
		allOffs[id-1] = uint32(cur.pos)
		if leaf {
			if _, err := cur.agg(); err != nil {
				return nil, nil, 0, err
			}
		} else {
			all, err := cur.uvarint()
			if err != nil {
				return nil, nil, 0, err
			}
			if all >= id {
				return nil, nil, 0, errCorrupt("node %d: ALL child id %d is not an earlier node", id, all)
			}
			if all != 0 && levels[all-1] != int32(level)+1 {
				return nil, nil, 0, errCorrupt("node %d: ALL child %d at level %d, want %d", id, all, levels[all-1], level+1)
			}
		}
	}
	if rootID, err = cur.uvarint(); err != nil {
		return nil, nil, 0, err
	}
	if rootID > h.nodeCount {
		return nil, nil, 0, errCorrupt("root id %d exceeds node count %d", rootID, h.nodeCount)
	}
	if h.nodeCount > 0 && (rootID == 0 || levels[rootID-1] != 0) {
		return nil, nil, 0, errCorrupt("root id %d does not name a level-0 node", rootID)
	}
	if cur.pos != h.payloadEnd {
		return nil, nil, 0, errCorrupt("%d trailing bytes after root id", h.payloadEnd-cur.pos)
	}
	return starts, allOffs, rootID, nil
}

// OpenView verifies the stream's checksum and prepares a zero-copy view
// over it. With a v2 offset trailer (EncodeIndexed) the node index comes
// from the trailer; otherwise it is built lazily by a validating scan on
// the first query. The view aliases data: the caller must not mutate it
// while the view is in use.
func OpenView(data []byte) (*CubeView, error) { return openView(data, true) }

// OpenViewTrusted is OpenView without the payload checksum pass, for O(1)
// opens of bytes whose integrity is already guaranteed — a region this
// process just encoded, or a file the storage layer checksums itself.
// Queries remain memory-safe on corrupt input, but may return wrong answers
// instead of ErrCorruptCube.
func OpenViewTrusted(data []byte) (*CubeView, error) { return openView(data, false) }

func openView(data []byte, verify bool) (*CubeView, error) {
	v1, trailer, meta, err := splitSections(data)
	if err != nil {
		return nil, err
	}
	if verify {
		if err := verifyPayload(v1); err != nil {
			return nil, err
		}
	}
	h, err := parseViewHeader(v1)
	if err != nil {
		return nil, err
	}
	v := &CubeView{data: v1, hdr: h}
	if meta != nil {
		if v.zones, err = parseZoneMaps(meta, len(h.dims)); err != nil {
			return nil, err
		}
	}
	if trailer != nil {
		if err := v.loadTrailer(trailer); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// loadTrailer adopts the offset index carried by a CRC-validated trailer
// body, cross-checking it against the header so a well-formed trailer can
// never send reads outside the node section.
func (v *CubeView) loadTrailer(body []byte) error {
	if len(body) < trailerFixedLen {
		return errCorrupt("offset trailer body of %d bytes is too short", len(body))
	}
	nodeCount := uint64(binary.LittleEndian.Uint32(body))
	rootID := uint64(binary.LittleEndian.Uint32(body[4:]))
	nodesStart := int(binary.LittleEndian.Uint32(body[8:]))
	if nodeCount != v.hdr.nodeCount || nodesStart != v.hdr.nodesStart {
		return errCorrupt("offset trailer disagrees with header: %d nodes at %d vs %d at %d",
			nodeCount, nodesStart, v.hdr.nodeCount, v.hdr.nodesStart)
	}
	if uint64(len(body)-trailerFixedLen) != nodeCount*8 {
		return errCorrupt("offset trailer body is %d bytes, want %d for %d nodes",
			len(body), trailerFixedLen+nodeCount*8, nodeCount)
	}
	if rootID > nodeCount || (nodeCount > 0 && rootID == 0) {
		return errCorrupt("offset trailer root id %d out of range for %d nodes", rootID, nodeCount)
	}
	starts := make([]uint32, nodeCount)
	allOffs := make([]uint32, nodeCount)
	var prevAll uint32
	for i := uint64(0); i < nodeCount; i++ {
		start := binary.LittleEndian.Uint32(body[trailerFixedLen+8*i:])
		allOff := binary.LittleEndian.Uint32(body[trailerFixedLen+8*i+4:])
		if i == 0 {
			if int(start) != nodesStart {
				return errCorrupt("offset trailer first node at %d, want %d", start, nodesStart)
			}
		} else if start <= prevAll {
			return errCorrupt("offset trailer entry %d out of order", i+1)
		}
		// The ALL record sits inside the node record, after the header and
		// cells, and before the payload's CRC word.
		if allOff <= start || uint64(allOff) >= uint64(v.hdr.payloadEnd) {
			return errCorrupt("offset trailer entry %d out of range", i+1)
		}
		starts[i] = start
		allOffs[i] = allOff
		prevAll = allOff
	}
	v.starts, v.allOffs, v.rootID = starts, allOffs, rootID
	v.indexed = true
	// The scan-built index proves the root is a level-0 node; hold a forged
	// trailer to the same bar so no query path can silently start mid-cube.
	if rootID != 0 {
		n, err := v.node(rootID)
		if err != nil {
			return err
		}
		if n.level != 0 {
			return errCorrupt("offset trailer root id %d names a level-%d node", rootID, n.level)
		}
	}
	return nil
}

// ensure makes the node offset index and the fanout side-index available,
// building them on the first query so opens stay O(header) for
// trailer-carrying streams. Safe for concurrent callers.
func (v *CubeView) ensure() error {
	v.once.Do(func() {
		if !v.indexed {
			starts, allOffs, rootID, err := scanEncoded(v.data, v.hdr, nil)
			if err != nil {
				v.idxErr = err
				return
			}
			v.starts, v.allOffs, v.rootID = starts, allOffs, rootID
		}
		v.idxErr = v.buildFanoutIndex()
	})
	return v.idxErr
}

// buildFanoutIndex walks the node section once, recording every record
// header (level, cell count, first-cell offset) and every cell offset into
// flat arrays. All reads are bounds-checked, so a corrupt (trusted-open)
// stream fails with ErrCorruptCube here rather than mid-query; each node's
// walk is also cross-checked against the ALL offset the trailer or scan
// produced, tying the two indexes together.
func (v *CubeView) buildFanoutIndex() error {
	nodeCount := v.hdr.nodeCount
	ndims := uint64(len(v.hdr.dims))
	levels := make([]uint16, nodeCount)
	ncells := make([]uint32, nodeCount)
	cellsOff := make([]uint32, nodeCount)
	cellIdx := make([]uint32, nodeCount+1)
	cellOffs := make([]uint32, 0, nodeCount*4)
	for id := uint64(1); id <= nodeCount; id++ {
		cur := cursor{data: v.data, pos: int(v.starts[id-1]), end: v.hdr.payloadEnd}
		level, err := cur.uvarint()
		if err != nil {
			return err
		}
		if level >= ndims {
			return errCorrupt("node %d: level %d out of range for %d dimensions", id, level, ndims)
		}
		leafB, err := cur.u8()
		if err != nil {
			return err
		}
		if leafB > 1 {
			return errCorrupt("node %d: bad leaf flag %d", id, leafB)
		}
		leaf := leafB == 1
		if leaf != (level == ndims-1) {
			return errCorrupt("node %d: leaf flag %v disagrees with level %d of %d", id, leaf, level, ndims)
		}
		nc, err := cur.uvarint()
		if err != nil {
			return err
		}
		if nc > uint64(cur.end-cur.pos) {
			return errCorrupt("node %d: cell count %d overruns stream", id, nc)
		}
		levels[id-1] = uint16(level)
		ncells[id-1] = uint32(nc)
		cellsOff[id-1] = uint32(cur.pos)
		cellIdx[id-1] = uint32(len(cellOffs))
		for i := uint64(0); i < nc; i++ {
			cellOffs = append(cellOffs, uint32(cur.pos))
			if _, err := cur.str(); err != nil {
				return err
			}
			if leaf {
				if err := cur.skipAgg(); err != nil {
					return err
				}
			} else if _, err := cur.uvarint(); err != nil {
				return err
			}
		}
		if uint32(cur.pos) != v.allOffs[id-1] {
			return errCorrupt("node %d: cells end at %d but ALL record starts at %d", id, cur.pos, v.allOffs[id-1])
		}
	}
	cellIdx[nodeCount] = uint32(len(cellOffs))
	v.levels, v.ncells, v.cellsOff = levels, ncells, cellsOff
	v.cellIdx, v.cellOffs = cellIdx, cellOffs
	return nil
}

// Indexed reports whether the node offset index was read from a v2 trailer
// (true) or must be / was built by scanning (false).
func (v *CubeView) Indexed() bool { return v.indexed }

// ZoneMaps returns the per-dimension zone maps carried by the stream's v3
// metadata section, or nil when the stream has none (v1/v2 files) — callers
// must then treat every segment as possibly matching.
func (v *CubeView) ZoneMaps() []ZoneMap {
	if v.zones == nil {
		return nil
	}
	return append([]ZoneMap(nil), v.zones...)
}

// Dims returns the cube's dimension names in order.
func (v *CubeView) Dims() []string { return append([]string(nil), v.hdr.dims...) }

// NumDims returns the number of dimensions.
func (v *CubeView) NumDims() int { return len(v.hdr.dims) }

// NumSourceTuples returns how many fact tuples were folded into the cube.
func (v *CubeView) NumSourceTuples() int { return int(v.hdr.numTuples) }

// FromQuery reports the paper's is_cube flag: whether the encoded cube was
// produced by querying another DWARF.
func (v *CubeView) FromQuery() bool { return v.hdr.fromQuery }

// EncodedBytes returns the size of the underlying v1 stream (any offset
// trailer excluded).
func (v *CubeView) EncodedBytes() int { return len(v.data) }

// vnode is a parsed node record header; cells is a cursor positioned at the
// first cell.
type vnode struct {
	id     uint64
	level  int
	leaf   bool
	ncells int
	cells  cursor
	allPos int
}

// node parses the record header of node id. Callers must hold a built index
// (ensure). With the fanout side-index in place the header comes from the
// flat arrays — no varint parsing per descent step.
func (v *CubeView) node(id uint64) (vnode, error) {
	if id == 0 || id > uint64(len(v.starts)) {
		return vnode{}, errCorrupt("node id %d out of range", id)
	}
	if v.cellsOff != nil {
		level := int(v.levels[id-1])
		return vnode{
			id: id, level: level, leaf: level == len(v.hdr.dims)-1,
			ncells: int(v.ncells[id-1]),
			cells:  cursor{data: v.data, pos: int(v.cellsOff[id-1]), end: v.hdr.payloadEnd},
			allPos: int(v.allOffs[id-1]),
		}, nil
	}
	cur := cursor{data: v.data, pos: int(v.starts[id-1]), end: v.hdr.payloadEnd}
	level, err := cur.uvarint()
	if err != nil {
		return vnode{}, err
	}
	if level >= uint64(len(v.hdr.dims)) {
		return vnode{}, errCorrupt("node %d: level %d out of range", id, level)
	}
	leafB, err := cur.u8()
	if err != nil {
		return vnode{}, err
	}
	ncells, err := cur.uvarint()
	if err != nil {
		return vnode{}, err
	}
	if ncells > uint64(cur.end-cur.pos) {
		return vnode{}, errCorrupt("node %d: cell count %d overruns stream", id, ncells)
	}
	return vnode{
		id: id, level: int(level), leaf: leafB == 1, ncells: int(ncells),
		cells: cur, allPos: int(v.allOffs[id-1]),
	}, nil
}

// allAgg reads a leaf node's ALL aggregate.
func (v *CubeView) allAgg(n vnode) (Aggregate, error) {
	cur := cursor{data: v.data, pos: n.allPos, end: v.hdr.payloadEnd}
	return cur.agg()
}

// allChild reads a non-leaf node's ALL child id (0 = nil).
func (v *CubeView) allChild(n vnode) (uint64, error) {
	cur := cursor{data: v.data, pos: n.allPos, end: v.hdr.payloadEnd}
	id, err := cur.uvarint()
	if err != nil {
		return 0, err
	}
	if id >= n.id {
		return 0, errCorrupt("node %d: ALL child id %d is not an earlier node", n.id, id)
	}
	return id, nil
}

// childID validates a cell's child reference.
func (n vnode) childID(id uint64) (uint64, error) {
	if id == 0 || id >= n.id {
		return 0, errCorrupt("node %d: cell child id %d is not an earlier node", n.id, id)
	}
	return id, nil
}

// findCell binary-searches node id's sorted cells for key using the fanout
// side-index. It returns the offset of the matched cell's value (the leaf
// aggregate bytes or the child-id uvarint). Offsets in cellOffs were
// validated in-bounds when the index was built.
func (v *CubeView) findCell(id uint64, key string) (valPos int, ok bool) {
	lo, hi := int(v.cellIdx[id-1]), int(v.cellIdx[id])
	end := v.hdr.payloadEnd
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		pos := int(v.cellOffs[m])
		klen, w := binary.Uvarint(v.data[pos:end])
		ks := pos + w
		switch c := cmpKeyStr(v.data[ks:ks+int(klen)], key); {
		case c < 0:
			lo = m + 1
		case c > 0:
			hi = m
		default:
			return ks + int(klen), true
		}
	}
	return 0, false
}

// lookupCell finds key among the node's sorted cells — a binary search over
// the fanout side-index when built, a front-to-back scan otherwise. It
// returns the leaf aggregate or child id of the matching cell.
func (v *CubeView) lookupCell(n vnode, key string) (agg Aggregate, child uint64, found bool, err error) {
	if v.cellIdx != nil {
		valPos, ok := v.findCell(n.id, key)
		if !ok {
			return Aggregate{}, 0, false, nil
		}
		cur := cursor{data: v.data, pos: valPos, end: v.hdr.payloadEnd}
		if n.leaf {
			a, err := cur.agg()
			return a, 0, err == nil, err
		}
		id, err := cur.uvarint()
		if err != nil {
			return Aggregate{}, 0, false, err
		}
		id, err = n.childID(id)
		return Aggregate{}, id, err == nil, err
	}
	cur := n.cells
	for i := 0; i < n.ncells; i++ {
		k, err := cur.str()
		if err != nil {
			return Aggregate{}, 0, false, err
		}
		c := cmpKeyStr(k, key)
		if c > 0 { // sorted: the key is absent
			return Aggregate{}, 0, false, nil
		}
		if n.leaf {
			if c == 0 {
				a, err := cur.agg()
				if err != nil {
					return Aggregate{}, 0, false, err
				}
				return a, 0, true, nil
			}
			if err := cur.skipAgg(); err != nil {
				return Aggregate{}, 0, false, err
			}
		} else {
			id, err := cur.uvarint()
			if err != nil {
				return Aggregate{}, 0, false, err
			}
			if c == 0 {
				id, err = n.childID(id)
				return Aggregate{}, id, err == nil, err
			}
		}
	}
	return Aggregate{}, 0, false, nil
}

// The query methods on *CubeView are thin wrappers over the unified kernel
// (kernel.go), which reads the encoded bytes through the view's Source
// implementation (source.go). The same kernel serves *Cube, so both
// representations answer every shape from literally the same code.

// Point answers a point or ALL-wildcard query against the encoded bytes,
// with the same semantics as Cube.Point: absent combinations yield the zero
// Aggregate, errors are reserved for malformed queries and corrupt streams.
//
// This is a dedicated descent over the fanout side-index — header metadata
// from flat arrays, cell lookup by binary search, no interface dispatch —
// and the differential suites hold it answer-identical to QueryPoint over
// the generic Source path.
func (v *CubeView) Point(keys ...string) (Aggregate, error) {
	ndims := len(v.hdr.dims)
	if len(keys) != ndims {
		return Aggregate{}, fmt.Errorf("%w: got %d keys, cube has %d dimensions", ErrBadQuery, len(keys), ndims)
	}
	if err := v.ensure(); err != nil {
		return Aggregate{}, err
	}
	id := v.rootID
	if id == 0 {
		return Aggregate{}, nil
	}
	for l := 0; ; l++ {
		if int(v.levels[id-1]) != l {
			return Aggregate{}, errCorrupt("node %d: level %d at traversal depth %d", id, v.levels[id-1], l)
		}
		leaf := l == ndims-1
		var valPos int
		if keys[l] == All {
			valPos = int(v.allOffs[id-1])
		} else {
			pos, ok := v.findCell(id, keys[l])
			if !ok {
				return Aggregate{}, nil
			}
			valPos = pos
		}
		cur := cursor{data: v.data, pos: valPos, end: v.hdr.payloadEnd}
		if leaf {
			return cur.agg()
		}
		child, err := cur.uvarint()
		if err != nil {
			return Aggregate{}, err
		}
		if child >= id {
			return Aggregate{}, errCorrupt("node %d: child id %d is not an earlier node", id, child)
		}
		if keys[l] != All && child == 0 {
			return Aggregate{}, errCorrupt("node %d: cell child id 0", id)
		}
		if child == 0 {
			// An absent ALL sub-dwarf: the whole branch aggregates to zero.
			return Aggregate{}, nil
		}
		id = child
	}
}

// Range aggregates over the sub-cube addressed by one selector per
// dimension, mirroring Cube.Range.
func (v *CubeView) Range(sels []Selector) (Aggregate, error) {
	return QueryRange(v, sels)
}

// GroupBy returns, for the dimension at index dim, the aggregate of every
// key under the restriction of sels, mirroring Cube.GroupBy.
func (v *CubeView) GroupBy(dim int, sels []Selector) (map[string]Aggregate, error) {
	return QueryGroupBy(v, dim, sels)
}

// Pivot is the multi-dimension GroupBy, mirroring Cube.Pivot, straight off
// the encoded bytes.
func (v *CubeView) Pivot(dims []int, sels []Selector) ([]PivotGroup, error) {
	return QueryPivot(v, dims, sels)
}

// TopK ranks the groups of the dimension at index dim by spec's metric,
// mirroring Cube.TopK, straight off the encoded bytes.
func (v *CubeView) TopK(dim int, sels []Selector, spec TopKSpec) ([]GroupEntry, error) {
	return QueryTopK(v, dim, sels, spec)
}

// Tuples enumerates the cube's base facts in sorted dimension order,
// mirroring Cube.Tuples. The callback receives a reused dims slice; copy it
// to retain. Unlike the in-memory cube, enumeration can fail on a corrupt
// stream, hence the error return.
func (v *CubeView) Tuples(fn func(dims []string, agg Aggregate) bool) error {
	return QueryTuples(v, fn)
}

// Stats counts nodes and cells straight off the encoded bytes, matching
// Cube.Stats for the same cube (the encoding holds exactly the distinct
// reachable nodes).
func (v *CubeView) Stats() (Stats, error) {
	if err := v.ensure(); err != nil {
		return Stats{}, err
	}
	st := Stats{SourceTuples: int(v.hdr.numTuples)}
	for id := uint64(1); id <= v.hdr.nodeCount; id++ {
		n, err := v.node(id)
		if err != nil {
			return Stats{}, err
		}
		st.Nodes++
		st.AllCells++
		st.Cells += n.ncells
		st.EstBytes += nodeOverheadBytes
		cur := n.cells
		for i := 0; i < n.ncells; i++ {
			k, err := cur.str()
			if err != nil {
				return Stats{}, err
			}
			st.EstBytes += cellOverheadBytes + int64(len(k))
			if n.leaf {
				if err := cur.skipAgg(); err != nil {
					return Stats{}, err
				}
			} else if _, err := cur.uvarint(); err != nil {
				return Stats{}, err
			}
		}
	}
	return st, nil
}

// f64frombytes decodes a little-endian float64 from the first 8 bytes of b.
func f64frombytes(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// cmpKeys compares two encoded keys.
func cmpKeys(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// cmpKeyStr compares an encoded key against a query key without allocating.
func cmpKeyStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}
