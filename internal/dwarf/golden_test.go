package dwarf

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// goldenCube builds the fixed cube committed as testdata/golden_v1.dwarf
// (plain v1), testdata/golden_v2.dwarf (with the offset trailer) and
// testdata/golden_v3.dwarf (offset trailer plus zone-map metadata). Any
// change to its bytes is a format break and must be a deliberate,
// version-bumped decision.
func goldenCube(tb testing.TB) *Cube {
	c, err := New([]string{"Year", "Month", "Region", "Kind"}, goldenTuples())
	if err != nil {
		tb.Fatalf("golden cube: %v", err)
	}
	return c
}

func goldenTuples() []Tuple {
	return []Tuple{
		{Dims: []string{"2015", "Jan", "north", "bike"}, Measure: 4},
		{Dims: []string{"2015", "Jan", "north", "car"}, Measure: 2},
		{Dims: []string{"2015", "Jan", "south", "bike"}, Measure: 7},
		{Dims: []string{"2015", "Feb", "north", "bike"}, Measure: 1},
		{Dims: []string{"2015", "Feb", "south", "car"}, Measure: 3},
		{Dims: []string{"2016", "Jan", "north", "bike"}, Measure: 4},
		{Dims: []string{"2016", "Jan", "south", "scooter"}, Measure: 9},
		{Dims: []string{"2016", "Feb", "east", "bike"}, Measure: 5},
		{Dims: []string{"2015", "Jan", "north", "bike"}, Measure: 6}, // duplicate combination
	}
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// TestWriteGolden regenerates the golden fixtures. Guarded: a byte change
// to the encoding must be committed knowingly, never by accident.
//
//	WRITE_GOLDEN=1 go test -run TestWriteGolden ./internal/dwarf/
func TestWriteGolden(t *testing.T) {
	if os.Getenv("WRITE_GOLDEN") == "" {
		t.Skip("set WRITE_GOLDEN=1 to regenerate testdata/golden_*.dwarf")
	}
	c := goldenCube(t)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath("golden_v1.dwarf"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := c.EncodeIndexed(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// golden_v2 is the pre-zone-map layout — the full stream minus the v3
	// section — kept as the old-reader fixture.
	metaLen := int(binary.LittleEndian.Uint32(full[len(full)-12:])) + metaFootLen
	if err := os.WriteFile(goldenPath("golden_v2.dwarf"), full[:len(full)-metaLen], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath("golden_v3.dwarf"), full, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenByteStable asserts Encode and EncodeIndexed reproduce the
// committed fixtures byte for byte: the on-disk format is stable across
// refactors, serial and parallel builds included.
func TestGoldenByteStable(t *testing.T) {
	wantV1, err := os.ReadFile(goldenPath("golden_v1.dwarf"))
	if err != nil {
		t.Fatalf("missing fixture (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	wantV2, err := os.ReadFile(goldenPath("golden_v2.dwarf"))
	if err != nil {
		t.Fatalf("missing fixture (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	wantV3, err := os.ReadFile(goldenPath("golden_v3.dwarf"))
	if err != nil {
		t.Fatalf("missing fixture (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	// The v3 stream extends the v2 stream: same v1 payload and offset
	// trailer, with only the metadata section appended.
	if !bytes.HasPrefix(wantV3, wantV2) {
		t.Fatal("golden_v3.dwarf does not extend golden_v2.dwarf")
	}
	for _, workers := range []int{1, 4} {
		c, err := New([]string{"Year", "Month", "Region", "Kind"}, goldenTuples(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), wantV1) {
			t.Fatalf("workers=%d: Encode is not byte-stable against golden_v1.dwarf (%d vs %d bytes)",
				workers, buf.Len(), len(wantV1))
		}
		buf.Reset()
		if err := c.EncodeIndexed(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), wantV3) {
			t.Fatalf("workers=%d: EncodeIndexed is not byte-stable against golden_v3.dwarf", workers)
		}
	}
}

// TestGoldenV1StaysReadable asserts v1 streams (no offset trailer) keep
// decoding and viewing: the trailer is an optional accelerator, not a
// format fork.
func TestGoldenV1StaysReadable(t *testing.T) {
	data, err := os.ReadFile(goldenPath("golden_v1.dwarf"))
	if err != nil {
		t.Fatalf("missing fixture: %v", err)
	}
	if HasOffsetTrailer(data) {
		t.Fatal("golden_v1.dwarf unexpectedly carries a trailer")
	}
	if err := VerifyEncoded(data); err != nil {
		t.Fatalf("VerifyEncoded(v1): %v", err)
	}
	c, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes(v1): %v", err)
	}
	v, err := OpenView(data)
	if err != nil {
		t.Fatalf("OpenView(v1): %v", err)
	}
	if v.Indexed() {
		t.Fatal("v1 view claims a trailer index")
	}
	assertViewMatchesCube(t, c, v, "golden v1")

	// And the v2 fixture answers identically through every reader.
	dataV2, err := os.ReadFile(goldenPath("golden_v2.dwarf"))
	if err != nil {
		t.Fatalf("missing fixture: %v", err)
	}
	if !HasOffsetTrailer(dataV2) {
		t.Fatal("golden_v2.dwarf carries no trailer")
	}
	c2, err := DecodeBytes(dataV2)
	if err != nil {
		t.Fatalf("DecodeBytes(v2): %v", err)
	}
	v2, err := OpenView(dataV2)
	if err != nil {
		t.Fatalf("OpenView(v2): %v", err)
	}
	if !v2.Indexed() {
		t.Fatal("v2 view built no trailer index")
	}
	assertViewMatchesCube(t, c2, v2, "golden v2")
	if got, want := c2.Stats(), c.Stats(); got != want {
		t.Fatalf("v2 decode Stats %+v differ from v1 %+v", got, want)
	}
	if v2.ZoneMaps() != nil {
		t.Fatal("v2 fixture unexpectedly carries zone maps")
	}

	// The v3 fixture opens through every reader and carries the pinned
	// zone maps of the golden facts.
	dataV3, err := os.ReadFile(goldenPath("golden_v3.dwarf"))
	if err != nil {
		t.Fatalf("missing fixture: %v", err)
	}
	if !HasOffsetTrailer(dataV3) {
		t.Fatal("golden_v3.dwarf carries no trailer")
	}
	c3, err := DecodeBytes(dataV3)
	if err != nil {
		t.Fatalf("DecodeBytes(v3): %v", err)
	}
	v3, err := OpenView(dataV3)
	if err != nil {
		t.Fatalf("OpenView(v3): %v", err)
	}
	assertViewMatchesCube(t, c3, v3, "golden v3")
	wantZones := []ZoneMap{
		{Min: "2015", Max: "2016", Distinct: 2},
		{Min: "Feb", Max: "Jan", Distinct: 2},
		{Min: "east", Max: "south", Distinct: 3},
		{Min: "bike", Max: "scooter", Distinct: 3},
	}
	gotZones := v3.ZoneMaps()
	if len(gotZones) != len(wantZones) {
		t.Fatalf("v3 zone maps: got %d dimensions, want %d", len(gotZones), len(wantZones))
	}
	for d := range wantZones {
		if gotZones[d] != wantZones[d] {
			t.Fatalf("v3 zone map %d = %+v, want %+v", d, gotZones[d], wantZones[d])
		}
	}

	// A known point answer, pinned so fixture regeneration that changes
	// semantics (not just bytes) is caught.
	agg, err := v.Point("2015", "Jan", "north", "bike")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Sum != 10 || agg.Count != 2 || agg.Min != 4 || agg.Max != 6 {
		t.Fatalf("golden Point = %v, want sum=10 count=2 min=4 max=6", agg)
	}
}
