package dwarf

import (
	"fmt"
	"math"
)

// Aggregate is the full aggregation state kept in every DWARF leaf cell and
// ALL cell. The paper stores a single integer measure (SUM); we keep the
// complete distributive state so that SUM, COUNT, MIN, MAX and AVG can all
// be answered from one cube without rebuilding.
type Aggregate struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
}

// NewAggregate returns the aggregate state of a single measure value.
func NewAggregate(v float64) Aggregate {
	return Aggregate{Sum: v, Count: 1, Min: v, Max: v}
}

// Add folds one more measure value into the aggregate.
func (a *Aggregate) Add(v float64) {
	if a.Count == 0 {
		*a = NewAggregate(v)
		return
	}
	a.Sum += v
	a.Count++
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
}

// MergeAggregates combines two aggregate states. Merging with the zero
// aggregate is the identity.
func MergeAggregates(a, b Aggregate) Aggregate {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := Aggregate{
		Sum:   a.Sum + b.Sum,
		Count: a.Count + b.Count,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	return out
}

// Avg returns the mean of the aggregated measures, or 0 for an empty
// aggregate.
func (a Aggregate) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// IsZero reports whether no measures have been folded in.
func (a Aggregate) IsZero() bool { return a.Count == 0 }

// Equal reports exact equality of the aggregate states. Float comparison is
// exact: construction order is deterministic, so identical inputs produce
// identical states.
func (a Aggregate) Equal(b Aggregate) bool {
	return a.Sum == b.Sum && a.Count == b.Count && a.Min == b.Min && a.Max == b.Max
}

// String renders the aggregate for debugging and example output.
func (a Aggregate) String() string {
	if a.Count == 0 {
		return "{empty}"
	}
	return fmt.Sprintf("{sum=%g count=%d min=%g max=%g}", a.Sum, a.Count, a.Min, a.Max)
}
