package dwarf

import (
	"sort"
	"unsafe"
)

// Source is the cursor-style interface the unified query kernel walks. Both
// cube representations implement it — *Cube over the pointer node graph and
// *CubeView over the encoded bytes — so every query shape (kernel.go) is
// written exactly once and answers identically on either. The live store
// fans the same kernel out over many sources and merges the partials
// (internal/cubestore), and internal/query builds the name-based rollup /
// drill-down surface on top.
//
// The contract mirrors a DWARF node: a Source exposes, for any node cursor,
// its ALL cell (the aggregate over the whole dimension, or the sub-dwarf
// computing it), point lookup of one key cell, and an in-order scan of its
// key cells. The kernel supplies the traversal level with every call;
// encoded sources revalidate it so a corrupt stream can never send a walk
// sideways. All methods must be safe for concurrent callers.
//
// Methods are Source-prefixed so implementations can keep their ordinary
// exported surface (Cube.Root returns a *Node, for example) collision-free.
type Source interface {
	// NumDims returns the number of dimensions.
	NumDims() int
	// Dims returns the dimension names in order.
	Dims() []string
	// SourceRoot returns the cursor of the level-0 root node. A nil cursor
	// (Cursor.IsNil) means the empty cube: every query answers zero.
	SourceRoot() (Cursor, error)
	// SourceAll resolves n's ALL cell. At the leaf level the aggregate is
	// returned; above it the ALL child cursor (possibly nil) is.
	SourceAll(n Cursor, level int) (Aggregate, Cursor, error)
	// SourceLookup finds the cell of key in n. At the leaf level the
	// aggregate is returned; above it the child cursor is.
	SourceLookup(n Cursor, level int, key string) (agg Aggregate, child Cursor, found bool, err error)
	// SourceCells positions it at n's first cell whose key is >= lo (lo ""
	// means the first cell; sources may ignore the bound and start earlier,
	// as the encoded representation cannot seek). The iterator is owned by
	// the caller and may be reused across calls.
	SourceCells(n Cursor, level int, lo string, it *CellIter) error
	// SourceNext returns the next cell of it in key order: the key, and the
	// leaf aggregate or child cursor. ok is false when the scan is done.
	// The key may alias memory owned by the source — see StableKeys.
	SourceNext(it *CellIter) (key string, agg Aggregate, child Cursor, ok bool, err error)
	// StableKeys reports whether strings handed out by SourceNext remain
	// valid indefinitely. When false (encoded views: keys alias the mapped
	// bytes) the kernel clones any key it retains past the walk.
	StableKeys() bool
}

// Cursor addresses one node of a Source: a pointer into the node graph or a
// record id in the encoded bytes. The zero Cursor is the nil node.
type Cursor struct {
	n  *Node
	id uint64
}

// IsNil reports whether the cursor addresses no node (an absent sub-dwarf).
func (c Cursor) IsNil() bool { return c.n == nil && c.id == 0 }

// CellIter is reusable cell-scan state for SourceCells/SourceNext. The
// kernel keeps one per traversal level; a recursion's deeper levels use
// their own iterators, so one allocation serves the whole walk.
type CellIter struct {
	// Node-graph scans.
	node *Node
	i    int

	// Encoded scans.
	v      *CubeView
	cur    cursor
	ncells int
	idx    int
	leaf   bool
	nid    uint64
}

// ---- *Cube as a Source ----

// SourceRoot implements Source over the pointer node graph.
func (c *Cube) SourceRoot() (Cursor, error) { return Cursor{n: c.root}, nil }

// StableKeys implements Source: cell keys are ordinary heap strings.
func (c *Cube) StableKeys() bool { return true }

// SourceAll implements Source.
func (c *Cube) SourceAll(n Cursor, level int) (Aggregate, Cursor, error) {
	if n.n.Leaf {
		return n.n.AllAgg, Cursor{}, nil
	}
	return Aggregate{}, Cursor{n: n.n.AllChild}, nil
}

// SourceLookup implements Source.
func (c *Cube) SourceLookup(n Cursor, level int, key string) (Aggregate, Cursor, bool, error) {
	cell, ok := n.n.Lookup(key)
	if !ok {
		return Aggregate{}, Cursor{}, false, nil
	}
	if n.n.Leaf {
		return cell.Agg, Cursor{}, true, nil
	}
	return Aggregate{}, Cursor{n: cell.Child}, true, nil
}

// SourceCells implements Source. The lower bound is honoured exactly via
// binary search over the sorted cells.
func (c *Cube) SourceCells(n Cursor, level int, lo string, it *CellIter) error {
	it.node = n.n
	it.v = nil
	it.i = 0
	if lo != "" {
		cells := n.n.Cells
		it.i = sort.Search(len(cells), func(i int) bool { return cells[i].Key >= lo })
	}
	return nil
}

// SourceNext implements Source.
func (c *Cube) SourceNext(it *CellIter) (string, Aggregate, Cursor, bool, error) {
	node := it.node
	if it.i >= len(node.Cells) {
		return "", Aggregate{}, Cursor{}, false, nil
	}
	cell := &node.Cells[it.i]
	it.i++
	if node.Leaf {
		return cell.Key, cell.Agg, Cursor{}, true, nil
	}
	return cell.Key, Aggregate{}, Cursor{n: cell.Child}, true, nil
}

// ---- *CubeView as a Source ----

// SourceRoot implements Source over the encoded bytes, building the node
// offset index on first touch when the stream carries no trailer.
func (v *CubeView) SourceRoot() (Cursor, error) {
	if err := v.ensure(); err != nil {
		return Cursor{}, err
	}
	return Cursor{id: v.rootID}, nil
}

// StableKeys implements Source: keys handed out by SourceNext alias the
// encoded bytes and must be cloned to be retained.
func (v *CubeView) StableKeys() bool { return false }

// viewNodeAt parses the record header of the node under cur, holding its
// level to the kernel's traversal depth so a corrupt stream cannot walk
// sideways (the same check the pre-kernel walks made).
func (v *CubeView) viewNodeAt(cur Cursor, level int) (vnode, error) {
	n, err := v.node(cur.id)
	if err != nil {
		return vnode{}, err
	}
	if n.level != level {
		return vnode{}, errCorrupt("node %d: level %d at traversal depth %d", cur.id, n.level, level)
	}
	return n, nil
}

// SourceAll implements Source.
func (v *CubeView) SourceAll(cur Cursor, level int) (Aggregate, Cursor, error) {
	n, err := v.viewNodeAt(cur, level)
	if err != nil {
		return Aggregate{}, Cursor{}, err
	}
	if n.leaf {
		agg, err := v.allAgg(n)
		return agg, Cursor{}, err
	}
	id, err := v.allChild(n)
	return Aggregate{}, Cursor{id: id}, err
}

// SourceLookup implements Source.
func (v *CubeView) SourceLookup(cur Cursor, level int, key string) (Aggregate, Cursor, bool, error) {
	n, err := v.viewNodeAt(cur, level)
	if err != nil {
		return Aggregate{}, Cursor{}, false, err
	}
	agg, child, found, err := v.lookupCell(n, key)
	return agg, Cursor{id: child}, found, err
}

// SourceCells implements Source. Encoded records cannot seek, so the lower
// bound is ignored and the kernel filters (exactly what the pre-kernel view
// walks did).
func (v *CubeView) SourceCells(cur Cursor, level int, lo string, it *CellIter) error {
	n, err := v.viewNodeAt(cur, level)
	if err != nil {
		return err
	}
	it.node = nil
	it.v = v
	it.cur = n.cells
	it.ncells = n.ncells
	it.idx = 0
	it.leaf = n.leaf
	it.nid = n.id
	return nil
}

// SourceNext implements Source.
func (v *CubeView) SourceNext(it *CellIter) (string, Aggregate, Cursor, bool, error) {
	if it.idx >= it.ncells {
		return "", Aggregate{}, Cursor{}, false, nil
	}
	it.idx++
	k, err := it.cur.str()
	if err != nil {
		return "", Aggregate{}, Cursor{}, false, err
	}
	if it.leaf {
		agg, err := it.cur.agg()
		if err != nil {
			return "", Aggregate{}, Cursor{}, false, err
		}
		return aliasKey(k), agg, Cursor{}, true, nil
	}
	child, err := it.cur.uvarint()
	if err != nil {
		return "", Aggregate{}, Cursor{}, false, err
	}
	if child == 0 || child >= it.nid {
		return "", Aggregate{}, Cursor{}, false,
			errCorrupt("node %d: cell child id %d is not an earlier node", it.nid, child)
	}
	return aliasKey(k), Aggregate{}, Cursor{id: child}, true, nil
}

// aliasKey exposes encoded key bytes as a string without copying. The bytes
// are immutable for the life of the view, and the Source contract
// (StableKeys() == false) obliges the kernel to clone before retaining, so
// the alias never outlives the mapping.
func aliasKey(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// Compile-time checks: both cube representations implement the kernel's
// source contract.
var (
	_ Source = (*Cube)(nil)
	_ Source = (*CubeView)(nil)
)
