//go:build unix

package dwarf

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. Empty files and mmap failures fall back to a
// heap read so ViewFile behaves identically everywhere.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size > maxStreamBytes {
		// No offset index can cover it (u32 offsets), so a view would only
		// fail later with a misleading corruption error — refuse up front
		// instead of buffering gigabytes first.
		return nil, false, fmt.Errorf("dwarf: %s: %d-byte cube exceeds the 4 GiB view limit; use Decode", path, size)
	}
	if size <= 0 {
		data, err := os.ReadFile(path)
		return data, false, err
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, err := os.ReadFile(path)
		return data, false, err
	}
	return b, true, nil
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
