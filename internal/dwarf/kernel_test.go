package dwarf

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// Differential suite for the unified query kernel: every shape — old
// (Point/Range/GroupBy/Tuples) and new (Pivot/TopK) — must answer
// byte-equal across the in-memory Cube and both CubeView open paths
// (scan-indexed and trailer-indexed), and agree with brute force over the
// fact multiset, for every ablation option set × worker count. Measures are
// small integers so float sums are exact regardless of merge order.

// bruteGroupBy is the scan reference for GroupBy: group tuples matching
// every selector (the grouped dimension's selector restricts which members
// appear) by their key at dim.
func bruteGroupBy(tuples []Tuple, dim int, sels []Selector) map[string]Aggregate {
	out := make(map[string]Aggregate)
	for _, t := range tuples {
		if !bruteMatch(t, sels) {
			continue
		}
		k := t.Dims[dim]
		out[k] = MergeAggregates(out[k], NewAggregate(t.Measure))
	}
	return out
}

// brutePivot is the scan reference for Pivot: composite grouping over the
// dims indexes, in the order given.
func brutePivot(tuples []Tuple, dims []int, sels []Selector) []PivotGroup {
	acc := make(map[string]*PivotGroup)
	for _, t := range tuples {
		if !bruteMatch(t, sels) {
			continue
		}
		keys := make([]string, len(dims))
		for i, d := range dims {
			keys[i] = t.Dims[d]
		}
		joined := strings.Join(keys, "\x1f")
		if g, ok := acc[joined]; ok {
			g.Agg = MergeAggregates(g.Agg, NewAggregate(t.Measure))
		} else {
			acc[joined] = &PivotGroup{Keys: keys, Agg: NewAggregate(t.Measure)}
		}
	}
	out := make([]PivotGroup, 0, len(acc))
	for _, g := range acc {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		return compareKeyTuples(out[i].Keys, out[j].Keys) < 0
	})
	return out
}

// bruteTopK is an independent ranking of bruteGroupBy — it re-implements
// the metric-desc/key-asc order rather than calling TopKFromGroups, so the
// shared finisher is itself under test.
func bruteTopK(tuples []Tuple, dim int, sels []Selector, spec TopKSpec) []GroupEntry {
	groups := bruteGroupBy(tuples, dim, sels)
	var out []GroupEntry
	for k, a := range groups {
		if spec.HasThreshold && spec.By.Of(a) < spec.Threshold {
			continue
		}
		out = append(out, GroupEntry{Key: k, Agg: a})
	}
	sort.Slice(out, func(i, j int) bool {
		mi, mj := spec.By.Of(out[i].Agg), spec.By.Of(out[j].Agg)
		if mi != mj {
			return mi > mj
		}
		return out[i].Key < out[j].Key
	})
	if spec.K > 0 && len(out) > spec.K {
		out = out[:spec.K]
	}
	return out
}

func bruteMatch(t Tuple, sels []Selector) bool {
	for i, s := range sels {
		k := t.Dims[i]
		switch {
		case s.isAll():
		case s.HasRange:
			if k < s.Lo || k > s.Hi {
				return false
			}
		default:
			found := false
			for _, want := range s.Keys {
				if k == want {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

func sameGroups(t *testing.T, label string, got, want map[string]Aggregate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for k, wa := range want {
		if ga, ok := got[k]; !ok || !ga.Equal(wa) {
			t.Fatalf("%s: group %q = %v (present=%v), want %v", label, k, got[k], ok, wa)
		}
	}
}

func samePivot(t *testing.T, label string, got, want []PivotGroup) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: pivot rows diverged\ngot:  %v\nwant: %v", label, got, want)
	}
}

func sameEntries(t *testing.T, label string, got, want []GroupEntry) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: topk entries diverged\ngot:  %v\nwant: %v", label, got, want)
	}
}

// kernelSources opens the three sources every shape must agree across.
func kernelSources(t *testing.T, c *Cube) map[string]Source {
	t.Helper()
	plain, indexed := encodeViews(t, c)
	return map[string]Source{"cube": c, "view": plain, "view-indexed": indexed}
}

// TestKernelDifferential sweeps the 4 ablation option sets × 1/4 workers
// and holds every kernel shape equal across Cube / CubeView and to brute
// force over the random fact multiset.
func TestKernelDifferential(t *testing.T) {
	dims := []string{"A", "B", "C"}
	card := []int{4, 3, 5}
	ablations := [][]Option{
		nil,
		{WithoutSuffixCoalescing()},
		{WithoutHashConsing()},
		{WithoutSuffixCoalescing(), WithoutHashConsing()},
	}
	for ai, opts := range ablations {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("ablation%d/workers%d", ai, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(31*ai + workers)))
				tuples := make([]Tuple, 300)
				for i := range tuples {
					keys := make([]string, len(dims))
					for d := range keys {
						keys[d] = fmt.Sprintf("k%d", rng.Intn(card[d]))
					}
					tuples[i] = Tuple{Dims: keys, Measure: float64(rng.Intn(19) - 6)}
				}
				c, err := New(dims, tuples, append(opts, WithWorkers(workers))...)
				if err != nil {
					t.Fatal(err)
				}
				sources := kernelSources(t, c)

				selBatteries := [][]Selector{
					make([]Selector, 3),
					{SelectRange("k0", "k2"), SelectAll(), SelectAll()},
					{SelectKeys("k1", "k3", "k1", "absent"), SelectAll(), SelectRange("k1", "k4")},
					{SelectAll(), SelectKeys("k0", "k2"), SelectKeys("k4")},
					{SelectRange("k9", "k0"), SelectAll(), SelectAll()}, // empty range
					// A selector with BOTH keys and a range set: the range must
					// win in every shape, exactly as bruteMatch reads it.
					{{Keys: []string{"k0"}, Lo: "k1", Hi: "k3", HasRange: true}, SelectAll(), SelectAll()},
				}
				specs := []TopKSpec{
					{},
					{K: 2},
					{K: 3, By: ByCount},
					{By: ByMax, Threshold: 5, HasThreshold: true},
					{K: 2, By: ByAvg, Threshold: 1.5, HasThreshold: true},
					{By: ByMin},
				}

				for name, src := range sources {
					// Point vs brute force (existing helper from property_test).
					for q := 0; q < 40; q++ {
						keys := randomQuery(rng, 3, 6)
						got, err := QueryPoint(src, keys...)
						if err != nil {
							t.Fatalf("%s: Point(%v): %v", name, keys, err)
						}
						if want := bruteForce(tuples, keys); !got.Equal(want) {
							t.Fatalf("%s: Point(%v) = %v, brute says %v", name, keys, got, want)
						}
					}
					for si, sels := range selBatteries {
						label := fmt.Sprintf("%s/sels%d", name, si)
						got, err := QueryRange(src, sels)
						if err != nil {
							t.Fatalf("%s: Range: %v", label, err)
						}
						if want := bruteForceRange(tuples, sels); !got.Equal(want) {
							t.Fatalf("%s: Range = %v, brute says %v", label, got, want)
						}
						for dim := 0; dim < 3; dim++ {
							groups, err := QueryGroupBy(src, dim, sels)
							if err != nil {
								t.Fatalf("%s: GroupBy(%d): %v", label, dim, err)
							}
							sameGroups(t, fmt.Sprintf("%s/GroupBy(%d)", label, dim),
								groups, bruteGroupBy(tuples, dim, sels))
							spec := specs[(si+dim)%len(specs)]
							entries, err := QueryTopK(src, dim, sels, spec)
							if err != nil {
								t.Fatalf("%s: TopK(%d): %v", label, dim, err)
							}
							sameEntries(t, fmt.Sprintf("%s/TopK(%d)", label, dim),
								entries, bruteTopK(tuples, dim, sels, spec))
						}
						for _, groupDims := range [][]int{{0}, {0, 1}, {2, 0}, {0, 1, 2}, {1, 2}} {
							rows, err := QueryPivot(src, groupDims, sels)
							if err != nil {
								t.Fatalf("%s: Pivot(%v): %v", label, groupDims, err)
							}
							samePivot(t, fmt.Sprintf("%s/Pivot(%v)", label, groupDims),
								rows, brutePivot(tuples, groupDims, sels))
						}
					}
				}
			})
		}
	}
}

// TestKernelBadQueries pins the malformed-query sentinels for the new
// shapes on both representations.
func TestKernelBadQueries(t *testing.T) {
	c, err := New([]string{"A", "B"}, []Tuple{{Dims: []string{"x", "y"}, Measure: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range kernelSources(t, c) {
		sels := make([]Selector, 2)
		if _, err := QueryPivot(src, nil, sels); err == nil {
			t.Fatalf("%s: Pivot with no group dims did not error", name)
		}
		if _, err := QueryPivot(src, []int{0, 0}, sels); err == nil {
			t.Fatalf("%s: Pivot with a repeated dim did not error", name)
		}
		if _, err := QueryPivot(src, []int{2}, sels); err == nil {
			t.Fatalf("%s: Pivot with an out-of-range dim did not error", name)
		}
		if _, err := QueryPivot(src, []int{0}, sels[:1]); err == nil {
			t.Fatalf("%s: Pivot with wrong selector arity did not error", name)
		}
		if _, err := QueryTopK(src, -1, sels, TopKSpec{}); err == nil {
			t.Fatalf("%s: TopK with a bad dim did not error", name)
		}
	}
	if _, err := ParseMetric("median"); err == nil {
		t.Fatal("ParseMetric accepted an unknown metric")
	}
	for _, m := range []Metric{BySum, ByCount, ByMin, ByMax, ByAvg} {
		if back, err := ParseMetric(m.String()); err != nil || back != m {
			t.Fatalf("metric %v does not round-trip: %v, %v", m, back, err)
		}
	}
}

// TestMergePivotGroups pins the store's fan-out merge: partial pivots over
// disjoint tuple slices must merge to the whole cube's pivot.
func TestMergePivotGroups(t *testing.T) {
	tuples := viewTestTuples()
	dims := viewTestDims
	whole, err := New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	groupDims := []int{1, 2}
	sels := make([]Selector, 3)
	want, err := whole.Pivot(groupDims, sels)
	if err != nil {
		t.Fatal(err)
	}
	var parts [][]PivotGroup
	for i := 0; i < 3; i++ {
		lo, hi := i*len(tuples)/3, (i+1)*len(tuples)/3
		part, err := New(dims, tuples[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		rows, err := part.Pivot(groupDims, sels)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, rows)
	}
	samePivot(t, "MergePivotGroups", MergePivotGroups(parts...), want)
	samePivot(t, "MergePivotGroups(single)", MergePivotGroups(want), want)
}

// ---- kernel benchmarks ----
//
// The view benchmarks pin the zero-copy promise: Point allocates nothing,
// and the scan shapes allocate only their result containers — no per-node
// memory beyond the kernel's cursor state.

func benchCubeAndView(b *testing.B) (*Cube, *CubeView) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	tuples := make([]Tuple, 6000)
	for i := range tuples {
		tuples[i] = Tuple{
			Dims: []string{
				fmt.Sprintf("d%02d", rng.Intn(30)),
				fmt.Sprintf("r%d", rng.Intn(8)),
				fmt.Sprintf("s%03d", rng.Intn(120)),
			},
			Measure: float64(rng.Intn(40)),
		}
	}
	c, err := New([]string{"Day", "Region", "Station"}, tuples)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.EncodeIndexed(&buf); err != nil {
		b.Fatal(err)
	}
	v, err := OpenViewTrusted(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	return c, v
}

func benchSources(b *testing.B, fn func(b *testing.B, src Source)) {
	c, v := benchCubeAndView(b)
	b.Run("cube", func(b *testing.B) { fn(b, c) })
	b.Run("view", func(b *testing.B) { fn(b, v) })
}

func BenchmarkKernelPoint(b *testing.B) {
	benchSources(b, func(b *testing.B, src Source) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := QueryPoint(src, "d07", All, "s042"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelRange(b *testing.B) {
	sels := []Selector{SelectRange("d05", "d15"), SelectKeys("r1", "r3"), SelectAll()}
	benchSources(b, func(b *testing.B, src Source) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := QueryRange(src, sels); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelGroupBy(b *testing.B) {
	sels := make([]Selector, 3)
	benchSources(b, func(b *testing.B, src Source) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := QueryGroupBy(src, 2, sels); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelTopK(b *testing.B) {
	sels := make([]Selector, 3)
	spec := TopKSpec{K: 10}
	benchSources(b, func(b *testing.B, src Source) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := QueryTopK(src, 2, sels, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelPivot(b *testing.B) {
	sels := make([]Selector, 3)
	dims := []int{1, 2}
	benchSources(b, func(b *testing.B, src Source) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := QueryPivot(src, dims, sels); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelTuples(b *testing.B) {
	benchSources(b, func(b *testing.B, src Source) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := QueryTuples(src, func([]string, Aggregate) bool { n++; return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
