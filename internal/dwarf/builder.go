package dwarf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Tuple is one fact: a key per dimension plus the measure, the shape the
// paper's Fig. 1 feeds into cube construction:
// (dimension_1, ..., dimension_n, measure).
type Tuple struct {
	Dims    []string
	Measure float64
}

// Options tune cube construction. The zero value enables all DWARF
// compression; the Disable* switches exist for the ablation benchmarks.
type Options struct {
	// DisableSuffixCoalescing materializes every ALL sub-dwarf and every
	// single-input merge as a private deep copy instead of sharing the
	// sub-dwarf by pointer. The result is the uncompressed cube tree.
	DisableSuffixCoalescing bool
	// DisableHashConsing turns off cross-branch detection of structurally
	// identical sub-dwarfs. Construction-time suffix coalescing (single
	// input merges) still shares pointers unless DisableSuffixCoalescing
	// is also set.
	DisableHashConsing bool
}

// Option mutates Options.
type Option func(*Options)

// WithoutSuffixCoalescing disables pointer sharing of identical sub-dwarfs.
func WithoutSuffixCoalescing() Option {
	return func(o *Options) { o.DisableSuffixCoalescing = true }
}

// WithoutHashConsing disables cross-branch identical sub-dwarf detection.
func WithoutHashConsing() Option {
	return func(o *Options) { o.DisableHashConsing = true }
}

// Cube is a built DWARF cube. Cubes are immutable after construction; Merge
// and Append return new cubes that may share sub-structure with their
// inputs.
type Cube struct {
	dims      []string
	root      *Node
	opts      Options
	numTuples int
	// FromQuery mirrors the paper's is_cube flag: true when this cube was
	// produced by querying/extracting from another DWARF rather than built
	// directly from source tuples.
	FromQuery bool

	nextSeq int64
}

// Validation errors returned by New and related constructors.
var (
	ErrNoDimensions   = errors.New("dwarf: cube needs at least one dimension")
	ErrDimMismatch    = errors.New("dwarf: tuple dimension count does not match cube dimensions")
	ErrReservedKey    = errors.New("dwarf: tuple uses the reserved wildcard key")
	ErrDimsMismatch   = errors.New("dwarf: cubes have different dimension lists")
	ErrBadQuery       = errors.New("dwarf: query key count does not match cube dimensions")
	ErrNotFiniteValue = errors.New("dwarf: measure must be a finite number")
)

// New constructs a DWARF cube from the given fact tuples. The tuple slice is
// not modified; tuples are copied and sorted internally. Duplicate dimension
// key combinations are merged into one leaf aggregate.
func New(dims []string, tuples []Tuple, opts ...Option) (*Cube, error) {
	ats := make([]AggTuple, len(tuples))
	for i := range tuples {
		if math.IsNaN(tuples[i].Measure) || math.IsInf(tuples[i].Measure, 0) {
			return nil, fmt.Errorf("%w: tuple %d", ErrNotFiniteValue, i)
		}
		ats[i] = AggTuple{Dims: tuples[i].Dims, Agg: NewAggregate(tuples[i].Measure)}
	}
	c, err := NewFromAggregates(dims, ats, opts...)
	if err != nil {
		return nil, err
	}
	c.numTuples = len(tuples)
	return c, nil
}

// AggTuple is a fact carrying full aggregate state instead of a raw
// measure; rollups and re-materializations use it to preserve counts and
// min/max through a rebuild.
type AggTuple struct {
	Dims []string
	Agg  Aggregate
}

// NewFromAggregates constructs a cube from pre-aggregated facts. The source
// tuple count is the sum of the aggregate counts.
func NewFromAggregates(dims []string, tuples []AggTuple, opts ...Option) (*Cube, error) {
	if len(dims) == 0 {
		return nil, ErrNoDimensions
	}
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	numTuples := 0
	for i := range tuples {
		if len(tuples[i].Dims) != len(dims) {
			return nil, fmt.Errorf("%w: tuple %d has %d dims, cube has %d",
				ErrDimMismatch, i, len(tuples[i].Dims), len(dims))
		}
		for _, k := range tuples[i].Dims {
			if k == All {
				return nil, fmt.Errorf("%w: %q in tuple %d", ErrReservedKey, All, i)
			}
		}
		numTuples += int(tuples[i].Agg.Count)
	}

	b := newBuilder(len(dims), o)
	root, err := b.build(tuples)
	if err != nil {
		return nil, err
	}
	return &Cube{
		dims:      append([]string(nil), dims...),
		root:      root,
		opts:      o,
		numTuples: numTuples,
		nextSeq:   b.seq,
	}, nil
}

// Dims returns the cube's dimension names in order.
func (c *Cube) Dims() []string { return append([]string(nil), c.dims...) }

// NumDims returns the number of dimensions.
func (c *Cube) NumDims() int { return len(c.dims) }

// NumSourceTuples returns how many fact tuples were folded into the cube
// (before duplicate-key merging).
func (c *Cube) NumSourceTuples() int { return c.numTuples }

// Root returns the top-level node, the entry point of all traversals.
func (c *Cube) Root() *Node { return c.root }

// builder holds the construction state: the open path of nodes being filled
// and the hash-consing table of closed nodes.
type builder struct {
	ndims int
	opts  Options
	seq   int64
	canon map[string]*Node
	// ident assigns builder-local identifiers to node pointers for
	// hash-consing keys. Pointer-local ids (rather than the nodes' own seq)
	// keep Merge safe: the two input cubes' seq numbers may collide, but
	// distinct pointers always get distinct local ids.
	ident    map[*Node]int64
	identSeq int64
	open     []*Node
}

func newBuilder(ndims int, opts Options) *builder {
	return &builder{
		ndims: ndims,
		opts:  opts,
		canon: make(map[string]*Node),
		ident: make(map[*Node]int64),
		open:  make([]*Node, ndims),
	}
}

// id returns the builder-local identity of a closed node.
func (b *builder) id(n *Node) int64 {
	if n == nil {
		return 0
	}
	if v, ok := b.ident[n]; ok {
		return v
	}
	b.identSeq++
	b.ident[n] = b.identSeq
	return b.identSeq
}

func (b *builder) newNode(level int) *Node {
	b.seq++
	return &Node{Level: level, Leaf: level == b.ndims-1, seq: b.seq}
}

// build runs the classic top-down DWARF construction: sort the facts, scan
// them keeping the path of open nodes, close sub-dwarfs as soon as the scan
// leaves them (computing their ALL cells via suffix coalescing), and share
// identical closed sub-dwarfs.
func (b *builder) build(tuples []AggTuple) (*Node, error) {
	sorted := make([]AggTuple, len(tuples))
	copy(sorted, tuples)
	sort.SliceStable(sorted, func(i, j int) bool {
		return lessDims(sorted[i].Dims, sorted[j].Dims)
	})

	if len(sorted) == 0 {
		// Empty cube: a bare root with no cells and zero aggregates.
		root := b.newNode(0)
		return b.close(root), nil
	}

	var prev []string
	for ti := range sorted {
		t := &sorted[ti]
		p := commonPrefix(prev, t.Dims)
		if prev != nil && p == b.ndims {
			// Duplicate key combination: merge into the last leaf cell.
			leaf := b.open[b.ndims-1]
			lc := &leaf.Cells[len(leaf.Cells)-1]
			lc.Agg = MergeAggregates(lc.Agg, t.Agg)
			continue
		}
		if prev == nil {
			b.open[0] = b.newNode(0)
			p = 0
		} else {
			// Close everything below the divergence level, deepest first,
			// attaching each closed node to its parent cell.
			for l := b.ndims - 1; l > p; l-- {
				b.attachClosed(l)
			}
		}
		// Open the new suffix: one new cell per level from p down.
		for l := p; l < b.ndims; l++ {
			n := b.open[l]
			if n.Leaf {
				n.Cells = append(n.Cells, Cell{Key: t.Dims[l], Agg: t.Agg})
			} else {
				n.Cells = append(n.Cells, Cell{Key: t.Dims[l]})
				b.open[l+1] = b.newNode(l + 1)
			}
		}
		prev = t.Dims
	}
	// Final close of the whole open path, root last.
	for l := b.ndims - 1; l > 0; l-- {
		b.attachClosed(l)
	}
	return b.close(b.open[0]), nil
}

// attachClosed closes the open node at level l and stores it as the child
// of the most recent cell of level l-1.
func (b *builder) attachClosed(l int) {
	closed := b.close(b.open[l])
	parent := b.open[l-1]
	parent.Cells[len(parent.Cells)-1].Child = closed
	b.open[l] = nil
}

// close computes the node's ALL cell and canonicalizes the node. Children of
// the node are already closed.
func (b *builder) close(n *Node) *Node {
	if n.Leaf {
		var agg Aggregate
		for i := range n.Cells {
			agg = MergeAggregates(agg, n.Cells[i].Agg)
		}
		n.AllAgg = agg
	} else if len(n.Cells) > 0 {
		children := make([]*Node, 0, len(n.Cells))
		for i := range n.Cells {
			children = append(children, n.Cells[i].Child)
		}
		n.AllChild = b.suffixCoalesce(children)
	}
	return b.canonicalize(n)
}

// suffixCoalesce merges a set of closed sub-dwarfs of the same level into the
// sub-dwarf of their union. With a single input the result is the input
// itself — the suffix coalescing that gives DWARF its compression.
func (b *builder) suffixCoalesce(nodes []*Node) *Node {
	nodes = dropNil(nodes)
	if len(nodes) == 0 {
		return nil
	}
	if len(nodes) == 1 {
		if b.opts.DisableSuffixCoalescing {
			return b.deepCopy(nodes[0])
		}
		return nodes[0]
	}
	out := b.newNode(nodes[0].Level)

	// K-way merge of the sorted cell lists.
	idx := make([]int, len(nodes))
	for {
		minKey, found := "", false
		for i, n := range nodes {
			if idx[i] < len(n.Cells) {
				k := n.Cells[idx[i]].Key
				if !found || k < minKey {
					minKey, found = k, true
				}
			}
		}
		if !found {
			break
		}
		if out.Leaf {
			var agg Aggregate
			for i, n := range nodes {
				if idx[i] < len(n.Cells) && n.Cells[idx[i]].Key == minKey {
					agg = MergeAggregates(agg, n.Cells[idx[i]].Agg)
					idx[i]++
				}
			}
			out.Cells = append(out.Cells, Cell{Key: minKey, Agg: agg})
		} else {
			var sub []*Node
			for i, n := range nodes {
				if idx[i] < len(n.Cells) && n.Cells[idx[i]].Key == minKey {
					sub = append(sub, n.Cells[idx[i]].Child)
					idx[i]++
				}
			}
			out.Cells = append(out.Cells, Cell{Key: minKey, Child: b.suffixCoalesce(sub)})
		}
	}

	// The merged node's ALL is the merge of the inputs' ALLs, which is
	// equivalent to (and cheaper than) coalescing the merged cells again.
	if out.Leaf {
		var agg Aggregate
		for _, n := range nodes {
			agg = MergeAggregates(agg, n.AllAgg)
		}
		out.AllAgg = agg
	} else {
		alls := make([]*Node, 0, len(nodes))
		for _, n := range nodes {
			alls = append(alls, n.AllChild)
		}
		out.AllChild = b.suffixCoalesce(alls)
	}
	return b.canonicalize(out)
}

// canonicalize returns an existing structurally identical node if one was
// already closed, sharing the sub-dwarf across branches; otherwise it
// registers and returns n. Children are canonical already, so structural
// identity reduces to comparing cell keys, child sequence ids and aggregate
// bits.
func (b *builder) canonicalize(n *Node) *Node {
	if b.opts.DisableHashConsing || b.opts.DisableSuffixCoalescing {
		return n
	}
	var sb strings.Builder
	sb.Grow(len(n.Cells)*16 + 32)
	sb.WriteByte(byte(n.Level))
	if n.Leaf {
		sb.WriteByte(1)
	} else {
		sb.WriteByte(0)
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		sb.WriteString(c.Key)
		sb.WriteByte(0)
		if n.Leaf {
			writeAggKey(&sb, c.Agg)
		} else {
			sb.WriteString(strconv.FormatInt(b.id(c.Child), 36))
		}
		sb.WriteByte(1)
	}
	if n.Leaf {
		writeAggKey(&sb, n.AllAgg)
	} else if n.AllChild != nil {
		sb.WriteString(strconv.FormatInt(b.id(n.AllChild), 36))
	}
	key := sb.String()
	if existing, ok := b.canon[key]; ok {
		return existing
	}
	b.canon[key] = n
	return n
}

func writeAggKey(sb *strings.Builder, a Aggregate) {
	sb.WriteString(strconv.FormatUint(math.Float64bits(a.Sum), 36))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatInt(a.Count, 36))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatUint(math.Float64bits(a.Min), 36))
	sb.WriteByte(',')
	sb.WriteString(strconv.FormatUint(math.Float64bits(a.Max), 36))
}

// deepCopy clones an entire sub-dwarf with no sharing (ablation support).
func (b *builder) deepCopy(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := b.newNode(n.Level)
	out.Cells = make([]Cell, len(n.Cells))
	for i := range n.Cells {
		out.Cells[i] = Cell{Key: n.Cells[i].Key, Agg: n.Cells[i].Agg, Child: b.deepCopy(n.Cells[i].Child)}
	}
	out.AllAgg = n.AllAgg
	out.AllChild = b.deepCopy(n.AllChild)
	return out
}

func dropNil(nodes []*Node) []*Node {
	out := nodes[:0]
	for _, n := range nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

func lessDims(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func commonPrefix(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
