package dwarf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"sort"
)

// Tuple is one fact: a key per dimension plus the measure, the shape the
// paper's Fig. 1 feeds into cube construction:
// (dimension_1, ..., dimension_n, measure).
type Tuple struct {
	Dims    []string
	Measure float64
}

// Options tune cube construction. The zero value enables all DWARF
// compression; the Disable* switches exist for the ablation benchmarks.
type Options struct {
	// DisableSuffixCoalescing materializes every ALL sub-dwarf and every
	// single-input merge as a private deep copy instead of sharing the
	// sub-dwarf by pointer. The result is the uncompressed cube tree.
	DisableSuffixCoalescing bool
	// DisableHashConsing turns off cross-branch detection of structurally
	// identical sub-dwarfs. Construction-time suffix coalescing (single
	// input merges) still shares pointers unless DisableSuffixCoalescing
	// is also set.
	DisableHashConsing bool
	// Workers selects the sharded parallel build when > 1: the sorted fact
	// stream is split into first-dimension key ranges, one builder goroutine
	// per shard, and the shard roots are stitched into a cube structurally
	// identical to a serial build (see parallel.go). 0 and 1 build serially.
	Workers int
}

// Option mutates Options.
type Option func(*Options)

// WithoutSuffixCoalescing disables pointer sharing of identical sub-dwarfs.
func WithoutSuffixCoalescing() Option {
	return func(o *Options) { o.DisableSuffixCoalescing = true }
}

// WithoutHashConsing disables cross-branch identical sub-dwarf detection.
func WithoutHashConsing() Option {
	return func(o *Options) { o.DisableHashConsing = true }
}

// WithWorkers builds the cube with n shard workers. Values <= 1 select the
// serial builder; values above the number of distinct first-dimension keys
// are clamped by the shard planner.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// Cube is a built DWARF cube. Cubes are immutable after construction; Merge
// and Append return new cubes that may share sub-structure with their
// inputs.
type Cube struct {
	dims      []string
	root      *Node
	opts      Options
	numTuples int
	// FromQuery mirrors the paper's is_cube flag: true when this cube was
	// produced by querying/extracting from another DWARF rather than built
	// directly from source tuples.
	FromQuery bool

	nextSeq int64
}

// Validation errors returned by New and related constructors.
var (
	ErrNoDimensions   = errors.New("dwarf: cube needs at least one dimension")
	ErrDimMismatch    = errors.New("dwarf: tuple dimension count does not match cube dimensions")
	ErrReservedKey    = errors.New("dwarf: tuple uses the reserved wildcard key")
	ErrDimsMismatch   = errors.New("dwarf: cubes have different dimension lists")
	ErrBadQuery       = errors.New("dwarf: query key count does not match cube dimensions")
	ErrNotFiniteValue = errors.New("dwarf: measure must be a finite number")
)

// ValidateTuple checks one fact tuple against the construction rules New
// enforces: dimension count, no reserved wildcard key, finite measure.
// Callers that persist tuples before building — the live store logs a
// batch to its WAL ahead of the memtable — validate with this same
// function, so an accepted batch can never fail to build on replay.
func ValidateTuple(t Tuple, ndims int) error {
	if len(t.Dims) != ndims {
		return fmt.Errorf("%w: tuple has %d dims, want %d", ErrDimMismatch, len(t.Dims), ndims)
	}
	for _, k := range t.Dims {
		if k == All {
			return fmt.Errorf("%w: %q", ErrReservedKey, All)
		}
	}
	if math.IsNaN(t.Measure) || math.IsInf(t.Measure, 0) {
		return ErrNotFiniteValue
	}
	return nil
}

// New constructs a DWARF cube from the given fact tuples. The tuple slice is
// not modified; tuples are copied and sorted internally. Duplicate dimension
// key combinations are merged into one leaf aggregate.
func New(dims []string, tuples []Tuple, opts ...Option) (*Cube, error) {
	ats := make([]AggTuple, len(tuples))
	for i := range tuples {
		if err := ValidateTuple(tuples[i], len(dims)); err != nil {
			return nil, fmt.Errorf("tuple %d: %w", i, err)
		}
		ats[i] = AggTuple{Dims: tuples[i].Dims, Agg: NewAggregate(tuples[i].Measure)}
	}
	c, err := NewFromAggregates(dims, ats, opts...)
	if err != nil {
		return nil, err
	}
	c.numTuples = len(tuples)
	return c, nil
}

// AggTuple is a fact carrying full aggregate state instead of a raw
// measure; rollups and re-materializations use it to preserve counts and
// min/max through a rebuild.
type AggTuple struct {
	Dims []string
	Agg  Aggregate
}

// NewFromAggregates constructs a cube from pre-aggregated facts. The source
// tuple count is the sum of the aggregate counts.
func NewFromAggregates(dims []string, tuples []AggTuple, opts ...Option) (*Cube, error) {
	if len(dims) == 0 {
		return nil, ErrNoDimensions
	}
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	numTuples := 0
	for i := range tuples {
		if len(tuples[i].Dims) != len(dims) {
			return nil, fmt.Errorf("%w: tuple %d has %d dims, cube has %d",
				ErrDimMismatch, i, len(tuples[i].Dims), len(dims))
		}
		for _, k := range tuples[i].Dims {
			if k == All {
				return nil, fmt.Errorf("%w: %q in tuple %d", ErrReservedKey, All, i)
			}
		}
		numTuples += int(tuples[i].Agg.Count)
	}

	var root *Node
	if o.Workers > 1 {
		root = buildParallel(len(dims), o, sortTuplesParallel(tuples, o.Workers))
	} else {
		root = newBuilder(len(dims), o).buildSorted(sortTuples(tuples))
	}
	// Renumber nodes in a structure-determined order so that any two builds
	// of the same facts — serial or parallel, any worker count — carry
	// identical sequence ids and render identical Dumps.
	nextSeq := renumber(root)
	return &Cube{
		dims:      append([]string(nil), dims...),
		root:      root,
		opts:      o,
		numTuples: numTuples,
		nextSeq:   nextSeq,
	}, nil
}

// Dims returns the cube's dimension names in order.
func (c *Cube) Dims() []string { return append([]string(nil), c.dims...) }

// NumDims returns the number of dimensions.
func (c *Cube) NumDims() int { return len(c.dims) }

// NumSourceTuples returns how many fact tuples were folded into the cube
// (before duplicate-key merging).
func (c *Cube) NumSourceTuples() int { return c.numTuples }

// Root returns the top-level node, the entry point of all traversals.
func (c *Cube) Root() *Node { return c.root }

// builder holds the construction state: the open path of nodes being filled
// and the hash-consing table of closed nodes. The table buckets candidates
// by a seeded structural hash and verifies matches with an exact compare
// (children are canonical already, so pointer equality decides), which
// keeps hash-consing sound for any key bytes and any hash collision.
type builder struct {
	ndims int
	opts  Options
	seq   int64
	canon map[uint64][]*Node
	seed  maphash.Seed
	open  []*Node
}

func newBuilder(ndims int, opts Options) *builder {
	return &builder{
		ndims: ndims,
		opts:  opts,
		canon: make(map[uint64][]*Node),
		seed:  maphash.MakeSeed(),
		open:  make([]*Node, ndims),
	}
}

func (b *builder) newNode(level int) *Node {
	b.seq++
	return &Node{Level: level, Leaf: level == b.ndims-1, seq: b.seq}
}

// sortTuples returns a sorted copy of the facts, the order the paper's
// single-scan construction (and the shard planner) require.
func sortTuples(tuples []AggTuple) []AggTuple {
	sorted := make([]AggTuple, len(tuples))
	copy(sorted, tuples)
	sort.SliceStable(sorted, func(i, j int) bool {
		return lessDims(sorted[i].Dims, sorted[j].Dims)
	})
	return sorted
}

// buildSorted runs the classic top-down DWARF construction on pre-sorted
// facts: scan them keeping the path of open nodes, close sub-dwarfs as soon
// as the scan leaves them (computing their ALL cells via suffix coalescing),
// share identical closed sub-dwarfs, and finally close the root. It is one
// full-depth run of the shard-reusable scanRuns core.
func (b *builder) buildSorted(sorted []AggTuple) *Node {
	if len(sorted) == 0 {
		// Empty cube: a bare root with no cells and zero aggregates.
		return b.close(b.newNode(0))
	}
	return b.scanRuns(sorted, 0)[0].sub
}

// prefixSub is one output unit of scanRuns: a closed level-lo sub-dwarf
// together with the lo-prefix of dimension keys it lives under.
type prefixSub struct {
	prefix []string
	sub    *Node
}

// scanRuns is the scan core of construction, reusable by shard workers: it
// consumes sorted facts and emits one closed (ALL computed, canonicalized)
// level-lo sub-dwarf per maximal run of facts sharing the same lo-prefix,
// in run order. Levels above lo are never materialized — the parallel
// stitch replays them over the emitted units. lo = 0 is the serial build:
// a single unit holding the closed root.
func (b *builder) scanRuns(sorted []AggTuple, lo int) []prefixSub {
	var out []prefixSub
	var prev []string
	for ti := range sorted {
		t := &sorted[ti]
		p := commonPrefix(prev, t.Dims)
		if prev != nil && p == b.ndims {
			// Duplicate key combination: merge into the last leaf cell.
			leaf := b.open[b.ndims-1]
			lc := &leaf.Cells[len(leaf.Cells)-1]
			lc.Agg = MergeAggregates(lc.Agg, t.Agg)
			continue
		}
		switch {
		case prev == nil:
			b.open[lo] = b.newNode(lo)
			p = lo
		case p < lo:
			// The lo-prefix changed: the current run's sub-dwarf is
			// complete. Close it, emit it, and start the next run.
			for l := b.ndims - 1; l > lo; l-- {
				b.attachClosed(l)
			}
			out = append(out, prefixSub{prefix: prev[:lo], sub: b.close(b.open[lo])})
			b.open[lo] = b.newNode(lo)
			p = lo
		default:
			// Close everything below the divergence level, deepest first,
			// attaching each closed node to its parent cell.
			for l := b.ndims - 1; l > p; l-- {
				b.attachClosed(l)
			}
		}
		// Open the new suffix: one new cell per level from p down.
		for l := p; l < b.ndims; l++ {
			n := b.open[l]
			if n.Leaf {
				n.Cells = append(n.Cells, Cell{Key: t.Dims[l], Agg: t.Agg})
			} else {
				n.Cells = append(n.Cells, Cell{Key: t.Dims[l]})
				b.open[l+1] = b.newNode(l + 1)
			}
		}
		prev = t.Dims
	}
	// Final close of the last open run.
	for l := b.ndims - 1; l > lo; l-- {
		b.attachClosed(l)
	}
	out = append(out, prefixSub{prefix: prev[:lo], sub: b.close(b.open[lo])})
	b.open[lo] = nil
	return out
}

// attachClosed closes the open node at level l and stores it as the child
// of the most recent cell of level l-1.
func (b *builder) attachClosed(l int) {
	closed := b.close(b.open[l])
	parent := b.open[l-1]
	parent.Cells[len(parent.Cells)-1].Child = closed
	b.open[l] = nil
}

// close computes the node's ALL cell and canonicalizes the node. Children of
// the node are already closed.
func (b *builder) close(n *Node) *Node {
	if n.Leaf {
		var agg Aggregate
		for i := range n.Cells {
			agg = MergeAggregates(agg, n.Cells[i].Agg)
		}
		n.AllAgg = agg
	} else if len(n.Cells) > 0 {
		children := make([]*Node, 0, len(n.Cells))
		for i := range n.Cells {
			children = append(children, n.Cells[i].Child)
		}
		n.AllChild = b.suffixCoalesce(children)
	}
	return b.canonicalize(n)
}

// suffixCoalesce merges a set of closed sub-dwarfs of the same level into the
// sub-dwarf of their union. With a single input the result is the input
// itself — the suffix coalescing that gives DWARF its compression.
func (b *builder) suffixCoalesce(nodes []*Node) *Node {
	nodes = dropNil(nodes)
	if len(nodes) == 0 {
		return nil
	}
	if len(nodes) == 1 {
		if b.opts.DisableSuffixCoalescing {
			return b.deepCopy(nodes[0])
		}
		return nodes[0]
	}
	out := b.newNode(nodes[0].Level)

	// K-way merge of the sorted cell lists.
	idx := make([]int, len(nodes))
	for {
		minKey, found := "", false
		for i, n := range nodes {
			if idx[i] < len(n.Cells) {
				k := n.Cells[idx[i]].Key
				if !found || k < minKey {
					minKey, found = k, true
				}
			}
		}
		if !found {
			break
		}
		if out.Leaf {
			var agg Aggregate
			for i, n := range nodes {
				if idx[i] < len(n.Cells) && n.Cells[idx[i]].Key == minKey {
					agg = MergeAggregates(agg, n.Cells[idx[i]].Agg)
					idx[i]++
				}
			}
			out.Cells = append(out.Cells, Cell{Key: minKey, Agg: agg})
		} else {
			var sub []*Node
			for i, n := range nodes {
				if idx[i] < len(n.Cells) && n.Cells[idx[i]].Key == minKey {
					sub = append(sub, n.Cells[idx[i]].Child)
					idx[i]++
				}
			}
			out.Cells = append(out.Cells, Cell{Key: minKey, Child: b.suffixCoalesce(sub)})
		}
	}

	// The merged node's ALL is the merge of the inputs' ALLs, which is
	// equivalent to (and cheaper than) coalescing the merged cells again.
	if out.Leaf {
		var agg Aggregate
		for _, n := range nodes {
			agg = MergeAggregates(agg, n.AllAgg)
		}
		out.AllAgg = agg
	} else {
		alls := make([]*Node, 0, len(nodes))
		for _, n := range nodes {
			alls = append(alls, n.AllChild)
		}
		out.AllChild = b.suffixCoalesce(alls)
	}
	return b.canonicalize(out)
}

// canonicalize returns an existing structurally identical node if one was
// already closed, sharing the sub-dwarf across branches; otherwise it
// registers and returns n. Children are canonical already, so structural
// identity reduces to comparing cell keys, child pointers and aggregate
// bits; the hash only selects the bucket to compare against.
func (b *builder) canonicalize(n *Node) *Node {
	if b.opts.DisableHashConsing || b.opts.DisableSuffixCoalescing {
		return n
	}
	h := b.nodeHash(n)
	for _, cand := range b.canon[h] {
		if structEqual(cand, n) {
			return cand
		}
	}
	b.canon[h] = append(b.canon[h], n)
	return n
}

// nodeHash computes the bucket hash of a closed node. Child identity is
// hashed through the child's seq: canonical children of equal structure are
// the same pointer and so carry the same seq, which is all correctness
// needs — seq collisions between nodes of different shard builders (or of
// Merge's two input cubes) merely cost an extra exact compare.
func (b *builder) nodeHash(n *Node) uint64 {
	var h maphash.Hash
	h.SetSeed(b.seed)
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(uint64(n.Level))
	for i := range n.Cells {
		c := &n.Cells[i]
		h.WriteString(c.Key)
		h.WriteByte(0)
		if n.Leaf {
			hashAgg(&h, buf[:], c.Agg)
		} else {
			u64(uint64(c.Child.seq))
		}
	}
	h.WriteByte(1)
	if n.Leaf {
		hashAgg(&h, buf[:], n.AllAgg)
	} else if n.AllChild != nil {
		u64(uint64(n.AllChild.seq))
	}
	return h.Sum64()
}

func hashAgg(h *maphash.Hash, buf []byte, a Aggregate) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a.Sum))
	h.Write(buf)
	binary.LittleEndian.PutUint64(buf, uint64(a.Count))
	h.Write(buf)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a.Min))
	h.Write(buf)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a.Max))
	h.Write(buf)
}

// structEqual reports whether two closed nodes are structurally identical:
// same level and cells, bit-identical aggregates, and pointer-identical
// (i.e. canonical) children.
func structEqual(a, b *Node) bool {
	if a.Level != b.Level || a.Leaf != b.Leaf || len(a.Cells) != len(b.Cells) {
		return false
	}
	if a.Leaf {
		if !aggBitsEqual(a.AllAgg, b.AllAgg) {
			return false
		}
	} else if a.AllChild != b.AllChild {
		return false
	}
	for i := range a.Cells {
		ca, cb := &a.Cells[i], &b.Cells[i]
		if ca.Key != cb.Key {
			return false
		}
		if a.Leaf {
			if !aggBitsEqual(ca.Agg, cb.Agg) {
				return false
			}
		} else if ca.Child != cb.Child {
			return false
		}
	}
	return true
}

// aggBitsEqual is bit-exact aggregate equality, the sharing criterion
// hash-consing uses (floats compared by bits, not ==).
func aggBitsEqual(a, b Aggregate) bool {
	return math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
		a.Count == b.Count &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max)
}

// recanon re-registers an already-closed sub-dwarf into this builder's
// hash-consing table, bottom-up, rewriting child pointers to their canonical
// representatives. The parallel stitch uses it to restore the cross-shard
// sharing a serial build gets from its single global table: two shards that
// independently built structurally identical sub-dwarfs end up pointing at
// one node. memo short-circuits nodes already shared within a shard. The
// nodes are private to the build, so in-place rewriting is safe.
func (b *builder) recanon(n *Node, memo map[*Node]*Node) *Node {
	if n == nil {
		return nil
	}
	if r, ok := memo[n]; ok {
		return r
	}
	if !n.Leaf {
		for i := range n.Cells {
			n.Cells[i].Child = b.recanon(n.Cells[i].Child, memo)
		}
		n.AllChild = b.recanon(n.AllChild, memo)
	}
	r := b.canonicalize(n)
	memo[n] = r
	return r
}

// renumber assigns sequence ids by a deterministic depth-first walk (cells
// in key order, ALL last — Dump's traversal), numbering each distinct node
// on first visit. Construction order — and therefore worker count — stops
// mattering: structurally identical cubes get identical ids. Returns the
// highest id assigned.
func renumber(root *Node) int64 {
	var seq int64
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		seq++
		n.seq = seq
		for i := range n.Cells {
			walk(n.Cells[i].Child)
		}
		walk(n.AllChild)
	}
	walk(root)
	return seq
}

// deepCopy clones an entire sub-dwarf with no sharing (ablation support).
func (b *builder) deepCopy(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := b.newNode(n.Level)
	out.Cells = make([]Cell, len(n.Cells))
	for i := range n.Cells {
		out.Cells[i] = Cell{Key: n.Cells[i].Key, Agg: n.Cells[i].Agg, Child: b.deepCopy(n.Cells[i].Child)}
	}
	out.AllAgg = n.AllAgg
	out.AllChild = b.deepCopy(n.AllChild)
	return out
}

func dropNil(nodes []*Node) []*Node {
	out := nodes[:0]
	for _, n := range nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

func lessDims(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func commonPrefix(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
