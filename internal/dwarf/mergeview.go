package dwarf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/maphash"
	"io"
	"math"
)

// Streaming k-way merge over encoded cubes. MergeViews combines any number
// of CubeViews directly view-to-bytes: one synchronized descent walks the
// encoded DWRFCUBE structures with a cursor per input, merging cells in key
// order, combining aggregates with MergeAggregates, and re-applying suffix
// coalescing and hash-consing on the *emitted encoded* sub-dwarfs — no
// *Node is ever allocated. The working set is the output stream under
// construction plus O(depth × fanout × k) cursor state and the
// content-addressing tables; it never materializes an input node graph,
// which is what keeps segment compaction in cubestore bounded by the output
// size instead of the sum of the decoded inputs.
//
// The output is the *canonical* encoding of the merged fact multiset:
// structurally identical sub-dwarfs are emitted once (content-addressed on
// their encoded record bytes, exact compare — children are canonical ids
// already, so byte equality is structural equality), and records are laid
// down in the same depth-first child-before-parent order Encode uses. The
// stream is therefore byte-identical to EncodeIndexed of a default-options
// batch build over the union of the inputs' facts whenever aggregate
// arithmetic is exact (integer-valued measures; with general floats the
// structure is still identical and only sum association may differ) and the
// inputs are base cubes — merging query-derived inputs keeps the FromQuery
// header flag set, exactly as MergeAll does, where a batch build of raw
// facts would clear it. Inputs built with ablation options merge fine — the
// output is re-canonicalized regardless of how the inputs were compressed.

// ErrMergeTooLarge reports a merged stream that cannot carry the u32 offset
// index (the same 4 GiB limit AppendOffsetTrailer has).
var ErrMergeTooLarge = errors.New("dwarf: merged stream exceeds the 4 GiB offset-index limit")

// MergeStats describes one streaming merge.
type MergeStats struct {
	// Inputs is the number of views merged.
	Inputs int
	// Tuples is the output header's source tuple count (sum of the inputs').
	Tuples int
	// Nodes and Cells count the node records and key cells emitted (the
	// canonical structure, equal to the batch-built cube's Stats).
	Nodes int
	Cells int
	// SharedNodes counts sub-dwarfs that resolved to an already-emitted
	// record via the content table — the streaming equivalent of the
	// builder's hash-consing hits.
	SharedNodes int
	// BytesWritten is the total output length, offset trailer included.
	BytesWritten int64
}

// MergeViews merges k encoded cubes into dst as a single v2-indexed stream
// (see the package comment above for the canonical-output guarantee). Every
// view must be over the same dimension list. Views without a trailer index
// are index-scanned (and thereby fully validated) on first use; corrupt
// structure surfaces as ErrCorruptCube, never a panic.
func MergeViews(dst io.Writer, views ...*CubeView) (MergeStats, error) {
	out, stats, err := MergeViewsBytes(views...)
	if err != nil {
		return stats, err
	}
	if _, err := dst.Write(out); err != nil {
		return stats, err
	}
	return stats, nil
}

// MergeViewsBytes is MergeViews returning the encoded stream as one
// contiguous byte slice — the shape cubestore wants, since a sealed segment
// keeps its encoded bytes resident for the zero-copy view anyway.
func MergeViewsBytes(views ...*CubeView) ([]byte, MergeStats, error) {
	var stats MergeStats
	if len(views) == 0 {
		return nil, stats, errors.New("dwarf: MergeViews needs at least one input view")
	}
	dims := views[0].hdr.dims
	var numTuples uint64
	fromQuery := false
	for i, v := range views {
		if err := v.ensure(); err != nil {
			return nil, stats, err
		}
		if i > 0 {
			if len(v.hdr.dims) != len(dims) {
				return nil, stats, fmt.Errorf("%w: %d vs %d dimensions", ErrDimsMismatch, len(dims), len(v.hdr.dims))
			}
			for j := range dims {
				if v.hdr.dims[j] != dims[j] {
					return nil, stats, fmt.Errorf("%w: dimension %d is %q vs %q", ErrDimsMismatch, j, dims[j], v.hdr.dims[j])
				}
			}
		}
		numTuples += v.hdr.numTuples
		fromQuery = fromQuery || v.hdr.fromQuery
	}
	stats.Inputs = len(views)
	stats.Tuples = int(numTuples)

	m := newViewMerger(views)
	var roots []nref
	for i, v := range views {
		if v.rootID != 0 {
			roots = append(roots, nref{view: i, id: v.rootID})
		}
	}
	var rootOut uint32
	var err error
	if len(roots) > 0 {
		rootOut, err = m.merge(roots, 0)
	} else {
		// No input has a root (all empty streams): emit the canonical empty
		// root the batch builder closes over zero facts.
		rootOut, err = m.emit(0, m.ndims == 1, nil, 0, Aggregate{})
	}
	if err != nil {
		return nil, stats, err
	}
	stats.Nodes = len(m.starts)
	stats.Cells = m.cells
	stats.SharedNodes = m.shared

	out, err := m.assemble(dims, numTuples, fromQuery, rootOut)
	if err != nil {
		return nil, stats, err
	}
	stats.BytesWritten = int64(len(out))
	return out, stats, nil
}

// nref names one input sub-dwarf: a view index plus a node id in that
// view's stream.
type nref struct {
	view int
	id   uint64
}

// mcell is one merged cell awaiting emission. key aliases an input stream
// (inputs are immutable for the duration of the merge).
type mcell struct {
	key   []byte
	child uint32
	agg   Aggregate
}

// cellIter walks one input node's cell list in key order, validating the
// strictly-sorted invariant as it goes (trailer-indexed views skip the full
// structural scan, so the merge re-checks what it depends on).
type cellIter struct {
	view int
	n    vnode
	cur  cursor
	rem  int
	done bool
	key  []byte
	// prev is the previous key, for the sortedness check.
	prev []byte

	child uint64
	agg   Aggregate
}

func (it *cellIter) next() error {
	if it.rem == 0 {
		it.done = true
		return nil
	}
	it.rem--
	it.prev = it.key
	k, err := it.cur.str()
	if err != nil {
		return err
	}
	if it.prev != nil && cmpKeys(it.prev, k) >= 0 {
		return errCorrupt("node %d: cell keys not strictly sorted", it.n.id)
	}
	it.key = k
	if it.n.leaf {
		it.agg, err = it.cur.agg()
	} else {
		var id uint64
		if id, err = it.cur.uvarint(); err == nil {
			id, err = it.n.childID(id)
			it.child = id
		}
	}
	return err
}

// levelScratch is the per-recursion-level working state. Only one frame per
// level is ever live (the descent goes strictly down one level per call),
// so reusing these slices across the whole merge keeps the steady-state
// allocation count independent of node count.
type levelScratch struct {
	iters     []cellIter
	cells     []mcell
	childRefs []nref
	allRefs   []nref
}

// viewMerger holds the merge state: the node section under construction
// (relative offsets), the content-addressing table, and the two memo tables
// that keep shared sub-dwarf work linear.
type viewMerger struct {
	ndims int
	views []*CubeView

	buf     []byte   // output node section, records back to back
	starts  []uint32 // per emitted node: record offset in buf
	ends    []uint32
	allOffs []uint32

	canon map[uint64][]uint32 // content hash -> emitted node ids
	seed  maphash.Seed

	// single memoizes the translation of one input sub-dwarf; multi
	// memoizes genuine k-way merges by their input reference set. Both map
	// to output node ids.
	single []map[uint64]uint32
	multi  map[string]uint32

	levels []levelScratch
	rec    []byte // record under construction (only used at emit time)
	key    []byte // memo key scratch

	// zones accumulates the output's per-dimension zone maps. Keys are
	// folded only when a record is appended (not when it dedups to an
	// already-emitted node, whose keys were folded then), so the union over
	// emitted records at level d is exactly dimension d's distinct key set —
	// the same maps a batch build of the merged facts would record.
	zones *zoneAcc

	cells  int
	shared int
}

func newViewMerger(views []*CubeView) *viewMerger {
	ndims := len(views[0].hdr.dims)
	single := make([]map[uint64]uint32, len(views))
	for i := range single {
		single[i] = make(map[uint64]uint32)
	}
	return &viewMerger{
		ndims:  ndims,
		views:  views,
		canon:  make(map[uint64][]uint32),
		seed:   maphash.MakeSeed(),
		single: single,
		multi:  make(map[string]uint32),
		levels: make([]levelScratch, ndims),
		zones:  newZoneAcc(ndims),
	}
}

// merge returns the output id of the sub-dwarf merging refs (all at the
// given level), memoized so shared input structure is merged once.
func (m *viewMerger) merge(refs []nref, level int) (uint32, error) {
	if len(refs) == 1 {
		if id, ok := m.single[refs[0].view][refs[0].id]; ok {
			return id, nil
		}
	} else {
		m.key = m.key[:0]
		for _, r := range refs {
			m.key = binary.AppendUvarint(m.key, uint64(r.view))
			m.key = binary.AppendUvarint(m.key, r.id)
		}
		if id, ok := m.multi[string(m.key)]; ok {
			return id, nil
		}
	}
	id, err := m.mergeNodes(refs, level)
	if err != nil {
		return 0, err
	}
	if len(refs) == 1 {
		m.single[refs[0].view][refs[0].id] = id
	} else {
		m.key = m.key[:0]
		for _, r := range refs {
			m.key = binary.AppendUvarint(m.key, uint64(r.view))
			m.key = binary.AppendUvarint(m.key, r.id)
		}
		m.multi[string(m.key)] = id
	}
	return id, nil
}

// mergeNodes performs the k-way cell merge of refs and emits the resulting
// record. Cells are visited in key order and children merged depth-first
// before the node itself — the same post-order Encode's VisitDepthFirst
// walks, which is what makes output ids line up with a batch build's.
func (m *viewMerger) mergeNodes(refs []nref, level int) (uint32, error) {
	leaf := level == m.ndims-1
	sc := &m.levels[level]
	sc.iters = sc.iters[:0]
	for _, r := range refs {
		v := m.views[r.view]
		n, err := v.node(r.id)
		if err != nil {
			return 0, err
		}
		if n.level != level {
			return 0, errCorrupt("merge: input %d node %d at level %d, want %d", r.view, r.id, n.level, level)
		}
		if n.leaf != leaf {
			return 0, errCorrupt("merge: input %d node %d leaf flag %v disagrees with level %d of %d",
				r.view, r.id, n.leaf, level, m.ndims)
		}
		it := cellIter{view: r.view, n: n, cur: n.cells, rem: n.ncells}
		if err := it.next(); err != nil {
			return 0, err
		}
		sc.iters = append(sc.iters, it)
	}

	sc.cells = sc.cells[:0]
	for {
		var minKey []byte
		found := false
		for i := range sc.iters {
			it := &sc.iters[i]
			if !it.done && (!found || cmpKeys(it.key, minKey) < 0) {
				minKey, found = it.key, true
			}
		}
		if !found {
			break
		}
		if leaf {
			// Fold matching leaf aggregates in input order — the same
			// left-fold the builder's suffixCoalesce performs.
			var agg Aggregate
			for i := range sc.iters {
				it := &sc.iters[i]
				if !it.done && cmpKeys(it.key, minKey) == 0 {
					agg = MergeAggregates(agg, it.agg)
					if err := it.next(); err != nil {
						return 0, err
					}
				}
			}
			sc.cells = append(sc.cells, mcell{key: minKey, agg: agg})
		} else {
			sc.childRefs = sc.childRefs[:0]
			for i := range sc.iters {
				it := &sc.iters[i]
				if !it.done && cmpKeys(it.key, minKey) == 0 {
					sc.childRefs = append(sc.childRefs, nref{view: it.view, id: it.child})
					if err := it.next(); err != nil {
						return 0, err
					}
				}
			}
			child, err := m.merge(sc.childRefs, level+1)
			if err != nil {
				return 0, err
			}
			sc.cells = append(sc.cells, mcell{key: minKey, child: child})
		}
	}

	// The merged ALL is the merge of the inputs' ALLs — equivalent to (and
	// much cheaper than) re-coalescing the merged cells.
	var allAgg Aggregate
	var allID uint32
	if leaf {
		for i := range sc.iters {
			a, err := m.views[sc.iters[i].view].allAgg(sc.iters[i].n)
			if err != nil {
				return 0, err
			}
			allAgg = MergeAggregates(allAgg, a)
		}
	} else {
		sc.allRefs = sc.allRefs[:0]
		for i := range sc.iters {
			id, err := m.views[sc.iters[i].view].allChild(sc.iters[i].n)
			if err != nil {
				return 0, err
			}
			if id != 0 {
				sc.allRefs = append(sc.allRefs, nref{view: sc.iters[i].view, id: id})
			}
		}
		if len(sc.allRefs) > 0 {
			var err error
			if allID, err = m.merge(sc.allRefs, level+1); err != nil {
				return 0, err
			}
		}
	}
	return m.emit(level, leaf, sc.cells, allID, allAgg)
}

// emit encodes one node record, content-addresses it against every record
// emitted so far, and either returns the existing id (suffix coalescing /
// hash-consing on encoded bytes) or appends it as the next node.
func (m *viewMerger) emit(level int, leaf bool, cells []mcell, allID uint32, allAgg Aggregate) (uint32, error) {
	rec := m.rec[:0]
	rec = binary.AppendUvarint(rec, uint64(level))
	if leaf {
		rec = append(rec, 1)
	} else {
		rec = append(rec, 0)
	}
	rec = binary.AppendUvarint(rec, uint64(len(cells)))
	for i := range cells {
		c := &cells[i]
		rec = binary.AppendUvarint(rec, uint64(len(c.key)))
		rec = append(rec, c.key...)
		if leaf {
			rec = appendAggregate(rec, c.agg)
		} else {
			rec = binary.AppendUvarint(rec, uint64(c.child))
		}
	}
	allOff := len(rec)
	if leaf {
		rec = appendAggregate(rec, allAgg)
	} else {
		rec = binary.AppendUvarint(rec, uint64(allID))
	}
	m.rec = rec

	h := maphash.Bytes(m.seed, rec)
	for _, id := range m.canon[h] {
		if bytes.Equal(rec, m.buf[m.starts[id-1]:m.ends[id-1]]) {
			m.shared++
			return id, nil
		}
	}
	if len(m.buf)+len(rec) > maxStreamBytes {
		return 0, ErrMergeTooLarge
	}
	start := uint32(len(m.buf))
	m.buf = append(m.buf, rec...)
	m.starts = append(m.starts, start)
	m.ends = append(m.ends, uint32(len(m.buf)))
	m.allOffs = append(m.allOffs, start+uint32(allOff))
	id := uint32(len(m.starts))
	m.canon[h] = append(m.canon[h], id)
	m.cells += len(cells)
	for i := range cells {
		m.zones.add(level, cells[i].key)
	}
	return id, nil
}

// assemble lays the final stream down: v1 header, node section (offsets
// shifted to absolute), root id, CRC, then the v2 offset trailer and the
// v3 zone-map section — the byte-for-byte layout EncodeIndexed produces.
func (m *viewMerger) assemble(dims []string, numTuples uint64, fromQuery bool, rootOut uint32) ([]byte, error) {
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, codecMagic...)
	hdr = append(hdr, codecVersion)
	flags := byte(0)
	if fromQuery {
		flags |= 1
	}
	hdr = append(hdr, flags)
	hdr = binary.AppendUvarint(hdr, numTuples)
	hdr = binary.AppendUvarint(hdr, uint64(len(dims)))
	for _, d := range dims {
		hdr = binary.AppendUvarint(hdr, uint64(len(d)))
		hdr = append(hdr, d...)
	}
	hdr = binary.AppendUvarint(hdr, uint64(len(m.starts)))
	nodesStart := len(hdr)

	var rootBuf [binary.MaxVarintLen64]byte
	rootLen := binary.PutUvarint(rootBuf[:], uint64(rootOut))
	v1Len := nodesStart + len(m.buf) + rootLen + 4
	if v1Len > maxStreamBytes {
		return nil, ErrMergeTooLarge
	}
	out := make([]byte, 0, v1Len+trailerFixedLen+8*len(m.starts)+trailerFootLen)
	out = append(out, hdr...)
	out = append(out, m.buf...)
	out = append(out, rootBuf[:rootLen]...)
	crc := crc32.ChecksumIEEE(out[len(codecMagic):])
	out = binary.LittleEndian.AppendUint32(out, crc)

	for i := range m.starts {
		m.starts[i] += uint32(nodesStart)
		m.allOffs[i] += uint32(nodesStart)
	}
	out = appendTrailer(out, m.starts, m.allOffs, uint64(rootOut), nodesStart)
	return appendMetaTrailer(out, m.zones.zones), nil
}

// appendAggregate encodes an aggregate exactly as the codec's writeAgg
// does: sum, min, max as little-endian float64 bits, then count uvarint.
func appendAggregate(b []byte, a Aggregate) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.Sum))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.Min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.Max))
	return binary.AppendUvarint(b, uint64(a.Count))
}
