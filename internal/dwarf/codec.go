package dwarf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary cube format, used by the flat-file baselines and for moving cubes
// between processes:
//
//	magic "DWRFCUBE" | version u8 | flags u8 | numTuples uvarint
//	ndims uvarint | dim names (uvarint len + bytes) ...
//	node count uvarint
//	nodes in child-before-parent order, each:
//	  level uvarint | leaf u8 | ncells uvarint
//	  cells: key (uvarint len + bytes) + (child id uvarint | aggregate)
//	  all:   child id uvarint (non-leaf; 0 = nil) | aggregate (leaf)
//	root id uvarint
//	crc32 (IEEE) of everything between magic and trailer, fixed u32
//
// Node ids are 1-based positions in the emission order, so every child id
// refers to an already-decoded node.
const (
	codecMagic   = "DWRFCUBE"
	codecVersion = 1
)

// Codec errors.
var (
	ErrBadMagic    = errors.New("dwarf: not a DWARF cube stream")
	ErrBadVersion  = errors.New("dwarf: unsupported cube format version")
	ErrCorruptCube = errors.New("dwarf: corrupt cube stream")
)

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// Encode writes the cube to w in the binary cube format.
func (c *Cube) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}
	writeByte := func(b byte) error {
		_, err := cw.Write([]byte{b})
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	writeAgg := func(a Aggregate) error {
		var buf [8]byte
		for _, f := range []float64{a.Sum, a.Min, a.Max} {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := cw.Write(buf[:]); err != nil {
				return err
			}
		}
		return writeUvarint(uint64(a.Count))
	}

	flags := byte(0)
	if c.FromQuery {
		flags |= 1
	}
	if err := writeByte(codecVersion); err != nil {
		return err
	}
	if err := writeByte(flags); err != nil {
		return err
	}
	if err := writeUvarint(uint64(c.numTuples)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(c.dims))); err != nil {
		return err
	}
	for _, d := range c.dims {
		if err := writeString(d); err != nil {
			return err
		}
	}

	// Assign ids children-first so references always point backwards.
	ids := make(map[*Node]uint64)
	var order []*Node
	c.VisitDepthFirst(func(n *Node) bool {
		order = append(order, n)
		ids[n] = uint64(len(order))
		return true
	})
	if err := writeUvarint(uint64(len(order))); err != nil {
		return err
	}
	for _, n := range order {
		if err := writeUvarint(uint64(n.Level)); err != nil {
			return err
		}
		leaf := byte(0)
		if n.Leaf {
			leaf = 1
		}
		if err := writeByte(leaf); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(n.Cells))); err != nil {
			return err
		}
		for i := range n.Cells {
			cell := &n.Cells[i]
			if err := writeString(cell.Key); err != nil {
				return err
			}
			var err error
			if n.Leaf {
				err = writeAgg(cell.Agg)
			} else {
				err = writeUvarint(ids[cell.Child])
			}
			if err != nil {
				return err
			}
		}
		var err error
		if n.Leaf {
			err = writeAgg(n.AllAgg)
		} else {
			err = writeUvarint(ids[n.AllChild]) // 0 when nil
		}
		if err != nil {
			return err
		}
	}
	var rootID uint64
	if c.root != nil {
		rootID = ids[c.root]
	}
	if err := writeUvarint(rootID); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a cube previously written by Encode, verifying the CRC
// trailer before parsing. The whole stream is buffered in memory; cube
// files are bounded by the cube's compressed size.
func Decode(r io.Reader) (*Cube, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// DecodeBytes parses an encoded cube held in memory.
func DecodeBytes(data []byte) (*Cube, error) {
	if err := VerifyEncoded(data); err != nil {
		return nil, err
	}
	rb := bytes.NewReader(data[len(codecMagic) : len(data)-4])

	readUvarint := func() (uint64, error) { return binary.ReadUvarint(rb) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(rb.Len()) {
			return "", ErrCorruptCube
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(rb, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	readAgg := func() (Aggregate, error) {
		var a Aggregate
		var buf [8]byte
		for _, dst := range []*float64{&a.Sum, &a.Min, &a.Max} {
			if _, err := io.ReadFull(rb, buf[:]); err != nil {
				return a, err
			}
			*dst = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
		cnt, err := readUvarint()
		if err != nil {
			return a, err
		}
		a.Count = int64(cnt)
		return a, nil
	}

	version, err := rb.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	flags, err := rb.ReadByte()
	if err != nil {
		return nil, err
	}
	numTuples, err := readUvarint()
	if err != nil {
		return nil, err
	}
	ndims, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if ndims == 0 || ndims > 1<<16 {
		return nil, ErrCorruptCube
	}
	dims := make([]string, ndims)
	for i := range dims {
		if dims[i], err = readString(); err != nil {
			return nil, err
		}
	}

	nodeCount, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nodeCount > uint64(len(data)) {
		return nil, ErrCorruptCube
	}
	nodes := make([]*Node, nodeCount+1) // 1-based; nodes[0] stays nil
	resolve := func(id uint64) (*Node, error) {
		if id == 0 {
			return nil, nil
		}
		if id >= uint64(len(nodes)) || nodes[id] == nil {
			return nil, ErrCorruptCube
		}
		return nodes[id], nil
	}
	for id := uint64(1); id <= nodeCount; id++ {
		level, err := readUvarint()
		if err != nil {
			return nil, err
		}
		leafByte, err := rb.ReadByte()
		if err != nil {
			return nil, err
		}
		ncells, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if ncells > uint64(len(data)) {
			return nil, ErrCorruptCube
		}
		n := &Node{Level: int(level), Leaf: leafByte == 1, seq: int64(id)}
		n.Cells = make([]Cell, ncells)
		for i := range n.Cells {
			key, err := readString()
			if err != nil {
				return nil, err
			}
			n.Cells[i].Key = key
			if n.Leaf {
				if n.Cells[i].Agg, err = readAgg(); err != nil {
					return nil, err
				}
			} else {
				childID, err := readUvarint()
				if err != nil {
					return nil, err
				}
				if n.Cells[i].Child, err = resolve(childID); err != nil {
					return nil, err
				}
				if n.Cells[i].Child == nil {
					return nil, ErrCorruptCube
				}
			}
		}
		if n.Leaf {
			if n.AllAgg, err = readAgg(); err != nil {
				return nil, err
			}
		} else {
			allID, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if n.AllChild, err = resolve(allID); err != nil {
				return nil, err
			}
		}
		nodes[id] = n
	}
	rootID, err := readUvarint()
	if err != nil {
		return nil, err
	}
	root, err := resolve(rootID)
	if err != nil {
		return nil, err
	}
	if root == nil && nodeCount > 0 {
		return nil, ErrCorruptCube
	}
	return &Cube{
		dims:      dims,
		root:      root,
		numTuples: int(numTuples),
		FromQuery: flags&1 != 0,
		nextSeq:   int64(nodeCount),
	}, nil
}

// VerifyEncoded checks the magic and CRC trailer of an encoded cube held in
// memory. It returns nil when the checksum matches the payload.
func VerifyEncoded(data []byte) error {
	if len(data) < len(codecMagic)+4 {
		return ErrCorruptCube
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return ErrBadMagic
	}
	payload := data[len(codecMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCorruptCube)
	}
	return nil
}
