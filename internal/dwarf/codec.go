package dwarf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Binary cube format, used by the flat-file baselines and for moving cubes
// between processes:
//
//	magic "DWRFCUBE" | version u8 | flags u8 | numTuples uvarint
//	ndims uvarint | dim names (uvarint len + bytes) ...
//	node count uvarint
//	nodes in child-before-parent order, each:
//	  level uvarint | leaf u8 | ncells uvarint
//	  cells: key (uvarint len + bytes) + (child id uvarint | aggregate)
//	  all:   child id uvarint (non-leaf; 0 = nil) | aggregate (leaf)
//	root id uvarint
//	crc32 (IEEE) of everything between magic and trailer, fixed u32
//
// Node ids are 1-based positions in the emission order, so every child id
// refers to an already-decoded node.
//
// An optional v2 node-offset trailer may follow the CRC word (see
// EncodeIndexed). It is self-describing — detected by the 8-byte magic at
// the very end of the stream — and carries its own CRC, so readers that
// know about it get an O(1) node index while the v1 portion of the stream
// is byte-for-byte unchanged:
//
//	trailer body:
//	  node count u32 | root id u32 | nodes-section offset u32
//	  per node: record offset u32 | ALL-record offset u32
//	trailer footer:
//	  crc32 (IEEE) of body u32 | body length u32 | magic "DWRFNDX2"
//
// All offsets are absolute byte positions in the v1 stream. Streams larger
// than 4 GiB cannot carry a trailer (offsets are u32) and fall back to the
// scan-built index.
//
// An optional v3 metadata section may follow the v2 trailer, carrying the
// per-dimension zone maps (see zonemap.go). Like the v2 trailer it is
// self-describing — detected by its own 8-byte magic at the very end of the
// stream, with its own CRC — so v1 and v2 readers are unaffected: they
// either strip it or never look past the v1 CRC word:
//
//	meta body:
//	  ndims uvarint
//	  per dimension: distinct uvarint | min key (uvarint len + bytes)
//	                 | max key (uvarint len + bytes)
//	meta footer:
//	  crc32 (IEEE) of body u32 | body length u32 | magic "DWRFMET3"
const (
	codecMagic   = "DWRFCUBE"
	codecVersion = 1

	trailerMagic    = "DWRFNDX2"
	trailerFixedLen = 12                        // node count + root id + nodes start
	trailerFootLen  = 4 + 4 + len(trailerMagic) // body CRC + body length + magic

	metaMagic   = "DWRFMET3"
	metaFootLen = 4 + 4 + len(metaMagic) // body CRC + body length + magic

	// maxStreamBytes bounds streams that can carry or build a u32 offset
	// index.
	maxStreamBytes = math.MaxUint32
)

// Codec errors.
var (
	ErrBadMagic    = errors.New("dwarf: not a DWARF cube stream")
	ErrBadVersion  = errors.New("dwarf: unsupported cube format version")
	ErrCorruptCube = errors.New("dwarf: corrupt cube stream")
)

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int // bytes written after the magic
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	cw.n += len(p)
	return cw.w.Write(p)
}

// encodeOffsets captures, during one Encode pass, exactly the node index a
// post-hoc scanEncoded would recover: per-node record and ALL-record
// offsets (absolute stream positions), the root id and the node section
// start. EncodeIndexed uses it to attach the v2 trailer without re-scanning
// the stream it just wrote.
type encodeOffsets struct {
	starts, allOffs []uint32
	rootID          uint64
	nodesStart      int
	// zones, when non-nil, accumulates per-dimension zone maps from the
	// cell keys the pass writes. Plain Encode leaves it nil — the v1-only
	// path pays nothing.
	zones *zoneAcc
	// order and ids are the emission-order scratch of the encode pass,
	// pooled here so repeated encodes (seals, every segment write) reuse
	// their backing storage.
	order []*Node
	ids   map[*Node]uint64
}

var encodeOffsetsPool = sync.Pool{New: func() any {
	return &encodeOffsets{ids: make(map[*Node]uint64)}
}}

// reset drops every node reference before the struct goes back in the
// pool — a pooled encodeOffsets must never pin the node graph of the cube
// it last encoded (clearing order's full length zeroes the *Node pointers,
// not just the slice header).
func (e *encodeOffsets) reset() {
	e.starts = e.starts[:0]
	e.allOffs = e.allOffs[:0]
	e.rootID = 0
	e.nodesStart = 0
	e.zones = nil
	clear(e.order)
	e.order = e.order[:0]
	clear(e.ids)
}

// Encode writes the cube to w in the binary cube format.
func (c *Cube) Encode(w io.Writer) error {
	idx := encodeOffsetsPool.Get().(*encodeOffsets)
	err := c.encode(w, idx)
	idx.reset()
	encodeOffsetsPool.Put(idx)
	return err
}

// encode is the single encoding pass behind Encode and EncodeIndexed,
// recording node offsets into idx as it writes.
func (c *Cube) encode(w io.Writer, idx *encodeOffsets) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}
	writeByte := func(b byte) error {
		_, err := cw.Write([]byte{b})
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	writeAgg := func(a Aggregate) error {
		var buf [8]byte
		for _, f := range []float64{a.Sum, a.Min, a.Max} {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := cw.Write(buf[:]); err != nil {
				return err
			}
		}
		return writeUvarint(uint64(a.Count))
	}

	flags := byte(0)
	if c.FromQuery {
		flags |= 1
	}
	if err := writeByte(codecVersion); err != nil {
		return err
	}
	if err := writeByte(flags); err != nil {
		return err
	}
	if err := writeUvarint(uint64(c.numTuples)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(c.dims))); err != nil {
		return err
	}
	for _, d := range c.dims {
		if err := writeString(d); err != nil {
			return err
		}
	}

	// Assign ids children-first so references always point backwards.
	ids := idx.ids
	order := idx.order
	c.VisitDepthFirst(func(n *Node) bool {
		order = append(order, n)
		ids[n] = uint64(len(order))
		return true
	})
	idx.order = order
	if err := writeUvarint(uint64(len(order))); err != nil {
		return err
	}
	idx.nodesStart = len(codecMagic) + cw.n
	for _, n := range order {
		idx.starts = append(idx.starts, uint32(len(codecMagic)+cw.n))
		if err := writeUvarint(uint64(n.Level)); err != nil {
			return err
		}
		leaf := byte(0)
		if n.Leaf {
			leaf = 1
		}
		if err := writeByte(leaf); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(n.Cells))); err != nil {
			return err
		}
		for i := range n.Cells {
			cell := &n.Cells[i]
			if idx.zones != nil {
				idx.zones.addString(n.Level, cell.Key)
			}
			if err := writeString(cell.Key); err != nil {
				return err
			}
			var err error
			if n.Leaf {
				err = writeAgg(cell.Agg)
			} else {
				err = writeUvarint(ids[cell.Child])
			}
			if err != nil {
				return err
			}
		}
		idx.allOffs = append(idx.allOffs, uint32(len(codecMagic)+cw.n))
		var err error
		if n.Leaf {
			err = writeAgg(n.AllAgg)
		} else {
			err = writeUvarint(ids[n.AllChild]) // 0 when nil
		}
		if err != nil {
			return err
		}
	}
	var rootID uint64
	if c.root != nil {
		rootID = ids[c.root]
	}
	idx.rootID = rootID
	if err := writeUvarint(rootID); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeIndexed writes the cube in the v1 format followed by the v2
// node-offset trailer and the v3 zone-map metadata section, so OpenView on
// the resulting bytes (or a file or mmap'd region holding them) gets its
// node index in O(1) instead of a scan, plus per-dimension zone maps for
// prune-before-scan planning. v1 readers decode the stream unchanged: both
// sections sit after the CRC word and are stripped before parsing.
//
// The trailer and zone maps are built from offsets and keys recorded during
// the encode pass itself — one pass, no re-scan of the stream just written
// (streams of 4 GiB or more cannot carry u32 offsets and are written
// without either section).
func (c *Cube) EncodeIndexed(w io.Writer) error {
	idx := encodeOffsetsPool.Get().(*encodeOffsets)
	defer func() {
		idx.reset()
		encodeOffsetsPool.Put(idx)
	}()
	idx.zones = newZoneAcc(len(c.dims))
	var buf bytes.Buffer
	if err := c.encode(&buf, idx); err != nil {
		return err
	}
	data := buf.Bytes()
	if len(data) <= maxStreamBytes {
		data = appendTrailer(data, idx.starts, idx.allOffs, idx.rootID, idx.nodesStart)
		data = appendMetaTrailer(data, idx.zones.zones)
	}
	_, err := w.Write(data)
	return err
}

// appendTrailer appends the v2 node-offset trailer (body, body CRC, body
// length, magic) for the given absolute offsets to an encoded v1 stream.
func appendTrailer(out []byte, starts, allOffs []uint32, rootID uint64, nodesStart int) []byte {
	bodyStart := len(out)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(starts)))
	out = binary.LittleEndian.AppendUint32(out, uint32(rootID))
	out = binary.LittleEndian.AppendUint32(out, uint32(nodesStart))
	for i := range starts {
		out = binary.LittleEndian.AppendUint32(out, starts[i])
		out = binary.LittleEndian.AppendUint32(out, allOffs[i])
	}
	bodyLen := len(out) - bodyStart
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[bodyStart:]))
	out = binary.LittleEndian.AppendUint32(out, uint32(bodyLen))
	return append(out, trailerMagic...)
}

// AppendOffsetTrailer returns data extended with a v2 node-offset trailer
// and a v3 zone-map metadata section, both recorded during the single
// validating scan. The input must be a valid encoded cube; a stream that
// already carries a v2 trailer is returned unchanged. The v1 portion of the
// stream is not modified. Streams of 4 GiB or more cannot be indexed (u32
// offsets) and are returned unchanged as well.
func AppendOffsetTrailer(data []byte) ([]byte, error) {
	v1, trailer, _, err := splitSections(data)
	if err != nil {
		return nil, err
	}
	if trailer != nil {
		return data, nil
	}
	if err := verifyPayload(v1); err != nil {
		return nil, err
	}
	if len(v1) > maxStreamBytes {
		return data, nil
	}
	h, err := parseViewHeader(v1)
	if err != nil {
		return nil, err
	}
	zacc := newZoneAcc(len(h.dims))
	starts, allOffs, rootID, err := scanEncoded(v1, h, zacc)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(v1), len(v1)+trailerFixedLen+8*len(starts)+trailerFootLen)
	copy(out, v1)
	out = appendTrailer(out, starts, allOffs, rootID, h.nodesStart)
	return appendMetaTrailer(out, zacc.zones), nil
}

// SplitEncoded separates an encoded stream into its v1 portion and, when a
// valid v2 node-offset trailer is attached, the trailer body (nil
// otherwise). The slices alias data.
func SplitEncoded(data []byte) (v1, trailerBody []byte, err error) {
	return splitIndexed(data)
}

// HasOffsetTrailer reports whether data carries a valid v2 node-offset
// trailer.
func HasOffsetTrailer(data []byte) bool {
	_, trailer, err := splitIndexed(data)
	return err == nil && trailer != nil
}

// splitIndexed separates an encoded stream into its v1 portion and, when a
// valid v2 node-offset trailer is attached, the trailer body. A v3
// metadata section, if present, is stripped and dropped — callers that
// want the zone maps use splitSections.
func splitIndexed(data []byte) (v1, trailerBody []byte, err error) {
	v1, trailerBody, _, err = splitSections(data)
	return v1, trailerBody, err
}

// splitSections separates an encoded stream into its v1 portion, the v2
// node-offset trailer body (nil when absent) and the v3 metadata body (nil
// when absent). Sections are detected from the end of the stream, v3 first
// — the order they are appended in. A trailing byte pattern that merely
// resembles a section (magic present, CRC or bounds wrong) is treated as
// part of the stream before it, whose own CRC then decides its fate.
func splitSections(data []byte) (v1, trailerBody, metaBody []byte, err error) {
	if len(data) < len(codecMagic)+4 {
		return nil, nil, nil, errCorrupt("stream of %d bytes is shorter than magic plus checksum", len(data))
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return nil, nil, nil, ErrBadMagic
	}
	if len(data) >= len(codecMagic)+4+metaFootLen &&
		string(data[len(data)-len(metaMagic):]) == metaMagic {
		bodyLen := int(binary.LittleEndian.Uint32(data[len(data)-len(metaMagic)-4:]))
		total := bodyLen + metaFootLen
		if total >= metaFootLen && total <= len(data)-(len(codecMagic)+4) {
			start := len(data) - total
			body := data[start : start+bodyLen]
			want := binary.LittleEndian.Uint32(data[start+bodyLen:])
			if crc32.ChecksumIEEE(body) == want {
				metaBody = body
				data = data[:start]
			}
		}
	}
	if len(data) >= len(codecMagic)+4+trailerFootLen &&
		string(data[len(data)-len(trailerMagic):]) == trailerMagic {
		bodyLen := int(binary.LittleEndian.Uint32(data[len(data)-len(trailerMagic)-4:]))
		total := bodyLen + trailerFootLen
		if total >= trailerFootLen && total <= len(data)-(len(codecMagic)+4) {
			start := len(data) - total
			body := data[start : start+bodyLen]
			want := binary.LittleEndian.Uint32(data[start+bodyLen:])
			if crc32.ChecksumIEEE(body) == want {
				return data[:start], body, metaBody, nil
			}
		}
	}
	return data, nil, metaBody, nil
}

// verifyPayload checks the CRC word of a v1 stream (no trailer).
func verifyPayload(v1 []byte) error {
	if len(v1) < len(codecMagic)+4 {
		return errCorrupt("stream of %d bytes is shorter than magic plus checksum", len(v1))
	}
	if string(v1[:len(codecMagic)]) != codecMagic {
		return ErrBadMagic
	}
	payload := v1[len(codecMagic) : len(v1)-4]
	want := binary.LittleEndian.Uint32(v1[len(v1)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCorruptCube)
	}
	return nil
}

// VerifyEncoded checks the magic and CRC trailer of an encoded cube held in
// memory, stripping a valid v2 offset trailer first. It returns nil when
// the checksum matches the payload.
func VerifyEncoded(data []byte) error {
	v1, _, err := splitIndexed(data)
	if err != nil {
		return err
	}
	return verifyPayload(v1)
}

// Decode reads a cube previously written by Encode, verifying the CRC
// trailer before parsing. The whole stream is buffered in memory; cube
// files are bounded by the cube's compressed size.
func Decode(r io.Reader) (*Cube, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// DecodeBytes parses an encoded cube held in memory, materializing the full
// node graph. It never panics on arbitrary bytes: every failure is
// ErrBadMagic, ErrBadVersion or ErrCorruptCube. For a read-only query path
// that skips materialization entirely, see OpenView.
func DecodeBytes(data []byte) (*Cube, error) {
	v1, _, err := splitIndexed(data)
	if err != nil {
		return nil, err
	}
	if err := verifyPayload(v1); err != nil {
		return nil, err
	}
	h, err := parseViewHeader(v1)
	if err != nil {
		return nil, err
	}
	return decodeBody(v1, h)
}

// decodeBody materializes the node graph of a checksum-verified stream,
// enforcing the same structural invariants the view's index scan does:
// levels in range and agreeing with the leaf flag, strictly sorted cell
// keys, child ids referencing earlier nodes one level deeper, and the
// stream fully consumed.
func decodeBody(v1 []byte, h viewHeader) (*Cube, error) {
	ndims := len(h.dims)
	cur := cursor{data: v1, pos: h.nodesStart, end: h.payloadEnd}
	nodes := make([]*Node, h.nodeCount+1) // 1-based; nodes[0] stays nil
	for id := uint64(1); id <= h.nodeCount; id++ {
		level, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if level >= uint64(ndims) {
			return nil, errCorrupt("node %d: level %d out of range for %d dimensions", id, level, ndims)
		}
		leafB, err := cur.u8()
		if err != nil {
			return nil, err
		}
		if leafB > 1 {
			return nil, errCorrupt("node %d: bad leaf flag %d", id, leafB)
		}
		leaf := leafB == 1
		if leaf != (int(level) == ndims-1) {
			return nil, errCorrupt("node %d: leaf flag %v disagrees with level %d of %d", id, leaf, level, ndims)
		}
		ncells, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if ncells > uint64(cur.end-cur.pos) {
			return nil, errCorrupt("node %d: cell count %d overruns stream", id, ncells)
		}
		n := &Node{Level: int(level), Leaf: leaf, seq: int64(id)}
		n.Cells = make([]Cell, ncells)
		for i := range n.Cells {
			key, err := cur.str()
			if err != nil {
				return nil, err
			}
			if i > 0 && n.Cells[i-1].Key >= string(key) {
				return nil, errCorrupt("node %d: cell keys not strictly sorted", id)
			}
			n.Cells[i].Key = string(key)
			if leaf {
				if n.Cells[i].Agg, err = cur.agg(); err != nil {
					return nil, err
				}
			} else {
				childID, err := cur.uvarint()
				if err != nil {
					return nil, err
				}
				if childID == 0 || childID >= id {
					return nil, errCorrupt("node %d: cell child id %d is not an earlier node", id, childID)
				}
				child := nodes[childID]
				if child.Level != int(level)+1 {
					return nil, errCorrupt("node %d: child %d at level %d, want %d", id, childID, child.Level, level+1)
				}
				n.Cells[i].Child = child
			}
		}
		if leaf {
			if n.AllAgg, err = cur.agg(); err != nil {
				return nil, err
			}
		} else {
			allID, err := cur.uvarint()
			if err != nil {
				return nil, err
			}
			if allID >= id {
				return nil, errCorrupt("node %d: ALL child id %d is not an earlier node", id, allID)
			}
			if allID != 0 {
				if nodes[allID].Level != int(level)+1 {
					return nil, errCorrupt("node %d: ALL child %d at level %d, want %d", id, allID, nodes[allID].Level, level+1)
				}
				n.AllChild = nodes[allID]
			}
		}
		nodes[id] = n
	}
	rootID, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	if rootID > h.nodeCount {
		return nil, errCorrupt("root id %d exceeds node count %d", rootID, h.nodeCount)
	}
	if h.nodeCount > 0 && (rootID == 0 || nodes[rootID].Level != 0) {
		return nil, errCorrupt("root id %d does not name a level-0 node", rootID)
	}
	if cur.pos != h.payloadEnd {
		return nil, errCorrupt("%d trailing bytes after root id", h.payloadEnd-cur.pos)
	}
	var root *Node
	if rootID != 0 {
		root = nodes[rootID]
	}
	return &Cube{
		dims:      append([]string(nil), h.dims...),
		root:      root,
		numTuples: int(h.numTuples),
		FromQuery: h.fromQuery,
		nextSeq:   int64(h.nodeCount),
	}, nil
}
