package dwarf

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The streaming-merge differential suite. The central property: MergeViews
// over any partition of a fact multiset — however the inputs were built
// (every ablation option set, serial or sharded) and however they were
// encoded (plain v1 or v2-indexed) — produces bytes identical to
// EncodeIndexed of one default-options batch build over the whole multiset.
// Measures are small integers so aggregate arithmetic is exact and the
// bit-identity claim is unconditional.

// intTuples returns n random tuples with small integer measures.
func intTuples(rng *rand.Rand, ndims, n, card int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		dims := make([]string, ndims)
		for d := range dims {
			dims[d] = fmt.Sprintf("k%d", rng.Intn(card))
		}
		out[i] = Tuple{Dims: dims, Measure: float64(rng.Intn(19) - 9)}
	}
	return out
}

// partition splits tuples into parts consecutive slices (some possibly
// empty) at random cut points.
func partition(rng *rand.Rand, tuples []Tuple, parts int) [][]Tuple {
	cuts := make([]int, parts-1)
	for i := range cuts {
		cuts[i] = rng.Intn(len(tuples) + 1)
	}
	for i := range cuts { // insertion sort, tiny
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	out := make([][]Tuple, parts)
	prev := 0
	for i, c := range cuts {
		out[i] = tuples[prev:c]
		prev = c
	}
	out[parts-1] = tuples[prev:]
	return out
}

// encodeFor encodes a cube plain (even parts) or indexed (odd), exercising
// both the trailer-index and lazy-scan view paths in the merge.
func encodeFor(t *testing.T, c *Cube, indexed bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if indexed {
		err = c.EncodeIndexed(&buf)
	} else {
		err = c.Encode(&buf)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func batchIndexed(t *testing.T, dims []string, tuples []Tuple) []byte {
	t.Helper()
	ref, err := New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ref.EncodeIndexed(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeViewsMatchesBatchBytes(t *testing.T) {
	ablations := [][]Option{
		nil,
		{WithoutSuffixCoalescing()},
		{WithoutHashConsing()},
		{WithoutSuffixCoalescing(), WithoutHashConsing()},
	}
	for ai, opts := range ablations {
		for _, workers := range []int{1, 4} {
			for parts := 2; parts <= 5; parts++ {
				name := fmt.Sprintf("ablation%d/workers%d/parts%d", ai, workers, parts)
				opts, workers, parts := opts, workers, parts
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(int64(1000*ai + 10*workers + parts)))
					ndims := 1 + rng.Intn(4)
					dims := dimNames(ndims)
					tuples := intTuples(rng, ndims, 40+rng.Intn(160), 1+rng.Intn(5))
					views := make([]*CubeView, parts)
					for i, part := range partition(rng, tuples, parts) {
						c, err := New(dims, part, append([]Option{WithWorkers(workers)}, opts...)...)
						if err != nil {
							t.Fatal(err)
						}
						v, err := OpenView(encodeFor(t, c, i%2 == 1))
						if err != nil {
							t.Fatal(err)
						}
						views[i] = v
					}
					got, stats, err := MergeViewsBytes(views...)
					if err != nil {
						t.Fatal(err)
					}
					want := batchIndexed(t, dims, tuples)
					if !bytes.Equal(got, want) {
						t.Fatalf("MergeViews output differs from the batch build: %d vs %d bytes", len(got), len(want))
					}
					if stats.Tuples != len(tuples) || stats.Inputs != parts {
						t.Fatalf("stats %+v: want %d tuples over %d inputs", stats, len(tuples), parts)
					}
					if stats.BytesWritten != int64(len(got)) {
						t.Fatalf("stats.BytesWritten = %d, wrote %d", stats.BytesWritten, len(got))
					}
					ref, err := DecodeBytes(want)
					if err != nil {
						t.Fatal(err)
					}
					if rs := ref.Stats(); stats.Nodes != rs.Nodes || stats.Cells != rs.Cells {
						t.Fatalf("stats count %d nodes / %d cells, batch cube has %d / %d",
							stats.Nodes, stats.Cells, rs.Nodes, rs.Cells)
					}
					// The io.Writer form emits the same stream.
					var buf bytes.Buffer
					if _, err := MergeViews(&buf, views...); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf.Bytes(), want) {
						t.Fatal("MergeViews(dst) differs from MergeViewsBytes")
					}
				})
			}
		}
	}
}

// TestMergeViewsEdgeInputs covers the degenerate shapes compaction can
// meet: all-empty inputs, empty-plus-loaded, single-tuple cubes, and a
// single input (which canonicalizes whatever encoding it was given).
func TestMergeViewsEdgeInputs(t *testing.T) {
	dims := []string{"a", "b"}
	mkView := func(tuples []Tuple, opts ...Option) *CubeView {
		c, err := New(dims, tuples, opts...)
		if err != nil {
			t.Fatal(err)
		}
		v, err := OpenView(encodeFor(t, c, true))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	one := []Tuple{{Dims: []string{"x", "y"}, Measure: 3}}
	two := []Tuple{{Dims: []string{"x", "z"}, Measure: 5}, {Dims: []string{"w", "y"}, Measure: 2}}

	cases := []struct {
		name  string
		views []*CubeView
		union []Tuple
	}{
		{"all-empty", []*CubeView{mkView(nil), mkView(nil), mkView(nil)}, nil},
		{"empty-plus-loaded", []*CubeView{mkView(nil), mkView(two), mkView(nil)}, two},
		{"single-tuple-cubes", []*CubeView{mkView(one), mkView(two)}, append(append([]Tuple{}, one...), two...)},
		{"single-input", []*CubeView{mkView(two)}, two},
		{"single-input-ablated", []*CubeView{mkView(two, WithoutSuffixCoalescing(), WithoutHashConsing())}, two},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, stats, err := MergeViewsBytes(tc.views...)
			if err != nil {
				t.Fatal(err)
			}
			want := batchIndexed(t, dims, tc.union)
			if !bytes.Equal(got, want) {
				t.Fatalf("output differs from batch build: %d vs %d bytes", len(got), len(want))
			}
			if stats.Tuples != len(tc.union) {
				t.Fatalf("stats.Tuples = %d, want %d", stats.Tuples, len(tc.union))
			}
		})
	}
}

func TestMergeViewsValidation(t *testing.T) {
	mk := func(dims []string) *CubeView {
		c, err := New(dims, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, err := OpenView(encodeFor(t, c, true))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if _, _, err := MergeViewsBytes(); err == nil {
		t.Error("MergeViews with no inputs must fail")
	}
	if _, _, err := MergeViewsBytes(mk([]string{"a"}), mk([]string{"a", "b"})); !errors.Is(err, ErrDimsMismatch) {
		t.Errorf("dimension count mismatch: %v", err)
	}
	if _, _, err := MergeViewsBytes(mk([]string{"a", "b"}), mk([]string{"a", "c"})); !errors.Is(err, ErrDimsMismatch) {
		t.Errorf("dimension name mismatch: %v", err)
	}
}

// TestMergeViewsFromQueryFlag: merging query-derived cubes keeps the
// is_cube flag set in the output header.
func TestMergeViewsFromQueryFlag(t *testing.T) {
	c, err := New([]string{"a"}, []Tuple{{Dims: []string{"x"}, Measure: 1}})
	if err != nil {
		t.Fatal(err)
	}
	c.FromQuery = true
	v, err := OpenView(encodeFor(t, c, true))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := MergeViewsBytes(v, v)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := DecodeBytes(out)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.FromQuery {
		t.Error("FromQuery flag lost in merge")
	}
	// Both engines apply the same flag rule, so the streaming path and the
	// decode+MergeAll fallback emit identical bytes for the same inputs.
	inMem, err := MergeAll(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !inMem.FromQuery {
		t.Error("MergeAll dropped the FromQuery flag")
	}
	var reenc bytes.Buffer
	if err := inMem.EncodeIndexed(&reenc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, reenc.Bytes()) {
		t.Error("streaming merge and MergeAll+EncodeIndexed disagree for FromQuery inputs")
	}
}

// TestMergeAllMatchesBatch: the k-way in-memory merge answers exactly like
// a batch build of the union, for every ablation set, and shares the same
// left-fold aggregate order as a pairwise Merge chain (bit-identical sums
// even with fractional measures).
func TestMergeAllMatchesBatch(t *testing.T) {
	ablations := [][]Option{
		nil,
		{WithoutSuffixCoalescing()},
		{WithoutHashConsing()},
		{WithoutSuffixCoalescing(), WithoutHashConsing()},
	}
	for ai, opts := range ablations {
		rng := rand.New(rand.NewSource(int64(ai)))
		ndims := 1 + rng.Intn(3)
		dims := dimNames(ndims)
		var all []Tuple
		var cubes []*Cube
		for i := 0; i < 4; i++ {
			part := randomTuples(rng, ndims, rng.Intn(50), 4)
			all = append(all, part...)
			c, err := New(dims, part, opts...)
			if err != nil {
				t.Fatal(err)
			}
			cubes = append(cubes, c)
		}
		merged, err := MergeAll(cubes...)
		if err != nil {
			t.Fatal(err)
		}
		pairwise := cubes[0]
		for _, c := range cubes[1:] {
			if pairwise, err = Merge(pairwise, c); err != nil {
				t.Fatal(err)
			}
		}
		union, err := New(dims, all, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if merged.NumSourceTuples() != len(all) {
			t.Fatalf("ablation %d: tuples %d, want %d", ai, merged.NumSourceTuples(), len(all))
		}
		for q := 0; q < 40; q++ {
			keys := randomQuery(rng, ndims, 5)
			got, _ := merged.Point(keys...)
			want, _ := union.Point(keys...)
			if !got.Equal(want) {
				t.Fatalf("ablation %d query %v: MergeAll=%v union=%v", ai, keys, got, want)
			}
			pw, _ := pairwise.Point(keys...)
			if math.Float64bits(got.Sum) != math.Float64bits(pw.Sum) || got.Count != pw.Count {
				t.Fatalf("ablation %d query %v: MergeAll=%v pairwise=%v (fold order diverged)", ai, keys, got, pw)
			}
		}
		if err := merged.CheckInvariants(); err != nil {
			t.Errorf("ablation %d: %v", ai, err)
		}
	}
	// Degenerate arities.
	if _, err := MergeAll(); err == nil {
		t.Error("MergeAll() must fail")
	}
	solo, err := New([]string{"d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := MergeAll(solo); err != nil || got != solo {
		t.Errorf("MergeAll(single) = %v, %v; want the input cube itself", got, err)
	}
}

// FuzzMergeViews drives the streaming merge over arbitrary (resealed)
// streams: it must never panic, fail only with the codec sentinels or a
// dimension mismatch, and any stream it does emit must be fully valid and
// agree with the in-memory MergeAll over the decoded inputs.
func FuzzMergeViews(f *testing.F) {
	seeds := fuzzSeedStreams(f)
	for i, s := range seeds {
		f.Add(s, seeds[(i+1)%len(seeds)])
	}
	f.Fuzz(func(t *testing.T, d1, d2 []byte) {
		clean := func(op string, err error) {
			if err == nil || errors.Is(err, ErrDimsMismatch) || errors.Is(err, ErrMergeTooLarge) {
				return
			}
			wantCleanError(t, op, err)
		}
		v1, err := OpenView(resealV1(d1))
		wantCleanError(t, "OpenView", err)
		v2, err2 := OpenView(resealV1(d2))
		wantCleanError(t, "OpenView", err2)
		if err != nil || err2 != nil {
			return
		}
		out, stats, err := MergeViewsBytes(v1, v2)
		clean("MergeViews", err)
		if err != nil {
			return
		}
		merged, err := DecodeBytes(out)
		if err != nil {
			t.Fatalf("MergeViews emitted an invalid stream: %v", err)
		}
		if !HasOffsetTrailer(out) {
			t.Fatal("MergeViews emitted no offset trailer")
		}
		if merged.NumSourceTuples() != stats.Tuples {
			t.Fatalf("output carries %d tuples, stats say %d", merged.NumSourceTuples(), stats.Tuples)
		}
		c1, e1 := DecodeBytes(resealV1(d1))
		c2, e2 := DecodeBytes(resealV1(d2))
		if e1 != nil || e2 != nil {
			return
		}
		ref, err := MergeAll(c1, c2)
		if err != nil {
			return
		}
		wild := make([]string, merged.NumDims())
		for i := range wild {
			wild[i] = All
		}
		got, err := merged.Point(wild...)
		if err != nil {
			t.Fatalf("Point on merged output: %v", err)
		}
		want, err := ref.Point(wild...)
		if err != nil {
			t.Fatalf("Point on MergeAll reference: %v", err)
		}
		if got.Count != want.Count {
			t.Fatalf("merged count %d, MergeAll count %d", got.Count, want.Count)
		}
		if !math.IsNaN(got.Sum) && !math.IsNaN(want.Sum) &&
			math.Float64bits(got.Sum) != math.Float64bits(want.Sum) {
			t.Fatalf("merged sum %v, MergeAll sum %v", got.Sum, want.Sum)
		}
	})
}
