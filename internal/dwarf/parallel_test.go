package dwarf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// ablationCases are the option sets every parallel/serial equivalence check
// runs under: full compression, each ablation alone, and both together.
var ablationCases = []struct {
	name string
	opts []Option
}{
	{"full", nil},
	{"no-hash-consing", []Option{WithoutHashConsing()}},
	{"no-suffix-coalescing", []Option{WithoutSuffixCoalescing()}},
	{"no-sharing-at-all", []Option{WithoutSuffixCoalescing(), WithoutHashConsing()}},
}

func dumpString(t *testing.T, c *Cube) string {
	t.Helper()
	var sb strings.Builder
	if err := c.Dump(&sb); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return sb.String()
}

// checkStructurallyIdentical asserts the full correctness bar of the
// parallel pipeline: same Dump rendering (structure, sharing and ids), same
// node/cell counts, and identical point, range and rollup answers.
func checkStructurallyIdentical(t *testing.T, serial, parallel *Cube, label string) {
	t.Helper()
	ss, ps := serial.Stats(), parallel.Stats()
	if ss != ps {
		t.Fatalf("%s: stats differ: serial=%+v parallel=%+v", label, ss, ps)
	}
	if sd, pd := dumpString(t, serial), dumpString(t, parallel); sd != pd {
		t.Fatalf("%s: Dump differs\n--- serial ---\n%s--- parallel ---\n%s", label, sd, pd)
	}
	if err := parallel.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants: %v", label, err)
	}
}

// TestParallelMatchesSerialPaperExample: the paper's Fig. 2 facts built at
// every worker count match the serial cube exactly.
func TestParallelMatchesSerialPaperExample(t *testing.T) {
	for _, tc := range ablationCases {
		serial := mustCube(t, paperDims, paperTuples(), tc.opts...)
		for workers := 1; workers <= 8; workers++ {
			par, err := NewParallel(paperDims, paperTuples(), workers, tc.opts...)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", tc.name, workers, err)
			}
			checkStructurallyIdentical(t, serial, par, fmt.Sprintf("%s/workers=%d", tc.name, workers))
		}
	}
}

// TestParallelCrossShardSharing: data with identical suffixes under every
// first-dimension key forces the cross-shard re-canonicalization to merge
// sub-dwarfs built by different workers; without it node counts explode.
func TestParallelCrossShardSharing(t *testing.T) {
	var tuples []Tuple
	for s := 0; s < 16; s++ {
		for _, day := range []string{"mon", "tue", "wed"} {
			for _, slot := range []string{"am", "pm"} {
				tuples = append(tuples, Tuple{
					Dims: []string{fmt.Sprintf("s%02d", s), day, slot}, Measure: 1,
				})
			}
		}
	}
	dims := []string{"station", "day", "slot"}
	serial := mustCube(t, dims, tuples)
	for _, workers := range []int{2, 4, 8} {
		par, err := NewParallel(dims, tuples, workers)
		if err != nil {
			t.Fatal(err)
		}
		checkStructurallyIdentical(t, serial, par, fmt.Sprintf("workers=%d", workers))
	}
}

// TestParallelDegenerateLeadingDims: a near-constant leading dimension (the
// bike feed's Year/Month shape) defeats first-dimension sharding; the
// planner must deepen the shard prefix until the data fans out, and the
// result must still match the serial build exactly.
func TestParallelDegenerateLeadingDims(t *testing.T) {
	var tuples []Tuple
	for day := 0; day < 7; day++ {
		for hour := 0; hour < 24; hour++ {
			for st := 0; st < 3; st++ {
				tuples = append(tuples, Tuple{
					Dims: []string{"2016", "01", fmt.Sprintf("%02d", day),
						fmt.Sprintf("%02d", hour), fmt.Sprintf("s%d", st)},
					Measure: float64(day*hour + st),
				})
			}
		}
	}
	dims := []string{"year", "month", "day", "hour", "station"}
	serial := mustCube(t, dims, tuples)
	for _, workers := range []int{2, 4, 8, 16} {
		par, err := NewParallel(dims, tuples, workers)
		if err != nil {
			t.Fatal(err)
		}
		checkStructurallyIdentical(t, serial, par, fmt.Sprintf("workers=%d", workers))
	}
	// The plan really does shard: depth reaches the day level (2 distinct
	// year/month prefixes would not feed 4 workers).
	ats := make([]AggTuple, len(tuples))
	for i, tp := range tuples {
		ats[i] = AggTuple{Dims: tp.Dims, Agg: NewAggregate(tp.Measure)}
	}
	shards, lo := planShards(sortTuples(ats), 4, len(dims))
	if lo != 3 || len(shards) != 4 {
		t.Errorf("plan = %d shards at lo=%d, want 4 shards at lo=3", len(shards), lo)
	}
}

// TestPropertyParallelEqualsSerial: for random facts, every worker count
// from 1 to 8 and every ablation option set, the parallel build's Dump,
// stats and point/range/rollup query answers equal the serial build's.
func TestPropertyParallelEqualsSerial(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(4)
		card := 1 + rng.Intn(6)
		tuples := randomTuples(rng, ndims, rng.Intn(120), card)
		dims := dimNames(ndims)
		tc := ablationCases[rng.Intn(len(ablationCases))]
		serial, err := New(dims, tuples, tc.opts...)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		serialDump := dumpString(t, serial)
		for workers := 1; workers <= 8; workers++ {
			par, err := NewParallel(dims, tuples, workers, tc.opts...)
			if err != nil {
				t.Logf("NewParallel(%d): %v", workers, err)
				return false
			}
			if serial.Stats() != par.Stats() {
				t.Logf("seed %d %s workers=%d: stats %+v vs %+v",
					seed, tc.name, workers, serial.Stats(), par.Stats())
				return false
			}
			if pd := dumpString(t, par); pd != serialDump {
				t.Logf("seed %d %s workers=%d: Dump differs", seed, tc.name, workers)
				return false
			}
			// Point queries, including wildcard mixes and missing keys.
			for q := 0; q < 20; q++ {
				keys := randomQuery(rng, ndims, card+1)
				gs, err1 := serial.Point(keys...)
				gp, err2 := par.Point(keys...)
				if err1 != nil || err2 != nil || !gs.Equal(gp) {
					t.Logf("seed %d workers=%d point %v: serial=%v parallel=%v",
						seed, workers, keys, gs, gp)
					return false
				}
			}
			// Range queries.
			for q := 0; q < 8; q++ {
				sels := make([]Selector, ndims)
				for d := range sels {
					switch rng.Intn(3) {
					case 0:
						sels[d] = SelectAll()
					case 1:
						sels[d] = SelectKeys(fmt.Sprintf("k%d", rng.Intn(card+1)))
					default:
						lo := fmt.Sprintf("k%d", rng.Intn(card))
						hi := fmt.Sprintf("k%d", rng.Intn(card))
						if hi < lo {
							lo, hi = hi, lo
						}
						sels[d] = SelectRange(lo, hi)
					}
				}
				gs, err1 := serial.Range(sels)
				gp, err2 := par.Range(sels)
				if err1 != nil || err2 != nil || !gs.Equal(gp) {
					t.Logf("seed %d workers=%d range: serial=%v parallel=%v", seed, workers, gs, gp)
					return false
				}
			}
			// Rollups: group by each dimension over the whole cube.
			all := make([]Selector, ndims)
			for dim := 0; dim < ndims; dim++ {
				gs, err1 := serial.GroupBy(dim, all)
				gp, err2 := par.GroupBy(dim, all)
				if err1 != nil || err2 != nil || len(gs) != len(gp) {
					t.Logf("seed %d workers=%d groupby(%d): size %d vs %d", seed, workers, dim, len(gs), len(gp))
					return false
				}
				for k, v := range gs {
					if !gp[k].Equal(v) {
						t.Logf("seed %d workers=%d groupby(%d)[%q]: %v vs %v", seed, workers, dim, k, v, gp[k])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPlanShards: shards are contiguous subslices covering the sorted input
// exactly once, cuts never split an lo-prefix run, the worker cap holds,
// and a degenerate plan reports lo = 0 (serial).
func TestPlanShards(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(4)
		tuples := randomTuples(rng, ndims, rng.Intn(200), 1+rng.Intn(8))
		ats := make([]AggTuple, len(tuples))
		for i, tp := range tuples {
			ats[i] = AggTuple{Dims: tp.Dims, Agg: NewAggregate(tp.Measure)}
		}
		sorted := sortTuples(ats)
		workers := 1 + rng.Intn(10)
		shards, lo := planShards(sorted, workers, ndims)
		if len(shards) > workers {
			t.Logf("seed %d: %d shards > %d workers", seed, len(shards), workers)
			return false
		}
		if lo < 0 || lo >= ndims {
			t.Logf("seed %d: lo %d out of range for %d dims", seed, lo, ndims)
			return false
		}
		if lo == 0 && len(shards) != 1 {
			t.Logf("seed %d: serial plan with %d shards", seed, len(shards))
			return false
		}
		// Shards tile the sorted input in order.
		total := 0
		for si, sh := range shards {
			if len(shards) > 1 && len(sh) == 0 {
				t.Logf("seed %d: empty shard %d of %d", seed, si, len(shards))
				return false
			}
			for j := range sh {
				want := &sorted[total+j]
				if &sh[j] != want {
					t.Logf("seed %d: shard %d is not a contiguous subslice", seed, si)
					return false
				}
			}
			total += len(sh)
		}
		if total != len(sorted) {
			t.Logf("seed %d: shards cover %d of %d tuples", seed, total, len(sorted))
			return false
		}
		// No cut splits an lo-prefix run.
		if lo > 0 {
			idx := 0
			for si := 0; si < len(shards)-1; si++ {
				idx += len(shards[si])
				if commonPrefix(sorted[idx-1].Dims, sorted[idx].Dims) >= lo {
					t.Logf("seed %d: cut after %d splits an lo=%d run", seed, idx-1, lo)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSortTuplesParallel: the parallel merge sort is element-for-element
// identical to the serial stable sort, including the relative order of
// duplicate keys (each input tuple carries a unique aggregate marker, so a
// stability violation flips an element).
func TestSortTuplesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 100, 5000, 20000} {
		ats := make([]AggTuple, n)
		for i := range ats {
			ats[i] = AggTuple{
				Dims: []string{fmt.Sprintf("k%d", rng.Intn(5)), fmt.Sprintf("k%d", rng.Intn(3))},
				Agg:  NewAggregate(float64(i)), // unique marker: exposes instability
			}
		}
		want := sortTuples(ats)
		for _, workers := range []int{2, 3, 4, 8} {
			got := sortTuplesParallel(ats, workers)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: length %d, want %d", n, workers, len(got), len(want))
			}
			for i := range want {
				if !sameDims(got[i].Dims, want[i].Dims) || !got[i].Agg.Equal(want[i].Agg) {
					t.Fatalf("n=%d workers=%d: order diverges at %d: %v vs %v",
						n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func sameDims(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelLargeBuild: a build big enough to engage the parallel sort
// (chunks over 1024 tuples) still matches the serial cube exactly.
func TestParallelLargeBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tuples := randomTuples(rng, 4, 12000, 9)
	dims := dimNames(4)
	serial := mustCube(t, dims, tuples)
	for _, workers := range []int{2, 4, 8} {
		par, err := NewParallel(dims, tuples, workers)
		if err != nil {
			t.Fatal(err)
		}
		checkStructurallyIdentical(t, serial, par, fmt.Sprintf("workers=%d", workers))
	}
}

// TestParallelWorkerDefaults: workers <= 0 falls back to NumCPU and still
// matches serial; a worker count far above the key cardinality collapses
// gracefully.
func TestParallelWorkerDefaults(t *testing.T) {
	serial := mustCube(t, paperDims, paperTuples())
	zero, err := NewParallel(paperDims, paperTuples(), 0)
	if err != nil {
		t.Fatal(err)
	}
	checkStructurallyIdentical(t, serial, zero, "workers=0")
	many, err := NewParallel(paperDims, paperTuples(), 64)
	if err != nil {
		t.Fatal(err)
	}
	checkStructurallyIdentical(t, serial, many, "workers=64")

	// Empty input.
	emptySerial := mustCube(t, paperDims, nil)
	emptyPar, err := NewParallel(paperDims, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkStructurallyIdentical(t, emptySerial, emptyPar, "empty")
}

// TestParallelAppendAndIncremental: the Workers option survives Append (the
// delta cube builds sharded) and threads through the Incremental chunk loop.
func TestParallelAppendAndIncremental(t *testing.T) {
	base := mustCube(t, paperDims, paperTuples()[:2], WithWorkers(4))
	extra := paperTuples()[2:]
	appended, err := base.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	want := mustCube(t, paperDims, paperTuples())
	for _, q := range [][]string{{All, All, All}, {"Ireland", All, All}} {
		ga, _ := appended.Point(q...)
		gw, _ := want.Point(q...)
		if !ga.Equal(gw) {
			t.Errorf("append with workers: %v = %v, want %v", q, ga, gw)
		}
	}

	inc, err := NewIncremental(paperDims, 2, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.AddBatch(paperTuples()); err != nil {
		t.Fatal(err)
	}
	cube, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := cube.Point(All, All, All)
	gw, _ := want.Point(All, All, All)
	if !ga.Equal(gw) {
		t.Errorf("incremental with workers: ALL = %v, want %v", ga, gw)
	}
}
