package dwarf

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestIncrementalEqualsBatchBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []string{"a", "b", "c"}
	tuples := randomTuples(rng, 3, 500, 7)

	inc, err := NewIncremental(dims, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		if err := inc.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.NumSourceTuples() != batch.NumSourceTuples() {
		t.Errorf("tuples %d != %d", streamed.NumSourceTuples(), batch.NumSourceTuples())
	}
	for q := 0; q < 50; q++ {
		keys := randomQuery(rng, 3, 8)
		a, _ := streamed.Point(keys...)
		b, _ := batch.Point(keys...)
		if !a.Equal(b) {
			t.Fatalf("query %v: streamed=%v batch=%v", keys, a, b)
		}
	}
	if err := streamed.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestIncrementalContinuesAfterCube(t *testing.T) {
	inc, err := NewIncremental([]string{"d"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inc.AddBatch([]Tuple{{Dims: []string{"x"}, Measure: 1}, {Dims: []string{"y"}, Measure: 2}})
	c1, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := c1.Point(All); agg.Sum != 3 {
		t.Errorf("first cube = %v", agg)
	}
	if err := inc.Add(Tuple{Dims: []string{"z"}, Measure: 4}); err != nil {
		t.Fatal(err)
	}
	if inc.Buffered() != 1 {
		t.Errorf("buffered = %d", inc.Buffered())
	}
	c2, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := c2.Point(All); agg.Sum != 7 || agg.Count != 3 {
		t.Errorf("second cube = %v", agg)
	}
	// The earlier snapshot is immutable.
	if agg, _ := c1.Point(All); agg.Sum != 3 {
		t.Errorf("snapshot mutated: %v", agg)
	}
}

func TestIncrementalValidation(t *testing.T) {
	inc, err := NewIncremental([]string{"a", "b"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(Tuple{Dims: []string{"only-one"}, Measure: 1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := NewIncremental(nil, 10); !errors.Is(err, ErrNoDimensions) {
		t.Errorf("no dims: %v", err)
	}
}

func TestDumpRendersTree(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	var sb strings.Builder
	if err := c.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"Ireland"`, `"Fenian St"`, "ALL", "[Country]", "[Station]"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %s:\n%s", want, out)
		}
	}
	// Coalesced sub-dwarfs render as shared references.
	if !strings.Contains(out, "(shared)") {
		t.Errorf("dump should mark shared sub-dwarfs:\n%s", out)
	}
	// Empty cube.
	e := mustCube(t, []string{"x"}, nil)
	sb.Reset()
	if err := e.Dump(&sb); err != nil || !strings.Contains(sb.String(), "node #") {
		t.Errorf("empty dump = %q, %v", sb.String(), err)
	}
}
