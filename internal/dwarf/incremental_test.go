package dwarf

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestIncrementalEqualsBatchBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []string{"a", "b", "c"}
	tuples := randomTuples(rng, 3, 500, 7)

	inc, err := NewIncremental(dims, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		if err := inc.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.NumSourceTuples() != batch.NumSourceTuples() {
		t.Errorf("tuples %d != %d", streamed.NumSourceTuples(), batch.NumSourceTuples())
	}
	for q := 0; q < 50; q++ {
		keys := randomQuery(rng, 3, 8)
		a, _ := streamed.Point(keys...)
		b, _ := batch.Point(keys...)
		if !a.Equal(b) {
			t.Fatalf("query %v: streamed=%v batch=%v", keys, a, b)
		}
	}
	if err := streamed.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestIncrementalContinuesAfterCube(t *testing.T) {
	inc, err := NewIncremental([]string{"d"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inc.AddBatch([]Tuple{{Dims: []string{"x"}, Measure: 1}, {Dims: []string{"y"}, Measure: 2}})
	c1, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := c1.Point(All); agg.Sum != 3 {
		t.Errorf("first cube = %v", agg)
	}
	if err := inc.Add(Tuple{Dims: []string{"z"}, Measure: 4}); err != nil {
		t.Fatal(err)
	}
	if inc.Buffered() != 1 {
		t.Errorf("buffered = %d", inc.Buffered())
	}
	c2, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := c2.Point(All); agg.Sum != 7 || agg.Count != 3 {
		t.Errorf("second cube = %v", agg)
	}
	// The earlier snapshot is immutable.
	if agg, _ := c1.Point(All); agg.Sum != 3 {
		t.Errorf("snapshot mutated: %v", agg)
	}
}

// TestIncrementalCubeStableAcrossFlushes is the regression test for the
// Cube() ownership rule: a cube handed out earlier must answer identically
// after any number of later Adds and flushes, because flushes build new
// cubes and never mutate shared sub-dwarfs.
func TestIncrementalCubeStableAcrossFlushes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []string{"a", "b", "c"}
	inc, err := NewIncremental(dims, 16)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		cube    *Cube
		queries [][]string
		answers []Aggregate
	}
	var snaps []snap
	tuples := randomTuples(rng, 3, 400, 5)
	for i, tu := range tuples {
		if err := inc.Add(tu); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			c, err := inc.Cube()
			if err != nil {
				t.Fatal(err)
			}
			s := snap{cube: c}
			for q := 0; q < 20; q++ {
				keys := randomQuery(rng, 3, 6)
				agg, err := c.Point(keys...)
				if err != nil {
					t.Fatal(err)
				}
				s.queries = append(s.queries, keys)
				s.answers = append(s.answers, agg)
			}
			snaps = append(snaps, s)
		}
	}
	if _, err := inc.Cube(); err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		for q, keys := range s.queries {
			agg, err := s.cube.Point(keys...)
			if err != nil {
				t.Fatal(err)
			}
			if !agg.Equal(s.answers[q]) {
				t.Fatalf("snapshot %d mutated by later flushes: query %v was %v, now %v",
					i, keys, s.answers[q], agg)
			}
		}
		if err := s.cube.CheckInvariants(); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
}

// TestIncrementalConcurrent exercises Add/AddBatch/Cube/Buffered from many
// goroutines; run under -race it is the regression test for the field races
// the pre-lock Incremental had (concurrent Cube() flushing while an Add
// appends to pending).
func TestIncrementalConcurrent(t *testing.T) {
	inc, err := NewIncremental([]string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				tu := Tuple{Dims: []string{fmt.Sprintf("a%d", rng.Intn(5)), fmt.Sprintf("b%d", rng.Intn(5))}, Measure: 1}
				if rng.Intn(4) == 0 {
					if err := inc.AddBatch([]Tuple{tu}); err != nil {
						t.Error(err)
						return
					}
				} else if err := inc.Add(tu); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := inc.Cube()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Point(All, All); err != nil {
					t.Error(err)
					return
				}
				inc.Buffered()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	c, err := inc.Cube()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := c.Point(All, All)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != writers*perWriter || agg.Sum != writers*perWriter {
		t.Errorf("final ALL aggregate = %+v, want count/sum %d", agg, writers*perWriter)
	}
}

func TestIncrementalValidation(t *testing.T) {
	inc, err := NewIncremental([]string{"a", "b"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(Tuple{Dims: []string{"only-one"}, Measure: 1}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := NewIncremental(nil, 10); !errors.Is(err, ErrNoDimensions) {
		t.Errorf("no dims: %v", err)
	}
}

func TestDumpRendersTree(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	var sb strings.Builder
	if err := c.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"Ireland"`, `"Fenian St"`, "ALL", "[Country]", "[Station]"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %s:\n%s", want, out)
		}
	}
	// Coalesced sub-dwarfs render as shared references.
	if !strings.Contains(out, "(shared)") {
		t.Errorf("dump should mark shared sub-dwarfs:\n%s", out)
	}
	// Empty cube.
	e := mustCube(t, []string{"x"}, nil)
	sb.Reset()
	if err := e.Dump(&sb); err != nil || !strings.Contains(sb.String(), "node #") {
		t.Errorf("empty dump = %q, %v", sb.String(), err)
	}
}
