package dwarf

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvalidStructure reports a rebuilt cube that violates DWARF invariants.
var ErrInvalidStructure = errors.New("dwarf: invalid cube structure")

// NewNode constructs a bare node for rebuilding (storage mappers wire cells
// and ALL pointers themselves, then call FromParts which fixes levels and
// validates).
func NewNode(seq int64) *Node { return &Node{seq: seq} }

// FromParts reconstructs a Cube from a node graph rebuilt out of storage —
// the second direction of the paper's bi-directional model mapper. It
// assigns levels breadth-first from the root, sorts each node's cells,
// marks leaves, and validates the structure. numTuples and fromQuery
// restore the schema row's metadata (is_cube flag).
func FromParts(dims []string, root *Node, numTuples int, fromQuery bool) (*Cube, error) {
	if len(dims) == 0 {
		return nil, ErrNoDimensions
	}
	if root == nil {
		return nil, fmt.Errorf("%w: nil root", ErrInvalidStructure)
	}
	ndims := len(dims)
	// Assign levels BFS; detect level conflicts (a node reachable at two
	// different depths would be a corrupt graph).
	level := map[*Node]int{root: 0}
	queue := []*Node{root}
	var maxSeq int64
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		l := level[n]
		if l >= ndims {
			return nil, fmt.Errorf("%w: node deeper than %d dimensions", ErrInvalidStructure, ndims)
		}
		n.Level = l
		n.Leaf = l == ndims-1
		if n.seq > maxSeq {
			maxSeq = n.seq
		}
		sort.Slice(n.Cells, func(i, j int) bool { return n.Cells[i].Key < n.Cells[j].Key })
		for i := range n.Cells {
			if i > 0 && n.Cells[i].Key == n.Cells[i-1].Key {
				return nil, fmt.Errorf("%w: duplicate cell key %q", ErrInvalidStructure, n.Cells[i].Key)
			}
			child := n.Cells[i].Child
			if n.Leaf {
				if child != nil {
					return nil, fmt.Errorf("%w: leaf cell %q has a child node", ErrInvalidStructure, n.Cells[i].Key)
				}
				continue
			}
			if child == nil {
				return nil, fmt.Errorf("%w: non-leaf cell %q has no child node", ErrInvalidStructure, n.Cells[i].Key)
			}
			if prev, seen := level[child]; seen {
				if prev != l+1 {
					return nil, fmt.Errorf("%w: node reachable at levels %d and %d", ErrInvalidStructure, prev, l+1)
				}
			} else {
				level[child] = l + 1
				queue = append(queue, child)
			}
		}
		if !n.Leaf && n.AllChild != nil {
			if prev, seen := level[n.AllChild]; seen {
				if prev != l+1 {
					return nil, fmt.Errorf("%w: ALL node reachable at levels %d and %d", ErrInvalidStructure, prev, l+1)
				}
			} else {
				level[n.AllChild] = l + 1
				queue = append(queue, n.AllChild)
			}
		}
	}
	return &Cube{
		dims:      append([]string(nil), dims...),
		root:      root,
		numTuples: numTuples,
		FromQuery: fromQuery,
		nextSeq:   maxSeq + 1,
	}, nil
}

// CheckInvariants walks the cube verifying DWARF structural invariants:
// sorted unique cell keys, consistent levels and leaf flags, and ALL
// aggregates equal to the merge of the node's cells. It is exercised by
// property tests and available to store implementations after a Load.
func (c *Cube) CheckInvariants() error {
	if c.root == nil {
		return fmt.Errorf("%w: nil root", ErrInvalidStructure)
	}
	ndims := len(c.dims)
	var err error
	c.Visit(func(n *Node) bool {
		if n.Level < 0 || n.Level >= ndims {
			err = fmt.Errorf("%w: level %d out of range", ErrInvalidStructure, n.Level)
			return false
		}
		if n.Leaf != (n.Level == ndims-1) {
			err = fmt.Errorf("%w: leaf flag inconsistent at level %d", ErrInvalidStructure, n.Level)
			return false
		}
		var all Aggregate
		for i := range n.Cells {
			if i > 0 && n.Cells[i].Key <= n.Cells[i-1].Key {
				err = fmt.Errorf("%w: cells unsorted at level %d", ErrInvalidStructure, n.Level)
				return false
			}
			if n.Leaf {
				all = MergeAggregates(all, n.Cells[i].Agg)
				if n.Cells[i].Child != nil {
					err = fmt.Errorf("%w: leaf cell with child", ErrInvalidStructure)
					return false
				}
			} else {
				if n.Cells[i].Child == nil {
					err = fmt.Errorf("%w: interior cell without child", ErrInvalidStructure)
					return false
				}
				if n.Cells[i].Child.Level != n.Level+1 {
					err = fmt.Errorf("%w: child level %d under level %d", ErrInvalidStructure,
						n.Cells[i].Child.Level, n.Level)
					return false
				}
			}
		}
		if n.Leaf && len(n.Cells) > 0 && !n.AllAgg.Equal(all) {
			err = fmt.Errorf("%w: leaf ALL aggregate %v != merged %v", ErrInvalidStructure, n.AllAgg, all)
			return false
		}
		return true
	})
	return err
}
