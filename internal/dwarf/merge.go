package dwarf

import "fmt"

// Merge combines two cubes over identical dimension lists into a new cube
// whose aggregates equal a cube built from the union of both inputs' facts.
// The result may share unchanged sub-dwarfs with the inputs (cubes are
// immutable, so sharing is safe). This is the primitive behind the paper's
// §7 future-work item, incremental cube updates: build a small DWARF from
// the new batch and merge it into the standing cube. The merged cube carries
// a's options forward — including the Workers setting, so later Appends keep
// building sharded.
func Merge(a, b *Cube) (*Cube, error) { return MergeAll(a, b) }

// MergeAll combines any number of cubes over identical dimension lists in
// one k-way pass: a single suffixCoalesce descends over all k roots at
// once, merging cells in key order and folding matching aggregates in input
// order. Folding k cubes this way costs one coalesce of the union instead
// of the k-1 full re-coalesce passes a pairwise Merge chain performs, and
// produces bit-identical aggregates (the pairwise chain folds in the same
// left-to-right order). The result carries the first cube's options
// forward and is marked FromQuery when any input is (the same flag rule
// MergeViews applies, so the two engines stay interchangeable). With a
// single input the input cube itself is returned.
//
// For merging cubes that are already encoded, MergeViews does the same
// k-way descent directly over the bytes without materializing any nodes.
func MergeAll(cubes ...*Cube) (*Cube, error) {
	if len(cubes) == 0 {
		return nil, fmt.Errorf("dwarf: MergeAll needs at least one cube")
	}
	a := cubes[0]
	for _, c := range cubes[1:] {
		if len(a.dims) != len(c.dims) {
			return nil, fmt.Errorf("%w: %d vs %d dimensions", ErrDimsMismatch, len(a.dims), len(c.dims))
		}
		for i := range a.dims {
			if a.dims[i] != c.dims[i] {
				return nil, fmt.Errorf("%w: dimension %d is %q vs %q", ErrDimsMismatch, i, a.dims[i], c.dims[i])
			}
		}
	}
	if len(cubes) == 1 {
		return a, nil
	}
	mb := newBuilder(len(a.dims), a.opts)
	roots := make([]*Node, len(cubes))
	numTuples := 0
	fromQuery := false
	for i, c := range cubes {
		roots[i] = c.root
		numTuples += c.numTuples
		fromQuery = fromQuery || c.FromQuery
		mb.seq = maxInt64(mb.seq, c.nextSeq)
	}
	root := mb.suffixCoalesce(roots)
	if root == nil {
		root = mb.close(mb.newNode(0))
	}
	return &Cube{
		dims:      append([]string(nil), a.dims...),
		root:      root,
		opts:      a.opts,
		numTuples: numTuples,
		FromQuery: fromQuery,
		nextSeq:   mb.seq,
	}, nil
}

// Append folds a batch of new fact tuples into the cube, returning the
// updated cube. The receiver is unchanged. The delta cube inherits the
// receiver's options (including its Workers setting, so delta construction
// shards in parallel when the cube was built that way); extra opts apply on
// top, letting callers override just the delta build.
func (c *Cube) Append(tuples []Tuple, opts ...Option) (*Cube, error) {
	delta, err := New(c.dims, tuples, append(optionsAsList(c.opts), opts...)...)
	if err != nil {
		return nil, err
	}
	return Merge(c, delta)
}

func optionsAsList(o Options) []Option {
	var out []Option
	if o.DisableSuffixCoalescing {
		out = append(out, WithoutSuffixCoalescing())
	}
	if o.DisableHashConsing {
		out = append(out, WithoutHashConsing())
	}
	if o.Workers > 0 {
		out = append(out, WithWorkers(o.Workers))
	}
	return out
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
