package dwarf

import "fmt"

// Merge combines two cubes over identical dimension lists into a new cube
// whose aggregates equal a cube built from the union of both inputs' facts.
// The result may share unchanged sub-dwarfs with the inputs (cubes are
// immutable, so sharing is safe). This is the primitive behind the paper's
// §7 future-work item, incremental cube updates: build a small DWARF from
// the new batch and merge it into the standing cube. The merged cube carries
// a's options forward — including the Workers setting, so later Appends keep
// building sharded.
func Merge(a, b *Cube) (*Cube, error) {
	if len(a.dims) != len(b.dims) {
		return nil, fmt.Errorf("%w: %d vs %d dimensions", ErrDimsMismatch, len(a.dims), len(b.dims))
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return nil, fmt.Errorf("%w: dimension %d is %q vs %q", ErrDimsMismatch, i, a.dims[i], b.dims[i])
		}
	}
	mb := newBuilder(len(a.dims), a.opts)
	mb.seq = maxInt64(a.nextSeq, b.nextSeq)
	root := mb.suffixCoalesce([]*Node{a.root, b.root})
	if root == nil {
		root = mb.close(mb.newNode(0))
	}
	return &Cube{
		dims:      append([]string(nil), a.dims...),
		root:      root,
		opts:      a.opts,
		numTuples: a.numTuples + b.numTuples,
		nextSeq:   mb.seq,
	}, nil
}

// Append folds a batch of new fact tuples into the cube, returning the
// updated cube. The receiver is unchanged. The delta cube inherits the
// receiver's options (including its Workers setting, so delta construction
// shards in parallel when the cube was built that way); extra opts apply on
// top, letting callers override just the delta build.
func (c *Cube) Append(tuples []Tuple, opts ...Option) (*Cube, error) {
	delta, err := New(c.dims, tuples, append(optionsAsList(c.opts), opts...)...)
	if err != nil {
		return nil, err
	}
	return Merge(c, delta)
}

func optionsAsList(o Options) []Option {
	var out []Option
	if o.DisableSuffixCoalescing {
		out = append(out, WithoutSuffixCoalescing())
	}
	if o.DisableHashConsing {
		out = append(out, WithoutHashConsing())
	}
	if o.Workers > 0 {
		out = append(out, WithWorkers(o.Workers))
	}
	return out
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
