package dwarf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// fuzzSeedStreams returns a spread of valid encoded cubes (plain and
// indexed, empty through multi-dimensional) used to seed both fuzz targets
// and the committed corpus under testdata/fuzz/.
func fuzzSeedStreams(tb testing.TB) [][]byte {
	var out [][]byte
	add := func(dims []string, tuples []Tuple) {
		c, err := New(dims, tuples)
		if err != nil {
			tb.Fatalf("seed cube: %v", err)
		}
		var buf bytes.Buffer
		if err := c.Encode(&buf); err != nil {
			tb.Fatalf("seed encode: %v", err)
		}
		out = append(out, append([]byte(nil), buf.Bytes()...))
		buf.Reset()
		if err := c.EncodeIndexed(&buf); err != nil {
			tb.Fatalf("seed encode indexed: %v", err)
		}
		out = append(out, append([]byte(nil), buf.Bytes()...))
	}
	add([]string{"A"}, []Tuple{{Dims: []string{"x"}, Measure: 1}})
	add([]string{"A", "B"}, nil)
	add([]string{"Day", "Region", "Kind"}, []Tuple{
		{Dims: []string{"d1", "north", "bike"}, Measure: 2},
		{Dims: []string{"d1", "south", "bike"}, Measure: 3},
		{Dims: []string{"d2", "north", "car"}, Measure: 5},
		{Dims: []string{"d2", "north", "bike"}, Measure: 7},
	})
	out = append(out, []byte("not a cube at all"), []byte(codecMagic), nil)
	return out
}

// resealV1 rewrites data into a stream that passes the v1 checksum: magic
// forced, CRC recomputed over the payload. This lets the fuzzer reach the
// structural parser instead of bouncing off the checksum.
func resealV1(data []byte) []byte {
	body := data
	if len(body) < len(codecMagic) {
		body = append(append([]byte(nil), body...), make([]byte, len(codecMagic)-len(body))...)
	}
	out := make([]byte, 0, len(body)+4)
	out = append(out, codecMagic...)
	out = append(out, body[len(codecMagic):]...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out[len(codecMagic):]))
	return append(out, crc[:]...)
}

// resealTrailer attaches a CRC-valid trailer footer to arbitrary body
// bytes, so trailer validation sees internally "authentic" garbage.
func resealTrailer(v1Sealed, body []byte) []byte {
	out := append(append([]byte(nil), v1Sealed...), body...)
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], crc32.ChecksumIEEE(body))
	out = append(out, word[:]...)
	binary.LittleEndian.PutUint32(word[:], uint32(len(body)))
	out = append(out, word[:]...)
	return append(out, trailerMagic...)
}

// wantCleanError fails the fuzz run unless err is one of the codec's three
// sentinels — the no-panic, no-mystery-error contract.
func wantCleanError(t *testing.T, op string, err error) {
	if err == nil {
		return
	}
	if !errors.Is(err, ErrCorruptCube) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) {
		t.Fatalf("%s returned a non-sentinel error: %v", op, err)
	}
}

// exerciseStream runs Decode and OpenView over one byte string and, when
// both succeed, holds their answers equal — the fuzz-shaped version of the
// differential suite.
func exerciseStream(t *testing.T, data []byte) {
	c, errDecode := DecodeBytes(data)
	wantCleanError(t, "DecodeBytes", errDecode)
	v, errView := OpenView(data)
	wantCleanError(t, "OpenView", errView)
	if errView != nil {
		return
	}
	// View queries on arbitrary accepted bytes must stay clean too.
	ndims := v.NumDims()
	wild := make([]string, ndims)
	for i := range wild {
		wild[i] = All
	}
	aggV, err := v.Point(wild...)
	wantCleanError(t, "view Point", err)
	stV, errStats := v.Stats()
	wantCleanError(t, "view Stats", errStats)
	var facts int
	err = v.Tuples(func(dims []string, agg Aggregate) bool {
		facts++
		return facts < 1<<12
	})
	wantCleanError(t, "view Tuples", err)
	_, err = v.Range(make([]Selector, ndims))
	wantCleanError(t, "view Range", err)
	_, err = v.GroupBy(0, make([]Selector, ndims))
	wantCleanError(t, "view GroupBy", err)

	if errDecode != nil {
		return
	}
	// Both readers accepted the stream: they must agree.
	aggC, err := c.Point(wild...)
	if err != nil {
		t.Fatalf("cube Point on accepted stream: %v", err)
	}
	if err == nil && errStats == nil {
		if !aggV.Equal(aggC) {
			t.Fatalf("Point(ALL...) diverged: view %v, cube %v", aggV, aggC)
		}
		if cst := c.Stats(); stV != cst {
			t.Fatalf("Stats diverged: view %+v, cube %+v", stV, cst)
		}
	}
}

// FuzzDecode feeds arbitrary bytes to DecodeBytes and OpenView, raw and
// resealed (checksums fixed up), asserting the no-panic / sentinel-error
// contract and decode-vs-view agreement on accepted streams.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeedStreams(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		exerciseStream(t, data)
		sealed := resealV1(data)
		exerciseStream(t, sealed)
		if len(data) > 16 {
			cut := len(data) / 2
			exerciseStream(t, resealTrailer(resealV1(data[:cut]), data[cut:]))
		}
	})
}

// FuzzViewQuery drives every CubeView query shape with fuzzed keys over
// fuzzed (resealed) streams: no input may panic, and failures must be the
// ErrCorruptCube / ErrBadQuery sentinels.
func FuzzViewQuery(f *testing.F) {
	for i, seed := range fuzzSeedStreams(f) {
		f.Add(seed, "d1", "north", byte(i))
	}
	f.Fuzz(func(t *testing.T, data []byte, k1, k2 string, dim byte) {
		v, err := OpenView(resealV1(data))
		wantCleanError(t, "OpenView", err)
		if err != nil {
			return
		}
		cleanQuery := func(op string, err error) {
			if err == nil || errors.Is(err, ErrBadQuery) {
				return
			}
			wantCleanError(t, op, err)
		}
		ndims := v.NumDims()
		keys := make([]string, ndims)
		sels := make([]Selector, ndims)
		for i := range keys {
			switch i % 3 {
			case 0:
				keys[i] = k1
				sels[i] = SelectKeys(k1, k2)
			case 1:
				keys[i] = All
			default:
				keys[i] = k2
				sels[i] = SelectRange(k1, k2)
			}
		}
		_, err = v.Point(keys...)
		cleanQuery("Point", err)
		_, err = v.Point(k1, k2) // often wrong arity: ErrBadQuery path
		cleanQuery("Point/arity", err)
		_, err = v.Range(sels)
		cleanQuery("Range", err)
		_, err = v.GroupBy(int(dim)%(ndims+1), sels)
		cleanQuery("GroupBy", err)
		var n int
		err = v.Tuples(func([]string, Aggregate) bool {
			n++
			return n < 1<<12
		})
		cleanQuery("Tuples", err)
		_, err = v.Stats()
		cleanQuery("Stats", err)
	})
}
