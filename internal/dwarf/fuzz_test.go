package dwarf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"

	"testing"
)

// fuzzSeedStreams returns a spread of valid encoded cubes (plain and
// indexed, empty through multi-dimensional) used to seed both fuzz targets
// and the committed corpus under testdata/fuzz/.
func fuzzSeedStreams(tb testing.TB) [][]byte {
	var out [][]byte
	add := func(dims []string, tuples []Tuple) {
		c, err := New(dims, tuples)
		if err != nil {
			tb.Fatalf("seed cube: %v", err)
		}
		var buf bytes.Buffer
		if err := c.Encode(&buf); err != nil {
			tb.Fatalf("seed encode: %v", err)
		}
		out = append(out, append([]byte(nil), buf.Bytes()...))
		buf.Reset()
		if err := c.EncodeIndexed(&buf); err != nil {
			tb.Fatalf("seed encode indexed: %v", err)
		}
		out = append(out, append([]byte(nil), buf.Bytes()...))
	}
	add([]string{"A"}, []Tuple{{Dims: []string{"x"}, Measure: 1}})
	add([]string{"A", "B"}, nil)
	add([]string{"Day", "Region", "Kind"}, []Tuple{
		{Dims: []string{"d1", "north", "bike"}, Measure: 2},
		{Dims: []string{"d1", "south", "bike"}, Measure: 3},
		{Dims: []string{"d2", "north", "car"}, Measure: 5},
		{Dims: []string{"d2", "north", "bike"}, Measure: 7},
	})
	out = append(out, []byte("not a cube at all"), []byte(codecMagic), nil)
	return out
}

// resealV1 rewrites data into a stream that passes the v1 checksum: magic
// forced, CRC recomputed over the payload. This lets the fuzzer reach the
// structural parser instead of bouncing off the checksum.
func resealV1(data []byte) []byte {
	body := data
	if len(body) < len(codecMagic) {
		body = append(append([]byte(nil), body...), make([]byte, len(codecMagic)-len(body))...)
	}
	out := make([]byte, 0, len(body)+4)
	out = append(out, codecMagic...)
	out = append(out, body[len(codecMagic):]...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out[len(codecMagic):]))
	return append(out, crc[:]...)
}

// resealTrailer attaches a CRC-valid trailer footer to arbitrary body
// bytes, so trailer validation sees internally "authentic" garbage.
func resealTrailer(v1Sealed, body []byte) []byte {
	out := append(append([]byte(nil), v1Sealed...), body...)
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], crc32.ChecksumIEEE(body))
	out = append(out, word[:]...)
	binary.LittleEndian.PutUint32(word[:], uint32(len(body)))
	out = append(out, word[:]...)
	return append(out, trailerMagic...)
}

// resealMeta attaches a CRC-valid v3 metadata footer to arbitrary body
// bytes, so zone-map validation sees internally "authentic" garbage.
func resealMeta(stream, body []byte) []byte {
	out := append(append([]byte(nil), stream...), body...)
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], crc32.ChecksumIEEE(body))
	out = append(out, word[:]...)
	binary.LittleEndian.PutUint32(word[:], uint32(len(body)))
	out = append(out, word[:]...)
	return append(out, metaMagic...)
}

// wantCleanError fails the fuzz run unless err is one of the codec's three
// sentinels — the no-panic, no-mystery-error contract.
func wantCleanError(t *testing.T, op string, err error) {
	if err == nil {
		return
	}
	if !errors.Is(err, ErrCorruptCube) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) {
		t.Fatalf("%s returned a non-sentinel error: %v", op, err)
	}
}

// exerciseStream runs Decode and OpenView over one byte string and, when
// both succeed, holds their answers equal — the fuzz-shaped version of the
// differential suite.
func exerciseStream(t *testing.T, data []byte) {
	c, errDecode := DecodeBytes(data)
	wantCleanError(t, "DecodeBytes", errDecode)
	v, errView := OpenView(data)
	wantCleanError(t, "OpenView", errView)
	if errView != nil {
		return
	}
	// View queries on arbitrary accepted bytes must stay clean too.
	ndims := v.NumDims()
	wild := make([]string, ndims)
	for i := range wild {
		wild[i] = All
	}
	aggV, err := v.Point(wild...)
	wantCleanError(t, "view Point", err)
	stV, errStats := v.Stats()
	wantCleanError(t, "view Stats", errStats)
	// An accepted stream's zone maps must honor the parse invariants. (A
	// CRC-valid forged section may still LIE about the key ranges — readers
	// cannot detect that, which is why pruning trusts only maps written by
	// the encoders; containment itself is asserted in zonemap_test.go over
	// self-encoded streams.)
	if zones := v.ZoneMaps(); zones != nil {
		if len(zones) != ndims {
			t.Fatalf("ZoneMaps returned %d maps for %d dimensions", len(zones), ndims)
		}
		for d, z := range zones {
			if z.Distinct < 0 || z.Min > z.Max || (z.Distinct == 0 && (z.Min != "" || z.Max != "")) {
				t.Fatalf("zone map %d violates invariants: %+v", d, z)
			}
		}
		if !ZonesAdmitPoint(zones, wild) {
			t.Fatal("zone maps rejected the all-ALL point")
		}
	}
	var facts int
	err = v.Tuples(func(dims []string, agg Aggregate) bool {
		facts++
		return facts < 1<<12
	})
	wantCleanError(t, "view Tuples", err)
	_, err = v.Range(make([]Selector, ndims))
	wantCleanError(t, "view Range", err)
	_, err = v.GroupBy(0, make([]Selector, ndims))
	wantCleanError(t, "view GroupBy", err)

	if errDecode != nil {
		return
	}
	// Both readers accepted the stream: they must agree.
	aggC, err := c.Point(wild...)
	if err != nil {
		t.Fatalf("cube Point on accepted stream: %v", err)
	}
	if err == nil && errStats == nil {
		// Bit-exact comparison: a resealed stream can carry NaN aggregates,
		// which Aggregate.Equal's == can never equate.
		if !aggBitsEqual(aggV, aggC) {
			t.Fatalf("Point(ALL...) diverged: view %v, cube %v", aggV, aggC)
		}
		if cst := c.Stats(); stV != cst {
			t.Fatalf("Stats diverged: view %+v, cube %+v", stV, cst)
		}
	}
}

// FuzzDecode feeds arbitrary bytes to DecodeBytes and OpenView, raw and
// resealed (checksums fixed up), asserting the no-panic / sentinel-error
// contract and decode-vs-view agreement on accepted streams.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeedStreams(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		exerciseStream(t, data)
		sealed := resealV1(data)
		exerciseStream(t, sealed)
		if len(data) > 16 {
			cut := len(data) / 2
			exerciseStream(t, resealTrailer(resealV1(data[:cut]), data[cut:]))
		}
	})
}

// FuzzMetaTrailer is the v3 metadata decoder's fuzzer: arbitrary bytes
// sealed as a CRC-valid metadata section — on top of raw input, a resealed
// v1 stream, and a valid indexed stream with its real section stripped —
// must never panic, fail only with the sentinel errors, and leave v1/v2
// readers (DecodeBytes ignores zone maps entirely) working wherever the
// carried stream is intact.
func FuzzMetaTrailer(f *testing.F) {
	seeds := fuzzSeedStreams(f)
	valid := binary.AppendUvarint(nil, 3)
	for i := 0; i < 3; i++ {
		valid = binary.AppendUvarint(valid, 2)
		valid = append(valid, 0x01, 'a', 0x01, 'b')
	}
	for i, seed := range seeds {
		f.Add(seed, valid[:(i*5)%(len(valid)+1)])
	}
	f.Add(seeds[3], valid)
	f.Fuzz(func(t *testing.T, data, body []byte) {
		exerciseStream(t, resealMeta(data, body))
		exerciseStream(t, resealMeta(resealV1(data), body))

		// A well-formed indexed stream with its real metadata section
		// replaced by a forged one: DecodeBytes must keep accepting (the v1
		// payload and v2 trailer are untouched), OpenView must accept only
		// if the forged zone maps parse.
		base := seeds[3] // the 2-dim indexed seed
		metaLen := int(binary.LittleEndian.Uint32(base[len(base)-12:])) + metaFootLen
		forged := resealMeta(base[:len(base)-metaLen], body)
		exerciseStream(t, forged)
		if _, err := DecodeBytes(forged); err != nil {
			t.Fatalf("DecodeBytes rejected an intact stream with a forged metadata section: %v", err)
		}
	})
}

// The kernel fuzzer compares aggregates with builder.go's aggBitsEqual
// rather than Aggregate.Equal: a fuzzed (checksum-resealed) stream can
// carry NaN aggregate floats, which == can never equate even when both
// readers returned the identical bytes.

// sentinelOf maps an error to the sentinel class the kernel contract
// allows; unknown non-nil errors fail the run via wantCleanError first.
func sentinelOf(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrBadQuery):
		return ErrBadQuery
	case errors.Is(err, ErrBadMagic):
		return ErrBadMagic
	case errors.Is(err, ErrBadVersion):
		return ErrBadVersion
	default:
		return ErrCorruptCube
	}
}

// FuzzQueryKernel is the differential fuzzer for the unified kernel:
// arbitrary selector sets and shape choices must answer identically on the
// decoded *Cube and the zero-copy *CubeView over the same accepted stream,
// or fail with the same sentinel error class on both.
func FuzzQueryKernel(f *testing.F) {
	for i, seed := range fuzzSeedStreams(f) {
		f.Add(seed, byte(i), byte(i%4), "d1", "north")
	}
	f.Fuzz(func(t *testing.T, data []byte, shape, dim byte, k1, k2 string) {
		sealed := resealV1(data)
		v, errV := OpenView(sealed)
		wantCleanError(t, "OpenView", errV)
		c, errC := DecodeBytes(sealed)
		wantCleanError(t, "DecodeBytes", errC)
		if errV != nil || errC != nil {
			// Acceptance can differ at open time (the view indexes lazily);
			// FuzzDecode owns that agreement story.
			return
		}
		ndims := v.NumDims()
		sels := make([]Selector, ndims)
		keys := make([]string, ndims)
		for i := range sels {
			switch (int(shape) + i) % 4 {
			case 0:
				keys[i] = All
			case 1:
				sels[i] = SelectKeys(k1, k2, k1)
				keys[i] = k1
			case 2:
				lo, hi := k1, k2
				if lo > hi {
					lo, hi = hi, lo
				}
				sels[i] = SelectRange(lo, hi)
				keys[i] = k2
			default:
				sels[i] = SelectRange(k2, k1) // possibly empty range
				keys[i] = k1
			}
		}
		d := int(dim) % ndims
		spec := TopKSpec{K: int(shape) % 5, By: Metric(int(dim) % 5), Threshold: 1, HasThreshold: shape%2 == 0}

		// Every shape: both sources must agree on the answer or fail with
		// the same sentinel class.
		check := func(op string, cubeErr, viewErr error, equal func() bool) {
			wantCleanError(t, op+" (cube)", cubeErr)
			wantCleanError(t, op+" (view)", viewErr)
			if (cubeErr == nil) != (viewErr == nil) {
				t.Fatalf("%s diverged: cube err %v, view err %v", op, cubeErr, viewErr)
			}
			if cubeErr != nil {
				if !errors.Is(viewErr, sentinelOf(cubeErr)) && !errors.Is(cubeErr, sentinelOf(viewErr)) {
					t.Fatalf("%s failed with different sentinels: cube %v, view %v", op, cubeErr, viewErr)
				}
				return
			}
			if !equal() {
				t.Fatalf("%s answers diverged", op)
			}
		}

		ca, cerr := c.Point(keys...)
		va, verr := v.Point(keys...)
		check("Point", cerr, verr, func() bool { return aggBitsEqual(ca, va) })

		cr, cerr := c.Range(sels)
		vr, verr := v.Range(sels)
		check("Range", cerr, verr, func() bool { return aggBitsEqual(cr, vr) })

		cg, cerr := c.GroupBy(d, sels)
		vg, verr := v.GroupBy(d, sels)
		check("GroupBy", cerr, verr, func() bool {
			if len(cg) != len(vg) {
				return false
			}
			for k, a := range cg {
				if b, ok := vg[k]; !ok || !aggBitsEqual(a, b) {
					return false
				}
			}
			return true
		})

		pdims := []int{d}
		if ndims > 1 {
			pdims = append(pdims, (d+1)%ndims)
		}
		cp, cerr := c.Pivot(pdims, sels)
		vp, verr := v.Pivot(pdims, sels)
		check("Pivot", cerr, verr, func() bool {
			if len(cp) != len(vp) {
				return false
			}
			for i := range cp {
				if len(cp[i].Keys) != len(vp[i].Keys) || !aggBitsEqual(cp[i].Agg, vp[i].Agg) {
					return false
				}
				for j := range cp[i].Keys {
					if cp[i].Keys[j] != vp[i].Keys[j] {
						return false
					}
				}
			}
			return true
		})

		ck, cerr := c.TopK(d, sels, spec)
		vk, verr := v.TopK(d, sels, spec)
		check("TopK", cerr, verr, func() bool {
			if len(ck) != len(vk) {
				return false
			}
			for i := range ck {
				if ck[i].Key != vk[i].Key || !aggBitsEqual(ck[i].Agg, vk[i].Agg) {
					return false
				}
			}
			return true
		})

		var cFacts, vFacts int
		c.Tuples(func([]string, Aggregate) bool { cFacts++; return cFacts < 1<<12 })
		verr = v.Tuples(func([]string, Aggregate) bool { vFacts++; return vFacts < 1<<12 })
		check("Tuples", nil, verr, func() bool { return cFacts == vFacts })
	})
}

// FuzzViewQuery drives every CubeView query shape with fuzzed keys over
// fuzzed (resealed) streams: no input may panic, and failures must be the
// ErrCorruptCube / ErrBadQuery sentinels.
func FuzzViewQuery(f *testing.F) {
	for i, seed := range fuzzSeedStreams(f) {
		f.Add(seed, "d1", "north", byte(i))
	}
	f.Fuzz(func(t *testing.T, data []byte, k1, k2 string, dim byte) {
		v, err := OpenView(resealV1(data))
		wantCleanError(t, "OpenView", err)
		if err != nil {
			return
		}
		cleanQuery := func(op string, err error) {
			if err == nil || errors.Is(err, ErrBadQuery) {
				return
			}
			wantCleanError(t, op, err)
		}
		ndims := v.NumDims()
		keys := make([]string, ndims)
		sels := make([]Selector, ndims)
		for i := range keys {
			switch i % 3 {
			case 0:
				keys[i] = k1
				sels[i] = SelectKeys(k1, k2)
			case 1:
				keys[i] = All
			default:
				keys[i] = k2
				sels[i] = SelectRange(k1, k2)
			}
		}
		_, err = v.Point(keys...)
		cleanQuery("Point", err)
		_, err = v.Point(k1, k2) // often wrong arity: ErrBadQuery path
		cleanQuery("Point/arity", err)
		_, err = v.Range(sels)
		cleanQuery("Range", err)
		_, err = v.GroupBy(int(dim)%(ndims+1), sels)
		cleanQuery("GroupBy", err)
		var n int
		err = v.Tuples(func([]string, Aggregate) bool {
			n++
			return n < 1<<12
		})
		cleanQuery("Tuples", err)
		_, err = v.Stats()
		cleanQuery("Stats", err)
	})
}
