package dwarf_test

import (
	"fmt"

	"repro/internal/dwarf"
)

// The paper's Fig. 1 sample input, as a runnable example.
func ExampleNew() {
	cube, err := dwarf.New(
		[]string{"Country", "City", "Station"},
		[]dwarf.Tuple{
			{Dims: []string{"Ireland", "Dublin", "Fenian St"}, Measure: 3},
			{Dims: []string{"Ireland", "Dublin", "Pearse St"}, Measure: 5},
			{Dims: []string{"Ireland", "Cork", "Patrick St"}, Measure: 2},
			{Dims: []string{"France", "Paris", "Rue Cler"}, Measure: 4},
		})
	if err != nil {
		panic(err)
	}
	st := cube.Stats()
	fmt.Println("facts:", st.SourceTuples)
	fmt.Println("nodes:", st.Nodes)
	// Output:
	// facts: 4
	// nodes: 9
}

func ExampleCube_Point() {
	cube, _ := dwarf.New(
		[]string{"Country", "City"},
		[]dwarf.Tuple{
			{Dims: []string{"Ireland", "Dublin"}, Measure: 8},
			{Dims: []string{"Ireland", "Cork"}, Measure: 2},
			{Dims: []string{"France", "Paris"}, Measure: 4},
		})
	exact, _ := cube.Point("Ireland", "Dublin")
	all, _ := cube.Point("Ireland", dwarf.All)
	grand, _ := cube.Point(dwarf.All, dwarf.All)
	fmt.Println(exact.Sum, all.Sum, grand.Sum)
	// Output: 8 10 14
}

func ExampleCube_GroupBy() {
	cube, _ := dwarf.New(
		[]string{"City", "Station"},
		[]dwarf.Tuple{
			{Dims: []string{"Dublin", "s1"}, Measure: 3},
			{Dims: []string{"Dublin", "s2"}, Measure: 5},
			{Dims: []string{"Cork", "s3"}, Measure: 2},
		})
	byCity, _ := cube.GroupBy(0, []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll()})
	fmt.Println("Dublin:", byCity["Dublin"].Sum)
	fmt.Println("Cork:", byCity["Cork"].Sum)
	// Output:
	// Dublin: 8
	// Cork: 2
}

func ExampleMerge() {
	dims := []string{"Day", "Station"}
	monday, _ := dwarf.New(dims, []dwarf.Tuple{{Dims: []string{"mon", "s1"}, Measure: 4}})
	tuesday, _ := dwarf.New(dims, []dwarf.Tuple{{Dims: []string{"tue", "s1"}, Measure: 6}})
	both, _ := dwarf.Merge(monday, tuesday)
	agg, _ := both.Point(dwarf.All, "s1")
	fmt.Println(agg.Sum, agg.Count)
	// Output: 10 2
}
