package dwarf

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// viewTestTuples builds a deterministic fact set with enough key reuse to
// exercise prefix and suffix coalescing across three dimensions.
func viewTestTuples() []Tuple {
	var tuples []Tuple
	regions := []string{"north", "south", "east", "west"}
	kinds := []string{"bike", "car", "scooter"}
	for i := 0; i < 240; i++ {
		tuples = append(tuples, Tuple{
			Dims: []string{
				fmt.Sprintf("d%02d", i%11),
				regions[i%len(regions)],
				kinds[(i/3)%len(kinds)],
			},
			Measure: float64(i%17) - 3,
		})
	}
	return tuples
}

var viewTestDims = []string{"Day", "Region", "Kind"}

// viewOptionSets are the construction ablations the differential suite
// sweeps; every cube shape they produce must view identically.
func viewOptionSets() map[string][]Option {
	return map[string][]Option{
		"default":  nil,
		"nosuffix": {WithoutSuffixCoalescing()},
		"nohash":   {WithoutHashConsing()},
		"noboth":   {WithoutSuffixCoalescing(), WithoutHashConsing()},
	}
}

// encodeViews returns the two encodings of c (plain v1 and indexed) opened
// as views, verifying the indexed one actually carries a trailer.
func encodeViews(t *testing.T, c *Cube) (plain, indexed *CubeView) {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v1 := append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := c.EncodeIndexed(&buf); err != nil {
		t.Fatalf("EncodeIndexed: %v", err)
	}
	v2 := append([]byte(nil), buf.Bytes()...)
	if HasOffsetTrailer(v1) {
		t.Fatalf("plain encoding unexpectedly carries an offset trailer")
	}
	if !HasOffsetTrailer(v2) {
		t.Fatalf("indexed encoding carries no offset trailer")
	}
	if !bytes.Equal(v1, v2[:len(v1)]) {
		t.Fatalf("indexed encoding does not extend the plain encoding")
	}
	plain, err := OpenView(v1)
	if err != nil {
		t.Fatalf("OpenView(plain): %v", err)
	}
	if plain.Indexed() {
		t.Fatalf("plain view claims a trailer index")
	}
	indexed, err = OpenView(v2)
	if err != nil {
		t.Fatalf("OpenView(indexed): %v", err)
	}
	if !indexed.Indexed() {
		t.Fatalf("indexed view built no trailer index")
	}
	return plain, indexed
}

// diffQueries holds every query shape the differential suite compares.
type diffQueries struct {
	points [][]string
	ranges [][]Selector
	groups []struct {
		dim  int
		sels []Selector
	}
}

func buildDiffQueries(c *Cube) diffQueries {
	var q diffQueries
	ndims := c.NumDims()
	// Point battery: every base fact with rotating wildcard masks, plus
	// absent and mixed combinations.
	c.Tuples(func(keys []string, _ Aggregate) bool {
		p := append([]string(nil), keys...)
		switch len(q.points) % 4 {
		case 1:
			p[ndims-1] = All
		case 2:
			for i := range p {
				p[i] = All
			}
		case 3:
			p[0] = All
		}
		q.points = append(q.points, p)
		return len(q.points) < 64
	})
	allKeys := make([]string, ndims)
	for i := range allKeys {
		allKeys[i] = All
	}
	q.points = append(q.points, allKeys)
	allSel := make([]Selector, ndims)
	q.ranges = append(q.ranges, allSel)
	if ndims == 3 {
		// Battery tailored to viewTestTuples' key space, including absent
		// keys, duplicate selector keys, and empty ranges.
		q.points = append(q.points,
			[]string{"absent", "north", "bike"},
			[]string{"d01", "absent", All},
			[]string{All, All, "absent"},
		)
		q.ranges = append(q.ranges,
			[]Selector{SelectRange("d01", "d05"), SelectAll(), SelectAll()},
			[]Selector{SelectAll(), SelectKeys("north", "west", "north", "absent"), SelectAll()},
			[]Selector{SelectRange("d03", "d09"), SelectKeys("south", "east"), SelectRange("bike", "car")},
			[]Selector{SelectKeys("d00", "d10", "d04"), SelectAll(), SelectKeys("scooter")},
			[]Selector{SelectRange("zz", "aa"), SelectAll(), SelectAll()}, // empty range
		)
	}
	for dim := 0; dim < ndims; dim++ {
		q.groups = append(q.groups, struct {
			dim  int
			sels []Selector
		}{dim, allSel})
		if ndims == 3 {
			q.groups = append(q.groups, struct {
				dim  int
				sels []Selector
			}{dim, []Selector{SelectRange("d02", "d08"), SelectKeys("north", "south"), SelectAll()}})
		}
	}
	return q
}

// assertViewMatchesCube holds every answer of every query shape equal
// between the in-memory cube and the view.
func assertViewMatchesCube(t *testing.T, c *Cube, v *CubeView, label string) {
	t.Helper()
	if got, want := v.Dims(), c.Dims(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Dims = %v, want %v", label, got, want)
	}
	if got, want := v.NumSourceTuples(), c.NumSourceTuples(); got != want {
		t.Fatalf("%s: NumSourceTuples = %d, want %d", label, got, want)
	}
	vst, err := v.Stats()
	if err != nil {
		t.Fatalf("%s: view Stats: %v", label, err)
	}
	if cst := c.Stats(); vst != cst {
		t.Fatalf("%s: view Stats = %+v, cube Stats = %+v", label, vst, cst)
	}
	q := buildDiffQueries(c)
	for _, p := range q.points {
		want, err := c.Point(p...)
		if err != nil {
			t.Fatalf("%s: cube Point(%v): %v", label, p, err)
		}
		got, err := v.Point(p...)
		if err != nil {
			t.Fatalf("%s: view Point(%v): %v", label, p, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: Point(%v) = %v, cube says %v", label, p, got, want)
		}
	}
	for _, sels := range q.ranges {
		want, err := c.Range(sels)
		if err != nil {
			t.Fatalf("%s: cube Range(%v): %v", label, sels, err)
		}
		got, err := v.Range(sels)
		if err != nil {
			t.Fatalf("%s: view Range(%v): %v", label, sels, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: Range(%v) = %v, cube says %v", label, sels, got, want)
		}
	}
	for _, g := range q.groups {
		want, err := c.GroupBy(g.dim, g.sels)
		if err != nil {
			t.Fatalf("%s: cube GroupBy(%d): %v", label, g.dim, err)
		}
		got, err := v.GroupBy(g.dim, g.sels)
		if err != nil {
			t.Fatalf("%s: view GroupBy(%d): %v", label, g.dim, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: GroupBy(%d) has %d groups, cube says %d", label, g.dim, len(got), len(want))
		}
		for k, wa := range want {
			if ga, ok := got[k]; !ok || !ga.Equal(wa) {
				t.Fatalf("%s: GroupBy(%d)[%q] = %v (present=%v), cube says %v", label, g.dim, k, got[k], ok, wa)
			}
		}
	}
	type fact struct {
		dims []string
		agg  Aggregate
	}
	var cubeFacts, viewFacts []fact
	c.Tuples(func(dims []string, agg Aggregate) bool {
		cubeFacts = append(cubeFacts, fact{append([]string(nil), dims...), agg})
		return true
	})
	if err := v.Tuples(func(dims []string, agg Aggregate) bool {
		viewFacts = append(viewFacts, fact{append([]string(nil), dims...), agg})
		return true
	}); err != nil {
		t.Fatalf("%s: view Tuples: %v", label, err)
	}
	if !reflect.DeepEqual(cubeFacts, viewFacts) {
		t.Fatalf("%s: Tuples enumeration diverged (%d cube facts, %d view facts)",
			label, len(cubeFacts), len(viewFacts))
	}
}

// TestViewDifferential is the differential property suite: for every
// ablation option set and worker count, every answer of every query shape
// from CubeView equals the in-memory Cube's, for both the scan-indexed and
// trailer-indexed open paths. CI runs it under -race.
func TestViewDifferential(t *testing.T) {
	tuples := viewTestTuples()
	names := make([]string, 0, len(viewOptionSets()))
	for name := range viewOptionSets() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		opts := viewOptionSets()[name]
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				c, err := New(viewTestDims, tuples, append(opts, WithWorkers(workers))...)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				plain, indexed := encodeViews(t, c)
				assertViewMatchesCube(t, c, plain, "scan-indexed view")
				assertViewMatchesCube(t, c, indexed, "trailer-indexed view")
			})
		}
	}
}

// TestViewDifferentialConcurrent hammers one un-indexed view from many
// goroutines so the lazy index build races real queries; -race in CI makes
// this a memory-model check as well as a correctness one.
func TestViewDifferentialConcurrent(t *testing.T) {
	c, err := New(viewTestDims, viewTestTuples())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, mode := range []string{"plain", "indexed"} {
		t.Run(mode, func(t *testing.T) {
			plain, indexed := encodeViews(t, c)
			v := plain
			if mode == "indexed" {
				v = indexed
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					q := buildDiffQueries(c)
					for r := 0; r < 3; r++ {
						for i, p := range q.points {
							want, _ := c.Point(p...)
							got, err := v.Point(p...)
							if err != nil {
								errs <- fmt.Errorf("goroutine %d: Point: %v", g, err)
								return
							}
							if !got.Equal(want) {
								errs <- fmt.Errorf("goroutine %d: Point #%d diverged", g, i)
								return
							}
						}
						for _, sels := range q.ranges {
							want, _ := c.Range(sels)
							got, err := v.Range(sels)
							if err != nil {
								errs <- fmt.Errorf("goroutine %d: Range: %v", g, err)
								return
							}
							if !got.Equal(want) {
								errs <- fmt.Errorf("goroutine %d: Range diverged", g)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestViewEmptyAndSingleDim covers the degenerate shapes: an empty cube
// (bare root chain) and a one-dimension cube whose root is a leaf.
func TestViewEmptyAndSingleDim(t *testing.T) {
	empty, err := New([]string{"A", "B"}, nil)
	if err != nil {
		t.Fatalf("New(empty): %v", err)
	}
	plain, indexed := encodeViews(t, empty)
	for _, v := range []*CubeView{plain, indexed} {
		assertViewMatchesCube(t, empty, v, "empty cube")
		agg, err := v.Point(All, All)
		if err != nil || !agg.IsZero() {
			t.Fatalf("empty Point(All,All) = %v, %v", agg, err)
		}
	}

	single, err := New([]string{"K"}, []Tuple{
		{Dims: []string{"a"}, Measure: 2},
		{Dims: []string{"b"}, Measure: 3},
		{Dims: []string{"a"}, Measure: 5},
	})
	if err != nil {
		t.Fatalf("New(single): %v", err)
	}
	plain, indexed = encodeViews(t, single)
	for _, v := range []*CubeView{plain, indexed} {
		assertViewMatchesCube(t, single, v, "single-dim cube")
		agg, err := v.Point("a")
		if err != nil || agg.Sum != 7 || agg.Count != 2 {
			t.Fatalf("single Point(a) = %v, %v", agg, err)
		}
	}
}

// TestViewBadQueries mirrors the cube's malformed-query errors.
func TestViewBadQueries(t *testing.T) {
	c, err := New(viewTestDims, viewTestTuples())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v, _ := encodeViews(t, c)
	if _, err := v.Point("only-one"); err == nil {
		t.Fatal("Point with wrong arity did not error")
	}
	if _, err := v.Range([]Selector{SelectAll()}); err == nil {
		t.Fatal("Range with wrong arity did not error")
	}
	if _, err := v.GroupBy(-1, make([]Selector, 3)); err == nil {
		t.Fatal("GroupBy with bad dimension did not error")
	}
	if _, err := v.GroupBy(5, make([]Selector, 3)); err == nil {
		t.Fatal("GroupBy with out-of-range dimension did not error")
	}
}

// TestViewFileRoundTrip exercises OpenViewFile on both encodings,
// including the mmap fast path where the platform provides it.
func TestViewFileRoundTrip(t *testing.T) {
	c, err := New(viewTestDims, viewTestTuples())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		encode  func(*Cube, *bytes.Buffer) error
		indexed bool
	}{
		{"plain.dwarf", func(c *Cube, b *bytes.Buffer) error { return c.Encode(b) }, false},
		{"indexed.dwarf", func(c *Cube, b *bytes.Buffer) error { return c.EncodeIndexed(b) }, true},
	} {
		var buf bytes.Buffer
		if err := tc.encode(c, &buf); err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		path := dir + "/" + tc.name
		if err := writeFileForTest(path, buf.Bytes()); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		f, err := OpenViewFile(path)
		if err != nil {
			t.Fatalf("OpenViewFile(%s): %v", tc.name, err)
		}
		if f.Indexed() != tc.indexed {
			t.Fatalf("%s: Indexed = %v, want %v", tc.name, f.Indexed(), tc.indexed)
		}
		assertViewMatchesCube(t, c, f.CubeView, tc.name)
		if err := f.Close(); err != nil {
			t.Fatalf("%s: Close: %v", tc.name, err)
		}
	}
	if _, err := OpenViewFile(dir + "/missing.dwarf"); err == nil {
		t.Fatal("OpenViewFile on a missing file did not error")
	}
}
