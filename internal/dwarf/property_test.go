package dwarf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce computes the reference answer of a point/ALL query by scanning
// the fact tuples directly.
func bruteForce(tuples []Tuple, keys []string) Aggregate {
	var agg Aggregate
	for _, t := range tuples {
		match := true
		for i, k := range keys {
			if k != All && t.Dims[i] != k {
				match = false
				break
			}
		}
		if match {
			agg = MergeAggregates(agg, NewAggregate(t.Measure))
		}
	}
	return agg
}

// bruteForceRange is the scan reference for Range queries.
func bruteForceRange(tuples []Tuple, sels []Selector) Aggregate {
	var agg Aggregate
	for _, t := range tuples {
		match := true
		for i, s := range sels {
			k := t.Dims[i]
			switch {
			case s.isAll():
			case s.HasRange:
				if k < s.Lo || k > s.Hi {
					match = false
				}
			default:
				found := false
				for _, want := range s.Keys {
					if k == want {
						found = true
						break
					}
				}
				if !found {
					match = false
				}
			}
			if !match {
				break
			}
		}
		if match {
			agg = MergeAggregates(agg, NewAggregate(t.Measure))
		}
	}
	return agg
}

func randomTuples(rng *rand.Rand, ndims, n, cardinality int) []Tuple {
	tuples := make([]Tuple, n)
	for i := range tuples {
		dims := make([]string, ndims)
		for d := range dims {
			dims[d] = fmt.Sprintf("k%d", rng.Intn(cardinality))
		}
		tuples[i] = Tuple{Dims: dims, Measure: float64(rng.Intn(41) - 20)}
	}
	return tuples
}

func randomQuery(rng *rand.Rand, ndims, cardinality int) []string {
	keys := make([]string, ndims)
	for d := range keys {
		if rng.Intn(3) == 0 {
			keys[d] = All
		} else {
			keys[d] = fmt.Sprintf("k%d", rng.Intn(cardinality))
		}
	}
	return keys
}

// TestPropertyPointMatchesBruteForce: every point/ALL query on a cube built
// from random facts equals the brute-force scan over those facts.
func TestPropertyPointMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(4)
		card := 1 + rng.Intn(5)
		tuples := randomTuples(rng, ndims, rng.Intn(60), card)
		c, err := New(dimNames(ndims), tuples)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		for q := 0; q < 25; q++ {
			keys := randomQuery(rng, ndims, card+1) // +1 probes missing keys too
			got, err := c.Point(keys...)
			if err != nil {
				t.Logf("Point(%v): %v", keys, err)
				return false
			}
			want := bruteForce(tuples, keys)
			if !got.Equal(want) {
				t.Logf("seed %d query %v: dwarf=%v brute=%v", seed, keys, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRangeMatchesBruteForce: the same for Range selectors (key
// lists and inclusive ranges).
func TestPropertyRangeMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(3)
		card := 2 + rng.Intn(5)
		tuples := randomTuples(rng, ndims, rng.Intn(80), card)
		c, err := New(dimNames(ndims), tuples)
		if err != nil {
			return false
		}
		for q := 0; q < 15; q++ {
			sels := make([]Selector, ndims)
			for d := range sels {
				switch rng.Intn(3) {
				case 0:
					sels[d] = SelectAll()
				case 1:
					nkeys := 1 + rng.Intn(3)
					keys := make([]string, nkeys)
					for i := range keys {
						keys[i] = fmt.Sprintf("k%d", rng.Intn(card+1))
					}
					sels[d] = SelectKeys(keys...)
				default:
					lo := fmt.Sprintf("k%d", rng.Intn(card))
					hi := fmt.Sprintf("k%d", rng.Intn(card))
					if hi < lo {
						lo, hi = hi, lo
					}
					sels[d] = SelectRange(lo, hi)
				}
			}
			got, err := c.Range(sels)
			if err != nil {
				return false
			}
			want := bruteForceRange(tuples, sels)
			if !got.Equal(want) {
				t.Logf("seed %d sels %+v: dwarf=%v brute=%v", seed, sels, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMergeEqualsUnionBuild: Merge(build(A), build(B)) answers
// exactly like build(A ∪ B).
func TestPropertyMergeEqualsUnionBuild(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(3)
		card := 1 + rng.Intn(4)
		a := randomTuples(rng, ndims, rng.Intn(40), card)
		b := randomTuples(rng, ndims, rng.Intn(40), card)
		ca, err := New(dimNames(ndims), a)
		if err != nil {
			return false
		}
		cb, err := New(dimNames(ndims), b)
		if err != nil {
			return false
		}
		merged, err := Merge(ca, cb)
		if err != nil {
			t.Logf("Merge: %v", err)
			return false
		}
		union, err := New(dimNames(ndims), append(append([]Tuple{}, a...), b...))
		if err != nil {
			return false
		}
		if merged.NumSourceTuples() != union.NumSourceTuples() {
			return false
		}
		for q := 0; q < 20; q++ {
			keys := randomQuery(rng, ndims, card+1)
			ga, _ := merged.Point(keys...)
			gb, _ := union.Point(keys...)
			if !ga.Equal(gb) {
				t.Logf("seed %d query %v: merged=%v union=%v", seed, keys, ga, gb)
				return false
			}
		}
		// Inputs are untouched by the merge.
		for q := 0; q < 10; q++ {
			keys := randomQuery(rng, ndims, card+1)
			got, _ := ca.Point(keys...)
			want := bruteForce(a, keys)
			if !got.Equal(want) {
				t.Logf("seed %d: input cube mutated by Merge", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCodecRoundTrip: Encode/Decode preserves dimension names, tuple
// counts, structure stats and query answers.
func TestPropertyCodecRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(4)
		card := 1 + rng.Intn(4)
		tuples := randomTuples(rng, ndims, rng.Intn(50), card)
		c, err := New(dimNames(ndims), tuples)
		if err != nil {
			return false
		}
		var buf safeBuffer
		if err := c.Encode(&buf); err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		if err := VerifyEncoded(buf.Bytes()); err != nil {
			t.Logf("VerifyEncoded: %v", err)
			return false
		}
		d, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Logf("Decode: %v", err)
			return false
		}
		if d.NumSourceTuples() != c.NumSourceTuples() || d.NumDims() != c.NumDims() {
			return false
		}
		cs, ds := c.Stats(), d.Stats()
		if cs.Nodes != ds.Nodes || cs.Cells != ds.Cells {
			t.Logf("seed %d: stats differ: %+v vs %+v", seed, cs, ds)
			return false
		}
		for q := 0; q < 20; q++ {
			keys := randomQuery(rng, ndims, card+1)
			ga, _ := c.Point(keys...)
			gb, _ := d.Point(keys...)
			if !ga.Equal(gb) {
				t.Logf("seed %d query %v: orig=%v decoded=%v", seed, keys, ga, gb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExtractMatchesFilter: Extract produces a sub-cube whose ALL
// aggregate sum equals the brute-force filtered sum.
func TestPropertyExtractMatchesFilter(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndims := 1 + rng.Intn(3)
		card := 2 + rng.Intn(3)
		tuples := randomTuples(rng, ndims, 10+rng.Intn(40), card)
		c, err := New(dimNames(ndims), tuples)
		if err != nil {
			return false
		}
		sels := make([]Selector, ndims)
		for d := range sels {
			if rng.Intn(2) == 0 {
				sels[d] = SelectAll()
			} else {
				sels[d] = SelectKeys(fmt.Sprintf("k%d", rng.Intn(card)))
			}
		}
		sub, err := c.Extract(sels)
		if err != nil {
			return false
		}
		if !sub.FromQuery {
			t.Log("extracted cube must set FromQuery")
			return false
		}
		allQ := make([]Selector, ndims)
		got, _ := sub.Range(allQ)
		want := bruteForceRange(tuples, sels)
		if got.Sum != want.Sum {
			t.Logf("seed %d: extract sum=%g want %g", seed, got.Sum, want.Sum)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func dimNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dim%d", i)
	}
	return out
}

// safeBuffer is a minimal bytes buffer (avoids importing bytes twice in
// different test files under one package is fine; this just keeps encode
// targets explicit).
type safeBuffer struct{ data []byte }

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
func (b *safeBuffer) Bytes() []byte { return b.data }
