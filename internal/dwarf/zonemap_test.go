package dwarf

import (
	"bytes"
	"testing"
)

// zoneTuples is a small multi-day fact set with deliberately uneven key
// coverage per slice, so per-slice zone maps differ.
func zoneTuples() []Tuple {
	return []Tuple{
		{Dims: []string{"d01", "north", "bike"}, Measure: 2},
		{Dims: []string{"d01", "south", "bike"}, Measure: 3},
		{Dims: []string{"d02", "north", "car"}, Measure: 5},
		{Dims: []string{"d03", "east", "bike"}, Measure: 7},
		{Dims: []string{"d03", "north", "scooter"}, Measure: 1},
		{Dims: []string{"d04", "west", "car"}, Measure: 4},
	}
}

func encodeIndexed(t *testing.T, c *Cube) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.EncodeIndexed(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestZoneMapsContainFacts pins the semantics of the encoder-written maps:
// exact per-dimension min/max/distinct over the fact set, identical across
// Encode+AppendOffsetTrailer, EncodeIndexed and MergeViewsBytes.
func TestZoneMapsContainFacts(t *testing.T) {
	dims := []string{"Day", "Region", "Kind"}
	c, err := New(dims, zoneTuples())
	if err != nil {
		t.Fatal(err)
	}
	want := []ZoneMap{
		{Min: "d01", Max: "d04", Distinct: 4},
		{Min: "east", Max: "west", Distinct: 4},
		{Min: "bike", Max: "scooter", Distinct: 3},
	}
	checkZones := func(label string, data []byte) {
		t.Helper()
		v, err := OpenView(data)
		if err != nil {
			t.Fatalf("%s: OpenView: %v", label, err)
		}
		got := v.ZoneMaps()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d zone maps, want %d", label, len(got), len(want))
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("%s: zone map %d = %+v, want %+v", label, d, got[d], want[d])
			}
		}
		// Containment: every fact key lies inside its dimension's bounds.
		err = v.Tuples(func(keys []string, _ Aggregate) bool {
			for d, k := range keys {
				if k < got[d].Min || k > got[d].Max {
					t.Fatalf("%s: fact key %q outside zone map %d [%q, %q]", label, k, d, got[d].Min, got[d].Max)
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	indexed := encodeIndexed(t, c)
	checkZones("EncodeIndexed", indexed)

	// The upgrade path (scan-built index) must record the same maps.
	var v1 bytes.Buffer
	if err := c.Encode(&v1); err != nil {
		t.Fatal(err)
	}
	upgraded, err := AppendOffsetTrailer(v1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	checkZones("AppendOffsetTrailer", upgraded)
	if !bytes.Equal(upgraded, indexed) {
		t.Fatal("AppendOffsetTrailer and EncodeIndexed disagree byte for byte")
	}

	// A streaming merge of per-day slices must emit the identical stream —
	// zone maps included — as the batch build of the union.
	tuples := zoneTuples()
	var views []*CubeView
	for _, day := range []string{"d01", "d02", "d03", "d04"} {
		var slice []Tuple
		for _, tu := range tuples {
			if tu.Dims[0] == day {
				slice = append(slice, tu)
			}
		}
		sc, err := New(dims, slice)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := OpenView(encodeIndexed(t, sc))
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, sv)
	}
	merged, _, err := MergeViewsBytes(views...)
	if err != nil {
		t.Fatal(err)
	}
	checkZones("MergeViewsBytes", merged)
	if !bytes.Equal(merged, indexed) {
		t.Fatal("MergeViewsBytes and EncodeIndexed disagree byte for byte")
	}
}

// TestZoneMapsEmptyCube: a cube over zero facts carries all-empty maps that
// reject every bound selector but keep admitting the pure-ALL query.
func TestZoneMapsEmptyCube(t *testing.T) {
	c, err := New([]string{"A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenView(encodeIndexed(t, c))
	if err != nil {
		t.Fatal(err)
	}
	zones := v.ZoneMaps()
	for d, z := range zones {
		if z != (ZoneMap{}) {
			t.Fatalf("empty cube zone map %d = %+v, want zero", d, z)
		}
	}
	if !ZonesAdmit(zones, make([]Selector, 2)) {
		t.Fatal("empty maps rejected the pure-ALL query")
	}
	if ZonesAdmit(zones, []Selector{SelectKeys("x"), {}}) {
		t.Fatal("empty maps admitted a key selector")
	}
	if ZonesAdmitPoint(zones, []string{"x", All}) {
		t.Fatal("empty maps admitted a bound point key")
	}
}

// TestZonesAdmit pins the admission rule selector by selector.
func TestZonesAdmit(t *testing.T) {
	zones := []ZoneMap{
		{Min: "d01", Max: "d04", Distinct: 4},
		{Min: "north", Max: "south", Distinct: 2},
	}
	all := Selector{}
	cases := []struct {
		name string
		sels []Selector
		want bool
	}{
		{"pure ALL", []Selector{all, all}, true},
		{"key inside", []Selector{SelectKeys("d02"), all}, true},
		{"key below min", []Selector{SelectKeys("d00"), all}, false},
		{"key above max", []Selector{SelectKeys("d05"), all}, false},
		{"one of several keys inside", []Selector{SelectKeys("d00", "d03"), all}, true},
		{"range overlapping", []Selector{SelectRange("d03", "d09"), all}, true},
		{"range below", []Selector{SelectRange("a", "d00"), all}, false},
		{"range above", []Selector{SelectRange("d05", "z"), all}, false},
		{"range covering all", []Selector{SelectRange("a", "z"), all}, true},
		{"empty range", []Selector{SelectRange("d04", "d01"), all}, false},
		{"second dim rejects", []Selector{all, SelectKeys("west")}, false},
		// HasRange shadows Keys: the keys would miss, the range overlaps.
		{"range shadows keys", []Selector{{Keys: []string{"zzz"}, Lo: "d01", Hi: "d02", HasRange: true}, all}, true},
		// Single-key dimension: min == max boundaries are inclusive.
		{"exact bound hit", []Selector{SelectRange("d04", "d04"), all}, true},
	}
	for _, tc := range cases {
		if got := ZonesAdmit(zones, tc.sels); got != tc.want {
			t.Errorf("%s: ZonesAdmit = %v, want %v", tc.name, got, tc.want)
		}
	}

	single := []ZoneMap{{Min: "k", Max: "k", Distinct: 1}}
	if !ZonesAdmit(single, []Selector{SelectKeys("k")}) {
		t.Error("single-key zone rejected its own key")
	}
	if ZonesAdmit(single, []Selector{SelectKeys("j")}) {
		t.Error("single-key zone admitted a foreign key")
	}

	// Missing or mismatched maps must admit — conservative scan.
	if !ZonesAdmit(nil, []Selector{SelectKeys("nope")}) {
		t.Error("nil zone maps must admit everything")
	}
	if !ZonesAdmit(zones[:1], []Selector{SelectKeys("nope"), all}) {
		t.Error("length-mismatched zone maps must admit everything")
	}
}

// TestZonesAdmitPoint pins the point-tuple admission rule.
func TestZonesAdmitPoint(t *testing.T) {
	zones := []ZoneMap{
		{Min: "d01", Max: "d04", Distinct: 4},
		{Min: "north", Max: "south", Distinct: 2},
	}
	cases := []struct {
		name string
		keys []string
		want bool
	}{
		{"both inside", []string{"d02", "north"}, true},
		{"ALL everywhere", []string{All, All}, true},
		{"first outside", []string{"d09", "north"}, false},
		{"second outside", []string{"d02", "aaa"}, false},
		{"ALL then inside", []string{All, "south"}, true},
	}
	for _, tc := range cases {
		if got := ZonesAdmitPoint(zones, tc.keys); got != tc.want {
			t.Errorf("%s: ZonesAdmitPoint = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !ZonesAdmitPoint(nil, []string{"anything", "at all"}) {
		t.Error("nil zone maps must admit every point")
	}
}
