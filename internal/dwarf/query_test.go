package dwarf

import (
	"errors"
	"testing"
)

func TestRangeSelectors(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())

	cases := []struct {
		name string
		sels []Selector
		sum  float64
		cnt  int64
	}{
		{"all-all-all", []Selector{SelectAll(), SelectAll(), SelectAll()}, 14, 4},
		{"ireland-only", []Selector{SelectKeys("Ireland"), SelectAll(), SelectAll()}, 10, 3},
		{"two-cities", []Selector{SelectAll(), SelectKeys("Dublin", "Cork"), SelectAll()}, 10, 3},
		{"city-range", []Selector{SelectAll(), SelectRange("Cork", "Dublin"), SelectAll()}, 10, 3},
		{"station-range", []Selector{SelectAll(), SelectAll(), SelectRange("Patrick St", "Pearse St")}, 7, 2},
		{"missing-key", []Selector{SelectKeys("Spain"), SelectAll(), SelectAll()}, 0, 0},
		{"duplicate-keys", []Selector{SelectKeys("Ireland", "Ireland"), SelectAll(), SelectAll()}, 10, 3},
	}
	for _, tc := range cases {
		got, err := c.Range(tc.sels)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Sum != tc.sum || got.Count != tc.cnt {
			t.Errorf("%s = %v, want sum=%g count=%d", tc.name, got, tc.sum, tc.cnt)
		}
	}

	if _, err := c.Range([]Selector{SelectAll()}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("short selector list: err = %v", err)
	}
}

func TestGroupBy(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())

	byCountry, err := c.GroupBy(0, []Selector{SelectAll(), SelectAll(), SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	if len(byCountry) != 2 {
		t.Fatalf("byCountry = %v", byCountry)
	}
	if byCountry["Ireland"].Sum != 10 || byCountry["France"].Sum != 4 {
		t.Errorf("byCountry = %v", byCountry)
	}

	// Group by city restricted to Ireland.
	byCity, err := c.GroupBy(1, []Selector{SelectKeys("Ireland"), SelectAll(), SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	if len(byCity) != 2 || byCity["Dublin"].Sum != 8 || byCity["Cork"].Sum != 2 {
		t.Errorf("byCity = %v", byCity)
	}

	// Group by the last (leaf) dimension.
	byStation, err := c.GroupBy(2, []Selector{SelectAll(), SelectAll(), SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	if len(byStation) != 4 || byStation["Fenian St"].Sum != 3 {
		t.Errorf("byStation = %v", byStation)
	}

	if _, err := c.GroupBy(7, []Selector{SelectAll(), SelectAll(), SelectAll()}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad dim: err = %v", err)
	}
	if _, err := c.GroupBy(0, nil); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad sels: err = %v", err)
	}
}

func TestTuplesEnumeration(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	var got [][]string
	var sum float64
	c.Tuples(func(dims []string, agg Aggregate) bool {
		got = append(got, append([]string(nil), dims...))
		sum += agg.Sum
		return true
	})
	if len(got) != 4 {
		t.Fatalf("enumerated %d tuples, want 4", len(got))
	}
	if sum != 14 {
		t.Errorf("sum of enumerated = %g, want 14", sum)
	}
	// Sorted order: France first.
	if got[0][0] != "France" {
		t.Errorf("first tuple = %v, want France row", got[0])
	}
	// Early abort.
	n := 0
	c.Tuples(func([]string, Aggregate) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("aborted enumeration saw %d tuples", n)
	}
}

func TestExtractSubcube(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	sub, err := c.Extract([]Selector{SelectKeys("Ireland"), SelectAll(), SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.FromQuery {
		t.Error("FromQuery flag not set")
	}
	if sub.NumSourceTuples() != 3 {
		t.Errorf("sub tuples = %d, want 3", sub.NumSourceTuples())
	}
	all, _ := sub.Point(All, All, All)
	if all.Sum != 10 {
		t.Errorf("sub ALL = %v, want sum=10", all)
	}
	if fr, _ := sub.Point("France", All, All); !fr.IsZero() {
		t.Errorf("France should be absent from the Ireland sub-cube: %v", fr)
	}

	if _, err := c.Extract(nil); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad extract: err = %v", err)
	}
}

func TestMustPointPanics(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	defer func() {
		if recover() == nil {
			t.Error("MustPoint with wrong arity should panic")
		}
	}()
	c.MustPoint("Ireland")
}

func TestMergeDimensionMismatch(t *testing.T) {
	a := mustCube(t, []string{"x"}, nil)
	b := mustCube(t, []string{"x", "y"}, nil)
	if _, err := Merge(a, b); !errors.Is(err, ErrDimsMismatch) {
		t.Errorf("err = %v, want ErrDimsMismatch", err)
	}
	c := mustCube(t, []string{"z"}, nil)
	if _, err := Merge(a, c); !errors.Is(err, ErrDimsMismatch) {
		t.Errorf("renamed dim: err = %v, want ErrDimsMismatch", err)
	}
}

func TestMergeEmptyCubes(t *testing.T) {
	a := mustCube(t, []string{"x", "y"}, nil)
	b := mustCube(t, []string{"x", "y"}, nil)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := m.Point(All, All); !agg.IsZero() {
		t.Errorf("merged empty cube = %v", agg)
	}

	// Empty merged with non-empty equals the non-empty cube.
	c := mustCube(t, []string{"x", "y"}, []Tuple{{Dims: []string{"a", "b"}, Measure: 5}})
	m2, err := Merge(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := m2.Point("a", "b"); agg.Sum != 5 {
		t.Errorf("merge with empty = %v", agg)
	}
}

func TestAppendIncremental(t *testing.T) {
	day1 := []Tuple{
		{Dims: []string{"mon", "s1"}, Measure: 4},
		{Dims: []string{"mon", "s2"}, Measure: 6},
	}
	c := mustCube(t, []string{"day", "station"}, day1)
	c2, err := c.Append([]Tuple{
		{Dims: []string{"tue", "s1"}, Measure: 10},
		{Dims: []string{"mon", "s1"}, Measure: 1}, // same keys as an existing fact
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg, _ := c2.Point("mon", "s1"); agg.Sum != 5 || agg.Count != 2 {
		t.Errorf("(mon,s1) after append = %v, want sum=5 count=2", agg)
	}
	if agg, _ := c2.Point(All, All); agg.Sum != 21 || agg.Count != 4 {
		t.Errorf("ALL after append = %v", agg)
	}
	// Original cube unchanged.
	if agg, _ := c.Point(All, All); agg.Sum != 10 || agg.Count != 2 {
		t.Errorf("original mutated: %v", agg)
	}
	if c2.NumSourceTuples() != 4 {
		t.Errorf("tuple count = %d, want 4", c2.NumSourceTuples())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBytes([]byte("not a cube at all")); !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorruptCube) {
		t.Errorf("garbage: err = %v", err)
	}
	c := mustCube(t, paperDims, paperTuples())
	var buf safeBuffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Flip a payload byte: CRC must catch it.
	data[len(data)/2] ^= 0xFF
	if _, err := DecodeBytes(data); !errors.Is(err, ErrCorruptCube) {
		t.Errorf("tampered: err = %v, want ErrCorruptCube", err)
	}
	// Truncated stream.
	if _, err := DecodeBytes(buf.Bytes()[:10]); err == nil {
		t.Error("truncated stream decoded without error")
	}
}

func TestEncodeDecodeEmptyAndFlag(t *testing.T) {
	c := mustCube(t, []string{"a"}, nil)
	c.FromQuery = true
	var buf safeBuffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !d.FromQuery {
		t.Error("FromQuery flag lost")
	}
	if d.NumDims() != 1 || d.NumSourceTuples() != 0 {
		t.Errorf("decoded empty cube: dims=%d tuples=%d", d.NumDims(), d.NumSourceTuples())
	}
}
