package dwarf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// assertClean runs every reader over data and fails on a panic or a
// non-sentinel error. wantErr additionally requires that at least the
// checksum-bearing readers reject the bytes.
func assertClean(t *testing.T, label string, data []byte, wantErr bool) {
	t.Helper()
	check := func(op string, err error) {
		t.Helper()
		if err == nil {
			if wantErr && (op == "VerifyEncoded" || op == "DecodeBytes" || op == "OpenView") {
				t.Fatalf("%s: %s accepted corrupt bytes", label, op)
			}
			return
		}
		if !errors.Is(err, ErrCorruptCube) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) {
			t.Fatalf("%s: %s returned non-sentinel error: %v", label, op, err)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", label, r)
		}
	}()
	check("VerifyEncoded", VerifyEncoded(data))
	_, err := DecodeBytes(data)
	check("DecodeBytes", err)
	v, err := OpenView(data)
	check("OpenView", err)
	if err == nil {
		ndims := v.NumDims()
		wild := make([]string, ndims)
		for i := range wild {
			wild[i] = All
		}
		_, err = v.Point(wild...)
		check("view Point", err)
		_, err = v.Stats()
		check("view Stats", err)
		err = v.Tuples(func([]string, Aggregate) bool { return true })
		check("view Tuples", err)
	}
}

// corruptionBase returns the two golden encodings: every matrix axis runs
// over both the plain v1 stream and the trailer-carrying one.
func corruptionBase(t *testing.T) map[string][]byte {
	c := goldenCube(t)
	var v1, v2 bytes.Buffer
	if err := c.Encode(&v1); err != nil {
		t.Fatal(err)
	}
	if err := c.EncodeIndexed(&v2); err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()}
}

// TestCorruptionTruncation truncates the stream at every byte boundary —
// which covers every section boundary — and requires a clean rejection at
// each length.
func TestCorruptionTruncation(t *testing.T) {
	for name, data := range corruptionBase(t) {
		// Cutting the indexed stream exactly at a section boundary leaves a
		// complete, valid stream — the v2 trailer and v3 metadata section
		// are optional suffixes, so those truncations are legitimately
		// accepted. Every other length must be rejected.
		v1, _, meta, err := splitSections(data)
		if err != nil {
			t.Fatal(err)
		}
		okLen := map[int]bool{len(v1): true}
		if meta != nil {
			okLen[len(data)-(len(meta)+metaFootLen)] = true
		}
		for n := 0; n < len(data); n++ {
			assertClean(t, name+" truncated", data[:n], !okLen[n])
		}
		assertClean(t, name+" intact", data, false)
	}
}

// TestCorruptionBitFlips flips every bit of both encodings. CRC32 detects
// every single-bit flip, so each variant must be rejected — including flips
// inside the offset trailer, whose own CRC (or the v1 fallback) catches
// them.
func TestCorruptionBitFlips(t *testing.T) {
	for name, data := range corruptionBase(t) {
		for i := 0; i < len(data); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), data...)
				mut[i] ^= 1 << bit
				assertClean(t, name+" bit-flipped", mut, true)
			}
		}
	}
}

// sealedStream hand-assembles an encoded stream with a valid checksum so
// pathological field values reach the structural parser. Fields are written
// with the same primitives Encode uses.
type sealedStream struct{ buf bytes.Buffer }

func (s *sealedStream) uvarint(v uint64) *sealedStream {
	var tmp [binary.MaxVarintLen64]byte
	s.buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	return s
}

func (s *sealedStream) raw(b ...byte) *sealedStream { s.buf.Write(b); return s }

func (s *sealedStream) str(v string) *sealedStream {
	s.uvarint(uint64(len(v)))
	s.buf.WriteString(v)
	return s
}

func (s *sealedStream) agg(sum float64, count uint64) *sealedStream {
	var tmp [8]byte
	for _, f := range []float64{sum, sum, sum} { // sum/min/max
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
		s.buf.Write(tmp[:])
	}
	return s.uvarint(count)
}

// seal prefixes the magic and appends a valid CRC word.
func (s *sealedStream) seal() []byte {
	payload := s.buf.Bytes()
	out := make([]byte, 0, len(codecMagic)+len(payload)+4)
	out = append(out, codecMagic...)
	out = append(out, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(out, crc[:]...)
}

// header writes version, flags, numTuples, and a 2-dimension layout.
func (s *sealedStream) header() *sealedStream {
	return s.raw(codecVersion, 0).uvarint(1).uvarint(2).str("A").str("B")
}

// maxUvarint is the 10-byte maximal uvarint (2^64-1); oversized length
// fields use it to probe for unbounded allocations.
const maxUvarint = math.MaxUint64

// TestCorruptionOversizedFields seals streams whose length and id fields
// are absurd — huge node counts, cell counts, string lengths, child ids,
// levels, root ids, truncated-overflow varints — and requires every reader
// to reject them cleanly and promptly (no OOM-sized allocation, enforced by
// the default test timeout and the allocation caps in the parsers).
func TestCorruptionOversizedFields(t *testing.T) {
	cases := map[string][]byte{
		"huge node count": (&sealedStream{}).header().uvarint(maxUvarint).uvarint(0).seal(),
		"huge dim count":  (&sealedStream{}).raw(codecVersion, 0).uvarint(1).uvarint(maxUvarint).seal(),
		"huge dim name": (&sealedStream{}).raw(codecVersion, 0).uvarint(1).
			uvarint(2).uvarint(maxUvarint).seal(),
		"huge cell count": (&sealedStream{}).header().uvarint(1).
			uvarint(0).raw(0).uvarint(maxUvarint).seal(),
		"huge key length": (&sealedStream{}).header().uvarint(1).
			uvarint(0).raw(0).uvarint(1).uvarint(maxUvarint).seal(),
		"huge child id": (&sealedStream{}).header().uvarint(2).
			uvarint(1).raw(1).uvarint(0).agg(1, 1).                    // node 1: leaf, 0 cells
			uvarint(0).raw(0).uvarint(1).str("k").uvarint(maxUvarint). // node 2 cell child huge
			uvarint(0).uvarint(2).seal(),
		"huge level": (&sealedStream{}).header().uvarint(1).
			uvarint(maxUvarint).raw(1).uvarint(0).agg(1, 1).uvarint(1).seal(),
		"huge root id": (&sealedStream{}).header().uvarint(1).
			uvarint(1).raw(1).uvarint(0).agg(1, 1).uvarint(maxUvarint).seal(),
		"huge agg count": (&sealedStream{}).header().uvarint(1).
			uvarint(1).raw(1).uvarint(0).agg(1, maxUvarint).uvarint(1).seal(),
		// An 11-byte varint overflows uvarint64 outright.
		"overflowing varint": (&sealedStream{}).header().
			raw(0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F).seal(),
	}
	for name, data := range cases {
		assertClean(t, name, data, false)
		// These streams are checksum-valid by construction, so the error, if
		// any, must come from the structural parser — and for all but the
		// benign ones there must be one.
		if _, err := DecodeBytes(data); err == nil {
			t.Fatalf("%s: DecodeBytes accepted a pathological stream", name)
		}
		if v, err := OpenView(data); err == nil {
			if _, err := v.Stats(); err == nil {
				t.Fatalf("%s: OpenView+Stats accepted a pathological stream", name)
			}
		}
	}
}

// TestCorruptionForgedTrailer checks trailer-specific attacks: a trailer
// whose body checksum is valid but whose contents are hostile must either
// be rejected at open or never let a query read out of bounds.
func TestCorruptionForgedTrailer(t *testing.T) {
	c := goldenCube(t)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := buf.Bytes()

	forge := func(mutate func(body []byte)) []byte {
		var idx bytes.Buffer
		if err := c.EncodeIndexed(&idx); err != nil {
			t.Fatal(err)
		}
		full := append([]byte(nil), idx.Bytes()...)
		// Drop the v3 metadata section EncodeIndexed now appends so the
		// stream ends with the v2 trailer this test forges.
		metaLen := int(binary.LittleEndian.Uint32(full[len(full)-12:])) + metaFootLen
		full = full[:len(full)-metaLen]
		bodyLen := int(binary.LittleEndian.Uint32(full[len(full)-12:]))
		bodyStart := len(full) - trailerFootLen - bodyLen
		body := full[bodyStart : bodyStart+bodyLen]
		mutate(body)
		binary.LittleEndian.PutUint32(full[bodyStart+bodyLen:], crc32.ChecksumIEEE(body))
		return full
	}

	cases := map[string][]byte{
		"offsets into crc word": forge(func(body []byte) {
			for i := trailerFixedLen; i+8 <= len(body); i += 8 {
				binary.LittleEndian.PutUint32(body[i:], uint32(len(v1)-4))
				binary.LittleEndian.PutUint32(body[i+4:], uint32(len(v1)-2))
			}
		}),
		"zero offsets": forge(func(body []byte) {
			for i := trailerFixedLen; i < len(body); i++ {
				body[i] = 0
			}
		}),
		"node count mismatch": forge(func(body []byte) {
			binary.LittleEndian.PutUint32(body, binary.LittleEndian.Uint32(body)+1)
		}),
		"root id out of range": forge(func(body []byte) {
			binary.LittleEndian.PutUint32(body[4:], ^uint32(0))
		}),
		// Node 1 is emitted children-first, so it is a leaf: a trailer
		// naming it as root must not let Point answer from mid-cube.
		"root id names a leaf": forge(func(body []byte) {
			binary.LittleEndian.PutUint32(body[4:], 1)
		}),
		"truncated body": func() []byte {
			full := forge(func([]byte) {})
			// Rebuild with a body one entry short but a matching CRC/len.
			bodyLen := int(binary.LittleEndian.Uint32(full[len(full)-12:]))
			bodyStart := len(full) - trailerFootLen - bodyLen
			body := append([]byte(nil), full[bodyStart:bodyStart+bodyLen-8]...)
			out := append([]byte(nil), full[:bodyStart]...)
			out = append(out, body...)
			var word [4]byte
			binary.LittleEndian.PutUint32(word[:], crc32.ChecksumIEEE(body))
			out = append(out, word[:]...)
			binary.LittleEndian.PutUint32(word[:], uint32(len(body)))
			out = append(out, word[:]...)
			return append(out, trailerMagic...)
		}(),
	}
	for name, data := range cases {
		assertClean(t, name, data, false)
		v, err := OpenView(data)
		if err == nil {
			if _, err := v.Stats(); err == nil {
				t.Fatalf("%s: forged trailer went unnoticed end to end", name)
			}
		}
		if v != nil {
			// Point in particular must never answer from a forged root.
			if _, err := v.Point("2015", "Jan", "north", "bike"); err == nil {
				t.Fatalf("%s: Point answered through a forged trailer", name)
			}
		}
	}
}

// TestCorruptionForgedMeta checks v3-metadata-specific attacks: a section
// whose CRC is valid but whose zone maps are hostile must be rejected by
// OpenView (pruning decisions ride on these bounds), while DecodeBytes —
// which never reads zone maps — keeps accepting the intact v1 payload, and
// a section with a bad CRC collapses the whole tail into the v1 checksum,
// which rejects it.
func TestCorruptionForgedMeta(t *testing.T) {
	c := goldenCube(t)
	var idx bytes.Buffer
	if err := c.EncodeIndexed(&idx); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), idx.Bytes()...)
	metaLen := int(binary.LittleEndian.Uint32(full[len(full)-12:])) + metaFootLen
	base := full[:len(full)-metaLen] // valid v1 + v2, no metadata section

	seal := func(body []byte) []byte {
		out := append([]byte(nil), base...)
		out = append(out, body...)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
		return append(out, metaMagic...)
	}
	appendZone := func(b []byte, distinct uint64, min, max string) []byte {
		b = binary.AppendUvarint(b, distinct)
		b = binary.AppendUvarint(b, uint64(len(min)))
		b = append(b, min...)
		b = binary.AppendUvarint(b, uint64(len(max)))
		b = append(b, max...)
		return b
	}
	// The golden cube's true zone maps, resealed: must reproduce the
	// original stream bit for bit and open cleanly.
	valid := binary.AppendUvarint(nil, 4)
	valid = appendZone(valid, 2, "2015", "2016")
	valid = appendZone(valid, 2, "Feb", "Jan")
	valid = appendZone(valid, 3, "east", "south")
	valid = appendZone(valid, 3, "bike", "scooter")
	if !bytes.Equal(seal(valid), full) {
		t.Fatal("resealing the true zone maps does not reproduce EncodeIndexed output")
	}

	three := binary.AppendUvarint(nil, 3)
	three = appendZone(three, 2, "2015", "2016")
	three = appendZone(three, 2, "Feb", "Jan")
	three = appendZone(three, 3, "east", "south")

	forged := func(mutate func(b []byte, d uint64, min, max string) []byte) []byte {
		b := binary.AppendUvarint(nil, 4)
		b = mutate(b, 2, "2015", "2016")
		b = appendZone(b, 2, "Feb", "Jan")
		b = appendZone(b, 3, "east", "south")
		b = appendZone(b, 3, "bike", "scooter")
		return b
	}

	cases := map[string][]byte{
		"garbage body":   seal([]byte{0xde, 0xad, 0xbe, 0xef}),
		"empty body":     seal(nil),
		"ndims mismatch": seal(three),
		"min above max": seal(forged(func(b []byte, _ uint64, min, max string) []byte {
			return appendZone(b, 2, max, min)
		})),
		"min differs from max with one key": seal(forged(func(b []byte, _ uint64, min, max string) []byte {
			return appendZone(b, 1, min, max)
		})),
		"bounds with zero keys": seal(forged(func(b []byte, _ uint64, min, max string) []byte {
			return appendZone(b, 0, min, max)
		})),
		"huge distinct count": seal(forged(func(b []byte, _ uint64, min, max string) []byte {
			return appendZone(b, maxUvarint, min, max)
		})),
		"trailing bytes": seal(append(append([]byte(nil), valid...), 0x00)),
	}
	for name, data := range cases {
		assertClean(t, name, data, false)
		if _, err := OpenView(data); err == nil {
			t.Fatalf("%s: OpenView accepted a forged metadata section", name)
		}
		if _, err := DecodeBytes(data); err != nil {
			t.Fatalf("%s: DecodeBytes rejected a stream whose v1 payload is intact: %v", name, err)
		}
	}

	// A bad section CRC means the section is not stripped: the tail joins
	// the v1 stream, whose checksum then rejects everything.
	badCRC := append([]byte(nil), full...)
	badCRC[len(badCRC)-metaFootLen] ^= 1
	assertClean(t, "bad meta CRC", badCRC, true)
}
