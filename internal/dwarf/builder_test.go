package dwarf

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// paperTuples is the running example reconstructed from the paper's Fig. 1 /
// Fig. 2 / Fig. 3: country, city, station dimensions with a bikes measure.
// Fig. 3 shows the leaf cell ("Fenian St", measure 3).
func paperTuples() []Tuple {
	return []Tuple{
		{Dims: []string{"Ireland", "Dublin", "Fenian St"}, Measure: 3},
		{Dims: []string{"Ireland", "Dublin", "Pearse St"}, Measure: 5},
		{Dims: []string{"Ireland", "Cork", "Patrick St"}, Measure: 2},
		{Dims: []string{"France", "Paris", "Rue Cler"}, Measure: 4},
	}
}

var paperDims = []string{"Country", "City", "Station"}

func mustCube(t *testing.T, dims []string, tuples []Tuple, opts ...Option) *Cube {
	t.Helper()
	c, err := New(dims, tuples, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// TestPaperFigure2Golden checks the exact structure the paper's Fig. 2
// example implies: point values, ALL aggregates at every level, and that
// single-cell nodes suffix-coalesce (the ALL pointer is the child itself).
func TestPaperFigure2Golden(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())

	cases := []struct {
		keys []string
		sum  float64
		cnt  int64
	}{
		{[]string{"Ireland", "Dublin", "Fenian St"}, 3, 1},
		{[]string{"Ireland", "Dublin", "Pearse St"}, 5, 1},
		{[]string{"Ireland", "Cork", "Patrick St"}, 2, 1},
		{[]string{"France", "Paris", "Rue Cler"}, 4, 1},
		{[]string{"Ireland", "Dublin", All}, 8, 2},
		{[]string{"Ireland", All, All}, 10, 3},
		{[]string{"France", All, All}, 4, 1},
		{[]string{All, All, All}, 14, 4},
		{[]string{All, "Dublin", All}, 8, 2},
		{[]string{All, All, "Patrick St"}, 2, 1},
		{[]string{All, "Paris", "Rue Cler"}, 4, 1},
	}
	for _, tc := range cases {
		agg, err := c.Point(tc.keys...)
		if err != nil {
			t.Fatalf("Point(%v): %v", tc.keys, err)
		}
		if agg.Sum != tc.sum || agg.Count != tc.cnt {
			t.Errorf("Point(%v) = %v, want sum=%g count=%d", tc.keys, agg, tc.sum, tc.cnt)
		}
	}

	// Missing combinations are zero.
	agg, err := c.Point("Ireland", "Paris", All)
	if err != nil || !agg.IsZero() {
		t.Errorf("Point(Ireland,Paris,*) = %v, %v; want zero aggregate", agg, err)
	}

	// Root structure: two country cells.
	root := c.Root()
	if got := root.Keys(); len(got) != 2 || got[0] != "France" || got[1] != "Ireland" {
		t.Fatalf("root keys = %v, want [France Ireland]", got)
	}

	// Suffix coalescing: France has a single city, so the France cell's ALL
	// sub-dwarf must be the Paris node itself (shared pointer, not a copy).
	fr, ok := root.Lookup("France")
	if !ok {
		t.Fatal("France cell missing")
	}
	if fr.Child.AllChild == nil {
		t.Fatal("France city node has no ALL child")
	}
	paris, ok := fr.Child.Lookup("Paris")
	if !ok {
		t.Fatal("Paris cell missing")
	}
	if fr.Child.AllChild != paris.Child {
		t.Error("single-cell node's ALL sub-dwarf should coalesce to the child pointer")
	}
}

func TestDuplicateTuplesMerge(t *testing.T) {
	tuples := []Tuple{
		{Dims: []string{"a", "x"}, Measure: 1},
		{Dims: []string{"a", "x"}, Measure: 2},
		{Dims: []string{"a", "x"}, Measure: 7},
		{Dims: []string{"a", "y"}, Measure: 10},
	}
	c := mustCube(t, []string{"d1", "d2"}, tuples)
	agg, err := c.Point("a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if agg.Sum != 10 || agg.Count != 3 || agg.Min != 1 || agg.Max != 7 {
		t.Errorf("merged duplicate = %v, want sum=10 count=3 min=1 max=7", agg)
	}
	all, _ := c.Point("a", All)
	if all.Sum != 20 || all.Count != 4 {
		t.Errorf("(a,*) = %v, want sum=20 count=4", all)
	}
}

func TestUnsortedInputEqualsSorted(t *testing.T) {
	tuples := paperTuples()
	// Reverse order input must give the same cube contents.
	rev := make([]Tuple, len(tuples))
	for i := range tuples {
		rev[len(tuples)-1-i] = tuples[i]
	}
	a := mustCube(t, paperDims, tuples)
	b := mustCube(t, paperDims, rev)
	for _, q := range [][]string{
		{"Ireland", "Dublin", All}, {All, All, All}, {"France", All, "Rue Cler"},
	} {
		ga, _ := a.Point(q...)
		gb, _ := b.Point(q...)
		if !ga.Equal(gb) {
			t.Errorf("query %v: sorted=%v reversed=%v", q, ga, gb)
		}
	}
}

func TestEmptyCube(t *testing.T) {
	c := mustCube(t, []string{"a", "b"}, nil)
	agg, err := c.Point(All, All)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.IsZero() {
		t.Errorf("empty cube ALL query = %v, want zero", agg)
	}
	st := c.Stats()
	if st.Nodes != 1 || st.Cells != 0 {
		t.Errorf("empty cube stats = %+v, want 1 node, 0 cells", st)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); !errors.Is(err, ErrNoDimensions) {
		t.Errorf("no dims: err = %v, want ErrNoDimensions", err)
	}
	if _, err := New([]string{"a"}, []Tuple{{Dims: []string{"x", "y"}, Measure: 1}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: err = %v, want ErrDimMismatch", err)
	}
	if _, err := New([]string{"a"}, []Tuple{{Dims: []string{All}, Measure: 1}}); !errors.Is(err, ErrReservedKey) {
		t.Errorf("reserved key: err = %v, want ErrReservedKey", err)
	}
	if _, err := New([]string{"a"}, []Tuple{{Dims: []string{"x"}, Measure: math.NaN()}}); !errors.Is(err, ErrNotFiniteValue) {
		t.Errorf("NaN measure: err = %v, want ErrNotFiniteValue", err)
	}
	c := mustCube(t, []string{"a", "b"}, nil)
	if _, err := c.Point("x"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("short query: err = %v, want ErrBadQuery", err)
	}
}

func TestSingleDimensionCube(t *testing.T) {
	c := mustCube(t, []string{"station"}, []Tuple{
		{Dims: []string{"s1"}, Measure: 2},
		{Dims: []string{"s2"}, Measure: 3},
	})
	agg, _ := c.Point("s1")
	if agg.Sum != 2 {
		t.Errorf("s1 = %v", agg)
	}
	all, _ := c.Point(All)
	if all.Sum != 5 || all.Count != 2 {
		t.Errorf("ALL = %v", all)
	}
}

// TestSuffixCoalescingShrinks verifies that hash-consing plus suffix
// coalescing yields strictly fewer nodes than the fully materialized tree
// when branches share identical suffixes.
func TestSuffixCoalescingShrinks(t *testing.T) {
	var tuples []Tuple
	// 10 stations, all with the identical (day, slot) suffix pattern.
	for _, st := range []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"} {
		for _, day := range []string{"mon", "tue"} {
			for _, slot := range []string{"am", "pm"} {
				tuples = append(tuples, Tuple{Dims: []string{st, day, slot}, Measure: 1})
			}
		}
	}
	dims := []string{"station", "day", "slot"}
	compressed := mustCube(t, dims, tuples)
	full := mustCube(t, dims, tuples, WithoutSuffixCoalescing())

	cs, fs := compressed.Stats(), full.Stats()
	if cs.Nodes >= fs.Nodes {
		t.Errorf("coalesced nodes = %d, materialized = %d; want strictly fewer", cs.Nodes, fs.Nodes)
	}
	// Identical leaf suffixes across stations must be shared: with
	// hash-consing, the (day -> slot) sub-dwarf of every station is the
	// same structure, so there should be exactly one of it.
	if cs.Nodes > 8 {
		t.Errorf("expected aggressive sharing, got %d nodes", cs.Nodes)
	}
	// Both answer queries identically.
	for _, q := range [][]string{{"s3", All, "am"}, {All, "mon", All}, {All, All, All}} {
		a, _ := compressed.Point(q...)
		b, _ := full.Point(q...)
		if !a.Equal(b) {
			t.Errorf("query %v: compressed=%v full=%v", q, a, b)
		}
	}
}

func TestHashConsingAblation(t *testing.T) {
	var tuples []Tuple
	for _, st := range []string{"s0", "s1", "s2", "s3"} {
		for _, day := range []string{"mon", "tue", "wed"} {
			tuples = append(tuples, Tuple{Dims: []string{st, day}, Measure: 2})
		}
	}
	dims := []string{"station", "day"}
	consed := mustCube(t, dims, tuples)
	plain := mustCube(t, dims, tuples, WithoutHashConsing())
	if consed.Stats().Nodes > plain.Stats().Nodes {
		t.Errorf("hash-consing increased node count: %d > %d",
			consed.Stats().Nodes, plain.Stats().Nodes)
	}
	for _, q := range [][]string{{"s1", All}, {All, "wed"}, {All, All}} {
		a, _ := consed.Point(q...)
		b, _ := plain.Point(q...)
		if !a.Equal(b) {
			t.Errorf("query %v: consed=%v plain=%v", q, a, b)
		}
	}
}

func TestKeysWithSeparatorBytes(t *testing.T) {
	// Keys containing NUL and comma bytes must not confuse hash-consing.
	tuples := []Tuple{
		{Dims: []string{"a\x00b", "c"}, Measure: 1},
		{Dims: []string{"a", "\x00bc"}, Measure: 2},
		{Dims: []string{"a,b", "c"}, Measure: 4},
	}
	c := mustCube(t, []string{"d1", "d2"}, tuples)
	all, _ := c.Point(All, All)
	if all.Sum != 7 || all.Count != 3 {
		t.Errorf("ALL = %v, want sum=7 count=3", all)
	}
	one, _ := c.Point("a\x00b", "c")
	if one.Sum != 1 {
		t.Errorf("binary key lookup = %v", one)
	}
}

func TestStatsCounts(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	st := c.Stats()
	if st.SourceTuples != 4 {
		t.Errorf("SourceTuples = %d", st.SourceTuples)
	}
	if st.Nodes == 0 || st.Cells == 0 || st.AllCells != st.Nodes {
		t.Errorf("stats = %+v; want one ALL cell per node", st)
	}
	if st.TotalCells() != st.Cells+st.Nodes {
		t.Errorf("TotalCells = %d", st.TotalCells())
	}
	if st.EstBytes <= 0 {
		t.Errorf("EstBytes = %d", st.EstBytes)
	}
}

func TestVisitDeliversEachNodeOnce(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	seen := map[*Node]int{}
	c.Visit(func(n *Node) bool {
		seen[n]++
		return true
	})
	for n, cnt := range seen {
		if cnt != 1 {
			t.Errorf("node %p visited %d times", n, cnt)
		}
	}
	if len(seen) != c.Stats().Nodes {
		t.Errorf("visited %d nodes, stats says %d", len(seen), c.Stats().Nodes)
	}

	// Early abort stops the walk.
	calls := 0
	c.Visit(func(n *Node) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("aborted walk visited %d nodes, want 1", calls)
	}
}

func TestVisitDepthFirstChildrenBeforeParents(t *testing.T) {
	c := mustCube(t, paperDims, paperTuples())
	pos := map[*Node]int{}
	i := 0
	c.VisitDepthFirst(func(n *Node) bool {
		pos[n] = i
		i++
		return true
	})
	c.Visit(func(n *Node) bool {
		for j := range n.Cells {
			if ch := n.Cells[j].Child; ch != nil && pos[ch] > pos[n] {
				t.Errorf("child after parent in depth-first order")
			}
		}
		if n.AllChild != nil && pos[n.AllChild] > pos[n] {
			t.Errorf("ALL child after parent in depth-first order")
		}
		return true
	})
}

func TestAggregateBasics(t *testing.T) {
	var a Aggregate
	if !a.IsZero() || a.Avg() != 0 {
		t.Errorf("zero aggregate misbehaves: %v", a)
	}
	a.Add(4)
	a.Add(2)
	a.Add(6)
	if a.Sum != 12 || a.Count != 3 || a.Min != 2 || a.Max != 6 || a.Avg() != 4 {
		t.Errorf("aggregate = %v", a)
	}
	b := NewAggregate(-1)
	m := MergeAggregates(a, b)
	if m.Sum != 11 || m.Count != 4 || m.Min != -1 || m.Max != 6 {
		t.Errorf("merged = %v", m)
	}
	if got := MergeAggregates(Aggregate{}, b); !got.Equal(b) {
		t.Errorf("merge with zero = %v, want %v", got, b)
	}
	if s := m.String(); !strings.Contains(s, "count=4") {
		t.Errorf("String() = %q", s)
	}
	if s := (Aggregate{}).String(); s != "{empty}" {
		t.Errorf("zero String() = %q", s)
	}
}
