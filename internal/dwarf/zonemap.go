package dwarf

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// Zone maps: per-dimension key-range metadata carried by the optional v3
// metadata section (see codec.go for the byte layout). For each dimension
// the map records the smallest and largest key present anywhere in the cube
// plus the distinct-key count. Dimension keys are sorted strings, so a
// store holding many segments can intersect a query's selectors against
// each segment's zone maps and skip segments that provably hold no matching
// tuple — before the kernel, or even the file, is ever opened.
//
// The maps are computed during the encode or merge pass itself (both
// already visit every cell in key order), never by an extra pass.

// ZoneMap is one dimension's key-range summary.
type ZoneMap struct {
	// Min and Max are the smallest and largest keys of the dimension
	// (empty when Distinct is 0 — the cube holds no tuples).
	Min string `json:"min"`
	Max string `json:"max"`
	// Distinct is the number of distinct keys of the dimension.
	Distinct int `json:"distinct"`
}

// zoneAcc accumulates per-dimension zone maps while an encode or merge pass
// walks cells. Keys arrive in node order, not globally sorted, so the
// accumulator tracks running min/max and a seen set per dimension.
type zoneAcc struct {
	seen  []map[string]struct{}
	zones []ZoneMap
}

func newZoneAcc(ndims int) *zoneAcc {
	a := &zoneAcc{
		seen:  make([]map[string]struct{}, ndims),
		zones: make([]ZoneMap, ndims),
	}
	for i := range a.seen {
		a.seen[i] = make(map[string]struct{})
	}
	return a
}

// add folds one cell key at the given level. key may alias an input stream;
// it is copied if retained.
func (a *zoneAcc) add(level int, key []byte) {
	if _, ok := a.seen[level][string(key)]; ok {
		return
	}
	a.addNew(level, string(key))
}

// addString is add for keys already held as strings (the in-memory encoder).
func (a *zoneAcc) addString(level int, key string) {
	if _, ok := a.seen[level][key]; ok {
		return
	}
	a.addNew(level, key)
}

func (a *zoneAcc) addNew(level int, key string) {
	a.seen[level][key] = struct{}{}
	z := &a.zones[level]
	if z.Distinct == 0 || key < z.Min {
		z.Min = key
	}
	if z.Distinct == 0 || key > z.Max {
		z.Max = key
	}
	z.Distinct++
}

// appendMetaTrailer appends the v3 metadata section (body, body CRC, body
// length, magic) carrying the zone maps to an encoded stream — the same
// footer discipline the v2 offset trailer uses, so the section is
// self-describing and strippable from the end.
func appendMetaTrailer(out []byte, zones []ZoneMap) []byte {
	bodyStart := len(out)
	out = binary.AppendUvarint(out, uint64(len(zones)))
	for i := range zones {
		out = binary.AppendUvarint(out, uint64(zones[i].Distinct))
		out = binary.AppendUvarint(out, uint64(len(zones[i].Min)))
		out = append(out, zones[i].Min...)
		out = binary.AppendUvarint(out, uint64(len(zones[i].Max)))
		out = append(out, zones[i].Max...)
	}
	bodyLen := len(out) - bodyStart
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[bodyStart:]))
	out = binary.LittleEndian.AppendUint32(out, uint32(bodyLen))
	return append(out, metaMagic...)
}

// parseZoneMaps decodes a CRC-validated v3 metadata body, enforcing every
// structural invariant pruning relies on: one map per cube dimension,
// min == max exactly when one key exists, min < max beyond that, empty
// bounds exactly when the dimension is empty, and the body fully consumed.
func parseZoneMaps(body []byte, ndims int) ([]ZoneMap, error) {
	cur := cursor{data: body, pos: 0, end: len(body)}
	nd, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	if nd != uint64(ndims) {
		return nil, errCorrupt("zone-map section covers %d dimensions, cube has %d", nd, ndims)
	}
	zones := make([]ZoneMap, ndims)
	for d := range zones {
		distinct, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if distinct > math.MaxUint32 {
			return nil, errCorrupt("zone map %d: implausible distinct-key count %d", d, distinct)
		}
		min, err := cur.str()
		if err != nil {
			return nil, err
		}
		max, err := cur.str()
		if err != nil {
			return nil, err
		}
		switch {
		case distinct == 0:
			if len(min) != 0 || len(max) != 0 {
				return nil, errCorrupt("zone map %d: non-empty bounds with zero distinct keys", d)
			}
		case distinct == 1:
			if cmpKeys(min, max) != 0 {
				return nil, errCorrupt("zone map %d: min != max with one distinct key", d)
			}
		default:
			if cmpKeys(min, max) >= 0 {
				return nil, errCorrupt("zone map %d: min not below max with %d distinct keys", d, distinct)
			}
		}
		zones[d] = ZoneMap{Min: string(min), Max: string(max), Distinct: int(distinct)}
	}
	if cur.pos != cur.end {
		return nil, errCorrupt("zone-map section has %d trailing bytes", cur.end-cur.pos)
	}
	return zones, nil
}

// ZonesAdmit reports whether a segment with the given zone maps can hold
// any tuple matched by sels — the prune-before-scan test. It is
// deliberately conservative: nil or mismatched zones admit (an old segment
// without zone maps must always be scanned), and a dimension only rejects
// when its selector's key set or range provably misses [Min, Max]. The
// kernel's HasRange-shadows-Keys precedence is honored. Skipping a
// non-admitted segment never changes a merged answer: an absent key
// contributes the zero Aggregate, and MergeAggregates(x, zero) == x.
func ZonesAdmit(zones []ZoneMap, sels []Selector) bool {
	if len(zones) == 0 || len(zones) != len(sels) {
		return true
	}
	for d := range sels {
		s := &sels[d]
		switch {
		case s.HasRange:
			if s.Lo > s.Hi {
				return false // empty range matches nothing anywhere
			}
			z := &zones[d]
			if z.Distinct == 0 || s.Lo > z.Max || s.Hi < z.Min {
				return false
			}
		case len(s.Keys) > 0:
			z := &zones[d]
			if z.Distinct == 0 {
				return false
			}
			hit := false
			for _, k := range s.Keys {
				if k >= z.Min && k <= z.Max {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
	}
	return true
}

// ZonesAdmitPoint is ZonesAdmit for a point query's key tuple: every bound
// (non-ALL) key must fall inside its dimension's [Min, Max].
func ZonesAdmitPoint(zones []ZoneMap, keys []string) bool {
	if len(zones) == 0 || len(zones) != len(keys) {
		return true
	}
	for d, k := range keys {
		if k == All {
			continue
		}
		z := &zones[d]
		if z.Distinct == 0 || k < z.Min || k > z.Max {
			return false
		}
	}
	return true
}
