package query_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/query"
)

func testCube(t *testing.T) (*dwarf.Cube, []dwarf.Tuple) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	dims := []string{"Year", "Area", "Station"}
	var tuples []dwarf.Tuple
	for i := 0; i < 400; i++ {
		tuples = append(tuples, dwarf.Tuple{
			Dims: []string{
				fmt.Sprintf("201%d", rng.Intn(3)),
				fmt.Sprintf("area-%d", rng.Intn(4)),
				fmt.Sprintf("st-%02d", rng.Intn(12)),
			},
			Measure: float64(rng.Intn(25)),
		})
	}
	c, err := dwarf.New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return c, tuples
}

func asView(t *testing.T, c *dwarf.Cube) *dwarf.CubeView {
	t.Helper()
	var buf bytes.Buffer
	if err := c.EncodeIndexed(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := dwarf.OpenView(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRollUpAcrossSources: RollUp rows must be identical on the cube and
// the zero-copy view, and each row must equal the matching wildcard Point.
func TestRollUpAcrossSources(t *testing.T) {
	c, _ := testCube(t)
	v := asView(t, c)
	for _, q := range []query.Querier{c, v} {
		dims, rows, err := query.RollUp(q, "Area", "Year")
		if err != nil {
			t.Fatal(err)
		}
		// Kept dimensions come back in cube order regardless of keep order.
		if len(dims) != 2 || dims[0] != "Year" || dims[1] != "Area" {
			t.Fatalf("rolled dims = %v", dims)
		}
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
		for _, row := range rows {
			want, err := c.Point(row.Keys[0], row.Keys[1], dwarf.All)
			if err != nil {
				t.Fatal(err)
			}
			if !row.Agg.Equal(want) {
				t.Fatalf("rollup row %v = %v, wildcard point says %v", row.Keys, row.Agg, want)
			}
		}
	}

	cubeDims, cubeRows, err := query.RollUp(c, "Station")
	if err != nil {
		t.Fatal(err)
	}
	viewDims, viewRows, err := query.RollUp(v, "Station")
	if err != nil {
		t.Fatal(err)
	}
	if len(cubeDims) != 1 || cubeDims[0] != viewDims[0] || len(cubeRows) != len(viewRows) {
		t.Fatalf("cube/view rollups diverged: %v/%d vs %v/%d", cubeDims, len(cubeRows), viewDims, len(viewRows))
	}
	for i := range cubeRows {
		if cubeRows[i].Keys[0] != viewRows[i].Keys[0] || !cubeRows[i].Agg.Equal(viewRows[i].Agg) {
			t.Fatalf("row %d: cube %+v vs view %+v", i, cubeRows[i], viewRows[i])
		}
	}

	if _, _, err := query.RollUp(c, "Bogus"); !errors.Is(err, query.ErrUnknownDim) {
		t.Fatalf("unknown keep: %v", err)
	}
	if _, _, err := query.RollUp(c); !errors.Is(err, query.ErrUnknownDim) {
		t.Fatalf("empty keep: %v", err)
	}
}

// TestDrillDownAcrossSources: drill-down member sums must cover their
// parent exactly, on both representations.
func TestDrillDownAcrossSources(t *testing.T) {
	c, _ := testCube(t)
	v := asView(t, c)
	for _, q := range []query.Querier{c, v} {
		areas, err := query.DrillDown(q, nil, "Area")
		if err != nil {
			t.Fatal(err)
		}
		total, _ := c.Point(dwarf.All, dwarf.All, dwarf.All)
		var sum float64
		var count int64
		for _, a := range areas {
			sum += a.Sum
			count += a.Count
		}
		if sum != total.Sum || count != total.Count {
			t.Fatalf("area drill-down sums %g/%d != total %g/%d", sum, count, total.Sum, total.Count)
		}
		var area string
		for k := range areas {
			area = k
			break
		}
		stations, err := query.DrillDown(q, map[string]string{"Area": area}, "Station")
		if err != nil {
			t.Fatal(err)
		}
		var ssum float64
		for _, a := range stations {
			ssum += a.Sum
		}
		if ssum != areas[area].Sum {
			t.Fatalf("station sums %g != area %g", ssum, areas[area].Sum)
		}
	}
	if _, err := query.DrillDown(c, nil, "Bogus"); !errors.Is(err, query.ErrUnknownDim) {
		t.Fatalf("unknown dim: %v", err)
	}
	if _, err := query.DrillDown(c, map[string]string{"Nope": "x"}, "Area"); !errors.Is(err, query.ErrUnknownDim) {
		t.Fatalf("unknown fixed: %v", err)
	}
}

// TestTopKByName resolves the dimension by name and pads nil selectors.
func TestTopKByName(t *testing.T) {
	c, _ := testCube(t)
	v := asView(t, c)
	spec := dwarf.TopKSpec{K: 5, By: dwarf.ByCount}
	want, err := query.TopKByName(c, "Station", nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := query.TopKByName(v, "Station", nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 5 || len(got) != 5 {
		t.Fatalf("want 5 entries, got %d / %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Key != got[i].Key || !want[i].Agg.Equal(got[i].Agg) {
			t.Fatalf("entry %d: cube %+v vs view %+v", i, want[i], got[i])
		}
	}
	// Ranking is count-desc: each entry's count bounds the next.
	for i := 1; i < len(want); i++ {
		if want[i].Agg.Count > want[i-1].Agg.Count {
			t.Fatalf("entries out of order: %+v before %+v", want[i-1], want[i])
		}
	}
	if _, err := query.TopKByName(c, "Bogus", nil, spec); !errors.Is(err, query.ErrUnknownDim) {
		t.Fatalf("unknown dim: %v", err)
	}
}
