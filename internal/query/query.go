// Package query is the unified query surface over every cube
// representation the system serves: the in-memory node graph (*dwarf.Cube),
// the zero-copy encoded view (*dwarf.CubeView) and the live store
// (*cubestore.Store). All three implement Querier — the single interface
// internal/serve programs against — and all three answer through the same
// kernel (internal/dwarf/kernel.go): the two single-source types call it
// directly through their dwarf.Source cursors, and the store runs it per
// target and merges the partial results (docs/QUERY.md spells out the
// partial-merge semantics).
//
// On top of Querier this package provides the dimension-NAME based
// operations of the smart-city rollup/drill-down story (the paper's §6),
// which previously required rebuilding whole in-memory cubes and now run
// directly on views and the live store: RollUp collapses a cube to a subset
// of named dimensions as sorted rows, and DrillDown enumerates the members
// of one named dimension below a fixed path.
package query

import (
	"errors"
	"fmt"

	"repro/internal/dwarf"
)

// Source is the cursor interface the kernel walks; see dwarf.Source.
type Source = dwarf.Source

// Querier is the full query surface shared by *dwarf.Cube, *dwarf.CubeView
// and *cubestore.Store. Every shape answers identically across the three
// over the same fact multiset (the differential suites pin this).
type Querier interface {
	// Dims returns the dimension names in order.
	Dims() []string
	// NumDims returns the number of dimensions.
	NumDims() int
	// Point answers a point/ALL-wildcard query, one key per dimension.
	Point(keys ...string) (dwarf.Aggregate, error)
	// Range aggregates the sub-cube addressed by one selector per dimension.
	Range(sels []dwarf.Selector) (dwarf.Aggregate, error)
	// GroupBy groups the dimension at index dim under the restriction of sels.
	GroupBy(dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error)
	// Pivot is the multi-dimension GroupBy, returning sorted rows.
	Pivot(dims []int, sels []dwarf.Selector) ([]dwarf.PivotGroup, error)
	// TopK ranks the groups of one dimension by a metric, best first.
	TopK(dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, error)
}

// Both single-source cube representations satisfy the full surface; the
// store's assertion lives in cubestore to avoid an import cycle.
var (
	_ Querier = (*dwarf.Cube)(nil)
	_ Querier = (*dwarf.CubeView)(nil)
)

// ErrUnknownDim reports a dimension name the target does not have.
var ErrUnknownDim = errors.New("query: unknown dimension")

// DimIndex resolves a dimension name to its index in q's dimension order.
func DimIndex(q Querier, name string) (int, error) {
	for i, d := range q.Dims() {
		if d == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: %s", ErrUnknownDim, name)
}

// RollUp collapses q to a coarser grain: only the named dimensions survive
// (in q's dimension order); all others are aggregated away through their
// ALL cells. The result is the coarse cube's content — one sorted row per
// surviving key combination, counts and min/max preserved — computed by a
// single kernel walk, with no cube rebuild and no decoding: on a CubeView
// it runs zero-copy over the encoded bytes, and on the live store it fans
// out and merges partials.
func RollUp(q Querier, keep ...string) ([]string, []dwarf.PivotGroup, error) {
	all := q.Dims()
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	idx := make([]int, 0, len(keep))
	dims := make([]string, 0, len(keep))
	for i, d := range all {
		if keepSet[d] {
			idx = append(idx, i)
			dims = append(dims, d)
			delete(keepSet, d)
		}
	}
	for k := range keepSet {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownDim, k)
	}
	if len(idx) == 0 {
		return nil, nil, fmt.Errorf("%w: nothing to keep", ErrUnknownDim)
	}
	rows, err := q.Pivot(idx, make([]dwarf.Selector, len(all)))
	if err != nil {
		return nil, nil, err
	}
	return dims, rows, nil
}

// DrillDown enumerates the members one level below a fixed path: fixed maps
// dimension name → key (missing dimensions are wildcards), dim names the
// dimension whose members are enumerated. Each member key maps to its
// aggregate under the fixed path — the DRILL DOWN of the paper's §6,
// served by one kernel group-by on any Querier.
//
// The returned map is the caller's to keep and mutate. When q is a live
// store with a result cache, GroupBy hands back the cache-shared map
// (read-only by contract), so DrillDown copies it before returning —
// drill-down callers routinely prune and annotate the member map, and a
// shared-map mutation here would silently corrupt every later cache hit.
func DrillDown(q Querier, fixed map[string]string, dim string) (map[string]dwarf.Aggregate, error) {
	dims := q.Dims()
	dimIdx := -1
	sels := make([]dwarf.Selector, len(dims))
	for i, d := range dims {
		if d == dim {
			dimIdx = i
		}
		if k, ok := fixed[d]; ok {
			sels[i] = dwarf.SelectKeys(k)
		}
	}
	if dimIdx < 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDim, dim)
	}
	for d := range fixed {
		found := false
		for _, have := range dims {
			if have == d {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s", ErrUnknownDim, d)
		}
	}
	groups, err := q.GroupBy(dimIdx, sels)
	if err != nil {
		return nil, err
	}
	out := make(map[string]dwarf.Aggregate, len(groups))
	for k, a := range groups {
		out[k] = a
	}
	return out, nil
}

// TopKByName is TopK with the grouped dimension resolved by name. A nil
// selector list means no restriction (ALL on every dimension).
func TopKByName(q Querier, dim string, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, error) {
	idx, err := DimIndex(q, dim)
	if err != nil {
		return nil, err
	}
	if sels == nil {
		sels = make([]dwarf.Selector, q.NumDims())
	}
	return q.TopK(idx, sels, spec)
}
