package flatfile

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dwarf"
)

func testCube(t *testing.T, seed int64, n int) *dwarf.Cube {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := []string{"a", "b", "c"}
	tuples := make([]dwarf.Tuple, n)
	for i := range tuples {
		tuples[i] = dwarf.Tuple{
			Dims:    []string{fmt.Sprintf("k%d", rng.Intn(8)), fmt.Sprintf("k%d", rng.Intn(8)), fmt.Sprintf("k%d", rng.Intn(8))},
			Measure: float64(rng.Intn(50)),
		}
	}
	c, err := dwarf.New(dims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBothLayoutsAnswerQueries(t *testing.T) {
	cube := testCube(t, 1, 300)
	for _, layout := range []Layout{Hierarchical, Recursive} {
		t.Run(layout.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cube.dwf")
			size, err := Write(path, cube, layout)
			if err != nil {
				t.Fatal(err)
			}
			if size <= 0 {
				t.Fatalf("size = %d", size)
			}
			f, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if f.Layout() != layout {
				t.Errorf("layout = %v", f.Layout())
			}
			if f.Size() != size {
				t.Errorf("Size() = %d, wrote %d", f.Size(), size)
			}
			if f.NumSourceTuples() != cube.NumSourceTuples() {
				t.Errorf("tuples = %d", f.NumSourceTuples())
			}

			// Every base tuple and a wildcard battery answer identically.
			cube.Tuples(func(keys []string, agg dwarf.Aggregate) bool {
				got, err := f.Point(keys...)
				if err != nil || !got.Equal(agg) {
					t.Errorf("point %v: %v vs %v (%v)", keys, got, agg, err)
					return false
				}
				return true
			})
			for _, q := range [][]string{
				{dwarf.All, dwarf.All, dwarf.All},
				{"k1", dwarf.All, dwarf.All},
				{dwarf.All, "k2", "k3"},
				{"missing", dwarf.All, dwarf.All},
			} {
				want, _ := cube.Point(q...)
				got, err := f.Point(q...)
				if err != nil || !got.Equal(want) {
					t.Errorf("point %v: %v vs %v (%v)", q, got, want, err)
				}
			}
			// Range queries.
			want, _ := cube.Range([]dwarf.Selector{
				dwarf.SelectKeys("k1", "k2"), dwarf.SelectAll(), dwarf.SelectKeys("k0"),
			})
			got, err := f.RangeKeys([][]string{{"k1", "k2"}, nil, {"k0"}})
			if err != nil || !got.Equal(want) {
				t.Errorf("range: %v vs %v (%v)", got, want, err)
			}

			// Full round trip.
			back, err := f.ReadCube()
			if err != nil {
				t.Fatal(err)
			}
			cs, bs := cube.Stats(), back.Stats()
			if cs.Nodes != bs.Nodes || cs.Cells != bs.Cells {
				t.Errorf("round trip stats: %+v vs %+v", cs, bs)
			}
			if err := back.CheckInvariants(); err != nil {
				t.Errorf("invariants: %v", err)
			}
		})
	}
}

func TestLayoutSizesComparable(t *testing.T) {
	// Same cube, both layouts: identical node content, so sizes should be
	// equal up to varint id differences (within a few percent).
	cube := testCube(t, 3, 2000)
	dir := t.TempDir()
	h, err := Write(filepath.Join(dir, "h.dwf"), cube, Hierarchical)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Write(filepath.Join(dir, "r.dwf"), cube, Recursive)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(h) / float64(r)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("layout sizes diverge: hierarchical=%d recursive=%d", h, r)
	}
}

func TestCorruptionDetected(t *testing.T) {
	cube := testCube(t, 5, 100)
	path := filepath.Join(t.TempDir(), "c.dwf")
	if _, err := Write(path, cube, Hierarchical); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorruptFile) {
		t.Errorf("corrupt file opened: %v", err)
	}
	if err := os.WriteFile(path, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("truncated file opened")
	}
}

func TestBadArguments(t *testing.T) {
	cube := testCube(t, 7, 50)
	path := filepath.Join(t.TempDir(), "x.dwf")
	if _, err := Write(path, cube, Layout(9)); !errors.Is(err, ErrBadLayout) {
		t.Errorf("bad layout: %v", err)
	}
	if _, err := Write(path, cube, Hierarchical); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Point("only-one"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("short query: %v", err)
	}
	if _, err := f.RangeKeys([][]string{{"a"}}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("short range: %v", err)
	}
}
