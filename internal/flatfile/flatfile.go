// Package flatfile stores DWARF cubes as single flat files using the node
// clustering of Bao et al. [1] ("A Clustered Dwarf Structure to Speed up
// Queries on Data Cubes", JCSE 2007), the baseline the paper's §5.1
// storage comparison quotes. Nodes do not embed pointers; they reference
// children by unique id (the paper adopts this id-based referencing for its
// Cassandra schema), and an id→offset index maps ids to file positions.
// Two layouts are provided:
//
//   - Hierarchical: nodes clustered breadth-first, keeping the nodes of one
//     level adjacent — the range-query-friendly clustering.
//   - Recursive: nodes clustered depth-first, keeping each sub-dwarf
//     contiguous — the point-query-friendly clustering.
//
// Point queries read one node record per level through the offset index.
package flatfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/dwarf"
)

// Layout selects the clustering order.
type Layout uint8

// The two clusterings of Bao et al.
const (
	Hierarchical Layout = 1
	Recursive    Layout = 2
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Hierarchical:
		return "hierarchical"
	case Recursive:
		return "recursive"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

const (
	magic      = "DWRFFLAT"
	footerSize = 8 + 8 + 4 + 4
)

// Flat-file errors.
var (
	ErrCorruptFile = errors.New("flatfile: corrupt dwarf file")
	ErrBadLayout   = errors.New("flatfile: unknown layout")
	ErrNotFound    = errors.New("flatfile: key path not found")
	ErrBadQuery    = errors.New("flatfile: wrong number of query keys")
)

// Write stores the cube at path in the given layout and returns the file
// size in bytes.
//
// File format:
//
//	magic | layout u8 | ndims uvarint | dim names | numTuples uvarint
//	node records (order per layout), each:
//	  level uvarint | leaf u8 | ncells uvarint
//	  cells: key + (child id | aggregate) ; all: child id | aggregate
//	index: count uvarint, then (id uvarint, offset uvarint) sorted by id
//	footer: indexOff u64 | rootID u64 | crc u32 | count u32(=magic check)
func Write(path string, c *dwarf.Cube, layout Layout) (int64, error) {
	if layout != Hierarchical && layout != Recursive {
		return 0, ErrBadLayout
	}
	// Assign ids and order.
	ids := make(map[*dwarf.Node]uint64)
	var order []*dwarf.Node
	add := func(n *dwarf.Node) bool {
		ids[n] = uint64(len(order) + 1)
		order = append(order, n)
		return true
	}
	if layout == Hierarchical {
		c.Visit(add) // breadth-first
	} else {
		c.VisitDepthFirst(add) // sub-dwarf contiguous
	}

	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := &countingCRCWriter{w: bufio.NewWriterSize(f, 1<<16)}
	if _, err := w.Write([]byte(magic)); err != nil {
		return 0, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	writeAgg := func(a dwarf.Aggregate) error {
		var buf [8]byte
		for _, v := range []float64{a.Sum, a.Min, a.Max} {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
		return writeUvarint(uint64(a.Count))
	}
	if _, err := w.Write([]byte{byte(layout)}); err != nil {
		return 0, err
	}
	dims := c.Dims()
	if err := writeUvarint(uint64(len(dims))); err != nil {
		return 0, err
	}
	for _, d := range dims {
		if err := writeUvarint(uint64(len(d))); err != nil {
			return 0, err
		}
		if _, err := io.WriteString(w, d); err != nil {
			return 0, err
		}
	}
	if err := writeUvarint(uint64(c.NumSourceTuples())); err != nil {
		return 0, err
	}

	offsets := make([]uint64, len(order)+1)
	for _, n := range order {
		offsets[ids[n]] = w.count
		if err := writeUvarint(uint64(n.Level)); err != nil {
			return 0, err
		}
		leaf := byte(0)
		if n.Leaf {
			leaf = 1
		}
		if _, err := w.Write([]byte{leaf}); err != nil {
			return 0, err
		}
		if err := writeUvarint(uint64(len(n.Cells))); err != nil {
			return 0, err
		}
		for i := range n.Cells {
			cell := &n.Cells[i]
			if err := writeUvarint(uint64(len(cell.Key))); err != nil {
				return 0, err
			}
			if _, err := io.WriteString(w, cell.Key); err != nil {
				return 0, err
			}
			if n.Leaf {
				if err := writeAgg(cell.Agg); err != nil {
					return 0, err
				}
			} else if err := writeUvarint(ids[cell.Child]); err != nil {
				return 0, err
			}
		}
		if n.Leaf {
			if err := writeAgg(n.AllAgg); err != nil {
				return 0, err
			}
		} else {
			var allID uint64
			if n.AllChild != nil {
				allID = ids[n.AllChild]
			}
			if err := writeUvarint(allID); err != nil {
				return 0, err
			}
		}
	}

	indexOff := w.count
	if err := writeUvarint(uint64(len(order))); err != nil {
		return 0, err
	}
	for id := uint64(1); id <= uint64(len(order)); id++ {
		if err := writeUvarint(id); err != nil {
			return 0, err
		}
		if err := writeUvarint(offsets[id]); err != nil {
			return 0, err
		}
	}
	var rootID uint64
	if c.Root() != nil {
		rootID = ids[c.Root()]
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], indexOff)
	binary.LittleEndian.PutUint64(footer[8:], rootID)
	binary.LittleEndian.PutUint32(footer[16:], w.crc)
	binary.LittleEndian.PutUint32(footer[20:], crc32.ChecksumIEEE([]byte(magic)))
	if _, err := w.w.Write(footer[:]); err != nil {
		return 0, err
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

type countingCRCWriter struct {
	w     *bufio.Writer
	count uint64
	crc   uint32
}

func (w *countingCRCWriter) Write(p []byte) (int, error) {
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	n, err := w.w.Write(p)
	w.count += uint64(n)
	return n, err
}

// File is an open flat-file DWARF supporting point and range queries
// directly against the disk representation.
type File struct {
	f       *os.File
	layout  Layout
	dims    []string
	tuples  uint64
	offsets map[uint64]uint64
	rootID  uint64
	size    int64
	bodyEnd int64
}

// Open validates and indexes a flat-file DWARF.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ff, err := open(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return ff, nil
}

func open(f *os.File) (*File, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size < int64(len(magic)+footerSize) {
		return nil, fmt.Errorf("%w: too small", ErrCorruptFile)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], size-footerSize); err != nil {
		return nil, err
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:])
	rootID := binary.LittleEndian.Uint64(footer[8:])
	wantCRC := binary.LittleEndian.Uint32(footer[16:])
	body := size - footerSize
	if int64(indexOff) > body {
		return nil, fmt.Errorf("%w: bad index offset", ErrCorruptFile)
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, body)); err != nil {
		return nil, err
	}
	if h.Sum32() != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptFile)
	}

	r := bufio.NewReader(io.NewSectionReader(f, 0, body))
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil || string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptFile)
	}
	layoutByte, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	layout := Layout(layoutByte)
	if layout != Hierarchical && layout != Recursive {
		return nil, ErrBadLayout
	}
	ndims, err := binary.ReadUvarint(r)
	if err != nil || ndims == 0 || ndims > 1<<16 {
		return nil, fmt.Errorf("%w: bad dimension count", ErrCorruptFile)
	}
	dims := make([]string, ndims)
	for i := range dims {
		l, err := binary.ReadUvarint(r)
		if err != nil || l > 1<<20 {
			return nil, fmt.Errorf("%w: bad dim name", ErrCorruptFile)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		dims[i] = string(buf)
	}
	tuples, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}

	// Load the id → offset index.
	ir := bufio.NewReader(io.NewSectionReader(f, int64(indexOff), body-int64(indexOff)))
	count, err := binary.ReadUvarint(ir)
	if err != nil {
		return nil, fmt.Errorf("%w: bad index", ErrCorruptFile)
	}
	offsets := make(map[uint64]uint64, count)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadUvarint(ir)
		if err != nil {
			return nil, fmt.Errorf("%w: bad index id", ErrCorruptFile)
		}
		off, err := binary.ReadUvarint(ir)
		if err != nil {
			return nil, fmt.Errorf("%w: bad index offset", ErrCorruptFile)
		}
		offsets[id] = off
	}
	if rootID != 0 {
		if _, ok := offsets[rootID]; !ok {
			return nil, fmt.Errorf("%w: root id missing from index", ErrCorruptFile)
		}
	}
	return &File{
		f:       f,
		layout:  layout,
		dims:    dims,
		tuples:  tuples,
		offsets: offsets,
		rootID:  rootID,
		size:    size,
		bodyEnd: int64(indexOff),
	}, nil
}

// Layout reports the clustering layout.
func (ff *File) Layout() Layout { return ff.layout }

// Dims returns the dimension names.
func (ff *File) Dims() []string { return append([]string(nil), ff.dims...) }

// Size returns the file size in bytes.
func (ff *File) Size() int64 { return ff.size }

// NumSourceTuples returns the stored fact count.
func (ff *File) NumSourceTuples() int { return int(ff.tuples) }

// Close releases the file handle.
func (ff *File) Close() error { return ff.f.Close() }

// fileNode is one node record decoded from disk.
type fileNode struct {
	level  int
	leaf   bool
	keys   []string
	kids   []uint64
	aggs   []dwarf.Aggregate
	allID  uint64
	allAgg dwarf.Aggregate
}

func (ff *File) readNode(id uint64) (*fileNode, error) {
	off, ok := ff.offsets[id]
	if !ok {
		return nil, fmt.Errorf("%w: node id %d", ErrCorruptFile, id)
	}
	r := bufio.NewReaderSize(io.NewSectionReader(ff.f, int64(off), ff.bodyEnd-int64(off)), 4096)
	readAgg := func() (dwarf.Aggregate, error) {
		var a dwarf.Aggregate
		var buf [8]byte
		for _, dst := range []*float64{&a.Sum, &a.Min, &a.Max} {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return a, err
			}
			*dst = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
		cnt, err := binary.ReadUvarint(r)
		if err != nil {
			return a, err
		}
		a.Count = int64(cnt)
		return a, nil
	}
	level, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	leafByte, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	ncells, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n := &fileNode{level: int(level), leaf: leafByte == 1}
	for i := uint64(0); i < ncells; i++ {
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return nil, err
		}
		n.keys = append(n.keys, string(key))
		if n.leaf {
			agg, err := readAgg()
			if err != nil {
				return nil, err
			}
			n.aggs = append(n.aggs, agg)
		} else {
			kid, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			n.kids = append(n.kids, kid)
		}
	}
	if n.leaf {
		if n.allAgg, err = readAgg(); err != nil {
			return nil, err
		}
	} else if n.allID, err = binary.ReadUvarint(r); err != nil {
		return nil, err
	}
	return n, nil
}

// Point answers a point/ALL query straight off the file: one node record
// read per dimension level.
func (ff *File) Point(keys ...string) (dwarf.Aggregate, error) {
	if len(keys) != len(ff.dims) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d, want %d", ErrBadQuery, len(keys), len(ff.dims))
	}
	id := ff.rootID
	for l := 0; l < len(ff.dims); l++ {
		if id == 0 {
			return dwarf.Aggregate{}, nil
		}
		n, err := ff.readNode(id)
		if err != nil {
			return dwarf.Aggregate{}, err
		}
		if keys[l] == dwarf.All {
			if n.leaf {
				return n.allAgg, nil
			}
			id = n.allID
			continue
		}
		found := -1
		for i, k := range n.keys {
			if k == keys[l] {
				found = i
				break
			}
		}
		if found < 0 {
			return dwarf.Aggregate{}, nil
		}
		if n.leaf {
			return n.aggs[found], nil
		}
		id = n.kids[found]
	}
	return dwarf.Aggregate{}, nil
}

// RangeKeys aggregates over explicit key sets per dimension (nil set =
// ALL), reading nodes from disk as it descends.
func (ff *File) RangeKeys(sets [][]string) (dwarf.Aggregate, error) {
	if len(sets) != len(ff.dims) {
		return dwarf.Aggregate{}, fmt.Errorf("%w: got %d, want %d", ErrBadQuery, len(sets), len(ff.dims))
	}
	return ff.rangeWalk(ff.rootID, sets)
}

func (ff *File) rangeWalk(id uint64, sets [][]string) (dwarf.Aggregate, error) {
	if id == 0 {
		return dwarf.Aggregate{}, nil
	}
	n, err := ff.readNode(id)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	set := sets[0]
	if set == nil {
		if n.leaf {
			return n.allAgg, nil
		}
		return ff.rangeWalk(n.allID, sets[1:])
	}
	want := make(map[string]bool, len(set))
	for _, k := range set {
		want[k] = true
	}
	var agg dwarf.Aggregate
	for i, k := range n.keys {
		if !want[k] {
			continue
		}
		if n.leaf {
			agg = dwarf.MergeAggregates(agg, n.aggs[i])
		} else {
			sub, err := ff.rangeWalk(n.kids[i], sets[1:])
			if err != nil {
				return dwarf.Aggregate{}, err
			}
			agg = dwarf.MergeAggregates(agg, sub)
		}
	}
	return agg, nil
}

// ReadCube materializes the whole file back into an in-memory cube
// (round-trip support).
func (ff *File) ReadCube() (*dwarf.Cube, error) {
	nodes := make(map[uint64]*dwarf.Node, len(ff.offsets))
	// First pass: create shells.
	for id := range ff.offsets {
		nodes[id] = dwarf.NewNode(int64(id))
	}
	for id := range ff.offsets {
		fn, err := ff.readNode(id)
		if err != nil {
			return nil, err
		}
		n := nodes[id]
		for i, k := range fn.keys {
			cell := dwarf.Cell{Key: k}
			if fn.leaf {
				cell.Agg = fn.aggs[i]
			} else {
				child, ok := nodes[fn.kids[i]]
				if !ok {
					return nil, fmt.Errorf("%w: dangling child %d", ErrCorruptFile, fn.kids[i])
				}
				cell.Child = child
			}
			n.Cells = append(n.Cells, cell)
		}
		if fn.leaf {
			n.AllAgg = fn.allAgg
		} else if fn.allID != 0 {
			child, ok := nodes[fn.allID]
			if !ok {
				return nil, fmt.Errorf("%w: dangling ALL child %d", ErrCorruptFile, fn.allID)
			}
			n.AllChild = child
		}
	}
	root, ok := nodes[ff.rootID]
	if !ok {
		return nil, fmt.Errorf("%w: missing root", ErrCorruptFile)
	}
	return dwarf.FromParts(ff.dims, root, int(ff.tuples), false)
}
