package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/dwarf"
)

// The serve experiment measures the two costs that dominate a query
// service: how long it takes to make a cube servable (open latency — full
// Decode vs a zero-copy OpenView), and how fast it answers once hot
// (queries/sec for the decoded Cube vs the CubeView over the same battery).

// ServeResult is one preset's serving-path measurement.
type ServeResult struct {
	Preset       string
	EncodedBytes int64
	Queries      int

	// Open latency, best of repeats.
	DecodeOpen  time.Duration // dwarf.DecodeBytes: materialize the node graph
	ViewOpen    time.Duration // dwarf.OpenView: checksum + trailer index
	TrustedOpen time.Duration // dwarf.OpenViewTrusted: trailer index only
	ScanOpen    time.Duration // OpenView without trailer: checksum + lazy scan

	// Hot query throughput over the same point battery.
	CubeQPS float64
	ViewQPS float64
}

// OpenSpeedup is Decode open latency over (checksummed) view open latency.
func (r ServeResult) OpenSpeedup() float64 {
	if r.ViewOpen <= 0 {
		return 0
	}
	return float64(r.DecodeOpen) / float64(r.ViewOpen)
}

// RunServe measures the serving path for each preset: encode once (with
// the offset trailer), then time every open path and the hot query
// batteries, verifying along the way that the view answers the battery
// identically to the decoded cube.
func RunServe(presets []string, queries, repeats int) ([]ServeResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	if queries < 1 {
		queries = 400
	}
	best := func(fn func() error) (time.Duration, error) {
		var b time.Duration
		for r := 0; r < repeats; r++ {
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(start); r == 0 || d < b {
				b = d
			}
		}
		return b, nil
	}
	var out []ServeResult
	for _, preset := range presets {
		cube, err := DatasetCube(preset)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := cube.EncodeIndexed(&buf); err != nil {
			return nil, err
		}
		indexed := buf.Bytes()
		plain, _, err := dwarf.SplitEncoded(indexed)
		if err != nil {
			return nil, err
		}

		// A deterministic point battery with rotating wildcard masks, the
		// same shape the on-store query experiment uses.
		var battery [][]string
		cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
			q := append([]string(nil), keys...)
			switch len(battery) % 4 {
			case 1:
				q[len(q)-1] = dwarf.All
			case 2:
				q[len(q)-1], q[len(q)-2] = dwarf.All, dwarf.All
			case 3:
				q[0] = dwarf.All
			}
			battery = append(battery, q)
			return len(battery) < queries
		})

		res := ServeResult{Preset: preset, EncodedBytes: int64(len(indexed)), Queries: len(battery)}
		if res.DecodeOpen, err = best(func() error {
			_, err := dwarf.DecodeBytes(indexed)
			return err
		}); err != nil {
			return nil, err
		}
		if res.ViewOpen, err = best(func() error {
			_, err := dwarf.OpenView(indexed)
			return err
		}); err != nil {
			return nil, err
		}
		if res.TrustedOpen, err = best(func() error {
			_, err := dwarf.OpenViewTrusted(indexed)
			return err
		}); err != nil {
			return nil, err
		}
		wild := make([]string, cube.NumDims())
		for i := range wild {
			wild[i] = dwarf.All
		}
		if res.ScanOpen, err = best(func() error {
			v, err := dwarf.OpenView(plain)
			if err != nil {
				return err
			}
			// One wildcard point forces the lazy index scan and nothing
			// more, so this times exactly the no-trailer open cost.
			_, err = v.Point(wild...)
			return err
		}); err != nil {
			return nil, err
		}

		view, err := dwarf.OpenView(indexed)
		if err != nil {
			return nil, err
		}
		// Correctness gate: the battery must answer identically both ways.
		for _, q := range battery {
			want, err := cube.Point(q...)
			if err != nil {
				return nil, err
			}
			got, err := view.Point(q...)
			if err != nil {
				return nil, err
			}
			if !got.Equal(want) {
				return nil, fmt.Errorf("bench: serve answer mismatch on %s for %v: view %v, cube %v",
					preset, q, got, want)
			}
		}
		cubeTime, err := best(func() error {
			for _, q := range battery {
				if _, err := cube.Point(q...); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		viewTime, err := best(func() error {
			for _, q := range battery {
				if _, err := view.Point(q...); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if cubeTime > 0 {
			res.CubeQPS = float64(len(battery)) / cubeTime.Seconds()
		}
		if viewTime > 0 {
			res.ViewQPS = float64(len(battery)) / viewTime.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatServe renders the serving-path comparison.
func FormatServe(results []ServeResult) *Table {
	t := NewTable("Serving path — open latency and hot query throughput, Cube vs CubeView",
		"Dataset", "Encoded MB", "Decode open", "View open", "View open (trusted)", "View open (no trailer)",
		"Open speedup", "Cube q/s", "View q/s")
	for _, r := range results {
		t.AddRow(r.Preset,
			fmt.Sprintf("%.1f", float64(r.EncodedBytes)/(1<<20)),
			r.DecodeOpen.Round(10*time.Microsecond).String(),
			r.ViewOpen.Round(time.Microsecond).String(),
			r.TrustedOpen.Round(time.Microsecond).String(),
			r.ScanOpen.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.0fx", r.OpenSpeedup()),
			fmt.Sprintf("%.0f", r.CubeQPS),
			fmt.Sprintf("%.0f", r.ViewQPS))
	}
	return t
}
