package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dwarf"
	"repro/internal/serve"
)

// The http experiment measures the end-to-end serving path the way a
// dashboard fleet hits it: a real dwarfd handler behind a real TCP
// listener, N persistent connections issuing a query-shape mix, measured
// twice — once with the append encoders (the default) and once with
// Options.ReflectJSON (the legacy encoding/json path) — so BENCH_http.json
// carries a before/after trajectory for the serving tier the same way
// BENCH_query.json does for the kernel.
//
// The load generator is deliberately not net/http.Client: each connection
// runs one goroutine over a raw TCP conn with preformatted request bytes
// and a zero-allocation response reader (Content-Length and chunked both
// handled), so the process-wide runtime.MemStats delta divided by requests
// is dominated by the server path under test, not by client-side plumbing.

// HTTPOptions configures the load experiment.
type HTTPOptions struct {
	// Preset is the dataset served (Day when empty).
	Preset string
	// Conns is the concurrency sweep (1, 16, 64 when empty).
	Conns []int
	// Requests is the total request budget per run (12000 when zero),
	// split evenly across the run's connections.
	Requests int
	// Warmup requests are issued (and discarded) before each measured run.
	Warmup int
}

// HTTPHandlerResult is one handler-only measurement: the request path with
// the kernel and encoder on it but without net/http's per-connection
// machinery (read loop, request parse, goroutine), which costs a fixed
// ~30 allocs/request in both modes and would otherwise drown the encoder
// delta at the wire level.
type HTTPHandlerResult struct {
	Preset      string  `json:"preset"`
	Encoder     string  `json:"encoder"`
	Shape       string  `json:"shape"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// HTTPResult is one (encoder, workload, connections) load measurement.
type HTTPResult struct {
	Preset           string  `json:"preset"`
	Encoder          string  `json:"encoder"`  // "append" or "reflect"
	Workload         string  `json:"workload"` // "point" or "mixed"
	Connections      int     `json:"connections"`
	Requests         int     `json:"requests"`
	Seconds          float64 `json:"seconds"`
	RequestsPerSec   float64 `json:"requests_per_sec"`
	AllocsPerReq     float64 `json:"allocs_per_request"`
	AllocBytesPerReq float64 `json:"alloc_bytes_per_request"`
	P50Micros        float64 `json:"p50_us"`
	P99Micros        float64 `json:"p99_us"`
	P999Micros       float64 `json:"p999_us"`
}

// RunHTTPLoad serves the preset's indexed cube from a temp directory over
// 127.0.0.1 and sweeps encoder × workload × connections, then measures the
// handler path alone for the headline allocs-per-request comparison.
func RunHTTPLoad(opts HTTPOptions, progress func(string)) ([]HTTPResult, []HTTPHandlerResult, error) {
	if opts.Preset == "" {
		opts.Preset = "Day"
	}
	if len(opts.Conns) == 0 {
		opts.Conns = []int{1, 16, 64}
	}
	if opts.Requests <= 0 {
		opts.Requests = 12000
	}
	if opts.Warmup <= 0 {
		opts.Warmup = 500
	}

	cube, err := DatasetCube(opts.Preset)
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "dwarfhttp-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	// Queries use the canonical file name (as listed by /cubes): the
	// extensionless convenience alias costs an extra stat per request.
	cubeName := sanitize(opts.Preset) + ".dwarf"
	var buf bytes.Buffer
	if err := cube.EncodeIndexed(&buf); err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, cubeName), buf.Bytes(), 0o644); err != nil {
		return nil, nil, err
	}

	var out []HTTPResult
	var handler []HTTPHandlerResult
	for _, encoder := range []string{"append", "reflect"} {
		s, err := serve.New(serve.Options{Dir: dir, ReflectJSON: encoder == "reflect"})
		if err != nil {
			return nil, nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("http: %s %s handler-only shapes", opts.Preset, encoder))
		}
		for _, sh := range handlerShapes(cubeName, cube) {
			r := measureHandler(s.Handler(), sh)
			r.Preset, r.Encoder = opts.Preset, encoder
			handler = append(handler, r)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		srv := serve.NewHTTPServer("", s.Handler())
		go srv.Serve(ln)
		addr := ln.Addr().String()

		workloads := []struct {
			name string
			reqs [][]byte
		}{
			{"point", pointRequests(addr, cubeName, cube, 64)},
			{"mixed", mixedRequests(addr, cubeName, cube, 64)},
		}
		for _, wl := range workloads {
			for _, conns := range opts.Conns {
				if progress != nil {
					progress(fmt.Sprintf("http: %s %s %s conns=%d", opts.Preset, encoder, wl.name, conns))
				}
				st, err := measureHTTP(addr, wl.reqs, conns, opts.Requests, opts.Warmup)
				if err != nil {
					srv.Close()
					return nil, nil, fmt.Errorf("http %s/%s/%d: %w", encoder, wl.name, conns, err)
				}
				out = append(out, HTTPResult{
					Preset: opts.Preset, Encoder: encoder, Workload: wl.name,
					Connections: conns, Requests: st.requests,
					Seconds:          st.seconds,
					RequestsPerSec:   float64(st.requests) / st.seconds,
					AllocsPerReq:     float64(st.allocs) / float64(st.requests),
					AllocBytesPerReq: float64(st.bytes) / float64(st.requests),
					P50Micros:        st.percentile(0.50),
					P99Micros:        st.percentile(0.99),
					P999Micros:       st.percentile(0.999),
				})
			}
		}
		srv.Close()
	}
	return out, handler, nil
}

// handlerShape is one request template for the handler-only benchmark.
type handlerShape struct {
	name   string
	method string
	path   string
	body   []byte
}

// handlerShapes builds the handler-only battery: the fully keyed point GET
// (the latency-critical dashboard shape) and a paged group-by POST.
func handlerShapes(cubeName string, cube *dwarf.Cube) []handlerShape {
	var keys []string
	cube.Tuples(func(k []string, _ dwarf.Aggregate) bool {
		keys = append([]string(nil), k...)
		return false
	})
	var path strings.Builder
	path.WriteString("/query/point?cube=")
	path.WriteString(cubeName)
	for _, k := range keys {
		path.WriteString("&key=")
		path.WriteString(url.QueryEscape(k))
	}
	dims := cube.Dims()
	dim := dims[len(dims)-1]
	for _, d := range dims {
		if d == "Station" {
			dim = d
		}
	}
	return []handlerShape{
		{name: "point", method: http.MethodGet, path: path.String()},
		{name: "groupby", method: http.MethodPost, path: "/query/groupby",
			body: []byte(fmt.Sprintf(`{"cube":%q,"dim":%q,"limit":50}`, cubeName, dim))},
	}
}

// nullResponseWriter satisfies http.ResponseWriter while discarding the
// body, so the benchmark counts only the handler's own work.
type nullResponseWriter struct {
	h http.Header
	n int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
func (w *nullResponseWriter) WriteHeader(int) {}

// measureHandler benchmarks h.ServeHTTP for one request shape. POST bodies
// are re-armed each iteration with a reused reader-over-bytes, which costs
// the same two allocations in both encoder modes.
func measureHandler(h http.Handler, sh handlerShape) HTTPHandlerResult {
	w := &nullResponseWriter{h: make(http.Header, 4)}
	req := httptest.NewRequest(sh.method, sh.path, nil)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sh.body != nil {
				req.Body = io.NopCloser(bytes.NewReader(sh.body))
				req.ContentLength = int64(len(sh.body))
			}
			h.ServeHTTP(w, req)
		}
	})
	return HTTPHandlerResult{
		Shape:       sh.name,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// pointRequests builds the GET point battery: real fact coordinates with
// rotating ALL wildcards, exactly the kernel benchmark's mix.
func pointRequests(addr, cubeName string, cube *dwarf.Cube, n int) [][]byte {
	var points [][]string
	cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
		q := append([]string(nil), keys...)
		switch len(points) % 4 {
		case 1:
			q[len(q)-1] = dwarf.All
		case 2:
			q[len(q)-1], q[len(q)-2] = dwarf.All, dwarf.All
		case 3:
			q[0] = dwarf.All
		}
		points = append(points, q)
		return len(points) < n
	})
	var out [][]byte
	for _, keys := range points {
		var path strings.Builder
		path.WriteString("/query/point?cube=")
		path.WriteString(cubeName)
		for _, k := range keys {
			path.WriteString("&key=")
			path.WriteString(url.QueryEscape(k))
		}
		out = append(out, rawGET(addr, path.String()))
	}
	return out
}

// mixedRequests is the dashboard mix: mostly points, plus a paged group-by,
// a top-k, and a range per cycle.
func mixedRequests(addr, cubeName string, cube *dwarf.Cube, n int) [][]byte {
	out := pointRequests(addr, cubeName, cube, n)
	dims := cube.Dims()
	station := 0
	for i, d := range dims {
		if d == "Station" {
			station = i
		}
	}
	post := func(path, body string) {
		out = append(out, rawPOST(addr, path, body))
	}
	// One of each keyed shape per 8 points, spread through the list.
	for i := 0; i < len(out); i += 9 {
		post("/query/groupby", fmt.Sprintf(`{"cube":%q,"dim":%q,"limit":50}`, cubeName, dims[station]))
		post("/query/topk", fmt.Sprintf(`{"cube":%q,"dim":%q,"k":10,"by":"sum"}`, cubeName, dims[station]))
		post("/query/range", fmt.Sprintf(`{"cube":%q,"selectors":[{"lo":"area-1","hi":"area-6"}]}`, cubeName))
	}
	// Deterministic shuffle so shapes interleave instead of trailing.
	for i := len(out) - 1; i > 0; i-- {
		j := (i*2654435761 + 17) % (i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func rawGET(addr, path string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\n\r\n", path, addr))
}

func rawPOST(addr, path, body string) []byte {
	return []byte(fmt.Sprintf(
		"POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		path, addr, len(body), body))
}

// httpRunStats aggregates one measured run.
type httpRunStats struct {
	requests int
	seconds  float64
	allocs   uint64
	bytes    uint64
	latNs    []int64 // sorted ascending after the run
}

func (st *httpRunStats) percentile(q float64) float64 {
	if len(st.latNs) == 0 {
		return 0
	}
	i := int(q * float64(len(st.latNs)))
	if i >= len(st.latNs) {
		i = len(st.latNs) - 1
	}
	return float64(st.latNs[i]) / 1e3
}

// measureHTTP drives total requests over conns persistent connections and
// returns merged latencies plus the process-wide allocation delta.
func measureHTTP(addr string, reqs [][]byte, conns, total, warmup int) (*httpRunStats, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no request templates")
	}
	if err := httpWorker(addr, reqs, warmup, 0, nil); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	perConn := total / conns
	if perConn < 1 {
		perConn = 1
	}
	lats := make([][]int64, conns)
	errs := make([]error, conns)
	for i := range lats {
		lats[i] = make([]int64, perConn)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = httpWorker(addr, reqs, perConn, i, lats[i])
		}(i)
	}
	wg.Wait()
	seconds := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st := &httpRunStats{
		requests: perConn * conns,
		seconds:  seconds,
		allocs:   m1.Mallocs - m0.Mallocs,
		bytes:    m1.TotalAlloc - m0.TotalAlloc,
	}
	for _, l := range lats {
		st.latNs = append(st.latNs, l...)
	}
	sort.Slice(st.latNs, func(a, b int) bool { return st.latNs[a] < st.latNs[b] })
	return st, nil
}

// httpWorker owns one keep-alive connection: write request, read response,
// record latency. offset decorrelates the template cursor across workers.
func httpWorker(addr string, reqs [][]byte, n, offset int, latNs []int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	for i := 0; i < n; i++ {
		req := reqs[(i+offset)%len(reqs)]
		start := time.Now()
		if _, err := bw.Write(req); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := readHTTPResponse(br); err != nil {
			return err
		}
		if latNs != nil {
			latNs[i] = int64(time.Since(start))
		}
	}
	return nil
}

var (
	http200       = []byte("HTTP/1.1 200")
	hdrContentLen = []byte("content-length:")
	hdrChunked    = []byte("transfer-encoding:")
)

// readHTTPResponse consumes exactly one keep-alive response without
// allocating: status line, headers, then a Content-Length or chunked body.
// Non-200 statuses are load-generator bugs and fail the run.
func readHTTPResponse(br *bufio.Reader) error {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(line, http200) {
		return fmt.Errorf("response status %q", strings.TrimSpace(string(line)))
	}
	contentLen := -1
	chunked := false
	for {
		line, err = br.ReadSlice('\n')
		if err != nil {
			return err
		}
		if len(line) <= 2 { // blank line: end of headers
			break
		}
		if len(line) > len(hdrContentLen) && asciiEqualFold(line[:len(hdrContentLen)], hdrContentLen) {
			contentLen = parseIntBytes(bytes.TrimSpace(line[len(hdrContentLen):]))
		} else if len(line) > len(hdrChunked) && asciiEqualFold(line[:len(hdrChunked)], hdrChunked) {
			chunked = bytes.Contains(line, []byte("chunked"))
		}
	}
	if chunked {
		return discardChunks(br)
	}
	if contentLen < 0 {
		return fmt.Errorf("response without content-length or chunking")
	}
	_, err = br.Discard(contentLen)
	return err
}

// discardChunks consumes a chunked body: hex size line, chunk, CRLF, until
// the zero chunk's trailing CRLF.
func discardChunks(br *bufio.Reader) error {
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			return err
		}
		size := 0
		for _, c := range bytes.TrimSpace(line) {
			switch {
			case c >= '0' && c <= '9':
				size = size<<4 | int(c-'0')
			case c >= 'a' && c <= 'f':
				size = size<<4 | int(c-'a'+10)
			case c >= 'A' && c <= 'F':
				size = size<<4 | int(c-'A'+10)
			default:
				return fmt.Errorf("bad chunk size line %q", line)
			}
		}
		if _, err := br.Discard(size + 2); err != nil { // chunk + CRLF
			return err
		}
		if size == 0 {
			return nil
		}
	}
}

func asciiEqualFold(a, b []byte) bool {
	for i := range a {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func parseIntBytes(b []byte) int {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// FormatHTTPLoad renders the load sweep.
func FormatHTTPLoad(results []HTTPResult) *Table {
	t := NewTable("HTTP serving path — append encoders vs reflection (encoding/json)",
		"Dataset", "Encoder", "Workload", "Conns", "Requests", "req/s",
		"p50 µs", "p99 µs", "p99.9 µs", "allocs/req", "B/req")
	for _, r := range results {
		t.AddRow(r.Preset, r.Encoder, r.Workload,
			fmt.Sprintf("%d", r.Connections),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.0f", r.RequestsPerSec),
			fmt.Sprintf("%.0f", r.P50Micros),
			fmt.Sprintf("%.0f", r.P99Micros),
			fmt.Sprintf("%.0f", r.P999Micros),
			fmt.Sprintf("%.1f", r.AllocsPerReq),
			fmt.Sprintf("%.0f", r.AllocBytesPerReq))
	}
	return t
}

// FormatHTTPHandler renders the handler-only comparison, where the encoder
// delta is visible without net/http's fixed per-connection overhead.
func FormatHTTPHandler(results []HTTPHandlerResult) *Table {
	t := NewTable("HTTP handler path only (no TCP / connection machinery)",
		"Dataset", "Encoder", "Shape", "ns/req", "allocs/req", "B/req")
	for _, r := range results {
		t.AddRow(r.Preset, r.Encoder, r.Shape,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp))
	}
	return t
}

// httpReport is the BENCH_http.json schema, the serving tier's counterpart
// to BENCH_query.json.
type httpReport struct {
	Experiment string              `json:"experiment"`
	Generated  string              `json:"generated"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Handler    []HTTPHandlerResult `json:"handler"`
	Results    []HTTPResult        `json:"results"`
}

// WriteHTTPJSON writes the load results as JSON to path.
func WriteHTTPJSON(path string, results []HTTPResult, handler []HTTPHandlerResult) error {
	rep := httpReport{
		Experiment: "http",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Handler:    handler,
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
