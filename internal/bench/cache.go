package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

// The cache experiment measures the live store's planned query path: the
// plain every-segment fan-out, the rollup-routed fan-out, and warm
// hot-result cache hits, on the same sealed store. Bit-identical answers
// across all three configurations are a hard gate before anything is
// timed. A budget ladder then replays a fixed working set of distinct
// grouped queries round-robin under growing cache budgets, reporting the
// measured hit rate — the thrash-to-resident transition as the working
// set starts to fit.

// CacheShapeResult compares one query shape across the three paths.
type CacheShapeResult struct {
	Shape         string  `json:"shape"`
	UncachedNs    float64 `json:"uncached_ns_per_op"`
	RollupNs      float64 `json:"rollup_ns_per_op"`
	WarmNs        float64 `json:"warm_ns_per_op"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	RollupSpeedup float64 `json:"rollup_speedup"`
}

// CacheLadderRung is one cache-budget point of the hit-rate ladder.
type CacheLadderRung struct {
	CacheBytes      int64   `json:"cache_bytes"`
	DistinctQueries int     `json:"distinct_queries"`
	Requests        int     `json:"requests"`
	Hits            int64   `json:"hits"`
	Misses          int64   `json:"misses"`
	HitRate         float64 `json:"hit_rate"`
	NsPerRequest    float64 `json:"ns_per_request"`
}

// CacheResultSet is one preset's cache measurements.
type CacheResultSet struct {
	Preset   string             `json:"preset"`
	Tuples   int                `json:"tuples"`
	Segments int                `json:"segments"`
	Shapes   []CacheShapeResult `json:"shapes"`
	Ladder   []CacheLadderRung  `json:"ladder"`
}

// cacheBenchSegments is how many sealed segments the benchmark store is
// split into — enough that the uncached fan-out does real merge work.
const cacheBenchSegments = 8

// cacheBenchRollups is the rollup configuration: one subset per grouped
// shape the battery runs, so the planner has a covering rollup for each.
func cacheBenchRollups() [][]string {
	return [][]string{{"Area", "Station"}, {"Area", "Status"}}
}

// buildCacheBenchDir seals a preset's tuples into cacheBenchSegments
// segments in dir, leaving the memtable empty, then closes the store. The
// experiment reopens the same directory once per configuration.
func buildCacheBenchDir(dir string, tuples []dwarf.Tuple) error {
	s, err := cubestore.Open(dir, cubestore.Options{
		Dims:               smartcity.BikeDims,
		NoSync:             true,
		DisableAutoCompact: true,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	per := (len(tuples) + cacheBenchSegments - 1) / cacheBenchSegments
	for off := 0; off < len(tuples); off += per {
		end := min(off+per, len(tuples))
		if err := s.Append(tuples[off:end]); err != nil {
			return err
		}
		if err := s.Seal(); err != nil {
			return err
		}
	}
	return s.Close()
}

// cacheBenchQueries is the shape battery: GroupBy over Station, a Pivot
// over (Area, Status), and TopK-10 stations, all unrestricted — the
// queries the rollup subsets cover.
type cacheBenchQueries struct {
	station, area, status int
	allSels               []dwarf.Selector
	spec                  dwarf.TopKSpec
}

func newCacheBenchQueries() cacheBenchQueries {
	idx := func(name string) int {
		for i, d := range smartcity.BikeDims {
			if d == name {
				return i
			}
		}
		return 0
	}
	return cacheBenchQueries{
		station: idx("Station"),
		area:    idx("Area"),
		status:  idx("Status"),
		allSels: make([]dwarf.Selector, len(smartcity.BikeDims)),
		spec:    dwarf.TopKSpec{K: 10, By: dwarf.BySum},
	}
}

// answers captures one store's full battery output for the differential
// gate.
type cacheBenchAnswers struct {
	groups map[string]dwarf.Aggregate
	rows   []dwarf.PivotGroup
	topk   []dwarf.GroupEntry
}

func (q cacheBenchQueries) run(s *cubestore.Store) (cacheBenchAnswers, error) {
	var a cacheBenchAnswers
	var err error
	if a.groups, err = s.GroupBy(q.station, q.allSels); err != nil {
		return a, err
	}
	if a.rows, err = s.Pivot([]int{q.area, q.status}, q.allSels); err != nil {
		return a, err
	}
	a.topk, err = s.TopK(q.station, q.allSels, q.spec)
	return a, err
}

func (a cacheBenchAnswers) equal(b cacheBenchAnswers) error {
	if len(a.groups) != len(b.groups) {
		return fmt.Errorf("group counts diverged: %d vs %d", len(a.groups), len(b.groups))
	}
	for k, agg := range a.groups {
		if !b.groups[k].Equal(agg) {
			return fmt.Errorf("group %q diverged: %+v vs %+v", k, agg, b.groups[k])
		}
	}
	if len(a.rows) != len(b.rows) {
		return fmt.Errorf("pivot row counts diverged: %d vs %d", len(a.rows), len(b.rows))
	}
	for i := range a.rows {
		if !slices.Equal(a.rows[i].Keys, b.rows[i].Keys) || !a.rows[i].Agg.Equal(b.rows[i].Agg) {
			return fmt.Errorf("pivot row %d diverged: %+v vs %+v", i, a.rows[i], b.rows[i])
		}
	}
	if len(a.topk) != len(b.topk) {
		return fmt.Errorf("topk lengths diverged: %d vs %d", len(a.topk), len(b.topk))
	}
	for i := range a.topk {
		if a.topk[i].Key != b.topk[i].Key || !a.topk[i].Agg.Equal(b.topk[i].Agg) {
			return fmt.Errorf("topk entry %d diverged: %+v vs %+v", i, a.topk[i], b.topk[i])
		}
	}
	return nil
}

// RunCacheBench measures the serving-cache stack for each preset.
func RunCacheBench(presets []string, requests int, progress func(string)) ([]CacheResultSet, error) {
	if requests <= 0 {
		requests = 2000
	}
	q := newCacheBenchQueries()
	var out []CacheResultSet
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "cachebench-"+preset+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if progress != nil {
			progress(fmt.Sprintf("cache: %s build (%d tuples)", preset, len(tuples)))
		}
		if err := buildCacheBenchDir(dir, tuples); err != nil {
			return nil, err
		}
		set := CacheResultSet{Preset: preset, Tuples: len(tuples)}

		// Pass 1 — uncached baseline: plain fan-out across every segment.
		uncached, uncachedAnswers, err := measureCachePass(dir, cubestore.Options{}, q, nil, progress, "cache: "+preset+" uncached")
		if err != nil {
			return nil, err
		}

		// Pass 2 — rollup-routed, no result cache: every query replans and
		// remerges, but over the pre-aggregated subset cubes.
		rollup, rollupAnswers, err := measureCachePass(dir, cubestore.Options{Rollups: cacheBenchRollups()},
			q, func(s *cubestore.Store) error {
				if _, err := s.Compact(); err != nil {
					return err
				}
				st := s.Stats()
				set.Segments = len(st.Segments)
				if len(st.Rollups) != len(cacheBenchRollups()) {
					return fmt.Errorf("cache bench: %d rollups built, want %d", len(st.Rollups), len(cacheBenchRollups()))
				}
				return nil
			}, progress, "cache: "+preset+" rollup")
		if err != nil {
			return nil, err
		}

		// Pass 3 — warm result cache: after one populating run, every query
		// is a generation-checked map hit.
		warm, warmAnswers, err := measureCachePass(dir,
			cubestore.Options{CacheBytes: 64 << 20, Rollups: cacheBenchRollups()},
			q, nil, progress, "cache: "+preset+" warm")
		if err != nil {
			return nil, err
		}

		// Hard differential gate: all three paths answered identically.
		if err := uncachedAnswers.equal(rollupAnswers); err != nil {
			return nil, fmt.Errorf("cache bench %s: rollup path diverged from fan-out: %w", preset, err)
		}
		if err := uncachedAnswers.equal(warmAnswers); err != nil {
			return nil, fmt.Errorf("cache bench %s: cached path diverged from fan-out: %w", preset, err)
		}

		for i, shape := range []string{"groupby", "pivot", "topk"} {
			set.Shapes = append(set.Shapes, CacheShapeResult{
				Shape:         shape,
				UncachedNs:    uncached[i].NsPerOp,
				RollupNs:      rollup[i].NsPerOp,
				WarmNs:        warm[i].NsPerOp,
				WarmSpeedup:   uncached[i].NsPerOp / warm[i].NsPerOp,
				RollupSpeedup: uncached[i].NsPerOp / rollup[i].NsPerOp,
			})
		}

		ladder, err := runCacheLadder(dir, q, requests, progress, preset)
		if err != nil {
			return nil, err
		}
		set.Ladder = ladder
		out = append(out, set)
	}
	return out, nil
}

// measureCachePass opens the benchmark store with opts, runs setup, takes
// the differential-gate battery (which also warms any configured cache),
// measures each shape, and closes the store.
func measureCachePass(dir string, opts cubestore.Options, q cacheBenchQueries,
	setup func(*cubestore.Store) error, progress func(string), label string) ([]QueryShapeCost, cacheBenchAnswers, error) {
	opts.NoSync = true
	opts.DisableAutoCompact = true
	s, err := cubestore.Open(dir, opts)
	if err != nil {
		return nil, cacheBenchAnswers{}, err
	}
	defer s.Close()
	if setup != nil {
		if err := setup(s); err != nil {
			return nil, cacheBenchAnswers{}, err
		}
	}
	answers, err := q.run(s)
	if err != nil {
		return nil, cacheBenchAnswers{}, err
	}
	if progress != nil {
		progress(label)
	}
	var costs []QueryShapeCost
	for _, fn := range []func() error{
		func() error { _, err := s.GroupBy(q.station, q.allSels); return err },
		func() error { _, err := s.Pivot([]int{q.area, q.status}, q.allSels); return err },
		func() error { _, err := s.TopK(q.station, q.allSels, q.spec); return err },
	} {
		c, err := measureQuery(fn)
		if err != nil {
			return nil, cacheBenchAnswers{}, err
		}
		costs = append(costs, c)
	}
	return costs, answers, nil
}

// runCacheLadder replays a fixed working set of distinct GroupBy queries
// round-robin — the LRU's adversarial order — under growing budgets.
func runCacheLadder(dir string, q cacheBenchQueries, requests int, progress func(string), preset string) ([]CacheLadderRung, error) {
	// The working set: group by each dimension, crossed with a restriction
	// on one other dimension, all derived deterministically from the data.
	keysOf, err := ladderDimKeys(dir, q)
	if err != nil {
		return nil, err
	}
	ndims := len(smartcity.BikeDims)
	type ladderQuery struct {
		dim  int
		sels []dwarf.Selector
	}
	var queries []ladderQuery
	for i := 0; len(queries) < 64 && i < 8*ndims; i++ {
		dim, restrict := i%ndims, (i/ndims)%ndims
		sels := make([]dwarf.Selector, ndims)
		if restrict != dim && len(keysOf[restrict]) > 0 {
			n := min(1+i%3, len(keysOf[restrict]))
			sels[restrict] = dwarf.SelectKeys(keysOf[restrict][:n]...)
		}
		queries = append(queries, ladderQuery{dim: dim, sels: sels})
	}

	var out []CacheLadderRung
	for _, budget := range []int64{1 << 18, 1 << 20, 1 << 22, 1 << 24} {
		if progress != nil {
			progress(fmt.Sprintf("cache: %s ladder %dKiB", preset, budget>>10))
		}
		s, err := cubestore.Open(dir, cubestore.Options{
			NoSync: true, DisableAutoCompact: true, CacheBytes: budget,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < requests; i++ {
			lq := queries[i%len(queries)]
			if _, err := s.GroupBy(lq.dim, lq.sels); err != nil {
				s.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		st := s.Stats()
		if err := s.Close(); err != nil {
			return nil, err
		}
		rung := CacheLadderRung{
			CacheBytes:      budget,
			DistinctQueries: len(queries),
			Requests:        requests,
			Hits:            st.CacheHits,
			Misses:          st.CacheMisses,
			NsPerRequest:    float64(elapsed.Nanoseconds()) / float64(requests),
		}
		if total := rung.Hits + rung.Misses; total > 0 {
			rung.HitRate = float64(rung.Hits) / float64(total)
		}
		out = append(out, rung)
	}
	return out, nil
}

// ladderDimKeys collects each dimension's first few member keys (sorted)
// so ladder restrictions select real data.
func ladderDimKeys(dir string, q cacheBenchQueries) ([][]string, error) {
	s, err := cubestore.Open(dir, cubestore.Options{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	out := make([][]string, len(smartcity.BikeDims))
	for d := range smartcity.BikeDims {
		groups, err := s.GroupBy(d, q.allSels)
		if err != nil {
			return nil, err
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		out[d] = keys[:min(3, len(keys))]
	}
	return out, nil
}

// FormatCacheBench renders the cache comparison.
func FormatCacheBench(results []CacheResultSet) *Table {
	t := NewTable("Hot-result cache + rollup segments — per-query cost and speedup",
		"Dataset", "Tuples", "Segs", "Shape",
		"Uncached ns/op", "Rollup ns/op", "Warm ns/op", "Warm ×", "Rollup ×")
	for _, set := range results {
		for _, sh := range set.Shapes {
			t.AddRow(set.Preset, fmt.Sprintf("%d", set.Tuples), fmt.Sprintf("%d", set.Segments), sh.Shape,
				fmt.Sprintf("%.0f", sh.UncachedNs),
				fmt.Sprintf("%.0f", sh.RollupNs),
				fmt.Sprintf("%.0f", sh.WarmNs),
				fmt.Sprintf("%.1f", sh.WarmSpeedup),
				fmt.Sprintf("%.1f", sh.RollupSpeedup))
		}
	}
	return t
}

// FormatCacheLadder renders the budget ladder.
func FormatCacheLadder(results []CacheResultSet) *Table {
	t := NewTable("Cache budget ladder — 64 distinct grouped queries, round-robin",
		"Dataset", "Budget", "Requests", "Hits", "Misses", "Hit rate", "ns/request")
	for _, set := range results {
		for _, r := range set.Ladder {
			t.AddRow(set.Preset, fmt.Sprintf("%dKiB", r.CacheBytes>>10),
				fmt.Sprintf("%d", r.Requests),
				fmt.Sprintf("%d", r.Hits), fmt.Sprintf("%d", r.Misses),
				fmt.Sprintf("%.2f", r.HitRate),
				fmt.Sprintf("%.0f", r.NsPerRequest))
		}
	}
	return t
}

// cacheReport is the BENCH_cache.json schema.
type cacheReport struct {
	Experiment string           `json:"experiment"`
	Generated  string           `json:"generated"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []CacheResultSet `json:"results"`
}

// WriteCacheJSON writes the cache results as JSON to path.
func WriteCacheJSON(path string, results []CacheResultSet) error {
	rep := cacheReport{
		Experiment: "cache",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
