package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dwarf"
	"repro/internal/mapper"
)

// The on-store query experiment measures what the paper anticipates but
// does not report: "we anticipate the absence of a DWARF Node construct
// will have a significant impact on query times as DWARF Node
// reconstruction is required" (§5.1). Each schema model answers the same
// battery of point/ALL queries directly against its stored rows.

// QueryResult is one schema model's on-store query cost.
type QueryResult struct {
	Kind        mapper.Kind
	Preset      string
	Queries     int
	Total       time.Duration
	PerQuery    time.Duration
	LoadTime    time.Duration // full rebuild, for comparison
	MemPerQuery time.Duration // same battery against the loaded cube
}

// RunQueryExperiment saves the preset's cube in every schema model and
// times the same query battery against each store.
func RunQueryExperiment(kinds []mapper.Kind, preset string, queries int, baseDir string) ([]QueryResult, error) {
	if baseDir == "" {
		dir, err := os.MkdirTemp("", "dwarfquery-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		baseDir = dir
	}
	cube, err := DatasetCube(preset)
	if err != nil {
		return nil, err
	}
	// A deterministic battery: base tuples with rotating wildcard masks.
	var battery [][]string
	cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
		q := append([]string(nil), keys...)
		switch len(battery) % 4 {
		case 1:
			q[len(q)-1] = dwarf.All
		case 2:
			q[len(q)-1], q[len(q)-2] = dwarf.All, dwarf.All
		case 3:
			q[0] = dwarf.All
		}
		battery = append(battery, q)
		return len(battery) < queries
	})

	var out []QueryResult
	for _, kind := range kinds {
		dir := filepath.Join(baseDir, "q-"+sanitize(string(kind)))
		st, err := mapper.OpenStore(kind, dir, mapper.Options{}, mapper.EngineOptions{})
		if err != nil {
			return nil, err
		}
		id, err := st.Save(cube)
		if err != nil {
			st.Close()
			return nil, err
		}
		pq, ok := st.(mapper.PointQuerier)
		if !ok {
			st.Close()
			return nil, fmt.Errorf("bench: %s cannot query on store", kind)
		}
		// Warm + verify one query.
		want, _ := cube.Point(battery[0]...)
		got, err := pq.PointOnStore(id, battery[0]...)
		if err != nil {
			st.Close()
			return nil, err
		}
		if !got.Equal(want) {
			st.Close()
			return nil, fmt.Errorf("bench: %s on-store answer mismatch", kind)
		}

		start := time.Now()
		for _, q := range battery {
			if _, err := pq.PointOnStore(id, q...); err != nil {
				st.Close()
				return nil, err
			}
		}
		total := time.Since(start)

		start = time.Now()
		loaded, err := st.Load(id)
		if err != nil {
			st.Close()
			return nil, err
		}
		loadTime := time.Since(start)
		start = time.Now()
		for _, q := range battery {
			if _, err := loaded.Point(q...); err != nil {
				st.Close()
				return nil, err
			}
		}
		memTotal := time.Since(start)

		out = append(out, QueryResult{
			Kind: kind, Preset: preset, Queries: len(battery),
			Total: total, PerQuery: total / time.Duration(len(battery)),
			LoadTime:    loadTime,
			MemPerQuery: memTotal / time.Duration(len(battery)),
		})
		st.Close()
		os.RemoveAll(dir)
	}
	return out, nil
}

// FormatQuery renders the on-store query comparison.
func FormatQuery(results []QueryResult) *Table {
	t := NewTable("On-store point queries (§5.1's anticipated query-time impact)",
		"Schema model", "Dataset", "Queries", "On-store µs/q", "Full load ms", "In-memory µs/q")
	for _, r := range results {
		t.AddRow(string(r.Kind), r.Preset,
			fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%.1f", float64(r.PerQuery.Nanoseconds())/1000),
			FormatMs(r.LoadTime),
			fmt.Sprintf("%.2f", float64(r.MemPerQuery.Nanoseconds())/1000))
	}
	return t
}
