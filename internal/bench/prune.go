package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

// The prune experiment measures zone-map pruning on a time-sliced store:
// a preset's tuples are sealed into one segment per calendar day, then
// trailing-window queries (the compiled form of the HTTP "window"
// parameter — a range selector on the Day dimension) run twice over the
// same directory, once with pruning and once with Options.NoPrune.
// Bit-identical answers between the two passes are a hard gate before
// anything is timed; the pruned pass must also scan a strict subset of
// the sealed segments.

// PruneShapeCost is one shape's cost on one pass.
type PruneShapeCost struct {
	Shape   string  `json:"shape"`
	NsPerOp float64 `json:"ns_per_op"`
}

// PruneWindowResult compares a trailing window across the two passes.
type PruneWindowResult struct {
	// Window is the trailing span, in the preset's day keys.
	Window string `json:"window"`
	// SegmentsTotal / SegmentsScanned / SegmentsPruned describe the pruned
	// pass's fan-out for one query of this window: scanned + pruned =
	// total, and scanned must be a strict subset when the window is.
	SegmentsTotal   int64 `json:"segments_total"`
	SegmentsScanned int64 `json:"segments_scanned"`
	SegmentsPruned  int64 `json:"segments_pruned"`
	// Pruned and Full are the same shape battery timed with pruning on
	// and off.
	Pruned []PruneShapeCost `json:"pruned"`
	Full   []PruneShapeCost `json:"full"`
	// Speedup is the full/pruned ratio of the Range shape.
	Speedup float64 `json:"speedup"`
}

// PruneResultSet is one preset's prune measurements.
type PruneResultSet struct {
	Preset   string              `json:"preset"`
	Tuples   int                 `json:"tuples"`
	Days     int                 `json:"days"`
	Segments int                 `json:"segments"`
	Windows  []PruneWindowResult `json:"windows"`
}

// buildPruneDir seals a preset's tuples one calendar day per segment
// (tuples arrive in time order, so each seal's memtable holds exactly one
// day) and returns the sorted distinct day keys.
func buildPruneDir(dir string, tuples []dwarf.Tuple) ([]string, error) {
	s, err := cubestore.Open(dir, cubestore.Options{
		Dims:               smartcity.BikeDims,
		NoSync:             true,
		DisableAutoCompact: true,
		SealTuples:         1 << 30,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	seen := map[string]bool{}
	var days []string
	start := 0
	for i, tu := range tuples {
		d := tu.Dims[2]
		if !seen[d] {
			seen[d] = true
			days = append(days, d)
			if i > start {
				if err := s.Append(tuples[start:i]); err != nil {
					return nil, err
				}
				if err := s.Seal(); err != nil {
					return nil, err
				}
				start = i
			}
		}
	}
	if err := s.Append(tuples[start:]); err != nil {
		return nil, err
	}
	if err := s.Seal(); err != nil {
		return nil, err
	}
	sort.Strings(days)
	return days, s.Close()
}

// windowSels builds the compiled form of a trailing window covering the
// last n of days: a range selector on the Day dimension, every other
// dimension unrestricted.
func windowSels(days []string, n int) []dwarf.Selector {
	sels := make([]dwarf.Selector, len(smartcity.BikeDims))
	sels[2] = dwarf.SelectRange(days[len(days)-n], days[len(days)-1])
	return sels
}

// pruneAnswers is the gated battery for one window: the full Range
// aggregate, a GroupBy over Station and a TopK over Area inside it.
type pruneAnswers struct {
	rangeAgg dwarf.Aggregate
	groups   map[string]dwarf.Aggregate
	topk     []dwarf.GroupEntry
}

func runPruneBattery(s *cubestore.Store, sels []dwarf.Selector) (pruneAnswers, error) {
	var a pruneAnswers
	var err error
	if a.rangeAgg, err = s.Range(sels); err != nil {
		return a, err
	}
	if a.groups, err = s.GroupBy(6, sels); err != nil {
		return a, err
	}
	if a.topk, err = s.TopK(5, sels, dwarf.TopKSpec{K: 5, By: dwarf.BySum}); err != nil {
		return a, err
	}
	return a, nil
}

func (a pruneAnswers) equal(b pruneAnswers) error {
	if a.rangeAgg != b.rangeAgg {
		return fmt.Errorf("range: %+v vs %+v", a.rangeAgg, b.rangeAgg)
	}
	if len(a.groups) != len(b.groups) {
		return fmt.Errorf("groupby: %d vs %d groups", len(a.groups), len(b.groups))
	}
	for k, va := range a.groups {
		if vb, ok := b.groups[k]; !ok || va != vb {
			return fmt.Errorf("groupby[%s]: %+v vs %+v", k, va, vb)
		}
	}
	if len(a.topk) != len(b.topk) {
		return fmt.Errorf("topk: %d vs %d entries", len(a.topk), len(b.topk))
	}
	for i := range a.topk {
		if a.topk[i] != b.topk[i] {
			return fmt.Errorf("topk[%d]: %+v vs %+v", i, a.topk[i], b.topk[i])
		}
	}
	return nil
}

// measurePrunePass opens dir with or without pruning, gates the window's
// answers, and times the battery. It also returns the scanned/pruned
// segment deltas for one Range of the window.
func measurePrunePass(dir string, noPrune bool, sels []dwarf.Selector) ([]PruneShapeCost, pruneAnswers, int64, int64, error) {
	s, err := cubestore.Open(dir, cubestore.Options{
		NoSync:             true,
		DisableAutoCompact: true,
		NoPrune:            noPrune,
	})
	if err != nil {
		return nil, pruneAnswers{}, 0, 0, err
	}
	defer s.Close()
	answers, err := runPruneBattery(s, sels)
	if err != nil {
		return nil, pruneAnswers{}, 0, 0, err
	}
	before := s.Stats()
	if _, err := s.Range(sels); err != nil {
		return nil, pruneAnswers{}, 0, 0, err
	}
	after := s.Stats()
	scanned := after.SegmentsScanned - before.SegmentsScanned
	pruned := after.SegmentsPruned - before.SegmentsPruned
	var costs []PruneShapeCost
	for _, shape := range []struct {
		name string
		fn   func() error
	}{
		{"Range", func() error { _, err := s.Range(sels); return err }},
		{"GroupBy(Station)", func() error { _, err := s.GroupBy(6, sels); return err }},
		{"TopK(Area)", func() error { _, err := s.TopK(5, sels, dwarf.TopKSpec{K: 5, By: dwarf.BySum}); return err }},
	} {
		c, err := measureQuery(shape.fn)
		if err != nil {
			return nil, pruneAnswers{}, 0, 0, err
		}
		costs = append(costs, PruneShapeCost{Shape: shape.name, NsPerOp: c.NsPerOp})
	}
	return costs, answers, scanned, pruned, nil
}

// RunPruneBench builds the day-sliced store per preset and compares the
// pruned and prune-disabled passes over a ladder of trailing windows.
func RunPruneBench(presets []string, progress func(string)) ([]PruneResultSet, error) {
	var out []PruneResultSet
	for _, preset := range presets {
		tuples, err := smartcity.Dataset(preset)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "dwarfbench-prune-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		days, err := buildPruneDir(dir, tuples)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("prune/%s: %d tuples sealed into %d day segments", preset, len(tuples), len(days)))
		}
		set := PruneResultSet{Preset: preset, Tuples: len(tuples), Days: len(days), Segments: len(days)}
		for _, n := range []int{1, 2, len(days)} {
			if n > len(days) {
				continue
			}
			sels := windowSels(days, n)
			pruned, wantA, scanned, prunedSegs, err := measurePrunePass(dir, false, sels)
			if err != nil {
				return nil, err
			}
			full, gotA, _, _, err := measurePrunePass(dir, true, sels)
			if err != nil {
				return nil, err
			}
			// The gate: pruning may only change the fan-out, never the
			// answer — and a sub-span window must scan a strict subset.
			if err := wantA.equal(gotA); err != nil {
				return nil, fmt.Errorf("prune/%s window %dd: pruned and full answers differ: %w", preset, n, err)
			}
			if n < len(days) && scanned >= int64(len(days)) {
				return nil, fmt.Errorf("prune/%s window %dd: scanned %d of %d segments — nothing pruned", preset, n, scanned, len(days))
			}
			if scanned+prunedSegs != int64(len(days)) {
				return nil, fmt.Errorf("prune/%s window %dd: scanned %d + pruned %d != %d segments", preset, n, scanned, prunedSegs, len(days))
			}
			set.Windows = append(set.Windows, PruneWindowResult{
				Window:          fmt.Sprintf("%dd", n),
				SegmentsTotal:   int64(len(days)),
				SegmentsScanned: scanned,
				SegmentsPruned:  prunedSegs,
				Pruned:          pruned,
				Full:            full,
				Speedup:         full[0].NsPerOp / pruned[0].NsPerOp,
			})
			if progress != nil {
				progress(fmt.Sprintf("prune/%s: window %dd scans %d/%d segments", preset, n, scanned, len(days)))
			}
		}
		out = append(out, set)
	}
	return out, nil
}

// FormatPruneBench renders the prune comparison.
func FormatPruneBench(results []PruneResultSet) *Table {
	t := NewTable("Zone-map pruning — trailing windows on a day-sliced store",
		"Dataset", "Window", "Scanned", "Pruned",
		"Range pruned ns", "Range full ns", "Speedup")
	for _, set := range results {
		for _, w := range set.Windows {
			t.AddRow(set.Preset, w.Window,
				fmt.Sprintf("%d/%d", w.SegmentsScanned, w.SegmentsTotal),
				fmt.Sprintf("%d", w.SegmentsPruned),
				fmt.Sprintf("%.0f", w.Pruned[0].NsPerOp),
				fmt.Sprintf("%.0f", w.Full[0].NsPerOp),
				fmt.Sprintf("%.2fx", w.Speedup))
		}
	}
	return t
}

type pruneReport struct {
	Experiment string           `json:"experiment"`
	Generated  string           `json:"generated"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []PruneResultSet `json:"results"`
}

// WritePruneJSON writes the prune results in the BENCH_*.json layout.
func WritePruneJSON(path string, results []PruneResultSet) error {
	rep := pruneReport{
		Experiment: "prune",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
