package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

// The ingest experiment replays a smartcity bike feed into a live cube
// store and measures the two numbers a streaming deployment cares about:
// sustained ingest throughput (tuples/sec through WAL + memtable + seals +
// compactions) and query freshness (how quickly a just-acknowledged tuple
// is reflected by a query, which by the store's contract is immediately —
// the latency measured is the cost of that first fresh query).

// IngestResult is one preset's live-ingest measurement.
type IngestResult struct {
	Preset    string
	Tuples    int
	BatchSize int
	Elapsed   time.Duration

	TuplesPerSec float64

	// Freshness: latency of a point query for a tuple of the batch whose
	// Append just acknowledged, sampled throughout the run. Every probe
	// must observe the tuple (the store guarantees read-your-writes).
	FreshProbes int
	FreshP50    time.Duration
	FreshP99    time.Duration
	FreshMax    time.Duration

	Seals       int64
	Compactions int64
	Segments    int
	SealedBytes int64
	WALSynced   bool
}

// IngestOptions tunes RunIngest.
type IngestOptions struct {
	BatchSize  int  // tuples per Append (default 512)
	SealTuples int  // store seal threshold (default cubestore's)
	Workers    int  // shard workers for memtable builds and seals
	Sync       bool // fsync every Append (the durable configuration)
	Verify     bool // cross-check final answers against a batch cube
	Repeats    int  // ladder runs per (writers, mode) cell, best kept (default 1)
}

// RunIngest replays each preset's bike feed through a live store in a
// fresh temp directory and reports throughput and freshness.
func RunIngest(presets []string, opts IngestOptions, progress func(string)) ([]IngestResult, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 512
	}
	var out []IngestResult
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "ingest-"+preset+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := cubestore.Open(dir, cubestore.Options{
			Dims:       smartcity.BikeDims,
			SealTuples: opts.SealTuples,
			NoSync:     !opts.Sync,
			Workers:    opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		res := IngestResult{Preset: preset, Tuples: len(tuples), BatchSize: opts.BatchSize, WALSynced: opts.Sync}
		var fresh []time.Duration
		start := time.Now()
		for off := 0; off < len(tuples); off += opts.BatchSize {
			end := off + opts.BatchSize
			if end > len(tuples) {
				end = len(tuples)
			}
			batch := tuples[off:end]
			if err := store.Append(batch); err != nil {
				store.Close()
				return nil, err
			}
			// Probe freshness right after every 8th ack: the tuple must be
			// visible, and the elapsed time is the fresh-query latency.
			if (off/opts.BatchSize)%8 == 0 {
				probe := batch[len(batch)/2]
				t0 := time.Now()
				agg, err := store.Point(probe.Dims...)
				lat := time.Since(t0)
				if err != nil {
					store.Close()
					return nil, err
				}
				if agg.Count == 0 {
					store.Close()
					return nil, fmt.Errorf("bench: acked tuple %v not visible to the next query", probe.Dims)
				}
				fresh = append(fresh, lat)
			}
		}
		res.Elapsed = time.Since(start)
		res.TuplesPerSec = float64(len(tuples)) / res.Elapsed.Seconds()
		sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
		res.FreshProbes = len(fresh)
		if len(fresh) > 0 {
			res.FreshP50 = fresh[len(fresh)/2]
			res.FreshP99 = fresh[len(fresh)*99/100]
			res.FreshMax = fresh[len(fresh)-1]
		}
		st := store.Stats()
		res.Seals, res.Compactions = st.Seals, st.Compactions
		res.Segments, res.SealedBytes = len(st.Segments), st.SealedBytes

		if opts.Verify {
			if progress != nil {
				progress(fmt.Sprintf("  %s: verifying against batch cube", preset))
			}
			if err := verifyIngest(store, tuples); err != nil {
				store.Close()
				return nil, err
			}
		}
		if err := store.Close(); err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("  %s: %d tuples in %s (%.0f tuples/sec, %d seals, %d compactions)",
				preset, len(tuples), res.Elapsed.Round(time.Millisecond), res.TuplesPerSec, res.Seals, res.Compactions))
		}
		out = append(out, res)
	}
	return out, nil
}

// verifyIngest holds a sample of store answers equal to a batch build.
func verifyIngest(store *cubestore.Store, tuples []dwarf.Tuple) error {
	ref, err := dwarf.New(smartcity.BikeDims, tuples)
	if err != nil {
		return err
	}
	ndims := len(smartcity.BikeDims)
	allKeys := make([]string, ndims)
	for i := range allKeys {
		allKeys[i] = dwarf.All
	}
	got, err := store.Point(allKeys...)
	if err != nil {
		return err
	}
	want, _ := ref.Point(allKeys...)
	if !got.Equal(want) {
		return fmt.Errorf("bench: ALL aggregate differs: store=%+v batch=%+v", got, want)
	}
	for i := 0; i < len(tuples); i += 997 {
		got, err := store.Point(tuples[i].Dims...)
		if err != nil {
			return err
		}
		want, _ := ref.Point(tuples[i].Dims...)
		if !got.Equal(want) {
			return fmt.Errorf("bench: point %v differs: store=%+v batch=%+v", tuples[i].Dims, got, want)
		}
	}
	return nil
}

// FormatIngest renders the live-ingest table.
func FormatIngest(results []IngestResult) *Table {
	t := NewTable("Live ingest — WAL + memtable + seal + compaction throughput and query freshness",
		"Dataset", "Tuples", "Batch", "Elapsed", "Tuples/sec", "Fresh p50", "Fresh p99", "Fresh max",
		"Seals", "Compactions", "Segments", "Sealed MB", "fsync")
	for _, r := range results {
		t.AddRow(r.Preset,
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%d", r.BatchSize),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.TuplesPerSec),
			r.FreshP50.Round(10*time.Microsecond).String(),
			r.FreshP99.Round(10*time.Microsecond).String(),
			r.FreshMax.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%d", r.Seals),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%d", r.Segments),
			fmt.Sprintf("%.1f", float64(r.SealedBytes)/(1<<20)),
			fmt.Sprintf("%v", r.WALSynced))
	}
	return t
}

// The writer ladder measures what the group-commit pipeline buys: the same
// preset is replayed by N concurrent writers twice — once with every Append
// serialized behind a bench-level mutex (the pre-group-commit design: one
// writer in the WAL critical section, one fsync per batch) and once letting
// the store's committer group them. Durable (fsync-per-commit) throughput,
// fsync rate and client-observed append latency are reported per cell.

// IngestLadderResult is one (writers, mode) cell of the ladder.
type IngestLadderResult struct {
	Preset    string `json:"preset"`
	Mode      string `json:"mode"` // "serial": mutex-serialized appends; "grouped": concurrent group commit
	Writers   int    `json:"writers"`
	Tuples    int    `json:"tuples"`
	BatchSize int    `json:"batch_size"`
	Sync      bool   `json:"sync"`

	ElapsedNS    int64   `json:"elapsed_ns"`
	TuplesPerSec float64 `json:"tuples_per_sec"`

	// Commit accounting straight from the store: in serial mode every batch
	// is its own group (FsyncsSaved 0); grouped mode shares fsyncs.
	GroupCommits int64   `json:"group_commits"`
	FsyncsSaved  int64   `json:"fsyncs_saved"`
	FsyncsPerSec float64 `json:"fsyncs_per_sec"`

	// Client-observed Append latency (for serial mode this includes the
	// wait for the serializing mutex, as a real client would see).
	AppendP50NS int64 `json:"append_p50_ns"`
	AppendP99NS int64 `json:"append_p99_ns"`
	AppendMaxNS int64 `json:"append_max_ns"`

	Seals           int64 `json:"seals"`
	FrozenMemtables int64 `json:"frozen_memtables"`
}

// RunIngestLadder sweeps writer counts over each preset, serial vs grouped.
func RunIngestLadder(presets []string, writerCounts []int, opts IngestOptions, progress func(string)) ([]IngestLadderResult, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 512
	}
	var out []IngestLadderResult
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		for _, w := range writerCounts {
			for _, mode := range []string{"serial", "grouped"} {
				// Shared-disk fsync latency is spiky; best-of-N per cell (the
				// same policy the parallel and serve experiments use) keeps
				// the run the disk didn't interrupt.
				var res IngestLadderResult
				for rep := 0; rep < max(opts.Repeats, 1); rep++ {
					r, err := runIngestLadderCell(preset, tuples, w, mode, opts)
					if err != nil {
						return nil, err
					}
					if rep == 0 || r.TuplesPerSec > res.TuplesPerSec {
						res = r
					}
				}
				out = append(out, res)
				if progress != nil {
					progress(fmt.Sprintf("  %s %d writers %-7s %8.0f tuples/sec  %6.0f fsyncs/sec  p99 %s",
						preset, w, mode, res.TuplesPerSec, res.FsyncsPerSec,
						time.Duration(res.AppendP99NS).Round(10*time.Microsecond)))
				}
			}
		}
	}
	return out, nil
}

func runIngestLadderCell(preset string, tuples []dwarf.Tuple, writers int, mode string, opts IngestOptions) (IngestLadderResult, error) {
	res := IngestLadderResult{
		Preset: preset, Mode: mode, Writers: writers,
		Tuples: len(tuples), BatchSize: opts.BatchSize, Sync: opts.Sync,
	}
	// The ladder measures commit-path concurrency, not CPU parallelism: the
	// writers must be able to enqueue while the committer sits in fsync.
	// With GOMAXPROCS < writers+1 the runtime can keep the committer's P
	// through the whole syscall (until sysmon retakes it), starving the
	// waiting writers and silently serializing both modes.
	if gmp := runtime.GOMAXPROCS(0); gmp < writers+1 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(writers + 1))
	}
	dir, err := os.MkdirTemp("", "ingest-ladder-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	store, err := cubestore.Open(dir, cubestore.Options{
		Dims:       smartcity.BikeDims,
		SealTuples: opts.SealTuples,
		NoSync:     !opts.Sync,
		Workers:    opts.Workers,
	})
	if err != nil {
		return res, err
	}
	var serialMu sync.Mutex
	lats := make([][]time.Duration, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	per := (len(tuples) + writers - 1) / writers
	start := time.Now()
	for w := 0; w < writers; w++ {
		lo := w * per
		hi := min(lo+per, len(tuples))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, shard []dwarf.Tuple) {
			defer wg.Done()
			for off := 0; off < len(shard); off += opts.BatchSize {
				end := min(off+opts.BatchSize, len(shard))
				t0 := time.Now()
				if mode == "serial" {
					serialMu.Lock()
				}
				err := store.Append(shard[off:end])
				if mode == "serial" {
					serialMu.Unlock()
				}
				lats[w] = append(lats[w], time.Since(t0))
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w, tuples[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			store.Close()
			return res, err
		}
	}
	res.ElapsedNS = elapsed.Nanoseconds()
	res.TuplesPerSec = float64(len(tuples)) / elapsed.Seconds()
	var merged []time.Duration
	for _, l := range lats {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	if len(merged) > 0 {
		res.AppendP50NS = merged[len(merged)/2].Nanoseconds()
		res.AppendP99NS = merged[len(merged)*99/100].Nanoseconds()
		res.AppendMaxNS = merged[len(merged)-1].Nanoseconds()
	}
	st := store.Stats()
	res.GroupCommits, res.FsyncsSaved = st.GroupCommits, st.FsyncsSaved
	res.Seals, res.FrozenMemtables = st.Seals, st.FrozenMemtables
	if opts.Sync {
		// Seals and compactions fsync too, but the WAL commit rate is the
		// number the ladder is about: one fsync per group.
		res.FsyncsPerSec = float64(st.GroupCommits) / elapsed.Seconds()
	}
	if opts.Verify {
		if err := verifyIngest(store, tuples); err != nil {
			store.Close()
			return res, err
		}
	}
	return res, store.Close()
}

// FormatIngestLadder renders the ladder with per-cell speedup over the
// serialized baseline at the same writer count.
func FormatIngestLadder(results []IngestLadderResult) *Table {
	t := NewTable("Concurrent ingest — group-commit WAL vs serialized appends (durable unless fsync=false)",
		"Dataset", "Writers", "Mode", "Tuples/sec", "vs serial", "fsyncs/sec", "Saved", "p50", "p99", "max", "fsync")
	serialTPS := map[string]float64{}
	for _, r := range results {
		if r.Mode == "serial" {
			serialTPS[fmt.Sprintf("%s/%d", r.Preset, r.Writers)] = r.TuplesPerSec
		}
	}
	for _, r := range results {
		speedup := "1.00x"
		if base := serialTPS[fmt.Sprintf("%s/%d", r.Preset, r.Writers)]; base > 0 && r.Mode != "serial" {
			speedup = fmt.Sprintf("%.2fx", r.TuplesPerSec/base)
		}
		t.AddRow(r.Preset,
			fmt.Sprintf("%d", r.Writers),
			r.Mode,
			fmt.Sprintf("%.0f", r.TuplesPerSec),
			speedup,
			fmt.Sprintf("%.0f", r.FsyncsPerSec),
			fmt.Sprintf("%d", r.FsyncsSaved),
			time.Duration(r.AppendP50NS).Round(10*time.Microsecond).String(),
			time.Duration(r.AppendP99NS).Round(10*time.Microsecond).String(),
			time.Duration(r.AppendMaxNS).Round(10*time.Microsecond).String(),
			fmt.Sprintf("%v", r.Sync))
	}
	return t
}

type ingestReport struct {
	Experiment string               `json:"experiment"`
	Generated  string               `json:"generated"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Results    []IngestLadderResult `json:"results"`
	Summary    map[string]any       `json:"summary"`
}

// WriteIngestJSON writes the ladder results plus a grouped-vs-serial
// speedup summary per (preset, writers) pair.
func WriteIngestJSON(path string, results []IngestLadderResult) error {
	rep := ingestReport{
		Experiment: "ingest",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
		Summary:    map[string]any{},
	}
	cells := map[string][2]float64{} // key -> [serial tps, grouped tps]
	for _, r := range results {
		key := fmt.Sprintf("%s/%dw", r.Preset, r.Writers)
		c := cells[key]
		if r.Mode == "serial" {
			c[0] = r.TuplesPerSec
		} else {
			c[1] = r.TuplesPerSec
		}
		cells[key] = c
	}
	for key, c := range cells {
		if c[0] > 0 && c[1] > 0 {
			rep.Summary[key] = map[string]any{
				"serial_tuples_per_sec":  fmt.Sprintf("%.0f", c[0]),
				"grouped_tuples_per_sec": fmt.Sprintf("%.0f", c[1]),
				"speedup":                fmt.Sprintf("%.2f", c[1]/c[0]),
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
