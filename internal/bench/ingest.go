package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

// The ingest experiment replays a smartcity bike feed into a live cube
// store and measures the two numbers a streaming deployment cares about:
// sustained ingest throughput (tuples/sec through WAL + memtable + seals +
// compactions) and query freshness (how quickly a just-acknowledged tuple
// is reflected by a query, which by the store's contract is immediately —
// the latency measured is the cost of that first fresh query).

// IngestResult is one preset's live-ingest measurement.
type IngestResult struct {
	Preset    string
	Tuples    int
	BatchSize int
	Elapsed   time.Duration

	TuplesPerSec float64

	// Freshness: latency of a point query for a tuple of the batch whose
	// Append just acknowledged, sampled throughout the run. Every probe
	// must observe the tuple (the store guarantees read-your-writes).
	FreshProbes int
	FreshP50    time.Duration
	FreshP99    time.Duration
	FreshMax    time.Duration

	Seals       int64
	Compactions int64
	Segments    int
	SealedBytes int64
	WALSynced   bool
}

// IngestOptions tunes RunIngest.
type IngestOptions struct {
	BatchSize  int  // tuples per Append (default 512)
	SealTuples int  // store seal threshold (default cubestore's)
	Workers    int  // shard workers for memtable builds and seals
	Sync       bool // fsync every Append (the durable configuration)
	Verify     bool // cross-check final answers against a batch cube
}

// RunIngest replays each preset's bike feed through a live store in a
// fresh temp directory and reports throughput and freshness.
func RunIngest(presets []string, opts IngestOptions, progress func(string)) ([]IngestResult, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 512
	}
	var out []IngestResult
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "ingest-"+preset+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := cubestore.Open(dir, cubestore.Options{
			Dims:       smartcity.BikeDims,
			SealTuples: opts.SealTuples,
			NoSync:     !opts.Sync,
			Workers:    opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		res := IngestResult{Preset: preset, Tuples: len(tuples), BatchSize: opts.BatchSize, WALSynced: opts.Sync}
		var fresh []time.Duration
		start := time.Now()
		for off := 0; off < len(tuples); off += opts.BatchSize {
			end := off + opts.BatchSize
			if end > len(tuples) {
				end = len(tuples)
			}
			batch := tuples[off:end]
			if err := store.Append(batch); err != nil {
				store.Close()
				return nil, err
			}
			// Probe freshness right after every 8th ack: the tuple must be
			// visible, and the elapsed time is the fresh-query latency.
			if (off/opts.BatchSize)%8 == 0 {
				probe := batch[len(batch)/2]
				t0 := time.Now()
				agg, err := store.Point(probe.Dims...)
				lat := time.Since(t0)
				if err != nil {
					store.Close()
					return nil, err
				}
				if agg.Count == 0 {
					store.Close()
					return nil, fmt.Errorf("bench: acked tuple %v not visible to the next query", probe.Dims)
				}
				fresh = append(fresh, lat)
			}
		}
		res.Elapsed = time.Since(start)
		res.TuplesPerSec = float64(len(tuples)) / res.Elapsed.Seconds()
		sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
		res.FreshProbes = len(fresh)
		if len(fresh) > 0 {
			res.FreshP50 = fresh[len(fresh)/2]
			res.FreshP99 = fresh[len(fresh)*99/100]
			res.FreshMax = fresh[len(fresh)-1]
		}
		st := store.Stats()
		res.Seals, res.Compactions = st.Seals, st.Compactions
		res.Segments, res.SealedBytes = len(st.Segments), st.SealedBytes

		if opts.Verify {
			if progress != nil {
				progress(fmt.Sprintf("  %s: verifying against batch cube", preset))
			}
			if err := verifyIngest(store, tuples); err != nil {
				store.Close()
				return nil, err
			}
		}
		if err := store.Close(); err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("  %s: %d tuples in %s (%.0f tuples/sec, %d seals, %d compactions)",
				preset, len(tuples), res.Elapsed.Round(time.Millisecond), res.TuplesPerSec, res.Seals, res.Compactions))
		}
		out = append(out, res)
	}
	return out, nil
}

// verifyIngest holds a sample of store answers equal to a batch build.
func verifyIngest(store *cubestore.Store, tuples []dwarf.Tuple) error {
	ref, err := dwarf.New(smartcity.BikeDims, tuples)
	if err != nil {
		return err
	}
	ndims := len(smartcity.BikeDims)
	allKeys := make([]string, ndims)
	for i := range allKeys {
		allKeys[i] = dwarf.All
	}
	got, err := store.Point(allKeys...)
	if err != nil {
		return err
	}
	want, _ := ref.Point(allKeys...)
	if !got.Equal(want) {
		return fmt.Errorf("bench: ALL aggregate differs: store=%+v batch=%+v", got, want)
	}
	for i := 0; i < len(tuples); i += 997 {
		got, err := store.Point(tuples[i].Dims...)
		if err != nil {
			return err
		}
		want, _ := ref.Point(tuples[i].Dims...)
		if !got.Equal(want) {
			return fmt.Errorf("bench: point %v differs: store=%+v batch=%+v", tuples[i].Dims, got, want)
		}
	}
	return nil
}

// FormatIngest renders the live-ingest table.
func FormatIngest(results []IngestResult) *Table {
	t := NewTable("Live ingest — WAL + memtable + seal + compaction throughput and query freshness",
		"Dataset", "Tuples", "Batch", "Elapsed", "Tuples/sec", "Fresh p50", "Fresh p99", "Fresh max",
		"Seals", "Compactions", "Segments", "Sealed MB", "fsync")
	for _, r := range results {
		t.AddRow(r.Preset,
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%d", r.BatchSize),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.TuplesPerSec),
			r.FreshP50.Round(10*time.Microsecond).String(),
			r.FreshP99.Round(10*time.Microsecond).String(),
			r.FreshMax.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%d", r.Seals),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%d", r.Segments),
			fmt.Sprintf("%.1f", float64(r.SealedBytes)/(1<<20)),
			fmt.Sprintf("%v", r.WALSynced))
	}
	return t
}
