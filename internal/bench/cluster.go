package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/serve"
	"repro/internal/smartcity"
)

// The cluster experiment measures scatter-gather latency: the same preset
// is hash-partitioned across N in-process dwarfd nodes behind a
// coordinator and, separately, loaded into one union store. Bit-identical
// answers across both (every query shape) are a hard gate before anything
// is timed; the timings then put a number on what the network fan-out and
// merge cost per shape over the single-node baseline.

// ClusterShapeResult compares one query shape: coordinator vs union store.
type ClusterShapeResult struct {
	Shape     string  `json:"shape"`
	ClusterNs float64 `json:"cluster_ns_per_op"`
	SingleNs  float64 `json:"single_ns_per_op"`
	// Overhead is cluster/single — the scatter-gather cost multiple.
	Overhead float64 `json:"overhead"`
}

// ClusterResult is one preset's cluster measurements.
type ClusterResult struct {
	Preset string               `json:"preset"`
	Tuples int                  `json:"tuples"`
	Nodes  int                  `json:"nodes"`
	Shapes []ClusterShapeResult `json:"shapes"`
}

// clusterBenchSegments splits each store so per-node queries do real
// multi-segment merge work, like the cache experiment's stores.
const clusterBenchSegments = 4

func buildClusterDir(dir string, tuples []dwarf.Tuple) (*cubestore.Store, error) {
	s, err := cubestore.Open(dir, cubestore.Options{
		Dims:               smartcity.BikeDims,
		NoSync:             true,
		DisableAutoCompact: true,
	})
	if err != nil {
		return nil, err
	}
	if len(tuples) > 0 {
		per := (len(tuples) + clusterBenchSegments - 1) / clusterBenchSegments
		for off := 0; off < len(tuples); off += per {
			end := min(off+per, len(tuples))
			if err := s.Append(tuples[off:end]); err != nil {
				s.Close()
				return nil, err
			}
			if err := s.Seal(); err != nil {
				s.Close()
				return nil, err
			}
		}
	}
	return s, nil
}

// clusterBattery is the per-shape query list the gate and the timings run.
type clusterBattery struct {
	name string
	run  func(q clusterQuerier) (any, error)
}

// clusterQuerier is the slice of query.Querier both sides implement.
type clusterQuerier interface {
	Point(keys ...string) (dwarf.Aggregate, error)
	Range(sels []dwarf.Selector) (dwarf.Aggregate, error)
	GroupBy(dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error)
	Pivot(dims []int, sels []dwarf.Selector) ([]dwarf.PivotGroup, error)
	TopK(dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, error)
}

func clusterShapes() []clusterBattery {
	q := newCacheBenchQueries()
	wild := make([]string, len(smartcity.BikeDims))
	return []clusterBattery{
		{"point", func(s clusterQuerier) (any, error) { return s.Point(wild...) }},
		{"range", func(s clusterQuerier) (any, error) { return s.Range(q.allSels) }},
		{"groupby", func(s clusterQuerier) (any, error) { return s.GroupBy(q.station, q.allSels) }},
		{"pivot", func(s clusterQuerier) (any, error) { return s.Pivot([]int{q.area, q.status}, q.allSels) }},
		{"topk", func(s clusterQuerier) (any, error) { return s.TopK(q.station, q.allSels, q.spec) }},
	}
}

// clusterGate compares the full battery bit-for-bit. Bike measures are
// integer-valued, so sums are exact in float64 and partition order cannot
// excuse a divergence.
func clusterGate(coord, single clusterQuerier) error {
	q := newCacheBenchQueries()
	a1, err := runBatteryAnswers(coord, q)
	if err != nil {
		return fmt.Errorf("cluster battery: %w", err)
	}
	a2, err := runBatteryAnswers(single, q)
	if err != nil {
		return fmt.Errorf("single-store battery: %w", err)
	}
	if a1.total != a2.total {
		return fmt.Errorf("grand total diverged: cluster %+v single %+v", a1.total, a2.total)
	}
	return a1.answers.equal(a2.answers)
}

type clusterAnswers struct {
	total   dwarf.Aggregate
	answers cacheBenchAnswers
}

func runBatteryAnswers(s clusterQuerier, q cacheBenchQueries) (clusterAnswers, error) {
	var a clusterAnswers
	var err error
	if a.total, err = s.Range(q.allSels); err != nil {
		return a, err
	}
	if a.answers.groups, err = s.GroupBy(q.station, q.allSels); err != nil {
		return a, err
	}
	if a.answers.rows, err = s.Pivot([]int{q.area, q.status}, q.allSels); err != nil {
		return a, err
	}
	a.answers.topk, err = s.TopK(q.station, q.allSels, q.spec)
	return a, err
}

// RunClusterBench partitions each preset over `nodes` in-process dwarfd
// nodes and measures every query shape against the single-store baseline.
func RunClusterBench(presets []string, nodes, queries int, progress func(string)) ([]ClusterResult, error) {
	if nodes <= 0 {
		nodes = 3
	}
	if queries <= 0 {
		queries = 200
	}
	var out []ClusterResult
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		res, err := runClusterPreset(preset, tuples, nodes, queries, progress)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func runClusterPreset(preset string, tuples []dwarf.Tuple, nodes, queries int, progress func(string)) (ClusterResult, error) {
	res := ClusterResult{Preset: preset, Tuples: len(tuples), Nodes: nodes}
	base, err := os.MkdirTemp("", "clusterbench-"+preset+"-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(base)
	if progress != nil {
		progress(fmt.Sprintf("cluster: %s build (%d tuples over %d nodes)", preset, len(tuples), nodes))
	}

	// Hash-partition the preset exactly as coordinator ingest would.
	parts := make([][]dwarf.Tuple, nodes)
	for _, tu := range tuples {
		i := cluster.NodeFor(tu.Dims, nodes)
		parts[i] = append(parts[i], tu)
	}

	single, err := buildClusterDir(filepath.Join(base, "single"), tuples)
	if err != nil {
		return res, err
	}
	defer single.Close()

	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		st, err := buildClusterDir(filepath.Join(base, fmt.Sprintf("node%d", i)), parts[i])
		if err != nil {
			return res, err
		}
		defer st.Close()
		srv, err := serve.New(serve.Options{Store: st, ClusterNode: true})
		if err != nil {
			return res, err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	coord, err := cluster.New(cluster.Options{Nodes: urls, Dims: smartcity.BikeDims})
	if err != nil {
		return res, err
	}

	// Hard gate: bit-identical before any timing.
	if err := clusterGate(coord, single); err != nil {
		return res, fmt.Errorf("cluster differential gate failed (%s): %w", preset, err)
	}

	for _, sh := range clusterShapes() {
		if progress != nil {
			progress(fmt.Sprintf("cluster: %s %s × %d", preset, sh.name, queries))
		}
		clusterNs, err := timeShape(coord, sh, queries)
		if err != nil {
			return res, err
		}
		singleNs, err := timeShape(single, sh, queries)
		if err != nil {
			return res, err
		}
		r := ClusterShapeResult{Shape: sh.name, ClusterNs: clusterNs, SingleNs: singleNs}
		if singleNs > 0 {
			r.Overhead = clusterNs / singleNs
		}
		res.Shapes = append(res.Shapes, r)
	}
	return res, nil
}

func timeShape(s clusterQuerier, sh clusterBattery, queries int) (float64, error) {
	// One warm-up pass keeps connection setup out of the measurement.
	if _, err := sh.run(s); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := sh.run(s); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(queries), nil
}

// FormatClusterBench renders the scatter-gather comparison.
func FormatClusterBench(results []ClusterResult) *Table {
	t := NewTable("Clustered scatter-gather — per-query cost vs one union store",
		"Dataset", "Tuples", "Nodes", "Shape", "Cluster ns/op", "Single ns/op", "Overhead ×")
	for _, set := range results {
		for _, sh := range set.Shapes {
			t.AddRow(set.Preset, fmt.Sprintf("%d", set.Tuples), fmt.Sprintf("%d", set.Nodes), sh.Shape,
				fmt.Sprintf("%.0f", sh.ClusterNs),
				fmt.Sprintf("%.0f", sh.SingleNs),
				fmt.Sprintf("%.1f", sh.Overhead))
		}
	}
	return t
}

// clusterReport is the BENCH_cluster.json schema.
type clusterReport struct {
	Experiment string          `json:"experiment"`
	Generated  string          `json:"generated"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Results    []ClusterResult `json:"results"`
}

// WriteClusterJSON writes the cluster results as JSON to path.
func WriteClusterJSON(path string, results []ClusterResult) error {
	rep := clusterReport{
		Experiment: "cluster",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
