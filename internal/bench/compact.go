package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

// The compact experiment measures the store's steady-state hot path:
// merging k sealed cube segments into one. It compares the seed
// implementation — DecodeBytes every input into a pointer node graph, fold
// pairwise with dwarf.Merge, re-encode — against the streaming engine
// (dwarf.MergeViews: one k-way descent over the encoded bytes, no node
// allocation), reporting wall clock, allocation count and bytes, and the
// sampled peak live heap of each.

// CompactCost is one merge path's measured cost.
type CompactCost struct {
	Wall       time.Duration `json:"wall_ns"`
	Allocs     uint64        `json:"allocs"`
	AllocBytes uint64        `json:"alloc_bytes"`
	// PeakHeap is the maximum live heap observed during the merge (sampled
	// every 2ms) minus the pre-merge baseline: the transient working set the
	// merge adds on top of the resident inputs.
	PeakHeap uint64 `json:"peak_heap_bytes"`
}

// CompactResult is one preset's compaction measurement.
type CompactResult struct {
	Preset     string `json:"preset"`
	Inputs     int    `json:"inputs"`
	Tuples     int    `json:"tuples"`
	InputBytes int64  `json:"input_bytes"`
	// OutputBytes is the streaming path's merged segment size (the
	// canonical encoding; the baseline's output may be slightly larger).
	OutputBytes int64 `json:"output_bytes"`

	Baseline  CompactCost `json:"baseline"`
	Streaming CompactCost `json:"streaming"`

	// Identical reports that the streaming output was byte-identical to
	// EncodeIndexed of a batch build over all input tuples.
	Identical bool `json:"identical_to_batch"`
}

// Speedup is baseline wall time over streaming wall time.
func (r CompactResult) Speedup() float64 {
	if r.Streaming.Wall <= 0 {
		return 0
	}
	return float64(r.Baseline.Wall) / float64(r.Streaming.Wall)
}

// AllocRatio is baseline allocations over streaming allocations.
func (r CompactResult) AllocRatio() float64 {
	if r.Streaming.Allocs == 0 {
		return 0
	}
	return float64(r.Baseline.Allocs) / float64(r.Streaming.Allocs)
}

// PeakRatio is baseline peak heap over streaming peak heap.
func (r CompactResult) PeakRatio() float64 {
	if r.Streaming.PeakHeap == 0 {
		return 0
	}
	return float64(r.Baseline.PeakHeap) / float64(r.Streaming.PeakHeap)
}

// measureCompact runs fn under memory accounting: GC to a quiet baseline,
// sample live heap every 2ms for the peak, and read the allocation counters
// around the run. Best wall and minimum allocation figures over repeats.
func measureCompact(repeats int, fn func() error) (CompactCost, error) {
	var cost CompactCost
	for r := 0; r < repeats; r++ {
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		var peak atomic.Uint64
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			var m runtime.MemStats
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					runtime.ReadMemStats(&m)
					if m.HeapAlloc > peak.Load() {
						peak.Store(m.HeapAlloc)
					}
				}
			}
		}()
		start := time.Now()
		err := fn()
		wall := time.Since(start)
		close(stop)
		<-done
		if err != nil {
			return cost, err
		}
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		p := peak.Load()
		if m1.HeapAlloc > p {
			p = m1.HeapAlloc
		}
		if p > m0.HeapAlloc {
			p -= m0.HeapAlloc
		} else {
			p = 0
		}
		one := CompactCost{
			Wall:       wall,
			Allocs:     m1.Mallocs - m0.Mallocs,
			AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
			PeakHeap:   p,
		}
		if r == 0 || one.Wall < cost.Wall {
			cost.Wall = one.Wall
		}
		if r == 0 || one.Allocs < cost.Allocs {
			cost.Allocs = one.Allocs
			cost.AllocBytes = one.AllocBytes
		}
		if r == 0 || one.PeakHeap < cost.PeakHeap {
			cost.PeakHeap = one.PeakHeap
		}
	}
	return cost, nil
}

// RunCompact splits each preset's fact stream into `parts` consecutive
// slices, builds and encodes one v2-indexed segment per slice (what the
// store's seal produces), and measures merging them back into one segment
// via both paths. The streaming output is checked byte-for-byte against a
// batch build over all tuples.
func RunCompact(presets []string, parts, repeats int) ([]CompactResult, error) {
	if parts < 2 {
		parts = 2
	}
	if repeats < 1 {
		repeats = 1
	}
	var out []CompactResult
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		segments := make([][]byte, parts)
		var inputBytes int64
		for i := 0; i < parts; i++ {
			lo, hi := i*len(tuples)/parts, (i+1)*len(tuples)/parts
			c, err := dwarf.New(smartcity.BikeDims, tuples[lo:hi])
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := c.EncodeIndexed(&buf); err != nil {
				return nil, err
			}
			segments[i] = buf.Bytes()
			inputBytes += int64(buf.Len())
		}
		res := CompactResult{Preset: preset, Inputs: parts, Tuples: len(tuples), InputBytes: inputBytes}

		// The seed path: decode every segment, fold pairwise, re-encode.
		var baselineOut []byte
		res.Baseline, err = measureCompact(repeats, func() error {
			merged, err := dwarf.DecodeBytes(segments[0])
			if err != nil {
				return err
			}
			for _, seg := range segments[1:] {
				c, err := dwarf.DecodeBytes(seg)
				if err != nil {
					return err
				}
				if merged, err = dwarf.Merge(merged, c); err != nil {
					return err
				}
			}
			var buf bytes.Buffer
			if err := merged.EncodeIndexed(&buf); err != nil {
				return err
			}
			baselineOut = buf.Bytes()
			return nil
		})
		if err != nil {
			return nil, err
		}

		// The streaming path: open zero-copy views (O(1), trailer-indexed)
		// and run the k-way merge straight over the bytes.
		var streamOut []byte
		res.Streaming, err = measureCompact(repeats, func() error {
			views := make([]*dwarf.CubeView, parts)
			for i, seg := range segments {
				v, err := dwarf.OpenViewTrusted(seg)
				if err != nil {
					return err
				}
				views[i] = v
			}
			enc, _, err := dwarf.MergeViewsBytes(views...)
			if err != nil {
				return err
			}
			streamOut = enc
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.OutputBytes = int64(len(streamOut))

		// Correctness gates: the streaming output must be the canonical
		// batch encoding, and the baseline output must answer identically.
		ref, err := dwarf.New(smartcity.BikeDims, tuples)
		if err != nil {
			return nil, err
		}
		var refBuf bytes.Buffer
		if err := ref.EncodeIndexed(&refBuf); err != nil {
			return nil, err
		}
		res.Identical = bytes.Equal(streamOut, refBuf.Bytes())
		if !res.Identical {
			return nil, fmt.Errorf("bench: %s streaming merge output is not the canonical batch encoding", preset)
		}
		base, err := dwarf.DecodeBytes(baselineOut)
		if err != nil {
			return nil, err
		}
		wild := make([]string, len(smartcity.BikeDims))
		for i := range wild {
			wild[i] = dwarf.All
		}
		got, _ := base.Point(wild...)
		want, _ := ref.Point(wild...)
		if !got.Equal(want) {
			return nil, fmt.Errorf("bench: %s baseline merge diverged: %v vs %v", preset, got, want)
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatCompact renders the compaction comparison.
func FormatCompact(results []CompactResult) *Table {
	t := NewTable("Segment compaction — decode+pairwise Merge vs streaming k-way MergeViews",
		"Dataset", "Inputs", "Tuples", "In MB", "Out MB",
		"Base wall", "Stream wall", "Speedup",
		"Base allocs", "Stream allocs", "Alloc ratio",
		"Base peak MB", "Stream peak MB", "Peak ratio", "Canonical")
	for _, r := range results {
		t.AddRow(r.Preset,
			fmt.Sprintf("%d", r.Inputs),
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%.1f", float64(r.InputBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(r.OutputBytes)/(1<<20)),
			r.Baseline.Wall.Round(10*time.Microsecond).String(),
			r.Streaming.Wall.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup()),
			fmt.Sprintf("%d", r.Baseline.Allocs),
			fmt.Sprintf("%d", r.Streaming.Allocs),
			fmt.Sprintf("%.1fx", r.AllocRatio()),
			fmt.Sprintf("%.1f", float64(r.Baseline.PeakHeap)/(1<<20)),
			fmt.Sprintf("%.1f", float64(r.Streaming.PeakHeap)/(1<<20)),
			fmt.Sprintf("%.1fx", r.PeakRatio()),
			fmt.Sprintf("%v", r.Identical))
	}
	return t
}

// compactReport is the BENCH_compact.json schema: the perf-trajectory file
// CI regenerates so compaction regressions are visible across commits.
type compactReport struct {
	Experiment string          `json:"experiment"`
	Generated  string          `json:"generated"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Results    []CompactResult `json:"results"`
	Summary    map[string]any  `json:"summary"`
}

// WriteCompactJSON writes the compaction results as JSON to path.
func WriteCompactJSON(path string, results []CompactResult) error {
	rep := compactReport{
		Experiment: "compact",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
		Summary:    map[string]any{},
	}
	for _, r := range results {
		rep.Summary[r.Preset] = map[string]any{
			"speedup":     fmt.Sprintf("%.2f", r.Speedup()),
			"alloc_ratio": fmt.Sprintf("%.1f", r.AllocRatio()),
			"peak_ratio":  fmt.Sprintf("%.1f", r.PeakRatio()),
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
