package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mapper"
)

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("Title", "A", "Bee", "C")
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("long-cell", "x", "yy")
	out := tbl.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Aligned columns: header and rows share column start offsets.
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[3], "1") {
		t.Errorf("table body wrong: %q", out)
	}
	if idxOf(lines[1], "Bee") != idxOf(lines[3], "2") {
		t.Errorf("columns unaligned:\n%s", out)
	}
}

func idxOf(s, sub string) int { return strings.Index(s, sub) }

func TestFormatHelpers(t *testing.T) {
	if got := FormatMB(0); got != "0" {
		t.Errorf("FormatMB(0) = %q", got)
	}
	if got := FormatMB(500 * 1024); got != "< 1" {
		t.Errorf("FormatMB(500KiB) = %q, want the paper's \"< 1\"", got)
	}
	if got := FormatMB(5 << 20); got != "5" {
		t.Errorf("FormatMB(5MiB) = %q", got)
	}
	if got := FormatMs(1500 * time.Millisecond); got != "1500" {
		t.Errorf("FormatMs = %q", got)
	}
}

func TestDatasetCacheIsStable(t *testing.T) {
	a, err := DatasetTuples("Day")
	if err != nil {
		t.Fatal(err)
	}
	b, err := DatasetTuples("Day")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("dataset not cached")
	}
	c1, err := DatasetCube("Day")
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := DatasetCube("Day")
	if c1 != c2 {
		t.Error("cube not cached")
	}
	if _, err := DatasetTuples("Bogus"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestRunTable2(t *testing.T) {
	rows, err := RunTable2([]string{"Day"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Tuples != 7358 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].XMLBytes <= 0 || rows[0].CubeNodes <= 0 {
		t.Errorf("row = %+v", rows[0])
	}
	out := FormatTable2(rows).String()
	if !strings.Contains(out, "7358") || !strings.Contains(out, "Day") {
		t.Errorf("table2 = %q", out)
	}
}

func TestRunParallelBuild(t *testing.T) {
	results, err := RunParallelBuild([]string{"Day"}, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	for i, r := range results {
		if r.Preset != "Day" || r.Tuples != 7358 || r.Build <= 0 {
			t.Errorf("row %d = %+v", i, r)
		}
		// The ablation doubles as a correctness gate: every worker count
		// must report the serial row's structure.
		if r.Nodes != results[0].Nodes || r.Cells != results[0].Cells {
			t.Errorf("row %d structure diverged: %+v vs %+v", i, r, results[0])
		}
	}
	out := FormatParallelBuild(results).String()
	if !strings.Contains(out, "Day") || !strings.Contains(out, "1.00x") {
		t.Errorf("parallel table = %q", out)
	}
}

func TestRunStorageExperimentAndTables(t *testing.T) {
	kinds := []mapper.Kind{mapper.KindNoSQLDwarf, mapper.KindMySQLMin}
	results, err := RunStorageExperiment(kinds, []string{"Day"}, t.TempDir(), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, r := range results {
		if r.Bytes <= 0 || r.SaveTime <= 0 || !r.Loaded || r.LoadTime <= 0 {
			t.Errorf("result = %+v", r)
		}
	}
	t4 := FormatTable4(results, []string{"Day"}).String()
	if !strings.Contains(t4, "NoSQL-DWARF") || !strings.Contains(t4, "MySQL-Min") {
		t.Errorf("table4 = %q", t4)
	}
	// Schema models without results are omitted.
	if strings.Contains(t4, "NoSQL-Min") {
		t.Errorf("table4 should omit kinds without measurements: %q", t4)
	}
	t5 := FormatTable5(results, []string{"Day"}).String()
	if !strings.Contains(t5, "927") { // the paper's NoSQL-DWARF Day cell
		t.Errorf("table5 missing paper reference: %q", t5)
	}
}

func TestRunBaoComparison(t *testing.T) {
	results, err := RunBaoComparison([]string{"Day"}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, r := range results {
		if r.Bytes <= 0 || r.NoSQLDwarfB <= 0 {
			t.Errorf("result = %+v", r)
		}
	}
	out := FormatBao(results).String()
	if !strings.Contains(out, "hierarchical") || !strings.Contains(out, "recursive") {
		t.Errorf("bao table = %q", out)
	}
}

func TestRunQueryExperiment(t *testing.T) {
	results, err := RunQueryExperiment([]mapper.Kind{mapper.KindNoSQLDwarf, mapper.KindNoSQLMin},
		"Day", 50, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	for _, r := range results {
		if r.Queries != 50 || r.PerQuery <= 0 || r.LoadTime <= 0 {
			t.Errorf("result = %+v", r)
		}
	}
	out := FormatQuery(results).String()
	if !strings.Contains(out, "On-store") || !strings.Contains(out, "NoSQL-Min") {
		t.Errorf("query table = %q", out)
	}
}

func TestPaperReferenceDataComplete(t *testing.T) {
	presets := []string{"Day", "Week", "Month", "TMonth", "SMonth"}
	for _, kind := range mapper.AllKinds() {
		for _, p := range presets {
			if _, ok := PaperTable4[kind][p]; !ok {
				t.Errorf("PaperTable4 missing %s/%s", kind, p)
			}
			if _, ok := PaperTable5[kind][p]; !ok {
				t.Errorf("PaperTable5 missing %s/%s", kind, p)
			}
		}
	}
}

func TestRunServe(t *testing.T) {
	results, err := RunServe([]string{"Day"}, 200, 1)
	if err != nil {
		t.Fatalf("RunServe: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Queries == 0 || r.EncodedBytes == 0 {
		t.Fatalf("empty measurement: %+v", r)
	}
	if r.DecodeOpen <= 0 || r.ViewOpen <= 0 || r.TrustedOpen <= 0 || r.ScanOpen <= 0 {
		t.Fatalf("missing open timings: %+v", r)
	}
	if r.CubeQPS <= 0 || r.ViewQPS <= 0 {
		t.Fatalf("missing throughput: %+v", r)
	}
	if r.OpenSpeedup() <= 1 {
		t.Fatalf("view open (%v) not faster than full decode (%v)", r.ViewOpen, r.DecodeOpen)
	}
	out := FormatServe(results).String()
	if !strings.Contains(out, "Day") {
		t.Fatalf("FormatServe missing dataset row:\n%s", out)
	}
}

func TestRunPruneBench(t *testing.T) {
	results, err := RunPruneBench([]string{"Day"}, nil)
	if err != nil {
		t.Fatalf("RunPruneBench: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Segments < 1 || len(r.Windows) == 0 {
		t.Fatalf("empty measurement: %+v", r)
	}
	for _, w := range r.Windows {
		if w.SegmentsScanned+w.SegmentsPruned != w.SegmentsTotal {
			t.Fatalf("window %s: scanned %d + pruned %d != %d",
				w.Window, w.SegmentsScanned, w.SegmentsPruned, w.SegmentsTotal)
		}
		if len(w.Pruned) != 3 || len(w.Full) != 3 || w.Speedup <= 0 {
			t.Fatalf("window %s missing timings: %+v", w.Window, w)
		}
	}
	// The 1-day trailing window must prune when more than one day sealed.
	if r.Segments > 1 && r.Windows[0].SegmentsPruned == 0 {
		t.Fatalf("1d window pruned nothing over %d segments", r.Segments)
	}
	out := FormatPruneBench(results).String()
	if !strings.Contains(out, "Day") || !strings.Contains(out, "1d") {
		t.Fatalf("FormatPruneBench missing rows:\n%s", out)
	}
}
