// Package bench is the experiment harness: it regenerates every table of
// the paper's evaluation (§5) — Table 2 (datasets), Table 4 (storage size
// per schema model), Table 5 (bulk-insertion time per schema model) — plus
// the §5.1 comparison against the Bao-et-al. flat-file baselines, and
// carries the paper's published numbers for side-by-side reporting.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/dwarf"
	"repro/internal/flatfile"
	"repro/internal/mapper"
	"repro/internal/smartcity"
)

// Table is a fixed-width text table in the style of the paper's layout.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a titled table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// FormatMB prints bytes in the paper's integer-megabyte convention,
// including the "< 1" rendering of Table 4.
func FormatMB(bytes int64) string {
	mb := bytes / (1 << 20)
	if mb == 0 && bytes > 0 {
		return "< 1"
	}
	return fmt.Sprintf("%d", mb)
}

// FormatMs prints a duration as integer milliseconds (Table 5's unit).
func FormatMs(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}

// Dataset cache: built once per process, shared by benchmarks and the
// harness binary.
var (
	cacheMu sync.Mutex
	tupleC  = map[string][]dwarf.Tuple{}
	cubeC   = map[string]*dwarf.Cube{}
)

// DatasetTuples returns (and caches) a preset's fact tuples.
func DatasetTuples(preset string) ([]dwarf.Tuple, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if ts, ok := tupleC[preset]; ok {
		return ts, nil
	}
	ts, err := smartcity.Dataset(preset)
	if err != nil {
		return nil, err
	}
	tupleC[preset] = ts
	return ts, nil
}

// DatasetCube returns (and caches) a preset's built cube.
func DatasetCube(preset string) (*dwarf.Cube, error) {
	cacheMu.Lock()
	if c, ok := cubeC[preset]; ok {
		cacheMu.Unlock()
		return c, nil
	}
	cacheMu.Unlock()
	tuples, err := DatasetTuples(preset)
	if err != nil {
		return nil, err
	}
	c, err := dwarf.New(smartcity.BikeDims, tuples)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	cubeC[preset] = c
	cacheMu.Unlock()
	return c, nil
}

// countingWriter counts bytes without retaining them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Table2Row is one dataset row: tuples and source-XML size, measured vs.
// the paper's figures.
type Table2Row struct {
	Preset       smartcity.Preset
	Tuples       int
	XMLBytes     int64
	CubeNodes    int
	CubeCells    int
	BuildTime    time.Duration
	MeasuredOnly bool
}

// RunTable2 generates each preset, measures its emitted XML size and the
// cube construction stats. workers > 1 runs the sharded parallel build; the
// cube (and so the reported node/cell counts) is identical either way.
func RunTable2(presets []string, workers int) ([]Table2Row, error) {
	var out []Table2Row
	for _, name := range presets {
		p, err := smartcity.PresetByName(name)
		if err != nil {
			return nil, err
		}
		recs, err := smartcity.DatasetRecords(name)
		if err != nil {
			return nil, err
		}
		var cw countingWriter
		if err := smartcity.WriteBikesXML(&cw, recs); err != nil {
			return nil, err
		}
		tuples := make([]dwarf.Tuple, len(recs))
		for i, r := range recs {
			tuples[i] = r.Tuple()
		}
		start := time.Now()
		cube, err := dwarf.New(smartcity.BikeDims, tuples, dwarf.WithWorkers(workers))
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		st := cube.Stats()
		out = append(out, Table2Row{
			Preset: p, Tuples: len(tuples), XMLBytes: cw.n,
			CubeNodes: st.Nodes, CubeCells: st.TotalCells(), BuildTime: build,
		})
	}
	return out, nil
}

// FormatTable2 renders the Table 2 comparison.
func FormatTable2(rows []Table2Row) *Table {
	t := NewTable("Table 2 — datasets (measured XML vs paper's source size)",
		"Dataset", "Tuples (paper)", "Tuples (ours)", "Size MB (paper)", "XML MB (ours)",
		"Cube nodes", "Cube cells", "Build time")
	for _, r := range rows {
		t.AddRow(r.Preset.Name,
			fmt.Sprintf("%d", r.Preset.Tuples),
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%.1f", r.Preset.PaperMB),
			fmt.Sprintf("%.1f", float64(r.XMLBytes)/(1<<20)),
			fmt.Sprintf("%d", r.CubeNodes),
			fmt.Sprintf("%d", r.CubeCells),
			r.BuildTime.Round(time.Millisecond).String())
	}
	return t
}

// StoreResult is one (schema model, dataset) measurement for Tables 4/5.
type StoreResult struct {
	Kind     mapper.Kind
	Preset   string
	SaveTime time.Duration
	Bytes    int64
	LoadTime time.Duration
	Loaded   bool
}

// RunStorageExperiment saves each preset's cube in each schema model,
// timing the bulk insert (Table 5) and measuring the stored size (Table 4).
// When verifyLoad is set it also times Load and checks the round trip.
func RunStorageExperiment(kinds []mapper.Kind, presets []string, baseDir string,
	verifyLoad bool, progress func(string)) ([]StoreResult, error) {

	if baseDir == "" {
		dir, err := os.MkdirTemp("", "dwarfbench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		baseDir = dir
	}
	var out []StoreResult
	for _, preset := range presets {
		cube, err := DatasetCube(preset)
		if err != nil {
			return nil, err
		}
		for _, kind := range kinds {
			if progress != nil {
				progress(fmt.Sprintf("%s / %s ...", kind, preset))
			}
			dir := filepath.Join(baseDir, fmt.Sprintf("%s-%s", sanitize(string(kind)), preset))
			st, err := mapper.OpenStore(kind, dir, mapper.Options{}, mapper.EngineOptions{})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			id, err := st.Save(cube)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("%s/%s save: %w", kind, preset, err)
			}
			saveTime := time.Since(start)
			bytes, err := st.StoredBytes()
			if err != nil {
				st.Close()
				return nil, err
			}
			res := StoreResult{Kind: kind, Preset: preset, SaveTime: saveTime, Bytes: bytes}
			if verifyLoad {
				start = time.Now()
				loaded, err := st.Load(id)
				if err != nil {
					st.Close()
					return nil, fmt.Errorf("%s/%s load: %w", kind, preset, err)
				}
				res.LoadTime = time.Since(start)
				res.Loaded = true
				ls, cs := loaded.Stats(), cube.Stats()
				if ls.Nodes != cs.Nodes || ls.Cells != cs.Cells {
					st.Close()
					return nil, fmt.Errorf("%s/%s round trip mismatch: %+v vs %+v", kind, preset, ls, cs)
				}
			}
			if err := st.Close(); err != nil {
				return nil, err
			}
			os.RemoveAll(dir)
			out = append(out, res)
		}
	}
	return out, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' {
			return r
		}
		return '_'
	}, s)
}

// FormatTable4 renders storage sizes, one schema model per row (the
// paper's layout), with the published numbers alongside.
func FormatTable4(results []StoreResult, presets []string) *Table {
	headers := append([]string{"Schema model"}, presets...)
	headers = append(headers, "(paper row)")
	t := NewTable("Table 4 — size (MB) used to store a DWARF cube", headers...)
	for _, kind := range mapper.AllKinds() {
		row := []string{string(kind)}
		found := false
		for _, p := range presets {
			cell := "-"
			for _, r := range results {
				if r.Kind == kind && r.Preset == p {
					cell = FormatMB(r.Bytes)
					found = true
				}
			}
			row = append(row, cell)
		}
		if !found {
			continue
		}
		row = append(row, paperRow(PaperTable4[kind], presets))
		t.AddRow(row...)
	}
	return t
}

// FormatTable5 renders insertion times.
func FormatTable5(results []StoreResult, presets []string) *Table {
	headers := append([]string{"Schema model"}, presets...)
	headers = append(headers, "(paper row)")
	t := NewTable("Table 5 — time (ms) taken to insert a DWARF cube", headers...)
	for _, kind := range mapper.AllKinds() {
		row := []string{string(kind)}
		found := false
		for _, p := range presets {
			cell := "-"
			for _, r := range results {
				if r.Kind == kind && r.Preset == p {
					cell = FormatMs(r.SaveTime)
					found = true
				}
			}
			row = append(row, cell)
		}
		if !found {
			continue
		}
		row = append(row, paperRow(PaperTable5[kind], presets))
		t.AddRow(row...)
	}
	return t
}

func paperRow(vals map[string]string, presets []string) string {
	var parts []string
	for _, p := range presets {
		if v, ok := vals[p]; ok {
			parts = append(parts, v)
		} else {
			parts = append(parts, "?")
		}
	}
	return strings.Join(parts, "/")
}

// PaperTable4 is the published Table 4 (MB).
var PaperTable4 = map[mapper.Kind]map[string]string{
	mapper.KindMySQLDwarf: {"Day": "2", "Week": "20", "Month": "80", "TMonth": "169", "SMonth": "424"},
	mapper.KindMySQLMin:   {"Day": "< 1", "Week": "8", "Month": "33", "TMonth": "70", "SMonth": "178"},
	mapper.KindNoSQLDwarf: {"Day": "< 1", "Week": "9", "Month": "35", "TMonth": "73", "SMonth": "182"},
	mapper.KindNoSQLMin:   {"Day": "< 1", "Week": "11", "Month": "45", "TMonth": "96", "SMonth": "243"},
}

// PaperTable5 is the published Table 5 (ms).
var PaperTable5 = map[mapper.Kind]map[string]string{
	mapper.KindMySQLDwarf: {"Day": "1768", "Week": "12501", "Month": "47247", "TMonth": "100466", "SMonth": "255098"},
	mapper.KindMySQLMin:   {"Day": "1107", "Week": "5955", "Month": "22243", "TMonth": "47936", "SMonth": "121221"},
	mapper.KindNoSQLDwarf: {"Day": "927", "Week": "4368", "Month": "15955", "TMonth": "34203", "SMonth": "89257"},
	mapper.KindNoSQLMin:   {"Day": "5699", "Week": "57153", "Month": "222044", "TMonth": "484498", "SMonth": "1219887"},
}

// ParallelBuildResult is one (preset, workers) cube-construction
// measurement of the sharded-build ablation.
type ParallelBuildResult struct {
	Preset  string
	Workers int
	Tuples  int
	Build   time.Duration
	// Speedup is serial build time divided by this row's build time (1.0 for
	// the serial row itself).
	Speedup float64
	Nodes   int
	Cells   int
}

// RunParallelBuild measures cube construction at each worker count over
// each preset, taking the best of `repeats` runs. The serial builder
// (workers=1) is always measured first as the Speedup baseline, whether or
// not 1 appears in workerCounts. It verifies every parallel cube is
// structurally identical to the serial one — same node and cell counts —
// and fails loudly otherwise, so the ablation doubles as a correctness
// gate.
func RunParallelBuild(presets []string, workerCounts []int, repeats int) ([]ParallelBuildResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	measure := func(tuples []dwarf.Tuple, workers int) (time.Duration, dwarf.Stats, error) {
		var best time.Duration
		var st dwarf.Stats
		for r := 0; r < repeats; r++ {
			start := time.Now()
			c, err := dwarf.New(smartcity.BikeDims, tuples, dwarf.WithWorkers(workers))
			if err != nil {
				return 0, dwarf.Stats{}, err
			}
			if d := time.Since(start); r == 0 || d < best {
				best = d
				st = c.Stats()
			}
		}
		return best, st, nil
	}
	var out []ParallelBuildResult
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		serialTime, serialStats, err := measure(tuples, 1)
		if err != nil {
			return nil, err
		}
		for _, workers := range workerCounts {
			best, st := serialTime, serialStats
			if workers != 1 {
				if best, st, err = measure(tuples, workers); err != nil {
					return nil, err
				}
			}
			if st.Nodes != serialStats.Nodes || st.Cells != serialStats.Cells {
				return nil, fmt.Errorf("parallel build diverged: %s workers=%d got %d nodes/%d cells, serial %d/%d",
					preset, workers, st.Nodes, st.Cells, serialStats.Nodes, serialStats.Cells)
			}
			speedup := 1.0
			if best > 0 {
				speedup = float64(serialTime) / float64(best)
			}
			out = append(out, ParallelBuildResult{
				Preset: preset, Workers: workers, Tuples: len(tuples),
				Build: best, Speedup: speedup, Nodes: st.Nodes, Cells: st.TotalCells(),
			})
		}
	}
	return out, nil
}

// FormatParallelBuild renders the sharded-build ablation.
func FormatParallelBuild(results []ParallelBuildResult) *Table {
	t := NewTable("Sharded parallel construction — build time vs serial baseline",
		"Dataset", "Tuples", "Workers", "Build time", "Speedup", "Nodes", "Cells")
	for _, r := range results {
		t.AddRow(r.Preset,
			fmt.Sprintf("%d", r.Tuples),
			fmt.Sprintf("%d", r.Workers),
			r.Build.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Cells))
	}
	return t
}

// BaoResult is one flat-file baseline measurement for the §5.1 comparison.
type BaoResult struct {
	Preset      string
	Layout      flatfile.Layout
	Bytes       int64
	WriteTime   time.Duration
	NoSQLDwarfB int64
}

// RunBaoComparison writes each preset's cube as both flat-file layouts and
// sets the NoSQL-DWARF size beside them (the §5.1 storage-space argument).
func RunBaoComparison(presets []string, baseDir string) ([]BaoResult, error) {
	if baseDir == "" {
		dir, err := os.MkdirTemp("", "dwarfbao-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		baseDir = dir
	}
	var out []BaoResult
	for _, preset := range presets {
		cube, err := DatasetCube(preset)
		if err != nil {
			return nil, err
		}
		// NoSQL-DWARF size for the same cube.
		dir := filepath.Join(baseDir, "nosql-"+preset)
		st, err := mapper.OpenStore(mapper.KindNoSQLDwarf, dir, mapper.Options{}, mapper.EngineOptions{})
		if err != nil {
			return nil, err
		}
		if _, err := st.Save(cube); err != nil {
			st.Close()
			return nil, err
		}
		nosqlBytes, err := st.StoredBytes()
		if err != nil {
			st.Close()
			return nil, err
		}
		st.Close()
		os.RemoveAll(dir)

		for _, layout := range []flatfile.Layout{flatfile.Hierarchical, flatfile.Recursive} {
			path := filepath.Join(baseDir, fmt.Sprintf("%s-%s.dwf", preset, layout))
			start := time.Now()
			size, err := flatfile.Write(path, cube, layout)
			if err != nil {
				return nil, err
			}
			out = append(out, BaoResult{
				Preset: preset, Layout: layout, Bytes: size,
				WriteTime: time.Since(start), NoSQLDwarfB: nosqlBytes,
			})
			os.Remove(path)
		}
	}
	return out, nil
}

// FormatBao renders the §5.1 comparison.
func FormatBao(results []BaoResult) *Table {
	t := NewTable("§5.1 — flat-file DWARF baselines (Bao et al. [1]) vs NoSQL-DWARF",
		"Dataset", "Layout", "Flat file MB", "Write time", "NoSQL-DWARF MB")
	for _, r := range results {
		t.AddRow(r.Preset, r.Layout.String(),
			fmt.Sprintf("%.1f", float64(r.Bytes)/(1<<20)),
			r.WriteTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(r.NoSQLDwarfB)/(1<<20)))
	}
	return t
}
