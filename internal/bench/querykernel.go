package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

// The query experiment measures the unified kernel across the two
// single-source representations it serves: the in-memory node graph
// (*dwarf.Cube) and the zero-copy encoded view (*dwarf.CubeView). One
// battery of point / range / group-by / top-k queries runs on both —
// byte-equal answers are a hard gate — and each (shape, source) cell is
// measured with testing.Benchmark, so ns/op and allocs/op come from the
// standard allocation accounting (the same numbers the committed
// BenchmarkKernel* benchmarks report). The view numbers pin the zero-copy
// promise: Point allocates nothing, and the scan shapes allocate only
// their result containers.

// QueryShapeCost is one (shape, source) measurement.
type QueryShapeCost struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// QueryShapeResult compares one query shape across the two sources.
type QueryShapeResult struct {
	Shape string         `json:"shape"`
	Cube  QueryShapeCost `json:"cube"`
	View  QueryShapeCost `json:"view"`
}

// QueryResultSet is one preset's kernel measurements.
type QueryResultSet struct {
	Preset string             `json:"preset"`
	Tuples int                `json:"tuples"`
	Shapes []QueryShapeResult `json:"shapes"`
}

// RunQueryKernel builds each preset's cube, opens its trailer-indexed
// zero-copy view, verifies both answer the whole battery identically, and
// measures every query shape on both.
func RunQueryKernel(presets []string, queries int, progress func(string)) ([]QueryResultSet, error) {
	if queries <= 0 {
		queries = 512
	}
	var out []QueryResultSet
	for _, preset := range presets {
		tuples, err := DatasetTuples(preset)
		if err != nil {
			return nil, err
		}
		cube, err := dwarf.New(smartcity.BikeDims, tuples)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := cube.EncodeIndexed(&buf); err != nil {
			return nil, err
		}
		view, err := dwarf.OpenViewTrusted(buf.Bytes())
		if err != nil {
			return nil, err
		}

		// Deterministic point battery: base facts with rotating wildcards.
		var points [][]string
		cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
			q := append([]string(nil), keys...)
			switch len(points) % 4 {
			case 1:
				q[len(q)-1] = dwarf.All
			case 2:
				q[len(q)-1], q[len(q)-2] = dwarf.All, dwarf.All
			case 3:
				q[0] = dwarf.All
			}
			points = append(points, q)
			return len(points) < queries
		})
		dimIdx := func(name string) int {
			for i, d := range smartcity.BikeDims {
				if d == name {
					return i
				}
			}
			return 0
		}
		area, station := dimIdx("Area"), dimIdx("Station")
		ndims := len(smartcity.BikeDims)
		rangeSels := make([]dwarf.Selector, ndims)
		rangeSels[area] = dwarf.SelectRange("area-2", "area-7")
		rangeSels[dimIdx("Quarter")] = dwarf.SelectKeys("Q1", "Q2", "Q3")
		allSels := make([]dwarf.Selector, ndims)
		spec := dwarf.TopKSpec{K: 10, By: dwarf.BySum}

		// Hard differential gate before timing anything.
		for _, q := range points[:min(len(points), 64)] {
			a, err := cube.Point(q...)
			if err != nil {
				return nil, err
			}
			b, err := view.Point(q...)
			if err != nil {
				return nil, err
			}
			if !a.Equal(b) {
				return nil, fmt.Errorf("bench: %s cube/view diverged on %v", preset, q)
			}
		}
		cg, err := cube.GroupBy(station, allSels)
		if err != nil {
			return nil, err
		}
		vg, err := view.GroupBy(station, allSels)
		if err != nil {
			return nil, err
		}
		if len(cg) != len(vg) {
			return nil, fmt.Errorf("bench: %s group-by diverged (%d vs %d groups)", preset, len(cg), len(vg))
		}

		set := QueryResultSet{Preset: preset, Tuples: len(tuples)}
		type shapeFns struct {
			name string
			cube func() error
			view func() error
		}
		i := 0
		shapes := []shapeFns{
			{"point",
				func() error { _, err := cube.Point(points[i%len(points)]...); i++; return err },
				func() error { _, err := view.Point(points[i%len(points)]...); i++; return err }},
			{"range",
				func() error { _, err := cube.Range(rangeSels); return err },
				func() error { _, err := view.Range(rangeSels); return err }},
			{"groupby",
				func() error { _, err := cube.GroupBy(station, allSels); return err },
				func() error { _, err := view.GroupBy(station, allSels); return err }},
			{"topk",
				func() error { _, err := cube.TopK(station, allSels, spec); return err },
				func() error { _, err := view.TopK(station, allSels, spec); return err }},
		}
		for _, sh := range shapes {
			if progress != nil {
				progress(fmt.Sprintf("query: %s %s", preset, sh.name))
			}
			res := QueryShapeResult{Shape: sh.name}
			res.Cube, err = measureQuery(sh.cube)
			if err != nil {
				return nil, err
			}
			res.View, err = measureQuery(sh.view)
			if err != nil {
				return nil, err
			}
			set.Shapes = append(set.Shapes, res)
		}
		out = append(out, set)
	}
	return out, nil
}

// measureQuery times one query under the standard benchmark harness.
func measureQuery(fn func() error) (QueryShapeCost, error) {
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return QueryShapeCost{}, failed
	}
	return QueryShapeCost{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// FormatQueryKernel renders the kernel comparison.
func FormatQueryKernel(results []QueryResultSet) *Table {
	t := NewTable("Unified query kernel — node graph (Cube) vs zero-copy (CubeView)",
		"Dataset", "Tuples", "Shape",
		"Cube ns/op", "Cube allocs", "View ns/op", "View allocs", "View B/op")
	for _, set := range results {
		for _, sh := range set.Shapes {
			t.AddRow(set.Preset, fmt.Sprintf("%d", set.Tuples), sh.Shape,
				fmt.Sprintf("%.0f", sh.Cube.NsPerOp),
				fmt.Sprintf("%d", sh.Cube.AllocsPerOp),
				fmt.Sprintf("%.0f", sh.View.NsPerOp),
				fmt.Sprintf("%d", sh.View.AllocsPerOp),
				fmt.Sprintf("%d", sh.View.BytesPerOp))
		}
	}
	return t
}

// queryReport is the BENCH_query.json schema: the perf-trajectory file CI
// regenerates so kernel regressions are visible across commits.
type queryReport struct {
	Experiment string           `json:"experiment"`
	Generated  string           `json:"generated"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []QueryResultSet `json:"results"`
}

// WriteQueryJSON writes the kernel results as JSON to path.
func WriteQueryJSON(path string, results []QueryResultSet) error {
	rep := queryReport{
		Experiment: "query",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
