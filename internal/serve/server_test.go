package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dwarf"
)

// serveFixture writes two cube files (one plain, one trailer-indexed) into
// a temp dir and returns the dir, the source cube, and a test server.
func serveFixture(t testing.TB, cacheSize int) (string, *dwarf.Cube, *httptest.Server) {
	t.Helper()
	tuples := []dwarf.Tuple{
		{Dims: []string{"d1", "north", "bike"}, Measure: 2},
		{Dims: []string{"d1", "south", "bike"}, Measure: 3},
		{Dims: []string{"d2", "north", "car"}, Measure: 5},
		{Dims: []string{"d2", "west", "bike"}, Measure: 7},
		{Dims: []string{"d3", "north", "bike"}, Measure: 11},
	}
	cube, err := dwarf.New([]string{"Day", "Region", "Kind"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var plain, indexed bytes.Buffer
	if err := cube.Encode(&plain); err != nil {
		t.Fatal(err)
	}
	if err := cube.EncodeIndexed(&indexed); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "plain.dwarf"), plain.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "indexed.dwarf"), indexed.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.dwarf"), []byte("not a cube"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Dir: dir, CacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return dir, cube, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return out
}

func aggOf(t *testing.T, m map[string]any, field string) map[string]any {
	t.Helper()
	agg, ok := m[field].(map[string]any)
	if !ok {
		t.Fatalf("response has no %q object: %v", field, m)
	}
	return agg
}

// TestServerEndpoints drives every endpoint over both encodings and checks
// answers against the in-memory cube.
func TestServerEndpoints(t *testing.T) {
	_, cube, ts := serveFixture(t, 4)
	for _, name := range []string{"plain.dwarf", "indexed.dwarf", "plain", "indexed"} {
		// Point, with ALL wildcard in one dimension.
		got := getJSON(t, ts.URL+"/query/point?cube="+name+"&key=d1&key=*&key=bike", http.StatusOK)
		want, err := cube.Point("d1", "*", "bike")
		if err != nil {
			t.Fatal(err)
		}
		if agg := aggOf(t, got, "aggregate"); agg["sum"] != want.Sum || agg["count"] != float64(want.Count) {
			t.Fatalf("%s: point = %v, want %v", name, agg, want)
		}
		// Range via POST, short selector list padded with ALL.
		got = postJSON(t, ts.URL+"/query/range", map[string]any{
			"cube":      name,
			"selectors": []map[string]any{{"lo": "d1", "hi": "d2"}},
		}, http.StatusOK)
		wantR, err := cube.Range([]dwarf.Selector{dwarf.SelectRange("d1", "d2"), dwarf.SelectAll(), dwarf.SelectAll()})
		if err != nil {
			t.Fatal(err)
		}
		if agg := aggOf(t, got, "aggregate"); agg["sum"] != wantR.Sum {
			t.Fatalf("%s: range = %v, want %v", name, agg, wantR)
		}
		// GroupBy by dimension name.
		got = postJSON(t, ts.URL+"/query/groupby", map[string]any{
			"cube": name, "dim": "Region",
			"selectors": []map[string]any{{"keys": []string{"d1", "d2"}}},
		}, http.StatusOK)
		wantG, err := cube.GroupBy(1, []dwarf.Selector{dwarf.SelectKeys("d1", "d2"), dwarf.SelectAll(), dwarf.SelectAll()})
		if err != nil {
			t.Fatal(err)
		}
		groups := aggOf(t, got, "groups")
		if len(groups) != len(wantG) {
			t.Fatalf("%s: groupby has %d groups, want %d", name, len(groups), len(wantG))
		}
		for k, wa := range wantG {
			ga, ok := groups[k].(map[string]any)
			if !ok || ga["sum"] != wa.Sum {
				t.Fatalf("%s: groupby[%q] = %v, want %v", name, k, groups[k], wa)
			}
		}
		// Stats.
		got = getJSON(t, ts.URL+"/stats?cube="+name, http.StatusOK)
		st := cube.Stats()
		if got["nodes"] != float64(st.Nodes) || got["total_cells"] != float64(st.TotalCells()) {
			t.Fatalf("%s: stats = %v, want %+v", name, got, st)
		}
	}

	// Registry: both cubes listed, trailer flag correct, junk listed too.
	got := getJSON(t, ts.URL+"/cubes", http.StatusOK)
	cubes, ok := got["cubes"].([]any)
	if !ok || len(cubes) != 3 {
		t.Fatalf("/cubes listed %v, want 3 entries", got["cubes"])
	}
	byName := map[string]map[string]any{}
	for _, c := range cubes {
		m := c.(map[string]any)
		byName[m["name"].(string)] = m
	}
	if byName["plain.dwarf"]["indexed"] != false || byName["indexed.dwarf"]["indexed"] != true {
		t.Fatalf("/cubes trailer flags wrong: %v", byName)
	}
	if byName["plain.dwarf"]["loaded"] != true {
		t.Fatalf("plain.dwarf should be hot after the queries above: %v", byName)
	}
}

// TestServerErrors checks the failure surface: unknown cubes 404, bad
// queries 400, corrupt files 502, path escapes rejected.
func TestServerErrors(t *testing.T) {
	_, _, ts := serveFixture(t, 4)
	getJSON(t, ts.URL+"/query/point?cube=missing.dwarf&key=a", http.StatusNotFound)
	getJSON(t, ts.URL+"/query/point?cube=plain.dwarf&key=a", http.StatusBadRequest) // arity
	getJSON(t, ts.URL+"/query/point", http.StatusBadRequest)                        // no cube
	getJSON(t, ts.URL+"/query/point?cube=..%2Fplain.dwarf&key=a", http.StatusBadRequest)
	getJSON(t, ts.URL+"/query/point?cube=junk.dwarf&key=a&key=b&key=c", http.StatusBadGateway)
	getJSON(t, ts.URL+"/stats?cube=junk.dwarf", http.StatusBadGateway)
	postJSON(t, ts.URL+"/query/range", map[string]any{
		"cube":      "plain.dwarf",
		"selectors": []map[string]any{{"lo": "a"}}, // lo without hi
	}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/query/range", map[string]any{
		"cube":      "plain.dwarf",
		"selectors": []map[string]any{{}, {}, {}, {}}, // too many dims
	}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/query/groupby", map[string]any{
		"cube": "plain.dwarf", "dim": "Nope",
	}, http.StatusBadRequest)
	resp, err := http.Get(ts.URL + "/query/range")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /query/range: status %d, want 400", resp.StatusCode)
	}
}

// TestServerLRU holds the cache at one entry and alternates cubes: the
// cache must never exceed capacity and must keep answering correctly.
func TestServerLRU(t *testing.T) {
	dir, cube, ts := serveFixture(t, 1)
	want, err := cube.Point("*", "*", "*")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		name := "plain.dwarf"
		if i%2 == 1 {
			name = "indexed.dwarf"
		}
		got := getJSON(t, ts.URL+"/query/point?cube="+name+"&key=*&key=*&key=*", http.StatusOK)
		if agg := aggOf(t, got, "aggregate"); agg["sum"] != want.Sum {
			t.Fatalf("round %d: sum %v, want %v", i, agg["sum"], want.Sum)
		}
		reg := getJSON(t, ts.URL+"/cubes", http.StatusOK)
		cache, ok := reg["cache"].([]any)
		if !ok || len(cache) > 1 {
			t.Fatalf("round %d: cache %v exceeds capacity 1", i, reg["cache"])
		}
	}
	_ = dir
}

// TestServerConcurrent hammers one server from many goroutines; combined
// with -race in CI this checks the shared-view and LRU locking story.
func TestServerConcurrent(t *testing.T) {
	_, cube, ts := serveFixture(t, 2)
	want, err := cube.Point("d2", "north", "car")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "plain.dwarf"
			if g%2 == 1 {
				name = "indexed.dwarf"
			}
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/query/point?cube=" + name + "&key=d2&key=north&key=car")
				if err != nil {
					errs <- err
					return
				}
				var out map[string]any
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				agg, ok := out["aggregate"].(map[string]any)
				if !ok || agg["sum"] != want.Sum {
					errs <- fmt.Errorf("goroutine %d: got %v, want sum %v", g, out, want.Sum)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNewValidation covers the constructor's failure modes.
func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New with no dir did not error")
	}
	if _, err := New(Options{Dir: "/definitely/not/here"}); err == nil {
		t.Fatal("New with a missing dir did not error")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: f}); err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("New over a file: %v", err)
	}
}

// TestServerReloadsReplacedFile pins the cache-revalidation behavior: after
// a cube file is atomically replaced on disk, the next request serves the
// new cube, not the stale cached view.
func TestServerReloadsReplacedFile(t *testing.T) {
	dir, _, ts := serveFixture(t, 4)
	before := getJSON(t, ts.URL+"/query/point?cube=plain.dwarf&key=*&key=*&key=*", http.StatusOK)

	replacement, err := dwarf.New([]string{"Day", "Region", "Kind"}, []dwarf.Tuple{
		{Dims: []string{"d9", "north", "bike"}, Measure: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := replacement.EncodeIndexed(&buf); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".next.dwarf")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Ensure the mtime moves even on coarse filesystem clocks.
	now := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(tmp, now, now); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "plain.dwarf")); err != nil {
		t.Fatal(err)
	}

	after := getJSON(t, ts.URL+"/query/point?cube=plain.dwarf&key=*&key=*&key=*", http.StatusOK)
	got := aggOf(t, after, "aggregate")
	if got["sum"] != 100.0 || got["count"] != 1.0 {
		t.Fatalf("replaced cube not picked up: before %v, after %v",
			aggOf(t, before, "aggregate"), got)
	}
}
