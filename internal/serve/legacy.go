package serve

import (
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
)

// This file is the pre-append-encoder serving path, preserved verbatim and
// routed to by Options.ReflectJSON: anonymous map[string]any envelopes
// handed to a reflecting, indenting json.Encoder, with url.Values-based
// query parsing on the GET point path. It exists for two reasons:
//
//   - BENCH_http.json's before/after comparison measures the real old path,
//     not a flattering reconstruction of it.
//   - TestModesByteIdentical proves the append encoders reproduce the old
//     wire bytes exactly, response for response.
//
// Nothing here runs unless ReflectJSON is set. Do not "improve" this code;
// its value is that it does not change.

// writeJSON is the legacy reflection encoder: indented encoding/json
// straight to the wire. The append encoders replicate its output byte for
// byte (pinned by encode_test.go).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) legacyError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// legacyPointQuery is the seed's GET /query/point parameter parse: a full
// url.Values map per request.
func legacyPointQuery(r *http.Request) (cube string, keys []string) {
	q := r.URL.Query()
	cube = q.Get("cube")
	keys = q["key"]
	if len(keys) == 0 && q.Get("keys") != "" {
		keys = strings.Split(q.Get("keys"), ",")
	}
	return cube, keys
}

func (s *Server) legacyCubes(w http.ResponseWriter, cubes []cubeInfo) {
	out := map[string]any{
		"dir":   s.dir,
		"cubes": cubes,
		"cache": s.cache.snapshot(),
	}
	if s.store != nil {
		out["live"] = s.liveName
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) legacyPoint(w http.ResponseWriter, cube string, keys []string, agg dwarf.Aggregate) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": cube, "keys": keys, "aggregate": toAggJSON(agg),
	})
}

func (s *Server) legacyRange(w http.ResponseWriter, cube string, agg dwarf.Aggregate) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": cube, "aggregate": toAggJSON(agg),
	})
}

func (s *Server) legacyGroupBy(w http.ResponseWriter, cube, dim string, pageKeys []string,
	groups map[string]dwarf.Aggregate, offset, limit int, truncated bool) {

	out := make(map[string]aggJSON, len(pageKeys))
	for _, k := range pageKeys {
		out[k] = toAggJSON(groups[k])
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": cube, "dim": dim, "groups": out,
		"total_groups": len(groups), "offset": offset, "limit": limit,
		"truncated": truncated,
	})
}

func (s *Server) legacyTopK(w http.ResponseWriter, cube, dim string, by dwarf.Metric,
	pageEntries []dwarf.GroupEntry, total, offset, limit int, truncated bool) {

	out := make([]entryJSON, len(pageEntries))
	for i, e := range pageEntries {
		out[i] = entryJSON{Key: e.Key, Metric: by.Of(e.Agg), Aggregate: toAggJSON(e.Agg)}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": cube, "dim": dim, "by": by.String(),
		"entries": out, "total_entries": total,
		"offset": offset, "limit": limit, "truncated": truncated,
	})
}

func (s *Server) legacyRows(w http.ResponseWriter, cube string, dims []string,
	rows []dwarf.PivotGroup, total, offset, limit int, truncated bool) {

	out := make([]rowJSON, len(rows))
	for i, row := range rows {
		out[i] = rowJSON{Keys: row.Keys, Aggregate: toAggJSON(row.Agg)}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": cube, "dims": dims,
		"groups": out, "total_groups": total,
		"offset": offset, "limit": limit, "truncated": truncated,
	})
}

func (s *Server) legacyStats(w http.ResponseWriter, cube string, v *dwarf.CubeView, st dwarf.Stats) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cube":          cube,
		"dims":          v.Dims(),
		"source_tuples": v.NumSourceTuples(),
		"indexed":       v.Indexed(),
		"encoded_bytes": v.EncodedBytes(),
		"nodes":         st.Nodes,
		"cells":         st.Cells,
		"all_cells":     st.AllCells,
		"total_cells":   st.TotalCells(),
	})
}

func (s *Server) legacyIngest(w http.ResponseWriter, appended, total int) {
	writeJSON(w, http.StatusOK, map[string]any{
		"appended":     appended,
		"total_tuples": total,
	})
}

func (s *Server) legacyStoreStats(w http.ResponseWriter, st cubestore.Stats) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cube":  s.liveName,
		"stats": st,
	})
}
