package serve

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
)

// End-to-end live serving: start a live-mode server, POST tuple batches
// over HTTP, and hold every /query/* answer for the live cube equal to a
// dwarf.New batch build over the same tuples — while seals and compactions
// happen underneath (tiny SealTuples, auto-compaction on).

func liveFixture(t *testing.T, storeOpts cubestore.Options) (*cubestore.Store, *httptest.Server) {
	t.Helper()
	store, err := cubestore.Open(t.TempDir(), storeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s, err := New(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func liveTupleSpecs(tuples []dwarf.Tuple) []map[string]any {
	out := make([]map[string]any, len(tuples))
	for i, tu := range tuples {
		out[i] = map[string]any{"dims": tu.Dims, "measure": tu.Measure}
	}
	return out
}

func wantAgg(t *testing.T, got map[string]any, want dwarf.Aggregate, ctx string) {
	t.Helper()
	if got["sum"] != want.Sum || got["count"] != float64(want.Count) {
		t.Fatalf("%s: got %v, want %+v", ctx, got, want)
	}
}

func TestLiveServeEndToEnd(t *testing.T) {
	dims := []string{"Day", "Region", "Kind"}
	regions := []string{"north", "south", "east", "west"}
	kinds := []string{"bike", "car"}
	store, ts := liveFixture(t, cubestore.Options{
		Dims:          dims,
		SealTuples:    60,
		ChunkTuples:   16,
		CompactFanout: 2,
		NoSync:        true,
	})

	rng := rand.New(rand.NewSource(5))
	var all []dwarf.Tuple
	for batchNo := 0; batchNo < 40; batchNo++ {
		batch := make([]dwarf.Tuple, rng.Intn(12)+1)
		for i := range batch {
			batch[i] = dwarf.Tuple{
				Dims: []string{
					fmt.Sprintf("d%d", rng.Intn(5)),
					regions[rng.Intn(len(regions))],
					kinds[rng.Intn(len(kinds))],
				},
				Measure: float64(rng.Intn(7) + 1),
			}
		}
		resp := postJSON(t, ts.URL+"/ingest", map[string]any{"tuples": liveTupleSpecs(batch)}, 200)
		all = append(all, batch...)
		if resp["appended"] != float64(len(batch)) || resp["total_tuples"] != float64(len(all)) {
			t.Fatalf("ingest response %v after %d tuples", resp, len(all))
		}

		// Convergence is immediate: the ack covers the batch, so the very
		// next queries must reflect it.
		ref, err := dwarf.New(dims, all)
		if err != nil {
			t.Fatal(err)
		}
		got := getJSON(t, ts.URL+"/query/point?cube=live&key=*&key=*&key=*", 200)
		want, _ := ref.Point(dwarf.All, dwarf.All, dwarf.All)
		wantAgg(t, aggOf(t, got, "aggregate"), want, "ALL point")

		tu := batch[rng.Intn(len(batch))]
		got = getJSON(t, ts.URL+fmt.Sprintf("/query/point?cube=live&key=%s&key=%s&key=%s",
			tu.Dims[0], tu.Dims[1], tu.Dims[2]), 200)
		want, _ = ref.Point(tu.Dims...)
		wantAgg(t, aggOf(t, got, "aggregate"), want, "fresh tuple point")

		if batchNo%8 == 0 {
			rgot := postJSON(t, ts.URL+"/query/range", map[string]any{
				"cube":      "live",
				"selectors": []map[string]any{{"keys": []string{"d0", "d1", "d2"}}, {"lo": "east", "hi": "south"}},
			}, 200)
			rwant, _ := ref.Range([]dwarf.Selector{
				dwarf.SelectKeys("d0", "d1", "d2"),
				dwarf.SelectRange("east", "south"),
				dwarf.SelectAll(),
			})
			wantAgg(t, aggOf(t, rgot, "aggregate"), rwant, "range")

			ggot := postJSON(t, ts.URL+"/query/groupby", map[string]any{
				"cube": "live", "dim": "Region",
			}, 200)
			gwant, _ := ref.GroupBy(1, []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()})
			groups, ok := ggot["groups"].(map[string]any)
			if !ok || len(groups) != len(gwant) {
				t.Fatalf("groupby: got %v, want %d groups", ggot, len(gwant))
			}
			for k, a := range gwant {
				wantAgg(t, aggOf(t, map[string]any{"g": groups[k]}, "g"), a, "group "+k)
			}

			// The new kernel shapes reach the live store through the same
			// shared surface: top-k ranking and rollup rows over the store
			// fan-out must equal the batch cube's, order included.
			kgot := postJSON(t, ts.URL+"/query/topk", map[string]any{
				"cube": "live", "dim": "Kind", "k": 2, "by": "count",
			}, 200)
			kwant, _ := ref.TopK(2, make([]dwarf.Selector, 3),
				dwarf.TopKSpec{K: 2, By: dwarf.ByCount})
			entries, ok := kgot["entries"].([]any)
			if !ok || len(entries) != len(kwant) {
				t.Fatalf("live topk: got %v, want %d entries", kgot, len(kwant))
			}
			for i, e := range entries {
				m := e.(map[string]any)
				if m["key"] != kwant[i].Key {
					t.Fatalf("live topk entry %d = %v, want %+v", i, m, kwant[i])
				}
				wantAgg(t, aggOf(t, m, "aggregate"), kwant[i].Agg, "topk "+kwant[i].Key)
			}

			ugot := postJSON(t, ts.URL+"/query/rollup", map[string]any{
				"cube": "live", "keep": []string{"Region", "Kind"},
			}, 200)
			rows, ok := ugot["groups"].([]any)
			uwant, _ := ref.Pivot([]int{1, 2}, make([]dwarf.Selector, 3))
			if !ok || len(rows) != len(uwant) {
				t.Fatalf("live rollup: got %v, want %d rows", ugot, len(uwant))
			}
			for i, r := range rows {
				m := r.(map[string]any)
				keys := m["keys"].([]any)
				if keys[0] != uwant[i].Keys[0] || keys[1] != uwant[i].Keys[1] {
					t.Fatalf("live rollup row %d keys = %v, want %v", i, keys, uwant[i].Keys)
				}
				wantAgg(t, aggOf(t, m, "aggregate"), uwant[i].Agg, "rollup row")
			}
		}
	}

	// Seals and compactions really happened underneath the HTTP traffic.
	st := store.Stats()
	if st.Seals == 0 || st.Compactions == 0 {
		t.Fatalf("expected live seals and compactions during ingest, got %+v", st)
	}

	// /store/stats and /stats?cube=live expose the store.
	for _, url := range []string{ts.URL + "/store/stats", ts.URL + "/stats?cube=live"} {
		resp := getJSON(t, url, 200)
		stats, ok := resp["stats"].(map[string]any)
		if !ok {
			t.Fatalf("%s: no stats object: %v", url, resp)
		}
		if stats["total_tuples"] != float64(len(all)) {
			t.Fatalf("%s: total_tuples = %v, want %d", url, stats["total_tuples"], len(all))
		}
	}

	// The registry names the live cube.
	if resp := getJSON(t, ts.URL+"/cubes", 200); resp["live"] != "live" {
		t.Fatalf("/cubes missing live entry: %v", resp)
	}
}

func TestLiveServeValidation(t *testing.T) {
	_, ts := liveFixture(t, cubestore.Options{Dims: []string{"A", "B"}, NoSync: true})

	// Bad batches are rejected with 400 and ingest nothing.
	postJSON(t, ts.URL+"/ingest", map[string]any{"tuples": []map[string]any{
		{"dims": []string{"only-one"}, "measure": 1.0},
	}}, 400)
	postJSON(t, ts.URL+"/ingest", map[string]any{"tuples": []map[string]any{
		{"dims": []string{"x", "*"}, "measure": 1.0},
	}}, 400)
	postJSON(t, ts.URL+"/ingest", map[string]any{"tuples": []map[string]any{}}, 400)
	got := getJSON(t, ts.URL+"/query/point?cube=live&key=*&key=*", 200)
	wantAgg(t, aggOf(t, got, "aggregate"), dwarf.Aggregate{}, "empty store")

	// GET /ingest is rejected; unknown cubes on a live-only server 400 —
	// including /stats, which must not fall back to files relative to the
	// process working directory.
	getJSON(t, ts.URL+"/ingest", 400)
	getJSON(t, ts.URL+"/query/point?cube=nope&key=*&key=*", 400)
	getJSON(t, ts.URL+"/stats?cube=anything.dwarf", 400)
	getJSON(t, ts.URL+"/cubes", 200)

	// Closed store surfaces as 503.
	store, ts2 := liveFixture(t, cubestore.Options{Dims: []string{"A", "B"}, NoSync: true})
	store.Close()
	postJSON(t, ts2.URL+"/ingest", map[string]any{"tuples": []map[string]any{
		{"dims": []string{"x", "y"}, "measure": 1.0},
	}}, 503)
}
