package serve

import (
	"net/http"

	"repro/internal/dwarf"
)

// POST /query/partial is the cluster-node wire format (Options.ClusterNode):
// one request per query shape, answered UNPAGED with the node's raw partial
// result plus the store generation it was computed at. The coordinator
// (internal/cluster) merges these exactly as the store merges its own
// per-segment partials — Point/Range by aggregate merge, GroupBy/Pivot via
// the kernel's merge helpers, TopK from full group maps before the cut
// (which is why TopK has no partial shape of its own: a per-node K cut
// could misrank keys split across nodes, so the coordinator asks every
// node for the full "groupby" map instead).
//
// Responses reuse the zero-alloc append encoders. Group maps stream in map
// iteration order — the coordinator folds them into its own map, so no
// order is promised on this wire (unlike the paged client endpoints).

// partialRequest is the body of /query/partial. Shape selects the query;
// the other fields mirror the corresponding /query/* request.
type partialRequest struct {
	Shape     string         `json:"shape"`
	Cube      string         `json:"cube"`
	Keys      []string       `json:"keys,omitempty"`      // point
	Dim       string         `json:"dim,omitempty"`       // groupby
	Dims      []string       `json:"dims,omitempty"`      // pivot
	Selectors []selectorSpec `json:"selectors,omitempty"` // range/groupby/pivot
}

func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /query/partial"))
		return
	}
	var req partialRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	// The generation is read BEFORE the query, like the store's own cache
	// stamps: a write racing the query leaves the stamp older than the
	// data, never newer, so a coordinator comparing stamps across retries
	// can only under-claim freshness.
	var gen uint64
	if s.store != nil && req.Cube == s.liveName {
		gen = s.store.Generation()
	}
	buf := getBuf()
	switch req.Shape {
	case "point":
		agg, err := v.Point(req.Keys...)
		if err != nil {
			putBuf(buf)
			s.fail(w, err)
			return
		}
		*buf = appendPartialAggResponse((*buf)[:0], gen, agg)
	case "range":
		sels, err := selectors(req.Selectors, v.NumDims())
		if err == nil {
			var agg dwarf.Aggregate
			if agg, err = v.Range(sels); err == nil {
				*buf = appendPartialAggResponse((*buf)[:0], gen, agg)
			}
		}
		if err != nil {
			putBuf(buf)
			s.fail(w, err)
			return
		}
	case "groupby":
		dim, err := dimIndex(v, req.Dim)
		var groups map[string]dwarf.Aggregate
		if err == nil {
			var sels []dwarf.Selector
			if sels, err = selectors(req.Selectors, v.NumDims()); err == nil {
				groups, err = v.GroupBy(dim, sels)
			}
		}
		if err != nil {
			putBuf(buf)
			s.fail(w, err)
			return
		}
		*buf = appendPartialGroupsResponse((*buf)[:0], gen, groups)
	case "pivot":
		dims := make([]int, len(req.Dims))
		var err error
		for i, d := range req.Dims {
			if dims[i], err = dimIndex(v, d); err != nil {
				break
			}
		}
		var rows []dwarf.PivotGroup
		if err == nil {
			var sels []dwarf.Selector
			if sels, err = selectors(req.Selectors, v.NumDims()); err == nil {
				rows, err = v.Pivot(dims, sels)
			}
		}
		if err != nil {
			putBuf(buf)
			s.fail(w, err)
			return
		}
		*buf = appendPartialRowsResponse((*buf)[:0], gen, rows)
	default:
		putBuf(buf)
		s.fail(w, badRequest("unknown partial shape %q (want point, range, groupby or pivot)", req.Shape))
		return
	}
	send(w, http.StatusOK, buf)
}

// appendPartialAggResponse emits the point/range partial envelope.
func appendPartialAggResponse(buf []byte, gen uint64, agg dwarf.Aggregate) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("generation")
	w.uint(gen)
	w.key("aggregate")
	w.agg(agg)
	w.close('}')
	return w.done()
}

// appendPartialGroupsResponse emits the groupby partial envelope: the full
// unpaged group map, streamed in map iteration order.
func appendPartialGroupsResponse(buf []byte, gen uint64, groups map[string]dwarf.Aggregate) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("generation")
	w.uint(gen)
	w.key("groups")
	w.open('{')
	for k, a := range groups {
		w.key2(k)
		w.agg(a)
	}
	w.close('}')
	w.close('}')
	return w.done()
}

// appendPartialRowsResponse emits the pivot partial envelope: the full
// unpaged sorted rows.
func appendPartialRowsResponse(buf []byte, gen uint64, rows []dwarf.PivotGroup) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("generation")
	w.uint(gen)
	w.key("rows")
	w.open('[')
	for i := range rows {
		w.member()
		w.open('{')
		w.key("keys")
		w.strs(rows[i].Keys)
		w.key("aggregate")
		w.agg(rows[i].Agg)
		w.close('}')
	}
	w.close(']')
	w.close('}')
	return w.done()
}
