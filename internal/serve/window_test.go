package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

import "repro/internal/dwarf"

// windowFixture serves a ten-day date-keyed cube with the clock pinned to
// 2015-06-10 18:00 UTC, so every window compiles to a knowable range.
func windowFixture(t *testing.T) *httptest.Server {
	t.Helper()
	var tuples []dwarf.Tuple
	for day := 1; day <= 10; day++ {
		for i, kind := range []string{"bike", "car"} {
			tuples = append(tuples, dwarf.Tuple{
				Dims:    []string{fmt.Sprintf("2015-06-%02d", day), kind},
				Measure: float64(day*3 + i),
			})
		}
	}
	cube, err := dwarf.New([]string{"Date", "Kind"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "week.dwarf"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cube.EncodeIndexed(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Dir: dir, TimeDim: "Date", TimeLayout: "2006-01-02",
		Now: func() time.Time { return time.Date(2015, 6, 10, 18, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestWindowedQueries checks that "window" compiles to exactly the range
// selector a client would write by hand: every windowed response must be
// deeply equal to its explicit-range twin, on every query shape.
func TestWindowedQueries(t *testing.T) {
	ts := windowFixture(t)
	explicit := func(lo, hi string) []map[string]any {
		return []map[string]any{{"lo": lo, "hi": hi}, {}}
	}

	// now-72h = 2015-06-07 18:00, formatted to the day grain: [06-07, 06-10].
	for _, win := range []string{"72h", "3d"} {
		got := postJSON(t, ts.URL+"/query/range",
			map[string]any{"cube": "week.dwarf", "window": win}, http.StatusOK)
		want := postJSON(t, ts.URL+"/query/range",
			map[string]any{"cube": "week.dwarf", "selectors": explicit("2015-06-07", "2015-06-10")}, http.StatusOK)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %q: %v, explicit range %v", win, got, want)
		}
		all := postJSON(t, ts.URL+"/query/range",
			map[string]any{"cube": "week.dwarf"}, http.StatusOK)
		if reflect.DeepEqual(got, all) {
			t.Fatalf("window %q did not restrict the scan: %v", win, got)
		}
	}

	got := postJSON(t, ts.URL+"/query/groupby",
		map[string]any{"cube": "week.dwarf", "dim": "Kind", "window": "2d"}, http.StatusOK)
	want := postJSON(t, ts.URL+"/query/groupby",
		map[string]any{"cube": "week.dwarf", "dim": "Kind", "selectors": explicit("2015-06-08", "2015-06-10")}, http.StatusOK)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed groupby: %v, explicit %v", got, want)
	}

	got = postJSON(t, ts.URL+"/query/topk",
		map[string]any{"cube": "week.dwarf", "dim": "Date", "k": 3, "window": "5d"}, http.StatusOK)
	want = postJSON(t, ts.URL+"/query/topk",
		map[string]any{"cube": "week.dwarf", "dim": "Date", "k": 3, "selectors": explicit("2015-06-05", "2015-06-10")}, http.StatusOK)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed topk: %v, explicit %v", got, want)
	}

	got = postJSON(t, ts.URL+"/query/pivot",
		map[string]any{"cube": "week.dwarf", "dims": []string{"Kind"}, "window": "4d"}, http.StatusOK)
	want = postJSON(t, ts.URL+"/query/pivot",
		map[string]any{"cube": "week.dwarf", "dims": []string{"Kind"}, "selectors": explicit("2015-06-06", "2015-06-10")}, http.StatusOK)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed pivot: %v, explicit %v", got, want)
	}
}

// TestWindowValidation pins every 400 the window path owes the client.
func TestWindowValidation(t *testing.T) {
	ts := windowFixture(t)

	// A window never silently overrides an explicit time-dimension
	// selector — keys or range alike.
	for _, sel := range []map[string]any{
		{"keys": []string{"2015-06-01"}},
		{"lo": "2015-06-01", "hi": "2015-06-03"},
	} {
		resp := postJSON(t, ts.URL+"/query/range", map[string]any{
			"cube": "week.dwarf", "window": "2d", "selectors": []map[string]any{sel, {}},
		}, http.StatusBadRequest)
		if !strings.Contains(resp["error"].(string), "conflict") {
			t.Fatalf("conflicting selector: %v", resp)
		}
	}
	// A restriction on some OTHER dimension composes fine.
	postJSON(t, ts.URL+"/query/range", map[string]any{
		"cube": "week.dwarf", "window": "2d",
		"selectors": []map[string]any{{}, {"keys": []string{"bike"}}},
	}, http.StatusOK)

	// Malformed or non-positive windows.
	for _, win := range []string{"xyz", "-5h", "0s", "0d", "-2d", "1.5d", "d"} {
		postJSON(t, ts.URL+"/query/range",
			map[string]any{"cube": "week.dwarf", "window": win}, http.StatusBadRequest)
	}

	// A server with no time dimension configured refuses windows outright.
	_, _, plain := serveFixture(t, 2)
	resp := postJSON(t, plain.URL+"/query/range",
		map[string]any{"cube": "indexed", "window": "24h"}, http.StatusBadRequest)
	if !strings.Contains(resp["error"].(string), "no time dimension") {
		t.Fatalf("no-TimeDim error: %v", resp)
	}

	// TimeDim configured but absent from the queried cube.
	dir, _, _ := serveFixture(t, 2)
	s, err := New(Options{Dir: dir, TimeDim: "Nope", TimeLayout: "2006-01-02"})
	if err != nil {
		t.Fatal(err)
	}
	miss := httptest.NewServer(s.Handler())
	t.Cleanup(miss.Close)
	postJSON(t, miss.URL+"/query/range",
		map[string]any{"cube": "indexed", "window": "24h"}, http.StatusBadRequest)

	// TimeDim without a layout is a config error, not a per-request 400.
	if _, err := New(Options{Dir: dir, TimeDim: "Day"}); err == nil {
		t.Fatal("New accepted TimeDim without TimeLayout")
	}
}

// TestWarm pins the startup pre-open path: warmed cubes show loaded in the
// registry before any query, and a bad name fails loudly instead of
// serving cold.
func TestWarm(t *testing.T) {
	dir, _, _ := serveFixture(t, 4)
	s, err := New(Options{Dir: dir, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warm([]string{"indexed.dwarf", "plain.dwarf"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	loaded := map[string]bool{}
	for _, c := range getJSON(t, ts.URL+"/cubes", http.StatusOK)["cubes"].([]any) {
		row := c.(map[string]any)
		loaded[row["name"].(string)] = row["loaded"].(bool)
	}
	if !loaded["indexed.dwarf"] || !loaded["plain.dwarf"] || loaded["junk.dwarf"] {
		t.Fatalf("loaded after warm: %v", loaded)
	}

	for _, bad := range []string{"nope.dwarf", "junk.dwarf"} {
		err := s.Warm([]string{bad})
		if err == nil || !strings.Contains(err.Error(), bad) {
			t.Fatalf("Warm(%q) = %v, want an error naming it", bad, err)
		}
	}
}
