// Hand-rolled JSON response encoders: one append-to-buffer emitter per
// response envelope, producing output byte-identical to what the legacy
// reflection path (encoding/json with two-space indent and HTML escaping)
// produces for the equivalent typed value. The differential suite in
// encode_test.go pins that equivalence per envelope, including fuzzed keys
// and float values.
//
// Discipline: emitters only ever append to the caller's buffer — no
// intermediate containers, no reflection, no per-row allocation — so a
// paged group-by response costs the buffer plus whatever the query itself
// allocated, and a point response costs nothing beyond the pooled buffer.
// Buffers come from a sync.Pool (getBuf/putBuf) and oversized ones are
// dropped rather than pooled, keeping the steady-state pool footprint at a
// few KiB per P.
//
// Divergence policy (documented in docs/SERVING.md): non-finite floats
// (NaN, ±Inf) encode as null. The reflection encoder errors mid-response
// and silently truncates the body instead; null is strictly better and the
// only envelope field that can carry a non-finite value is an aggregate of
// a pathological cube.
package serve

import (
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
)

// respBufSize is the initial capacity of pooled response buffers; large
// enough for every fixed-shape envelope and the common one-page group
// response without growing.
const respBufSize = 8 << 10

// respBufMax is the largest buffer returned to the pool; anything bigger
// (a maximal group page) is left to the GC so one giant response cannot
// pin memory forever.
const respBufMax = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, respBufSize)
	return &b
}}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(p *[]byte) {
	if cap(*p) > respBufMax {
		return
	}
	*p = (*p)[:0]
	bufPool.Put(p)
}

// jw emits indented JSON byte-identical to a json.Encoder configured with
// SetIndent("", "  "): members on their own lines, two spaces per depth,
// ": " after keys, empty containers collapsed to {} / [].
type jw struct {
	buf   []byte
	depth int
	first [12]bool // first[depth]: no member written yet at this depth
}

func (w *jw) nl() {
	w.buf = append(w.buf, '\n')
	for i := 0; i < w.depth; i++ {
		w.buf = append(w.buf, ' ', ' ')
	}
}

// member starts the next object member or array element at this depth:
// comma separator, newline, indentation.
func (w *jw) member() {
	if !w.first[w.depth] {
		w.buf = append(w.buf, ',')
	}
	w.first[w.depth] = false
	w.nl()
}

func (w *jw) open(c byte) {
	w.buf = append(w.buf, c)
	w.depth++
	w.first[w.depth] = true
}

func (w *jw) close(c byte) {
	empty := w.first[w.depth]
	w.depth--
	if !empty {
		w.nl()
	}
	w.buf = append(w.buf, c)
}

// key emits an object key and its ": " separator. Envelope keys are fixed
// ASCII literals, so no escaping pass is needed.
func (w *jw) key(name string) {
	w.member()
	w.buf = append(w.buf, '"')
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, '"', ':', ' ')
}

func (w *jw) str(s string)   { w.buf = appendJSONString(w.buf, s) }
func (w *jw) num(f float64)  { w.buf = appendJSONFloat(w.buf, f) }
func (w *jw) int(i int64)    { w.buf = strconv.AppendInt(w.buf, i, 10) }
func (w *jw) uint(u uint64)  { w.buf = strconv.AppendUint(w.buf, u, 10) }
func (w *jw) boolean(v bool) { w.buf = strconv.AppendBool(w.buf, v) }
func (w *jw) null()          { w.buf = append(w.buf, "null"...) }

// strs emits a []string with encoding/json's nil-vs-empty distinction.
func (w *jw) strs(ss []string) {
	if ss == nil {
		w.null()
		return
	}
	w.open('[')
	for _, s := range ss {
		w.member()
		w.str(s)
	}
	w.close(']')
}

// agg emits the wire form of an aggregate, matching aggJSON's field order.
func (w *jw) agg(a dwarf.Aggregate) {
	w.open('{')
	w.key("sum")
	w.num(a.Sum)
	w.key("count")
	w.int(a.Count)
	w.key("min")
	w.num(a.Min)
	w.key("max")
	w.num(a.Max)
	w.key("avg")
	w.num(a.Avg())
	w.close('}')
}

// done terminates the document the way Encoder.Encode does.
func (w *jw) done() []byte { return append(w.buf, '\n') }

const hexDigits = "0123456789abcdef"

// appendJSONString escapes and appends s exactly as encoding/json does with
// HTML escaping on: quotes, backslashes and control characters escaped
// (\n, \r, \t short forms, \u00xx otherwise), <, >, & as \u00xx, invalid
// UTF-8 as �, and U+2028/U+2029 as \u202x.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == ' ' || r == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat formats f exactly as encoding/json does for float64 —
// shortest representation, 'e' form outside [1e-6, 1e21) with the exponent's
// leading zero trimmed — except that non-finite values encode as null (the
// reflection encoder errors and truncates the response instead).
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendJSONTime appends t in time.Time's MarshalJSON form (RFC 3339 with
// trailing-zero-trimmed nanoseconds, quoted).
func appendJSONTime(b []byte, t time.Time) []byte {
	b = append(b, '"')
	b = t.AppendFormat(b, time.RFC3339Nano)
	return append(b, '"')
}

// ---- response envelopes ----
//
// Field order in each emitter matches what the reflection encoder produces
// for the corresponding typed response struct (server.go), which in turn
// preserves the sorted-key order of the historical map[string]any envelopes.

// appendErrorResponse emits {"error": msg}.
func appendErrorResponse(buf []byte, msg string) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("error")
	w.str(msg)
	w.close('}')
	return w.done()
}

// appendPointResponse emits the /query/point envelope.
func appendPointResponse(buf []byte, cube string, keys []string, a dwarf.Aggregate) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("aggregate")
	w.agg(a)
	w.key("cube")
	w.str(cube)
	w.key("keys")
	w.strs(keys)
	w.close('}')
	return w.done()
}

// appendRangeResponse emits the /query/range envelope.
func appendRangeResponse(buf []byte, cube string, a dwarf.Aggregate) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("aggregate")
	w.agg(a)
	w.key("cube")
	w.str(cube)
	w.close('}')
	return w.done()
}

// appendGroupByResponse emits the /query/groupby envelope, streaming the
// page's rows straight out of the kernel's group map in pageKeys order —
// no intermediate per-row containers.
func appendGroupByResponse(buf []byte, cube, dim string, pageKeys []string,
	groups map[string]dwarf.Aggregate, total, offset, limit int, truncated bool) []byte {

	w := jw{buf: buf}
	w.open('{')
	w.key("cube")
	w.str(cube)
	w.key("dim")
	w.str(dim)
	w.key("groups")
	w.open('{')
	for _, k := range pageKeys {
		w.key2(k)
		w.agg(groups[k])
	}
	w.close('}')
	w.key("limit")
	w.int(int64(limit))
	w.key("offset")
	w.int(int64(offset))
	w.key("total_groups")
	w.int(int64(total))
	w.key("truncated")
	w.boolean(truncated)
	w.close('}')
	return w.done()
}

// key2 is key for dynamic (escaping-required) object keys like group names.
func (w *jw) key2(name string) {
	w.member()
	w.buf = appendJSONString(w.buf, name)
	w.buf = append(w.buf, ':', ' ')
}

// appendTopKResponse emits the /query/topk envelope, streaming the page's
// entries directly.
func appendTopKResponse(buf []byte, cube, dim string, by dwarf.Metric,
	entries []dwarf.GroupEntry, total, offset, limit int, truncated bool) []byte {

	w := jw{buf: buf}
	w.open('{')
	w.key("by")
	w.str(by.String())
	w.key("cube")
	w.str(cube)
	w.key("dim")
	w.str(dim)
	w.key("entries")
	w.open('[')
	for i := range entries {
		w.member()
		w.open('{')
		w.key("key")
		w.str(entries[i].Key)
		w.key("metric")
		w.num(by.Of(entries[i].Agg))
		w.key("aggregate")
		w.agg(entries[i].Agg)
		w.close('}')
	}
	w.close(']')
	w.key("limit")
	w.int(int64(limit))
	w.key("offset")
	w.int(int64(offset))
	w.key("total_entries")
	w.int(int64(total))
	w.key("truncated")
	w.boolean(truncated)
	w.close('}')
	return w.done()
}

// appendRowsResponse emits the keyed-rows envelope shared by /query/rollup
// and /query/pivot: one {"keys": […], "aggregate": …} object per page row.
func appendRowsResponse(buf []byte, cube string, dims []string,
	rows []dwarf.PivotGroup, total, offset, limit int, truncated bool) []byte {

	w := jw{buf: buf}
	w.open('{')
	w.key("cube")
	w.str(cube)
	w.key("dims")
	w.strs(dims)
	w.key("groups")
	w.open('[')
	for i := range rows {
		w.member()
		w.open('{')
		w.key("keys")
		w.strs(rows[i].Keys)
		w.key("aggregate")
		w.agg(rows[i].Agg)
		w.close('}')
	}
	w.close(']')
	w.key("limit")
	w.int(int64(limit))
	w.key("offset")
	w.int(int64(offset))
	w.key("total_groups")
	w.int(int64(total))
	w.key("truncated")
	w.boolean(truncated)
	w.close('}')
	return w.done()
}

// appendStatsResponse emits the /stats envelope.
func appendStatsResponse(buf []byte, cube string, dims []string,
	sourceTuples int, indexed bool, encodedBytes int, st dwarf.Stats) []byte {

	w := jw{buf: buf}
	w.open('{')
	w.key("all_cells")
	w.int(int64(st.AllCells))
	w.key("cells")
	w.int(int64(st.Cells))
	w.key("cube")
	w.str(cube)
	w.key("dims")
	w.strs(dims)
	w.key("encoded_bytes")
	w.int(int64(encodedBytes))
	w.key("indexed")
	w.boolean(indexed)
	w.key("nodes")
	w.int(int64(st.Nodes))
	w.key("source_tuples")
	w.int(int64(sourceTuples))
	w.key("total_cells")
	w.int(int64(st.TotalCells()))
	w.close('}')
	return w.done()
}

// appendCubesResponse emits the /cubes registry envelope. live is included
// only when the server fronts a store (haveLive).
func appendCubesResponse(buf []byte, dir string, cubes []cubeInfo,
	cache []CacheInfo, live string, haveLive bool) []byte {

	w := jw{buf: buf}
	w.open('{')
	w.key("cache")
	w.open('[')
	for i := range cache {
		w.member()
		w.open('{')
		w.key("name")
		w.str(cache[i].Name)
		w.key("size_bytes")
		w.int(cache[i].SizeBytes)
		w.key("loaded_at")
		w.buf = appendJSONTime(w.buf, cache[i].LoadedAt)
		w.key("hits")
		w.int(cache[i].Hits)
		w.key("indexed")
		w.boolean(cache[i].Indexed)
		w.close('}')
	}
	w.close(']')
	w.key("cubes")
	w.open('[')
	for i := range cubes {
		w.member()
		w.open('{')
		w.key("name")
		w.str(cubes[i].Name)
		w.key("size_bytes")
		w.int(cubes[i].SizeBytes)
		w.key("indexed")
		w.boolean(cubes[i].Indexed)
		w.key("loaded")
		w.boolean(cubes[i].Loaded)
		w.close('}')
	}
	w.close(']')
	w.key("dir")
	w.str(dir)
	if haveLive {
		w.key("live")
		w.str(live)
	}
	w.close('}')
	return w.done()
}

// appendIngestResponse emits the /ingest acknowledgement envelope.
func appendIngestResponse(buf []byte, appended, total int) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("appended")
	w.int(int64(appended))
	w.key("total_tuples")
	w.int(int64(total))
	w.close('}')
	return w.done()
}

// appendStoreStatsResponse emits the /store/stats envelope, mirroring
// cubestore.Stats's struct field order and omitempty error fields.
func appendStoreStatsResponse(buf []byte, cube string, st cubestore.Stats) []byte {
	w := jw{buf: buf}
	w.open('{')
	w.key("cube")
	w.str(cube)
	w.key("stats")
	w.open('{')
	w.key("dims")
	w.strs(st.Dims)
	w.key("segments")
	if st.Segments == nil {
		w.null()
	} else {
		w.open('[')
		for i := range st.Segments {
			w.member()
			w.open('{')
			w.key("file")
			w.str(st.Segments[i].File)
			w.key("tuples")
			w.int(int64(st.Segments[i].Tuples))
			w.key("level")
			w.int(int64(st.Segments[i].Level))
			w.key("bytes")
			w.int(int64(st.Segments[i].Bytes))
			w.close('}')
		}
		w.close(']')
	}
	if len(st.Rollups) > 0 {
		w.key("rollups")
		w.open('[')
		for i := range st.Rollups {
			w.member()
			w.open('{')
			w.key("file")
			w.str(st.Rollups[i].File)
			w.key("dims")
			w.strs(st.Rollups[i].Dims)
			w.key("covers")
			w.int(int64(st.Rollups[i].Covers))
			w.key("tuples")
			w.int(int64(st.Rollups[i].Tuples))
			w.key("bytes")
			w.int(int64(st.Rollups[i].Bytes))
			w.close('}')
		}
		w.close(']')
	}
	w.key("sealed_tuples")
	w.int(int64(st.SealedTuples))
	w.key("live_tuples")
	w.int(int64(st.LiveTuples))
	w.key("total_tuples")
	w.int(int64(st.TotalTuples))
	w.key("sealed_bytes")
	w.int(st.SealedBytes)
	w.key("wal_gen")
	w.uint(st.WALGen)
	w.key("generation")
	w.uint(st.Generation)
	w.key("wal_bytes")
	w.int(st.WALBytes)
	w.key("seals")
	w.int(st.Seals)
	w.key("compactions")
	w.int(st.Compactions)
	w.key("appended")
	w.int(st.Appended)
	w.key("streaming_compactions")
	w.int(st.StreamingCompactions)
	w.key("fallback_compactions")
	w.int(st.FallbackCompactions)
	w.key("cache_hits")
	w.int(st.CacheHits)
	w.key("cache_misses")
	w.int(st.CacheMisses)
	w.key("cache_stale")
	w.int(st.CacheStale)
	w.key("cache_partial_hits")
	w.int(st.CachePartialHits)
	w.key("cache_partial_misses")
	w.int(st.CachePartialMisses)
	w.key("cache_bytes")
	w.int(st.CacheBytes)
	w.key("cache_entries")
	w.int(int64(st.CacheEntries))
	w.key("rollup_hits")
	w.int(st.RollupHits)
	w.key("segments_scanned")
	w.int(st.SegmentsScanned)
	w.key("segments_pruned")
	w.int(st.SegmentsPruned)
	w.key("group_commits")
	w.int(st.GroupCommits)
	w.key("fsyncs_saved")
	w.int(st.FsyncsSaved)
	w.key("frozen_memtables")
	w.int(st.FrozenMemtables)
	w.key("seal_queue_depth")
	w.int(int64(st.SealQueueDepth))
	w.key("dir_sync_errors")
	w.int(st.DirSyncErrors)
	if st.LastSealError != "" {
		w.key("last_seal_error")
		w.str(st.LastSealError)
	}
	if st.LastCompactError != "" {
		w.key("last_compact_error")
		w.str(st.LastCompactError)
	}
	if st.LastDirSyncError != "" {
		w.key("last_dir_sync_error")
		w.str(st.LastDirSyncError)
	}
	w.close('}')
	w.close('}')
	return w.done()
}
