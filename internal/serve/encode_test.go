package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
)

// encodeReflect is the reference encoder: exactly what writeJSON puts on
// the wire for v.
func encodeReflect(t *testing.T, v any) []byte {
	t.Helper()
	var sb bytes.Buffer
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	return sb.Bytes()
}

// nastyStrings exercises every escaping branch: quotes, backslashes,
// control bytes, HTML metacharacters, invalid UTF-8, U+2028/U+2029,
// multi-byte runes.
var nastyStrings = []string{
	"",
	"plain",
	`quote " backslash \ done`,
	"newline\n tab\t cr\r backspace\b formfeed\f",
	"ctrl \x00\x01\x1f end",
	"html <script>&amp;</script>",
	"invalid \xff\xfe utf8",
	"line seps \u2028 and \u2029",
	"münchen 東京 🚲",
	strings.Repeat("long ", 100) + "<tail>",
}

func TestAppendJSONStringDifferential(t *testing.T) {
	for _, s := range nastyStrings {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Errorf("string %q:\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestAppendJSONFloatDifferential(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1e-6, 9.999999e-7, 1e-7, 3.14159,
		1e20, 1e21, 2.5e22, -1.7976931348623157e308, 5e-324, 42, 1234567.875,
	}
	for _, f := range vals {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Errorf("float %v:\n got %s\nwant %s", f, got, want)
		}
	}
	// Policy divergence: non-finite values encode as null where the
	// reflection encoder would error out mid-response.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := appendJSONFloat(nil, f); string(got) != "null" {
			t.Errorf("float %v: got %s, want null", f, got)
		}
	}
}

func TestAppendJSONTimeDifferential(t *testing.T) {
	times := []time.Time{
		{},
		time.Date(2026, 8, 8, 12, 30, 45, 0, time.UTC),
		time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.UTC),
		time.Date(2026, 8, 8, 12, 30, 45, 120000000, time.FixedZone("+01", 3600)),
		time.Now(),
		time.Now().Round(time.Second),
	}
	for _, tm := range times {
		want, err := json.Marshal(tm)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONTime(nil, tm); !bytes.Equal(got, want) {
			t.Errorf("time %v:\n got %s\nwant %s", tm, got, want)
		}
	}
}

func FuzzJSONString(f *testing.F) {
	for _, s := range nastyStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		if got := appendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Errorf("string %q:\n got %s\nwant %s", s, got, want)
		}
	})
}

func FuzzJSONFloat(f *testing.F) {
	f.Add(uint64(0))
	f.Add(math.Float64bits(1e-7))
	f.Add(math.Float64bits(2.5e22))
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, v); !bytes.Equal(got, want) {
			t.Errorf("float %v (bits %#x):\n got %s\nwant %s", v, bits, got, want)
		}
	})
}

// TestEnvelopeEncodersDifferential pins every envelope encoder byte-for-byte
// against the reflection encoding of the equivalent typed response struct,
// including empty pages and nil-vs-empty slice distinctions.
func TestEnvelopeEncodersDifferential(t *testing.T) {
	agg := dwarf.Aggregate{Sum: 17.25, Count: 3, Min: -2.5, Max: 11}
	agg2 := dwarf.Aggregate{Sum: 1e-7, Count: 1, Min: 2.5e22, Max: 0.125}

	check := func(name string, got []byte, ref any) {
		t.Helper()
		if want := encodeReflect(t, ref); !bytes.Equal(got, want) {
			t.Errorf("%s:\n got: %s\nwant: %s", name, got, want)
		}
	}

	for _, msg := range nastyStrings {
		check("error", appendErrorResponse(nil, msg), errorResponse{Error: msg})
	}

	check("point nil keys", appendPointResponse(nil, "c", nil, agg),
		pointResponse{Aggregate: toAggJSON(agg), Cube: "c", Keys: nil})
	check("point empty keys", appendPointResponse(nil, "c", []string{}, agg),
		pointResponse{Aggregate: toAggJSON(agg), Cube: "c", Keys: []string{}})
	check("point nasty", appendPointResponse(nil, nastyStrings[6], nastyStrings, agg2),
		pointResponse{Aggregate: toAggJSON(agg2), Cube: nastyStrings[6], Keys: nastyStrings})

	check("range", appendRangeResponse(nil, "cube<&>", agg),
		rangeResponse{Aggregate: toAggJSON(agg), Cube: "cube<&>"})

	groups := map[string]dwarf.Aggregate{
		"north": agg, "south": agg2, `we"st`: {Sum: 7, Count: 1, Min: 7, Max: 7},
	}
	pageKeys := []string{"north", "south", `we"st`} // sorted
	refGroups := map[string]aggJSON{}
	for _, k := range pageKeys {
		refGroups[k] = toAggJSON(groups[k])
	}
	check("groupby", appendGroupByResponse(nil, "c", "Region", pageKeys, groups, 9, 2, 3, true),
		groupByResponse{Cube: "c", Dim: "Region", Groups: refGroups,
			Limit: 3, Offset: 2, TotalGroups: 9, Truncated: true})
	check("groupby empty", appendGroupByResponse(nil, "c", "Region", nil, nil, 0, 5, 3, false),
		groupByResponse{Cube: "c", Dim: "Region", Groups: map[string]aggJSON{},
			Limit: 3, Offset: 5, TotalGroups: 0, Truncated: false})

	entries := []dwarf.GroupEntry{{Key: "bike", Agg: agg}, {Key: "<car>", Agg: agg2}}
	refEntries := []entryJSON{
		{Key: "bike", Metric: dwarf.ByAvg.Of(agg), Aggregate: toAggJSON(agg)},
		{Key: "<car>", Metric: dwarf.ByAvg.Of(agg2), Aggregate: toAggJSON(agg2)},
	}
	check("topk", appendTopKResponse(nil, "c", "Kind", dwarf.ByAvg, entries, 5, 0, 2, true),
		topKResponse{By: "avg", Cube: "c", Dim: "Kind", Entries: refEntries,
			Limit: 2, Offset: 0, TotalEntries: 5, Truncated: true})
	check("topk empty", appendTopKResponse(nil, "c", "Kind", dwarf.BySum, nil, 0, 0, 10, false),
		topKResponse{By: "sum", Cube: "c", Dim: "Kind", Entries: []entryJSON{},
			Limit: 10, Offset: 0, TotalEntries: 0, Truncated: false})

	rows := []dwarf.PivotGroup{
		{Keys: []string{"d1", "north"}, Agg: agg},
		{Keys: []string{"d2", `so"uth`}, Agg: agg2},
	}
	refRows := []rowJSON{
		{Keys: rows[0].Keys, Aggregate: toAggJSON(agg)},
		{Keys: rows[1].Keys, Aggregate: toAggJSON(agg2)},
	}
	check("rows", appendRowsResponse(nil, "c", []string{"Day", "Region"}, rows, 7, 1, 2, true),
		rowsResponse{Cube: "c", Dims: []string{"Day", "Region"}, Groups: refRows,
			Limit: 2, Offset: 1, TotalGroups: 7, Truncated: true})
	check("rows empty nil dims", appendRowsResponse(nil, "c", nil, nil, 0, 0, 4, false),
		rowsResponse{Cube: "c", Dims: nil, Groups: []rowJSON{},
			Limit: 4, Offset: 0, TotalGroups: 0, Truncated: false})

	st := dwarf.Stats{Nodes: 12, Cells: 30, AllCells: 12, SourceTuples: 5}
	check("stats", appendStatsResponse(nil, "c.dwarf", []string{"Day", "Region"}, 5, true, 999, st),
		statsResponse{AllCells: 12, Cells: 30, Cube: "c.dwarf", Dims: []string{"Day", "Region"},
			EncodedBytes: 999, Indexed: true, Nodes: 12, SourceTuples: 5,
			TotalCells: st.TotalCells()})

	cubes := []cubeInfo{
		{Name: "a.dwarf", SizeBytes: 123, Indexed: true, Loaded: false},
		{Name: "b<&>.dwarf", SizeBytes: 1 << 40, Indexed: false, Loaded: true},
	}
	cache := []CacheInfo{
		{Name: "a.dwarf", SizeBytes: 123, LoadedAt: time.Now(), Hits: 7, Indexed: true},
		{Name: "z.dwarf", SizeBytes: 9, LoadedAt: time.Date(2026, 1, 2, 3, 4, 5, 678900000, time.UTC), Hits: 0, Indexed: false},
	}
	check("cubes live", appendCubesResponse(nil, "/tmp/cubes", cubes, cache, "live", true),
		cubesResponse{Cache: cache, Cubes: cubes, Dir: "/tmp/cubes", Live: "live"})
	check("cubes no live", appendCubesResponse(nil, "", []cubeInfo{}, []CacheInfo{}, "", false),
		cubesResponse{Cache: []CacheInfo{}, Cubes: []cubeInfo{}, Dir: ""})

	check("ingest", appendIngestResponse(nil, 128, 4096),
		ingestResponse{Appended: 128, TotalTuples: 4096})

	sstats := cubestore.Stats{
		Dims:         []string{"Day", "Region", "Kind"},
		Segments:     []cubestore.SegmentInfo{{File: "seg-000001.dwarf", Tuples: 100, Level: 1, Bytes: 2048}},
		SealedTuples: 100, LiveTuples: 3, TotalTuples: 103,
		SealedBytes: 2048, WALGen: 4, Generation: 17, WALBytes: 96,
		Seals: 2, Compactions: 1, Appended: 103,
		StreamingCompactions: 1, FallbackCompactions: 0,
		CacheHits: 40, CacheMisses: 2, CachePartialHits: 120, CachePartialMisses: 6,
		CacheBytes: 1 << 16, CacheEntries: 9, RollupHits: 13,
		GroupCommits: 42, FsyncsSaved: 61,
		FrozenMemtables: 5, SealQueueDepth: 2, DirSyncErrors: 1,
	}
	check("storestats", appendStoreStatsResponse(nil, "live", sstats),
		storeStatsResponse{Cube: "live", Stats: sstats})
	sstats.Rollups = []cubestore.RollupInfo{
		{File: "rollup-000002.dwarf", Dims: []string{"Region", "Kind"}, Covers: 3, Tuples: 12, Bytes: 512},
		{File: `rollup-<&"weird>.dwarf`, Dims: nil, Covers: 0, Tuples: 0, Bytes: 0},
	}
	check("storestats rollups", appendStoreStatsResponse(nil, "live", sstats),
		storeStatsResponse{Cube: "live", Stats: sstats})
	sstats.Rollups = []cubestore.RollupInfo{}
	check("storestats empty rollups", appendStoreStatsResponse(nil, "live", sstats),
		storeStatsResponse{Cube: "live", Stats: sstats})
	sstats.Rollups = nil
	sstats.LastSealError, sstats.LastCompactError = "disk full", `bad "segment"`
	sstats.LastDirSyncError = "sync /store: input/output error"
	sstats.Segments = nil
	check("storestats errors", appendStoreStatsResponse(nil, "live", sstats),
		storeStatsResponse{Cube: "live", Stats: sstats})
}

// TestModesByteIdentical replays one request battery against two servers
// over the same cube directory — append encoders vs Options.ReflectJSON —
// and requires byte-identical status and body for every exchange.
func TestModesByteIdentical(t *testing.T) {
	dir, _, _ := serveFixture(t, 4)
	fast, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(Options{Dir: dir, ReflectJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	tsFast := httptest.NewServer(fast.Handler())
	defer tsFast.Close()
	tsSlow := httptest.NewServer(slow.Handler())
	defer tsSlow.Close()

	do := func(method, path, body string) (int, string) {
		t.Helper()
		var status int
		var bodies [2]string
		for i, ts := range []*httptest.Server{tsFast, tsSlow} {
			var resp *http.Response
			var err error
			if method == http.MethodGet {
				resp, err = http.Get(ts.URL + path)
			} else {
				resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			}
			if err != nil {
				t.Fatalf("%s %s: %v", method, path, err)
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("%s %s: read: %v", method, path, err)
			}
			if i == 0 {
				status = resp.StatusCode
			} else if resp.StatusCode != status {
				t.Fatalf("%s %s: status fast=%d reflect=%d", method, path, status, resp.StatusCode)
			}
			bodies[i] = string(b)
		}
		if bodies[0] != bodies[1] {
			t.Fatalf("%s %s: body mismatch\nfast:    %q\nreflect: %q", method, path, bodies[0], bodies[1])
		}
		return status, bodies[0]
	}

	// /cubes first, while both caches are empty (loaded_at timestamps would
	// otherwise differ between the two servers).
	do(http.MethodGet, "/cubes", "")

	do(http.MethodGet, "/query/point?cube=indexed&key=d1&key=north&key=bike", "")
	do(http.MethodGet, "/query/point?cube=indexed&keys=d2,*,*", "")
	do(http.MethodGet, "/query/point?cube=plain&key=%2A&key=north&key=%2A", "")
	do(http.MethodGet, "/query/point?cube=indexed", "") // arity error, keys null
	do(http.MethodGet, "/query/point?cube=missing&key=a&key=b&key=c", "")
	do(http.MethodGet, "/query/point?cube=junk&key=a&key=b&key=c", "")
	do(http.MethodPost, "/query/point", `{"cube":"indexed","keys":["*","*","bike"]}`)
	do(http.MethodPost, "/query/point", `{bad json`)

	do(http.MethodPost, "/query/range", `{"cube":"indexed","selectors":[{"lo":"d1","hi":"d2"}]}`)
	do(http.MethodPost, "/query/groupby", `{"cube":"indexed","dim":"Region"}`)
	do(http.MethodPost, "/query/groupby", `{"cube":"indexed","dim":"Region","limit":1,"offset":1}`)
	do(http.MethodPost, "/query/groupby", `{"cube":"indexed","dim":"Nope"}`)
	do(http.MethodPost, "/query/topk", `{"cube":"indexed","dim":"Kind","k":2,"by":"count"}`)
	do(http.MethodPost, "/query/rollup", `{"cube":"indexed","keep":["Region"]}`)
	do(http.MethodPost, "/query/pivot", `{"cube":"indexed","dims":["Region","Kind"]}`)
	do(http.MethodPost, "/query/pivot", `{"cube":"indexed","dims":[]}`)
	do(http.MethodGet, "/stats?cube=indexed", "")

	// Oversized body: clean 413 from both paths.
	big := `{"cube":"indexed","keys":["` + strings.Repeat("x", maxQueryBodyBytes+16) + `"]}`
	status, _ := do(http.MethodPost, "/query/point", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", status)
	}
}

// TestPivotEndpoint sanity-checks the new /query/pivot shape: sorted rows,
// named columns, paging fields.
func TestPivotEndpoint(t *testing.T) {
	_, cube, ts := serveFixture(t, 2)
	out := postJSON(t, ts.URL+"/query/pivot",
		map[string]any{"cube": "indexed", "dims": []string{"Kind", "Region"}}, http.StatusOK)
	wantRows, err := cube.Pivot([]int{2, 1}, []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	if got := out["total_groups"].(float64); int(got) != len(wantRows) {
		t.Fatalf("total_groups = %v, want %d", got, len(wantRows))
	}
	dims := out["dims"].([]any)
	if len(dims) != 2 || dims[0] != "Kind" || dims[1] != "Region" {
		t.Fatalf("dims = %v, want [Kind Region]", dims)
	}
	rows := out["groups"].([]any)
	if len(rows) != len(wantRows) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantRows))
	}
	first := rows[0].(map[string]any)
	keys := first["keys"].([]any)
	if keys[0] != wantRows[0].Keys[0] || keys[1] != wantRows[0].Keys[1] {
		t.Fatalf("first row keys = %v, want %v", keys, wantRows[0].Keys)
	}
}

// TestEncoderAllocs pins the allocation budget of the hot encoders: with a
// pre-grown buffer every envelope encoder runs allocation-free, point and
// paged group-by included — the regression the reflection path can't pass.
func TestEncoderAllocs(t *testing.T) {
	agg := dwarf.Aggregate{Sum: 17.25, Count: 3, Min: -2.5, Max: 11}
	keys := []string{"d1", "north", "bike"}
	groups := map[string]dwarf.Aggregate{}
	var pageKeys []string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("group-%03d", i)
		groups[k] = agg
		pageKeys = append(pageKeys, k)
	}
	buf := make([]byte, 0, 64<<10)

	cases := []struct {
		name string
		emit func() []byte
	}{
		{"point", func() []byte { return appendPointResponse(buf, "indexed", keys, agg) }},
		{"range", func() []byte { return appendRangeResponse(buf, "indexed", agg) }},
		{"error", func() []byte { return appendErrorResponse(buf, "cube not found") }},
		{"groupby-100", func() []byte {
			return appendGroupByResponse(buf, "indexed", "Region", pageKeys, groups, 100, 0, 100, false)
		}},
		{"ingest", func() []byte { return appendIngestResponse(buf, 10, 20) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, func() { tc.emit() }); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// TestHandlerAllocsPoint bounds the full handler path for a GET point query
// (mux dispatch, query-string parse, cache hit, stat revalidation, encode,
// pooled buffer). The legacy reflection path costs ~10x the canonical
// bound; creep back toward it fails here before it shows up in a benchmark.
func TestHandlerAllocsPoint(t *testing.T) {
	dir, _, _ := serveFixture(t, 4)
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	cases := []struct {
		name   string
		path   string
		budget float64
	}{
		// Canonical file name: one stat, cached path, zero-alloc envelope.
		// The budget covers the stat's path-bytes conversion plus the
		// Content-Length header (value string + slice) with slack for one.
		{"canonical", "/query/point?cube=indexed.dwarf&key=d1&key=north&key=bike", 5},
		// Extensionless alias: the convenience fallback stats twice and
		// joins the path per request, so it is bounded, not optimal.
		{"alias", "/query/point?cube=indexed&key=d1&key=north&key=bike", 12},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, tc.path, nil)
		rw := &nullResponseWriter{h: make(http.Header)}
		h.ServeHTTP(rw, req) // warm the view cache and pools
		if rw.status != http.StatusOK {
			t.Fatalf("%s: warmup status %d", tc.name, rw.status)
		}
		if n := testing.AllocsPerRun(500, func() { h.ServeHTTP(rw, req) }); n > tc.budget {
			t.Errorf("%s GET /query/point: %v allocs/request, budget %v", tc.name, n, tc.budget)
		}
	}
}

type nullResponseWriter struct {
	h      http.Header
	status int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(code int)        { w.status = code }
