package serve

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/dwarf"
)

// viewCache is a small LRU of hot CubeViews keyed by cube file name. Views
// are immutable and safe for concurrent readers, so cache hits share one
// view across every in-flight request; eviction just drops the reference
// and lets outstanding readers finish on the garbage-collected copy.
type viewCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	name     string
	path     string // precomputed filepath.Join(dir, name)
	view     *dwarf.CubeView
	size     int64
	modTime  time.Time
	loadedAt time.Time
	hits     int64
}

func newViewCache(capacity int) *viewCache {
	if capacity < 1 {
		capacity = 1
	}
	return &viewCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached view for name, promoting it to most recently
// used. size and modTime are the file's current stat: an entry loaded from
// an older generation of the file (e.g. after an atomic WriteCubeFile
// replace) is dropped so the caller reloads fresh bytes.
func (c *viewCache) get(name string, size int64, modTime time.Time) (*dwarf.CubeView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[name]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.size != size || !ent.modTime.Equal(modTime) {
		c.ll.Remove(el)
		delete(c.byKey, name)
		return nil, false
	}
	c.ll.MoveToFront(el)
	ent.hits++
	return ent.view, true
}

// path returns the cached entry's precomputed file path without promoting
// it, so the hot request path revalidates without a per-request
// filepath.Join.
func (c *viewCache) path(name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[name]; ok {
		return el.Value.(*cacheEntry).path, true
	}
	return "", false
}

// add inserts a freshly loaded view, evicting from the cold end past
// capacity. When two requests race to load the same cube, the first insert
// wins — unless the two loads saw different stat pairs (the file was
// atomically replaced between them): handing the loser the winner's view
// would answer its request from the wrong file generation, and the stale
// view would sit at the front of the LRU until the next get revalidation.
// On a stat mismatch the entry is replaced with the caller's load; either
// racer may actually be newer, but each request is answered from the bytes
// it read, and the next get re-stats the file and self-heals the entry.
func (c *viewCache) add(name, path string, v *dwarf.CubeView, size int64, modTime time.Time) *dwarf.CubeView {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[name]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.size != size || !ent.modTime.Equal(modTime) {
			el.Value = &cacheEntry{name: name, path: path, view: v, size: size, modTime: modTime, loadedAt: time.Now()}
			c.ll.MoveToFront(el)
			return v
		}
		c.ll.MoveToFront(el)
		return ent.view
	}
	el := c.ll.PushFront(&cacheEntry{name: name, path: path, view: v, size: size, modTime: modTime, loadedAt: time.Now()})
	c.byKey[name] = el
	for c.ll.Len() > c.cap {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.byKey, cold.Value.(*cacheEntry).name)
	}
	return v
}

// CacheInfo is one cached view's metadata, hot end first in snapshots.
type CacheInfo struct {
	Name      string    `json:"name"`
	SizeBytes int64     `json:"size_bytes"`
	LoadedAt  time.Time `json:"loaded_at"`
	Hits      int64     `json:"hits"`
	Indexed   bool      `json:"indexed"`
}

// snapshot lists the cache contents, most recently used first.
func (c *viewCache) snapshot() []CacheInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheInfo, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		out = append(out, CacheInfo{
			Name: ent.name, SizeBytes: ent.size, LoadedAt: ent.loadedAt,
			Hits: ent.hits, Indexed: ent.view.Indexed(),
		})
	}
	return out
}

// lookup reports whether name is cached without promoting it.
func (c *viewCache) lookup(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[name]
	return ok
}
