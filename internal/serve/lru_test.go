package serve

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dwarf"
)

// writeCubeFile is repro.WriteCubeFile's temp-file-and-rename replace (the
// root package imports serve, so the test re-states it here).
func writeCubeFile(t *testing.T, c *dwarf.Cube, path string) {
	t.Helper()
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dwarfcube-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(tmp.Name())
	if err := c.EncodeIndexed(tmp); err != nil {
		tmp.Close()
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		t.Fatal(err)
	}
}

// TestViewCacheAddReplaceRace pins the stale-insert fix in viewCache.add:
// two requests race to load the same cube, the file is atomically replaced
// (a WriteCubeFile-style rename) between their stat+read phases, and the slower
// loader — which read the FRESH bytes — reaches add second. It must be
// handed its own fresh view, not the winner's stale-generation one, and
// the cache entry must carry the fresh stat pair so it survives the next
// get revalidation instead of pinning a dead generation. The flow runs
// under both response encoders.
func TestViewCacheAddReplaceRace(t *testing.T) {
	for _, reflectJSON := range []bool{false, true} {
		t.Run(fmt.Sprintf("reflectJSON=%v", reflectJSON), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "c.dwarf")

			cubeA, err := dwarf.New([]string{"Day"}, []dwarf.Tuple{
				{Dims: []string{"d1"}, Measure: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Different tuple count => different encoded size, so the stat
			// pair differs even on filesystems with coarse mtimes.
			cubeB, err := dwarf.New([]string{"Day"}, []dwarf.Tuple{
				{Dims: []string{"d1"}, Measure: 9},
				{Dims: []string{"d2"}, Measure: 9},
			})
			if err != nil {
				t.Fatal(err)
			}
			writeCubeFile(t, cubeA, path)

			srv, err := New(Options{Dir: dir, ReflectJSON: reflectJSON})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// Racer 1 stats and reads the original file, then stalls before
			// inserting.
			sizeA, mtA, err := statFile(path)
			if err != nil {
				t.Fatal(err)
			}
			dataA, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			viewA, err := dwarf.OpenView(dataA)
			if err != nil {
				t.Fatal(err)
			}

			// The atomic replace lands between the two loads.
			writeCubeFile(t, cubeB, path)

			// Racer 2 loads the replaced file.
			sizeB, mtB, err := statFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if sizeA == sizeB && mtA.Equal(mtB) {
				t.Fatal("fixture: replacement did not change the stat pair")
			}
			dataB, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			viewB, err := dwarf.OpenView(dataB)
			if err != nil {
				t.Fatal(err)
			}

			// Racer 1 inserts first and keeps its own view.
			if got := srv.cache.add("c.dwarf", path, viewA, sizeA, mtA); got != viewA {
				t.Fatal("first insert must win for its own request")
			}
			// Racer 2 read the fresh generation: it must not be answered
			// from the stale entry.
			if got := srv.cache.add("c.dwarf", path, viewB, sizeB, mtB); got != viewB {
				t.Fatal("add handed a fresh load the stale entry's view")
			}
			// The entry now carries the fresh stat pair: a revalidating get
			// hits instead of reloading.
			if v, ok := srv.cache.get("c.dwarf", sizeB, mtB); !ok || v != viewB {
				t.Fatalf("entry not replaced: got %v, ok=%v", v, ok)
			}

			// End to end in this mode: the served answer is cube B's.
			body := getJSON(t, ts.URL+"/query/point?cube=c&key=*", 200)
			agg, _ := body["aggregate"].(map[string]any)
			if agg["sum"] != 18.0 {
				t.Fatalf("served sum %v, want 18 (the replaced cube)", agg["sum"])
			}
		})
	}
}
