package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/query"
)

// TestPlannedPathSharedResultsRace pins the planned query path's read-only
// contract under the race detector: warm TopK/Pivot/GroupBy results are
// shared between the qcache and every concurrent caller, so any in-place
// sort, filter or truncation of a cached value — in serve's paging, the
// kernel's TopK finishing step, or a name-level helper — shows up as a
// data race here. One goroutine deliberately mutates DrillDown's returned
// map, which must be a private copy, never the cache-shared one.
func TestPlannedPathSharedResultsRace(t *testing.T) {
	dims := []string{"Day", "Region", "Kind"}
	store, ts := liveFixture(t, cubestore.Options{
		Dims:        dims,
		SealTuples:  50,
		ChunkTuples: 16,
		NoSync:      true,
		CacheBytes:  1 << 20,
		Rollups:     [][]string{{"Region", "Kind"}},
	})

	var tuples []dwarf.Tuple
	for day := 0; day < 6; day++ {
		for r, region := range []string{"north", "south", "east", "west"} {
			for k, kind := range []string{"bike", "car", "scooter"} {
				tuples = append(tuples, dwarf.Tuple{
					Dims:    []string{fmt.Sprintf("d%d", day), region, kind},
					Measure: float64(day + r + k + 1),
				})
			}
		}
	}
	if err := store.Append(tuples); err != nil {
		t.Fatal(err)
	}

	// Warm every shape once so the readers below hit cache-shared values.
	all := make([]dwarf.Selector, len(dims))
	if _, err := store.TopK(1, all, dwarf.TopKSpec{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Pivot([]int{1, 2}, all); err != nil {
		t.Fatal(err)
	}

	const loops = 40
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				fn(i)
			}
		}()
	}

	// Paged HTTP reads over the cached slices (window() subslices them).
	run(func(i int) {
		postJSON(t, ts.URL+"/query/topk", map[string]any{
			"cube": "live", "dim": "Region", "k": 4, "offset": i % 3, "limit": 2,
		}, 200)
	})
	run(func(i int) {
		postJSON(t, ts.URL+"/query/pivot", map[string]any{
			"cube": "live", "dims": []string{"Region", "Kind"}, "offset": i % 5, "limit": 3,
		}, 200)
	})
	run(func(i int) {
		postJSON(t, ts.URL+"/query/rollup", map[string]any{
			"cube": "live", "keep": []string{"Region", "Kind"}, "offset": i % 5, "limit": 3,
		}, 200)
	})
	run(func(i int) {
		postJSON(t, ts.URL+"/query/groupby", map[string]any{
			"cube": "live", "dim": "Kind", "offset": i % 2, "limit": 2,
		}, 200)
	})
	// Same canonical cache key as the DrillDown below: the reader and the
	// mutator share one qcache entry.
	run(func(i int) {
		postJSON(t, ts.URL+"/query/groupby", map[string]any{
			"cube": "live", "dim": "Region",
			"selectors": []map[string]any{{"keys": []string{"d1"}}},
		}, 200)
	})
	// Direct warm queries racing the HTTP reads over the same cache entries.
	run(func(i int) {
		if _, err := store.TopK(1, all, dwarf.TopKSpec{K: 4}); err != nil {
			t.Error(err)
		}
	})
	run(func(i int) {
		if _, err := store.Pivot([]int{1, 2}, all); err != nil {
			t.Error(err)
		}
	})
	// DrillDown's result is the caller's to mutate; before it copied, this
	// goroutine raced every GroupBy/TopK reader above on the shared map.
	run(func(i int) {
		m, err := query.DrillDown(store, map[string]string{"Day": "d1"}, "Region")
		if err != nil {
			t.Error(err)
			return
		}
		for k := range m {
			delete(m, k)
		}
		m["mutated"] = dwarf.Aggregate{Count: 1}
	})
	wg.Wait()
}
