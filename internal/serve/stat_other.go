//go:build !linux

package serve

import (
	"os"
	"time"
)

// statFile is the portable fallback for platforms without the direct-stat
// fast path in stat_linux.go.
func statFile(path string) (size int64, modTime time.Time, err error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, time.Time{}, err
	}
	return st.Size(), st.ModTime(), nil
}
