//go:build linux

package serve

import (
	"os"
	"syscall"
	"time"
)

// statFile returns a file's size and mtime through a direct stat syscall
// into a stack-allocated Stat_t. os.Stat allocates a FileInfo (and its
// internal stat buffer) per call, which profiled as the largest allocation
// source on the cached point-query path — revalidation runs on every
// request. Errors come back as *os.PathError so errors.Is(err,
// os.ErrNotExist) keeps working.
func statFile(path string) (size int64, modTime time.Time, err error) {
	var st syscall.Stat_t
	for {
		e := syscall.Stat(path, &st)
		if e == nil {
			return st.Size, time.Unix(st.Mtim.Sec, st.Mtim.Nsec), nil
		}
		if e != syscall.EINTR {
			return 0, time.Time{}, &os.PathError{Op: "stat", Path: path, Err: e}
		}
	}
}
