package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dwarf"
)

// TestServerTopK drives /query/topk over both encodings and checks the
// ranked entries against the in-memory cube's kernel answer.
func TestServerTopK(t *testing.T) {
	_, cube, ts := serveFixture(t, 4)
	want, err := cube.TopK(0, make([]dwarf.Selector, 3), dwarf.TopKSpec{K: 2, By: dwarf.BySum})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plain.dwarf", "indexed.dwarf"} {
		got := postJSON(t, ts.URL+"/query/topk", map[string]any{
			"cube": name, "dim": "Day", "k": 2,
		}, http.StatusOK)
		entries, ok := got["entries"].([]any)
		if !ok || len(entries) != len(want) {
			t.Fatalf("%s: topk entries = %v, want %d", name, got["entries"], len(want))
		}
		for i, e := range entries {
			m := e.(map[string]any)
			if m["key"] != want[i].Key || m["metric"] != want[i].Agg.Sum {
				t.Fatalf("%s: entry %d = %v, want %+v", name, i, m, want[i])
			}
		}
		// The K cut is what the client asked for, not a response truncation.
		if got["by"] != "sum" || got["truncated"] != false || got["total_entries"] != 2.0 {
			t.Fatalf("%s: topk envelope = %v", name, got)
		}
	}

	// Iceberg threshold on count: only regions appearing >= 2 times.
	got := postJSON(t, ts.URL+"/query/topk", map[string]any{
		"cube": "indexed.dwarf", "dim": "Region", "by": "count", "threshold": 2,
	}, http.StatusOK)
	entries := got["entries"].([]any)
	wantIce, _ := cube.TopK(1, make([]dwarf.Selector, 3),
		dwarf.TopKSpec{By: dwarf.ByCount, Threshold: 2, HasThreshold: true})
	if len(entries) != len(wantIce) {
		t.Fatalf("iceberg: %d entries, want %d (%v)", len(entries), len(wantIce), got)
	}

	postJSON(t, ts.URL+"/query/topk", map[string]any{
		"cube": "plain.dwarf", "dim": "Nope",
	}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/query/topk", map[string]any{
		"cube": "plain.dwarf", "dim": "Day", "by": "median",
	}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/query/topk", map[string]any{
		"cube": "plain.dwarf", "dim": "Day", "k": -1,
	}, http.StatusBadRequest)
}

// TestServerRollUp drives /query/rollup and checks the rows against the
// engine's RollUp on the in-memory cube.
func TestServerRollUp(t *testing.T) {
	_, cube, ts := serveFixture(t, 4)
	for _, name := range []string{"plain.dwarf", "indexed.dwarf"} {
		got := postJSON(t, ts.URL+"/query/rollup", map[string]any{
			"cube": name, "keep": []string{"Region"},
		}, http.StatusOK)
		rows, ok := got["groups"].([]any)
		if !ok || len(rows) == 0 {
			t.Fatalf("%s: rollup rows = %v", name, got["groups"])
		}
		for _, r := range rows {
			m := r.(map[string]any)
			keys := m["keys"].([]any)
			want, err := cube.Point(dwarf.All, keys[0].(string), dwarf.All)
			if err != nil {
				t.Fatal(err)
			}
			agg := m["aggregate"].(map[string]any)
			if agg["sum"] != want.Sum || agg["count"] != float64(want.Count) {
				t.Fatalf("%s: rollup row %v = %v, wildcard point says %+v", name, keys, agg, want)
			}
		}
		dims := got["dims"].([]any)
		if len(dims) != 1 || dims[0] != "Region" {
			t.Fatalf("%s: rollup dims = %v", name, dims)
		}
	}
	postJSON(t, ts.URL+"/query/rollup", map[string]any{
		"cube": "plain.dwarf", "keep": []string{"Nope"},
	}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/query/rollup", map[string]any{
		"cube": "plain.dwarf",
	}, http.StatusBadRequest)
}

// TestServerGroupLimit pins the response cap: a group-by (and rollup) over
// a high-cardinality dimension returns at most GroupLimit groups per
// response, flags the cut, and pages deterministically with limit/offset.
func TestServerGroupLimit(t *testing.T) {
	dir := t.TempDir()
	var tuples []dwarf.Tuple
	for i := 0; i < 40; i++ {
		tuples = append(tuples, dwarf.Tuple{
			Dims:    []string{keyOf(i), "x"},
			Measure: float64(i),
		})
	}
	cube, err := dwarf.New([]string{"K", "V"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.EncodeIndexed(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wide.dwarf"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Dir: dir, GroupLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Default window: first 10 keys in sorted order, truncated.
	got := postJSON(t, ts.URL+"/query/groupby", map[string]any{
		"cube": "wide.dwarf", "dim": "K",
	}, http.StatusOK)
	groups := aggOf(t, got, "groups")
	if len(groups) != 10 || got["truncated"] != true || got["total_groups"] != 40.0 {
		t.Fatalf("capped groupby = %d groups, envelope %v", len(groups), got)
	}
	if _, ok := groups[keyOf(0)]; !ok {
		t.Fatalf("first page misses smallest key: %v", groups)
	}

	// Requested limit above the cap is clamped to the cap.
	got = postJSON(t, ts.URL+"/query/groupby", map[string]any{
		"cube": "wide.dwarf", "dim": "K", "limit": 1000,
	}, http.StatusOK)
	if groups := aggOf(t, got, "groups"); len(groups) != 10 || got["limit"] != 10.0 {
		t.Fatalf("limit not clamped to cap: %d groups, envelope %v", len(groups), got)
	}

	// Paging: walk the whole key space in 4 windows, no overlap, no gap;
	// truncated stays true until the final page, whose false terminates the
	// client loop.
	seen := map[string]bool{}
	for offset := 0; offset < 40; offset += 10 {
		got := postJSON(t, ts.URL+"/query/groupby", map[string]any{
			"cube": "wide.dwarf", "dim": "K", "offset": offset,
		}, http.StatusOK)
		if wantMore := offset+10 < 40; got["truncated"] != wantMore {
			t.Fatalf("page at offset %d: truncated = %v, want %v", offset, got["truncated"], wantMore)
		}
		for k := range aggOf(t, got, "groups") {
			if seen[k] {
				t.Fatalf("key %q served twice while paging", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != 40 {
		t.Fatalf("paging covered %d of 40 keys", len(seen))
	}

	// Past the end: empty page, not truncated (nothing remains after it) —
	// a paging client terminates here; total_groups still reports the size.
	got = postJSON(t, ts.URL+"/query/groupby", map[string]any{
		"cube": "wide.dwarf", "dim": "K", "offset": 100,
	}, http.StatusOK)
	if groups := aggOf(t, got, "groups"); len(groups) != 0 || got["truncated"] != false || got["total_groups"] != 40.0 {
		t.Fatalf("past-the-end page = %v", got)
	}

	// The same cap governs rollup rows and topk entries.
	got = postJSON(t, ts.URL+"/query/rollup", map[string]any{
		"cube": "wide.dwarf", "keep": []string{"K"},
	}, http.StatusOK)
	if rows := got["groups"].([]any); len(rows) != 10 || got["truncated"] != true {
		t.Fatalf("capped rollup = %d rows, envelope %v", len(rows), got)
	}
	got = postJSON(t, ts.URL+"/query/topk", map[string]any{
		"cube": "wide.dwarf", "dim": "K",
	}, http.StatusOK)
	if entries := got["entries"].([]any); len(entries) != 10 || got["truncated"] != true {
		t.Fatalf("capped topk = %d entries, envelope %v", len(entries), got)
	}

	postJSON(t, ts.URL+"/query/groupby", map[string]any{
		"cube": "wide.dwarf", "dim": "K", "offset": -1,
	}, http.StatusBadRequest)
}

func keyOf(i int) string { return "k" + string(rune('a'+i/10)) + string(rune('0'+i%10)) }
