// Package serve implements dwarfd's HTTP query service: a registry of
// encoded cube files served zero-copy through dwarf.CubeView, with a small
// LRU of hot views shared by all request handlers. Queries never decode the
// node graph — the paper's cubes are built once and queried many times, so
// the serving path reads the encoded bytes directly (§5.1's anticipated
// query-time argument, pushed to its logical end).
//
// Endpoints:
//
//	GET  /cubes                     registry of cube files + the hot cache
//	GET  /query/point?cube=N&key=K… point/ALL query, one key per dimension
//	POST /query/range               {"cube","selectors":[{…} per dimension]}
//	POST /query/groupby             {"cube","dim","selectors":[…]}
//	GET  /stats?cube=N              node/cell counts off the encoded bytes
//
// With Options.Store set the server also runs in live mode: the reserved
// cube name "live" (Options.LiveName) routes every /query/* shape to the
// cubestore — fanning out over sealed segments plus the memtable, so
// answers reflect every acknowledged tuple — and two more endpoints appear:
//
//	POST /ingest                    {"tuples":[{"dims":[…],"measure":…},…]}
//	GET  /store/stats               segment inventory, WAL position, counters
//
// A selector is {"keys":[…]} for an explicit set, {"lo":…,"hi":…} for an
// inclusive range, or {} (or omitted trailing entries) for ALL.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
)

// DefaultCacheSize is the LRU capacity when Options.CacheSize is zero.
const DefaultCacheSize = 8

// DefaultLiveName is the reserved cube name routing queries to the live
// store when Options.LiveName is empty.
const DefaultLiveName = "live"

// Options configures a Server.
type Options struct {
	// Dir is the directory of .dwarf cube files served by base name. It may
	// be empty when Store is set (live-only serving).
	Dir string
	// CacheSize caps the hot-view LRU (DefaultCacheSize when zero).
	CacheSize int
	// Store, when set, enables live mode: /ingest appends to it and the
	// LiveName cube answers queries over it.
	Store *cubestore.Store
	// LiveName is the reserved cube name for the live store
	// (DefaultLiveName when empty).
	LiveName string
}

// Server answers cube queries over HTTP straight off encoded cube files
// and, in live mode, straight off a cubestore.
type Server struct {
	dir      string
	cache    *viewCache
	store    *cubestore.Store
	liveName string
}

// New builds a Server over opts.Dir (which must exist when set) and/or the
// live store.
func New(opts Options) (*Server, error) {
	if opts.Dir == "" && opts.Store == nil {
		return nil, errors.New("serve: neither cube directory nor live store set")
	}
	if opts.Dir != "" {
		st, err := os.Stat(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("serve: %s is not a directory", opts.Dir)
		}
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	liveName := opts.LiveName
	if liveName == "" {
		liveName = DefaultLiveName
	}
	return &Server{dir: opts.Dir, cache: newViewCache(size), store: opts.Store, liveName: liveName}, nil
}

// ListenAndServe runs a Server at addr until the listener fails.
func ListenAndServe(addr string, opts Options) error {
	s, err := New(opts)
	if err != nil {
		return err
	}
	return http.ListenAndServe(addr, s.Handler())
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cubes", s.handleCubes)
	mux.HandleFunc("/query/point", s.handlePoint)
	mux.HandleFunc("/query/range", s.handleRange)
	mux.HandleFunc("/query/groupby", s.handleGroupBy)
	mux.HandleFunc("/stats", s.handleStats)
	if s.store != nil {
		mux.HandleFunc("/ingest", s.handleIngest)
		mux.HandleFunc("/store/stats", s.handleStoreStats)
	}
	return mux
}

// httpError carries a status code out of the load/parse helpers.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, os.ErrNotExist):
		status = http.StatusNotFound
	case errors.Is(err, dwarf.ErrBadQuery),
		errors.Is(err, dwarf.ErrDimMismatch),
		errors.Is(err, dwarf.ErrReservedKey),
		errors.Is(err, dwarf.ErrNotFiniteValue):
		status = http.StatusBadRequest
	case errors.Is(err, cubestore.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, dwarf.ErrCorruptCube), errors.Is(err, dwarf.ErrBadMagic), errors.Is(err, dwarf.ErrBadVersion):
		// The file on disk is not a servable cube: the client didn't err,
		// the registry did.
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// view resolves a cube name to a (possibly cached) CubeView. Names are
// confined to base names inside the serving directory; a bare name without
// extension falls back to name.dwarf. Cached entries are revalidated
// against the file's size and mtime, so an atomically replaced cube file
// (WriteCubeFile) is picked up on the next request.
//
// Views are deliberately backed by a heap copy (ReadFile) rather than the
// mmap path: an evicted heap view stays valid for in-flight readers until
// the GC collects it, whereas unmapping under a concurrent reader would
// fault. Trailer-carrying files skip the payload checksum the same way
// OpenViewFile does — the trailer is validated and every query stays
// bounds-checked.
func (s *Server) view(name string) (*dwarf.CubeView, error) {
	if name == "" {
		return nil, badRequest("missing cube parameter")
	}
	if s.dir == "" {
		// Live-only server: never resolve file names relative to the
		// process working directory.
		return nil, badRequest("cube %q not found (live-only server serves %q)", name, s.liveName)
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return nil, badRequest("cube name %q must be a plain file name", name)
	}
	path := filepath.Join(s.dir, name)
	st, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) && filepath.Ext(name) == "" {
		return s.view(name + ".dwarf")
	}
	if err != nil {
		return nil, err
	}
	if v, ok := s.cache.get(name, st.Size(), st.ModTime()); ok {
		return v, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v *dwarf.CubeView
	if dwarf.HasOffsetTrailer(data) {
		v, err = dwarf.OpenViewTrusted(data)
	} else {
		v, err = dwarf.OpenView(data)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s.cache.add(name, v, st.Size(), st.ModTime()), nil
}

// querier is the query surface shared by zero-copy views and the live
// store; the /query/* handlers are written against it.
type querier interface {
	Point(keys ...string) (dwarf.Aggregate, error)
	Range(sels []dwarf.Selector) (dwarf.Aggregate, error)
	GroupBy(dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error)
	Dims() []string
	NumDims() int
}

// source resolves a cube name to its query target: the live store for the
// reserved live name, a (cached) file-backed view otherwise.
func (s *Server) source(name string) (querier, error) {
	if s.store != nil && name == s.liveName {
		return s.store, nil
	}
	return s.view(name)
}

// aggJSON is the wire form of an aggregate.
type aggJSON struct {
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Avg   float64 `json:"avg"`
}

func toAggJSON(a dwarf.Aggregate) aggJSON {
	return aggJSON{Sum: a.Sum, Count: a.Count, Min: a.Min, Max: a.Max, Avg: a.Avg()}
}

// selectorSpec is the wire form of a dwarf.Selector.
type selectorSpec struct {
	Keys []string `json:"keys,omitempty"`
	Lo   *string  `json:"lo,omitempty"`
	Hi   *string  `json:"hi,omitempty"`
}

func (sp selectorSpec) selector(i int) (dwarf.Selector, error) {
	switch {
	case sp.Lo != nil || sp.Hi != nil:
		if sp.Lo == nil || sp.Hi == nil || len(sp.Keys) > 0 {
			return dwarf.Selector{}, badRequest("selector %d: a range needs lo and hi and no keys", i)
		}
		return dwarf.SelectRange(*sp.Lo, *sp.Hi), nil
	case len(sp.Keys) > 0:
		return dwarf.SelectKeys(sp.Keys...), nil
	default:
		return dwarf.SelectAll(), nil
	}
}

// selectors pads missing trailing specs with ALL so clients can send only
// the dimensions they restrict.
func selectors(specs []selectorSpec, ndims int) ([]dwarf.Selector, error) {
	if len(specs) > ndims {
		return nil, badRequest("got %d selectors, cube has %d dimensions", len(specs), ndims)
	}
	out := make([]dwarf.Selector, ndims)
	for i, sp := range specs {
		sel, err := sp.selector(i)
		if err != nil {
			return nil, err
		}
		out[i] = sel
	}
	return out, nil
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// handleCubes lists the registry: every cube file in the serving directory
// plus the current hot cache, MRU first, plus the live cube when the server
// fronts a store.
func (s *Server) handleCubes(w http.ResponseWriter, r *http.Request) {
	type cubeInfo struct {
		Name      string `json:"name"`
		SizeBytes int64  `json:"size_bytes"`
		Indexed   bool   `json:"indexed"`
		Loaded    bool   `json:"loaded"`
	}
	cubes := []cubeInfo{}
	if s.dir != "" {
		entries, err := os.ReadDir(s.dir)
		if err != nil {
			writeErr(w, err)
			return
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".dwarf") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			cubes = append(cubes, cubeInfo{
				Name:      e.Name(),
				SizeBytes: info.Size(),
				Indexed:   fileHasTrailer(filepath.Join(s.dir, e.Name())),
				Loaded:    s.cache.lookup(e.Name()),
			})
		}
		sort.Slice(cubes, func(i, j int) bool { return cubes[i].Name < cubes[j].Name })
	}
	out := map[string]any{
		"dir":   s.dir,
		"cubes": cubes,
		"cache": s.cache.snapshot(),
	}
	if s.store != nil {
		out["live"] = s.liveName
	}
	writeJSON(w, http.StatusOK, out)
}

// fileHasTrailer peeks at the file's last bytes for the v2 trailer magic —
// a display hint, not a validation (OpenView does that).
func fileHasTrailer(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < 16 {
		return false
	}
	var tail [8]byte
	if _, err := f.ReadAt(tail[:], st.Size()-8); err != nil {
		return false
	}
	return string(tail[:]) == "DWRFNDX2"
}

// pointRequest is the POST form of /query/point.
type pointRequest struct {
	Cube string   `json:"cube"`
	Keys []string `json:"keys"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var cube string
	var keys []string
	if r.Method == http.MethodPost {
		var req pointRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, err)
			return
		}
		cube, keys = req.Cube, req.Keys
	} else {
		q := r.URL.Query()
		cube = q.Get("cube")
		keys = q["key"]
		if len(keys) == 0 && q.Get("keys") != "" {
			keys = strings.Split(q.Get("keys"), ",")
		}
	}
	v, err := s.source(cube)
	if err != nil {
		writeErr(w, err)
		return
	}
	agg, err := v.Point(keys...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": cube, "keys": keys, "aggregate": toAggJSON(agg),
	})
}

// rangeRequest is the body of /query/range.
type rangeRequest struct {
	Cube      string         `json:"cube"`
	Selectors []selectorSpec `json:"selectors"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, badRequest("POST a JSON body to /query/range"))
		return
	}
	var req rangeRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		writeErr(w, err)
		return
	}
	sels, err := selectors(req.Selectors, v.NumDims())
	if err != nil {
		writeErr(w, err)
		return
	}
	agg, err := v.Range(sels)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": req.Cube, "aggregate": toAggJSON(agg),
	})
}

// groupByRequest is the body of /query/groupby. Dim is a dimension name or
// a 0-based index rendered as a string.
type groupByRequest struct {
	Cube      string         `json:"cube"`
	Dim       string         `json:"dim"`
	Selectors []selectorSpec `json:"selectors"`
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, badRequest("POST a JSON body to /query/groupby"))
		return
	}
	var req groupByRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		writeErr(w, err)
		return
	}
	dims := v.Dims()
	dim := -1
	if n, err := strconv.Atoi(req.Dim); err == nil {
		dim = n
	} else {
		for i, d := range dims {
			if d == req.Dim {
				dim = i
				break
			}
		}
		if dim < 0 {
			writeErr(w, badRequest("unknown dimension %q (have %v)", req.Dim, dims))
			return
		}
	}
	sels, err := selectors(req.Selectors, len(dims))
	if err != nil {
		writeErr(w, err)
		return
	}
	groups, err := v.GroupBy(dim, sels)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make(map[string]aggJSON, len(groups))
	for k, a := range groups {
		out[k] = toAggJSON(a)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube": req.Cube, "dim": dims[dim], "groups": out,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cube := r.URL.Query().Get("cube")
	if s.store != nil && cube == s.liveName {
		s.handleStoreStats(w, r)
		return
	}
	v, err := s.view(cube)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := v.Stats()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cube":          cube,
		"dims":          v.Dims(),
		"source_tuples": v.NumSourceTuples(),
		"indexed":       v.Indexed(),
		"encoded_bytes": v.EncodedBytes(),
		"nodes":         st.Nodes,
		"cells":         st.Cells,
		"all_cells":     st.AllCells,
		"total_cells":   st.TotalCells(),
	})
}

// tupleSpec is the wire form of one fact tuple.
type tupleSpec struct {
	Dims    []string `json:"dims"`
	Measure float64  `json:"measure"`
}

// ingestRequest is the body of POST /ingest.
type ingestRequest struct {
	Tuples []tupleSpec `json:"tuples"`
}

// handleIngest appends one batch to the live store. When it responds 200
// the batch is durable (store fsync policy permitting) and visible to every
// subsequent /query/* against the live cube.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, badRequest("POST a JSON body to /ingest"))
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	if len(req.Tuples) == 0 {
		writeErr(w, badRequest("no tuples in batch"))
		return
	}
	batch := make([]dwarf.Tuple, len(req.Tuples))
	for i, t := range req.Tuples {
		batch[i] = dwarf.Tuple{Dims: t.Dims, Measure: t.Measure}
	}
	if err := s.store.Append(batch); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"appended":     len(batch),
		"total_tuples": s.store.TotalTuples(),
	})
}

// handleStoreStats reports the live store's shape: segment inventory with
// compaction levels, live/sealed tuple counts, WAL position and lifetime
// seal/compaction counters.
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"cube":  s.liveName,
		"stats": st,
	})
}
