// Package serve implements dwarfd's HTTP query service: a registry of
// encoded cube files served zero-copy through dwarf.CubeView, with a small
// LRU of hot views shared by all request handlers. Queries never decode the
// node graph — the paper's cubes are built once and queried many times, so
// the serving path reads the encoded bytes directly (§5.1's anticipated
// query-time argument, pushed to its logical end).
//
// Endpoints:
//
//	GET  /cubes                     registry of cube files + the hot cache
//	GET  /query/point?cube=N&key=K… point/ALL query, one key per dimension
//	POST /query/range               {"cube","selectors":[{…} per dimension]}
//	POST /query/groupby             {"cube","dim","selectors":[…],"limit","offset"}
//	POST /query/pivot               {"cube","dims":["Area",…],"selectors":[…],"limit","offset"}
//	POST /query/topk                {"cube","dim","selectors":[…],"k","by","threshold"}
//	POST /query/rollup              {"cube","keep":["Area",…],"limit","offset"}
//	GET  /stats?cube=N              node/cell counts off the encoded bytes
//
// Every handler programs against the shared query surface (query.Querier),
// which the unified kernel serves identically for static cube files
// (zero-copy CubeView) and the live store, so every endpoint works on both.
//
// With Options.Store set the server also runs in live mode: the reserved
// cube name "live" (Options.LiveName) routes every /query/* shape to the
// cubestore — fanning out over sealed segments plus the memtable, so
// answers reflect every acknowledged tuple — and two more endpoints appear:
//
//	POST /ingest                    {"tuples":[{"dims":[…],"measure":…},…]}
//	GET  /store/stats               segment inventory, WAL position, counters
//
// A selector is {"keys":[…]} for an explicit set, {"lo":…,"hi":…} for an
// inclusive range, or {} (or omitted trailing entries) for ALL.
//
// Keyed results (group-by, pivot, top-k, rollup) are paginated: at most
// Options.GroupLimit groups (DefaultGroupLimit when zero) are returned per
// response, in a deterministic order (key order; rank order for top-k), and
// "limit"/"offset" window into that order. "truncated": true means more
// groups remain after this window — clients page by advancing "offset"
// until it is false — and the total count always rides along, so a
// high-cardinality dimension can never produce an unbounded response body.
//
// Responses are produced by the hand-rolled appenders in encode.go —
// pooled buffers, no reflection, paged rows streamed straight out of the
// kernel's results. Options.ReflectJSON instead routes every response
// through the original serving path preserved verbatim in legacy.go
// (map[string]any envelopes + indented encoding/json); output is
// byte-identical either way, pinned by the differential suite in
// encode_test.go. The toggle exists for before/after benchmarking and as
// an escape hatch. See docs/SERVING.md for the encoding contract.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/query"
)

// DefaultCacheSize is the LRU capacity when Options.CacheSize is zero.
const DefaultCacheSize = 8

// DefaultGroupLimit caps how many groups one group-by/top-k/rollup response
// may carry when Options.GroupLimit is zero. Clients page through larger
// results with "limit" and "offset".
const DefaultGroupLimit = 1000

// DefaultLiveName is the reserved cube name routing queries to the live
// store when Options.LiveName is empty.
const DefaultLiveName = "live"

// maxQueryBodyBytes bounds /query/* request bodies; maxIngestBodyBytes
// bounds /ingest batches. Oversized bodies get a clean 413.
const (
	maxQueryBodyBytes  = 1 << 20
	maxIngestBodyBytes = 64 << 20
)

// Options configures a Server.
type Options struct {
	// Dir is the directory of .dwarf cube files served by base name. It may
	// be empty when Store is set (live-only serving).
	Dir string
	// CacheSize caps the hot-view LRU (DefaultCacheSize when zero).
	CacheSize int
	// Store, when set, enables live mode: /ingest appends to it and the
	// LiveName cube answers queries over it.
	Store *cubestore.Store
	// LiveName is the reserved cube name for the live store
	// (DefaultLiveName when empty).
	LiveName string
	// GroupLimit caps the groups per keyed-query response
	// (DefaultGroupLimit when zero).
	GroupLimit int
	// ReflectJSON routes responses through the original reflection-based
	// serving path (legacy.go: map envelopes + encoding/json) instead of
	// the append encoders in encode.go. Output is byte-identical either
	// way; the toggle exists so the benchmark harness can measure the old
	// path and as an operational escape hatch.
	ReflectJSON bool
	// ClusterNode additionally mounts POST /query/partial — the compact,
	// unpaged per-node wire format a cluster coordinator scatter-gathers
	// over (internal/cluster, docs/CLUSTER.md). Off by default: partial
	// responses carry full group maps with no paging cap, so the endpoint
	// is only for dwarfd processes fronted by a coordinator.
	ClusterNode bool
	// TimeDim, when set, names the dimension a request's "window" parameter
	// compiles against: window "24h" becomes an inclusive range selector
	// [now-24h, now] on that dimension. The dimension's keys must be
	// timestamps formatted with TimeLayout (a Go time layout, e.g.
	// "2006-01-02") so lexicographic key order equals time order.
	TimeDim string
	// TimeLayout is the Go time layout TimeDim keys are formatted with.
	// Required when TimeDim is set.
	TimeLayout string
	// Now overrides the clock windows are anchored to; time.Now when nil.
	// Tests pin it for deterministic windows.
	Now func() time.Time
}

// Server answers cube queries over HTTP straight off encoded cube files
// and, in live mode, straight off a cubestore.
type Server struct {
	dir         string
	cache       *viewCache
	store       *cubestore.Store
	liveName    string
	groupLimit  int
	reflectJSON bool
	clusterNode bool
	timeDim     string
	timeLayout  string
	now         func() time.Time
}

// New builds a Server over opts.Dir (which must exist when set) and/or the
// live store.
func New(opts Options) (*Server, error) {
	if opts.Dir == "" && opts.Store == nil {
		return nil, errors.New("serve: neither cube directory nor live store set")
	}
	if opts.Dir != "" {
		st, err := os.Stat(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("serve: %s is not a directory", opts.Dir)
		}
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	liveName := opts.LiveName
	if liveName == "" {
		liveName = DefaultLiveName
	}
	limit := opts.GroupLimit
	if limit <= 0 {
		limit = DefaultGroupLimit
	}
	if opts.TimeDim != "" && opts.TimeLayout == "" {
		return nil, errors.New("serve: TimeDim set without TimeLayout")
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Server{
		dir: opts.Dir, cache: newViewCache(size),
		store: opts.Store, liveName: liveName, groupLimit: limit,
		reflectJSON: opts.ReflectJSON, clusterNode: opts.ClusterNode,
		timeDim: opts.TimeDim, timeLayout: opts.TimeLayout, now: now,
	}, nil
}

// Warm pre-opens the named cube files into the hot-view LRU so the first
// request after startup pays no cold read. The live name is skipped (the
// store needs no warming); any other unloadable name fails loudly — a
// misspelled -warm argument should stop the process, not serve cold.
func (s *Server) Warm(names []string) error {
	for _, name := range names {
		if s.store != nil && name == s.liveName {
			continue
		}
		if _, err := s.view(name); err != nil {
			return fmt.Errorf("serve: warming %q: %w", name, err)
		}
	}
	return nil
}

// NewHTTPServer wraps handler in an http.Server with the serving tier's
// timeout policy: a short header-read deadline (slow or stalled clients get
// net/http's clean 408 instead of holding a connection open), bounded
// request/response lifetimes sized for the largest allowed ingest batch,
// and idle keep-alive reaping.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe runs a Server at addr until the listener fails.
func ListenAndServe(addr string, opts Options) error {
	s, err := New(opts)
	if err != nil {
		return err
	}
	return NewHTTPServer(addr, s.Handler()).ListenAndServe()
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cubes", s.handleCubes)
	mux.HandleFunc("/query/point", s.handlePoint)
	mux.HandleFunc("/query/range", s.handleRange)
	mux.HandleFunc("/query/groupby", s.handleGroupBy)
	mux.HandleFunc("/query/pivot", s.handlePivot)
	mux.HandleFunc("/query/topk", s.handleTopK)
	mux.HandleFunc("/query/rollup", s.handleRollUp)
	mux.HandleFunc("/stats", s.handleStats)
	if s.clusterNode {
		mux.HandleFunc("/query/partial", s.handlePartial)
	}
	if s.store != nil {
		mux.HandleFunc("/ingest", s.handleIngest)
		mux.HandleFunc("/store/stats", s.handleStoreStats)
	}
	return mux
}

// httpError carries a status code out of the load/parse helpers.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errStatus maps an error to its response status.
func errStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, os.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, dwarf.ErrBadQuery),
		errors.Is(err, dwarf.ErrDimMismatch),
		errors.Is(err, dwarf.ErrReservedKey),
		errors.Is(err, dwarf.ErrNotFiniteValue),
		errors.Is(err, query.ErrUnknownDim):
		return http.StatusBadRequest
	case errors.Is(err, cubestore.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, dwarf.ErrCorruptCube), errors.Is(err, dwarf.ErrBadMagic), errors.Is(err, dwarf.ErrBadVersion):
		// The file on disk is not a servable cube: the client didn't err,
		// the registry did.
		return http.StatusBadGateway
	}
	return http.StatusInternalServerError
}

// errorResponse is the error envelope, {"error": …}.
type errorResponse struct {
	Error string `json:"error"`
}

// fail writes the error envelope with the mapped status.
func (s *Server) fail(w http.ResponseWriter, err error) {
	status := errStatus(err)
	if s.reflectJSON {
		s.legacyError(w, status, err)
		return
	}
	buf := getBuf()
	*buf = appendErrorResponse((*buf)[:0], err.Error())
	send(w, status, buf)
}

// jsonContentType is the shared Content-Type header value: assigning the
// slice directly skips Header.Set's per-request []string allocation. The
// slice is never mutated.
var jsonContentType = []string{"application/json"}

// send writes one fully-encoded response body and recycles its buffer.
func send(w http.ResponseWriter, status int, buf *[]byte) {
	h := w.Header()
	h["Content-Type"] = jsonContentType
	h.Set("Content-Length", strconv.Itoa(len(*buf)))
	w.WriteHeader(status)
	w.Write(*buf)
	putBuf(buf)
}

// view resolves a cube name to a (possibly cached) CubeView. Names are
// confined to base names inside the serving directory; a bare name without
// extension falls back to name.dwarf. Cached entries are revalidated
// against the file's size and mtime, so an atomically replaced cube file
// (WriteCubeFile) is picked up on the next request.
//
// Views are deliberately backed by a heap copy (ReadFile) rather than the
// mmap path: an evicted heap view stays valid for in-flight readers until
// the GC collects it, whereas unmapping under a concurrent reader would
// fault. Trailer-carrying files skip the payload checksum the same way
// OpenViewFile does — the trailer is validated and every query stays
// bounds-checked.
func (s *Server) view(name string) (*dwarf.CubeView, error) {
	if name == "" {
		return nil, badRequest("missing cube parameter")
	}
	if s.dir == "" {
		// Live-only server: never resolve file names relative to the
		// process working directory.
		return nil, badRequest("cube %q not found (live-only server serves %q)", name, s.liveName)
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return nil, badRequest("cube name %q must be a plain file name", name)
	}
	// The cached entry carries its precomputed path, so the steady-state
	// request does one stat and no string building.
	path, cached := s.cache.path(name)
	if !cached {
		path = filepath.Join(s.dir, name)
	}
	size, modTime, err := statFile(path)
	if errors.Is(err, os.ErrNotExist) && filepath.Ext(name) == "" {
		return s.view(name + ".dwarf")
	}
	if err != nil {
		return nil, err
	}
	if v, ok := s.cache.get(name, size, modTime); ok {
		return v, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v *dwarf.CubeView
	if dwarf.HasOffsetTrailer(data) {
		v, err = dwarf.OpenViewTrusted(data)
	} else {
		v, err = dwarf.OpenView(data)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s.cache.add(name, path, v, size, modTime), nil
}

// source resolves a cube name to its query target — the live store for the
// reserved live name, a (cached) file-backed view otherwise — as the shared
// engine surface (query.Querier) every /query/* handler is written against.
func (s *Server) source(name string) (query.Querier, error) {
	if s.store != nil && name == s.liveName {
		return s.store, nil
	}
	return s.view(name)
}

// aggJSON is the wire form of an aggregate.
type aggJSON struct {
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Avg   float64 `json:"avg"`
}

func toAggJSON(a dwarf.Aggregate) aggJSON {
	return aggJSON{Sum: a.Sum, Count: a.Count, Min: a.Min, Max: a.Max, Avg: a.Avg()}
}

// selectorSpec is the wire form of a dwarf.Selector.
type selectorSpec struct {
	Keys []string `json:"keys,omitempty"`
	Lo   *string  `json:"lo,omitempty"`
	Hi   *string  `json:"hi,omitempty"`
}

func (sp selectorSpec) selector(i int) (dwarf.Selector, error) {
	switch {
	case sp.Lo != nil || sp.Hi != nil:
		if sp.Lo == nil || sp.Hi == nil || len(sp.Keys) > 0 {
			return dwarf.Selector{}, badRequest("selector %d: a range needs lo and hi and no keys", i)
		}
		return dwarf.SelectRange(*sp.Lo, *sp.Hi), nil
	case len(sp.Keys) > 0:
		return dwarf.SelectKeys(sp.Keys...), nil
	default:
		return dwarf.SelectAll(), nil
	}
}

// selectors pads missing trailing specs with ALL so clients can send only
// the dimensions they restrict.
func selectors(specs []selectorSpec, ndims int) ([]dwarf.Selector, error) {
	if len(specs) > ndims {
		return nil, badRequest("got %d selectors, cube has %d dimensions", len(specs), ndims)
	}
	out := make([]dwarf.Selector, ndims)
	for i, sp := range specs {
		sel, err := sp.selector(i)
		if err != nil {
			return nil, err
		}
		out[i] = sel
	}
	return out, nil
}

// applyWindow compiles a request's "window" duration into an inclusive
// range selector [now-window, now] on the server's time dimension, in
// place. The window composes with the other dimensions' selectors but
// conflicts with an explicit selector on the time dimension itself — the
// request is ambiguous, so it is rejected rather than silently merged.
func (s *Server) applyWindow(q query.Querier, sels []dwarf.Selector, win string) error {
	if win == "" {
		return nil
	}
	if s.timeDim == "" {
		return badRequest("window given but the server has no time dimension configured")
	}
	idx, err := query.DimIndex(q, s.timeDim)
	if err != nil {
		return badRequest("window: cube has no %q dimension (have %v)", s.timeDim, q.Dims())
	}
	if sels[idx].HasRange || len(sels[idx].Keys) > 0 {
		return badRequest("window conflicts with an explicit selector on %q", s.timeDim)
	}
	d, err := parseWindow(win)
	if err != nil {
		return err
	}
	now := s.now()
	sels[idx] = dwarf.SelectRange(now.Add(-d).Format(s.timeLayout), now.Format(s.timeLayout))
	return nil
}

// parseWindow accepts time.ParseDuration forms ("90m", "24h") plus a day
// suffix ("7d"), which ParseDuration lacks.
func parseWindow(win string) (time.Duration, error) {
	if n, ok := strings.CutSuffix(win, "d"); ok {
		if days, err := strconv.Atoi(n); err == nil && days > 0 {
			return time.Duration(days) * 24 * time.Hour, nil
		}
		return 0, badRequest("bad window %q: want a positive duration like 24h or 7d", win)
	}
	d, err := time.ParseDuration(win)
	if err != nil || d <= 0 {
		return 0, badRequest("bad window %q: want a positive duration like 24h or 7d", win)
	}
	return d, nil
}

// decodeBody decodes a bounded JSON request body. Bodies over limit map to
// 413 (and net/http closes the connection); malformed JSON maps to 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// cubeInfo is one registry row in the /cubes response.
type cubeInfo struct {
	Name      string `json:"name"`
	SizeBytes int64  `json:"size_bytes"`
	Indexed   bool   `json:"indexed"`
	Loaded    bool   `json:"loaded"`
}

// cubesResponse is the /cubes envelope.
type cubesResponse struct {
	Cache []CacheInfo `json:"cache"`
	Cubes []cubeInfo  `json:"cubes"`
	Dir   string      `json:"dir"`
	Live  string      `json:"live,omitempty"`
}

// handleCubes lists the registry: every cube file in the serving directory
// plus the current hot cache, MRU first, plus the live cube when the server
// fronts a store.
func (s *Server) handleCubes(w http.ResponseWriter, r *http.Request) {
	cubes := []cubeInfo{}
	if s.dir != "" {
		entries, err := os.ReadDir(s.dir)
		if err != nil {
			s.fail(w, err)
			return
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".dwarf") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			cubes = append(cubes, cubeInfo{
				Name:      e.Name(),
				SizeBytes: info.Size(),
				Indexed:   fileHasTrailer(filepath.Join(s.dir, e.Name())),
				Loaded:    s.cache.lookup(e.Name()),
			})
		}
		sort.Slice(cubes, func(i, j int) bool { return cubes[i].Name < cubes[j].Name })
	}
	if s.reflectJSON {
		s.legacyCubes(w, cubes)
		return
	}
	live := ""
	if s.store != nil {
		live = s.liveName
	}
	buf := getBuf()
	*buf = appendCubesResponse((*buf)[:0], s.dir, cubes, s.cache.snapshot(), live, s.store != nil)
	send(w, http.StatusOK, buf)
}

// fileHasTrailer peeks at the file's last bytes for the v2 trailer magic —
// a display hint, not a validation (OpenView does that). Streams written
// since zone maps end with the v3 metadata section instead, so when the
// tail carries the v3 magic the check walks one self-describing section
// back and looks for the v2 magic there.
func fileHasTrailer(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < 16 {
		return false
	}
	end := st.Size()
	var tail [8]byte
	if _, err := f.ReadAt(tail[:], end-8); err != nil {
		return false
	}
	if string(tail[:]) == "DWRFMET3" {
		var lenWord [4]byte
		if _, err := f.ReadAt(lenWord[:], end-12); err != nil {
			return false
		}
		end -= int64(binary.LittleEndian.Uint32(lenWord[:])) + 16
		if end < 16 {
			return false
		}
		if _, err := f.ReadAt(tail[:], end-8); err != nil {
			return false
		}
	}
	return string(tail[:]) == "DWRFNDX2"
}

// pointRequest is the POST form of /query/point.
type pointRequest struct {
	Cube string   `json:"cube"`
	Keys []string `json:"keys"`
}

// pointResponse is the /query/point envelope.
type pointResponse struct {
	Aggregate aggJSON  `json:"aggregate"`
	Cube      string   `json:"cube"`
	Keys      []string `json:"keys"`
}

// pointArgs is pooled scratch for the GET /query/point parameter parse, so
// the hot read path never materializes a url.Values map.
type pointArgs struct {
	keys []string
}

var pointArgsPool = sync.Pool{New: func() any { return &pointArgs{} }}

// parsePointQuery extracts cube and keys from a raw query string with
// url.ParseQuery's exact semantics — pairs containing ';' or failing to
// unescape are skipped, first value wins for single-valued parameters —
// without building a map. Returned strings alias rawQuery unless they
// needed unescaping; the keys slice is p's, recycled across requests.
func parsePointQuery(rawQuery string, p *pointArgs) (cube string, keys []string) {
	p.keys = p.keys[:0]
	var cubeSet, csvSet bool
	var keysCSV string
	for rawQuery != "" {
		var pair string
		pair, rawQuery, _ = strings.Cut(rawQuery, "&")
		if pair == "" || strings.Contains(pair, ";") {
			continue
		}
		rawK, rawV, _ := strings.Cut(pair, "=")
		k, ok := unescapeQueryComponent(rawK)
		if !ok {
			continue
		}
		v, ok := unescapeQueryComponent(rawV)
		if !ok {
			continue
		}
		switch k {
		case "cube":
			if !cubeSet {
				cube, cubeSet = v, true
			}
		case "key":
			p.keys = append(p.keys, v)
		case "keys":
			if !csvSet {
				keysCSV, csvSet = v, true
			}
		}
	}
	if len(p.keys) == 0 && keysCSV != "" {
		for rest := keysCSV; ; {
			k, after, found := strings.Cut(rest, ",")
			p.keys = append(p.keys, k)
			if !found {
				break
			}
			rest = after
		}
	}
	if len(p.keys) == 0 {
		// No key parameters at all: keep the historical null (nil slice)
		// in the response, not [].
		return cube, nil
	}
	return cube, p.keys
}

// unescapeQueryComponent is url.QueryUnescape with a zero-allocation pass
// for the common unescaped case.
func unescapeQueryComponent(s string) (string, bool) {
	if !strings.ContainsAny(s, "%+") {
		return s, true
	}
	out, err := url.QueryUnescape(s)
	if err != nil {
		return "", false
	}
	return out, true
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var cube string
	var keys []string
	if r.Method == http.MethodPost {
		var req pointRequest
		if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
			s.fail(w, err)
			return
		}
		cube, keys = req.Cube, req.Keys
	} else if s.reflectJSON {
		cube, keys = legacyPointQuery(r)
	} else {
		pa := pointArgsPool.Get().(*pointArgs)
		defer pointArgsPool.Put(pa)
		cube, keys = parsePointQuery(r.URL.RawQuery, pa)
	}
	v, err := s.source(cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	agg, err := v.Point(keys...)
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.reflectJSON {
		s.legacyPoint(w, cube, keys, agg)
		return
	}
	buf := getBuf()
	*buf = appendPointResponse((*buf)[:0], cube, keys, agg)
	send(w, http.StatusOK, buf)
}

// rangeRequest is the body of /query/range. Window, when set, is a
// trailing-duration shorthand ("24h", "7d") compiled into a range selector
// on the server's time dimension (Options.TimeDim).
type rangeRequest struct {
	Cube      string         `json:"cube"`
	Selectors []selectorSpec `json:"selectors"`
	Window    string         `json:"window,omitempty"`
}

// rangeResponse is the /query/range envelope.
type rangeResponse struct {
	Aggregate aggJSON `json:"aggregate"`
	Cube      string  `json:"cube"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /query/range"))
		return
	}
	var req rangeRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	sels, err := selectors(req.Selectors, v.NumDims())
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := s.applyWindow(v, sels, req.Window); err != nil {
		s.fail(w, err)
		return
	}
	agg, err := v.Range(sels)
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.reflectJSON {
		s.legacyRange(w, req.Cube, agg)
		return
	}
	buf := getBuf()
	*buf = appendRangeResponse((*buf)[:0], req.Cube, agg)
	send(w, http.StatusOK, buf)
}

// page bounds one keyed response: the requested offset into the result's
// deterministic order plus the requested limit, clamped to the server cap.
type page struct {
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
}

// clamp resolves the effective window against the server's group cap.
func (p page) clamp(cap int) (offset, limit int, err error) {
	if p.Offset < 0 || p.Limit < 0 {
		return 0, 0, badRequest("limit and offset must be non-negative")
	}
	limit = p.Limit
	if limit == 0 || limit > cap {
		limit = cap
	}
	return p.Offset, limit, nil
}

// window cuts rows to [offset, offset+limit). truncated reports that rows
// remain AFTER the window, so a paging client advances offset exactly while
// truncated is true and terminates on the final (or past-the-end) page.
func window[T any](rows []T, offset, limit int) (out []T, truncated bool) {
	if offset >= len(rows) {
		return nil, false
	}
	rows = rows[offset:]
	if len(rows) > limit {
		return rows[:limit], true
	}
	return rows, false
}

// dimIndex resolves a request's dimension field: a dimension name or a
// 0-based index rendered as a string.
func dimIndex(q query.Querier, field string) (int, error) {
	if n, err := strconv.Atoi(field); err == nil {
		return n, nil
	}
	idx, err := query.DimIndex(q, field)
	if err != nil {
		return -1, badRequest("unknown dimension %q (have %v)", field, q.Dims())
	}
	return idx, nil
}

// groupByRequest is the body of /query/groupby. Dim is a dimension name or
// a 0-based index rendered as a string.
type groupByRequest struct {
	Cube      string         `json:"cube"`
	Dim       string         `json:"dim"`
	Selectors []selectorSpec `json:"selectors"`
	Window    string         `json:"window,omitempty"`
	page
}

// groupByResponse is the /query/groupby envelope layout. The fast path
// streams the page without materializing the map; the differential suite
// marshals this struct as the byte-for-byte reference.
type groupByResponse struct {
	Cube        string             `json:"cube"`
	Dim         string             `json:"dim"`
	Groups      map[string]aggJSON `json:"groups"`
	Limit       int                `json:"limit"`
	Offset      int                `json:"offset"`
	TotalGroups int                `json:"total_groups"`
	Truncated   bool               `json:"truncated"`
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /query/groupby"))
		return
	}
	var req groupByRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	dim, err := dimIndex(v, req.Dim)
	if err != nil {
		s.fail(w, err)
		return
	}
	offset, limit, err := req.clamp(s.groupLimit)
	if err != nil {
		s.fail(w, err)
		return
	}
	sels, err := selectors(req.Selectors, v.NumDims())
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := s.applyWindow(v, sels, req.Window); err != nil {
		s.fail(w, err)
		return
	}
	groups, err := v.GroupBy(dim, sels)
	if err != nil {
		s.fail(w, err)
		return
	}
	// The page windows over key-sorted order, so offsets are deterministic.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pageKeys, truncated := window(keys, offset, limit)
	dimName := v.Dims()[dim]
	if s.reflectJSON {
		s.legacyGroupBy(w, req.Cube, dimName, pageKeys, groups, offset, limit, truncated)
		return
	}
	buf := getBuf()
	*buf = appendGroupByResponse((*buf)[:0], req.Cube, dimName, pageKeys, groups,
		len(groups), offset, limit, truncated)
	send(w, http.StatusOK, buf)
}

// topKRequest is the body of /query/topk. By is a metric name (sum, count,
// min, max, avg; sum when empty); Threshold, when present, is the iceberg
// floor applied before the K cut.
type topKRequest struct {
	Cube      string         `json:"cube"`
	Dim       string         `json:"dim"`
	Selectors []selectorSpec `json:"selectors"`
	K         int            `json:"k"`
	By        string         `json:"by"`
	Threshold *float64       `json:"threshold"`
	Window    string         `json:"window,omitempty"`
	page
}

// entryJSON is one ranked row in the /query/topk envelope.
type entryJSON struct {
	Key       string  `json:"key"`
	Metric    float64 `json:"metric"`
	Aggregate aggJSON `json:"aggregate"`
}

// topKResponse is the /query/topk envelope layout (differential reference).
type topKResponse struct {
	By           string      `json:"by"`
	Cube         string      `json:"cube"`
	Dim          string      `json:"dim"`
	Entries      []entryJSON `json:"entries"`
	Limit        int         `json:"limit"`
	Offset       int         `json:"offset"`
	TotalEntries int         `json:"total_entries"`
	Truncated    bool        `json:"truncated"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /query/topk"))
		return
	}
	var req topKRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	dim, err := dimIndex(v, req.Dim)
	if err != nil {
		s.fail(w, err)
		return
	}
	offset, limit, err := req.clamp(s.groupLimit)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.K < 0 {
		s.fail(w, badRequest("k must be non-negative"))
		return
	}
	by, err := dwarf.ParseMetric(req.By)
	if err != nil {
		s.fail(w, err)
		return
	}
	sels, err := selectors(req.Selectors, v.NumDims())
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := s.applyWindow(v, sels, req.Window); err != nil {
		s.fail(w, err)
		return
	}
	spec := dwarf.TopKSpec{K: req.K, By: by}
	if req.Threshold != nil {
		spec.Threshold, spec.HasThreshold = *req.Threshold, true
	}
	entries, err := v.TopK(dim, sels, spec)
	if err != nil {
		s.fail(w, err)
		return
	}
	pageEntries, truncated := window(entries, offset, limit)
	dimName := v.Dims()[dim]
	if s.reflectJSON {
		s.legacyTopK(w, req.Cube, dimName, by, pageEntries, len(entries), offset, limit, truncated)
		return
	}
	buf := getBuf()
	*buf = appendTopKResponse((*buf)[:0], req.Cube, dimName, by, pageEntries,
		len(entries), offset, limit, truncated)
	send(w, http.StatusOK, buf)
}

// rowJSON is one keyed row in the /query/rollup and /query/pivot envelopes.
type rowJSON struct {
	Keys      []string `json:"keys"`
	Aggregate aggJSON  `json:"aggregate"`
}

// rowsResponse is the keyed-rows envelope layout shared by /query/rollup
// and /query/pivot (differential reference).
type rowsResponse struct {
	Cube        string    `json:"cube"`
	Dims        []string  `json:"dims"`
	Groups      []rowJSON `json:"groups"`
	Limit       int       `json:"limit"`
	Offset      int       `json:"offset"`
	TotalGroups int       `json:"total_groups"`
	Truncated   bool      `json:"truncated"`
}

// writeRows emits the shared keyed-rows envelope for a page of pivot-shaped
// results.
func (s *Server) writeRows(w http.ResponseWriter, cube string, dims []string,
	rows []dwarf.PivotGroup, total, offset, limit int, truncated bool) {

	if s.reflectJSON {
		s.legacyRows(w, cube, dims, rows, total, offset, limit, truncated)
		return
	}
	buf := getBuf()
	*buf = appendRowsResponse((*buf)[:0], cube, dims, rows, total, offset, limit, truncated)
	send(w, http.StatusOK, buf)
}

// rollUpRequest is the body of /query/rollup: the named dimensions to keep;
// all others are aggregated away through their ALL cells.
type rollUpRequest struct {
	Cube string   `json:"cube"`
	Keep []string `json:"keep"`
	page
}

func (s *Server) handleRollUp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /query/rollup"))
		return
	}
	var req rollUpRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	offset, limit, err := req.clamp(s.groupLimit)
	if err != nil {
		s.fail(w, err)
		return
	}
	dims, rows, err := query.RollUp(v, req.Keep...)
	if err != nil {
		s.fail(w, err)
		return
	}
	pageRows, truncated := window(rows, offset, limit)
	s.writeRows(w, req.Cube, dims, pageRows, len(rows), offset, limit, truncated)
}

// pivotRequest is the body of /query/pivot: the dimensions to group by
// (names or 0-based indexes rendered as strings), in output-column order.
type pivotRequest struct {
	Cube      string         `json:"cube"`
	Dims      []string       `json:"dims"`
	Selectors []selectorSpec `json:"selectors"`
	Window    string         `json:"window,omitempty"`
	page
}

// handlePivot is the multi-dimension group-by: one keyed row per distinct
// combination over the requested dimensions, sorted by keys, paged like
// rollup (whose envelope it shares).
func (s *Server) handlePivot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /query/pivot"))
		return
	}
	var req pivotRequest
	if err := decodeBody(w, r, &req, maxQueryBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.source(req.Cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	offset, limit, err := req.clamp(s.groupLimit)
	if err != nil {
		s.fail(w, err)
		return
	}
	dims := make([]int, len(req.Dims))
	for i, d := range req.Dims {
		if dims[i], err = dimIndex(v, d); err != nil {
			s.fail(w, err)
			return
		}
	}
	sels, err := selectors(req.Selectors, v.NumDims())
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := s.applyWindow(v, sels, req.Window); err != nil {
		s.fail(w, err)
		return
	}
	rows, err := v.Pivot(dims, sels)
	if err != nil {
		s.fail(w, err)
		return
	}
	// Pivot validated every index, so naming the columns is now safe.
	allDims := v.Dims()
	names := make([]string, len(dims))
	for i, idx := range dims {
		names[i] = allDims[idx]
	}
	pageRows, truncated := window(rows, offset, limit)
	s.writeRows(w, req.Cube, names, pageRows, len(rows), offset, limit, truncated)
}

// statsResponse is the /stats envelope.
type statsResponse struct {
	AllCells     int      `json:"all_cells"`
	Cells        int      `json:"cells"`
	Cube         string   `json:"cube"`
	Dims         []string `json:"dims"`
	EncodedBytes int      `json:"encoded_bytes"`
	Indexed      bool     `json:"indexed"`
	Nodes        int      `json:"nodes"`
	SourceTuples int      `json:"source_tuples"`
	TotalCells   int      `json:"total_cells"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cube := r.URL.Query().Get("cube")
	if s.store != nil && cube == s.liveName {
		s.handleStoreStats(w, r)
		return
	}
	v, err := s.view(cube)
	if err != nil {
		s.fail(w, err)
		return
	}
	st, err := v.Stats()
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.reflectJSON {
		s.legacyStats(w, cube, v, st)
		return
	}
	buf := getBuf()
	*buf = appendStatsResponse((*buf)[:0], cube, v.Dims(), v.NumSourceTuples(),
		v.Indexed(), v.EncodedBytes(), st)
	send(w, http.StatusOK, buf)
}

// tupleSpec is the wire form of one fact tuple.
type tupleSpec struct {
	Dims    []string `json:"dims"`
	Measure float64  `json:"measure"`
}

// ingestRequest is the body of POST /ingest.
type ingestRequest struct {
	Tuples []tupleSpec `json:"tuples"`
}

// ingestResponse is the /ingest acknowledgement envelope.
type ingestResponse struct {
	Appended    int `json:"appended"`
	TotalTuples int `json:"total_tuples"`
}

// handleIngest appends one batch to the live store. When it responds 200
// the batch is durable (store fsync policy permitting) and visible to every
// subsequent /query/* against the live cube.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, badRequest("POST a JSON body to /ingest"))
		return
	}
	var req ingestRequest
	if err := decodeBody(w, r, &req, maxIngestBodyBytes); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Tuples) == 0 {
		s.fail(w, badRequest("no tuples in batch"))
		return
	}
	batch := make([]dwarf.Tuple, len(req.Tuples))
	for i, t := range req.Tuples {
		batch[i] = dwarf.Tuple{Dims: t.Dims, Measure: t.Measure}
	}
	if err := s.store.Append(batch); err != nil {
		s.fail(w, err)
		return
	}
	total := s.store.TotalTuples()
	if s.reflectJSON {
		s.legacyIngest(w, len(batch), total)
		return
	}
	buf := getBuf()
	*buf = appendIngestResponse((*buf)[:0], len(batch), total)
	send(w, http.StatusOK, buf)
}

// storeStatsResponse is the /store/stats envelope.
type storeStatsResponse struct {
	Cube  string          `json:"cube"`
	Stats cubestore.Stats `json:"stats"`
}

// handleStoreStats reports the live store's shape: segment inventory with
// compaction levels, live/sealed tuple counts, WAL position and lifetime
// seal/compaction counters.
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	if s.reflectJSON {
		s.legacyStoreStats(w, st)
		return
	}
	buf := getBuf()
	*buf = appendStoreStatsResponse((*buf)[:0], s.liveName, st)
	send(w, http.StatusOK, buf)
}
