package serve

import (
	"net/url"
	"slices"
	"strings"
	"testing"
)

// refPointQuery restates the legacy GET /query/point parameter parse —
// url.ParseQuery with its partial-result-on-error behavior (exactly what
// r.URL.Query() hands legacyPointQuery), cube = first value, key = every
// value in order, keys = CSV fallback when no key params and non-empty.
// It is the oracle the zero-allocation parsePointQuery must match.
func refPointQuery(rawQuery string) (cube string, keys []string) {
	q, _ := url.ParseQuery(rawQuery)
	cube = q.Get("cube")
	keys = q["key"]
	if len(keys) == 0 && q.Get("keys") != "" {
		keys = strings.Split(q.Get("keys"), ",")
	}
	return cube, keys
}

// FuzzParsePointQuery differentially fuzzes the hand-rolled parse against
// the url.ParseQuery oracle. Any divergence — pair skipping on ';' or bad
// escapes, first-value-wins, CSV fallback edge cases, the historical nil
// for "no keys at all" — is a bug in the fast path.
func FuzzParsePointQuery(f *testing.F) {
	for _, seed := range []string{
		"",
		"cube=c&key=a&key=b",
		"cube=c&keys=a,b,c",
		"keys=",            // present but empty: no fallback, nil keys
		"keys=,",           // fallback to two empty keys
		"keys=a,,b",        // empty CSV element preserved
		"cube=a&cube=b",    // first value wins
		"cube=a;key=b",     // ';' pair skipped whole
		"a=b;c=d&key=x",    // only the ';' pair skipped
		"key=%zz",          // bad escape: pair skipped
		"%zz=key",          // bad escape in the name
		"key",              // bare name, empty value
		"key=a+b&cube=%41", // '+' and %-escapes decode
		"keys=%2C",         // escaped comma is a real CSV split after decode
		"key=a&keys=b,c",   // key params shadow the CSV form
		"&&&key=a&",        // empty pairs skipped
		"cube=live&key=*&key=Mon&key=",
		"%6Bey=x",      // escaped parameter name still matches "key"
		"KEY=a&Cube=b", // parameter names are case-sensitive
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, rawQuery string) {
		var p pointArgs
		cube, keys := parsePointQuery(rawQuery, &p)
		wantCube, wantKeys := refPointQuery(rawQuery)
		if cube != wantCube {
			t.Fatalf("parsePointQuery(%q) cube = %q, url.ParseQuery says %q", rawQuery, cube, wantCube)
		}
		if len(keys) == 0 && len(wantKeys) == 0 {
			if keys != nil {
				t.Fatalf("parsePointQuery(%q) returned empty non-nil keys; the response contract is the historical null", rawQuery)
			}
			return
		}
		if !slices.Equal(keys, wantKeys) {
			t.Fatalf("parsePointQuery(%q) keys = %q, url.ParseQuery says %q", rawQuery, keys, wantKeys)
		}
	})
}
