package hierarchy

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/smartcity"
)

func bikeCube(t *testing.T, n int) *dwarf.Cube {
	t.Helper()
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 5}).Take(n)
	tuples := make([]dwarf.Tuple, len(recs))
	for i, r := range recs {
		tuples[i] = r.Tuple()
	}
	c, err := dwarf.New(smartcity.BikeDims, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExpandInsertsLevels(t *testing.T) {
	dims := []string{"Station", "Day"}
	tuples := []dwarf.Tuple{
		{Dims: []string{"station-001", "07"}, Measure: 2},
		{Dims: []string{"station-014", "08"}, Measure: 5},
	}
	h := Hierarchy{
		BaseDim: "Station",
		Levels: []Level{{
			Name: "Dock",
			Map:  func(k string) string { return "dock-" + strings.TrimPrefix(k, "station-0") },
		}},
	}
	newDims, newTuples, err := Expand(dims, tuples, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(newDims) != 3 || newDims[0] != "Dock" || newDims[1] != "Station" {
		t.Fatalf("dims = %v", newDims)
	}
	if newTuples[0].Dims[0] != "dock-01" || newTuples[1].Dims[0] != "dock-14" {
		t.Errorf("tuples = %+v", newTuples)
	}

	if _, _, err := Expand(dims, tuples, Hierarchy{BaseDim: "Nope", Levels: h.Levels}); !errors.Is(err, ErrUnknownDim) {
		t.Errorf("unknown dim: %v", err)
	}
	if _, _, err := Expand(dims, tuples, Hierarchy{BaseDim: "Day"}); !errors.Is(err, ErrBadLevels) {
		t.Errorf("no levels: %v", err)
	}
}

func TestRollUpMatchesWildcardQueries(t *testing.T) {
	cube := bikeCube(t, 800)
	// Roll up to (Month, Area): equivalent to wildcards everywhere else.
	up, err := RollUp(cube, "Month", "Area")
	if err != nil {
		t.Fatal(err)
	}
	if got := up.Dims(); len(got) != 2 || got[0] != "Month" || got[1] != "Area" {
		t.Fatalf("rolled dims = %v", got)
	}
	byArea, err := up.GroupBy(1, []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	for area, agg := range byArea {
		want, _ := cube.Point(dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, area, dwarf.All, dwarf.All)
		if !agg.Equal(want) {
			t.Errorf("area %s: rollup %v != wildcard %v", area, agg, want)
		}
	}
	// Counts survive the rebuild.
	allUp, _ := up.Point(dwarf.All, dwarf.All)
	allBase, _ := cube.Point(dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All)
	if !allUp.Equal(allBase) {
		t.Errorf("grand total: %v != %v", allUp, allBase)
	}
	if up.NumSourceTuples() != cube.NumSourceTuples() {
		t.Errorf("tuple count: %d != %d", up.NumSourceTuples(), cube.NumSourceTuples())
	}

	if _, err := RollUp(cube, "Bogus"); !errors.Is(err, ErrUnknownDim) {
		t.Errorf("unknown keep: %v", err)
	}
	if _, err := RollUp(cube); !errors.Is(err, ErrUnknownDim) {
		t.Errorf("empty keep: %v", err)
	}
}

func TestDrillDown(t *testing.T) {
	cube := bikeCube(t, 600)
	// Drill from the grand total into areas.
	areas, err := DrillDown(cube, nil, "Area")
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) == 0 {
		t.Fatal("no areas")
	}
	var sum float64
	for _, agg := range areas {
		sum += agg.Sum
	}
	total, _ := cube.Point(dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All)
	if sum != total.Sum {
		t.Errorf("area sums %g != total %g", sum, total.Sum)
	}
	// Drill within one area into stations.
	var area string
	for a := range areas {
		area = a
		break
	}
	stations, err := DrillDown(cube, map[string]string{"Area": area}, "Station")
	if err != nil {
		t.Fatal(err)
	}
	var ssum float64
	for _, agg := range stations {
		ssum += agg.Sum
	}
	if ssum != areas[area].Sum {
		t.Errorf("station sums %g != area %g", ssum, areas[area].Sum)
	}

	if _, err := DrillDown(cube, nil, "Bogus"); !errors.Is(err, ErrUnknownDim) {
		t.Errorf("unknown dim: %v", err)
	}
	if _, err := DrillDown(cube, map[string]string{"Nope": "x"}, "Area"); !errors.Is(err, ErrUnknownDim) {
		t.Errorf("unknown fixed: %v", err)
	}
}

func TestExpandedHierarchyRollupEquivalence(t *testing.T) {
	// Build with a derived Area-group level, then check ROLLUP on the
	// hierarchy equals GroupBy on the expanded cube.
	dims := []string{"Station", "Slot"}
	var tuples []dwarf.Tuple
	for s := 0; s < 12; s++ {
		for slot := 0; slot < 4; slot++ {
			tuples = append(tuples, dwarf.Tuple{
				Dims:    []string{fmt.Sprintf("station-%02d", s), fmt.Sprintf("slot-%d", slot)},
				Measure: float64(s + slot),
			})
		}
	}
	h := Hierarchy{BaseDim: "Station", Levels: []Level{{
		Name: "Area",
		Map: func(k string) string {
			return "area-" + string(k[len(k)-1]) // last digit buckets
		},
	}}}
	newDims, newTuples, err := Expand(dims, tuples, h)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := dwarf.New(newDims, newTuples)
	if err != nil {
		t.Fatal(err)
	}
	// ROLLUP over Station = query at the Area level via wildcard.
	perArea, err := cube.GroupBy(0, []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()})
	if err != nil {
		t.Fatal(err)
	}
	for area, agg := range perArea {
		var want float64
		for _, t2 := range newTuples {
			if t2.Dims[0] == area {
				want += t2.Measure
			}
		}
		if agg.Sum != want {
			t.Errorf("area %s: %g != %g", area, agg.Sum, want)
		}
	}
}
