// Package hierarchy implements the dimensional-hierarchy extension the
// paper discusses in §6 (after Sismanis et al., "Hierarchical dwarfs for
// the rollup cube"): dimension hierarchies over DWARF cubes with ROLLUP and
// DRILL DOWN operations. Hierarchy levels are materialized as derived
// dimensions (Station → Area, Day → Month → Year), so the standard DWARF
// ALL machinery answers rollups; RollUp materializes a coarser cube and
// DrillDown enumerates one member's children.
package hierarchy

import (
	"errors"
	"fmt"

	"repro/internal/dwarf"
)

// Hierarchy derives coarser levels from a base dimension.
type Hierarchy struct {
	// BaseDim is the fine-grained dimension the hierarchy refines.
	BaseDim string
	// Levels are the derived levels, coarsest first; each maps a base key
	// to its ancestor key at that level.
	Levels []Level
}

// Level is one derived hierarchy level.
type Level struct {
	Name string
	Map  func(baseKey string) string
}

// Hierarchy errors.
var (
	ErrUnknownDim = errors.New("hierarchy: unknown dimension")
	ErrBadLevels  = errors.New("hierarchy: hierarchy needs at least one level")
)

// Expand inserts the derived level dimensions immediately before each base
// dimension, returning the new dimension list and rewritten tuples. The
// result feeds dwarf.New to build a hierarchical cube where a rollup is an
// ALL wildcard on the finer levels.
func Expand(dims []string, tuples []dwarf.Tuple, hs ...Hierarchy) ([]string, []dwarf.Tuple, error) {
	type insertion struct {
		at     int
		levels []Level
	}
	var ins []insertion
	for _, h := range hs {
		if len(h.Levels) == 0 {
			return nil, nil, ErrBadLevels
		}
		at := -1
		for i, d := range dims {
			if d == h.BaseDim {
				at = i
				break
			}
		}
		if at < 0 {
			return nil, nil, fmt.Errorf("%w: %s", ErrUnknownDim, h.BaseDim)
		}
		ins = append(ins, insertion{at: at, levels: h.Levels})
	}

	// Build the new dimension list in a single pass.
	levelsAt := make(map[int][]Level)
	for _, i := range ins {
		levelsAt[i.at] = append(levelsAt[i.at], i.levels...)
	}
	var newDims []string
	for i, d := range dims {
		for _, l := range levelsAt[i] {
			newDims = append(newDims, l.Name)
		}
		newDims = append(newDims, d)
	}
	newTuples := make([]dwarf.Tuple, len(tuples))
	for ti, t := range tuples {
		if len(t.Dims) != len(dims) {
			return nil, nil, fmt.Errorf("hierarchy: tuple %d has %d dims, want %d", ti, len(t.Dims), len(dims))
		}
		keys := make([]string, 0, len(newDims))
		for i, k := range t.Dims {
			for _, l := range levelsAt[i] {
				keys = append(keys, l.Map(k))
			}
			keys = append(keys, k)
		}
		newTuples[ti] = dwarf.Tuple{Dims: keys, Measure: t.Measure}
	}
	return newDims, newTuples, nil
}

// RollUp materializes the cube at a coarser grain: only the dimensions in
// keep survive (in the cube's dimension order); all others are aggregated
// away. Aggregate state (count/min/max) is preserved through the rebuild.
func RollUp(c *dwarf.Cube, keep ...string) (*dwarf.Cube, error) {
	dims := c.Dims()
	keepIdx := make([]int, 0, len(keep))
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	for i, d := range dims {
		if keepSet[d] {
			keepIdx = append(keepIdx, i)
			delete(keepSet, d)
		}
	}
	for k := range keepSet {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDim, k)
	}
	if len(keepIdx) == 0 {
		return nil, fmt.Errorf("%w: nothing to keep", ErrUnknownDim)
	}
	newDims := make([]string, len(keepIdx))
	for i, idx := range keepIdx {
		newDims[i] = dims[idx]
	}
	var ats []dwarf.AggTuple
	c.Tuples(func(keys []string, agg dwarf.Aggregate) bool {
		projected := make([]string, len(keepIdx))
		for i, idx := range keepIdx {
			projected[i] = keys[idx]
		}
		ats = append(ats, dwarf.AggTuple{Dims: projected, Agg: agg})
		return true
	})
	return dwarf.NewFromAggregates(newDims, ats)
}

// DrillDown enumerates the members one level below a fixed path: fixed maps
// dimension name → key (missing dimensions are wildcards), dim names the
// dimension whose members are enumerated. Each member key maps to its
// aggregate under the fixed path — the DRILL DOWN of §6.
func DrillDown(c *dwarf.Cube, fixed map[string]string, dim string) (map[string]dwarf.Aggregate, error) {
	dims := c.Dims()
	dimIdx := -1
	sels := make([]dwarf.Selector, len(dims))
	for i, d := range dims {
		if d == dim {
			dimIdx = i
		}
		if k, ok := fixed[d]; ok {
			sels[i] = dwarf.SelectKeys(k)
		} else {
			sels[i] = dwarf.SelectAll()
		}
	}
	if dimIdx < 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDim, dim)
	}
	for d := range fixed {
		found := false
		for _, have := range dims {
			if have == d {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %s", ErrUnknownDim, d)
		}
	}
	return c.GroupBy(dimIdx, sels)
}
